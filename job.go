package lmc

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"lmc/internal/core"
	"lmc/internal/mc/global"
	"lmc/internal/model"
	"lmc/internal/online"
)

// JobKind selects which checker a job runs.
type JobKind int

const (
	// JobLocal runs the local model checker (LMC), the paper's approach.
	JobLocal JobKind = iota
	// JobGlobal runs the classic global-state baseline (B-DFS/BFS).
	JobGlobal
	// JobOnline runs an online checking session over a live simulation.
	JobOnline
)

// String names the kind ("local", "global", "online").
func (k JobKind) String() string {
	switch k {
	case JobLocal:
		return "local"
	case JobGlobal:
		return "global"
	case JobOnline:
		return "online"
	}
	return fmt.Sprintf("JobKind(%d)", int(k))
}

// JobSpec describes one checking job: the protocol, the start state, and
// the per-kind configuration. The zero Kind is JobLocal.
type JobSpec struct {
	Kind JobKind
	// Machine is the protocol under test. Required for JobLocal and
	// JobGlobal; for JobOnline it defaults Online.Machine when that is nil.
	Machine Machine
	// Start is the start system state; nil means InitialSystem(Machine).
	// Ignored by JobOnline (the session snapshots the live run).
	Start SystemState

	// Options configures a JobLocal run.
	Options Options
	// Global configures a JobGlobal run.
	Global GlobalOptions
	// Live is the running simulation a JobOnline session snapshots.
	// Required for JobOnline.
	Live *Sim
	// Online configures a JobOnline session.
	Online OnlineConfig
}

// JobResult is the result of a finished job; exactly the field matching the
// job's Kind is set.
type JobResult struct {
	Kind   JobKind
	Local  *Result
	Global *GlobalResult
	Online *OnlineReport
}

// CheckpointStatus reports a running job's checkpoint progress, when the
// job's options carry a CheckpointSink (see internal/store and the Shards,
// Checkpoint, Resume fields of Options).
type CheckpointStatus struct {
	// Pass and Round locate the newest checkpointed round barrier.
	Pass, Round int
	// Records is that round's delivery-record count.
	Records int
	// Rounds counts the checkpoints delivered so far in this job.
	Rounds int
}

// Handle is a submitted job. Wait or Done observe completion, Result polls,
// Cancel requests a cooperative stop (honored at the engine's next round
// barrier), and Checkpoint reports live checkpoint progress.
type Handle struct {
	kind   JobKind
	cancel context.CancelFunc
	done   chan struct{}
	res    *JobResult
	err    error
	ck     atomic.Pointer[CheckpointStatus]
}

// trackSink wraps the job's CheckpointSink so the Handle can report
// progress without the caller wiring an observer.
type trackSink struct {
	h    *Handle
	next core.CheckpointSink
}

func (t trackSink) OnRoundCheckpoint(cp core.RoundCheckpoint) error {
	if err := t.next.OnRoundCheckpoint(cp); err != nil {
		return err
	}
	prev := t.h.ck.Load()
	st := CheckpointStatus{Pass: cp.Pass, Round: cp.Round, Records: len(cp.Records), Rounds: 1}
	if prev != nil {
		st.Rounds = prev.Rounds + 1
	}
	t.h.ck.Store(&st)
	return nil
}

// Submit validates the spec and starts the job on its own goroutine,
// returning immediately with a Handle. The context bounds the whole job
// (on top of any Options.Budget); cancelling it — or calling
// Handle.Cancel — stops the run cooperatively at the next round barrier
// with the partial result, exactly as the context-taking entry points do.
func Submit(ctx context.Context, spec JobSpec) (*Handle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch spec.Kind {
	case JobLocal, JobGlobal:
		if spec.Machine == nil {
			return nil, errors.New("lmc: JobSpec.Machine is required")
		}
		if spec.Start == nil {
			spec.Start = model.InitialSystem(spec.Machine)
		}
	case JobOnline:
		if spec.Live == nil {
			return nil, errors.New("lmc: JobSpec.Live is required for JobOnline")
		}
		if spec.Online.Machine == nil {
			spec.Online.Machine = spec.Machine
		}
	default:
		return nil, fmt.Errorf("lmc: unknown JobKind %d", int(spec.Kind))
	}

	h := &Handle{kind: spec.Kind, done: make(chan struct{})}
	switch spec.Kind {
	case JobLocal:
		if spec.Options.Checkpoint != nil {
			spec.Options.Checkpoint = trackSink{h, spec.Options.Checkpoint}
		}
		if err := spec.Options.Validate(); err != nil {
			return nil, err
		}
	case JobGlobal:
		if err := spec.Global.Validate(); err != nil {
			return nil, err
		}
	case JobOnline:
		if spec.Online.Checker.Checkpoint != nil {
			spec.Online.Checker.Checkpoint = trackSink{h, spec.Online.Checker.Checkpoint}
		}
		if err := spec.Online.Validate(); err != nil {
			return nil, err
		}
	}

	ctx, h.cancel = context.WithCancel(ctx)
	go func() {
		defer close(h.done)
		defer h.cancel()
		res := &JobResult{Kind: spec.Kind}
		switch spec.Kind {
		case JobLocal:
			res.Local, h.err = core.CheckContext(ctx, spec.Machine, spec.Start, spec.Options)
		case JobGlobal:
			res.Global, h.err = global.CheckContext(ctx, spec.Machine, spec.Start, spec.Global)
		case JobOnline:
			res.Online, h.err = online.RunContext(ctx, spec.Live, spec.Online)
		}
		if h.err == nil {
			h.res = res
		}
	}()
	return h, nil
}

// Kind returns the job's kind.
func (h *Handle) Kind() JobKind { return h.kind }

// Done is closed when the job finishes (normally, by cancellation, or by
// error).
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the job finishes or ctx is cancelled. Cancelling the
// wait does NOT cancel the job — call Cancel for that. A job stopped by
// Cancel still returns its partial result (Complete=false,
// StopReason=StopCancelled), matching the context-taking entry points.
func (h *Handle) Wait(ctx context.Context) (*JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-h.done:
		return h.res, h.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result polls: it returns the result and true when the job has finished
// successfully, nil and false while it is still running or if it failed
// (Wait surfaces the error).
func (h *Handle) Result() (*JobResult, bool) {
	select {
	case <-h.done:
		return h.res, h.res != nil
	default:
		return nil, false
	}
}

// Cancel requests a cooperative stop. Safe to call multiple times and
// after completion.
func (h *Handle) Cancel() { h.cancel() }

// Checkpoint reports the newest round checkpoint the job has durably
// handed to its CheckpointSink, and false when the job checkpoints nothing
// (no sink configured, or no round barrier reached yet).
func (h *Handle) Checkpoint() (CheckpointStatus, bool) {
	st := h.ck.Load()
	if st == nil {
		return CheckpointStatus{}, false
	}
	return *st, true
}
