package lmc_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"lmc"
	"lmc/internal/protocols/paxos"
	"lmc/internal/protocols/tree"
)

func paxosSpec() lmc.JobSpec {
	m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	return lmc.JobSpec{
		Machine: m,
		Options: lmc.NewOptions(lmc.WithInvariant(paxos.Agreement())),
	}
}

func TestSubmitLocal(t *testing.T) {
	h, err := lmc.Submit(context.Background(), paxosSpec())
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind() != lmc.JobLocal {
		t.Fatalf("kind=%v, want local", h.Kind())
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != lmc.JobLocal || res.Local == nil || res.Global != nil || res.Online != nil {
		t.Fatalf("result shape wrong: %+v", res)
	}
	if !res.Local.Complete || len(res.Local.Bugs) != 0 {
		t.Fatalf("correct paxos run: complete=%v bugs=%d", res.Local.Complete, len(res.Local.Bugs))
	}
	// The job API and the deprecated entry point must agree exactly.
	spec := paxosSpec()
	direct := lmc.Check(spec.Machine, lmc.InitialSystem(spec.Machine), spec.Options)
	if direct.Stats.Transitions != res.Local.Stats.Transitions ||
		direct.Stats.SystemStates != res.Local.Stats.SystemStates {
		t.Fatalf("Submit diverged from Check: %+v vs %+v", res.Local.Stats, direct.Stats)
	}
	// Finished handles poll successfully and tolerate repeated Cancel.
	if got, ok := h.Result(); !ok || got != res {
		t.Fatal("Result() after Done disagrees with Wait()")
	}
	h.Cancel()
	h.Cancel()
}

func TestSubmitGlobal(t *testing.T) {
	m := tree.NewPaperTree()
	h, err := lmc.Submit(context.Background(), lmc.JobSpec{
		Kind:    lmc.JobGlobal,
		Machine: m,
		Global:  lmc.GlobalOptions{Invariant: m.CausalityInvariant()},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != lmc.JobGlobal || res.Global == nil || res.Local != nil {
		t.Fatalf("result shape wrong: %+v", res)
	}
	if !res.Global.Complete {
		t.Fatal("paper tree global search incomplete")
	}
}

func TestSubmitOnline(t *testing.T) {
	m := tree.NewPaperTree()
	live := lmc.NewSim(lmc.SimConfig{Machine: m})
	h, err := lmc.Submit(context.Background(), lmc.JobSpec{
		Kind:    lmc.JobOnline,
		Machine: m, // Online.Machine left nil on purpose: Submit defaults it
		Live:    live,
		Online: lmc.OnlineConfig{
			Interval:   30,
			MaxSimTime: 90,
			Checker:    lmc.NewOptions(lmc.WithInvariant(m.CausalityInvariant())),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != lmc.JobOnline || res.Online == nil {
		t.Fatalf("result shape wrong: %+v", res)
	}
	if len(res.Online.Runs) != 3 {
		t.Fatalf("runs=%d, want 3 (90s / 30s)", len(res.Online.Runs))
	}
}

func TestSubmitCancel(t *testing.T) {
	spec := paxosSpec()
	spec.Options.Workers = -1
	h, err := lmc.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	h.Cancel()
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Cancellation is cooperative and not an error; depending on timing the
	// run either finished first or stopped at a round barrier.
	if res.Local == nil {
		t.Fatal("cancelled job lost its partial result")
	}
	if !res.Local.Complete && res.Local.StopReason != lmc.StopCancelled {
		t.Fatalf("stop reason %v for cancelled incomplete run", res.Local.StopReason)
	}
}

func TestSubmitRejects(t *testing.T) {
	cases := []struct {
		name string
		spec lmc.JobSpec
		want string
	}{
		{"local nil machine", lmc.JobSpec{}, "Machine is required"},
		{"local no invariant", lmc.JobSpec{Machine: tree.NewPaperTree()}, "Invariant is required"},
		{"global no invariant", lmc.JobSpec{Kind: lmc.JobGlobal, Machine: tree.NewPaperTree()}, "Invariant is required"},
		{"online nil live", lmc.JobSpec{Kind: lmc.JobOnline}, "Live is required"},
		{"unknown kind", lmc.JobSpec{Kind: lmc.JobKind(42)}, "unknown JobKind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := lmc.Submit(context.Background(), tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err=%v, want containing %q", err, tc.want)
			}
		})
	}
	// Online with a live sim but an unrunnable checker config must be
	// rejected by OnlineConfig.Validate via Submit.
	m := tree.NewPaperTree()
	_, err := lmc.Submit(context.Background(), lmc.JobSpec{
		Kind:    lmc.JobOnline,
		Machine: m,
		Live:    lmc.NewSim(lmc.SimConfig{Machine: m}),
		Online:  lmc.OnlineConfig{Interval: -1, Checker: lmc.Options{Invariant: m.CausalityInvariant()}},
	})
	if err == nil || !strings.Contains(err.Error(), "Interval") {
		t.Fatalf("negative interval accepted: %v", err)
	}
}

func TestHandleWaitContext(t *testing.T) {
	spec := paxosSpec()
	spec.Options.Workers = -1
	h, err := lmc.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.Wait(ctx); err == nil {
		// The run may legitimately have finished before the cancelled wait
		// was observed; only a nil error with an unfinished job is wrong.
		select {
		case <-h.Done():
		default:
			t.Fatal("Wait returned nil error on a cancelled context with the job still running")
		}
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

type recordingSink struct{ rounds int }

func (r *recordingSink) OnRoundCheckpoint(lmc.RoundCheckpoint) error {
	r.rounds++
	return nil
}

func TestHandleCheckpointStatus(t *testing.T) {
	spec := paxosSpec()
	sink := &recordingSink{}
	spec.Options.Checkpoint = sink
	h, err := lmc.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, ok := h.Checkpoint()
	if !ok {
		t.Fatal("no checkpoint status after a checkpointed run")
	}
	if st.Rounds != sink.rounds || st.Rounds == 0 {
		t.Fatalf("status rounds=%d, sink saw %d", st.Rounds, sink.rounds)
	}
	if st.Pass != 1 || st.Round == 0 {
		t.Fatalf("status coordinates unset: %+v", st)
	}

	// Without a sink, Checkpoint reports nothing.
	h2, err := lmc.Submit(context.Background(), paxosSpec())
	if err != nil {
		t.Fatal(err)
	}
	h2.Wait(context.Background())
	if _, ok := h2.Checkpoint(); ok {
		t.Fatal("checkpoint status reported without a sink")
	}
}

func TestJobKindString(t *testing.T) {
	if lmc.JobLocal.String() != "local" || lmc.JobGlobal.String() != "global" ||
		lmc.JobOnline.String() != "online" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(lmc.JobKind(9).String(), "9") {
		t.Fatal("unknown kind not rendered numerically")
	}
}

func TestSubmitHonorsParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := paxosSpec()
	h, err := lmc.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job ignored its cancelled parent context")
	}
}
