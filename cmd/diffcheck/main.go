// Command diffcheck cross-validates the local model checker against the
// global B-DFS baseline on randomized scenarios. Every disagreement is
// shrunk to a minimal scenario and written out as a reproducible artifact
// (seed + scenario JSON + counterexample schedules).
//
// Usage:
//
//	diffcheck -seed 42 -n 100              # one deterministic batch
//	diffcheck -soak 10m                    # randomized soak run
//	diffcheck -repro artifact.json         # re-run a saved disagreement
//	diffcheck -seed 42 -n 100 -v           # also print per-scenario results
//	diffcheck -seed 42 -n 20 -shards 2     # sharded-vs-sequential parity batch
//
// The process exits 0 when every scenario agrees, 1 on any disagreement,
// and 2 on usage errors. The seed is always printed, so any run can be
// reproduced bit-for-bit.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof and pulls in /debug/vars
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"lmc/internal/diffcheck"
	"lmc/internal/obs"
	"lmc/internal/shard"
)

func main() {
	seed := flag.Int64("seed", 1, "scenario generator seed")
	n := flag.Int("n", 100, "number of scenarios per batch")
	actors := flag.Int("actors", 0, "adapter-backed (actorcheck) scenarios appended to each batch")
	soak := flag.Duration("soak", 0, "keep running fresh batches (seed, seed+1, ...) for this long")
	repro := flag.String("repro", "", "re-run the scenario in a saved artifact and exit")
	out := flag.String("out", ".", "directory for disagreement artifacts")
	budget := flag.Duration("budget", 0, "per-checker budget (0 = default)")
	workers := flag.Int("workers", 0, "concurrent scenarios per batch (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print every scenario verdict")
	progress := flag.Bool("progress", false,
		"log checker run events to stderr (streams from concurrent scenarios interleave; combine with -workers 1 for a linear log)")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof and expvar on this address (e.g. localhost:6060); live counters appear under /debug/vars key \"diffcheck\"")
	shards := flag.Int("shards", 0,
		"cross-check the sharded engine instead: run each scenario sequentially and split across N worker processes, fail on any divergence")
	shardWorker := flag.Bool("shard-worker", false,
		"serve as a shard worker on stdin/stdout (internal; spawned by -shards)")
	flag.Parse()

	if *shardWorker {
		// Worker mode: stdout belongs to the wire protocol.
		if err := shard.RunWorker(diffcheck.ShardResolver()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	tun := diffcheck.Tuning{Budget: *budget}
	if *progress {
		tun.Observer = obs.NewLogObserver(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	if *pprofAddr != "" {
		// The expvar observer reflects whichever checker run most recently
		// heartbeated or finished — a liveness signal for long soaks.
		tun.Observer = obs.Multi(tun.Observer, obs.NewExpvarObserver("diffcheck"))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "diffcheck: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "diffcheck: serving pprof+expvar on http://%s/debug/\n", *pprofAddr)
	}

	if *repro != "" {
		os.Exit(reproduce(*repro, tun, *verbose))
	}

	if *shards > 1 {
		os.Exit(runShardBatch(*seed, *n, *actors, tun, *shards, *verbose))
	}

	disagreements := 0
	batches := 0
	deadline := time.Now().Add(*soak)
	for s := *seed; ; s++ {
		disagreements += runBatch(s, *n, *actors, tun, *out, *workers, *verbose)
		batches++
		if *soak == 0 || time.Now().After(deadline) {
			break
		}
	}
	if disagreements > 0 {
		fmt.Printf("FAIL: %d disagreement(s) across %d batch(es)\n", disagreements, batches)
		os.Exit(1)
	}
	fmt.Printf("ok: %d batch(es) of %d scenarios, no disagreements\n", batches, *n)
}

// runShardBatch cross-checks the sharded engine instead of the global
// baseline: every corpus scenario is explored in-process and through a
// fleet of re-exec'd worker processes, and the two runs must match
// bit-for-bit. Scenarios run one at a time — each parity check already
// spawns a process per shard, so a worker pool on top would only thrash.
// Returns a process exit code.
func runShardBatch(seed int64, n, actors int, tun diffcheck.Tuning, shards int, verbose bool) int {
	fmt.Printf("shard parity batch seed=%d n=%d actors=%d shards=%d\n", seed, n, actors, shards)
	if tun.LMCMaxTransitions == 0 {
		// The parity check lifts the wall-clock budget (a time-based stop is
		// nondeterministic, so the two runs could not be compared), leaving
		// the transition cap as the only bound. The differential's default
		// cap of 100k lets a single live scenario run for minutes; a tight
		// cap keeps the batch fast and the cut itself is part of what parity
		// must reproduce.
		tun.LMCMaxTransitions = 4000
	}
	corpus := diffcheck.Corpus(seed, n)
	if actors > 0 {
		corpus = append(corpus, diffcheck.ActorCorpus(seed, actors)...)
	}
	spawner := shard.SelfExec{Args: []string{"-shard-worker"}}
	failures := 0
	for i, sc := range corpus {
		if err := diffcheck.ShardParity(sc, tun, shards, spawner); err != nil {
			failures++
			fmt.Printf("  [%3d] %-40s MISMATCH: %v\n", i, sc.Name(), err)
		} else if verbose {
			fmt.Printf("  [%3d] %-40s ok\n", i, sc.Name())
		}
	}
	if failures > 0 {
		fmt.Printf("FAIL: %d of %d scenarios diverged under %d shards\n", failures, len(corpus), shards)
		return 1
	}
	fmt.Printf("ok: %d scenarios bit-for-bit identical under %d shards\n", len(corpus), shards)
	return 0
}

// runBatch checks one deterministic corpus and returns the disagreement
// count. Each disagreement is shrunk and written to an artifact file.
//
// Scenarios are independent, so the cross-validation runs on a worker pool;
// reporting, shrinking and artifact writes then happen on this goroutine in
// scenario-index order, so the output and the artifact files are identical
// to a sequential run.
func runBatch(seed int64, n, actors int, tun diffcheck.Tuning, outDir string, workers int, verbose bool) int {
	fmt.Printf("batch seed=%d n=%d actors=%d\n", seed, n, actors)
	corpus := diffcheck.Corpus(seed, n)
	if actors > 0 {
		// Appended after the frozen main corpus so indices 0..n-1 keep
		// meaning the same scenarios with or without the flag.
		corpus = append(corpus, diffcheck.ActorCorpus(seed, actors)...)
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(corpus) {
		workers = len(corpus)
	}
	type outcome struct {
		verdict *diffcheck.Verdict
		err     error
	}
	outcomes := make([]outcome, len(corpus))
	next := make(chan int, len(corpus))
	for i := range corpus {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				v, err := diffcheck.Run(corpus[i], tun)
				outcomes[i] = outcome{verdict: v, err: err}
			}
		}()
	}
	wg.Wait()

	bad := 0
	for i, sc := range corpus {
		v, err := outcomes[i].verdict, outcomes[i].err
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed=%d index=%d: %v\n", seed, i, err)
			bad++
			continue
		}
		if verbose {
			fmt.Printf("  %3d %-40s global(bugs=%d complete=%v) gen(bugs=%d complete=%v) agree=%v\n",
				i, sc.Name(), v.Global.Bugs, v.Global.Complete, v.GEN.Bugs, v.GEN.Complete, v.Agree())
		}
		if v.Agree() {
			continue
		}
		bad++
		fmt.Printf("DISAGREEMENT seed=%d index=%d %s\n", seed, i, sc.Name())
		for _, d := range v.Disagreements {
			fmt.Printf("  %s\n", d)
		}
		min := diffcheck.Shrink(sc, func(c diffcheck.Scenario) bool {
			mv, merr := diffcheck.Run(c, tun)
			return merr == nil && !mv.Agree()
		})
		mv, err := diffcheck.Run(min, tun)
		if err != nil {
			mv = v
			min = sc
		}
		art := &diffcheck.Artifact{Seed: seed, Index: i, Scenario: min, Verdict: mv}
		if min.Name() != sc.Name() {
			orig := sc
			art.Original = &orig
		}
		path := filepath.Join(outDir, fmt.Sprintf("diffcheck-%d-%d.json", seed, i))
		if err := art.WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "writing artifact: %v\n", err)
		} else {
			fmt.Printf("  artifact: %s (shrunk to %s)\n", path, min.Name())
		}
	}
	return bad
}

// reproduce re-runs a saved artifact's scenario and reports whether the
// disagreement still occurs.
func reproduce(path string, tun diffcheck.Tuning, verbose bool) int {
	art, err := diffcheck.LoadArtifact(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("reproducing %s (seed=%d index=%d %s)\n", path, art.Seed, art.Index, art.Scenario.Name())
	v, err := diffcheck.Run(art.Scenario, tun)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if v.Agree() {
		fmt.Println("scenario now agrees (disagreement not reproduced)")
		return 0
	}
	for _, d := range v.Disagreements {
		fmt.Printf("  %s\n", d)
		if verbose && d.Schedule != "" {
			fmt.Println(d.Schedule)
		}
	}
	return 1
}
