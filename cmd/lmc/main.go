// Command lmc runs a model checker over one of the bundled protocol
// workloads and prints the statistics and any confirmed bugs with their
// witness schedules. With -serve it stays resident instead: a daemon that
// accepts a queue of checking jobs over HTTP, checkpoints every completed
// round to a persistent store, and resumes unfinished jobs — bit-for-bit —
// after any restart, SIGKILL included.
//
// Usage:
//
//	lmc -workload paxos                    # LMC-OPT over correct Paxos
//	lmc -workload paxos-bug -v             # rediscover the §5.5 bug
//	lmc -workload 1paxos-bug -checker lmc  # LMC-GEN
//	lmc -workload paxos -checker global    # the B-DFS baseline
//	lmc -workload paxos -shards 4          # fingerprint-range sharded run
//	lmc -list                              # list workloads
//
//	lmc -serve -listen localhost:8080 -store /var/lib/lmc/ckpt.lmcstore
//	curl -X POST localhost:8080/jobs -d '{"workload":"paxos"}'
//	curl localhost:8080/jobs/job-1         # status, checkpoint progress, result
//
// The serve listener also exposes /debug/pprof and /debug/vars (expvar;
// live counters of the running job under the "lmc" map), so one port
// carries the job API and the usual diagnostics.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof and pulls in /debug/vars
	"os"
	"time"

	"lmc/internal/bench"
	"lmc/internal/core"
	"lmc/internal/mc/global"
	"lmc/internal/obs"
	"lmc/internal/service"
	"lmc/internal/shard"
	"lmc/internal/store"
)

// checkConfig is the single flag surface shared by run and serve modes:
// run mode executes one job built from it, serve mode uses it as the
// default JobSpec fields for submitted jobs. Keeping both modes on one
// struct keeps the flags from drifting apart.
type checkConfig struct {
	workload string
	checker  string
	reduce   string
	budget   time.Duration
	depth    int
	first    bool
	deepen   int
	maxBound int
	workers    int
	shards     int
	shardBatch int
	verbose    bool
}

func (c *checkConfig) registerFlags() {
	flag.StringVar(&c.workload, "workload", "paxos", "workload name (see -list)")
	flag.StringVar(&c.checker, "checker", "lmc-opt", "checker: lmc-opt, lmc, global, bfs")
	flag.StringVar(&c.reduce, "reduce", "",
		"state-space reductions for the LMC checkers: comma-separated subset of sym,por (or all/none; default off)")
	flag.DurationVar(&c.budget, "budget", 30*time.Second, "wall-clock budget per job")
	flag.IntVar(&c.depth, "depth", 0, "depth bound (0 = unbounded)")
	flag.BoolVar(&c.first, "first", true, "stop at the first confirmed bug")
	flag.IntVar(&c.deepen, "deepen", 0, "iterative local-event bound deepening step (LMC; run mode only)")
	flag.IntVar(&c.maxBound, "maxbound", 4, "maximum local-event bound when deepening (LMC; run mode only)")
	flag.IntVar(&c.workers, "workers", 0,
		"in-process worker pool per job (0 = one per CPU, negative = sequential)")
	flag.IntVar(&c.shards, "shards", 0,
		"split exploration across N processes (coordinator included) by fingerprint range (LMC checkers; <=1 = in-process)")
	flag.IntVar(&c.shardBatch, "shard-batch", 0,
		"sharded runs: rounds per replica-digest exchange (<=0 = default; never changes results)")
	flag.BoolVar(&c.verbose, "v", false, "print witness schedules (run mode)")
}

// jobSpec maps the shared config onto a service job spec (the fields both
// modes understand; deepen/maxbound/verbose stay run-mode extras).
func (c *checkConfig) jobSpec() service.JobSpec {
	spec := service.JobSpec{
		Workload: c.workload,
		Checker:  c.checker,
		Reduce:   c.reduce,
		Workers:    c.workers,
		Shards:     c.shards,
		ShardBatch: c.shardBatch,
		Depth:      c.depth,
		First:      c.first,
	}
	if c.budget > 0 {
		spec.Budget = c.budget.String()
	}
	return spec
}

// coreOptions maps the shared config onto engine options for run mode.
func (c *checkConfig) coreOptions(w bench.Workload) (core.Options, error) {
	reductions, err := core.ParseReductions(c.reduce)
	if err != nil {
		return core.Options{}, err
	}
	opt := core.Options{
		Invariant:       w.Invariant,
		LocalInvariants: w.Locals,
		MaxPathDepth:    c.depth,
		Budget:          c.budget,
		StopAtFirstBug:  c.first,
		LocalBoundStep:  c.deepen,
		MaxLocalBound:   c.maxBound,
		Workers:         c.workers,
		Reduce:          reductions,
	}
	if c.checker == "lmc-opt" {
		opt.Reduction = w.Reduction
	}
	return opt, nil
}

func main() {
	var cfg checkConfig
	cfg.registerFlags()
	shardWorker := flag.Bool("shard-worker", false,
		"serve as a shard worker on stdin/stdout (internal; spawned by -shards)")
	list := flag.Bool("list", false, "list workloads and exit")
	serve := flag.Bool("serve", false, "run as a resident checking service instead of one job")
	listen := flag.String("listen", "localhost:8080", "serve mode: HTTP listen address for jobs, expvar and pprof")
	storePath := flag.String("store", "lmc.lmcstore", "serve mode: checkpoint store file")
	flag.Parse()

	if *shardWorker {
		// Worker mode: stdout belongs to the wire protocol; nothing else
		// may print to it.
		if err := shard.RunWorker(bench.ShardResolver()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, w := range bench.Workloads() {
			fmt.Printf("%-14s %s\n", w.Name, w.Description)
		}
		return
	}

	if *serve {
		if err := runServe(cfg, *listen, *storePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if err := runOnce(cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runOnce is the classic one-shot mode: check one workload and print.
func runOnce(cfg checkConfig) error {
	w, err := bench.Lookup(cfg.workload)
	if err != nil {
		return err
	}
	start, err := w.StartState()
	if err != nil {
		return fmt.Errorf("building start state: %w", err)
	}

	fmt.Printf("workload %s (%s), checker %s\n", w.Name, w.Machine.Name(), cfg.checker)

	switch cfg.checker {
	case "global", "bfs":
		if w.Invariant == nil {
			return fmt.Errorf("the global checker needs a system invariant; this workload has only local invariants")
		}
		strat := global.DFS
		if cfg.checker == "bfs" {
			strat = global.BFS
		}
		res := global.Check(w.Machine, start, global.Options{
			Invariant:      w.Invariant,
			Strategy:       strat,
			MaxDepth:       cfg.depth,
			Budget:         cfg.budget,
			StopAtFirstBug: cfg.first,
		})
		fmt.Println(res.Stats.String())
		fmt.Printf("complete=%v bugs=%d\n", res.Complete, len(res.Bugs))
		for _, b := range res.Bugs {
			fmt.Printf("BUG: %v\n", b.Violation)
			if cfg.verbose {
				fmt.Print(b.Schedule.String())
			}
		}
	case "lmc", "lmc-opt":
		opt, err := cfg.coreOptions(w)
		if err != nil {
			return err
		}
		var res *core.Result
		if cfg.shards > 1 {
			opt.Observer = obs.FuncObserver(func(e obs.Event) {
				if e.Kind == obs.KindShardDegraded {
					fmt.Fprintf(os.Stderr, "shard fleet degraded (shard %d of %d): %s\n",
						e.Shard, e.Shards, e.Detail)
				}
			})
			res, err = shard.Check(context.Background(), w.Machine, start, opt, shard.Config{
				Shards:  cfg.shards,
				Spawner: shard.SelfExec{Args: []string{"-shard-worker"}},
				Spec:    bench.ShardSpec(w.Name),
				Batch:   cfg.shardBatch,
			})
			if err != nil {
				return err
			}
		} else {
			res = core.Check(w.Machine, start, opt)
		}
		fmt.Println(res.Stats.String())
		fmt.Printf("complete=%v bugs=%d\n", res.Complete, len(res.Bugs))
		for _, b := range res.Bugs {
			fmt.Printf("BUG: %v\n", b.Violation)
			if cfg.verbose {
				fmt.Print(b.Schedule.String())
			}
		}
	default:
		return fmt.Errorf("unknown checker %q", cfg.checker)
	}
	return nil
}

// runServe is daemon mode: open (or recover) the checkpoint store, resume
// whatever a previous daemon left unfinished, and serve the job API plus
// expvar/pprof on one listener.
func runServe(cfg checkConfig, listen, storePath string) error {
	st, err := store.Open(storePath)
	if err != nil {
		return fmt.Errorf("opening checkpoint store: %w", err)
	}
	defer st.Close()

	svc := service.New(service.Config{
		Store:    st,
		Spawner:  shard.SelfExec{Args: []string{"-shard-worker"}},
		Defaults: cfg.jobSpec(),
		Observer: obs.NewExpvarObserver("lmc"),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "lmc serve: "+format+"\n", args...)
		},
	})
	svc.Recover()

	// The job API shares the DefaultServeMux listener with the /debug/
	// handlers net/http/pprof registered at init.
	h := svc.Handler()
	for _, pattern := range []string{"/jobs", "/jobs/", "/runs", "/workloads"} {
		http.Handle(pattern, h)
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", listen, err)
	}
	// The resolved address line is load-bearing: scripts (and the serve
	// test) pass -listen with port 0 and scrape the port from it.
	fmt.Printf("lmc serve: store %s, listening on http://%s/\n", st.Path(), ln.Addr())

	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintln(os.Stderr, "lmc serve: http:", err)
			os.Exit(1)
		}
	}()
	svc.Run(context.Background())
	return nil
}
