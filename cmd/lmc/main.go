// Command lmc runs a model checker over one of the bundled protocol
// workloads and prints the statistics and any confirmed bugs with their
// witness schedules.
//
// Usage:
//
//	lmc -workload paxos                    # LMC-OPT over correct Paxos
//	lmc -workload paxos-bug -v             # rediscover the §5.5 bug
//	lmc -workload 1paxos-bug -checker lmc  # LMC-GEN
//	lmc -workload paxos -checker global    # the B-DFS baseline
//	lmc -workload paxos -shards 4          # fingerprint-range sharded run
//	lmc -list                              # list workloads
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"lmc/internal/bench"
	"lmc/internal/core"
	"lmc/internal/mc/global"
	"lmc/internal/obs"
	"lmc/internal/shard"
)

func main() {
	workload := flag.String("workload", "paxos", "workload name (see -list)")
	checker := flag.String("checker", "lmc-opt", "checker: lmc-opt, lmc, global, bfs")
	budget := flag.Duration("budget", 30*time.Second, "wall-clock budget")
	depth := flag.Int("depth", 0, "depth bound (0 = unbounded)")
	stopFirst := flag.Bool("first", true, "stop at the first confirmed bug")
	boundStep := flag.Int("deepen", 0, "iterative local-event bound deepening step (LMC)")
	maxBound := flag.Int("maxbound", 4, "maximum local-event bound when deepening (LMC)")
	verbose := flag.Bool("v", false, "print witness schedules")
	reduce := flag.String("reduce", "",
		"state-space reductions for the LMC checkers: comma-separated subset of sym,por (or all/none; default off)")
	shards := flag.Int("shards", 0,
		"split exploration across N worker processes by fingerprint range (LMC checkers; <=1 = in-process)")
	shardWorker := flag.Bool("shard-worker", false,
		"serve as a shard worker on stdin/stdout (internal; spawned by -shards)")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *shardWorker {
		// Worker mode: stdout belongs to the wire protocol; nothing else
		// may print to it.
		if err := shard.RunWorker(bench.ShardResolver()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	reductions, err := core.ParseReductions(*reduce)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *list {
		for _, w := range bench.Workloads() {
			fmt.Printf("%-14s %s\n", w.Name, w.Description)
		}
		return
	}

	w, err := bench.Lookup(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start, err := w.StartState()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building start state: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("workload %s (%s), checker %s\n", w.Name, w.Machine.Name(), *checker)

	switch *checker {
	case "global", "bfs":
		if w.Invariant == nil {
			fmt.Fprintln(os.Stderr, "the global checker needs a system invariant; this workload has only local invariants")
			os.Exit(1)
		}
		strat := global.DFS
		if *checker == "bfs" {
			strat = global.BFS
		}
		res := global.Check(w.Machine, start, global.Options{
			Invariant:      w.Invariant,
			Strategy:       strat,
			MaxDepth:       *depth,
			Budget:         *budget,
			StopAtFirstBug: *stopFirst,
		})
		fmt.Println(res.Stats.String())
		fmt.Printf("complete=%v bugs=%d\n", res.Complete, len(res.Bugs))
		for _, b := range res.Bugs {
			fmt.Printf("BUG: %v\n", b.Violation)
			if *verbose {
				fmt.Print(b.Schedule.String())
			}
		}
	case "lmc", "lmc-opt":
		opt := core.Options{
			Invariant:       w.Invariant,
			LocalInvariants: w.Locals,
			MaxPathDepth:    *depth,
			Budget:          *budget,
			StopAtFirstBug:  *stopFirst,
			LocalBoundStep:  *boundStep,
			MaxLocalBound:   *maxBound,
			Reduce:          reductions,
		}
		if *checker == "lmc-opt" {
			opt.Reduction = w.Reduction
		}
		var res *core.Result
		if *shards > 1 {
			opt.Observer = obs.FuncObserver(func(e obs.Event) {
				if e.Kind == obs.KindShardDegraded {
					fmt.Fprintf(os.Stderr, "shard fleet degraded (shard %d of %d): %s\n",
						e.Shard, e.Shards, e.Detail)
				}
			})
			res, err = shard.Check(context.Background(), w.Machine, start, opt, shard.Config{
				Shards:  *shards,
				Spawner: shard.SelfExec{Args: []string{"-shard-worker"}},
				Spec:    bench.ShardSpec(w.Name),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			res = core.Check(w.Machine, start, opt)
		}
		fmt.Println(res.Stats.String())
		fmt.Printf("complete=%v bugs=%d\n", res.Complete, len(res.Bugs))
		for _, b := range res.Bugs {
			fmt.Printf("BUG: %v\n", b.Violation)
			if *verbose {
				fmt.Print(b.Schedule.String())
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown checker %q\n", *checker)
		os.Exit(2)
	}
}
