package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"lmc/internal/service"
	"lmc/internal/store"
)

// TestServeKillRestart is the daemon-level end-to-end of the checkpoint
// story: build the real binary, start `lmc -serve`, submit a job over
// HTTP, SIGKILL the daemon once checkpoints exist, start a second daemon
// over the same store file, and watch it resume and finish the job with
// the same result an uninterrupted daemon produces. The store and service
// suites prove bit-for-bit parity at the engine level; this proves the
// wiring — flags, recovery, HTTP — survives an honest kill.
func TestServeKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "lmc")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lmc: %v\n%s", err, out)
	}
	storePath := filepath.Join(dir, "ckpt.lmcstore")

	// First daemon: submit depth-bounded paxos-two (~0.7s, enough rounds to kill mid-run) and
	// SIGKILL as soon as one checkpoint is durable.
	cmd, base := startServe(t, bin, storePath)
	mustPost(t, base+"/jobs", `{"id":"victim","workload":"paxos-two","depth":4,"first":false}`)
	waitStatus(t, base, "victim", func(st service.JobStatus) bool {
		return st.CheckpointRounds >= 1
	})
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// The surviving store holds the victim's rounds.
	st, err := store.Open(storePath)
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	meta, ok := st.Run("victim")
	st.Close()
	if !ok || meta.Done || meta.Rounds == 0 {
		t.Fatalf("post-kill store state: ok=%v meta=%+v", ok, meta)
	}

	// Second daemon over the same store: recovery resumes and finishes.
	cmd2, base2 := startServe(t, bin, storePath)
	defer func() { cmd2.Process.Kill(); cmd2.Wait() }()
	final := waitStatus(t, base2, "victim", func(st service.JobStatus) bool {
		return st.State == service.StateDone || st.State == service.StateFailed
	})
	if final.State != service.StateDone {
		t.Fatalf("resumed job state=%s err=%q", final.State, final.Error)
	}
	if !final.Result.Resumed {
		t.Fatal("restarted daemon re-ran the job instead of resuming it")
	}
	if !final.Result.Complete || len(final.Result.Bugs) != 0 {
		t.Fatalf("resumed paxos-two result: %+v", final.Result)
	}

	// Reference: the same job on a fresh store, uninterrupted.
	freshStore := filepath.Join(dir, "fresh.lmcstore")
	cmd3, base3 := startServe(t, bin, freshStore)
	defer func() { cmd3.Process.Kill(); cmd3.Wait() }()
	mustPost(t, base3+"/jobs", `{"id":"victim","workload":"paxos-two","depth":4,"first":false}`)
	fresh := waitStatus(t, base3, "victim", func(st service.JobStatus) bool {
		return st.State == service.StateDone
	})
	if fresh.Result.Stats.Transitions != final.Result.Stats.Transitions ||
		fresh.Result.Stats.SystemStates != final.Result.Stats.SystemStates {
		t.Fatalf("resumed daemon diverged from uninterrupted daemon:\nresumed %+v\n  fresh %+v",
			final.Result.Stats, fresh.Result.Stats)
	}
}

var listenLine = regexp.MustCompile(`listening on (http://[^/\s]+)/`)

// startServe launches `bin -serve` on an ephemeral port and scrapes the
// base URL from its startup line.
func startServe(t *testing.T, bin, storePath string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-serve", "-listen", "127.0.0.1:0", "-store", storePath)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if m := listenLine.FindStringSubmatch(sc.Text()); m != nil {
			// Keep draining stdout so the daemon never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return cmd, m[1]
		}
	}
	cmd.Process.Signal(syscall.SIGKILL)
	cmd.Wait()
	t.Fatal("daemon never printed its listen address")
	return nil, ""
}

func mustPost(t *testing.T, url, body string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		buf := make([]byte, 1024)
		n, _ := resp.Body.Read(buf)
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf[:n])
	}
}

// waitStatus polls one job until the predicate holds.
func waitStatus(t *testing.T, base, id string, done func(service.JobStatus) bool) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%s", base, id))
		if err != nil {
			t.Fatal(err)
		}
		var st service.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if done(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the awaited state", id)
	return service.JobStatus{}
}
