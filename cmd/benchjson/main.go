// Command benchjson runs the repeatable performance suite and writes the
// results as machine-readable JSON, for trend tracking and CI regression
// gating.
//
// The suite covers the two layers the exploration engine's wall-clock
// depends on: the end-to-end checker runs (one-proposal Paxos, LMC-GEN and
// LMC-OPT, sequential and 8-worker) and the fingerprint hot path (pooled
// vs. per-call writer allocation). End-to-end entries also report a
// states/sec throughput (node states + system states per second of
// exploration).
//
// Usage:
//
//	benchjson -out BENCH_lmc.json              # full suite (3 reps, best-of)
//	benchjson -short -out BENCH_lmc.json       # CI smoke (1 rep)
//	benchjson -baseline BENCH_lmc.json -maxratio 2.0
//	                                           # additionally gate: fail when
//	                                           # any entry is >2x slower than
//	                                           # the baseline file
//	benchjson -compare BENCH_lmc.json          # print a per-entry delta table
//	                                           # against an older report
//	benchjson -baseline BENCH_lmc.json -optgate 0.5
//	                                           # fail when the LMC-OPT seq
//	                                           # throughput drops below half
//	                                           # the baseline's states/sec
//	benchjson -cpus 1,2,4 -shardgate           # multi-core sweep: seq vs
//	                                           # sharded paxos-gen at each
//	                                           # GOMAXPROCS value, gating
//	                                           # shard2 < seq where the host
//	                                           # has the cores
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof and pulls in /debug/vars
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"lmc/internal/actordemo"
	"lmc/internal/bench"
	"lmc/internal/codec"
	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/obs"
	"lmc/internal/protocols/paxos"
	"lmc/internal/protocols/twophase"
	"lmc/internal/shard"
	"lmc/internal/store"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// StatesPerSec is node states + system states per second for
	// exploration entries; zero for micro-benchmarks.
	StatesPerSec float64 `json:"states_per_sec,omitempty"`
	// NumCPU and GOMAXPROCS record the parallelism available to THIS
	// entry's measurement. They duplicate the report header today, but
	// per-entry recording keeps entries self-describing when reports are
	// merged across hosts, and it is what the EXPERIMENTS.md tables cite
	// when explaining why w8 entries regress on single-CPU runners.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// WallClockMS is the measured run's wall clock in milliseconds — the
	// same duration NsPerOp reports, in the unit the experiment tables use.
	WallClockMS float64 `json:"wall_clock_ms,omitempty"`
	// Workers is the effective in-process worker-pool width of the run
	// (after the GOMAXPROCS clamp); Shards the worker-process count for
	// sharded entries (0 = in-process only). Together they describe the
	// run's topology.
	Workers int `json:"workers,omitempty"`
	Shards  int `json:"shards,omitempty"`
}

// stampCPU records the measuring process's parallelism into an entry. The
// values are read at measurement time, so entries produced inside the -cpus
// sweep carry the GOMAXPROCS that actually governed their run.
func stampCPU(e Entry) Entry {
	e.NumCPU = runtime.NumCPU()
	e.GOMAXPROCS = runtime.GOMAXPROCS(0)
	return e
}

// withWallClock derives the millisecond wall clock from NsPerOp — the one
// place the two fields are tied together. Schema 2 keeps both: ns_per_op
// for tooling that joins on benchmark conventions, wall_clock_ms for the
// experiment tables; they are never computed independently.
func (e Entry) withWallClock() Entry {
	e.WallClockMS = e.NsPerOp / 1e6
	return e
}

// Report is the file format of BENCH_lmc.json.
type Report struct {
	Schema     int               `json:"schema"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Short      bool              `json:"short"`
	Entries    []Entry           `json:"entries"`
	Derived    map[string]string `json:"derived,omitempty"`
	Notes      []string          `json:"notes,omitempty"`
}

func paxosGen() (model.Machine, model.SystemState, core.Options) {
	m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	return m, model.InitialSystem(m), core.Options{
		Invariant:      paxos.Agreement(),
		SoundnessShare: -1,
	}
}

func paxosOpt() (model.Machine, model.SystemState, core.Options) {
	m, start, opt := paxosGen()
	opt.Reduction = paxos.Reduction{}
	return m, start, opt
}

// withReductions enables the fingerprint-layer reductions on a
// configuration. The /reduced entries run the SAME workloads as their /seq
// twins so the entry pair isolates the reduction machinery's cost and
// savings; state-count ratios are gated separately by -reducegate on a
// 3-acceptor space where the symmetry classes are large enough to bite.
func withReductions(s space, r core.Reductions) space {
	return func() (model.Machine, model.SystemState, core.Options) {
		m, start, opt := s()
		opt.Reduce = r
		return m, start, opt
	}
}

// twophaseModel and twophaseActor are the adapter-overhead pair: the
// hand-written 2PC model and the semantically identical real implementation
// checked through the actorcheck interception seam. Their state spaces are
// isomorphic, so the elapsed-time ratio is pure adapter cost.
func twophaseModel() (model.Machine, model.SystemState, core.Options) {
	m := twophase.New(4, twophase.NoBug, 2)
	return m, model.InitialSystem(m), core.Options{
		Invariant:      twophase.Atomicity(),
		SoundnessShare: -1,
	}
}

func twophaseActor() (model.Machine, model.SystemState, core.Options) {
	ad := actordemo.NewAdapter(4, actordemo.NoBug, 2)
	return ad, model.InitialSystem(ad), core.Options{
		Invariant:      actordemo.Atomicity(ad),
		SoundnessShare: -1,
	}
}

// space is one checker configuration to measure.
type space func() (model.Machine, model.SystemState, core.Options)

// withObserver attaches an observer to a configuration, for the
// observer-overhead entries.
func withObserver(s space, o obs.Observer) space {
	return func() (model.Machine, model.SystemState, core.Options) {
		m, start, opt := s()
		opt.Observer = o
		return m, start, opt
	}
}

// progress is the observer attached to every measured run under -progress
// (nil otherwise); its logging overhead is part of the reported timings.
var progress obs.Observer

// effectiveWorkers mirrors the engine's pool sizing for the topology stamp:
// non-positive requests resolve to a single merge goroutine here (the suite
// only passes -1 for sequential entries), wider requests are clamped to
// GOMAXPROCS.
func effectiveWorkers(requested int) int {
	if requested <= 1 {
		return 1
	}
	if p := runtime.GOMAXPROCS(0); requested > p {
		return p
	}
	return requested
}

// measureExplore runs one checker configuration reps times and reports the
// fastest run's wall clock, per-run allocation deltas, and throughput.
func measureExplore(name string, reps, workers int, s space) Entry {
	return measure(name, reps, workers, 0, s, func(opt core.Options) *core.Result {
		m, start, o := s()
		o.Workers = opt.Workers
		if opt.Observer != nil {
			o.Observer = obs.Multi(o.Observer, opt.Observer)
		}
		return core.Check(m, start, o)
	})
}

// measureShardExplore measures a sharded run: the same configuration, with
// exploration split across a re-exec'd worker fleet resolving spec. env
// entries are passed to the worker processes (the -cpus sweep uses it to
// cap worker GOMAXPROCS to the swept value). A run that degrades
// mid-measurement would silently time the in-process path, so degradation
// fails the suite.
func measureShardExplore(name string, reps, shards int, s space, spec string, env []string) Entry {
	return measure(name, reps, -1, shards, s, func(opt core.Options) *core.Result {
		m, start, o := s()
		o.Workers = opt.Workers
		degraded := obs.FuncObserver(func(e obs.Event) {
			if e.Kind == obs.KindShardDegraded {
				fmt.Fprintf(os.Stderr, "benchjson: %s: shard fleet degraded (shard %d of %d): %s\n",
					name, e.Shard, e.Shards, e.Detail)
				os.Exit(1)
			}
		})
		o.Observer = obs.Multi(o.Observer, opt.Observer, degraded)
		res, err := shard.Check(context.Background(), m, start, o, shard.Config{
			Shards:  shards,
			Spawner: shard.SelfExec{Args: []string{"-shard-worker"}, Env: env},
			Spec:    spec,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
			os.Exit(1)
		}
		return res
	})
}

func measure(name string, reps, workers, shards int, s space, run func(core.Options) *core.Result) Entry {
	var opt core.Options
	opt.Workers = workers
	if progress != nil {
		opt.Observer = progress
	}

	var best time.Duration
	var states int
	var allocs, bytes uint64
	for i := 0; i < reps; i++ {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		res := run(opt)
		runtime.ReadMemStats(&m1)
		if !res.Complete {
			fmt.Fprintf(os.Stderr, "benchjson: %s: run incomplete\n", name)
			os.Exit(1)
		}
		if best == 0 || res.Stats.Elapsed < best {
			best = res.Stats.Elapsed
			states = res.Stats.NodeStates + res.Stats.SystemStates
			allocs = m1.Mallocs - m0.Mallocs
			bytes = m1.TotalAlloc - m0.TotalAlloc
		}
	}
	return stampCPU(Entry{
		Name:         name,
		NsPerOp:      float64(best.Nanoseconds()),
		AllocsPerOp:  float64(allocs),
		BytesPerOp:   float64(bytes),
		StatesPerSec: float64(states) / best.Seconds(),
		Workers:      effectiveWorkers(workers),
		Shards:       shards,
	}.withWallClock())
}

// fpState is the micro-benchmark encoding shape: a handful of scalars and a
// small set, like a typical protocol node state.
type fpState struct {
	round, value int
	active       bool
	peers        []int
}

func (s *fpState) Encode(w *codec.Writer) {
	w.Int(s.round)
	w.Int(s.value)
	w.Bool(s.active)
	w.SortedInts(s.peers)
}

func measureMicro(name string, fn func(b *testing.B)) Entry {
	r := testing.Benchmark(fn)
	return stampCPU(Entry{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	})
}

// loadReport reads and parses a report file written by an earlier run.
func loadReport(path string) (Report, error) {
	var r Report
	raw, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("read baseline: %w", err)
	}
	if err := json.Unmarshal(raw, &r); err != nil {
		return r, fmt.Errorf("parse baseline: %w", err)
	}
	return r, nil
}

// entriesByName indexes a report's entries for lookups.
func entriesByName(r Report) map[string]Entry {
	byName := make(map[string]Entry, len(r.Entries))
	for _, e := range r.Entries {
		byName[e.Name] = e
	}
	return byName
}

// writeReport marshals a report to the output file ("-" for stdout),
// exiting on failure — both the normal suite and the -cpus sweep end here.
func writeReport(rep Report, out string) {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if out == "-" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(out, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseCPUs parses the -cpus list: positive GOMAXPROCS values, deduplicated,
// ascending, so the sweep's entry order is deterministic regardless of how
// the flag was spelled.
func parseCPUs(s string) ([]int, error) {
	seen := map[int]bool{}
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-cpus: %q is not a positive integer", f)
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-cpus: empty list")
	}
	sort.Ints(out)
	return out, nil
}

// multicoreReport runs the multi-core shard sweep: for each requested
// GOMAXPROCS value n, the sequential paxos-gen run and the 2-process sharded
// run (plus 4-process when n >= 4), with the coordinator pinned via
// runtime.GOMAXPROCS and the worker processes capped through their
// environment. stampCPU runs inside the pin, so every entry records the
// GOMAXPROCS that actually governed it. The seq/shard pairs at each n are
// the honest speedup measurement: shard2_over_seq@cN below 1.0x means the
// fleet beat the sequential engine with n cores.
func multicoreReport(reps int, cpus []int, short bool, notes noteFlags) Report {
	rep := Report{
		Schema:     2,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Short:      short,
		Derived:    map[string]string{},
		Notes:      append([]string{"multi-core shard sweep (-cpus): seq vs sharded paxos-gen per GOMAXPROCS value"}, notes...),
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	paxosSpec := bench.ShardSpec("paxos")
	ratio := func(num, den Entry) string { return fmt.Sprintf("%.2fx", num.NsPerOp/den.NsPerOp) }
	for _, n := range cpus {
		if n > rep.NumCPU {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"c%d entries ran with GOMAXPROCS=%d on a %d-CPU host: oversubscribed, not a real %d-core measurement",
				n, n, rep.NumCPU, n))
		}
		runtime.GOMAXPROCS(n)
		env := []string{fmt.Sprintf("GOMAXPROCS=%d", n)}
		seq := measureExplore(fmt.Sprintf("explore/paxos-gen/seq@c%d", n), reps, -1, paxosGen)
		sh2 := measureShardExplore(fmt.Sprintf("explore/paxos-gen/shard2@c%d", n), reps, 2, paxosGen, paxosSpec, env)
		rep.Entries = append(rep.Entries, seq, sh2)
		rep.Derived[fmt.Sprintf("shard2_over_seq@c%d", n)] = ratio(sh2, seq)
		if n >= 4 {
			sh4 := measureShardExplore(fmt.Sprintf("explore/paxos-gen/shard4@c%d", n), reps, 4, paxosGen, paxosSpec, env)
			rep.Entries = append(rep.Entries, sh4)
			rep.Derived[fmt.Sprintf("shard4_over_seq@c%d", n)] = ratio(sh4, seq)
		}
	}
	runtime.GOMAXPROCS(prev)
	if rep.NumCPU == 1 {
		rep.Notes = append(rep.Notes,
			"single-CPU host: every swept value above 1 is oversubscribed; sharded entries measure protocol overhead, not speedup")
	}
	return rep
}

// gateMulticoreSpeedup enforces the multi-core claim: at the largest swept
// GOMAXPROCS value the host actually has cores for (2 <= n <= NumCPU), the
// 2-process sharded run must beat the sequential run outright
// (shard2_over_seq@cN < 1.0x). When no swept value qualifies — a single-CPU
// host — the gate is vacuous and says so on stderr; the real exercise
// happens on the multi-core CI runner.
func gateMulticoreSpeedup(rep Report, cpus []int) error {
	best := 0
	for _, n := range cpus {
		if n >= 2 && n <= rep.NumCPU && n > best {
			best = n
		}
	}
	if best == 0 {
		fmt.Fprintf(os.Stderr,
			"benchjson: multicore gate vacuous: no swept GOMAXPROCS value in [2, NumCPU=%d]; speedup is not checkable on this host\n",
			rep.NumCPU)
		return nil
	}
	byName := entriesByName(rep)
	seq, okSeq := byName[fmt.Sprintf("explore/paxos-gen/seq@c%d", best)]
	sh2, okSh2 := byName[fmt.Sprintf("explore/paxos-gen/shard2@c%d", best)]
	if !okSeq || !okSh2 || seq.NsPerOp <= 0 || sh2.NsPerOp <= 0 {
		return fmt.Errorf("multicore gate: c%d entries missing from report", best)
	}
	if r := sh2.NsPerOp / seq.NsPerOp; r >= 1.0 {
		return fmt.Errorf("multicore gate: shard2@c%d is %.3fx the sequential run (must be < 1.0x): %.1f ms vs %.1f ms",
			best, r, sh2.WallClockMS, seq.WallClockMS)
	}
	fmt.Fprintf(os.Stderr, "benchjson: multicore gate ok: shard2@c%d at %.3fx of sequential (%.1f ms vs %.1f ms)\n",
		best, sh2.NsPerOp/seq.NsPerOp, sh2.WallClockMS, seq.WallClockMS)
	return nil
}

func gate(cur Report, baselinePath string, maxRatio float64) error {
	base, err := loadReport(baselinePath)
	if err != nil {
		return err
	}
	byName := entriesByName(base)
	var failed []string
	for _, e := range cur.Entries {
		b, ok := byName[e.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if ratio := e.NsPerOp / b.NsPerOp; ratio > maxRatio {
			failed = append(failed, fmt.Sprintf("%s: %.0f ns vs baseline %.0f ns (%.2fx > %.2fx)",
				e.Name, e.NsPerOp, b.NsPerOp, ratio, maxRatio))
		}
	}
	if len(failed) > 0 {
		for _, f := range failed {
			fmt.Fprintln(os.Stderr, "benchjson: regression:", f)
		}
		return fmt.Errorf("%d entries regressed beyond %.2fx", len(failed), maxRatio)
	}
	return nil
}

// printCompare renders a per-entry delta table of the current report against
// an older one: wall clock, old/new ratio (>1 means the new run is slower),
// and throughput delta for exploration entries.
func printCompare(cur Report, oldPath string) error {
	old, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	byName := entriesByName(old)
	fmt.Printf("%-34s %14s %14s %7s %14s\n",
		"entry", "old ns/op", "new ns/op", "ratio", "states/s delta")
	for _, e := range cur.Entries {
		b, ok := byName[e.Name]
		if !ok || b.NsPerOp <= 0 {
			fmt.Printf("%-34s %14s %14.0f %7s %14s\n", e.Name, "-", e.NsPerOp, "-", "-")
			continue
		}
		delta := "-"
		if e.StatesPerSec > 0 && b.StatesPerSec > 0 {
			delta = fmt.Sprintf("%+14.0f", e.StatesPerSec-b.StatesPerSec)
		}
		fmt.Printf("%-34s %14.0f %14.0f %6.2fx %14s\n",
			e.Name, b.NsPerOp, e.NsPerOp, e.NsPerOp/b.NsPerOp, delta)
	}
	return nil
}

// gateOptThroughput enforces the soundness-engine throughput floor: the
// sequential Paxos LMC-OPT run's states/sec must stay at or above minFactor
// times the checked-in baseline's (e.g. 0.9 tolerates 10% host jitter; a
// real regression in the exploration hot path trips it).
func gateOptThroughput(cur Report, baselinePath string, minFactor float64) error {
	const entry = "explore/paxos-opt/seq"
	base, err := loadReport(baselinePath)
	if err != nil {
		return err
	}
	curE, okCur := entriesByName(cur)[entry]
	baseE, okBase := entriesByName(base)[entry]
	if !okCur || !okBase || curE.StatesPerSec <= 0 || baseE.StatesPerSec <= 0 {
		return fmt.Errorf("optgate: entry %q missing from report or baseline", entry)
	}
	if r := curE.StatesPerSec / baseE.StatesPerSec; r < minFactor {
		return fmt.Errorf("optgate: %s throughput is %.3fx the baseline (floor %.3fx): %.0f states/s vs %.0f states/s",
			entry, r, minFactor, curE.StatesPerSec, baseE.StatesPerSec)
	}
	fmt.Fprintf(os.Stderr, "benchjson: optgate ok: %s at %.3fx of baseline throughput (floor %.3fx)\n",
		entry, curE.StatesPerSec/baseE.StatesPerSec, minFactor)
	return nil
}

// noteFlags collects repeated -note values.
type noteFlags []string

func (n *noteFlags) String() string { return fmt.Sprint([]string(*n)) }
func (n *noteFlags) Set(v string) error {
	*n = append(*n, v)
	return nil
}

func main() {
	out := flag.String("out", "BENCH_lmc.json", "output file (\"-\" for stdout)")
	short := flag.Bool("short", false, "single repetition per entry (CI smoke)")
	baseline := flag.String("baseline", "", "baseline JSON to gate against")
	maxRatio := flag.Float64("maxratio", 2.0, "fail when ns/op exceeds baseline by this factor")
	showProgress := flag.Bool("progress", false,
		"log run milestones and heartbeats to stderr while measuring (the logging overhead is part of the reported timings)")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof and expvar on this address (e.g. localhost:6060); live counters appear under /debug/vars key \"lmc\"")
	obsGate := flag.Float64("obsgate", 0,
		"fail when the nil-observer explore/paxos-gen/seq entry exceeds the baseline's by this factor (e.g. 1.02 for the 2% budget); 0 disables")
	optGate := flag.Float64("optgate", 0,
		"fail when explore/paxos-opt/seq states/sec falls below the baseline's times this factor (e.g. 0.9 tolerates 10% jitter); 0 disables")
	actorGate := flag.Float64("actorgate", 0,
		"fail when checking the real 2PC implementation through the actorcheck adapter exceeds the hand-written model's time by this factor (median of paired back-to-back trials; needs no baseline); 0 disables")
	compare := flag.String("compare", "",
		"older report JSON to print a per-entry delta table against (stdout)")
	reduceFlag := flag.String("reduce", "",
		"apply these reductions (comma-separated subset of sym,por; all/none) to EVERY explore entry — changes entry semantics, do not combine with baseline gating; default off")
	reduceGate := flag.Float64("reducegate", 0,
		"fail when the reduced 3-acceptor paxos-gen run materializes more than this fraction of the unreduced run's system states (e.g. 0.5 for the 2x bar); verdicts must agree; same-run ratio, needs no baseline; 0 disables")
	storeGate := flag.Float64("storegate", 0,
		"fail when checkpointing every round to a store file costs more than this factor over the plain paxos-gen run (e.g. 1.05 for the 5% budget; median of paired back-to-back trials, needs no baseline); 0 disables")
	shardGate := flag.Bool("shardgate", false,
		"fail unless a 2-shard multi-process paxos-gen run matches the in-process run bit-for-bit without degrading (same-run parity, needs no baseline)")
	shardWorker := flag.Bool("shard-worker", false,
		"serve as a shard worker on stdin/stdout (internal; spawned by sharded entries)")
	cpusFlag := flag.String("cpus", "",
		"comma-separated GOMAXPROCS values (e.g. 1,2,4): run ONLY the multi-core shard sweep — for each value, sequential and 2-process sharded paxos-gen with both coordinator and workers pinned to that many cores; with -shardgate also enforce shard2 < seq at the largest value the host has cores for")
	var notes noteFlags
	flag.Var(&notes, "note", "free-form note to embed in the report (repeatable)")
	flag.Parse()

	if *shardWorker {
		if err := shard.RunWorker(bench.ShardResolver()); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	if *showProgress {
		progress = obs.NewLogObserver(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	if *pprofAddr != "" {
		// Live counters for the /debug/vars endpoint: the expvar observer
		// rides along on every measured run.
		progress = obs.Multi(progress, obs.NewExpvarObserver("lmc"))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "benchjson: serving pprof+expvar on http://%s/debug/\n", *pprofAddr)
	}

	reps := 3
	if *short {
		reps = 1
	}

	if *cpusFlag != "" {
		cpus, err := parseCPUs(*cpusFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		rep := multicoreReport(reps, cpus, *short, notes)
		writeReport(rep, *out)
		if *shardGate {
			if err := gateShardParity(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			if err := gateMulticoreSpeedup(rep, cpus); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}
		if *compare != "" {
			if err := printCompare(rep, *compare); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}
		return
	}

	globalReduce, err := core.ParseReductions(*reduceFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}

	rep := Report{
		Schema:     2,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Short:      *short,
		Derived:    map[string]string{},
		Notes:      []string(notes),
	}

	// sp applies the -reduce override (ad-hoc measurement of an arbitrary
	// reduction mix); with the flag unset it is the identity, keeping the
	// named entries' semantics stable for baseline gating.
	sp := func(s space) space {
		if globalReduce.Any() {
			return withReductions(s, globalReduce)
		}
		return s
	}
	if globalReduce.Any() {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("explore entries measured with -reduce=%s; not comparable to default baselines", globalReduce))
	}

	allReductions := core.Reductions{Symmetry: true, PartialOrder: true}
	rep.Entries = append(rep.Entries,
		measureExplore("explore/paxos-gen/seq", reps, -1, sp(paxosGen)),
		measureExplore("explore/paxos-gen/w8", reps, 8, sp(paxosGen)),
		measureExplore("explore/paxos-gen/reduced", reps, -1, withReductions(paxosGen, allReductions)),
		measureExplore("explore/paxos-opt/seq", reps, -1, sp(paxosOpt)),
		measureExplore("explore/paxos-opt/w8", reps, 8, sp(paxosOpt)),
		measureExplore("explore/paxos-opt/reduced", reps, -1, withReductions(paxosOpt, allReductions)),
		measureExplore("explore/2pc-model/seq", reps, -1, sp(twophaseModel)),
		measureExplore("explore/2pc-actor/seq", reps, -1, sp(twophaseActor)),
	)

	// Sharded entries: the same Paxos spaces with exploration split across
	// re-exec'd worker processes (sequential coordinator, so the ratio
	// against /seq isolates the sharding machinery). The workers resolve
	// the registry workload behind bench.ShardSpec.
	paxosSpec := bench.ShardSpec("paxos")
	rep.Entries = append(rep.Entries,
		measureShardExplore("explore/paxos-gen/shard2", reps, 2, sp(paxosGen), paxosSpec, nil),
		measureShardExplore("explore/paxos-gen/shard4", reps, 4, sp(paxosGen), paxosSpec, nil),
		measureShardExplore("explore/paxos-opt/shard2", reps, 2, sp(paxosOpt), paxosSpec, nil),
		measureShardExplore("explore/paxos-opt/shard4", reps, 4, sp(paxosOpt), paxosSpec, nil),
	)

	// Observer-overhead entries: the same sequential Paxos GEN run with a
	// slog observer writing to a discard handler (isolates event production
	// from terminal I/O) and with the expvar observer. Compare against
	// explore/paxos-gen/seq, the nil-observer run.
	discardLog := obs.NewLogObserver(slog.New(slog.NewTextHandler(io.Discard, nil)))
	rep.Entries = append(rep.Entries,
		measureExplore("explore/paxos-gen/obs-log", reps, -1, withObserver(paxosGen, discardLog)),
		measureExplore("explore/paxos-gen/obs-expvar", reps, -1,
			withObserver(paxosGen, obs.NewExpvarObserver("lmc_bench"))),
	)

	// Checkpoint-overhead entry: the same sequential Paxos GEN run with
	// every round checkpointed to a fresh store file (what `lmc serve`
	// pays). Compare against explore/paxos-gen/seq; -storegate enforces
	// the budget on paired trials.
	ckptSpace, ckptRounds, closeCkpt, err := checkpointedSpace(paxosGen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Entries = append(rep.Entries,
		measureExplore("explore/paxos-gen/checkpointed", reps, -1, ckptSpace))
	closeCkpt()
	if *ckptRounds == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: checkpointed entry wrote no rounds; the sink is miswired")
		os.Exit(1)
	}

	s := &fpState{round: 3, value: 7, active: true, peers: []int{2, 0, 1}}
	rep.Entries = append(rep.Entries,
		measureMicro("fingerprint/pooled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				codec.HashOf(s)
			}
		}),
		measureMicro("fingerprint/unpooled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var w codec.Writer
				s.Encode(&w)
				codec.Hash(w.Bytes())
			}
		}),
	)

	byName := make(map[string]Entry, len(rep.Entries))
	for _, e := range rep.Entries {
		byName[e.Name] = e
	}
	ratio := func(a, b string) string {
		return fmt.Sprintf("%.2fx", byName[a].NsPerOp/byName[b].NsPerOp)
	}
	rep.Derived["gen_seq_over_w8"] = ratio("explore/paxos-gen/seq", "explore/paxos-gen/w8")
	rep.Derived["opt_seq_over_w8"] = ratio("explore/paxos-opt/seq", "explore/paxos-opt/w8")
	rep.Derived["gen_reduced_over_seq"] = ratio("explore/paxos-gen/reduced", "explore/paxos-gen/seq")
	rep.Derived["opt_reduced_over_seq"] = ratio("explore/paxos-opt/reduced", "explore/paxos-opt/seq")
	rep.Derived["fingerprint_unpooled_over_pooled"] = ratio("fingerprint/unpooled", "fingerprint/pooled")
	rep.Derived["checkpoint_over_seq"] = ratio("explore/paxos-gen/checkpointed", "explore/paxos-gen/seq")
	rep.Derived["obs_log_over_nil"] = ratio("explore/paxos-gen/obs-log", "explore/paxos-gen/seq")
	rep.Derived["obs_expvar_over_nil"] = ratio("explore/paxos-gen/obs-expvar", "explore/paxos-gen/seq")
	rep.Derived["actor_over_model"] = ratio("explore/2pc-actor/seq", "explore/2pc-model/seq")
	rep.Derived["shard2_over_seq"] = ratio("explore/paxos-gen/shard2", "explore/paxos-gen/seq")
	rep.Derived["gen_shard4_over_seq"] = ratio("explore/paxos-gen/shard4", "explore/paxos-gen/seq")
	rep.Derived["opt_shard2_over_seq"] = ratio("explore/paxos-opt/shard2", "explore/paxos-opt/seq")
	rep.Derived["opt_shard4_over_seq"] = ratio("explore/paxos-opt/shard4", "explore/paxos-opt/seq")
	// The entry-based shard2_over_seq compares measurements taken a minute
	// apart, which host-speed drift can skew either way; the paired variant
	// is the drift-immune replication-tax number (same methodology as
	// -actorgate and -storegate: median of back-to-back trials).
	rep.Derived["shard2_over_seq_paired"] = fmt.Sprintf("%.2fx", pairedShardRatio(5))
	if rep.NumCPU == 1 {
		rep.Notes = append(rep.Notes,
			"single-CPU host: worker-pool speedups are not observable; seq-over-w8 ratios reflect pool overhead only, and sharded entries pay process spawn plus protocol round-trips with no parallel win")
	}

	writeReport(rep, *out)

	if *actorGate > 0 {
		if err := gateActorOverhead(*actorGate); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	if *reduceGate > 0 {
		if err := gateReduction(*reduceGate); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	if *storeGate > 0 {
		if err := gateStoreOverhead(*storeGate); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	if *shardGate {
		if err := gateShardParity(); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	if *compare != "" {
		if err := printCompare(rep, *compare); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	if *baseline != "" {
		if err := gate(rep, *baseline, *maxRatio); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if *obsGate > 0 {
			if err := gateObserverOverhead(rep, *baseline, *obsGate); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}
		if *optGate > 0 {
			if err := gateOptThroughput(rep, *baseline, *optGate); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}
	}
}

// gateActorOverhead enforces the interception-seam budget: checking the real
// 2PC implementation through the actorcheck adapter may cost at most
// maxRatio times the hand-written model's run. Both runs are a few hundred
// microseconds, where a best-of-1 report entry swings well over 2x with the
// harness's heap state, so instead of reusing report entries the gate takes
// the median over paired trials — each trial a back-to-back best-of-3 of
// model then adapter, so the two sides see the same heap — which is
// host-speed independent, baseline-free, and stable under -short and under
// reordering of the entry list. The pair must stay the 4-node config the
// report entries use: the ratio is not scale-invariant (the adapter's
// per-transition snapshot/restore cost grows with state size, ~10x at 5
// nodes), so a budget is only meaningful against a fixed space.
func gateActorOverhead(maxRatio float64) error {
	const trials = 7
	bestOf3 := func(s space) float64 {
		e := measureExplore("actorgate-probe", 3, -1, s)
		return e.NsPerOp
	}
	ratios := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		modelNs := bestOf3(twophaseModel)
		actorNs := bestOf3(twophaseActor)
		if modelNs <= 0 || actorNs <= 0 {
			return fmt.Errorf("actorgate: gate runs produced no timing")
		}
		ratios = append(ratios, actorNs/modelNs)
	}
	sort.Float64s(ratios)
	median := ratios[trials/2]
	if median > maxRatio {
		return fmt.Errorf("actorgate: adapter run is %.3fx the model run (budget %.3fx, median of %d paired trials, spread %.3f-%.3f)",
			median, maxRatio, trials, ratios[0], ratios[trials-1])
	}
	fmt.Fprintf(os.Stderr, "benchjson: actorgate ok: adapter at %.3fx of model time (budget %.3fx, median of %d paired trials)\n",
		median, maxRatio, trials)
	return nil
}

// gateReduction enforces the symmetry+POR state-space bar on a 3-acceptor
// Paxos-GEN space: one distinguished proposer plus three interchangeable
// acceptors, depth-capped so the gate stays a few seconds. The reduced run
// must materialize at most maxFraction of the unreduced run's system states
// while agreeing on completeness and verdicts. The ratio is between two runs
// of the SAME invocation, so the gate is host-speed independent and needs no
// baseline file. (The 3-node bench workloads keep only a 2-acceptor class,
// whose orbits are too small to clear a 2x bar; the gate measures the
// configuration the reduction is for.)
func gateReduction(maxFraction float64) error {
	run := func(r core.Reductions) *core.Result {
		m := paxos.New(4, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
		return core.Check(m, model.InitialSystem(m), core.Options{
			Invariant:      paxos.Agreement(),
			SoundnessShare: -1,
			MaxSystemDepth: 6,
			Reduce:         r,
		})
	}
	base := run(core.Reductions{})
	red := run(core.Reductions{Symmetry: true, PartialOrder: true})
	if !base.Complete || !red.Complete {
		return fmt.Errorf("reducegate: gate runs incomplete (base=%v reduced=%v)", base.Complete, red.Complete)
	}
	if len(base.Bugs) != len(red.Bugs) {
		return fmt.Errorf("reducegate: verdicts diverged: unreduced found %d bugs, reduced found %d",
			len(base.Bugs), len(red.Bugs))
	}
	if base.Stats.SystemStates <= 0 {
		return fmt.Errorf("reducegate: unreduced run materialized no system states")
	}
	r := float64(red.Stats.SystemStates) / float64(base.Stats.SystemStates)
	if r > maxFraction {
		return fmt.Errorf("reducegate: reduced run kept %.3f of system states (bar %.3f): %d vs %d",
			r, maxFraction, red.Stats.SystemStates, base.Stats.SystemStates)
	}
	fmt.Fprintf(os.Stderr, "benchjson: reducegate ok: reduced run kept %.3f of system states (bar %.3f): %d vs %d, skips=%d\n",
		r, maxFraction, red.Stats.SystemStates, base.Stats.SystemStates, red.Stats.SymmetrySkips)
	return nil
}

// roundCountSink counts sink calls so the harness can verify the
// checkpointed entries really paid the write path.
type roundCountSink struct {
	n    *int
	next core.CheckpointSink
}

func (c roundCountSink) OnRoundCheckpoint(cp core.RoundCheckpoint) error {
	*c.n++
	return c.next.OnRoundCheckpoint(cp)
}

// checkpointedSpace wraps a configuration so every call (one per measured
// rep) checkpoints into a FRESH store file — reusing a bucket would let
// AppendRound's dedupe skip the writes being measured. The returned
// counter accumulates checkpointed rounds across calls; the closer
// releases the store handles and deletes the files.
func checkpointedSpace(s space) (space, *int, func(), error) {
	dir, err := os.MkdirTemp("", "lmc-benchjson-store")
	if err != nil {
		return nil, nil, nil, fmt.Errorf("storegate temp dir: %w", err)
	}
	var open []*store.Store
	rounds := new(int)
	n := 0
	sp := func() (model.Machine, model.SystemState, core.Options) {
		m, start, opt := s()
		n++
		st, err := store.Open(filepath.Join(dir, fmt.Sprintf("rep%d.lmcstore", n)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: checkpointed entry:", err)
			os.Exit(1)
		}
		if err := st.CreateRun("gate", "paxos-gen", store.CodeHash(), store.OptionsSig("paxos-gen")); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: checkpointed entry:", err)
			os.Exit(1)
		}
		opt.Checkpoint = roundCountSink{n: rounds, next: st.Sink("gate")}
		open = append(open, st)
		return m, start, opt
	}
	closer := func() {
		for _, st := range open {
			st.Close()
		}
		os.RemoveAll(dir)
	}
	return sp, rounds, closer, nil
}

// gateStoreOverhead enforces the durability budget: checkpointing every
// round of the sequential Paxos GEN run to a store file may cost at most
// maxRatio times the plain run. Both runs are milliseconds, where report
// entries swing with harness heap state, so (like the actor gate) this
// takes the median over paired back-to-back trials — each trial a
// best-of-3 of plain then checkpointed on the same heap — making it
// host-speed independent and baseline-free.
func gateStoreOverhead(maxRatio float64) error {
	const trials = 7
	bestOf3 := func(s space) (time.Duration, error) {
		var best time.Duration
		for i := 0; i < 3; i++ {
			m, start, opt := s()
			res := core.Check(m, start, opt)
			if !res.Complete {
				return 0, fmt.Errorf("storegate: gate run incomplete")
			}
			if best == 0 || res.Stats.Elapsed < best {
				best = res.Stats.Elapsed
			}
		}
		return best, nil
	}
	ratios := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		ckptSpace, rounds, closeCkpt, err := checkpointedSpace(paxosGen)
		if err != nil {
			return err
		}
		plainNs, err := bestOf3(paxosGen)
		if err == nil {
			var ckptNs time.Duration
			ckptNs, err = bestOf3(ckptSpace)
			if err == nil && *rounds == 0 {
				err = fmt.Errorf("storegate: checkpointed runs wrote no rounds; the sink is miswired")
			}
			if err == nil {
				ratios = append(ratios, float64(ckptNs)/float64(plainNs))
			}
		}
		closeCkpt()
		if err != nil {
			return err
		}
	}
	sort.Float64s(ratios)
	median := ratios[trials/2]
	if median > maxRatio {
		return fmt.Errorf("storegate: checkpointed run is %.3fx the plain run (budget %.3fx, median of %d paired trials, spread %.3f-%.3f)",
			median, maxRatio, trials, ratios[0], ratios[trials-1])
	}
	fmt.Fprintf(os.Stderr, "benchjson: storegate ok: checkpointing at %.3fx of plain run time (budget %.3fx, median of %d paired trials)\n",
		median, maxRatio, trials)
	return nil
}

// pairedShardRatio measures the sharding machinery's replication tax the
// drift-immune way: the median over paired back-to-back trials of (2-shard
// paxos-gen elapsed / sequential elapsed), each side best-of-2 within the
// pair so both see the same host state. Entry-based ratios compare runs
// taken a minute apart, which host-speed drift skews either way; the
// actor and store gates use this same pairing for the same reason.
func pairedShardRatio(trials int) float64 {
	paxosSpec := bench.ShardSpec("paxos")
	ratios := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		seq := measureExplore("shardpair-seq", 2, -1, paxosGen)
		sh2 := measureShardExplore("shardpair-shard2", 2, 2, paxosGen, paxosSpec, nil)
		if seq.NsPerOp <= 0 {
			fmt.Fprintln(os.Stderr, "benchjson: shard pairing produced no timing")
			os.Exit(1)
		}
		ratios = append(ratios, sh2.NsPerOp/seq.NsPerOp)
	}
	sort.Float64s(ratios)
	return ratios[trials/2]
}

// gateShardParity enforces the sharding soundness bar end to end: a
// 2-shard multi-process paxos-gen run (re-exec'd workers, real pipes) must
// reproduce the in-process run bit-for-bit — same deterministic counters,
// same completeness, no degradation. Same-invocation comparison, so the
// gate needs no baseline file and is host-speed independent.
func gateShardParity() error {
	m, start, opt := paxosGen()
	base := core.Check(m, start, opt)

	var degradeDetail string
	sOpt := opt
	sOpt.Observer = obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindShardDegraded {
			degradeDetail = e.Detail
		}
	})
	res, err := shard.Check(context.Background(), m, start, sOpt, shard.Config{
		Shards:  2,
		Spawner: shard.SelfExec{Args: []string{"-shard-worker"}},
		Spec:    bench.ShardSpec("paxos"),
	})
	if err != nil {
		return fmt.Errorf("shardgate: %w", err)
	}
	if degradeDetail != "" {
		return fmt.Errorf("shardgate: sharded run degraded: %s", degradeDetail)
	}
	b, g := base.Stats, res.Stats
	if b.NodeStates != g.NodeStates || b.SystemStates != g.SystemStates ||
		b.Transitions != g.Transitions || b.InvariantChecks != g.InvariantChecks ||
		b.DuplicatesDropped != g.DuplicatesDropped ||
		base.Complete != res.Complete || len(base.Bugs) != len(res.Bugs) {
		return fmt.Errorf("shardgate: 2-shard run diverged from in-process:\nseq:   %s\nshard: %s",
			b.String(), g.String())
	}
	fmt.Fprintf(os.Stderr, "benchjson: shardgate ok: 2-shard run matches in-process (%d node states, %d transitions)\n",
		g.NodeStates, g.Transitions)
	return nil
}

// gateObserverOverhead enforces the observability layer's budget: the
// nil-observer sequential Paxos GEN run must stay within maxRatio of the
// checked-in baseline's (the observer plumbing may not tax runs that do
// not use it).
func gateObserverOverhead(cur Report, baselinePath string, maxRatio float64) error {
	const entry = "explore/paxos-gen/seq"
	base, err := loadReport(baselinePath)
	if err != nil {
		return err
	}
	curNs := entriesByName(cur)[entry].NsPerOp
	baseNs := entriesByName(base)[entry].NsPerOp
	if curNs <= 0 || baseNs <= 0 {
		return fmt.Errorf("obsgate: entry %q missing from report or baseline", entry)
	}
	if r := curNs / baseNs; r > maxRatio {
		return fmt.Errorf("obsgate: nil-observer %s is %.3fx the baseline (budget %.3fx): %.0f ns vs %.0f ns",
			entry, r, maxRatio, curNs, baseNs)
	}
	fmt.Fprintf(os.Stderr, "benchjson: obsgate ok: %s at %.3fx of baseline (budget %.3fx)\n",
		entry, curNs/baseNs, maxRatio)
	return nil
}
