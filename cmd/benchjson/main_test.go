package main

import (
	"encoding/json"
	"testing"
)

// TestEntryRoundTrip pins the schema-2 entry contract: an entry survives a
// JSON round trip field-for-field, and wall_clock_ms is derived from
// ns_per_op in exactly one place (withWallClock), so the two can never
// disagree in a written report.
func TestEntryRoundTrip(t *testing.T) {
	e := Entry{
		Name:         "explore/paxos-gen/shard2@c4",
		NsPerOp:      12_345_678,
		AllocsPerOp:  901,
		BytesPerOp:   23456,
		StatesPerSec: 78901.5,
		NumCPU:       4,
		GOMAXPROCS:   4,
		Workers:      1,
		Shards:       2,
	}.withWallClock()

	if want := e.NsPerOp / 1e6; e.WallClockMS != want {
		t.Fatalf("withWallClock: got %v ms, want %v ms", e.WallClockMS, want)
	}

	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Entry
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != e {
		t.Fatalf("entry mutated in round trip:\n got %+v\nwant %+v", back, e)
	}

	// Re-deriving on the decoded entry must be a no-op — the invariant a
	// reader can rely on when joining on either field.
	if again := back.withWallClock(); again != back {
		t.Fatalf("withWallClock not idempotent: %+v vs %+v", again, back)
	}
}

// TestParseCPUs pins the -cpus list semantics: dedup, ascending order, and
// rejection of non-positive or malformed values.
func TestParseCPUs(t *testing.T) {
	got, err := parseCPUs("4, 1,2,4")
	if err != nil {
		t.Fatalf("parseCPUs: %v", err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("parseCPUs = %v, want [1 2 4]", got)
	}
	for _, bad := range []string{"", "0", "-2", "two", "1,,x"} {
		if _, err := parseCPUs(bad); err == nil {
			t.Errorf("parseCPUs(%q): want error, got none", bad)
		}
	}
}
