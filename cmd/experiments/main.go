// Command experiments regenerates every table and figure of the paper's
// evaluation (§5) plus the ablations listed in DESIGN.md.
//
// Usage:
//
//	experiments                  # everything, with default budgets
//	experiments -only fig10      # one artifact
//	experiments -budget 30s      # per-run budget for the heavy artifacts
//	experiments -list            # list artifact names
//
// Artifact names: fig10 fig11 fig12 fig13 transitions scalability
// soundness paxosbug onepaxosbug online tree chain dupes parallel adapter.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lmc/internal/bench"
)

type artifact struct {
	name string
	desc string
	run  func(budget time.Duration) (*bench.Table, error)
}

func artifacts() []artifact {
	return []artifact{
		{"fig10", "elapsed time vs depth (B-DFS, LMC-GEN, LMC-OPT)", func(b time.Duration) (*bench.Table, error) {
			return bench.Fig10(b), nil
		}},
		{"fig11", "explored states vs depth", func(b time.Duration) (*bench.Table, error) {
			return bench.Fig11(b), nil
		}},
		{"fig12", "memory growth vs depth", func(b time.Duration) (*bench.Table, error) {
			return bench.Fig12(b), nil
		}},
		{"fig13", "LMC overhead breakdown on buggy Paxos", bench.Fig13},
		{"transitions", "§5.1 transition counts", func(b time.Duration) (*bench.Table, error) {
			return bench.Transitions(b), nil
		}},
		{"scalability", "§5.2 two-proposal scalability limits", func(b time.Duration) (*bench.Table, error) {
			return bench.Scalability(b), nil
		}},
		{"soundness", "§5.4 soundness-verification cost", bench.Soundness},
		{"paxosbug", "§5.5 Paxos bug from the crafted live state", bench.PaxosBug},
		{"onepaxosbug", "§5.6 1Paxos ++ bug", bench.OnePaxosBug},
		{"online", "§5.5 full online pipeline (live lossy run + restarts)", func(b time.Duration) (*bench.Table, error) {
			return bench.OnlinePaxos(11, b, 4*3600), nil
		}},
		{"tree", "§2 primer numbers", func(time.Duration) (*bench.Table, error) {
			return bench.TreePrimer(), nil
		}},
		{"chain", "A1: chain vs broadcast ablation", func(b time.Duration) (*bench.Table, error) {
			return bench.ChainAblation(b), nil
		}},
		{"dupes", "A2: duplicate-message limit ablation", func(b time.Duration) (*bench.Table, error) {
			return bench.DupAblation(b), nil
		}},
		{"parallel", "A3: parallel system-state checking", func(b time.Duration) (*bench.Table, error) {
			return bench.ParallelAblation(b, []int{1, 2, 4, 8}), nil
		}},
		{"adapter", "A6: model vs real implementation through actorcheck", func(b time.Duration) (*bench.Table, error) {
			return bench.AdapterAblation(b), nil
		}},
	}
}

func main() {
	only := flag.String("only", "", "run a single artifact by name")
	budget := flag.Duration("budget", 20*time.Second, "wall-clock budget per heavy run")
	list := flag.Bool("list", false, "list artifact names and exit")
	flag.Parse()

	arts := artifacts()
	if *list {
		for _, a := range arts {
			fmt.Printf("%-12s %s\n", a.name, a.desc)
		}
		return
	}
	ran := false
	for _, a := range arts {
		if *only != "" && a.name != *only {
			continue
		}
		ran = true
		fmt.Printf("-- %s: %s\n", a.name, a.desc)
		tbl, err := a.run(*budget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", a.name, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown artifact %q; use -list\n", *only)
		os.Exit(2)
	}
}
