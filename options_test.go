package lmc_test

import (
	"reflect"
	"testing"
	"time"

	"lmc"
	"lmc/internal/protocols/paxos"
	"lmc/internal/protocols/randtree"
)

// comparableInvariant and comparableLocal are DeepEqual-friendly doubles:
// the InvariantFunc adapters carry func values, which reflect.DeepEqual
// always reports unequal.
type comparableInvariant struct{ name string }

func (c comparableInvariant) Name() string                         { return c.name }
func (c comparableInvariant) Check(lmc.SystemState) *lmc.Violation { return nil }

type comparableLocal struct{ name string }

func (c comparableLocal) Name() string                           { return c.name }
func (c comparableLocal) CheckNode(lmc.NodeID, lmc.State) string { return "" }

// TestNewOptionsFieldEquivalence pins the documented contract: every Opt
// helper sets exactly the Options field of the same name, so the
// functional-options style and a struct literal are interchangeable.
func TestNewOptionsFieldEquivalence(t *testing.T) {
	inv := comparableInvariant{"inv"}
	locals := []lmc.LocalInvariant{comparableLocal{"local"}}
	red := lmc.Reductions{Symmetry: true, PartialOrder: true}
	ob := &lmc.EventRecorder{}
	sink := &recordingSink{}

	got := lmc.NewOptions(
		lmc.WithInvariant(inv),
		lmc.WithLocalInvariants(locals...),
		lmc.WithReduce(red),
		lmc.WithWorkers(4),
		lmc.WithShards(3),
		lmc.WithObserver(ob),
		lmc.WithBudget(2*time.Second),
		lmc.WithMaxTransitions(100),
		lmc.WithStopAtFirstBug(),
		lmc.WithCheckpoint(sink),
	)
	want := lmc.Options{
		Invariant:       inv,
		LocalInvariants: locals,
		Reduce:          red,
		Workers:         4,
		Shards:          3,
		Observer:        ob,
		Budget:          2 * time.Second,
		MaxTransitions:  100,
		StopAtFirstBug:  true,
		Checkpoint:      sink,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NewOptions diverged from the equivalent literal:\n got %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(lmc.NewOptions(), lmc.Options{}) {
		t.Fatal("NewOptions() is not the zero Options")
	}
}

func TestNewOptionsRuns(t *testing.T) {
	m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	lit := lmc.Check(m, lmc.InitialSystem(m), lmc.Options{Invariant: paxos.Agreement()})
	fn := lmc.Check(m, lmc.InitialSystem(m), lmc.NewOptions(lmc.WithInvariant(paxos.Agreement())))
	if lit.Stats.Transitions != fn.Stats.Transitions || lit.Stats.SystemStates != fn.Stats.SystemStates {
		t.Fatalf("literal and functional options ran differently: %+v vs %+v", lit.Stats, fn.Stats)
	}
}

// TestValidateRejections covers each rejection case of the uniform
// Validate contract across the three option surfaces.
func TestValidateRejections(t *testing.T) {
	m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	inv := paxos.Agreement()

	t.Run("core", func(t *testing.T) {
		cases := []lmc.Options{
			{},                                  // nothing to check
			{Invariant: inv, SoundnessShare: 2}, // share > 1
		}
		for i, opt := range cases {
			if err := opt.Validate(); err == nil {
				t.Fatalf("case %d accepted: %+v", i, opt)
			}
		}
		ok := []lmc.Options{
			{Invariant: inv},
			{DisableSystemStates: true},
			{LocalInvariants: []lmc.LocalInvariant{randtree.Structure()}},
		}
		for i, opt := range ok {
			if err := opt.Validate(); err != nil {
				t.Fatalf("valid case %d rejected: %v", i, err)
			}
		}
	})

	t.Run("global", func(t *testing.T) {
		cases := []lmc.GlobalOptions{
			{},                                     // no invariant
			{Invariant: inv, Strategy: 7},          // unknown strategy
			{Invariant: inv, MaxDepth: -1},         // negative depth
			{Invariant: inv, MaxTransitions: -1},   // negative transitions
			{Invariant: inv, Budget: -time.Second}, // negative budget
		}
		for i, opt := range cases {
			if err := opt.Validate(); err == nil {
				t.Fatalf("case %d accepted: %+v", i, opt)
			}
		}
		if err := (&lmc.GlobalOptions{Invariant: inv, Strategy: lmc.BFS, MaxDepth: 5}).Validate(); err != nil {
			t.Fatalf("valid options rejected: %v", err)
		}
	})

	t.Run("online", func(t *testing.T) {
		cases := []lmc.OnlineConfig{
			{},                           // no machine
			{Machine: m, Interval: -1},   // negative interval
			{Machine: m, MaxSimTime: -1}, // negative sim time
			{Machine: m},                 // checker unrunnable (no invariant)
		}
		for i, cfg := range cases {
			if err := cfg.Validate(); err == nil {
				t.Fatalf("case %d accepted: %+v", i, cfg)
			}
		}
		good := lmc.OnlineConfig{Machine: m, Checker: lmc.Options{Invariant: inv}}
		if err := good.Validate(); err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
	})
}
