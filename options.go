package lmc

import "time"

// Opt mutates an Options value; see NewOptions.
type Opt func(*Options)

// NewOptions builds checker Options from functional options. It is sugar
// over the Options struct literal — every Opt sets exactly the field of
// the same name, so the two styles compose and mix freely:
//
//	opt := lmc.NewOptions(lmc.WithInvariant(inv), lmc.WithWorkers(4))
//	opt.MaxTransitions = 1e6 // fields stay addressable afterwards
func NewOptions(opts ...Opt) Options {
	var o Options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// WithInvariant sets Options.Invariant, the system-wide safety property.
func WithInvariant(inv Invariant) Opt {
	return func(o *Options) { o.Invariant = inv }
}

// WithLocalInvariants sets Options.LocalInvariants, checked per node state
// with no Cartesian combination.
func WithLocalInvariants(ls ...LocalInvariant) Opt {
	return func(o *Options) { o.LocalInvariants = ls }
}

// WithReduction sets Options.Reduction, enabling LMC-OPT.
func WithReduction(r Reduction) Opt {
	return func(o *Options) { o.Reduction = r }
}

// WithReduce sets Options.Reduce, the fingerprint-layer reductions
// (symmetry, partial order); see ParseReductions for the CLI spelling.
func WithReduce(r Reductions) Opt {
	return func(o *Options) { o.Reduce = r }
}

// WithWorkers sets Options.Workers, the in-process worker-pool size
// (0 auto-detects, negative forces sequential). Results are bit-for-bit
// identical for every setting.
func WithWorkers(n int) Opt {
	return func(o *Options) { o.Workers = n }
}

// WithShards sets Options.Shards, requesting sharded multi-process
// exploration from runners that can spawn worker processes (cmd/lmc,
// internal/service); <= 1 means in-process.
func WithShards(n int) Opt {
	return func(o *Options) { o.Shards = n }
}

// WithObserver sets Options.Observer, the run-event receiver.
func WithObserver(ob Observer) Opt {
	return func(o *Options) { o.Observer = ob }
}

// WithBudget sets Options.Budget, the wall-time bound.
func WithBudget(d time.Duration) Opt {
	return func(o *Options) { o.Budget = d }
}

// WithMaxTransitions sets Options.MaxTransitions, the handler-execution
// bound.
func WithMaxTransitions(n int) Opt {
	return func(o *Options) { o.MaxTransitions = n }
}

// WithStopAtFirstBug sets Options.StopAtFirstBug.
func WithStopAtFirstBug() Opt {
	return func(o *Options) { o.StopAtFirstBug = true }
}

// WithInitialMessages sets Options.InitialMessages, seeding the shared
// network before exploration.
func WithInitialMessages(msgs ...Message) Opt {
	return func(o *Options) { o.InitialMessages = msgs }
}

// WithCheckpoint sets Options.Checkpoint, the per-round checkpoint sink
// (see internal/store, Store.Sink).
func WithCheckpoint(sink CheckpointSink) Opt {
	return func(o *Options) { o.Checkpoint = sink }
}

// WithResume sets Options.Resume, priming the run with a previous run's
// stored rounds (see internal/store, Store.Resume).
func WithResume(src ResumeSource) Opt {
	return func(o *Options) { o.Resume = src }
}
