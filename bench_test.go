// Benchmarks regenerating the paper's evaluation artifacts (§5), one per
// table/figure, plus the ablations of DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Figure-producing runs also print their table once per benchmark (the
// numbers the EXPERIMENTS.md comparison is built from) when -v is set via
// the EXPERIMENTS_PRINT environment variable.
package lmc_test

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"testing"
	"time"

	"lmc"
	"lmc/internal/actordemo"
	"lmc/internal/bench"
	"lmc/internal/protocols/onepaxos"
	"lmc/internal/protocols/paxos"
	"lmc/internal/protocols/twophase"
)

// printTables controls whether benchmarks dump their tables to stdout.
var printTables = os.Getenv("EXPERIMENTS_PRINT") != ""

func dump(b *testing.B, t *bench.Table) {
	if printTables {
		t.Fprint(os.Stdout)
	}
	_ = b
}

// oneProposal builds the §5.1 space.
func oneProposal() (*paxos.Machine, lmc.SystemState) {
	m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	return m, lmc.InitialSystem(m)
}

// BenchmarkFig10BDFS measures the baseline global exploration of the
// one-proposal Paxos space (the B-DFS curve of Figure 10).
func BenchmarkFig10BDFS(b *testing.B) {
	m, start := oneProposal()
	for i := 0; i < b.N; i++ {
		res := lmc.Global(m, start, lmc.GlobalOptions{Invariant: paxos.Agreement()})
		if !res.Complete || len(res.Bugs) != 0 {
			b.Fatalf("unexpected result: %+v", res.Stats)
		}
	}
}

// BenchmarkFig10LMCGen measures the general local checker on the same
// space (the LMC-GEN curve of Figure 10).
func BenchmarkFig10LMCGen(b *testing.B) {
	m, start := oneProposal()
	for i := 0; i < b.N; i++ {
		res := lmc.Check(m, start, lmc.Options{Invariant: paxos.Agreement()})
		if !res.Complete || len(res.Bugs) != 0 {
			b.Fatalf("unexpected result: %+v", res.Stats)
		}
	}
}

// BenchmarkFig10LMCOpt measures the invariant-optimized local checker (the
// LMC-OPT curve of Figure 10; paper speedup ~8000x over B-DFS).
func BenchmarkFig10LMCOpt(b *testing.B) {
	m, start := oneProposal()
	for i := 0; i < b.N; i++ {
		res := lmc.Check(m, start, lmc.Options{
			Invariant: paxos.Agreement(),
			Reduction: paxos.Reduction{},
		})
		if !res.Complete || len(res.Bugs) != 0 {
			b.Fatalf("unexpected result: %+v", res.Stats)
		}
	}
}

// BenchmarkFig11StateCounts regenerates the state-count series of
// Figure 11 (and prints it under EXPERIMENTS_PRINT).
func BenchmarkFig11StateCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dump(b, bench.Fig11(time.Minute))
	}
}

// BenchmarkFig12Memory regenerates the memory series of Figure 12.
func BenchmarkFig12Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dump(b, bench.Fig12(time.Minute))
	}
}

// BenchmarkFig13Overheads regenerates the buggy-Paxos overhead breakdown
// of Figure 13 (full vs no-soundness vs exploration-only).
func BenchmarkFig13Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig13(10 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		dump(b, t)
	}
}

// BenchmarkTransitionsTable regenerates the §5.1 transition-count
// comparison (paper: 157,332 vs 1,186, ~132x).
func BenchmarkTransitionsTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dump(b, bench.Transitions(time.Minute))
	}
}

// BenchmarkScalabilityTwoProposals regenerates the §5.2 two-proposal
// experiment with a small budget per checker.
func BenchmarkScalabilityTwoProposals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dump(b, bench.Scalability(3*time.Second))
	}
}

// BenchmarkPaxosBugDetection measures rediscovering the §5.5 bug from the
// paper's live state (paper: 11 s into the run).
func BenchmarkPaxosBugDetection(b *testing.B) {
	m := paxos.New(3, paxos.LastResponseBug, paxos.ActiveIndex{MaxPerNode: 1})
	live, err := paxos.PaperLiveState(m)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res := lmc.Check(m, live, lmc.Options{
			Invariant:      paxos.Agreement(),
			Reduction:      paxos.Reduction{},
			StopAtFirstBug: true,
			Budget:         time.Minute,
		})
		if len(res.Bugs) == 0 {
			b.Fatalf("bug not found: %+v", res.Stats)
		}
	}
}

// BenchmarkOnePaxosBugDetection measures rediscovering the §5.6 ++ bug
// from its live state (paper: found within a 225 s online session).
func BenchmarkOnePaxosBugDetection(b *testing.B) {
	m := onepaxos.New(3, onepaxos.PlusPlusBug, onepaxos.Driver{})
	live, err := onepaxos.PaperLiveState(m)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res := lmc.Check(m, live, lmc.Options{
			Invariant:      onepaxos.Agreement(),
			Reduction:      onepaxos.Reduction{},
			StopAtFirstBug: true,
			Budget:         time.Minute,
		})
		if len(res.Bugs) == 0 {
			b.Fatalf("bug not found: %+v", res.Stats)
		}
	}
}

// BenchmarkTreePrimer measures the §2 primer end to end (Figures 3 and 4).
func BenchmarkTreePrimer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dump(b, bench.TreePrimer())
	}
}

// BenchmarkChainAblation measures A1: chain vs broadcast.
func BenchmarkChainAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dump(b, bench.ChainAblation(time.Minute))
	}
}

// BenchmarkDupAblation measures A2: the duplicate-message limit.
func BenchmarkDupAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dump(b, bench.DupAblation(time.Minute))
	}
}

// BenchmarkPaxosGEN measures the observer layer's overhead on the §5.1 GEN
// run: nil observer (the fast path the ≤2% budget protects), a slog
// observer into a discard handler (event production without terminal I/O),
// and the expvar observer. EXPERIMENTS.md tabulates the ratios.
func BenchmarkPaxosGEN(b *testing.B) {
	discard := lmc.NewLogObserver(slog.New(slog.NewTextHandler(io.Discard, nil)))
	cases := []struct {
		name string
		obs  lmc.Observer
	}{
		{"nil", nil},
		{"obs-log", discard},
		{"obs-expvar", lmc.NewExpvarObserver("lmc_bench_test")},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			m, start := oneProposal()
			for i := 0; i < b.N; i++ {
				res := lmc.Check(m, start, lmc.Options{
					Invariant:      paxos.Agreement(),
					SoundnessShare: -1,
					Observer:       tc.obs,
				})
				if !res.Complete || len(res.Bugs) != 0 {
					b.Fatalf("unexpected result: %+v", res.Stats)
				}
			}
		})
	}
}

// BenchmarkAdapterAblation measures A4: the actorcheck interception seam's
// overhead — the hand-written 2PC model vs the semantically identical real
// implementation checked through the adapter, for both strategies. The
// state spaces are isomorphic, so the time ratio is pure adapter cost
// (snapshot/restore per handler execution plus blob fingerprinting).
func BenchmarkAdapterAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dump(b, bench.AdapterAblation(time.Minute))
	}
}

// BenchmarkActor2PC pins the two halves of the A4 comparison as separate
// entries so `go test -bench Actor2PC` shows the ns/op gap directly.
func BenchmarkActor2PC(b *testing.B) {
	b.Run("model", func(b *testing.B) {
		m := twophase.New(4, twophase.NoBug, 2)
		start := lmc.InitialSystem(m)
		for i := 0; i < b.N; i++ {
			res := lmc.Check(m, start, lmc.Options{
				Invariant: twophase.Atomicity(), SoundnessShare: -1})
			if !res.Complete || len(res.Bugs) != 0 {
				b.Fatalf("unexpected result: %+v", res.Stats)
			}
		}
	})
	b.Run("adapter", func(b *testing.B) {
		ad := actordemo.NewAdapter(4, actordemo.NoBug, 2)
		start := lmc.InitialSystem(ad)
		for i := 0; i < b.N; i++ {
			res := lmc.Check(ad, start, lmc.Options{
				Invariant: actordemo.Atomicity(ad), SoundnessShare: -1})
			if !res.Complete || len(res.Bugs) != 0 {
				b.Fatalf("unexpected result: %+v", res.Stats)
			}
		}
	})
}

// BenchmarkParallelCheck measures A3: worker fan-out for system-state
// checking on the GEN configuration.
func BenchmarkParallelCheck(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			m, start := oneProposal()
			for i := 0; i < b.N; i++ {
				res := lmc.Check(m, start, lmc.Options{
					Invariant: paxos.Agreement(),
					Workers:   workers,
				})
				if !res.Complete {
					b.Fatalf("incomplete: %+v", res.Stats)
				}
			}
		})
	}
}
