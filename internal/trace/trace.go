// Package trace represents counterexample schedules: totally ordered event
// sequences that drive the system from a start state to a state violating
// an invariant. The local checker's soundness verification produces one as
// its witness; Replay re-executes it against the real handlers and the real
// message-consuming network semantics, which is the final word on whether a
// reported bug can occur in an actual run (paper §3.2, soundness).
package trace

import (
	"fmt"
	"strings"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/netstate"
)

// Schedule is a totally ordered sequence of events.
type Schedule []model.Event

// String renders the schedule one event per line, numbered from 1.
func (sc Schedule) String() string {
	var b strings.Builder
	for i, e := range sc {
		fmt.Fprintf(&b, "%3d. %s\n", i+1, e.String())
	}
	return b.String()
}

// ReplayResult is the outcome of re-executing a schedule.
type ReplayResult struct {
	// Final is the system state after the last executed event.
	Final model.SystemState
	// Executed is how many events ran before a failure (== len(schedule)
	// on success).
	Executed int
	// Err is nil iff every event was enabled when its turn came and no
	// handler rejected.
	Err error
}

// Fingerprint hashes the final system state; replay round-trip checks
// compare it against the fingerprint of the state a checker claims the
// schedule reaches.
func (rr ReplayResult) Fingerprint() codec.Fingerprint {
	return rr.Final.Fingerprint()
}

// Replay executes the schedule on machine m starting from system state
// start (cloned; the argument is not mutated) with an initially empty
// in-flight network. Each network event must find its message in flight —
// exactly one copy is consumed — and each internal event must be among the
// actions the machine reports enabled.
func Replay(m model.Machine, start model.SystemState, sc Schedule) ReplayResult {
	return ReplayWith(m, start, nil, sc)
}

// ReplayWith is Replay with messages already in flight at the start — the
// captured in-flight set a checker may have been seeded with.
func ReplayWith(m model.Machine, start model.SystemState, inflight []model.Message, sc Schedule) ReplayResult {
	sys := start.Clone()
	net := netstate.NewMultiset()
	net.AddAll(inflight)
	for i, e := range sc {
		if int(e.Node) < 0 || int(e.Node) >= len(sys) {
			return ReplayResult{Final: sys, Executed: i,
				Err: fmt.Errorf("event %d (%s): node out of range", i+1, e)}
		}
		switch e.Kind {
		case model.NetworkEvent:
			fp := model.MessageFingerprint(e.Msg)
			if !net.Remove(fp) {
				return ReplayResult{Final: sys, Executed: i,
					Err: fmt.Errorf("event %d (%s): message not in flight", i+1, e)}
			}
		case model.InternalEvent:
			if !actionEnabled(m, e.Node, sys[e.Node], e.Act) {
				return ReplayResult{Final: sys, Executed: i,
					Err: fmt.Errorf("event %d (%s): action not enabled", i+1, e)}
			}
		default:
			return ReplayResult{Final: sys, Executed: i,
				Err: fmt.Errorf("event %d: invalid kind", i+1)}
		}
		next, emitted := e.Apply(m, sys[e.Node])
		if next == nil {
			return ReplayResult{Final: sys, Executed: i,
				Err: fmt.Errorf("event %d (%s): handler rejected", i+1, e)}
		}
		sys[e.Node] = next
		net.AddAll(emitted)
	}
	return ReplayResult{Final: sys, Executed: len(sc)}
}

// actionEnabled reports whether action a is among the internal actions the
// machine enables in node n's current state. Actions are compared by
// fingerprint since Action values need not be comparable with ==.
func actionEnabled(m model.Machine, n model.NodeID, s model.State, a model.Action) bool {
	want := model.ActEvent(a).Fingerprint()
	for _, cand := range m.Actions(n, s) {
		if model.ActEvent(cand).Fingerprint() == want {
			return true
		}
	}
	return false
}
