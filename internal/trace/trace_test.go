package trace_test

import (
	"strings"
	"testing"

	"lmc/internal/model"
	"lmc/internal/protocols/tree"
	"lmc/internal/trace"
)

func fullRun(t *testing.T) (model.Machine, model.SystemState, trace.Schedule) {
	t.Helper()
	m := tree.NewPaperTree()
	start := model.InitialSystem(m)
	sc := trace.Schedule{
		model.ActEvent(tree.Initiate{Root: 0}),
		model.RecvEvent(tree.Forward{From: 0, To: 1}),
		model.RecvEvent(tree.Forward{From: 0, To: 2}),
		model.RecvEvent(tree.Forward{From: 1, To: 3}),
		model.RecvEvent(tree.Forward{From: 1, To: 4}),
	}
	return m, start, sc
}

// TestReplayFullRun replays a complete valid schedule and checks the final
// state.
func TestReplayFullRun(t *testing.T) {
	m, start, sc := fullRun(t)
	rr := trace.Replay(m, start, sc)
	if rr.Err != nil {
		t.Fatalf("replay failed: %v", rr.Err)
	}
	if rr.Executed != len(sc) {
		t.Fatalf("executed %d of %d", rr.Executed, len(sc))
	}
	if rr.Final[4].(*tree.State).St != tree.Received {
		t.Fatal("target did not receive")
	}
	if rr.Final[0].(*tree.State).St != tree.Sent {
		t.Fatal("root did not send")
	}
}

// TestReplayRejectsUnsentMessage: delivering a message that is not in
// flight must fail with a useful position.
func TestReplayRejectsUnsentMessage(t *testing.T) {
	m, start, _ := fullRun(t)
	sc := trace.Schedule{
		model.RecvEvent(tree.Forward{From: 1, To: 4}), // nothing sent yet
	}
	rr := trace.Replay(m, start, sc)
	if rr.Err == nil {
		t.Fatal("replay accepted an unsent message")
	}
	if rr.Executed != 0 {
		t.Fatalf("executed %d, want 0", rr.Executed)
	}
	if !strings.Contains(rr.Err.Error(), "not in flight") {
		t.Fatalf("unhelpful error: %v", rr.Err)
	}
}

// TestReplayRejectsDoubleDelivery: a message is consumed by its delivery.
func TestReplayRejectsDoubleDelivery(t *testing.T) {
	m, start, _ := fullRun(t)
	sc := trace.Schedule{
		model.ActEvent(tree.Initiate{Root: 0}),
		model.RecvEvent(tree.Forward{From: 0, To: 1}),
		model.RecvEvent(tree.Forward{From: 0, To: 1}), // second copy never sent
	}
	rr := trace.Replay(m, start, sc)
	if rr.Err == nil {
		t.Fatal("replay accepted double delivery")
	}
	if rr.Executed != 2 {
		t.Fatalf("executed %d, want 2", rr.Executed)
	}
}

// TestReplayRejectsDisabledAction: an internal action must be enabled in
// the node's current state.
func TestReplayRejectsDisabledAction(t *testing.T) {
	m, start, _ := fullRun(t)
	sc := trace.Schedule{
		model.ActEvent(tree.Initiate{Root: 0}),
		model.ActEvent(tree.Initiate{Root: 0}), // root already sent
	}
	rr := trace.Replay(m, start, sc)
	if rr.Err == nil {
		t.Fatal("replay accepted a disabled action")
	}
	if !strings.Contains(rr.Err.Error(), "not enabled") {
		t.Fatalf("unhelpful error: %v", rr.Err)
	}
}

// TestReplayRejectsOutOfRangeNode guards malformed schedules.
func TestReplayRejectsOutOfRangeNode(t *testing.T) {
	m, start, _ := fullRun(t)
	sc := trace.Schedule{model.RecvEvent(tree.Forward{From: 0, To: 99})}
	if rr := trace.Replay(m, start, sc); rr.Err == nil {
		t.Fatal("replay accepted out-of-range node")
	}
}

// TestReplayDoesNotMutateStart: the start state is an input, not a
// scratchpad.
func TestReplayDoesNotMutateStart(t *testing.T) {
	m, start, sc := fullRun(t)
	before := start.Fingerprint()
	trace.Replay(m, start, sc)
	if start.Fingerprint() != before {
		t.Fatal("Replay mutated the start state")
	}
}

// TestScheduleString renders numbered lines.
func TestScheduleString(t *testing.T) {
	_, _, sc := fullRun(t)
	s := sc.String()
	if !strings.Contains(s, "1. ") || !strings.Contains(s, "5. ") {
		t.Fatalf("schedule rendering missing steps:\n%s", s)
	}
}
