package trace

import (
	"encoding/json"
	"fmt"

	"lmc/internal/model"
)

// EventCodec translates a machine's concrete message and action types to a
// JSON-serializable form and back. Schedules hold interface values whose
// concrete types only the machine knows, so committing a witness schedule
// to disk (the repro artifacts of adapter-checked implementations) needs
// the machine — or an adapter wrapping it — to supply the translation.
type EventCodec interface {
	// EncodeMessage renders a message as a type tag plus JSON data.
	EncodeMessage(m model.Message) (typ string, data json.RawMessage, err error)
	// DecodeMessage is the inverse of EncodeMessage.
	DecodeMessage(typ string, data json.RawMessage) (model.Message, error)
	// EncodeAction renders an action as a type tag plus JSON data.
	EncodeAction(a model.Action) (typ string, data json.RawMessage, err error)
	// DecodeAction is the inverse of EncodeAction.
	DecodeAction(typ string, data json.RawMessage) (model.Action, error)
}

// JSONEvent is one schedule event in serialized form.
type JSONEvent struct {
	// Kind is "recv" or "act" (model.EventKind.String).
	Kind string `json:"kind"`
	// Node is the zero-based node whose handler executes.
	Node int `json:"node"`
	// Type is the codec's tag for the message or action type.
	Type string `json:"type"`
	// Data is the codec's rendering of the message or action.
	Data json.RawMessage `json:"data"`
}

// ScheduleToJSON serializes a schedule through the codec.
func ScheduleToJSON(sc Schedule, c EventCodec) ([]JSONEvent, error) {
	out := make([]JSONEvent, len(sc))
	for i, e := range sc {
		je := JSONEvent{Kind: e.Kind.String(), Node: int(e.Node)}
		var err error
		switch e.Kind {
		case model.NetworkEvent:
			je.Type, je.Data, err = c.EncodeMessage(e.Msg)
		case model.InternalEvent:
			je.Type, je.Data, err = c.EncodeAction(e.Act)
		default:
			err = fmt.Errorf("invalid event kind %d", e.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i+1, err)
		}
		out[i] = je
	}
	return out, nil
}

// ScheduleFromJSON deserializes a schedule through the codec. Node
// addressing is re-derived from the decoded values (m.Dst(), a.Node()) and
// cross-checked against the serialized field, so a hand-edited artifact
// cannot smuggle a mis-addressed event past replay.
func ScheduleFromJSON(evs []JSONEvent, c EventCodec) (Schedule, error) {
	sc := make(Schedule, len(evs))
	for i, je := range evs {
		switch je.Kind {
		case model.NetworkEvent.String():
			m, err := c.DecodeMessage(je.Type, je.Data)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", i+1, err)
			}
			if int(m.Dst()) != je.Node {
				return nil, fmt.Errorf("trace: event %d: message addressed to node %d, recorded node %d",
					i+1, int(m.Dst()), je.Node)
			}
			sc[i] = model.RecvEvent(m)
		case model.InternalEvent.String():
			a, err := c.DecodeAction(je.Type, je.Data)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", i+1, err)
			}
			if int(a.Node()) != je.Node {
				return nil, fmt.Errorf("trace: event %d: action on node %d, recorded node %d",
					i+1, int(a.Node()), je.Node)
			}
			sc[i] = model.ActEvent(a)
		default:
			return nil, fmt.Errorf("trace: event %d: unknown kind %q", i+1, je.Kind)
		}
	}
	return sc, nil
}
