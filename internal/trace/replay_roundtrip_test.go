package trace_test

import (
	"testing"

	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/protocols/randtree"
	"lmc/internal/protocols/twophase"
	"lmc/internal/spec"
	"lmc/internal/testkit"
	"lmc/internal/trace"
)

// TestCheckerSchedulesRoundTrip is the replay round-trip property: every
// witness schedule the local checker confirms must replay — through both
// independent replay implementations — to exactly the system state the bug
// report claims (same fingerprint), and that state must violate the
// reported invariant.
func TestCheckerSchedulesRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		m      model.Machine
		sysInv spec.Invariant
		locals []spec.LocalInvariant
	}{
		{name: "twophase-majority",
			m:      twophase.New(4, twophase.MajorityBug, 2),
			sysInv: twophase.Atomicity()},
		{name: "randtree-self-sibling",
			m:      randtree.New(4, 2, randtree.SelfSiblingBug),
			locals: []spec.LocalInvariant{randtree.Structure()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			start := model.InitialSystem(tc.m)
			res := core.Check(tc.m, start, core.Options{
				Invariant:       tc.sysInv,
				LocalInvariants: tc.locals,
				LocalBoundStep:  1,
				MaxLocalBound:   4,
			})
			if len(res.Bugs) == 0 {
				t.Fatal("checker found no bugs to round-trip")
			}
			for i, b := range res.Bugs {
				want := b.System.Fingerprint()

				rr := trace.Replay(tc.m, start, b.Schedule)
				if rr.Err != nil {
					t.Fatalf("bug %d: trace replay failed at event %d: %v", i, rr.Executed+1, rr.Err)
				}
				if rr.Fingerprint() != want {
					t.Errorf("bug %d: trace replay reached %s, bug claims %s", i, rr.Fingerprint(), want)
				}

				final, err := testkit.Replay(tc.m, start, nil, b.Schedule)
				if err != nil {
					t.Fatalf("bug %d: testkit replay failed: %v", i, err)
				}
				if final.Fingerprint() != want {
					t.Errorf("bug %d: testkit replay reached %s, bug claims %s", i, final.Fingerprint(), want)
				}
			}
			t.Logf("%d bug schedule(s) round-tripped", len(res.Bugs))
		})
	}
}

// TestReplayWithInflightRoundTrip checks the seeded-in-flight variant: a
// schedule that starts by delivering a seeded message replays identically
// through both implementations.
func TestReplayWithInflightRoundTrip(t *testing.T) {
	m := twophase.New(3, twophase.NoBug)
	start := model.InitialSystem(m)

	// Script a run to harvest real messages, then use the first queued
	// message as the checkers' seeded in-flight set.
	h := testkit.New(m)
	acts := m.Actions(0, h.Sys[0])
	if len(acts) == 0 {
		t.Fatal("coordinator has no initial action")
	}
	if err := h.Act(acts[0]); err != nil {
		t.Fatal(err)
	}
	inflight := h.InFlight()
	if len(inflight) == 0 {
		t.Fatal("no messages emitted")
	}

	sched := trace.Schedule{model.RecvEvent(inflight[0])}
	rr := trace.ReplayWith(m, start, inflight, sched)
	if rr.Err != nil {
		t.Fatalf("trace replay: %v", rr.Err)
	}
	final, err := testkit.Replay(m, start, inflight, sched)
	if err != nil {
		t.Fatalf("testkit replay: %v", err)
	}
	if rr.Fingerprint() != final.Fingerprint() {
		t.Fatalf("replay implementations disagree: %s vs %s", rr.Fingerprint(), final.Fingerprint())
	}

	// Without the seeded message the same schedule must fail in both.
	if rr := trace.Replay(m, start, sched); rr.Err == nil {
		t.Error("trace replay of a seeded-message delivery succeeded without the seed")
	}
	if _, err := testkit.Replay(m, start, nil, sched); err == nil {
		t.Error("testkit replay of a seeded-message delivery succeeded without the seed")
	}
}
