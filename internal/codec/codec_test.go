package codec

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// TestWriterPrimitives checks the wire layout of each primitive.
func TestWriterPrimitives(t *testing.T) {
	var w Writer
	w.Bool(true)
	w.Bool(false)
	w.Byte(0xAB)
	w.Uint32(0x01020304)
	w.Uint64(0x0102030405060708)
	got := w.Bytes()
	want := []byte{1, 0, 0xAB, 1, 2, 3, 4, 1, 2, 3, 4, 5, 6, 7, 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("layout mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestWriterReset checks buffer reuse.
func TestWriterReset(t *testing.T) {
	w := NewWriter(16)
	w.String("hello")
	if w.Len() == 0 {
		t.Fatal("empty after write")
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
}

// TestWriterClone checks that Clone survives reuse of the writer.
func TestWriterClone(t *testing.T) {
	var w Writer
	w.String("abc")
	c := w.Clone()
	w.Reset()
	w.String("xyz")
	var w2 Writer
	w2.String("abc")
	if !reflect.DeepEqual(c, w2.Bytes()) {
		t.Fatalf("clone changed under reuse")
	}
}

// TestIntEncodingIsSigned checks two's-complement round-tripping of
// negative values through the fixed-width encoding.
func TestIntEncodingIsSigned(t *testing.T) {
	var a, b Writer
	a.Int(-1)
	b.Int(1)
	if reflect.DeepEqual(a.Bytes(), b.Bytes()) {
		t.Fatal("-1 and 1 encode identically")
	}
}

// TestFloatNaNCanonical checks that all NaN payloads encode identically.
func TestFloatNaNCanonical(t *testing.T) {
	var a, b Writer
	a.Float64(math.NaN())
	b.Float64(math.Float64frombits(0x7ff8dead00000001)) // another NaN payload
	if !reflect.DeepEqual(a.Bytes(), b.Bytes()) {
		t.Fatal("NaNs encode differently")
	}
}

// TestIntSetCanonical checks that map iteration order never leaks into the
// encoding of sets.
func TestIntSetCanonical(t *testing.T) {
	f := func(keys []int) bool {
		m1 := map[int]bool{}
		m2 := map[int]bool{}
		for _, k := range keys {
			m1[k] = true
		}
		// Insert in reverse order into the second map.
		for i := len(keys) - 1; i >= 0; i-- {
			m2[keys[i]] = true
		}
		var w1, w2 Writer
		w1.IntSet(m1)
		w2.IntSet(m2)
		return reflect.DeepEqual(w1.Bytes(), w2.Bytes())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestIntSetExcludesFalse checks that false-valued keys are not part of the
// canonical set encoding.
func TestIntSetExcludesFalse(t *testing.T) {
	var a, b Writer
	a.IntSet(map[int]bool{1: true, 2: false})
	b.IntSet(map[int]bool{1: true})
	if !reflect.DeepEqual(a.Bytes(), b.Bytes()) {
		t.Fatal("false entries leak into the encoding")
	}
}

// TestIntMapCanonical checks deterministic map encoding.
func TestIntMapCanonical(t *testing.T) {
	f := func(keys []int, vals []int) bool {
		m1 := map[int]int{}
		m2 := map[int]int{}
		for i, k := range keys {
			v := 0
			if i < len(vals) {
				v = vals[i]
			}
			m1[k] = v
		}
		for i := len(keys) - 1; i >= 0; i-- {
			v := 0
			if i < len(vals) {
				v = vals[i]
			}
			m2[keys[i]] = v
		}
		var w1, w2 Writer
		w1.IntMap(m1)
		w2.IntMap(m2)
		return reflect.DeepEqual(w1.Bytes(), w2.Bytes())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSortedIntsDoesNotMutate checks the no-mutation contract.
func TestSortedIntsDoesNotMutate(t *testing.T) {
	in := []int{3, 1, 2}
	var w Writer
	w.SortedInts(in)
	if !reflect.DeepEqual(in, []int{3, 1, 2}) {
		t.Fatalf("argument mutated: %v", in)
	}
}

// TestStringSetCanonical checks string-set encodings sort keys.
func TestStringSetCanonical(t *testing.T) {
	var a, b Writer
	a.StringSet(map[string]bool{"b": true, "a": true})
	b.StringSet(map[string]bool{"a": true, "b": true})
	if !reflect.DeepEqual(a.Bytes(), b.Bytes()) {
		t.Fatal("string set not canonical")
	}
}

// TestHashDiffers sanity-checks the fingerprint on small perturbations.
func TestHashDiffers(t *testing.T) {
	if Hash([]byte{1}) == Hash([]byte{2}) {
		t.Fatal("FNV collision on trivial input (implementation broken)")
	}
	if Hash(nil) != Hash([]byte{}) {
		t.Fatal("nil and empty hash differently")
	}
}

// TestCombineOrderSensitive checks Combine's order sensitivity.
func TestCombineOrderSensitive(t *testing.T) {
	a, b := Fingerprint(1), Fingerprint(2)
	if Combine(a, b) == Combine(b, a) {
		t.Fatal("Combine is order-insensitive")
	}
}

// TestCombineUnorderedIsCommutative checks the multiset fingerprint is
// order-insensitive (a property-based check).
func TestCombineUnorderedIsCommutative(t *testing.T) {
	f := func(raw []uint64) bool {
		fps := make([]Fingerprint, len(raw))
		for i, r := range raw {
			fps[i] = Fingerprint(r)
		}
		rev := make([]Fingerprint, len(fps))
		for i := range fps {
			rev[i] = fps[len(fps)-1-i]
		}
		return CombineUnordered(fps) == CombineUnordered(rev)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCombineUnorderedMultiset checks that multiplicity matters.
func TestCombineUnorderedMultiset(t *testing.T) {
	a := CombineUnordered([]Fingerprint{1, 1})
	b := CombineUnordered([]Fingerprint{1})
	if a == b {
		t.Fatal("multiplicity ignored")
	}
}

// fpEncoder is a trivial Encoder for HashOf tests.
type fpEncoder int

func (e fpEncoder) Encode(w *Writer) { w.Int(int(e)) }

// TestHashOf checks HashOf equals hashing the canonical encoding.
func TestHashOf(t *testing.T) {
	var w Writer
	fpEncoder(42).Encode(&w)
	if HashOf(fpEncoder(42)) != Hash(w.Bytes()) {
		t.Fatal("HashOf disagrees with manual encoding")
	}
	if HashOf(fpEncoder(42)) == HashOf(fpEncoder(43)) {
		t.Fatal("distinct values collide")
	}
}
