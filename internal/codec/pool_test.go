package codec

import (
	"testing"
)

// smallState mimics the encoding shape of a typical protocol node state:
// a few ints, a bool, and a small sorted set.
type smallState struct {
	round  int
	value  int
	active bool
	peers  []int
}

func (s *smallState) Encode(w *Writer) {
	w.Int(s.round)
	w.Int(s.value)
	w.Bool(s.active)
	w.SortedInts(s.peers)
}

func TestHasherMatchesCombine(t *testing.T) {
	fps := []Fingerprint{0, 1, 42, ^Fingerprint(0), 0xdeadbeefcafef00d}
	for cut := 0; cut <= len(fps); cut++ {
		h := NewHasher()
		for _, fp := range fps[:cut] {
			h.Add(fp)
		}
		if got, want := h.Sum(), Combine(fps[:cut]...); got != want {
			t.Fatalf("Hasher over %d fps = %s, Combine = %s", cut, got, want)
		}
	}
}

// TestHashMatchesKnownFNV pins the inlined FNV-1a against reference values
// of the stdlib implementation, so the allocation-free rewrite cannot
// silently change stored fingerprints.
func TestHashMatchesKnownFNV(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xcbf29ce484222325},             // offset basis
		{"a", 0xaf63dc4c8601ec8c},            // fnv.New64a("a")
		{"foobar", 0x85944171f73967e8},       // classic FNV-1a test vector
		{"\x00\x01\x02", 0xd949aa186c0c4928}, // binary content
	}
	for _, c := range cases {
		if got := uint64(Hash([]byte(c.in))); got != c.want {
			t.Errorf("Hash(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

// TestHashOfZeroAllocs pins the pooled-writer hash path to zero steady-state
// heap allocations for small states — the property the exploration hot path
// (one HashOf per handler execution) depends on.
func TestHashOfZeroAllocs(t *testing.T) {
	s := &smallState{round: 3, value: 7, active: true}
	// Warm the pool so the measurement sees the steady state.
	for i := 0; i < 16; i++ {
		HashOf(s)
	}
	if avg := testing.AllocsPerRun(200, func() { HashOf(s) }); avg != 0 {
		t.Fatalf("HashOf allocates %.1f times per call; want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { Combine(1, 2, 3) }); avg != 0 {
		t.Fatalf("Combine allocates %.1f times per call; want 0", avg)
	}
}

// BenchmarkFingerprintPooled measures the pooled HashOf hot path.
func BenchmarkFingerprintPooled(b *testing.B) {
	s := &smallState{round: 3, value: 7, active: true, peers: []int{2, 0, 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HashOf(s)
	}
}

// BenchmarkFingerprintUnpooled measures the same encoding against a fresh
// Writer per call — the shape of the pre-pool implementation — for
// comparison with BenchmarkFingerprintPooled.
func BenchmarkFingerprintUnpooled(b *testing.B) {
	s := &smallState{round: 3, value: 7, active: true, peers: []int{2, 0, 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var w Writer
		s.Encode(&w)
		Hash(w.Bytes())
	}
}
