// Package codec provides a deterministic binary encoding for protocol
// states, messages and events, plus 64-bit fingerprints over the encoded
// form.
//
// The local model checker (and the global baseline) detect duplicate states
// by comparing hashes of serialized node states, mirroring the MaceMC
// mechanics the paper builds on (§4.2: "To efficiently check for duplicate
// states, we use the hashes of the serialized states"). For hashing to be
// meaningful the encoding must be canonical: two semantically equal values
// must encode to the same bytes. Encoders therefore must write collections
// in a deterministic (sorted) order; the helpers here give protocols the
// primitives to do that without reflection.
package codec

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Writer accumulates a canonical binary encoding. The zero value is ready to
// use. Writers are not safe for concurrent use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// Reset discards the accumulated encoding, retaining the buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Len reports the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Bytes returns the accumulated encoding. The slice aliases the Writer's
// internal buffer and is invalidated by further writes or Reset.
func (w *Writer) Bytes() []byte { return w.buf }

// Clone returns a copy of the accumulated encoding that remains valid after
// the Writer is reused.
func (w *Writer) Clone() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// Bool writes a boolean as a single byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Byte writes a single raw byte.
func (w *Writer) Byte(v byte) { w.buf = append(w.buf, v) }

// Uint32 writes a fixed-width big-endian uint32.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// Uint64 writes a fixed-width big-endian uint64.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Int writes a signed integer as a 64-bit two's-complement value.
func (w *Writer) Int(v int) { w.Uint64(uint64(v)) }

// Int64 writes a signed 64-bit integer.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Float64 writes an IEEE-754 bit pattern. NaNs are canonicalized so that
// all NaN payloads encode identically.
func (w *Writer) Float64(v float64) {
	if v != v { // NaN
		w.Uint64(0x7ff8000000000001)
		return
	}
	w.Uint64(math.Float64bits(v))
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uint32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes32 writes a length-prefixed byte slice.
func (w *Writer) Bytes32(b []byte) {
	w.Uint32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Ints writes a length-prefixed slice of ints in the order given.
func (w *Writer) Ints(vs []int) {
	w.Uint32(uint32(len(vs)))
	for _, v := range vs {
		w.Int(v)
	}
}

// SortedInts writes a length-prefixed slice of ints in ascending order,
// without mutating the argument. Use it to encode sets kept in maps.
func (w *Writer) SortedInts(vs []int) {
	sorted := make([]int, len(vs))
	copy(sorted, vs)
	sort.Ints(sorted)
	w.Ints(sorted)
}

// IntSet writes a canonical encoding of a set of ints represented as map
// keys: length prefix followed by the keys in ascending order.
func (w *Writer) IntSet(set map[int]bool) {
	keys := make([]int, 0, len(set))
	for k, ok := range set {
		if ok {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	w.Ints(keys)
}

// IntMap writes a canonical encoding of an int→int map: length prefix
// followed by key/value pairs in ascending key order.
func (w *Writer) IntMap(m map[int]int) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.Uint32(uint32(len(keys)))
	for _, k := range keys {
		w.Int(k)
		w.Int(m[k])
	}
}

// StringSet writes a canonical encoding of a set of strings represented as
// map keys: length prefix followed by the keys in ascending order.
func (w *Writer) StringSet(set map[string]bool) {
	keys := make([]string, 0, len(set))
	for k, ok := range set {
		if ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	w.Uint32(uint32(len(keys)))
	for _, k := range keys {
		w.String(k)
	}
}

// Encoder is implemented by values that have a canonical binary encoding.
// Implementations must be deterministic: equal values produce equal bytes.
type Encoder interface {
	Encode(w *Writer)
}

// Fingerprint is a 64-bit hash of a canonical encoding. It is the currency
// of duplicate detection throughout the checkers: node states, messages and
// events are all identified by their fingerprints.
type Fingerprint uint64

// String formats the fingerprint as fixed-width hex, convenient in traces.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x", uint64(f)) }

// Hash fingerprints raw bytes with FNV-1a.
func Hash(b []byte) Fingerprint {
	h := fnv.New64a()
	h.Write(b)
	return Fingerprint(h.Sum64())
}

// HashOf encodes v into a scratch Writer and fingerprints the result.
func HashOf(v Encoder) Fingerprint {
	var w Writer
	v.Encode(&w)
	return Hash(w.Bytes())
}

// Combine mixes fingerprints into one, order-sensitively. It is used to
// derive composite identities (for example an event identity from the
// handler kind plus the consumed message).
func Combine(fps ...Fingerprint) Fingerprint {
	h := fnv.New64a()
	var b [8]byte
	for _, fp := range fps {
		binary.BigEndian.PutUint64(b[:], uint64(fp))
		h.Write(b[:])
	}
	return Fingerprint(h.Sum64())
}

// CombineUnordered mixes fingerprints into one, insensitively to order, via
// commutative addition. It identifies multisets such as "the messages
// generated by this event".
func CombineUnordered(fps []Fingerprint) Fingerprint {
	var sum uint64
	for _, fp := range fps {
		// Pre-mix each element so that {a,a} and {b} with b=2a collide less.
		h := fnv.New64a()
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(fp))
		h.Write(b[:])
		sum += h.Sum64()
	}
	return Fingerprint(sum)
}
