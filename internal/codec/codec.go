// Package codec provides a deterministic binary encoding for protocol
// states, messages and events, plus 64-bit fingerprints over the encoded
// form.
//
// The local model checker (and the global baseline) detect duplicate states
// by comparing hashes of serialized node states, mirroring the MaceMC
// mechanics the paper builds on (§4.2: "To efficiently check for duplicate
// states, we use the hashes of the serialized states"). For hashing to be
// meaningful the encoding must be canonical: two semantically equal values
// must encode to the same bytes. Encoders therefore must write collections
// in a deterministic (sorted) order; the helpers here give protocols the
// primitives to do that without reflection.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Writer accumulates a canonical binary encoding. The zero value is ready to
// use. Writers are not safe for concurrent use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// Reset discards the accumulated encoding, retaining the buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Len reports the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Bytes returns the accumulated encoding. The slice aliases the Writer's
// internal buffer and is invalidated by further writes or Reset.
func (w *Writer) Bytes() []byte { return w.buf }

// Clone returns a copy of the accumulated encoding that remains valid after
// the Writer is reused.
func (w *Writer) Clone() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// Bool writes a boolean as a single byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Byte writes a single raw byte.
func (w *Writer) Byte(v byte) { w.buf = append(w.buf, v) }

// Uint32 writes a fixed-width big-endian uint32.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// Uint64 writes a fixed-width big-endian uint64.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Int writes a signed integer as a 64-bit two's-complement value.
func (w *Writer) Int(v int) { w.Uint64(uint64(v)) }

// Int64 writes a signed 64-bit integer.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Float64 writes an IEEE-754 bit pattern. NaNs are canonicalized so that
// all NaN payloads encode identically.
func (w *Writer) Float64(v float64) {
	if v != v { // NaN
		w.Uint64(0x7ff8000000000001)
		return
	}
	w.Uint64(math.Float64bits(v))
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uint32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes32 writes a length-prefixed byte slice.
func (w *Writer) Bytes32(b []byte) {
	w.Uint32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Ints writes a length-prefixed slice of ints in the order given.
func (w *Writer) Ints(vs []int) {
	w.Uint32(uint32(len(vs)))
	for _, v := range vs {
		w.Int(v)
	}
}

// SortedInts writes a length-prefixed slice of ints in ascending order,
// without mutating the argument. Use it to encode sets kept in maps.
func (w *Writer) SortedInts(vs []int) {
	sorted := make([]int, len(vs))
	copy(sorted, vs)
	sort.Ints(sorted)
	w.Ints(sorted)
}

// IntSet writes a canonical encoding of a set of ints represented as map
// keys: length prefix followed by the keys in ascending order.
func (w *Writer) IntSet(set map[int]bool) {
	keys := make([]int, 0, len(set))
	for k, ok := range set {
		if ok {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	w.Ints(keys)
}

// IntMap writes a canonical encoding of an int→int map: length prefix
// followed by key/value pairs in ascending key order.
func (w *Writer) IntMap(m map[int]int) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.Uint32(uint32(len(keys)))
	for _, k := range keys {
		w.Int(k)
		w.Int(m[k])
	}
}

// StringSet writes a canonical encoding of a set of strings represented as
// map keys: length prefix followed by the keys in ascending order.
func (w *Writer) StringSet(set map[string]bool) {
	keys := make([]string, 0, len(set))
	for k, ok := range set {
		if ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	w.Uint32(uint32(len(keys)))
	for _, k := range keys {
		w.String(k)
	}
}

// Encoder is implemented by values that have a canonical binary encoding.
// Implementations must be deterministic: equal values produce equal bytes.
type Encoder interface {
	Encode(w *Writer)
}

// Fingerprint is a 64-bit hash of a canonical encoding. It is the currency
// of duplicate detection throughout the checkers: node states, messages and
// events are all identified by their fingerprints.
type Fingerprint uint64

// String formats the fingerprint as fixed-width hex, convenient in traces.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x", uint64(f)) }

// FNV-1a parameters, inlined so hashing never allocates the stdlib's
// hash.Hash64 interface value. The byte-for-byte results are identical to
// hash/fnv, which keeps every stored fingerprint (fuzz corpora, artifacts)
// stable.
const (
	fnvOffset64 uint64 = 0xcbf29ce484222325
	fnvPrime64  uint64 = 0x100000001b3
)

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// fnvUint64 folds v into h big-endian, matching a Write of the 8-byte
// big-endian encoding.
func fnvUint64(h, v uint64) uint64 {
	for shift := 56; shift >= 0; shift -= 8 {
		h ^= (v >> uint(shift)) & 0xff
		h *= fnvPrime64
	}
	return h
}

// Hash fingerprints raw bytes with FNV-1a.
func Hash(b []byte) Fingerprint {
	return Fingerprint(fnvBytes(fnvOffset64, b))
}

// maxPooledWriter bounds the buffers retained by the writer pool; an
// occasional huge encoding should not pin its buffer forever.
const maxPooledWriter = 1 << 16

var writerPool = sync.Pool{New: func() any { return NewWriter(256) }}

// GetWriter returns an empty Writer from a shared pool. Callers on hot
// paths pair it with PutWriter to avoid per-encoding allocations; the pool
// is safe for concurrent use.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter returns w to the shared pool. The caller must not retain w or
// any slice obtained from Bytes afterwards.
func PutWriter(w *Writer) {
	if cap(w.buf) > maxPooledWriter {
		return
	}
	writerPool.Put(w)
}

// HashOf encodes v into a pooled scratch Writer and fingerprints the
// result. Steady state it performs no heap allocations for encodings up to
// the pooled buffer capacity.
func HashOf(v Encoder) Fingerprint {
	w := GetWriter()
	v.Encode(w)
	fp := Hash(w.buf)
	PutWriter(w)
	return fp
}

// Combine mixes fingerprints into one, order-sensitively. It is used to
// derive composite identities (for example an event identity from the
// handler kind plus the consumed message).
func Combine(fps ...Fingerprint) Fingerprint {
	h := fnvOffset64
	for _, fp := range fps {
		h = fnvUint64(h, uint64(fp))
	}
	return Fingerprint(h)
}

// Hasher combines fingerprints incrementally without allocating; a sequence
// of Add calls yields exactly Combine over the same sequence. Checkers use
// it to derive composite fingerprints (such as a system state's) from
// memoized parts instead of re-encoding.
type Hasher struct{ h uint64 }

// NewHasher returns a Hasher in the empty-sequence state.
func NewHasher() Hasher { return Hasher{h: fnvOffset64} }

// Add folds one fingerprint into the running combination.
func (s *Hasher) Add(fp Fingerprint) { s.h = fnvUint64(s.h, uint64(fp)) }

// Sum returns the combined fingerprint of the sequence added so far.
func (s Hasher) Sum() Fingerprint { return Fingerprint(s.h) }

// CombineUnordered mixes fingerprints into one, insensitively to order, via
// commutative addition. It identifies multisets such as "the messages
// generated by this event".
func CombineUnordered(fps []Fingerprint) Fingerprint {
	var sum uint64
	for _, fp := range fps {
		// Pre-mix each element so that {a,a} and {b} with b=2a collide less.
		sum += fnvUint64(fnvOffset64, uint64(fp))
	}
	return Fingerprint(sum)
}
