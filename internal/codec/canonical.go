package codec

import (
	"errors"
	"fmt"
)

// Canonicalizer canonicalizes fixed-width fingerprint vectors under role
// permutation. It is the symmetry-reduction seam of the checkers: a system
// state is identified by the ordered combination of its per-node state
// fingerprints (model.SystemState.Fingerprint), so two system states that
// differ only by a permutation of interchangeable node roles hash to
// different values. A Canonicalizer declares which slots of the vector are
// interchangeable (the symmetry classes) and derives a canonical fingerprint
// that is invariant under any permutation of the slots within one class:
// class-member sub-fingerprints are sorted before the order-sensitive
// combination, exactly as the package comment's canonical-encoding rule
// sorts collection elements before hashing.
//
// The Canonicalizer itself is immutable after construction and safe for
// concurrent use. Canonical works on a stack scratch vector for systems up
// to canonicalScratchSlots nodes, preserving the zero-alloc property of
// HashOf on the hot path.
type Canonicalizer struct {
	n       int
	classes [][]int
	// member[i] is true when slot i belongs to some class; slots outside all
	// classes (distinguished roles) keep their position.
	member []bool
}

// canonicalScratchSlots is the vector width the canonical paths handle
// without heap allocation. Checked systems are small (the paper's runs use
// 3–5 nodes); larger vectors fall back to an allocating copy.
const canonicalScratchSlots = 16

// NewCanonicalizer builds a Canonicalizer for vectors of n slots with the
// given symmetry classes. Every class index must be in [0, n) and no index
// may appear in more than one class. Classes with fewer than two members
// impose no constraint and are dropped. The classes slices are copied; the
// caller keeps ownership of its argument.
func NewCanonicalizer(n int, classes [][]int) (*Canonicalizer, error) {
	if n < 0 {
		return nil, errors.New("codec: canonicalizer slot count must be non-negative")
	}
	c := &Canonicalizer{n: n, member: make([]bool, n)}
	for _, cl := range classes {
		if len(cl) < 2 {
			continue
		}
		cp := make([]int, len(cl))
		copy(cp, cl)
		insertionSortInts(cp)
		for i, idx := range cp {
			if idx < 0 || idx >= n {
				return nil, fmt.Errorf("codec: canonicalizer class index %d out of range [0,%d)", idx, n)
			}
			if i > 0 && cp[i-1] == idx {
				return nil, fmt.Errorf("codec: canonicalizer class index %d duplicated", idx)
			}
			if c.member[idx] {
				return nil, fmt.Errorf("codec: canonicalizer class index %d appears in two classes", idx)
			}
		}
		for _, idx := range cp {
			c.member[idx] = true
		}
		c.classes = append(c.classes, cp)
	}
	return c, nil
}

// NumSlots is the vector width the Canonicalizer was built for.
func (c *Canonicalizer) NumSlots() int { return c.n }

// NumClasses is the number of (non-trivial) symmetry classes.
func (c *Canonicalizer) NumClasses() int { return len(c.classes) }

// Classes exposes the symmetry classes, each sorted ascending. The returned
// slices are the Canonicalizer's own and must not be modified.
func (c *Canonicalizer) Classes() [][]int { return c.classes }

// InClass reports whether slot i belongs to a symmetry class.
func (c *Canonicalizer) InClass(i int) bool { return i >= 0 && i < c.n && c.member[i] }

// IsCanonical reports whether fps is the canonical representative of its
// orbit: within every class, the member fingerprints appear in ascending
// slot-index order already sorted. The canonical representative is the
// unique arrangement (up to equal fingerprints) for which Canonical equals
// the plain ordered Combine.
func (c *Canonicalizer) IsCanonical(fps []Fingerprint) bool {
	for _, cl := range c.classes {
		for i := 1; i < len(cl); i++ {
			if fps[cl[i-1]] > fps[cl[i]] {
				return false
			}
		}
	}
	return true
}

// Canonical returns the canonical fingerprint of the vector: the
// order-sensitive Combine of the slots with every class's members replaced
// by their sorted arrangement. It is invariant under any permutation of
// slot values within one class and equals Combine(fps...) exactly when
// IsCanonical(fps) holds (the arrangements coincide). len(fps) must equal
// NumSlots.
func (c *Canonicalizer) Canonical(fps []Fingerprint) Fingerprint {
	if len(fps) != c.n {
		panic(fmt.Sprintf("codec: Canonical on %d slots, want %d", len(fps), c.n))
	}
	var scratch [canonicalScratchSlots]Fingerprint
	var buf []Fingerprint
	if c.n <= canonicalScratchSlots {
		buf = scratch[:c.n]
	} else {
		buf = make([]Fingerprint, c.n)
	}
	copy(buf, fps)
	for _, cl := range c.classes {
		sortClassSegment(buf, cl)
	}
	h := NewHasher()
	for _, fp := range buf {
		h.Add(fp)
	}
	return h.Sum()
}

// Canonicalize rearranges fps in place into its orbit's canonical
// representative: every class segment is sorted ascending. After the call,
// IsCanonical(fps) holds and Combine(fps...) equals Canonical of the
// original vector.
func (c *Canonicalizer) Canonicalize(fps []Fingerprint) {
	if len(fps) != c.n {
		panic(fmt.Sprintf("codec: Canonicalize on %d slots, want %d", len(fps), c.n))
	}
	for _, cl := range c.classes {
		sortClassSegment(fps, cl)
	}
}

// CanonicalOf fingerprints each encodable slot value with the pooled
// zero-alloc HashOf and combines them canonically. It is the encoder-level
// entry point: permuting values within a class leaves the result unchanged.
func (c *Canonicalizer) CanonicalOf(vs []Encoder) Fingerprint {
	if len(vs) != c.n {
		panic(fmt.Sprintf("codec: CanonicalOf on %d slots, want %d", len(vs), c.n))
	}
	var scratch [canonicalScratchSlots]Fingerprint
	var fps []Fingerprint
	if c.n <= canonicalScratchSlots {
		fps = scratch[:c.n]
	} else {
		fps = make([]Fingerprint, c.n)
	}
	for i, v := range vs {
		fps[i] = HashOf(v)
	}
	for _, cl := range c.classes {
		sortClassSegment(fps, cl)
	}
	h := NewHasher()
	for _, fp := range fps {
		h.Add(fp)
	}
	return h.Sum()
}

// sortClassSegment sorts the values at the class's slot positions in
// ascending order, in place. Classes are small (they hold node roles), so a
// straight insertion sort beats sort.Slice and allocates nothing.
func sortClassSegment(buf []Fingerprint, cl []int) {
	for i := 1; i < len(cl); i++ {
		v := buf[cl[i]]
		j := i - 1
		for j >= 0 && buf[cl[j]] > v {
			buf[cl[j+1]] = buf[cl[j]]
			j--
		}
		buf[cl[j+1]] = v
	}
}

func insertionSortInts(vs []int) {
	for i := 1; i < len(vs); i++ {
		v := vs[i]
		j := i - 1
		for j >= 0 && vs[j] > v {
			vs[j+1] = vs[j]
			j--
		}
		vs[j+1] = v
	}
}
