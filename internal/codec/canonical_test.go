package codec

import (
	"testing"
)

func TestNewCanonicalizerValidation(t *testing.T) {
	if _, err := NewCanonicalizer(4, [][]int{{1, 2, 4}}); err == nil {
		t.Fatal("out-of-range class index accepted")
	}
	if _, err := NewCanonicalizer(4, [][]int{{1, 1}}); err == nil {
		t.Fatal("duplicated class index accepted")
	}
	if _, err := NewCanonicalizer(4, [][]int{{0, 1}, {1, 2}}); err == nil {
		t.Fatal("overlapping classes accepted")
	}
	c, err := NewCanonicalizer(4, [][]int{{3}, {2, 1}})
	if err != nil {
		t.Fatalf("valid classes rejected: %v", err)
	}
	if c.NumClasses() != 1 {
		t.Fatalf("singleton class not dropped: %d classes", c.NumClasses())
	}
	if got := c.Classes()[0]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("class not sorted: %v", got)
	}
	if c.InClass(3) || !c.InClass(1) || !c.InClass(2) || c.InClass(0) {
		t.Fatal("InClass membership wrong")
	}
}

func TestCanonicalInvariantUnderClassPermutation(t *testing.T) {
	c, err := NewCanonicalizer(4, [][]int{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	base := []Fingerprint{10, 30, 20, 40}
	want := c.Canonical(base)
	perms := [][]Fingerprint{
		{10, 20, 30, 40},
		{10, 40, 30, 20},
		{10, 20, 40, 30},
		{10, 30, 40, 20},
		{10, 40, 20, 30},
	}
	for _, p := range perms {
		if got := c.Canonical(p); got != want {
			t.Fatalf("Canonical(%v)=%v, want %v", p, got, want)
		}
	}
	// Permuting the distinguished slot 0 must change the fingerprint.
	if c.Canonical([]Fingerprint{20, 10, 30, 40}) == want {
		t.Fatal("canonical fingerprint ignored the distinguished slot")
	}
}

func TestCanonicalMatchesCombineOnCanonicalArrangement(t *testing.T) {
	c, err := NewCanonicalizer(5, [][]int{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	sorted := []Fingerprint{99, 1, 2, 7, 8}
	if !c.IsCanonical(sorted) {
		t.Fatal("sorted arrangement not canonical")
	}
	if c.Canonical(sorted) != Combine(sorted...) {
		t.Fatal("Canonical differs from Combine on the canonical representative")
	}
	unsorted := []Fingerprint{99, 2, 1, 8, 7}
	if c.IsCanonical(unsorted) {
		t.Fatal("unsorted arrangement reported canonical")
	}
	if c.Canonical(unsorted) != Combine(sorted...) {
		t.Fatal("Canonical of a permuted arrangement differs from the representative's Combine")
	}
}

// blobState is a minimal Encoder for the encoder-level canonical tests.
type blobState struct{ b []byte }

func (s blobState) Encode(w *Writer) { w.Bytes32(s.b) }

func TestCanonicalOfMatchesHashOfVector(t *testing.T) {
	c, err := NewCanonicalizer(3, [][]int{{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	vs := []Encoder{blobState{[]byte("b")}, blobState{[]byte("a")}, blobState{[]byte("c")}}
	fps := make([]Fingerprint, len(vs))
	for i, v := range vs {
		fps[i] = HashOf(v)
	}
	if c.CanonicalOf(vs) != c.Canonical(fps) {
		t.Fatal("CanonicalOf differs from Canonical over HashOf")
	}
}

func TestCanonicalLargeVectorFallback(t *testing.T) {
	n := canonicalScratchSlots + 4
	class := make([]int, n)
	for i := range class {
		class[i] = i
	}
	c, err := NewCanonicalizer(n, [][]int{class})
	if err != nil {
		t.Fatal(err)
	}
	fps := make([]Fingerprint, n)
	rev := make([]Fingerprint, n)
	for i := range fps {
		fps[i] = Fingerprint(n - i)
		rev[n-1-i] = Fingerprint(n - i)
	}
	if c.Canonical(fps) != c.Canonical(rev) {
		t.Fatal("large-vector canonicalization not permutation-invariant")
	}
}

func TestCanonicalZeroAlloc(t *testing.T) {
	c, err := NewCanonicalizer(4, [][]int{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	fps := []Fingerprint{4, 3, 2, 1}
	avg := testing.AllocsPerRun(100, func() {
		_ = c.Canonical(fps)
	})
	if avg != 0 {
		t.Fatalf("Canonical allocates %v times per call, want 0", avg)
	}
}

// FuzzCanonicalize derives a slot vector of encodable states, a class
// structure and a permutation from the fuzz input and checks the canonical
// fingerprint contract: the canonical fingerprint is invariant under any
// permutation of slot values within a class, IsCanonical identifies the
// sorted representative, and the encoder-level CanonicalOf agrees with the
// fingerprint-level Canonical.
func FuzzCanonicalize(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 'a', 'b', 'c', 1, 2})
	f.Add([]byte{5, 2, 'x', 'x', 'y', 'z', 'w', 0, 1, 3, 4, 2, 0})
	f.Add([]byte{4, 0, 1, 2, 3, 4, 9, 9, 9, 9})
	f.Add([]byte{8, 3, 'p', 'q', 'r', 's', 't', 'u', 'v', 'w', 7, 6, 5, 4, 3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		grab := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}

		n := int(grab()%8) + 2 // 2..9 slots
		split := int(grab()) % n

		// Slot values: one byte of payload each, wrapped in an Encoder.
		vs := make([]Encoder, n)
		fps := make([]Fingerprint, n)
		for i := 0; i < n; i++ {
			vs[i] = blobState{[]byte{grab(), byte(i % 3)}}
			fps[i] = HashOf(vs[i])
		}

		// Two classes: slots [0,split) and [split,n). Singleton or empty
		// segments are dropped by the constructor, exercising that path too.
		classA := make([]int, 0, split)
		for i := 0; i < split; i++ {
			classA = append(classA, i)
		}
		classB := make([]int, 0, n-split)
		for i := split; i < n; i++ {
			classB = append(classB, i)
		}
		c, err := NewCanonicalizer(n, [][]int{classA, classB})
		if err != nil {
			t.Fatalf("constructor rejected disjoint in-range classes: %v", err)
		}

		want := c.Canonical(fps)
		wantEnc := c.CanonicalOf(vs)
		if want != wantEnc {
			t.Fatalf("CanonicalOf %v != Canonical %v", wantEnc, want)
		}

		// Apply a fuzz-derived sequence of within-class swaps; the canonical
		// fingerprint must never move.
		perm := append([]Fingerprint(nil), fps...)
		permVs := append([]Encoder(nil), vs...)
		for k := 0; k < 8 && len(data) >= 2; k++ {
			var cl []int
			if grab()%2 == 0 {
				cl = classA
			} else {
				cl = classB
			}
			if len(cl) < 2 {
				continue
			}
			i, j := cl[int(grab())%len(cl)], cl[int(grab())%len(cl)]
			perm[i], perm[j] = perm[j], perm[i]
			permVs[i], permVs[j] = permVs[j], permVs[i]
		}
		if got := c.Canonical(perm); got != want {
			t.Fatalf("within-class permutation moved the canonical fingerprint: %v != %v", got, want)
		}
		if got := c.CanonicalOf(permVs); got != want {
			t.Fatalf("within-class permutation moved CanonicalOf: %v != %v", got, want)
		}

		// Swapping values across the class boundary must (generically) be
		// order-sensitive; verify via the representative arrangement instead
		// of exact inequality, which equal payload bytes could defeat:
		// IsCanonical must hold after sorting each class segment in place.
		sorted := append([]Fingerprint(nil), perm...)
		for _, cl := range c.Classes() {
			sortClassSegment(sorted, cl)
		}
		if !c.IsCanonical(sorted) {
			t.Fatal("sorted class segments not reported canonical")
		}
		if c.Canonical(sorted) != Combine(sorted...) {
			t.Fatal("canonical representative's Canonical differs from plain Combine")
		}
	})
}
