package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// token is one typed value in a fuzz-derived encode plan. The fuzz input
// bytes are parsed into a token list; the list is encoded with Writer,
// decoded back with Reader, and re-encoded — the canonical-encoding
// contract requires the two encodings to be byte-identical.
type token struct {
	kind byte
	b    bool
	by   byte
	u32  uint32
	u64  uint64
	i    int
	f    float64
	s    string
	bs   []byte
	is   []int
	m    map[int]int
	ss   map[string]bool
}

const numTokenKinds = 11

// parseTokens derives a deterministic token list from fuzz bytes.
func parseTokens(data []byte) []token {
	var toks []token
	for len(data) > 0 && len(toks) < 64 {
		t := token{kind: data[0] % numTokenKinds}
		data = data[1:]
		grab := func(n int) []byte {
			if n > len(data) {
				n = len(data)
			}
			out := data[:n]
			data = data[n:]
			return out
		}
		pad8 := func(b []byte) uint64 {
			var buf [8]byte
			copy(buf[:], b)
			return binary.BigEndian.Uint64(buf[:])
		}
		switch t.kind {
		case 0:
			if b := grab(1); len(b) > 0 {
				t.b = b[0]%2 == 1
			}
		case 1:
			if b := grab(1); len(b) > 0 {
				t.by = b[0]
			}
		case 2:
			t.u32 = uint32(pad8(grab(4)) >> 32)
		case 3:
			t.u64 = pad8(grab(8))
		case 4:
			t.i = int(int64(pad8(grab(8))))
		case 5:
			t.f = math.Float64frombits(pad8(grab(8)))
		case 6:
			t.s = string(grab(int(pad8(grab(1)) >> 56 % 16)))
		case 7:
			t.bs = append([]byte(nil), grab(int(pad8(grab(1))>>56%16))...)
		case 8:
			n := int(pad8(grab(1)) >> 56 % 8)
			for j := 0; j < n; j++ {
				t.is = append(t.is, int(int64(pad8(grab(2)))))
			}
		case 9:
			n := int(pad8(grab(1)) >> 56 % 8)
			t.m = map[int]int{}
			for j := 0; j < n; j++ {
				t.m[int(int64(pad8(grab(2))))] = int(int64(pad8(grab(2))))
			}
		case 10:
			n := int(pad8(grab(1)) >> 56 % 8)
			t.ss = map[string]bool{}
			for j := 0; j < n; j++ {
				t.ss[string(grab(int(pad8(grab(1))>>56%8)))] = true
			}
		}
		toks = append(toks, t)
	}
	return toks
}

// encodeTokens writes the token list. Slices of ints use SortedInts on
// purpose: the round trip then also exercises canonicalization (the decoded
// slice re-encoded with plain Ints must reproduce the sorted wire form).
func encodeTokens(w *Writer, toks []token) {
	for _, t := range toks {
		switch t.kind {
		case 0:
			w.Bool(t.b)
		case 1:
			w.Byte(t.by)
		case 2:
			w.Uint32(t.u32)
		case 3:
			w.Uint64(t.u64)
		case 4:
			w.Int(t.i)
		case 5:
			w.Float64(t.f)
		case 6:
			w.String(t.s)
		case 7:
			w.Bytes32(t.bs)
		case 8:
			w.SortedInts(t.is)
		case 9:
			w.IntMap(t.m)
		case 10:
			w.StringSet(t.ss)
		}
	}
}

// FuzzRoundTrip checks encode → decode → re-encode is byte-identical for
// every primitive the Writer offers, on token lists derived from fuzz input.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 1, 0xff, 2, 1, 2, 3, 4})
	f.Add([]byte{6, 5, 'h', 'e', 'l', 'l', 'o', 7, 3, 1, 2, 3})
	f.Add([]byte{8, 4, 9, 9, 8, 8, 7, 7, 6, 6, 9, 2, 1, 0, 2, 0, 3, 0, 4, 0})
	f.Add([]byte{10, 3, 2, 'h', 'i', 2, 'y', 'o', 1, 'z', 5, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{3, 0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef, 4, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		toks := parseTokens(data)
		var w1 Writer
		encodeTokens(&w1, toks)
		enc1 := w1.Clone()

		// Decode with the Reader, by token kind.
		r := NewReader(enc1)
		var w2 Writer
		for _, tok := range toks {
			switch tok.kind {
			case 0:
				w2.Bool(r.Bool())
			case 1:
				w2.Byte(r.Byte())
			case 2:
				w2.Uint32(r.Uint32())
			case 3:
				w2.Uint64(r.Uint64())
			case 4:
				w2.Int(r.Int())
			case 5:
				w2.Float64(r.Float64())
			case 6:
				w2.String(r.String())
			case 7:
				w2.Bytes32(r.Bytes32())
			case 8:
				w2.Ints(r.Ints()) // already sorted on the wire
			case 9:
				w2.IntMap(r.IntMap())
			case 10:
				w2.StringSet(r.StringSet())
			}
		}
		if err := r.Err(); err != nil {
			t.Fatalf("decoding our own encoding failed: %v (input %x)", err, data)
		}
		if r.Remaining() != 0 {
			t.Fatalf("decode left %d trailing bytes (input %x)", r.Remaining(), data)
		}
		if !bytes.Equal(enc1, w2.Bytes()) {
			t.Fatalf("re-encoding differs:\n  first:  %x\n  second: %x\n  input:  %x", enc1, w2.Bytes(), data)
		}
	})
}

// FuzzFingerprintStability checks the hashing side: fingerprints are stable
// across re-encodings, and CombineUnordered is permutation-invariant.
func FuzzFingerprintStability(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0xff, 0, 0xff, 0, 0xff, 0, 0xff, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if Hash(data) != Hash(append([]byte(nil), data...)) {
			t.Fatal("Hash is not a pure function of the bytes")
		}

		toks := parseTokens(data)
		var w1, w2 Writer
		encodeTokens(&w1, toks)
		encodeTokens(&w2, toks)
		if Hash(w1.Bytes()) != Hash(w2.Bytes()) {
			t.Fatalf("re-encoding the same values changed the fingerprint (input %x)", data)
		}

		// Derive a fingerprint per 4-byte chunk and check permutation
		// invariance of the unordered combiner.
		var fps []Fingerprint
		for i := 0; i+4 <= len(data); i += 4 {
			fps = append(fps, Hash(data[i:i+4]))
		}
		rev := make([]Fingerprint, len(fps))
		for i, fp := range fps {
			rev[len(fps)-1-i] = fp
		}
		if CombineUnordered(fps) != CombineUnordered(rev) {
			t.Fatalf("CombineUnordered is order-sensitive (input %x)", data)
		}
		if len(fps) > 1 {
			rot := append(append([]Fingerprint(nil), fps[1:]...), fps[0])
			if CombineUnordered(fps) != CombineUnordered(rot) {
				t.Fatalf("CombineUnordered is rotation-sensitive (input %x)", data)
			}
		}
	})
}
