package codec

import (
	"errors"
	"fmt"
	"math"
)

// ErrShortBuffer is reported when a read runs past the end of the encoding.
var ErrShortBuffer = errors.New("codec: read past end of encoding")

// Reader decodes a canonical encoding produced by Writer. Reads after an
// error return zero values and keep the first error (sticky), so a decode
// sequence can run unchecked and be validated once at the end with Err.
// Readers are not safe for concurrent use.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader reads from b. The Reader does not copy b; the caller must not
// mutate it while decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many bytes are left to decode.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// take consumes n bytes, or fails.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(ErrShortBuffer)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Bool reads a boolean byte; any value other than 0 or 1 is an error, since
// a canonical encoding admits exactly one representation per value.
func (r *Reader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("codec: non-canonical bool byte %#x", b[0]))
		return false
	}
}

// Byte reads a single raw byte.
func (r *Reader) Byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Uint32 reads a fixed-width big-endian uint32.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Uint64 reads a fixed-width big-endian uint64.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

// Int reads a signed integer written by Writer.Int.
func (r *Reader) Int() int { return int(int64(r.Uint64())) }

// Int64 reads a signed 64-bit integer.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Float64 reads an IEEE-754 bit pattern written by Writer.Float64.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// length reads a 32-bit length prefix and checks it against the remaining
// bytes assuming each element occupies at least elemSize bytes, so a
// corrupted length cannot trigger a huge allocation.
func (r *Reader) length(elemSize int) int {
	n := int(r.Uint32())
	if r.err != nil {
		return 0
	}
	if elemSize > 0 && n > r.Remaining()/elemSize {
		r.fail(ErrShortBuffer)
		return 0
	}
	return n
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.length(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes32 reads a length-prefixed byte slice. The result is a copy.
func (r *Reader) Bytes32() []byte {
	n := r.length(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Ints reads a length-prefixed slice of ints written by Writer.Ints (or
// Writer.SortedInts / Writer.IntSet, whose wire form is the same).
func (r *Reader) Ints() []int {
	n := r.length(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// IntMap reads an int→int map written by Writer.IntMap.
func (r *Reader) IntMap() map[int]int {
	n := r.length(16)
	if r.err != nil {
		return nil
	}
	out := make(map[int]int, n)
	for i := 0; i < n; i++ {
		k := r.Int()
		v := r.Int()
		if r.err != nil {
			return nil
		}
		out[k] = v
	}
	return out
}

// StringSet reads a set of strings written by Writer.StringSet, returned in
// the map form the Writer consumes.
func (r *Reader) StringSet() map[string]bool {
	n := r.length(4)
	if r.err != nil {
		return nil
	}
	out := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		s := r.String()
		if r.err != nil {
			return nil
		}
		out[s] = true
	}
	return out
}
