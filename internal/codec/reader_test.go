package codec

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
)

// TestReaderRoundTripsEveryPrimitive decodes a hand-built encoding of every
// primitive and checks the values and the exact byte count come back.
func TestReaderRoundTripsEveryPrimitive(t *testing.T) {
	var w Writer
	w.Bool(true)
	w.Bool(false)
	w.Byte(0xab)
	w.Uint32(0xdeadbeef)
	w.Uint64(1<<63 + 5)
	w.Int(-42)
	w.Int64(math.MinInt64)
	w.Float64(3.5)
	w.Float64(math.NaN())
	w.String("hello")
	w.String("")
	w.Bytes32([]byte{1, 2, 3})
	w.SortedInts([]int{3, -1, 2})
	w.IntMap(map[int]int{7: 8, -1: 2})
	w.StringSet(map[string]bool{"b": true, "a": true})

	r := NewReader(w.Bytes())
	if got := r.Bool(); !got {
		t.Error("Bool #1")
	}
	if got := r.Bool(); got {
		t.Error("Bool #2")
	}
	if got := r.Byte(); got != 0xab {
		t.Errorf("Byte = %#x", got)
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 1<<63+5 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := r.Int(); got != -42 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Int64(); got != math.MinInt64 {
		t.Errorf("Int64 = %d", got)
	}
	if got := r.Float64(); got != 3.5 {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.Float64(); !math.IsNaN(got) {
		t.Errorf("Float64 NaN = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := r.Bytes32(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes32 = %v", got)
	}
	if got := r.Ints(); !reflect.DeepEqual(got, []int{-1, 2, 3}) {
		t.Errorf("Ints = %v (SortedInts must have sorted)", got)
	}
	if got := r.IntMap(); !reflect.DeepEqual(got, map[int]int{7: 8, -1: 2}) {
		t.Errorf("IntMap = %v", got)
	}
	if got := r.StringSet(); !reflect.DeepEqual(got, map[string]bool{"a": true, "b": true}) {
		t.Errorf("StringSet = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
}

// TestReaderShortBuffer checks the sticky error: the first read past the
// end fails, later reads return zero values, the error persists.
func TestReaderShortBuffer(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.Uint32() // needs 4 bytes
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("Err = %v, want ErrShortBuffer", r.Err())
	}
	if got := r.Uint64(); got != 0 {
		t.Errorf("read after error = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("error not sticky: %v", r.Err())
	}
}

// TestReaderCorruptLength checks a corrupted length prefix fails cleanly
// instead of allocating the claimed size.
func TestReaderCorruptLength(t *testing.T) {
	var w Writer
	w.Uint32(0xffffffff) // claims ~4 billion elements
	for _, decode := range []func(*Reader){
		func(r *Reader) { r.Ints() },
		func(r *Reader) { r.IntMap() },
		func(r *Reader) { r.StringSet() },
		func(r *Reader) { _ = r.String() },
		func(r *Reader) { r.Bytes32() },
	} {
		r := NewReader(w.Bytes())
		decode(r)
		if !errors.Is(r.Err(), ErrShortBuffer) {
			t.Errorf("corrupt length not rejected: %v", r.Err())
		}
	}
}

// TestReaderNonCanonicalBool checks that a bool byte other than 0/1 — which
// a Writer can never produce — is rejected rather than accepted as true.
func TestReaderNonCanonicalBool(t *testing.T) {
	r := NewReader([]byte{2})
	_ = r.Bool()
	if r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}
