package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire framing for the sharded-exploration protocol (internal/shard): every
// message travels as one length-prefixed frame
//
//	[u32 payload length][payload][u64 FNV-1a checksum of the payload]
//
// in big-endian byte order. The checksum guards transport integrity — the
// shard protocol trusts handler determinism semantically, so a corrupted
// frame must surface as an error at the frame layer, never as a silently
// wrong exploration record. ReadFrame returns an error (never panics) on
// malformed length prefixes, truncated payloads, or checksum mismatches.

// DefaultMaxFrame is the frame-size ceiling used by the shard protocol: a
// record batch of a large round stays well under it, while a corrupted
// length prefix is rejected before any allocation approaches it.
const DefaultMaxFrame = 1 << 26 // 64 MiB

// Frame-layer errors. io errors from the underlying stream pass through
// unwrapped (EOF on a clean boundary surfaces as io.EOF, so callers can
// detect a peer that exited cleanly).
var (
	ErrFrameTooLarge = errors.New("codec: frame length exceeds limit")
	ErrFrameChecksum = errors.New("codec: frame checksum mismatch")
)

// AppendFrame appends payload's frame encoding — byte-identical to what
// WriteFrame emits — to dst and returns the extended slice. Callers that
// write frames to an unbuffered file use it to pay one write syscall per
// frame instead of three.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	var sum [8]byte
	binary.BigEndian.PutUint64(sum[:], fnvBytes(fnvOffset64, payload))
	return append(dst, sum[:]...)
}

// WriteFrame writes payload as one frame. The caller flushes any buffering.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [8]byte
	binary.BigEndian.PutUint64(sum[:], fnvBytes(fnvOffset64, payload))
	_, err := w.Write(sum[:])
	return err
}

// ReadFrameInto is ReadFrame with a caller-owned reusable buffer: the
// payload is read into *buf (grown and written back when too small) and
// the returned slice aliases it, valid until the next call with the same
// buffer. Long-lived frame consumers (the shard protocol reads thousands
// of frames per run) use it to amortize the per-frame payload allocation
// away; it is safe whenever every decoded value is consumed — or copied,
// as codec.Reader's String and Bytes32 do — before the next read.
func ReadFrameInto(r io.Reader, buf *[]byte, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	var sum [8]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if binary.BigEndian.Uint64(sum[:]) != fnvBytes(fnvOffset64, payload) {
		return nil, ErrFrameChecksum
	}
	return payload, nil
}

// ReadFrame reads one frame and returns its payload. max bounds the payload
// length accepted (<= 0 means DefaultMaxFrame); an over-limit length prefix
// fails with ErrFrameTooLarge before allocating. A truncated stream fails
// with io.ErrUnexpectedEOF unless the stream ends exactly on a frame
// boundary, which surfaces as io.EOF.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// A clean EOF before any header byte is a frame-boundary EOF.
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	var sum [8]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if binary.BigEndian.Uint64(sum[:]) != fnvBytes(fnvOffset64, payload) {
		return nil, ErrFrameChecksum
	}
	return payload, nil
}
