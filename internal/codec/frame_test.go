package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x00},
		[]byte("hello"),
		bytes.Repeat([]byte{0xab}, 1<<16),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, p := range payloads {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("exhausted stream: got %v, want io.EOF", err)
	}
}

func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x00},
		[]byte("hello"),
		bytes.Repeat([]byte{0xab}, 1<<12),
	}
	for i, p := range payloads {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
		got := AppendFrame([]byte("prefix"), p)
		if !bytes.Equal(got, append([]byte("prefix"), buf.Bytes()...)) {
			t.Fatalf("payload %d: AppendFrame diverges from WriteFrame", i)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	buf.Write(hdr[:])
	if _, err := ReadFrame(&buf, 1<<20); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized length prefix: got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrame(&full, []byte("truncate me please")); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	whole := full.Bytes()
	// Every proper prefix must error: io.EOF only at the empty boundary,
	// io.ErrUnexpectedEOF (or a header short-read) everywhere else.
	for cut := 0; cut < len(whole); cut++ {
		_, err := ReadFrame(bytes.NewReader(whole[:cut]), 0)
		if err == nil {
			t.Fatalf("cut=%d: truncated frame decoded without error", cut)
		}
		if cut == 0 && err != io.EOF {
			t.Fatalf("cut=0: got %v, want io.EOF", err)
		}
	}
}

func TestFrameChecksum(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("integrity")); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	raw := buf.Bytes()
	// Flip one payload byte: the checksum must catch it.
	raw[5] ^= 0x01
	if _, err := ReadFrame(bytes.NewReader(raw), 0); !errors.Is(err, ErrFrameChecksum) {
		t.Fatalf("corrupted payload: got %v, want ErrFrameChecksum", err)
	}
}

// FuzzShardFrameRoundTrip drives the shard wire framing with arbitrary
// bytes in both roles: as a payload (round-trip must be exact) and as a raw
// stream (ReadFrame must error — never panic, never over-allocate — on
// malformed length prefixes and truncated payloads).
func FuzzShardFrameRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{})
	f.Add([]byte("payload"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Add(bytes.Repeat([]byte{0x41}, 300))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Role 1: data is a payload.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, data); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		got, err := ReadFrame(&buf, len(data)+1)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mutated payload: %d bytes in, %d out", len(data), len(got))
		}

		// Role 2: data is a hostile raw stream. Any outcome but a panic or
		// a runaway allocation is fine; a successful decode must carry a
		// payload consistent with the stream length.
		frame, err := ReadFrame(bytes.NewReader(data), 1<<16)
		if err == nil && len(frame) > len(data) {
			t.Fatalf("decoded %d payload bytes from a %d-byte stream", len(frame), len(data))
		}

		// Role 3: every truncation of a valid frame errors.
		var rebuilt bytes.Buffer
		if err := WriteFrame(&rebuilt, data); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		whole := rebuilt.Bytes()
		if len(whole) > 1 {
			if _, err := ReadFrame(bytes.NewReader(whole[:len(whole)-1]), 0); err == nil {
				t.Fatal("truncated frame decoded without error")
			}
		}
	})
}

func TestFrameWriteError(t *testing.T) {
	w := &failWriter{failAt: 2}
	err := WriteFrame(w, []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("write error not propagated: %v", err)
	}
}

type failWriter struct{ n, failAt int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n >= w.failAt {
		return 0, errors.New("boom")
	}
	return len(p), nil
}
