package paxos

import (
	"fmt"

	"lmc/internal/model"
)

// PaperLiveState reconstructs the live state that seeded the checker run
// which found the §5.5 bug: "for index ki, node N1 has proposed value v1,
// nodes N1 and N2 have accepted this proposal, but due to message losses
// only N1 has learned it." Concretely: N1 proposes value 1 for index 0;
// all three acceptors promise; N1's Accept reaches N1 and N2 (the copy to
// N3 is lost); of the resulting Learn broadcasts only those addressed to
// N1 arrive.
func PaperLiveState(m model.Machine) (model.SystemState, error) {
	sys := model.InitialSystem(m)

	apply := func(ev model.Event) ([]model.Message, error) {
		next, out := ev.Apply(m, sys[ev.Node])
		if next == nil {
			return nil, fmt.Errorf("paxos: live-state construction: handler rejected %s", ev)
		}
		sys[ev.Node] = next
		return out, nil
	}

	prepares, err := apply(model.ActEvent(Propose{On: 0, Index: 0, Value: 1}))
	if err != nil {
		return nil, err
	}
	if len(prepares) != 3 {
		return nil, fmt.Errorf("paxos: want 3 Prepare messages, got %d", len(prepares))
	}
	var responses []model.Message
	for _, p := range prepares {
		out, err := apply(model.RecvEvent(p))
		if err != nil {
			return nil, err
		}
		responses = append(responses, out...)
	}
	if len(responses) != 3 {
		return nil, fmt.Errorf("paxos: want 3 PrepareResponse messages, got %d", len(responses))
	}
	var accepts []model.Message
	for _, r := range responses[:2] {
		out, err := apply(model.RecvEvent(r))
		if err != nil {
			return nil, err
		}
		accepts = append(accepts, out...)
	}
	if len(accepts) != 3 {
		return nil, fmt.Errorf("paxos: want 3 Accept messages, got %d", len(accepts))
	}
	var learns []model.Message
	for _, a := range accepts {
		if a.Dst() == 2 {
			continue // Accept to N3 lost
		}
		out, err := apply(model.RecvEvent(a))
		if err != nil {
			return nil, err
		}
		learns = append(learns, out...)
	}
	if len(learns) != 6 {
		return nil, fmt.Errorf("paxos: want 6 Learn messages, got %d", len(learns))
	}
	for _, l := range learns {
		if l.Dst() == 0 {
			if _, err := apply(model.RecvEvent(l)); err != nil {
				return nil, err
			}
		}
	}
	st, err := ExtractState(sys[0])
	if err != nil {
		return nil, err
	}
	if _, ok := st.HasChosen(0); !ok {
		return nil, fmt.Errorf("paxos: live-state construction failed: N1 has not chosen")
	}
	return sys, nil
}
