package paxos

import (
	"lmc/internal/model"
)

// Params configures a Paxos instance: the node set, the layer tag and the
// protocol variant.
type Params struct {
	// N is the number of nodes; nodes 0..N-1 all play all three roles.
	N int
	// Layer tags this instance's messages (empty for a standalone service).
	Layer Tag
	// Bug selects the protocol variant.
	Bug BugKind
}

// Majority is the quorum size.
func (p Params) Majority() int { return p.N/2 + 1 }

// DoPropose executes a proposition by node n for (index, value) on st,
// mutating it: a fresh ballot higher than anything the node has seen is
// picked and Prepare is broadcast to every acceptor (including n itself).
// The returned messages are the broadcast.
func DoPropose(p Params, n model.NodeID, st *State, index, value int) []model.Message {
	b := Ballot{N: st.MaxBallotSeen(index) + 1, Node: n}
	st.setProposal(index, &proposal{
		Ballot: b,
		Value:  value,
	})
	st.ProposalsMade++
	out := make([]model.Message, 0, p.N)
	for to := 0; to < p.N; to++ {
		out = append(out, Prepare{
			header: header{Layer: p.Layer, From: n, To: model.NodeID(to), Index: index},
			Ballot: b,
			Value:  value,
		})
	}
	return out
}

// Step executes the message handler for m on st (mutating it) and returns
// the emitted messages. ok is false when m is not a message of this
// instance (wrong layer or unknown type), in which case st is untouched.
func Step(p Params, n model.NodeID, st *State, m model.Message) (out []model.Message, ok bool) {
	switch msg := m.(type) {
	case Prepare:
		if msg.Layer != p.Layer {
			return nil, false
		}
		return stepPrepare(p, n, st, msg), true
	case PrepareResponse:
		if msg.Layer != p.Layer {
			return nil, false
		}
		return stepPrepareResponse(p, n, st, msg), true
	case Accept:
		if msg.Layer != p.Layer {
			return nil, false
		}
		return stepAccept(p, n, st, msg), true
	case Learn:
		if msg.Layer != p.Layer {
			return nil, false
		}
		stepLearn(p, n, st, msg)
		return nil, true
	default:
		return nil, false
	}
}

// stepPrepare is the acceptor's phase-1b: promise if the ballot is at least
// as high as anything promised, and report the highest accepted value.
func stepPrepare(p Params, n model.NodeID, st *State, m Prepare) []model.Message {
	if cur, ok := st.promisedFor(m.Index); ok && m.Ballot.Less(cur) {
		// A higher promise exists: ignore (no NACK in the modeled variant).
		return nil
	}
	st.setPromised(m.Index, m.Ballot)
	resp := PrepareResponse{
		header: header{Layer: p.Layer, From: n, To: m.From, Index: m.Index},
		Ballot: m.Ballot,
	}
	if acc, ok := st.acceptedFor(m.Index); ok {
		resp.AccBallot = acc.Ballot
		resp.Value = acc.Value
	} else {
		// Nothing accepted: echo the submitted value, the way the
		// implementation checked in §5.5 does ("N3, since had not accepted
		// any value for index ki, responds back by the same value proposed
		// by N2").
		resp.Value = m.Value
	}
	return []model.Message{resp}
}

// stepPrepareResponse is the proposer's phase-2a trigger: on a majority of
// promises, pick the value and broadcast Accept. This is where the §5.5
// bug lives.
func stepPrepareResponse(p Params, n model.NodeID, st *State, m PrepareResponse) []model.Message {
	prop := st.proposalFor(m.Index)
	if prop == nil || prop.Accepting || m.Ballot != prop.Ballot {
		return nil // stale or duplicate response
	}
	if _, dup := prop.promiseOf(m.From); dup {
		return nil
	}
	prop.setPromise(m.From, promiseInfo{AccBallot: m.AccBallot, Value: m.Value})
	if len(prop.Promises) < p.Majority() {
		return nil
	}

	// Majority reached: select the value for the Accept broadcast.
	var value int
	switch p.Bug {
	case LastResponseBug:
		// Injected bug (§5.5): use the submitted value of the last received
		// PrepareResponse — the one that just completed the majority —
		// instead of the value of the highest-numbered accepted response.
		value = m.Value
	default:
		// Correct rule: the value of the PrepareResponse with the highest
		// accepted ballot; the proposer's own value if none accepted.
		value = prop.Value
		var best Ballot
		for _, pe := range prop.Promises {
			if !pe.Info.AccBallot.Zero() && best.Less(pe.Info.AccBallot) {
				best = pe.Info.AccBallot
				value = pe.Info.Value
			}
		}
	}
	prop.Accepting = true
	prop.Value = value
	out := make([]model.Message, 0, p.N)
	for to := 0; to < p.N; to++ {
		out = append(out, Accept{
			header: header{Layer: p.Layer, From: n, To: model.NodeID(to), Index: m.Index},
			Ballot: prop.Ballot,
			Value:  value,
		})
	}
	return out
}

// stepAccept is the acceptor's phase-2b: accept if no higher promise, then
// broadcast Learn to every learner.
func stepAccept(p Params, n model.NodeID, st *State, m Accept) []model.Message {
	if cur, ok := st.promisedFor(m.Index); ok && m.Ballot.Less(cur) {
		return nil
	}
	st.setPromised(m.Index, m.Ballot)
	st.setAccepted(m.Index, accepted{Ballot: m.Ballot, Value: m.Value})
	out := make([]model.Message, 0, p.N)
	for to := 0; to < p.N; to++ {
		out = append(out, Learn{
			header: header{Layer: p.Layer, From: n, To: model.NodeID(to), Index: m.Index},
			Ballot: m.Ballot,
			Value:  m.Value,
		})
	}
	return out
}

// stepLearn is the learner: record the announcement and choose once a
// majority of acceptors announced the same ballot. The first choice for an
// index is kept.
func stepLearn(p Params, n model.NodeID, st *State, m Learn) {
	recs := st.learnsFor(m.Index)
	var rec *learnRecord
	for _, r := range recs {
		if r.Ballot == m.Ballot && r.Value == m.Value {
			rec = r
			break
		}
	}
	if rec == nil {
		rec = &learnRecord{Ballot: m.Ballot, Value: m.Value}
		st.setLearns(m.Index, insertRecord(recs, rec))
	}
	rec.addAcceptor(m.From)
	if len(rec.Acceptors) >= p.Majority() {
		if _, done := st.HasChosen(m.Index); !done {
			st.addChoice(m.Index, m.Value)
		}
	}
}

// insertRecord keeps the per-index learn records canonically ordered by
// (ballot, value) so state encoding stays deterministic.
func insertRecord(recs []*learnRecord, rec *learnRecord) []*learnRecord {
	at := len(recs)
	for i, r := range recs {
		if rec.Ballot.Less(r.Ballot) || (rec.Ballot == r.Ballot && rec.Value < r.Value) {
			at = i
			break
		}
	}
	recs = append(recs, nil)
	copy(recs[at+1:], recs[at:])
	recs[at] = rec
	return recs
}
