package paxos

import (
	"math/rand"
	"sort"

	"lmc/internal/model"
)

// Driver is the test driver of §4.2: the application that feeds propose
// requests to the service. "The more complex the test driver, the larger
// the generated state space is" — the state spaces of §5 are defined by
// their drivers, so the driver is a first-class, pluggable part of the
// machine.
type Driver interface {
	// Proposals lists the propositions node n may initiate in state s.
	Proposals(p Params, n model.NodeID, s *State) []Propose
}

// OnceAt is the driver of the §5.1 benchmark space: exactly one node
// proposes exactly one value for one index; the others only react.
type OnceAt struct {
	Node  model.NodeID
	Index int
	Value int
}

// Proposals implements Driver. The proposal fires only from the node's
// pristine initial state: in a real run of this space no message exists
// before the proposal, so the propose call is necessarily the first event —
// and restricting the driver this way keeps the explored message universe
// finite (otherwise every evolved state would re-propose with an escalated
// ballot, a divergence no real run exhibits).
func (d OnceAt) Proposals(p Params, n model.NodeID, s *State) []Propose {
	if n != d.Node || !s.Pristine() {
		return nil
	}
	return []Propose{{On: n, Layer: p.Layer, Index: d.Index, Value: d.Value}}
}

// EachOnce is the driver of the §5.2 scalability space: each listed node
// proposes once (its own id as the value) for the same index.
type EachOnce struct {
	Nodes []model.NodeID
	Index int
}

// Proposals implements Driver.
func (d EachOnce) Proposals(p Params, n model.NodeID, s *State) []Propose {
	if s.ProposalsMade > 0 {
		return nil
	}
	for _, cand := range d.Nodes {
		if cand == n {
			return []Propose{{On: n, Layer: p.Layer, Index: d.Index, Value: int(n) + 1}}
		}
	}
	return nil
}

// ActiveIndex is the paper's online-checking driver (§4.2): "the test
// driver proposes values for a particular index. The index is selected from
// recent chosen proposals, where not all the nodes have learned the
// proposal yet. Otherwise, a new index is used." A node therefore proposes
// for the smallest index on which it observes unfinished activity — some
// role recorded something for the index, but the node's learner view does
// not yet show every node's acceptor having announced it — and only opens a
// fresh index when everything it knows about is fully settled. The proposed
// value is the node's id. This frugality is deliberate: "a careful design
// of the test driver could greatly impact the efficiency of model
// checking."
type ActiveIndex struct {
	// MaxPerNode bounds propositions per node counted over the node's
	// whole lifetime (ProposalsMade, which a live run's history also
	// advances); non-positive means unlimited, leaving the checker's
	// per-pass local-event bound as the only brake — the right setting for
	// online runs, whose snapshots arrive with history.
	MaxPerNode int
	// MaxIndexes bounds how many recent unsettled indexes are offered as
	// proposition targets; zero means 3.
	MaxIndexes int
	// FreshIndexes lets the driver open a new index when all known activity
	// is settled. The checker spaces of §5 keep this off to contain the
	// explored universe; the live application proposes at fresh indexes
	// through its own calls instead.
	FreshIndexes bool
}

// Proposals implements Driver.
func (d ActiveIndex) Proposals(p Params, n model.NodeID, s *State) []Propose {
	if d.MaxPerNode > 0 && s.ProposalsMade >= d.MaxPerNode {
		return nil
	}
	maxIdx := d.MaxIndexes
	if maxIdx <= 0 {
		maxIdx = 3
	}
	active := map[int]bool{}
	top := -1
	consider := func(i int) {
		if i > top {
			top = i
		}
		if !s.settled(p, i) {
			active[i] = true
		}
	}
	for _, e := range s.Promised {
		consider(e.Index)
	}
	for _, e := range s.Accepted {
		consider(e.Index)
	}
	for _, e := range s.Learns {
		consider(e.Index)
	}
	for _, p := range s.Chosen {
		consider(p.Index)
	}
	if len(active) == 0 {
		if !d.FreshIndexes {
			return nil
		}
		return []Propose{{On: n, Layer: p.Layer, Index: top + 1, Value: int(n) + 1}}
	}
	// Most recent unsettled indexes first ("recent chosen proposals").
	idxs := make([]int, 0, len(active))
	for i := range active {
		idxs = append(idxs, i)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(idxs)))
	if len(idxs) > maxIdx {
		idxs = idxs[:maxIdx]
	}
	out := make([]Propose, len(idxs))
	for j, i := range idxs {
		out[j] = Propose{On: n, Layer: p.Layer, Index: i, Value: int(n) + 1}
	}
	return out
}

// settled reports whether, in this node's local view, index i is finished
// business: the node has chosen a value and has seen every node's acceptor
// announce it. Unsettled indexes are where safety bugs hide, so they are
// what the driver re-proposes at.
func (s *State) settled(p Params, i int) bool {
	v, chosen := s.HasChosen(i)
	if !chosen {
		return false
	}
	for _, lr := range s.learnsFor(i) {
		if lr.Value == v && len(lr.Acceptors) >= p.N {
			return true
		}
	}
	return false
}

// LiveApp is the application of the §5.5 live runs: at each application
// call the node "proposes its Id for a new index" — the smallest index it
// has never seen activity on — and then sleeps (the sleep is the live
// runtime's application timer). The returned function has the signature
// the sim package's AppFunc expects.
func LiveApp(p Params) func(rng *rand.Rand, n model.NodeID, s model.State) []model.Action {
	return func(_ *rand.Rand, n model.NodeID, s model.State) []model.Action {
		st, ok := s.(*State)
		if !ok {
			return nil
		}
		top := -1
		bump := func(i int) {
			if i > top {
				top = i
			}
		}
		for _, e := range st.Promised {
			bump(e.Index)
		}
		for _, e := range st.Accepted {
			bump(e.Index)
		}
		for _, e := range st.Learns {
			bump(e.Index)
		}
		for _, p := range st.Chosen {
			bump(p.Index)
		}
		for _, e := range st.Proposals {
			bump(e.Index)
		}
		return []model.Action{Propose{On: n, Layer: p.Layer, Index: top + 1, Value: int(n) + 1}}
	}
}

// NoDriver disables propositions; useful when another layer drives the
// instance programmatically via DoPropose.
type NoDriver struct{}

// Proposals implements Driver.
func (NoDriver) Proposals(Params, model.NodeID, *State) []Propose { return nil }

// Machine adapts a Paxos instance plus a driver to model.Machine.
type Machine struct {
	P      Params
	Driver Driver
}

// New builds a standalone Paxos machine over n nodes.
func New(n int, bug BugKind, driver Driver) *Machine {
	return &Machine{P: Params{N: n, Bug: bug}, Driver: driver}
}

// Name implements model.Machine.
func (mc *Machine) Name() string {
	if mc.P.Bug == NoBug {
		return "paxos"
	}
	return "paxos-" + mc.P.Bug.String()
}

// NumNodes implements model.Machine.
func (mc *Machine) NumNodes() int { return mc.P.N }

// Init implements model.Machine.
func (mc *Machine) Init(model.NodeID) model.State { return NewState() }

// HandleMessage implements model.Machine.
func (mc *Machine) HandleMessage(n model.NodeID, s model.State, m model.Message) (model.State, []model.Message) {
	st := s.(*State)
	out, ok := Step(mc.P, n, st, m)
	if !ok {
		return nil, nil // unknown message: local assertion
	}
	return st, out
}

// Actions implements model.Machine: the driver's propose calls.
func (mc *Machine) Actions(n model.NodeID, s model.State) []model.Action {
	st := s.(*State)
	props := mc.Driver.Proposals(mc.P, n, st)
	if len(props) == 0 {
		return nil
	}
	out := make([]model.Action, len(props))
	for i, pr := range props {
		out[i] = pr
	}
	return out
}

// HandleAction implements model.Machine.
func (mc *Machine) HandleAction(n model.NodeID, s model.State, a model.Action) (model.State, []model.Message) {
	pr, ok := a.(Propose)
	if !ok || pr.On != n || pr.Layer != mc.P.Layer {
		return nil, nil
	}
	st := s.(*State)
	out := DoPropose(mc.P, n, st, pr.Index, pr.Value)
	return st, out
}

// SymmetryClasses implements model.Symmetric. The Agreement invariant
// compares chosen values pairwise over all node pairs without privileging
// slots, so it is slot-symmetric across any class; which nodes the classes
// may contain is decided by the driver, since a driver that scripts
// proposals on specific nodes makes those nodes distinguished roles.
// Drivers whose proposals depend on the node identity everywhere
// (ActiveIndex proposes int(n)+1 on every node) declare no classes.
func (mc *Machine) SymmetryClasses() [][]model.NodeID {
	distinguished := make(map[model.NodeID]bool)
	switch d := mc.Driver.(type) {
	case OnceAt:
		distinguished[d.Node] = true
	case EachOnce:
		for _, n := range d.Nodes {
			distinguished[n] = true
		}
	case NoDriver:
		// Pure reactors everywhere: all nodes interchangeable.
	default:
		return nil
	}
	var class []model.NodeID
	for n := 0; n < mc.P.N; n++ {
		if !distinguished[model.NodeID(n)] {
			class = append(class, model.NodeID(n))
		}
	}
	return [][]model.NodeID{class}
}
