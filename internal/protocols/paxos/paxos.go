// Package paxos implements the multi-index Paxos protocol the paper uses
// as its complex distributed testbed (§5): every node plays all three roles
// — proposer, acceptor, learner. A proposition for an index starts with a
// Prepare broadcast; acceptors answer with PrepareResponse; on a majority
// the proposer broadcasts Accept; each acceptor that accepts broadcasts
// Learn to all learners; a learner chooses a value once a majority of
// acceptors sent Learn for the same ballot.
//
// The package provides the correct protocol and, behind a switch, the
// injected bug of §5.5 (previously reported in WiDS Checker): when the
// majority of PrepareResponses arrives, the buggy proposer adopts the value
// submitted in the *last received* response instead of the value of the
// response with the highest accepted ballot.
//
// The state-transition core is exported in a mutating style (Step,
// DoPropose) so that layered services — 1Paxos's PaxosUtility — can embed a
// Paxos instance as their lower-layer module, the way the paper's Mace
// services stack.
package paxos

import (
	"fmt"
	"sort"

	"lmc/internal/codec"
	"lmc/internal/model"
)

// BugKind selects a protocol variant.
type BugKind int

const (
	// NoBug is the correct protocol.
	NoBug BugKind = iota
	// LastResponseBug makes the proposer use the value of the last received
	// PrepareResponse instead of the highest-ballot accepted value (§5.5).
	LastResponseBug
)

// String names the variant.
func (b BugKind) String() string {
	if b == LastResponseBug {
		return "last-response-bug"
	}
	return "correct"
}

// Ballot is a Paxos proposal number, totally ordered and unique per
// proposer (round number broken by node id).
type Ballot struct {
	N    int
	Node model.NodeID
}

// Zero reports whether the ballot is the "no ballot" value.
func (b Ballot) Zero() bool { return b.N == 0 }

// Less orders ballots.
func (b Ballot) Less(o Ballot) bool {
	if b.N != o.N {
		return b.N < o.N
	}
	return b.Node < o.Node
}

// Encode writes the ballot canonically.
func (b Ballot) Encode(w *codec.Writer) {
	w.Int(b.N)
	w.Int(int(b.Node))
}

// String renders the ballot.
func (b Ballot) String() string {
	if b.Zero() {
		return "b0"
	}
	return fmt.Sprintf("b%d.%v", b.N, b.Node)
}

// accepted is an acceptor's highest accepted (ballot, value) for an index.
type accepted struct {
	Ballot Ballot
	Value  int
}

// proposal is a proposer's in-flight proposition for one index.
type proposal struct {
	Ballot Ballot
	Value  int // the proposer's own submitted value
	// Accepting is false while collecting PrepareResponses, true after the
	// Accept broadcast.
	Accepting bool
	// Promises maps responder → the response content, for the value rule.
	Promises map[model.NodeID]promiseInfo
}

// promiseInfo is the content of one PrepareResponse as remembered by the
// proposer.
type promiseInfo struct {
	AccBallot Ballot // zero if the responder had accepted nothing
	Value     int    // accepted value, or the echoed submitted value
}

func (p *proposal) clone() *proposal {
	c := *p
	c.Promises = make(map[model.NodeID]promiseInfo, len(p.Promises))
	for k, v := range p.Promises {
		c.Promises[k] = v
	}
	return &c
}

// learnRecord tracks Learn messages received for one (index, ballot, value)
// from distinct acceptors.
type learnRecord struct {
	Ballot    Ballot
	Value     int
	Acceptors map[model.NodeID]bool
}

func (lr *learnRecord) clone() *learnRecord {
	c := &learnRecord{Ballot: lr.Ballot, Value: lr.Value,
		Acceptors: make(map[model.NodeID]bool, len(lr.Acceptors))}
	for k := range lr.Acceptors {
		c.Acceptors[k] = true
	}
	return c
}

// State is one Paxos node's local state (all three roles).
type State struct {
	// Proposer role.
	Proposals     map[int]*proposal // per index
	ProposalsMade int               // test-driver budget consumed

	// Acceptor role.
	Promised map[int]Ballot   // highest promised ballot per index
	Accepted map[int]accepted // highest accepted per index

	// Learner role.
	Learns map[int][]*learnRecord // per index, ordered canonically
	Chosen map[int]int            // chosen value per index (first choice kept)

	// chosenPairs mirrors Chosen as a slice sorted by index, maintained at
	// the choose site and by Clone. The agreement invariant runs on every
	// materialized system state — hundreds of thousands per exploration —
	// and iterating a Go map there costs a randomized-iterator setup per
	// combination; the sorted mirror makes the check an allocation-free
	// merge scan. States built by hand (tests poking Chosen directly) are
	// detected by a length mismatch and fall back to the map.
	chosenPairs []ChoicePair
}

// ChoicePair is one (index, value) choice, in ascending index order.
type ChoicePair struct{ Index, Value int }

// addChoice records a choice in both representations; the caller has
// already checked the index is new.
func (s *State) addChoice(index, value int) {
	s.Chosen[index] = value
	at := len(s.chosenPairs)
	for i, p := range s.chosenPairs {
		if index < p.Index {
			at = i
			break
		}
	}
	s.chosenPairs = append(s.chosenPairs, ChoicePair{})
	copy(s.chosenPairs[at+1:], s.chosenPairs[at:])
	s.chosenPairs[at] = ChoicePair{Index: index, Value: value}
}

// chosenSeq returns the sorted mirror when it is in sync with the map; a
// mismatch means the map was written directly and the caller must iterate
// the map instead.
func (s *State) chosenSeq() ([]ChoicePair, bool) {
	if len(s.chosenPairs) == len(s.Chosen) {
		return s.chosenPairs, true
	}
	return nil, false
}

// NewState returns an empty node state.
func NewState() *State {
	return &State{
		Proposals: make(map[int]*proposal),
		Promised:  make(map[int]Ballot),
		Accepted:  make(map[int]accepted),
		Learns:    make(map[int][]*learnRecord),
		Chosen:    make(map[int]int),
	}
}

// Clone implements model.State.
func (s *State) Clone() model.State {
	c := NewState()
	c.ProposalsMade = s.ProposalsMade
	for i, p := range s.Proposals {
		c.Proposals[i] = p.clone()
	}
	for i, b := range s.Promised {
		c.Promised[i] = b
	}
	for i, a := range s.Accepted {
		c.Accepted[i] = a
	}
	for i, lrs := range s.Learns {
		cl := make([]*learnRecord, len(lrs))
		for j, lr := range lrs {
			cl[j] = lr.clone()
		}
		c.Learns[i] = cl
	}
	for i, v := range s.Chosen {
		c.Chosen[i] = v
	}
	if len(s.chosenPairs) > 0 {
		c.chosenPairs = append([]ChoicePair(nil), s.chosenPairs...)
	}
	return c
}

// Encode implements codec.Encoder; all maps are written in sorted order.
func (s *State) Encode(w *codec.Writer) {
	w.Int(s.ProposalsMade)

	idxs := sortedKeys(s.Proposals)
	w.Uint32(uint32(len(idxs)))
	for _, i := range idxs {
		p := s.Proposals[i]
		w.Int(i)
		p.Ballot.Encode(w)
		w.Int(p.Value)
		w.Bool(p.Accepting)
		resps := make([]int, 0, len(p.Promises))
		for n := range p.Promises {
			resps = append(resps, int(n))
		}
		sort.Ints(resps)
		w.Uint32(uint32(len(resps)))
		for _, n := range resps {
			pi := p.Promises[model.NodeID(n)]
			w.Int(n)
			pi.AccBallot.Encode(w)
			w.Int(pi.Value)
		}
	}

	pidxs := make([]int, 0, len(s.Promised))
	for i := range s.Promised {
		pidxs = append(pidxs, i)
	}
	sort.Ints(pidxs)
	w.Uint32(uint32(len(pidxs)))
	for _, i := range pidxs {
		w.Int(i)
		s.Promised[i].Encode(w)
	}

	aidxs := make([]int, 0, len(s.Accepted))
	for i := range s.Accepted {
		aidxs = append(aidxs, i)
	}
	sort.Ints(aidxs)
	w.Uint32(uint32(len(aidxs)))
	for _, i := range aidxs {
		a := s.Accepted[i]
		w.Int(i)
		a.Ballot.Encode(w)
		w.Int(a.Value)
	}

	lidxs := make([]int, 0, len(s.Learns))
	for i := range s.Learns {
		lidxs = append(lidxs, i)
	}
	sort.Ints(lidxs)
	w.Uint32(uint32(len(lidxs)))
	for _, i := range lidxs {
		lrs := s.Learns[i]
		w.Int(i)
		w.Uint32(uint32(len(lrs)))
		for _, lr := range lrs {
			lr.Ballot.Encode(w)
			w.Int(lr.Value)
			accs := make([]int, 0, len(lr.Acceptors))
			for n := range lr.Acceptors {
				accs = append(accs, int(n))
			}
			sort.Ints(accs)
			w.Ints(accs)
		}
	}

	w.IntMap(s.Chosen)
}

// String renders the state compactly: chosen values, accepted values and
// in-flight proposals.
func (s *State) String() string {
	out := "{"
	for _, i := range sortedIntKeys(s.Chosen) {
		out += fmt.Sprintf("chosen[%d]=%d ", i, s.Chosen[i])
	}
	for _, i := range sortedAccKeys(s.Accepted) {
		a := s.Accepted[i]
		out += fmt.Sprintf("acc[%d]=%d@%s ", i, a.Value, a.Ballot)
	}
	for _, i := range sortedKeys(s.Proposals) {
		p := s.Proposals[i]
		phase := "prep"
		if p.Accepting {
			phase = "acc"
		}
		out += fmt.Sprintf("prop[%d]=%d@%s/%s ", i, p.Value, p.Ballot, phase)
	}
	return out + "}"
}

func sortedKeys(m map[int]*proposal) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedIntKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedAccKeys(m map[int]accepted) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Pristine reports whether the state is indistinguishable from the initial
// state: no role has recorded any activity.
func (s *State) Pristine() bool {
	return s.ProposalsMade == 0 && len(s.Proposals) == 0 &&
		len(s.Promised) == 0 && len(s.Accepted) == 0 &&
		len(s.Learns) == 0 && len(s.Chosen) == 0
}

// HasChosen reports the chosen value for an index, if any.
func (s *State) HasChosen(index int) (int, bool) {
	v, ok := s.Chosen[index]
	return v, ok
}

// ChosenSet returns a copy of the chosen map.
func (s *State) ChosenSet() map[int]int {
	out := make(map[int]int, len(s.Chosen))
	for k, v := range s.Chosen {
		out[k] = v
	}
	return out
}

// MaxBallotSeen returns the highest ballot number this node has observed
// for an index, across all roles — the basis for picking a fresh ballot.
func (s *State) MaxBallotSeen(index int) int {
	max := 0
	if b, ok := s.Promised[index]; ok && b.N > max {
		max = b.N
	}
	if a, ok := s.Accepted[index]; ok && a.Ballot.N > max {
		max = a.Ballot.N
	}
	if p, ok := s.Proposals[index]; ok && p.Ballot.N > max {
		max = p.Ballot.N
	}
	for _, lr := range s.Learns[index] {
		if lr.Ballot.N > max {
			max = lr.Ballot.N
		}
	}
	return max
}
