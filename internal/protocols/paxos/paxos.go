// Package paxos implements the multi-index Paxos protocol the paper uses
// as its complex distributed testbed (§5): every node plays all three roles
// — proposer, acceptor, learner. A proposition for an index starts with a
// Prepare broadcast; acceptors answer with PrepareResponse; on a majority
// the proposer broadcasts Accept; each acceptor that accepts broadcasts
// Learn to all learners; a learner chooses a value once a majority of
// acceptors sent Learn for the same ballot.
//
// The package provides the correct protocol and, behind a switch, the
// injected bug of §5.5 (previously reported in WiDS Checker): when the
// majority of PrepareResponses arrives, the buggy proposer adopts the value
// submitted in the *last received* response instead of the value of the
// response with the highest accepted ballot.
//
// The state-transition core is exported in a mutating style (Step,
// DoPropose) so that layered services — 1Paxos's PaxosUtility — can embed a
// Paxos instance as their lower-layer module, the way the paper's Mace
// services stack.
package paxos

import (
	"fmt"

	"lmc/internal/codec"
	"lmc/internal/model"
)

// BugKind selects a protocol variant.
type BugKind int

const (
	// NoBug is the correct protocol.
	NoBug BugKind = iota
	// LastResponseBug makes the proposer use the value of the last received
	// PrepareResponse instead of the highest-ballot accepted value (§5.5).
	LastResponseBug
)

// String names the variant.
func (b BugKind) String() string {
	if b == LastResponseBug {
		return "last-response-bug"
	}
	return "correct"
}

// Ballot is a Paxos proposal number, totally ordered and unique per
// proposer (round number broken by node id).
type Ballot struct {
	N    int
	Node model.NodeID
}

// Zero reports whether the ballot is the "no ballot" value.
func (b Ballot) Zero() bool { return b.N == 0 }

// Less orders ballots.
func (b Ballot) Less(o Ballot) bool {
	if b.N != o.N {
		return b.N < o.N
	}
	return b.Node < o.Node
}

// Encode writes the ballot canonically.
func (b Ballot) Encode(w *codec.Writer) {
	w.Int(b.N)
	w.Int(int(b.Node))
}

// String renders the ballot.
func (b Ballot) String() string {
	if b.Zero() {
		return "b0"
	}
	return fmt.Sprintf("b%d.%v", b.N, b.Node)
}

// accepted is an acceptor's highest accepted (ballot, value) for an index.
type accepted struct {
	Ballot Ballot
	Value  int
}

// proposal is a proposer's in-flight proposition for one index.
type proposal struct {
	Ballot Ballot
	Value  int // the proposer's own submitted value
	// Accepting is false while collecting PrepareResponses, true after the
	// Accept broadcast.
	Accepting bool
	// Promises records the responses received so far, ascending by
	// responder, for the value rule.
	Promises []promiseFrom
}

// promiseFrom is one PrepareResponse as remembered by the proposer.
type promiseFrom struct {
	Node model.NodeID
	Info promiseInfo
}

// promiseInfo is the content of one PrepareResponse.
type promiseInfo struct {
	AccBallot Ballot // zero if the responder had accepted nothing
	Value     int    // accepted value, or the echoed submitted value
}

func (p *proposal) clone() *proposal {
	c := *p
	c.Promises = append([]promiseFrom(nil), p.Promises...)
	return &c
}

// promiseOf looks up the remembered response from one node.
func (p *proposal) promiseOf(n model.NodeID) (promiseInfo, bool) {
	for _, e := range p.Promises {
		if e.Node == n {
			return e.Info, true
		}
	}
	return promiseInfo{}, false
}

// setPromise records (or overwrites) one responder's promise, keeping the
// ascending-by-node order.
func (p *proposal) setPromise(n model.NodeID, pi promiseInfo) {
	at := len(p.Promises)
	for i, e := range p.Promises {
		if e.Node == n {
			p.Promises[i].Info = pi
			return
		}
		if n < e.Node {
			at = i
			break
		}
	}
	p.Promises = append(p.Promises, promiseFrom{})
	copy(p.Promises[at+1:], p.Promises[at:])
	p.Promises[at] = promiseFrom{Node: n, Info: pi}
}

// learnRecord tracks Learn messages received for one (index, ballot, value)
// from distinct acceptors.
type learnRecord struct {
	Ballot    Ballot
	Value     int
	Acceptors []model.NodeID // announcing acceptors, ascending, distinct
}

func (lr *learnRecord) clone() *learnRecord {
	c := *lr
	c.Acceptors = append([]model.NodeID(nil), lr.Acceptors...)
	return &c
}

// addAcceptor records one announcing acceptor, keeping the set distinct and
// ascending.
func (lr *learnRecord) addAcceptor(n model.NodeID) {
	at := len(lr.Acceptors)
	for i, a := range lr.Acceptors {
		if a == n {
			return
		}
		if n < a {
			at = i
			break
		}
	}
	lr.Acceptors = append(lr.Acceptors, 0)
	copy(lr.Acceptors[at+1:], lr.Acceptors[at:])
	lr.Acceptors[at] = n
}

// State is one Paxos node's local state (all three roles).
//
// Every per-index collection is a slice sorted ascending by index rather
// than a map: node states are cloned once per handler execution and
// fingerprint-encoded once per discovered state — the exploration's two
// hottest operations — and at the handful of indexes a checker run touches,
// sorted slices turn both into short linear copies/scans where maps paid
// for hashing, randomized iteration and per-entry allocation. Lookups go
// through the *For accessors; mutations through the set* helpers, which
// maintain the order the canonical encoding relies on.
type State struct {
	// Proposer role: in-flight propositions, ascending by index.
	Proposals     []proposalAt
	ProposalsMade int // test-driver budget consumed

	// Acceptor role: highest promised ballot and highest accepted
	// (ballot, value) per index, each ascending by index.
	Promised []promisedAt
	Accepted []acceptedAt

	// Learner role: learn records per index and chosen values (first
	// choice kept), each ascending by index.
	Learns []learnsAt
	Chosen []ChoicePair
}

// proposalAt is one in-flight proposition keyed by its index.
type proposalAt struct {
	Index int
	P     *proposal
}

// promisedAt is the highest promised ballot for one index.
type promisedAt struct {
	Index  int
	Ballot Ballot
}

// acceptedAt is the highest accepted (ballot, value) for one index.
type acceptedAt struct {
	Index int
	A     accepted
}

// learnsAt is the learn records for one index, ordered canonically by
// (ballot, value).
type learnsAt struct {
	Index int
	Recs  []*learnRecord
}

// ChoicePair is one (index, value) choice, in ascending index order.
type ChoicePair struct{ Index, Value int }

func (s *State) proposalFor(i int) *proposal {
	for _, e := range s.Proposals {
		if e.Index == i {
			return e.P
		}
	}
	return nil
}

func (s *State) setProposal(i int, p *proposal) {
	at := len(s.Proposals)
	for j, e := range s.Proposals {
		if e.Index == i {
			s.Proposals[j].P = p
			return
		}
		if i < e.Index {
			at = j
			break
		}
	}
	s.Proposals = append(s.Proposals, proposalAt{})
	copy(s.Proposals[at+1:], s.Proposals[at:])
	s.Proposals[at] = proposalAt{Index: i, P: p}
}

func (s *State) promisedFor(i int) (Ballot, bool) {
	for _, e := range s.Promised {
		if e.Index == i {
			return e.Ballot, true
		}
	}
	return Ballot{}, false
}

func (s *State) setPromised(i int, b Ballot) {
	at := len(s.Promised)
	for j, e := range s.Promised {
		if e.Index == i {
			s.Promised[j].Ballot = b
			return
		}
		if i < e.Index {
			at = j
			break
		}
	}
	s.Promised = append(s.Promised, promisedAt{})
	copy(s.Promised[at+1:], s.Promised[at:])
	s.Promised[at] = promisedAt{Index: i, Ballot: b}
}

func (s *State) acceptedFor(i int) (accepted, bool) {
	for _, e := range s.Accepted {
		if e.Index == i {
			return e.A, true
		}
	}
	return accepted{}, false
}

func (s *State) setAccepted(i int, a accepted) {
	at := len(s.Accepted)
	for j, e := range s.Accepted {
		if e.Index == i {
			s.Accepted[j].A = a
			return
		}
		if i < e.Index {
			at = j
			break
		}
	}
	s.Accepted = append(s.Accepted, acceptedAt{})
	copy(s.Accepted[at+1:], s.Accepted[at:])
	s.Accepted[at] = acceptedAt{Index: i, A: a}
}

func (s *State) learnsFor(i int) []*learnRecord {
	for _, e := range s.Learns {
		if e.Index == i {
			return e.Recs
		}
	}
	return nil
}

func (s *State) setLearns(i int, recs []*learnRecord) {
	at := len(s.Learns)
	for j, e := range s.Learns {
		if e.Index == i {
			s.Learns[j].Recs = recs
			return
		}
		if i < e.Index {
			at = j
			break
		}
	}
	s.Learns = append(s.Learns, learnsAt{})
	copy(s.Learns[at+1:], s.Learns[at:])
	s.Learns[at] = learnsAt{Index: i, Recs: recs}
}

// SetChosen records (or overwrites) the chosen value for an index, keeping
// the ascending order. The protocol itself only ever records a first choice
// (stepLearn checks HasChosen); tests and harnesses use SetChosen to build
// states by hand.
func (s *State) SetChosen(index, value int) {
	at := len(s.Chosen)
	for i, p := range s.Chosen {
		if p.Index == index {
			s.Chosen[i].Value = value
			return
		}
		if index < p.Index {
			at = i
			break
		}
	}
	s.Chosen = append(s.Chosen, ChoicePair{})
	copy(s.Chosen[at+1:], s.Chosen[at:])
	s.Chosen[at] = ChoicePair{Index: index, Value: value}
}

// addChoice records a choice; the caller has already checked the index is
// new.
func (s *State) addChoice(index, value int) { s.SetChosen(index, value) }

// NewState returns an empty node state. All collections start nil — a
// pristine node allocates nothing until its first handler runs.
func NewState() *State { return &State{} }

// Clone implements model.State. Value-typed collections are flat copies;
// only proposals and learn records (mutated in place by later handlers)
// are deep-cloned.
func (s *State) Clone() model.State {
	c := &State{
		ProposalsMade: s.ProposalsMade,
		Promised:      append([]promisedAt(nil), s.Promised...),
		Accepted:      append([]acceptedAt(nil), s.Accepted...),
		Chosen:        append([]ChoicePair(nil), s.Chosen...),
	}
	if len(s.Proposals) > 0 {
		c.Proposals = make([]proposalAt, len(s.Proposals))
		for i, e := range s.Proposals {
			c.Proposals[i] = proposalAt{Index: e.Index, P: e.P.clone()}
		}
	}
	if len(s.Learns) > 0 {
		c.Learns = make([]learnsAt, len(s.Learns))
		for i, e := range s.Learns {
			recs := make([]*learnRecord, len(e.Recs))
			for j, lr := range e.Recs {
				recs[j] = lr.clone()
			}
			c.Learns[i] = learnsAt{Index: e.Index, Recs: recs}
		}
	}
	return c
}

// Encode implements codec.Encoder. Every collection is written ascending by
// its key — the order the slices maintain by construction — so the byte
// stream is identical to sorting the former map representation's keys; the
// encoding test diffs it against a reference encoder that re-sorts from
// scratch. The byte stream is fingerprint-critical: any change here splits
// the visited-state space across binary versions.
func (s *State) Encode(w *codec.Writer) {
	w.Int(s.ProposalsMade)

	w.Uint32(uint32(len(s.Proposals)))
	for _, e := range s.Proposals {
		p := e.P
		w.Int(e.Index)
		p.Ballot.Encode(w)
		w.Int(p.Value)
		w.Bool(p.Accepting)
		w.Uint32(uint32(len(p.Promises)))
		for _, pe := range p.Promises {
			w.Int(int(pe.Node))
			pe.Info.AccBallot.Encode(w)
			w.Int(pe.Info.Value)
		}
	}

	w.Uint32(uint32(len(s.Promised)))
	for _, e := range s.Promised {
		w.Int(e.Index)
		e.Ballot.Encode(w)
	}

	w.Uint32(uint32(len(s.Accepted)))
	for _, e := range s.Accepted {
		w.Int(e.Index)
		e.A.Ballot.Encode(w)
		w.Int(e.A.Value)
	}

	w.Uint32(uint32(len(s.Learns)))
	for _, e := range s.Learns {
		w.Int(e.Index)
		w.Uint32(uint32(len(e.Recs)))
		for _, lr := range e.Recs {
			lr.Ballot.Encode(w)
			w.Int(lr.Value)
			w.Uint32(uint32(len(lr.Acceptors)))
			for _, n := range lr.Acceptors {
				w.Int(int(n))
			}
		}
	}

	w.Uint32(uint32(len(s.Chosen)))
	for _, p := range s.Chosen {
		w.Int(p.Index)
		w.Int(p.Value)
	}
}

// String renders the state compactly: chosen values, accepted values and
// in-flight proposals.
func (s *State) String() string {
	out := "{"
	for _, p := range s.Chosen {
		out += fmt.Sprintf("chosen[%d]=%d ", p.Index, p.Value)
	}
	for _, e := range s.Accepted {
		out += fmt.Sprintf("acc[%d]=%d@%s ", e.Index, e.A.Value, e.A.Ballot)
	}
	for _, e := range s.Proposals {
		phase := "prep"
		if e.P.Accepting {
			phase = "acc"
		}
		out += fmt.Sprintf("prop[%d]=%d@%s/%s ", e.Index, e.P.Value, e.P.Ballot, phase)
	}
	return out + "}"
}

// Pristine reports whether the state is indistinguishable from the initial
// state: no role has recorded any activity.
func (s *State) Pristine() bool {
	return s.ProposalsMade == 0 && len(s.Proposals) == 0 &&
		len(s.Promised) == 0 && len(s.Accepted) == 0 &&
		len(s.Learns) == 0 && len(s.Chosen) == 0
}

// HasChosen reports the chosen value for an index, if any.
func (s *State) HasChosen(index int) (int, bool) {
	for _, p := range s.Chosen {
		if p.Index == index {
			return p.Value, true
		}
	}
	return 0, false
}

// ChosenSet returns the chosen values as a map.
func (s *State) ChosenSet() map[int]int {
	out := make(map[int]int, len(s.Chosen))
	for _, p := range s.Chosen {
		out[p.Index] = p.Value
	}
	return out
}

// MaxBallotSeen returns the highest ballot number this node has observed
// for an index, across all roles — the basis for picking a fresh ballot.
func (s *State) MaxBallotSeen(index int) int {
	max := 0
	if b, ok := s.promisedFor(index); ok && b.N > max {
		max = b.N
	}
	if a, ok := s.acceptedFor(index); ok && a.Ballot.N > max {
		max = a.Ballot.N
	}
	if p := s.proposalFor(index); p != nil && p.Ballot.N > max {
		max = p.Ballot.N
	}
	for _, lr := range s.learnsFor(index) {
		if lr.Ballot.N > max {
			max = lr.Ballot.N
		}
	}
	return max
}
