package paxos

import (
	"fmt"

	"lmc/internal/codec"
	"lmc/internal/model"
)

// Tag scopes message identities so a layered service embedding this Paxos
// implementation (1Paxos's PaxosUtility) never confuses its lower-layer
// messages with a sibling instance's.
type Tag string

// header carries the fields common to all Paxos messages.
type header struct {
	Layer    Tag
	From, To model.NodeID
	Index    int
}

func (h header) Src() model.NodeID { return h.From }
func (h header) Dst() model.NodeID { return h.To }

func (h header) encode(w *codec.Writer, kind string) {
	w.String(string(h.Layer))
	w.String(kind)
	w.Int(int(h.From))
	w.Int(int(h.To))
	w.Int(h.Index)
}

// Prepare is phase-1a: the proposer solicits promises. It carries the
// submitted value so acceptors with nothing accepted can echo it in their
// response (the field the §5.5 bug mis-uses).
type Prepare struct {
	header
	Ballot Ballot
	Value  int
}

// Encode implements codec.Encoder.
func (m Prepare) Encode(w *codec.Writer) {
	m.encode(w, "prepare")
	m.Ballot.Encode(w)
	w.Int(m.Value)
}

// String implements model.Message.
func (m Prepare) String() string {
	return fmt.Sprintf("%sPrepare{%v->%v i=%d %s v=%d}", m.Layer, m.From, m.To, m.Index, m.Ballot, m.Value)
}

// PrepareResponse is phase-1b: the acceptor's promise. AccBallot is zero
// when the acceptor had accepted nothing; Value is then the echoed
// submitted value, otherwise the accepted value.
type PrepareResponse struct {
	header
	Ballot    Ballot
	AccBallot Ballot
	Value     int
}

// Encode implements codec.Encoder.
func (m PrepareResponse) Encode(w *codec.Writer) {
	m.encode(w, "prepare-response")
	m.Ballot.Encode(w)
	m.AccBallot.Encode(w)
	w.Int(m.Value)
}

// String implements model.Message.
func (m PrepareResponse) String() string {
	return fmt.Sprintf("%sPrepareResponse{%v->%v i=%d %s acc=%s v=%d}",
		m.Layer, m.From, m.To, m.Index, m.Ballot, m.AccBallot, m.Value)
}

// Accept is phase-2a: the proposer asks acceptors to accept a value.
type Accept struct {
	header
	Ballot Ballot
	Value  int
}

// Encode implements codec.Encoder.
func (m Accept) Encode(w *codec.Writer) {
	m.encode(w, "accept")
	m.Ballot.Encode(w)
	w.Int(m.Value)
}

// String implements model.Message.
func (m Accept) String() string {
	return fmt.Sprintf("%sAccept{%v->%v i=%d %s v=%d}", m.Layer, m.From, m.To, m.Index, m.Ballot, m.Value)
}

// Learn is phase-3: an acceptor announces its acceptance to a learner; the
// learner chooses once a majority of acceptors announced the same ballot.
type Learn struct {
	header
	Ballot Ballot
	Value  int
}

// Encode implements codec.Encoder.
func (m Learn) Encode(w *codec.Writer) {
	m.encode(w, "learn")
	m.Ballot.Encode(w)
	w.Int(m.Value)
}

// String implements model.Message.
func (m Learn) String() string {
	return fmt.Sprintf("%sLearn{%v->%v i=%d %s v=%d}", m.Layer, m.From, m.To, m.Index, m.Ballot, m.Value)
}

// Propose is the test-driver application call (internal action): node On
// submits Value for Index (§4.2, "Test driver").
type Propose struct {
	On    model.NodeID
	Layer Tag
	Index int
	Value int
}

// Node implements model.Action.
func (a Propose) Node() model.NodeID { return a.On }

// Encode implements codec.Encoder.
func (a Propose) Encode(w *codec.Writer) {
	w.String(string(a.Layer))
	w.String("propose")
	w.Int(int(a.On))
	w.Int(a.Index)
	w.Int(a.Value)
}

// String implements model.Action.
func (a Propose) String() string {
	return fmt.Sprintf("%sPropose{%v i=%d v=%d}", a.Layer, a.On, a.Index, a.Value)
}
