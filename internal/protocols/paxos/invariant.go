package paxos

import (
	"fmt"
	"strings"

	"lmc/internal/model"
	"lmc/internal/spec"
)

// AgreementName names the Paxos safety invariant.
const AgreementName = "paxos-agreement"

// Agreement is the Paxos invariant of §5: "no two nodes will choose
// different values for the same index".
func Agreement() spec.Invariant {
	return spec.InvariantFunc{
		InvName: AgreementName,
		Fn: func(ss model.SystemState) *spec.Violation {
			for i := 0; i < len(ss); i++ {
				si, ok := ss[i].(*State)
				if !ok {
					return nil
				}
				// Most node states in an exploration have chosen nothing;
				// skip the pairwise scan entirely for them.
				if len(si.Chosen) == 0 {
					continue
				}
				for j := i + 1; j < len(ss); j++ {
					sj := ss[j].(*State)
					if len(sj.Chosen) == 0 {
						continue
					}
					if v := conflictScan(ss, i, j, si.Chosen, sj.Chosen); v != nil {
						return v
					}
				}
			}
			return nil
		},
	}
}

// conflictScan merge-scans two sorted choice sequences for a common index
// with different values. It allocates nothing on the (overwhelmingly common)
// agreeing path.
func conflictScan(ss model.SystemState, i, j int, pi, pj []ChoicePair) *spec.Violation {
	a, b := 0, 0
	for a < len(pi) && b < len(pj) {
		switch {
		case pi[a].Index < pj[b].Index:
			a++
		case pi[a].Index > pj[b].Index:
			b++
		default:
			if pi[a].Value != pj[b].Value {
				return spec.Violate(AgreementName, ss,
					"index %d: %v chose %d but %v chose %d",
					pi[a].Index, model.NodeID(i), pi[a].Value, model.NodeID(j), pj[b].Value)
			}
			a++
			b++
		}
	}
	return nil
}

// chosenInterest is the LMC-OPT projection of a node state: the values it
// has chosen, per index, sorted by index.
type chosenInterest []ChoicePair

// Reduction is the invariant-specific system-state creation rule of §4.2
// (the LMC-OPT configuration): "we map the node states to the values that
// are chosen in them. Because most of the node states have not chosen any
// value, lots of them will not be included in this mapping. When creating
// system states, we thus select only the node states that at least two of
// them are mapped to different values."
type Reduction struct{}

// Interest implements spec.Reduction.
func (Reduction) Interest(_ model.NodeID, s model.State) (spec.Interest, bool) {
	st, ok := s.(*State)
	if !ok || len(st.Chosen) == 0 {
		return nil, false
	}
	// Copy: the interest outlives this call and the state's slice may be
	// edited in place by a later choice.
	return chosenInterest(append([]ChoicePair(nil), st.Chosen...)), true
}

// Conflict implements spec.Reduction: two interests conflict when they
// chose different values for a common index.
func (Reduction) Conflict(a, b spec.Interest) bool {
	ca, ok := a.(chosenInterest)
	if !ok {
		return false
	}
	cb, ok := b.(chosenInterest)
	if !ok {
		return false
	}
	x, y := 0, 0
	for x < len(ca) && y < len(cb) {
		switch {
		case ca[x].Index < cb[y].Index:
			x++
		case ca[x].Index > cb[y].Index:
			y++
		default:
			if ca[x].Value != cb[y].Value {
				return true
			}
			x++
			y++
		}
	}
	return false
}

// InterestKey implements spec.Keyer: the canonical rendering of the chosen
// set, so node states that chose the same values group together.
func (Reduction) InterestKey(i spec.Interest) string {
	ci, ok := i.(chosenInterest)
	if !ok {
		return ""
	}
	var b strings.Builder
	for _, p := range ci {
		fmt.Fprintf(&b, "%d=%d;", p.Index, p.Value)
	}
	return b.String()
}

// ExtractState asserts a model.State to *State, for tests and tools.
func ExtractState(s model.State) (*State, error) {
	st, ok := s.(*State)
	if !ok {
		return nil, fmt.Errorf("paxos: not a paxos state: %T", s)
	}
	return st, nil
}
