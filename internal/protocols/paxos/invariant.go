package paxos

import (
	"fmt"
	"sort"
	"strings"

	"lmc/internal/model"
	"lmc/internal/spec"
)

// AgreementName names the Paxos safety invariant.
const AgreementName = "paxos-agreement"

// Agreement is the Paxos invariant of §5: "no two nodes will choose
// different values for the same index".
func Agreement() spec.Invariant {
	return spec.InvariantFunc{
		InvName: AgreementName,
		Fn: func(ss model.SystemState) *spec.Violation {
			for i := 0; i < len(ss); i++ {
				si, ok := ss[i].(*State)
				if !ok {
					return nil
				}
				for idx, vi := range si.Chosen {
					for j := i + 1; j < len(ss); j++ {
						sj := ss[j].(*State)
						if vj, ok := sj.Chosen[idx]; ok && vj != vi {
							return spec.Violate(AgreementName, ss,
								"index %d: %v chose %d but %v chose %d",
								idx, model.NodeID(i), vi, model.NodeID(j), vj)
						}
					}
				}
			}
			return nil
		},
	}
}

// chosenInterest is the LMC-OPT projection of a node state: the set of
// values it has chosen, per index.
type chosenInterest map[int]int

// Reduction is the invariant-specific system-state creation rule of §4.2
// (the LMC-OPT configuration): "we map the node states to the values that
// are chosen in them. Because most of the node states have not chosen any
// value, lots of them will not be included in this mapping. When creating
// system states, we thus select only the node states that at least two of
// them are mapped to different values."
type Reduction struct{}

// Interest implements spec.Reduction.
func (Reduction) Interest(_ model.NodeID, s model.State) (spec.Interest, bool) {
	st, ok := s.(*State)
	if !ok || len(st.Chosen) == 0 {
		return nil, false
	}
	return chosenInterest(st.ChosenSet()), true
}

// Conflict implements spec.Reduction: two interests conflict when they
// chose different values for a common index.
func (Reduction) Conflict(a, b spec.Interest) bool {
	ca, ok := a.(chosenInterest)
	if !ok {
		return false
	}
	cb, ok := b.(chosenInterest)
	if !ok {
		return false
	}
	for idx, va := range ca {
		if vb, ok := cb[idx]; ok && va != vb {
			return true
		}
	}
	return false
}

// InterestKey implements spec.Keyer: the canonical rendering of the chosen
// map, so node states that chose the same values group together.
func (Reduction) InterestKey(i spec.Interest) string {
	ci, ok := i.(chosenInterest)
	if !ok {
		return ""
	}
	idxs := make([]int, 0, len(ci))
	for idx := range ci {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var b strings.Builder
	for _, idx := range idxs {
		fmt.Fprintf(&b, "%d=%d;", idx, ci[idx])
	}
	return b.String()
}

// ExtractState asserts a model.State to *State, for tests and tools.
func ExtractState(s model.State) (*State, error) {
	st, ok := s.(*State)
	if !ok {
		return nil, fmt.Errorf("paxos: not a paxos state: %T", s)
	}
	return st, nil
}
