package paxos

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/testkit"
)

func params() Params { return Params{N: 3} }

// TestBallotOrdering checks the total order on ballots (number first, node
// id as the tie-break) — a property-based check.
func TestBallotOrdering(t *testing.T) {
	f := func(n1, n2 int, a, b uint8) bool {
		x := Ballot{N: n1, Node: model.NodeID(a % 3)}
		y := Ballot{N: n2, Node: model.NodeID(b % 3)}
		switch {
		case x == y:
			return !x.Less(y) && !y.Less(x)
		default:
			return x.Less(y) != y.Less(x) // exactly one direction
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBallotZero checks the sentinel.
func TestBallotZero(t *testing.T) {
	if !(Ballot{}).Zero() || (Ballot{N: 1}).Zero() {
		t.Fatal("Zero() wrong")
	}
}

// TestHappyPath drives one full proposal to unanimity through the message
// pump: every node must choose the proposed value.
func TestHappyPath(t *testing.T) {
	m := New(3, NoBug, NoDriver{})
	h := testkit.New(m)
	if err := h.Act(Propose{On: 0, Index: 0, Value: 42}); err != nil {
		t.Fatal(err)
	}
	if err := h.Settle(1000); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		st := h.State(model.NodeID(n)).(*State)
		if v, ok := st.HasChosen(0); !ok || v != 42 {
			t.Fatalf("node %d: chosen=%v", n, st.Chosen)
		}
	}
}

// TestPromiseRefusesLowerBallot: once promised b2, a b1 Prepare is ignored.
func TestPromiseRefusesLowerBallot(t *testing.T) {
	st := NewState()
	hi := Prepare{header: header{From: 1, To: 0, Index: 0}, Ballot: Ballot{N: 2, Node: 1}, Value: 9}
	lo := Prepare{header: header{From: 2, To: 0, Index: 0}, Ballot: Ballot{N: 1, Node: 2}, Value: 8}
	out, ok := Step(params(), 0, st, hi)
	if !ok || len(out) != 1 {
		t.Fatalf("high prepare not answered: %v", out)
	}
	out, ok = Step(params(), 0, st, lo)
	if !ok || len(out) != 0 {
		t.Fatalf("low prepare should be silently ignored, got %v", out)
	}
	if b, _ := st.promisedFor(0); b != hi.Ballot {
		t.Fatal("promise regressed")
	}
}

// TestPrepareResponseEchoesValue: an acceptor with nothing accepted echoes
// the submitted value — the field the §5.5 bug mis-uses.
func TestPrepareResponseEchoesValue(t *testing.T) {
	st := NewState()
	out, _ := Step(params(), 2, st, Prepare{
		header: header{From: 1, To: 2, Index: 0},
		Ballot: Ballot{N: 1, Node: 1}, Value: 77,
	})
	resp := out[0].(PrepareResponse)
	if !resp.AccBallot.Zero() || resp.Value != 77 {
		t.Fatalf("echo wrong: %+v", resp)
	}
}

// TestPrepareResponseReportsAccepted: an acceptor that accepted reports
// its accepted ballot and value, not the echo.
func TestPrepareResponseReportsAccepted(t *testing.T) {
	st := NewState()
	Step(params(), 2, st, Accept{
		header: header{From: 1, To: 2, Index: 0},
		Ballot: Ballot{N: 1, Node: 1}, Value: 5,
	})
	out, _ := Step(params(), 2, st, Prepare{
		header: header{From: 0, To: 2, Index: 0},
		Ballot: Ballot{N: 2, Node: 0}, Value: 99,
	})
	resp := out[0].(PrepareResponse)
	if resp.AccBallot.Zero() || resp.Value != 5 {
		t.Fatalf("accepted value not reported: %+v", resp)
	}
}

// TestValueSelectionCorrectVsBuggy reproduces the §5.5 difference at the
// unit level: majority completes with an echo response; the correct rule
// adopts the previously accepted value, the buggy rule adopts the echo.
func TestValueSelectionCorrectVsBuggy(t *testing.T) {
	run := func(bug BugKind) int {
		p := Params{N: 3, Bug: bug}
		st := NewState()
		st.setProposal(0, &proposal{
			Ballot: Ballot{N: 2, Node: 1},
			Value:  2,
		})
		// First response: self, carrying a previously accepted value 1.
		Step(p, 1, st, PrepareResponse{
			header: header{From: 1, To: 1, Index: 0},
			Ballot: Ballot{N: 2, Node: 1}, AccBallot: Ballot{N: 1, Node: 0}, Value: 1,
		})
		// Majority-completing response: an echo of the proposer's value 2.
		out, _ := Step(p, 1, st, PrepareResponse{
			header: header{From: 2, To: 1, Index: 0},
			Ballot: Ballot{N: 2, Node: 1}, Value: 2,
		})
		if len(out) != 3 {
			t.Fatalf("no Accept broadcast: %v", out)
		}
		return out[0].(Accept).Value
	}
	if v := run(NoBug); v != 1 {
		t.Fatalf("correct rule picked %d, want the accepted value 1", v)
	}
	if v := run(LastResponseBug); v != 2 {
		t.Fatalf("buggy rule picked %d, want the last response's value 2", v)
	}
}

// TestDuplicateResponseIgnored: the same responder cannot count twice
// toward the majority.
func TestDuplicateResponseIgnored(t *testing.T) {
	p := params()
	st := NewState()
	st.setProposal(0, &proposal{
		Ballot: Ballot{N: 1, Node: 0},
		Value:  7,
	})
	resp := PrepareResponse{
		header: header{From: 1, To: 0, Index: 0},
		Ballot: Ballot{N: 1, Node: 0}, Value: 7,
	}
	Step(p, 0, st, resp)
	out, _ := Step(p, 0, st, resp)
	if len(out) != 0 {
		t.Fatal("duplicate response triggered the majority")
	}
	if len(st.proposalFor(0).Promises) != 1 {
		t.Fatal("duplicate recorded")
	}
}

// TestLearnerMajority: a learner chooses only after a majority of distinct
// acceptors announce the same ballot.
func TestLearnerMajority(t *testing.T) {
	p := params()
	st := NewState()
	learn := func(from model.NodeID) {
		Step(p, 0, st, Learn{
			header: header{From: from, To: 0, Index: 0},
			Ballot: Ballot{N: 1, Node: 0}, Value: 9,
		})
	}
	learn(1)
	if _, ok := st.HasChosen(0); ok {
		t.Fatal("chose on a single learn")
	}
	learn(1) // duplicate acceptor
	if _, ok := st.HasChosen(0); ok {
		t.Fatal("chose on duplicate learns")
	}
	learn(2)
	if v, ok := st.HasChosen(0); !ok || v != 9 {
		t.Fatal("did not choose on a majority")
	}
}

// TestLearnerKeepsFirstChoice: the first decision sticks.
func TestLearnerKeepsFirstChoice(t *testing.T) {
	p := params()
	st := NewState()
	for _, from := range []model.NodeID{1, 2} {
		Step(p, 0, st, Learn{header: header{From: from, To: 0, Index: 0},
			Ballot: Ballot{N: 1, Node: 0}, Value: 9})
	}
	for _, from := range []model.NodeID{1, 2} {
		Step(p, 0, st, Learn{header: header{From: from, To: 0, Index: 0},
			Ballot: Ballot{N: 2, Node: 1}, Value: 4})
	}
	if v, _ := st.HasChosen(0); v != 9 {
		t.Fatalf("choice overwritten: %d", v)
	}
}

// TestCloneIndependence: mutating a clone never leaks into the original —
// property-based over random mutation sequences.
func TestCloneIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomState(rng)
		fpBefore := model.StateFingerprint(st)
		c := st.Clone().(*State)
		mutate(rng, c)
		return model.StateFingerprint(st) == fpBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDeterministic: repeated encodings of one state agree, and a
// clone encodes identically — property-based.
func TestEncodeDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomState(rng)
		var w1, w2, w3 codec.Writer
		st.Encode(&w1)
		st.Encode(&w2)
		st.Clone().Encode(&w3)
		return reflect.DeepEqual(w1.Bytes(), w2.Bytes()) &&
			reflect.DeepEqual(w1.Bytes(), w3.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// referenceEncode writes st the way the former map-backed State did:
// collect every collection into a map, sort the keys, write in key order.
// Encode's sorted-slice walk must stay byte-identical to this — the
// encoding is fingerprint-critical, and a silent divergence would split the
// visited-state space across binary versions.
func referenceEncode(st *State, w *codec.Writer) {
	w.Int(st.ProposalsMade)

	props := map[int]*proposal{}
	for _, e := range st.Proposals {
		props[e.Index] = e.P
	}
	idxs := make([]int, 0, len(props))
	for i := range props {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	w.Uint32(uint32(len(idxs)))
	for _, i := range idxs {
		p := props[i]
		w.Int(i)
		p.Ballot.Encode(w)
		w.Int(p.Value)
		w.Bool(p.Accepting)
		resps := map[int]promiseInfo{}
		for _, pe := range p.Promises {
			resps[int(pe.Node)] = pe.Info
		}
		ns := make([]int, 0, len(resps))
		for n := range resps {
			ns = append(ns, n)
		}
		sort.Ints(ns)
		w.Uint32(uint32(len(ns)))
		for _, n := range ns {
			pi := resps[n]
			w.Int(n)
			pi.AccBallot.Encode(w)
			w.Int(pi.Value)
		}
	}

	prom := map[int]Ballot{}
	for _, e := range st.Promised {
		prom[e.Index] = e.Ballot
	}
	pidxs := make([]int, 0, len(prom))
	for i := range prom {
		pidxs = append(pidxs, i)
	}
	sort.Ints(pidxs)
	w.Uint32(uint32(len(pidxs)))
	for _, i := range pidxs {
		w.Int(i)
		prom[i].Encode(w)
	}

	acc := map[int]accepted{}
	for _, e := range st.Accepted {
		acc[e.Index] = e.A
	}
	aidxs := make([]int, 0, len(acc))
	for i := range acc {
		aidxs = append(aidxs, i)
	}
	sort.Ints(aidxs)
	w.Uint32(uint32(len(aidxs)))
	for _, i := range aidxs {
		a := acc[i]
		w.Int(i)
		a.Ballot.Encode(w)
		w.Int(a.Value)
	}

	learns := map[int][]*learnRecord{}
	for _, e := range st.Learns {
		learns[e.Index] = e.Recs
	}
	lidxs := make([]int, 0, len(learns))
	for i := range learns {
		lidxs = append(lidxs, i)
	}
	sort.Ints(lidxs)
	w.Uint32(uint32(len(lidxs)))
	for _, i := range lidxs {
		lrs := learns[i]
		w.Int(i)
		w.Uint32(uint32(len(lrs)))
		for _, lr := range lrs {
			lr.Ballot.Encode(w)
			w.Int(lr.Value)
			accs := make([]int, 0, len(lr.Acceptors))
			for _, n := range lr.Acceptors {
				accs = append(accs, int(n))
			}
			sort.Ints(accs)
			w.Ints(accs)
		}
	}

	chosen := map[int]int{}
	for _, p := range st.Chosen {
		chosen[p.Index] = p.Value
	}
	w.IntMap(chosen)
}

// TestEncodeMatchesReference diffs Encode against the reference encoder
// over random handler-built states — property-based byte-identity.
func TestEncodeMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomState(rng)
		var got, want codec.Writer
		st.Encode(&got)
		referenceEncode(st, &want)
		return reflect.DeepEqual(got.Bytes(), want.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// randomState builds a random-but-valid-looking Paxos node state by
// executing random handler steps.
func randomState(rng *rand.Rand) *State {
	p := params()
	st := NewState()
	for i := 0; i < rng.Intn(30); i++ {
		idx := rng.Intn(3)
		b := Ballot{N: rng.Intn(3) + 1, Node: model.NodeID(rng.Intn(3))}
		switch rng.Intn(4) {
		case 0:
			Step(p, 0, st, Prepare{header: header{From: b.Node, To: 0, Index: idx}, Ballot: b, Value: rng.Intn(5)})
		case 1:
			Step(p, 0, st, Accept{header: header{From: b.Node, To: 0, Index: idx}, Ballot: b, Value: rng.Intn(5)})
		case 2:
			Step(p, 0, st, Learn{header: header{From: model.NodeID(rng.Intn(3)), To: 0, Index: idx}, Ballot: b, Value: rng.Intn(5)})
		case 3:
			DoPropose(p, 0, st, idx, rng.Intn(5))
		}
	}
	return st
}

// mutate applies one random mutation to a state.
func mutate(rng *rand.Rand, st *State) {
	switch rng.Intn(4) {
	case 0:
		st.SetChosen(rng.Intn(3), 99)
	case 1:
		st.setPromised(rng.Intn(3), Ballot{N: 99, Node: 0})
	case 2:
		st.setAccepted(rng.Intn(3), accepted{Ballot: Ballot{N: 99}, Value: 1})
	case 3:
		if p := st.proposalFor(0); p != nil {
			p.setPromise(2, promiseInfo{Value: 123})
		} else {
			st.ProposalsMade++
		}
	}
}

// TestMaxBallotSeen aggregates across all roles.
func TestMaxBallotSeen(t *testing.T) {
	p := params()
	st := NewState()
	if st.MaxBallotSeen(0) != 0 {
		t.Fatal("fresh state has seen a ballot")
	}
	Step(p, 0, st, Prepare{header: header{From: 1, To: 0, Index: 0},
		Ballot: Ballot{N: 4, Node: 1}, Value: 1})
	if st.MaxBallotSeen(0) != 4 {
		t.Fatalf("promised ballot not seen: %d", st.MaxBallotSeen(0))
	}
	if st.MaxBallotSeen(1) != 0 {
		t.Fatal("ballot leaked across indexes")
	}
}

// TestDoProposeUsesFreshBallot: a proposal must outbid everything the node
// has seen for the index.
func TestDoProposeUsesFreshBallot(t *testing.T) {
	p := params()
	st := NewState()
	Step(p, 1, st, Prepare{header: header{From: 0, To: 1, Index: 0},
		Ballot: Ballot{N: 3, Node: 0}, Value: 1})
	out := DoPropose(p, 1, st, 0, 2)
	if len(out) != 3 {
		t.Fatalf("prepare broadcast size %d", len(out))
	}
	b := out[0].(Prepare).Ballot
	if b.N != 4 || b.Node != 1 {
		t.Fatalf("ballot %v, want b4.N2", b)
	}
}

// TestStepRejectsForeignLayer: a layered instance must not consume another
// instance's messages.
func TestStepRejectsForeignLayer(t *testing.T) {
	st := NewState()
	_, ok := Step(Params{N: 3, Layer: "util."}, 0, st, Prepare{
		header: header{Layer: "", From: 1, To: 0, Index: 0},
		Ballot: Ballot{N: 1, Node: 1}, Value: 1,
	})
	if ok {
		t.Fatal("foreign-layer message consumed")
	}
}

// TestPristine distinguishes fresh states from touched ones.
func TestPristine(t *testing.T) {
	st := NewState()
	if !st.Pristine() {
		t.Fatal("fresh state not pristine")
	}
	Step(params(), 0, st, Prepare{header: header{From: 1, To: 0, Index: 0},
		Ballot: Ballot{N: 1, Node: 1}, Value: 1})
	if st.Pristine() {
		t.Fatal("promised state still pristine")
	}
}

// TestAgreementInvariant checks the invariant on hand-built system states.
func TestAgreementInvariant(t *testing.T) {
	inv := Agreement()
	a, b, c := NewState(), NewState(), NewState()
	sys := model.SystemState{a, b, c}
	if inv.Check(sys) != nil {
		t.Fatal("empty system violates agreement")
	}
	a.SetChosen(0, 1)
	b.SetChosen(0, 1)
	if inv.Check(sys) != nil {
		t.Fatal("agreeing choices flagged")
	}
	c.SetChosen(0, 2)
	if inv.Check(sys) == nil {
		t.Fatal("conflicting choices not flagged")
	}
}

// TestReductionConflict checks the LMC-OPT projection semantics.
func TestReductionConflict(t *testing.T) {
	var r Reduction
	mk := func(idx, v int) *State {
		s := NewState()
		s.SetChosen(idx, v)
		return s
	}
	if _, ok := r.Interest(0, NewState()); ok {
		t.Fatal("choiceless state is interesting")
	}
	ia, _ := r.Interest(0, mk(0, 1))
	ib, _ := r.Interest(1, mk(0, 2))
	ic, _ := r.Interest(2, mk(1, 9))
	if !r.Conflict(ia, ib) {
		t.Fatal("conflicting choices not detected")
	}
	if r.Conflict(ia, ic) {
		t.Fatal("disjoint indexes conflict")
	}
	if r.InterestKey(ia) == r.InterestKey(ib) {
		t.Fatal("distinct interests share a key")
	}
	if r.InterestKey(ia) != r.InterestKey(mustInterest(t, r, mk(0, 1))) {
		t.Fatal("equal interests key differently")
	}
}

func mustInterest(t *testing.T, r Reduction, s *State) any {
	t.Helper()
	i, ok := r.Interest(0, s)
	if !ok {
		t.Fatal("expected interesting state")
	}
	return i
}

// TestActiveIndexDriver checks the §4.2 driver's index selection.
func TestActiveIndexDriver(t *testing.T) {
	p := params()
	d := ActiveIndex{}
	st := NewState()
	if props := d.Proposals(p, 0, st); len(props) != 0 {
		t.Fatalf("pristine node proposed without FreshIndexes: %v", props)
	}
	// Activity on index 2 that is not settled: propose there.
	Step(p, 0, st, Prepare{header: header{From: 1, To: 0, Index: 2},
		Ballot: Ballot{N: 1, Node: 1}, Value: 1})
	props := d.Proposals(p, 0, st)
	if len(props) != 1 || props[0].Index != 2 {
		t.Fatalf("driver did not target the unsettled index: %v", props)
	}
	// Fully settle index 2: chosen plus all three acceptors announced.
	for _, from := range []model.NodeID{0, 1, 2} {
		Step(p, 0, st, Learn{header: header{From: from, To: 0, Index: 2},
			Ballot: Ballot{N: 1, Node: 1}, Value: 1})
	}
	if props := d.Proposals(p, 0, st); len(props) != 0 {
		t.Fatalf("driver proposed at a settled index: %v", props)
	}
	fresh := ActiveIndex{FreshIndexes: true}
	props = fresh.Proposals(p, 0, st)
	if len(props) != 1 || props[0].Index != 3 {
		t.Fatalf("fresh-index proposal wrong: %v", props)
	}
}
