// Package chain implements the token-forwarding chain the paper names as
// the worst case for local model checking: "we could not expect much from
// LMC in a chain system in which each node simply forwards the input
// message to the next" (§4.3). With no parallel network activity, every
// global state has at most one in-flight message and the global and local
// approaches explore essentially the same space — the ablation experiment
// A1 quantifies exactly that.
package chain

import (
	"fmt"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/spec"
)

// State is one node's progress marker.
type State struct {
	// Seen is true once the token passed through this node.
	Seen bool
	// Started is true on node 0 after it injected the token.
	Started bool
}

// Encode implements codec.Encoder.
func (s *State) Encode(w *codec.Writer) {
	w.Bool(s.Seen)
	w.Bool(s.Started)
}

// Clone implements model.State.
func (s *State) Clone() model.State { c := *s; return &c }

// String implements model.State.
func (s *State) String() string {
	switch {
	case s.Started:
		return "S"
	case s.Seen:
		return "x"
	default:
		return "-"
	}
}

// Token is the single message, forwarded down the chain.
type Token struct {
	From, To model.NodeID
}

// Src implements model.Message.
func (m Token) Src() model.NodeID { return m.From }

// Dst implements model.Message.
func (m Token) Dst() model.NodeID { return m.To }

// Encode implements codec.Encoder.
func (m Token) Encode(w *codec.Writer) {
	w.String("chain.token")
	w.Int(int(m.From))
	w.Int(int(m.To))
}

// String implements model.Message.
func (m Token) String() string { return fmt.Sprintf("Token{%v->%v}", m.From, m.To) }

// Start is node 0's application call.
type Start struct{}

// Node implements model.Action.
func (Start) Node() model.NodeID { return 0 }

// Encode implements codec.Encoder.
func (Start) Encode(w *codec.Writer) { w.String("chain.start") }

// String implements model.Action.
func (Start) String() string { return "Start{}" }

// Machine is the chain protocol over n nodes in a line.
type Machine struct {
	N int
}

// New builds an n-node chain.
func New(n int) *Machine { return &Machine{N: n} }

// Name implements model.Machine.
func (mc *Machine) Name() string { return "chain" }

// NumNodes implements model.Machine.
func (mc *Machine) NumNodes() int { return mc.N }

// Init implements model.Machine.
func (mc *Machine) Init(model.NodeID) model.State { return &State{} }

// Actions implements model.Machine.
func (mc *Machine) Actions(n model.NodeID, s model.State) []model.Action {
	st := s.(*State)
	if n == 0 && !st.Started {
		return []model.Action{Start{}}
	}
	return nil
}

// HandleAction implements model.Machine.
func (mc *Machine) HandleAction(n model.NodeID, s model.State, a model.Action) (model.State, []model.Message) {
	st := s.(*State)
	if _, ok := a.(Start); !ok || n != 0 || st.Started {
		return nil, nil
	}
	st.Started = true
	st.Seen = true
	if mc.N == 1 {
		return st, nil
	}
	return st, []model.Message{Token{From: 0, To: 1}}
}

// HandleMessage implements model.Machine.
func (mc *Machine) HandleMessage(n model.NodeID, s model.State, m model.Message) (model.State, []model.Message) {
	st := s.(*State)
	if _, ok := m.(Token); !ok {
		return nil, nil
	}
	if st.Seen {
		return st, nil // duplicate token: ignore
	}
	st.Seen = true
	if int(n) == mc.N-1 {
		return st, nil
	}
	return st, []model.Message{Token{From: n, To: n + 1}}
}

// CausalityName names the chain invariant.
const CausalityName = "chain-causality"

// Causality is the system invariant "if the tail saw the token, the head
// started" — trivially true, but its preliminary violations exercise the
// local checker's soundness rejection on a serial protocol.
func (mc *Machine) Causality() spec.Invariant {
	return spec.InvariantFunc{
		InvName: CausalityName,
		Fn: func(ss model.SystemState) *spec.Violation {
			head := ss[0].(*State)
			tail := ss[mc.N-1].(*State)
			if tail.Seen && !head.Started {
				return spec.Violate(CausalityName, ss, "tail saw the token but the head never started")
			}
			return nil
		},
	}
}

// SymmetryClasses implements model.Symmetric with no classes: every chain
// position is a distinct topology-pinned role (node i forwards to node
// i+1), so no two nodes are interchangeable. The explicit declaration
// documents the decision; checkers treat an empty declaration as "no
// symmetry reduction".
func (mc *Machine) SymmetryClasses() [][]model.NodeID { return nil }
