package chain_test

import (
	"testing"

	"lmc/internal/core"
	"lmc/internal/mc/global"
	"lmc/internal/model"
	"lmc/internal/protocols/chain"
	"lmc/internal/testkit"
)

// TestTokenReachesTail drives the chain end to end.
func TestTokenReachesTail(t *testing.T) {
	m := chain.New(5)
	h := testkit.New(m)
	if err := h.Act(chain.Start{}); err != nil {
		t.Fatal(err)
	}
	if err := h.Settle(100); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 5; n++ {
		if !h.State(model.NodeID(n)).(*chain.State).Seen {
			t.Fatalf("node %d never saw the token", n)
		}
	}
}

// TestSingleNodeChain degenerates gracefully.
func TestSingleNodeChain(t *testing.T) {
	m := chain.New(1)
	s, out := m.HandleAction(0, m.Init(0), chain.Start{})
	if s == nil || len(out) != 0 {
		t.Fatalf("single-node start wrong: %v %v", s, out)
	}
}

// TestDuplicateTokenIgnored: a second token is a no-op, not a re-forward.
func TestDuplicateTokenIgnored(t *testing.T) {
	m := chain.New(3)
	s := m.Init(1)
	next, out := m.HandleMessage(1, s.Clone(), chain.Token{From: 0, To: 1})
	if len(out) != 1 {
		t.Fatalf("first token forwarded %d messages", len(out))
	}
	_, out = m.HandleMessage(1, next.Clone(), chain.Token{From: 0, To: 1})
	if len(out) != 0 {
		t.Fatal("duplicate token re-forwarded")
	}
}

// TestSerialAblation quantifies §4.3: on a chain, LMC's transition count is
// essentially the global one — there is no parallel network activity to
// collapse.
func TestSerialAblation(t *testing.T) {
	m := chain.New(5)
	start := model.InitialSystem(m)
	g := global.Check(m, start, global.Options{Invariant: m.Causality()})
	l := core.Check(m, start, core.Options{Invariant: m.Causality()})
	if !g.Complete || !l.Complete {
		t.Fatalf("incomplete: global=%v local=%v", g.Complete, l.Complete)
	}
	if len(g.Bugs)+len(l.Bugs) != 0 {
		t.Fatal("phantom bugs on the chain")
	}
	// The chain's global space is linear (one in-flight message at a time),
	// so the local approach cannot save transitions the way it does on
	// broadcast protocols: both counts stay within a small constant factor.
	if g.Stats.Transitions > 3*l.Stats.Transitions {
		t.Errorf("chain should not benefit much from LMC: global=%d local=%d",
			g.Stats.Transitions, l.Stats.Transitions)
	}
	t.Logf("global=%d local=%d transitions", g.Stats.Transitions, l.Stats.Transitions)
}
