package tree_test

import (
	"lmc/internal/codec"
	"testing"

	"lmc/internal/model"
	"lmc/internal/protocols/tree"
	"lmc/internal/testkit"
)

// TestForwardingReachesTarget runs the full forwarding pass.
func TestForwardingReachesTarget(t *testing.T) {
	m := tree.NewPaperTree()
	h := testkit.New(m)
	acts := m.Actions(0, h.State(0))
	if len(acts) != 1 {
		t.Fatalf("root actions: %d", len(acts))
	}
	if err := h.Act(acts[0]); err != nil {
		t.Fatal(err)
	}
	if err := h.Settle(100); err != nil {
		t.Fatal(err)
	}
	if h.State(4).(*tree.State).St != tree.Received {
		t.Fatal("target never received")
	}
	if h.State(0).(*tree.State).St != tree.Sent {
		t.Fatal("root not marked sent")
	}
}

// TestInitiateOnlyOnce: the initiate action is disabled after sending.
func TestInitiateOnlyOnce(t *testing.T) {
	m := tree.NewPaperTree()
	s := m.Init(0)
	next, _ := m.HandleAction(0, s.Clone(), tree.Initiate{Root: 0})
	if next == nil {
		t.Fatal("initiate rejected")
	}
	if len(m.Actions(0, next)) != 0 {
		t.Fatal("initiate still enabled after sending")
	}
	if got, _ := m.HandleAction(0, next.Clone(), tree.Initiate{Root: 0}); got != nil {
		t.Fatal("second initiate accepted")
	}
}

// TestForwardOnlyOnce: the Forwarded flag suppresses duplicate fan-out.
func TestForwardOnlyOnce(t *testing.T) {
	m := tree.NewPaperTree()
	s := m.Init(1)
	next, out := m.HandleMessage(1, s.Clone(), tree.Forward{From: 0, To: 1})
	if len(out) != 2 {
		t.Fatalf("first forward emitted %d", len(out))
	}
	_, out = m.HandleMessage(1, next.Clone(), tree.Forward{From: 0, To: 1})
	if len(out) != 0 {
		t.Fatal("second forward re-emitted")
	}
}

// TestUnknownMessageAsserted: unknown messages are local assertions.
func TestUnknownMessageAsserted(t *testing.T) {
	m := tree.NewPaperTree()
	if next, _ := m.HandleMessage(1, m.Init(1), fakeMsg{}); next != nil {
		t.Fatal("unknown message accepted")
	}
}

type fakeMsg struct{}

func (fakeMsg) Src() model.NodeID      { return 0 }
func (fakeMsg) Dst() model.NodeID      { return 1 }
func (fakeMsg) Encode(w *codec.Writer) { w.String("fake") }
func (fakeMsg) String() string         { return "fake" }

// TestCausalityInvariant flags only the impossible combination.
func TestCausalityInvariant(t *testing.T) {
	m := tree.NewPaperTree()
	inv := m.CausalityInvariant()
	sys := model.InitialSystem(m)
	if inv.Check(sys) != nil {
		t.Fatal("initial state flagged")
	}
	sys[4].(*tree.State).St = tree.Received
	if inv.Check(sys) == nil {
		t.Fatal("received-without-sent not flagged")
	}
	sys[0].(*tree.State).St = tree.Sent
	if inv.Check(sys) != nil {
		t.Fatal("valid received state flagged")
	}
}

// TestReduction checks the OPT projection on the causality invariant.
func TestReduction(t *testing.T) {
	m := tree.NewPaperTree()
	r := tree.Reduction{Root: m.Root(), Target: m.Target()}
	idleRoot, _ := r.Interest(0, m.Init(0))
	received := &tree.State{St: tree.Received}
	rcvd, ok := r.Interest(4, received)
	if !ok {
		t.Fatal("received target not interesting")
	}
	if !r.Conflict(idleRoot, rcvd) || !r.Conflict(rcvd, idleRoot) {
		t.Fatal("root-unsent vs target-received must conflict")
	}
	sent := &tree.State{St: tree.Sent}
	if _, ok := r.Interest(0, sent); ok {
		t.Fatal("sent root should not be interesting")
	}
}
