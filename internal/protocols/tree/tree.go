// Package tree implements the simple distributed tree algorithm of the
// paper's §2 primer (Figures 2–4): a root node initiates a message destined
// for a target node and flips its state to "sent"; every node receiving the
// message forwards it to its children; the target flips to "received".
//
// The protocol exists to contrast the two approaches on a toy: the global
// checker materializes a dozen global states, the local checker only a
// handful of system states — one of which ("----r": target received before
// the root sent) is invalid and must be rejected a posteriori by soundness
// verification.
package tree

import (
	"fmt"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/spec"
)

// Status is a node's phase in the run.
type Status uint8

const (
	// Idle is the initial "-" state of Figures 3 and 4.
	Idle Status = iota
	// Sent marks the root after initiating ("s").
	Sent
	// Received marks the target after delivery ("r").
	Received
)

func (s Status) String() string {
	switch s {
	case Sent:
		return "s"
	case Received:
		return "r"
	default:
		return "-"
	}
}

// State is one node's local state: its status plus whether it has already
// forwarded the message. The Forwarded flag matters beyond bookkeeping:
// because the checker's soundness verification ignores self-referencing
// predecessor edges (the paper's §4.2 simplification), an event that emits
// messages without changing the emitter's state would be invisible to it —
// recording the forward makes the event state-changing, the way Mace
// services record what they have relayed.
type State struct {
	St        Status
	Forwarded bool
}

// Encode implements codec.Encoder.
func (s *State) Encode(w *codec.Writer) {
	w.Byte(byte(s.St))
	w.Bool(s.Forwarded)
}

// Clone implements model.State.
func (s *State) Clone() model.State { c := *s; return &c }

// String implements model.State.
func (s *State) String() string {
	if s.Forwarded && s.St == Idle {
		return "f"
	}
	return s.St.String()
}

// Forward is the single protocol message, forwarded down the tree.
type Forward struct {
	From, To model.NodeID
}

// Src implements model.Message.
func (m Forward) Src() model.NodeID { return m.From }

// Dst implements model.Message.
func (m Forward) Dst() model.NodeID { return m.To }

// Encode implements codec.Encoder.
func (m Forward) Encode(w *codec.Writer) {
	w.String("tree.Forward")
	w.Int(int(m.From))
	w.Int(int(m.To))
}

// String implements model.Message.
func (m Forward) String() string { return fmt.Sprintf("Forward{%v->%v}", m.From, m.To) }

// Initiate is the root's application call that starts the run.
type Initiate struct {
	Root model.NodeID
}

// Node implements model.Action.
func (a Initiate) Node() model.NodeID { return a.Root }

// Encode implements codec.Encoder.
func (a Initiate) Encode(w *codec.Writer) {
	w.String("tree.Initiate")
	w.Int(int(a.Root))
}

// String implements model.Action.
func (a Initiate) String() string { return "Initiate{}" }

// Machine is the tree protocol over a fixed topology.
type Machine struct {
	children [][]model.NodeID
	root     model.NodeID
	target   model.NodeID
}

// New builds a tree machine. children[i] lists node i's children; the root
// initiates, the target flips to Received. The default paper-style tree is
// available via NewPaperTree.
func New(children [][]model.NodeID, root, target model.NodeID) *Machine {
	return &Machine{children: children, root: root, target: target}
}

// NewPaperTree builds the 5-node tree used throughout §2: node 0 is the
// root with children 1 and 2; node 1 has children 3 and 4; node 4 is the
// target.
func NewPaperTree() *Machine {
	return New([][]model.NodeID{
		{1, 2}, // node 0
		{3, 4}, // node 1
		{},     // node 2
		{},     // node 3
		{},     // node 4
	}, 0, 4)
}

// Name implements model.Machine.
func (t *Machine) Name() string { return "tree" }

// NumNodes implements model.Machine.
func (t *Machine) NumNodes() int { return len(t.children) }

// Root returns the initiating node.
func (t *Machine) Root() model.NodeID { return t.root }

// Target returns the receiving node.
func (t *Machine) Target() model.NodeID { return t.target }

// Init implements model.Machine.
func (t *Machine) Init(model.NodeID) model.State { return &State{St: Idle} }

// HandleMessage implements model.Machine: forward to children; the target
// additionally flips to Received.
func (t *Machine) HandleMessage(n model.NodeID, s model.State, m model.Message) (model.State, []model.Message) {
	st := s.(*State)
	if _, ok := m.(Forward); !ok {
		return nil, nil // unknown message: local assertion
	}
	var out []model.Message
	if !st.Forwarded {
		for _, c := range t.children[n] {
			out = append(out, Forward{From: n, To: c})
		}
		st.Forwarded = true
	}
	if n == t.target {
		st.St = Received
	}
	return st, out
}

// Actions implements model.Machine: the root may initiate exactly once.
func (t *Machine) Actions(n model.NodeID, s model.State) []model.Action {
	st := s.(*State)
	if n == t.root && st.St == Idle {
		return []model.Action{Initiate{Root: t.root}}
	}
	return nil
}

// HandleAction implements model.Machine.
func (t *Machine) HandleAction(n model.NodeID, s model.State, a model.Action) (model.State, []model.Message) {
	st := s.(*State)
	if _, ok := a.(Initiate); !ok || n != t.root || st.St != Idle {
		return nil, nil
	}
	st.St = Sent
	var out []model.Message
	for _, c := range t.children[t.root] {
		out = append(out, Forward{From: t.root, To: c})
	}
	return st, out
}

// CausalityInvariant is the system property "if the target has received,
// the root must have sent". It holds in every real run; the local checker
// nevertheless materializes the combination (Idle root, Received target) —
// the "----r" state of Figure 4 — as a preliminary violation that soundness
// verification must reject.
func (t *Machine) CausalityInvariant() spec.Invariant {
	return spec.InvariantFunc{
		InvName: "tree-causality",
		Fn: func(ss model.SystemState) *spec.Violation {
			rootSt := ss[t.root].(*State)
			targetSt := ss[t.target].(*State)
			if targetSt.St == Received && rootSt.St != Sent {
				return spec.Violate("tree-causality", ss,
					"target %v received but root %v never sent", t.target, t.root)
			}
			return nil
		},
	}
}

// Reduction is the LMC-OPT projection for CausalityInvariant: only the root
// and target states matter, and only the (not-sent, received) pattern can
// violate.
type Reduction struct {
	Root, Target model.NodeID
}

// Interest implements spec.Reduction.
func (r Reduction) Interest(n model.NodeID, s model.State) (spec.Interest, bool) {
	st := s.(*State)
	switch n {
	case r.Root:
		if st.St != Sent {
			return "root-unsent", true
		}
	case r.Target:
		if st.St == Received {
			return "target-received", true
		}
	}
	return nil, false
}

// Conflict implements spec.Reduction.
func (r Reduction) Conflict(a, b spec.Interest) bool {
	return (a == "root-unsent" && b == "target-received") ||
		(b == "root-unsent" && a == "target-received")
}

// SymmetryClasses implements model.Symmetric with no classes: the tree
// topology pins every node to a position (parent/child edges, the root and
// the distinguished target), so no two nodes are interchangeable. The
// explicit declaration documents the decision.
func (t *Machine) SymmetryClasses() [][]model.NodeID { return nil }
