package randtree_test

import (
	"testing"
	"time"

	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/protocols/randtree"
	"lmc/internal/spec"
	"lmc/internal/testkit"
)

// joinAll drives every node's join to completion, FIFO.
func joinAll(t *testing.T, m *randtree.Machine) *testkit.Harness {
	t.Helper()
	h := testkit.New(m)
	for n := 1; n < m.NumNodes(); n++ {
		if err := h.Act(randtree.JoinRequest{On: model.NodeID(n)}); err != nil {
			t.Fatal(err)
		}
		if err := h.Settle(1000); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// TestEveryoneJoins: after all joins settle, every node is in the tree and
// the structure invariant holds at every node.
func TestEveryoneJoins(t *testing.T) {
	m := randtree.New(6, 2, randtree.NoBug)
	h := joinAll(t, m)
	inv := randtree.Structure()
	for n := 0; n < 6; n++ {
		st := h.State(model.NodeID(n)).(*randtree.State)
		if !st.InTree {
			t.Fatalf("node %d not in tree: %s", n, st.String())
		}
		if msg := inv.CheckNode(model.NodeID(n), st); msg != "" {
			t.Fatalf("node %d violates structure: %s", n, msg)
		}
	}
}

// TestFanoutRespected: no node holds more children than the fanout.
func TestFanoutRespected(t *testing.T) {
	m := randtree.New(6, 2, randtree.NoBug)
	h := joinAll(t, m)
	for n := 0; n < 6; n++ {
		st := h.State(model.NodeID(n)).(*randtree.State)
		if len(st.Children) > 2 {
			t.Fatalf("node %d has %d children", n, len(st.Children))
		}
	}
}

// TestBuggyWelcomeListsSelf: the off-by-one puts the joiner in its own
// sibling list (unit level).
func TestBuggyWelcomeListsSelf(t *testing.T) {
	m := randtree.New(3, 2, randtree.SelfSiblingBug)
	root := m.Init(0)
	_, out := m.HandleMessage(0, root.Clone(), randtree.Join{From: 1, To: 0, Joiner: 1})
	if len(out) != 1 {
		t.Fatalf("welcome missing: %v", out)
	}
	w := out[0].(randtree.Welcome)
	found := false
	for _, s := range w.Siblings {
		if s == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("bug not triggered: %v", w.Siblings)
	}
}

// TestCheckerFindsSelfSiblingBug: the local checker confirms the violation
// with a replayable witness; the correct variant stays clean and the
// exploration completes.
func TestCheckerFindsSelfSiblingBug(t *testing.T) {
	buggy := randtree.New(5, 2, randtree.SelfSiblingBug)
	res := core.Check(buggy, model.InitialSystem(buggy), core.Options{
		LocalInvariants: []spec.LocalInvariant{randtree.Structure()},
		StopAtFirstBug:  true,
		Budget:          30 * time.Second,
	})
	if len(res.Bugs) == 0 {
		t.Fatalf("bug not found: %s", res.Stats.String())
	}
	if len(res.Bugs[0].Schedule) == 0 {
		t.Fatal("witness schedule empty")
	}

	clean := randtree.New(5, 2, randtree.NoBug)
	resClean := core.Check(clean, model.InitialSystem(clean), core.Options{
		LocalInvariants: []spec.LocalInvariant{randtree.Structure()},
		Budget:          30 * time.Second,
	})
	if len(resClean.Bugs) != 0 {
		t.Fatalf("clean overlay flagged: %v", resClean.Bugs[0].Violation)
	}
	if !resClean.Complete {
		t.Fatalf("clean exploration did not complete: %s", resClean.Stats.String())
	}
}

// TestJoinAssertions: the conservative-delivery assertions of §4.2.
func TestJoinAssertions(t *testing.T) {
	m := randtree.New(4, 2, randtree.NoBug)
	// Join at a node outside the tree.
	if next, _ := m.HandleMessage(1, m.Init(1), randtree.Join{From: 2, To: 1, Joiner: 2}); next != nil {
		t.Fatal("join at out-of-tree node accepted")
	}
	// Join from one's own sibling.
	st := m.Init(1).(*randtree.State)
	st.InTree = true
	st.Parent = 0
	st.Siblings[2] = true
	if next, _ := m.HandleMessage(1, st.Clone(), randtree.Join{From: 0, To: 1, Joiner: 2}); next != nil {
		t.Fatal("join from a sibling accepted")
	}
	// Duplicate welcome.
	if next, _ := m.HandleMessage(1, st.Clone(), randtree.Welcome{From: 0, To: 1}); next != nil {
		t.Fatal("duplicate welcome accepted")
	}
	// Sibling announcement from a non-parent.
	if next, _ := m.HandleMessage(1, st.Clone(), randtree.NewSibling{From: 3, To: 1, Sibling: 2}); next != nil {
		t.Fatal("sibling announcement from non-parent accepted")
	}
}

// TestStructureInvariantCases covers each clause.
func TestStructureInvariantCases(t *testing.T) {
	inv := randtree.Structure()
	mk := func(mut func(*randtree.State)) *randtree.State {
		s := randtree.NewState()
		s.InTree = true
		s.Parent = 0
		mut(s)
		return s
	}
	cases := []struct {
		name string
		s    *randtree.State
		bad  bool
	}{
		{"clean", mk(func(s *randtree.State) { s.Children[2] = true; s.Siblings[3] = true }), false},
		{"child-and-sibling", mk(func(s *randtree.State) { s.Children[2] = true; s.Siblings[2] = true }), true},
		{"own-child", mk(func(s *randtree.State) { s.Children[1] = true }), true},
		{"own-sibling", mk(func(s *randtree.State) { s.Siblings[1] = true }), true},
		{"parent-as-child", mk(func(s *randtree.State) { s.Children[0] = true }), true},
	}
	for _, tc := range cases {
		msg := inv.CheckNode(1, tc.s)
		if (msg != "") != tc.bad {
			t.Errorf("%s: got %q, want violation=%v", tc.name, msg, tc.bad)
		}
	}
}
