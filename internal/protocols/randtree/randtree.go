// Package randtree implements a RandTree-style tree-membership overlay,
// the protocol the paper uses to illustrate node-local invariants: "in
// RandTree distributed tree structure, one invariant specifies that in all
// node states the children and siblings must be disjoint sets" (§4). Nodes
// join through the root; a full node deterministically forwards the join
// request to its lowest-numbered child; an accepting parent welcomes the
// new child with its sibling list and notifies the existing children.
//
// The buggy variant reproduces a classic off-by-one: the parent snapshots
// its children list after inserting the new child, so the welcome's
// sibling list includes the joiner itself.
package randtree

import (
	"fmt"
	"sort"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/spec"
)

// BugKind selects a protocol variant.
type BugKind int

const (
	// NoBug is the correct protocol.
	NoBug BugKind = iota
	// SelfSiblingBug makes the parent include the new child in the sibling
	// list it sends to that same child.
	SelfSiblingBug
)

// String names the variant.
func (b BugKind) String() string {
	if b == SelfSiblingBug {
		return "self-sibling-bug"
	}
	return "correct"
}

// State is one node's membership view.
type State struct {
	// InTree is true once the node has a parent (the root always).
	InTree bool
	// Parent is the parent's id; -1 for the root or nodes outside.
	Parent int
	// Children and Siblings are id sets.
	Children map[int]bool
	Siblings map[int]bool
	// Requested is set after the node sent its join request.
	Requested bool
}

// NewState returns an empty, out-of-tree state.
func NewState() *State {
	return &State{Parent: -1, Children: map[int]bool{}, Siblings: map[int]bool{}}
}

// Clone implements model.State.
func (s *State) Clone() model.State {
	c := &State{
		InTree:    s.InTree,
		Parent:    s.Parent,
		Requested: s.Requested,
		Children:  make(map[int]bool, len(s.Children)),
		Siblings:  make(map[int]bool, len(s.Siblings)),
	}
	for k := range s.Children {
		c.Children[k] = true
	}
	for k := range s.Siblings {
		c.Siblings[k] = true
	}
	return c
}

// Encode implements codec.Encoder.
func (s *State) Encode(w *codec.Writer) {
	w.Bool(s.InTree)
	w.Int(s.Parent)
	w.Bool(s.Requested)
	w.IntSet(s.Children)
	w.IntSet(s.Siblings)
}

// String implements model.State.
func (s *State) String() string {
	if !s.InTree {
		if s.Requested {
			return "{joining}"
		}
		return "{out}"
	}
	return fmt.Sprintf("{p=%d c=%v s=%v}", s.Parent, sortedSet(s.Children), sortedSet(s.Siblings))
}

func sortedSet(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Join asks To to adopt Joiner (possibly forwarded down the tree).
type Join struct {
	From, To model.NodeID
	Joiner   model.NodeID
}

// Src implements model.Message.
func (m Join) Src() model.NodeID { return m.From }

// Dst implements model.Message.
func (m Join) Dst() model.NodeID { return m.To }

// Encode implements codec.Encoder.
func (m Join) Encode(w *codec.Writer) {
	w.String("rt.join")
	w.Int(int(m.From))
	w.Int(int(m.To))
	w.Int(int(m.Joiner))
}

// String implements model.Message.
func (m Join) String() string {
	return fmt.Sprintf("Join{%v->%v j=%v}", m.From, m.To, m.Joiner)
}

// Welcome tells the joiner its parent and siblings.
type Welcome struct {
	From, To model.NodeID
	Siblings []int // sorted
}

// Src implements model.Message.
func (m Welcome) Src() model.NodeID { return m.From }

// Dst implements model.Message.
func (m Welcome) Dst() model.NodeID { return m.To }

// Encode implements codec.Encoder.
func (m Welcome) Encode(w *codec.Writer) {
	w.String("rt.welcome")
	w.Int(int(m.From))
	w.Int(int(m.To))
	w.Ints(m.Siblings)
}

// String implements model.Message.
func (m Welcome) String() string {
	return fmt.Sprintf("Welcome{%v->%v sib=%v}", m.From, m.To, m.Siblings)
}

// NewSibling tells an existing child about a newly adopted sibling.
type NewSibling struct {
	From, To model.NodeID
	Sibling  model.NodeID
}

// Src implements model.Message.
func (m NewSibling) Src() model.NodeID { return m.From }

// Dst implements model.Message.
func (m NewSibling) Dst() model.NodeID { return m.To }

// Encode implements codec.Encoder.
func (m NewSibling) Encode(w *codec.Writer) {
	w.String("rt.new-sibling")
	w.Int(int(m.From))
	w.Int(int(m.To))
	w.Int(int(m.Sibling))
}

// String implements model.Message.
func (m NewSibling) String() string {
	return fmt.Sprintf("NewSibling{%v->%v s=%v}", m.From, m.To, m.Sibling)
}

// JoinRequest is the application call that starts a node's join.
type JoinRequest struct {
	On model.NodeID
}

// Node implements model.Action.
func (a JoinRequest) Node() model.NodeID { return a.On }

// Encode implements codec.Encoder.
func (a JoinRequest) Encode(w *codec.Writer) {
	w.String("rt.join-request")
	w.Int(int(a.On))
}

// String implements model.Action.
func (a JoinRequest) String() string { return fmt.Sprintf("JoinRequest{%v}", a.On) }

// Machine is the overlay protocol.
type Machine struct {
	N           int
	MaxChildren int
	Bug         BugKind
}

// New builds a randtree machine: node 0 is the root; the others join.
func New(n, maxChildren int, bug BugKind) *Machine {
	if maxChildren <= 0 {
		maxChildren = 2
	}
	return &Machine{N: n, MaxChildren: maxChildren, Bug: bug}
}

// Name implements model.Machine.
func (mc *Machine) Name() string {
	if mc.Bug == NoBug {
		return "randtree"
	}
	return "randtree-" + mc.Bug.String()
}

// NumNodes implements model.Machine.
func (mc *Machine) NumNodes() int { return mc.N }

// Init implements model.Machine.
func (mc *Machine) Init(n model.NodeID) model.State {
	s := NewState()
	if n == 0 {
		s.InTree = true // the root
	}
	return s
}

// Actions implements model.Machine: non-root nodes outside the tree may
// request to join, once.
func (mc *Machine) Actions(n model.NodeID, s model.State) []model.Action {
	st := s.(*State)
	if n != 0 && !st.InTree && !st.Requested {
		return []model.Action{JoinRequest{On: n}}
	}
	return nil
}

// HandleAction implements model.Machine.
func (mc *Machine) HandleAction(n model.NodeID, s model.State, a model.Action) (model.State, []model.Message) {
	st := s.(*State)
	if _, ok := a.(JoinRequest); !ok || st.Requested || st.InTree {
		return nil, nil
	}
	st.Requested = true
	return st, []model.Message{Join{From: n, To: 0, Joiner: n}}
}

// HandleMessage implements model.Machine.
func (mc *Machine) HandleMessage(n model.NodeID, s model.State, m model.Message) (model.State, []model.Message) {
	st := s.(*State)
	switch msg := m.(type) {
	case Join:
		if !st.InTree {
			// A join reached a node outside the tree: impossible in a real
			// run (local assertion).
			return nil, nil
		}
		if st.Siblings[int(msg.Joiner)] || msg.Joiner == n || st.Children[int(msg.Joiner)] ||
			(st.Parent >= 0 && st.Parent == int(msg.Joiner)) {
			// A node already placed in the tree (my sibling, my child, or
			// myself) cannot be joining: nodes join exactly once. Another
			// conservative-delivery artifact, discarded by assertion.
			return nil, nil
		}
		if len(st.Children) < mc.MaxChildren {
			// Accept the joiner.
			siblings := sortedSet(st.Children)
			st.Children[int(msg.Joiner)] = true
			if mc.Bug == SelfSiblingBug {
				// Off-by-one: snapshot taken after the insert, so the
				// welcome lists the joiner among its own siblings.
				siblings = sortedSet(st.Children)
			}
			out := []model.Message{Welcome{From: n, To: msg.Joiner, Siblings: siblings}}
			for c := range st.Children {
				if model.NodeID(c) != msg.Joiner {
					out = append(out, NewSibling{From: n, To: model.NodeID(c), Sibling: msg.Joiner})
				}
			}
			return st, out
		}
		// Full: forward to the lowest-numbered child (deterministic).
		low := sortedSet(st.Children)[0]
		return st, []model.Message{Join{From: n, To: model.NodeID(low), Joiner: msg.Joiner}}
	case Welcome:
		if st.InTree {
			// A second welcome can only reach a node through the checker's
			// conservative delivery (a node joins exactly one parent):
			// local assertion, discard the state (§4.2).
			return nil, nil
		}
		st.InTree = true
		st.Parent = int(msg.From)
		for _, sib := range msg.Siblings {
			st.Siblings[sib] = true
		}
		return st, nil
	case NewSibling:
		if !st.InTree {
			return nil, nil // local assertion: not yet in the tree
		}
		if st.Children[int(msg.Sibling)] || msg.Sibling == n || int(msg.From) != st.Parent {
			// A sibling announcement for one's own child, for oneself, or
			// from a node that is not the parent is impossible in a real
			// run: local assertion (the conservative delivery of LMC mixes
			// branches; discarding keeps the junk out of the search).
			return nil, nil
		}
		st.Siblings[int(msg.Sibling)] = true
		return st, nil
	default:
		return nil, nil
	}
}

// StructureName names the node-local tree-structure invariant.
const StructureName = "randtree-structure"

// Structure is the paper's RandTree invariant, checked per node state with
// no Cartesian combination: children and siblings are disjoint, and a node
// is never its own child, sibling or parent.
func Structure() spec.LocalInvariant {
	return spec.LocalInvariantFunc{
		InvName: StructureName,
		Fn: func(n model.NodeID, s model.State) string {
			st, ok := s.(*State)
			if !ok {
				return ""
			}
			for c := range st.Children {
				if st.Siblings[c] {
					return fmt.Sprintf("node %d is both child and sibling", c)
				}
				if c == int(n) {
					return "node is its own child"
				}
			}
			if st.Siblings[int(n)] {
				return "node is its own sibling"
			}
			if st.Children[st.Parent] {
				return fmt.Sprintf("parent %d is also a child", st.Parent)
			}
			return ""
		},
	}
}

// SymmetryClasses implements model.Symmetric with no classes. Joiners look
// interchangeable at first glance, but the join protocol embeds node
// identities in parent/child link state and the invariants inspect those
// links, so swapping two joiners' states yields a system state whose link
// structure names the wrong nodes. The explicit declaration documents the
// decision.
func (mc *Machine) SymmetryClasses() [][]model.NodeID { return nil }
