package twophase_test

import (
	"testing"
	"time"

	"lmc/internal/core"
	"lmc/internal/mc/global"
	"lmc/internal/model"
	"lmc/internal/protocols/twophase"
	"lmc/internal/testkit"
)

// TestAllYesCommits: with no no-voters, everyone commits.
func TestAllYesCommits(t *testing.T) {
	m := twophase.New(4, twophase.NoBug)
	h := testkit.New(m)
	if err := h.Act(twophase.Begin{}); err != nil {
		t.Fatal(err)
	}
	if err := h.Settle(100); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		st := h.State(model.NodeID(n)).(*twophase.State)
		if st.Outcome != twophase.Committed {
			t.Fatalf("node %d outcome %s", n, st.Outcome)
		}
	}
}

// TestNoVoterAborts: one no vote aborts everyone in the correct protocol.
func TestNoVoterAborts(t *testing.T) {
	m := twophase.New(4, twophase.NoBug, 2)
	h := testkit.New(m)
	if err := h.Act(twophase.Begin{}); err != nil {
		t.Fatal(err)
	}
	if err := h.Settle(100); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		st := h.State(model.NodeID(n)).(*twophase.State)
		if st.Outcome != twophase.Aborted {
			t.Fatalf("node %d outcome %s, want abort", n, st.Outcome)
		}
	}
}

// TestMajorityBugSplitsOutcomes: the buggy coordinator commits on a
// majority while the no-voter unilaterally aborted — atomicity broken in a
// straight-line run.
func TestMajorityBugSplitsOutcomes(t *testing.T) {
	m := twophase.New(4, twophase.MajorityBug, 2)
	h := testkit.New(m)
	if err := h.Act(twophase.Begin{}); err != nil {
		t.Fatal(err)
	}
	if err := h.Settle(100); err != nil {
		t.Fatal(err)
	}
	if v := twophase.Atomicity().Check(h.Snapshot()); v == nil {
		t.Fatal("buggy run did not violate atomicity")
	}
}

// TestCheckersAgreeOnBug: both the global baseline and the local checker
// find the majority bug from the initial state, and neither flags the
// correct protocol — a differential completeness check.
func TestCheckersAgreeOnBug(t *testing.T) {
	for _, bug := range []twophase.BugKind{twophase.NoBug, twophase.MajorityBug} {
		m := twophase.New(4, bug, 2)
		start := model.InitialSystem(m)
		wantBug := bug == twophase.MajorityBug

		g := global.Check(m, start, global.Options{
			Invariant:      twophase.Atomicity(),
			Budget:         30 * time.Second,
			StopAtFirstBug: true,
		})
		if (len(g.Bugs) > 0) != wantBug {
			t.Errorf("%v: global checker bugs=%d want found=%v", bug, len(g.Bugs), wantBug)
		}

		l := core.Check(m, start, core.Options{
			Invariant:      twophase.Atomicity(),
			Reduction:      twophase.Reduction{},
			Budget:         30 * time.Second,
			StopAtFirstBug: true,
		})
		if (len(l.Bugs) > 0) != wantBug {
			t.Errorf("%v: local checker bugs=%d want found=%v", bug, len(l.Bugs), wantBug)
		}
		if wantBug && len(l.Bugs) > 0 && len(g.Bugs) > 0 {
			t.Logf("global witness %d events, local witness %d events",
				len(g.Bugs[0].Schedule), len(l.Bugs[0].Schedule))
		}
	}
}

// TestVoteFromUnstartedCoordinatorAsserted: conservative-delivery votes at
// a coordinator that never began are rejected.
func TestVoteFromUnstartedCoordinatorAsserted(t *testing.T) {
	m := twophase.New(4, twophase.NoBug)
	if next, _ := m.HandleMessage(0, m.Init(0), twophase.Vote{From: 1, To: 0, Yes: true}); next != nil {
		t.Fatal("vote at unstarted coordinator accepted")
	}
}

// TestOutcomeString covers the verdict rendering.
func TestOutcomeString(t *testing.T) {
	if twophase.Pending.String() != "pending" ||
		twophase.Committed.String() != "commit" ||
		twophase.Aborted.String() != "abort" {
		t.Fatal("outcome names changed")
	}
}
