// Package twophase implements two-phase commit, an additional chatty
// broadcast workload for the local checker (§4.3: LMC shines on protocols
// with "lots of parallel network activities"). Node 0 coordinates: it
// broadcasts a vote request, participants answer yes or no (no-voters
// abort unilaterally), and the coordinator broadcasts the outcome — commit
// only if every participant voted yes.
//
// The buggy variant decides on a majority of yes votes instead of
// unanimity, so a no-voter's unilateral abort can disagree with the
// others' commit — an atomicity violation the checkers must catch.
package twophase

import (
	"fmt"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/spec"
)

// BugKind selects a protocol variant.
type BugKind int

const (
	// NoBug commits only on unanimous yes votes.
	NoBug BugKind = iota
	// MajorityBug commits on a majority of yes votes.
	MajorityBug
)

// String names the variant.
func (b BugKind) String() string {
	if b == MajorityBug {
		return "majority-bug"
	}
	return "correct"
}

// Outcome is a node's transaction verdict.
type Outcome uint8

const (
	// Pending means undecided.
	Pending Outcome = iota
	// Committed means the transaction committed at this node.
	Committed
	// Aborted means the transaction aborted at this node.
	Aborted
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Committed:
		return "commit"
	case Aborted:
		return "abort"
	default:
		return "pending"
	}
}

// State is one node's 2PC state.
type State struct {
	// Begun is set on the coordinator after it started the round.
	Begun bool
	// Voted is set on a participant after it cast its vote.
	Voted bool
	// Outcome is the node's verdict.
	Outcome Outcome
	// YesVotes collects yes-voters at the coordinator.
	YesVotes map[int]bool
	// NoVotes collects no-voters at the coordinator.
	NoVotes map[int]bool
	// Decided is set on the coordinator once it broadcast the outcome.
	Decided bool
}

// NewState returns an initial state.
func NewState() *State {
	return &State{YesVotes: map[int]bool{}, NoVotes: map[int]bool{}}
}

// Clone implements model.State.
func (s *State) Clone() model.State {
	c := &State{
		Begun: s.Begun, Voted: s.Voted, Outcome: s.Outcome, Decided: s.Decided,
		YesVotes: make(map[int]bool, len(s.YesVotes)),
		NoVotes:  make(map[int]bool, len(s.NoVotes)),
	}
	for k := range s.YesVotes {
		c.YesVotes[k] = true
	}
	for k := range s.NoVotes {
		c.NoVotes[k] = true
	}
	return c
}

// Encode implements codec.Encoder.
func (s *State) Encode(w *codec.Writer) {
	w.Bool(s.Begun)
	w.Bool(s.Voted)
	w.Byte(byte(s.Outcome))
	w.Bool(s.Decided)
	w.IntSet(s.YesVotes)
	w.IntSet(s.NoVotes)
}

// String implements model.State.
func (s *State) String() string {
	return fmt.Sprintf("{%s voted=%v}", s.Outcome, s.Voted)
}

// VoteRequest asks a participant to vote.
type VoteRequest struct{ From, To model.NodeID }

// Src implements model.Message.
func (m VoteRequest) Src() model.NodeID { return m.From }

// Dst implements model.Message.
func (m VoteRequest) Dst() model.NodeID { return m.To }

// Encode implements codec.Encoder.
func (m VoteRequest) Encode(w *codec.Writer) {
	w.String("2pc.vote-request")
	w.Int(int(m.From))
	w.Int(int(m.To))
}

// String implements model.Message.
func (m VoteRequest) String() string {
	return fmt.Sprintf("VoteRequest{%v->%v}", m.From, m.To)
}

// Vote is a participant's answer.
type Vote struct {
	From, To model.NodeID
	Yes      bool
}

// Src implements model.Message.
func (m Vote) Src() model.NodeID { return m.From }

// Dst implements model.Message.
func (m Vote) Dst() model.NodeID { return m.To }

// Encode implements codec.Encoder.
func (m Vote) Encode(w *codec.Writer) {
	w.String("2pc.vote")
	w.Int(int(m.From))
	w.Int(int(m.To))
	w.Bool(m.Yes)
}

// String implements model.Message.
func (m Vote) String() string {
	return fmt.Sprintf("Vote{%v->%v yes=%v}", m.From, m.To, m.Yes)
}

// Decision is the coordinator's outcome broadcast.
type Decision struct {
	From, To model.NodeID
	Commit   bool
}

// Src implements model.Message.
func (m Decision) Src() model.NodeID { return m.From }

// Dst implements model.Message.
func (m Decision) Dst() model.NodeID { return m.To }

// Encode implements codec.Encoder.
func (m Decision) Encode(w *codec.Writer) {
	w.String("2pc.decision")
	w.Int(int(m.From))
	w.Int(int(m.To))
	w.Bool(m.Commit)
}

// String implements model.Message.
func (m Decision) String() string {
	return fmt.Sprintf("Decision{%v->%v commit=%v}", m.From, m.To, m.Commit)
}

// Begin is the coordinator's application call.
type Begin struct{}

// Node implements model.Action.
func (Begin) Node() model.NodeID { return 0 }

// Encode implements codec.Encoder.
func (Begin) Encode(w *codec.Writer) { w.String("2pc.begin") }

// String implements model.Action.
func (Begin) String() string { return "Begin{}" }

// Machine is the 2PC protocol. Node 0 coordinates (and votes yes itself);
// nodes in NoVoters vote no.
type Machine struct {
	N        int
	Bug      BugKind
	NoVoters map[model.NodeID]bool
}

// New builds a 2PC machine; noVoters lists the participants scripted to
// vote no.
func New(n int, bug BugKind, noVoters ...model.NodeID) *Machine {
	m := &Machine{N: n, Bug: bug, NoVoters: map[model.NodeID]bool{}}
	for _, v := range noVoters {
		m.NoVoters[v] = true
	}
	return m
}

// Name implements model.Machine.
func (mc *Machine) Name() string {
	if mc.Bug == NoBug {
		return "twophase"
	}
	return "twophase-" + mc.Bug.String()
}

// NumNodes implements model.Machine.
func (mc *Machine) NumNodes() int { return mc.N }

// Init implements model.Machine.
func (mc *Machine) Init(model.NodeID) model.State { return NewState() }

// Actions implements model.Machine.
func (mc *Machine) Actions(n model.NodeID, s model.State) []model.Action {
	st := s.(*State)
	if n == 0 && !st.Begun {
		return []model.Action{Begin{}}
	}
	return nil
}

// HandleAction implements model.Machine.
func (mc *Machine) HandleAction(n model.NodeID, s model.State, a model.Action) (model.State, []model.Message) {
	st := s.(*State)
	if _, ok := a.(Begin); !ok || n != 0 || st.Begun {
		return nil, nil
	}
	st.Begun = true
	st.Voted = true
	st.YesVotes[0] = true // the coordinator votes yes itself
	out := make([]model.Message, 0, mc.N-1)
	for to := 1; to < mc.N; to++ {
		out = append(out, VoteRequest{From: 0, To: model.NodeID(to)})
	}
	return st, out
}

// quorum is the yes-vote threshold for committing.
func (mc *Machine) quorum() int {
	if mc.Bug == MajorityBug {
		return mc.N/2 + 1
	}
	return mc.N
}

// HandleMessage implements model.Machine.
func (mc *Machine) HandleMessage(n model.NodeID, s model.State, m model.Message) (model.State, []model.Message) {
	st := s.(*State)
	switch msg := m.(type) {
	case VoteRequest:
		if n == 0 {
			return nil, nil // the coordinator never receives vote requests
		}
		if st.Voted {
			return st, nil
		}
		st.Voted = true
		yes := !mc.NoVoters[n]
		if !yes {
			// A no-voter aborts unilaterally.
			st.Outcome = Aborted
		}
		return st, []model.Message{Vote{From: n, To: 0, Yes: yes}}
	case Vote:
		if n != 0 || !st.Begun {
			return nil, nil // votes only make sense at a started coordinator
		}
		if st.Decided {
			return st, nil
		}
		if msg.Yes {
			st.YesVotes[int(msg.From)] = true
		} else {
			st.NoVotes[int(msg.From)] = true
		}
		commit := len(st.YesVotes) >= mc.quorum()
		abort := len(st.NoVotes) > 0 && mc.Bug == NoBug
		aborted := len(st.YesVotes)+len(st.NoVotes) == mc.N && len(st.NoVotes) > 0
		if !commit && !abort && !aborted {
			return st, nil
		}
		st.Decided = true
		if commit {
			st.Outcome = Committed
		} else {
			st.Outcome = Aborted
		}
		out := make([]model.Message, 0, mc.N-1)
		for to := 1; to < mc.N; to++ {
			out = append(out, Decision{From: 0, To: model.NodeID(to), Commit: commit})
		}
		return st, out
	case Decision:
		if n == 0 {
			return nil, nil
		}
		if st.Outcome == Pending {
			if msg.Commit {
				st.Outcome = Committed
			} else {
				st.Outcome = Aborted
			}
		}
		return st, nil
	default:
		return nil, nil
	}
}

// AtomicityName names the 2PC safety invariant.
const AtomicityName = "2pc-atomicity"

// Atomicity is the system invariant: no two nodes decide differently.
func Atomicity() spec.Invariant {
	return spec.InvariantFunc{
		InvName: AtomicityName,
		Fn: func(ss model.SystemState) *spec.Violation {
			for i := 0; i < len(ss); i++ {
				si, ok := ss[i].(*State)
				if !ok {
					return nil
				}
				if si.Outcome == Pending {
					continue
				}
				for j := i + 1; j < len(ss); j++ {
					sj := ss[j].(*State)
					if sj.Outcome != Pending && sj.Outcome != si.Outcome {
						return spec.Violate(AtomicityName, ss,
							"%v decided %s but %v decided %s",
							model.NodeID(i), si.Outcome, model.NodeID(j), sj.Outcome)
					}
				}
			}
			return nil
		},
	}
}

// Reduction is the LMC-OPT projection for Atomicity: a node state matters
// only once it decided; two decisions conflict when they differ.
type Reduction struct{}

// Interest implements spec.Reduction.
func (Reduction) Interest(_ model.NodeID, s model.State) (spec.Interest, bool) {
	st, ok := s.(*State)
	if !ok || st.Outcome == Pending {
		return nil, false
	}
	return st.Outcome, true
}

// Conflict implements spec.Reduction.
func (Reduction) Conflict(a, b spec.Interest) bool {
	oa, ok := a.(Outcome)
	if !ok {
		return false
	}
	ob, ok := b.(Outcome)
	if !ok {
		return false
	}
	return oa != ob
}

// InterestKey implements spec.Keyer.
func (Reduction) InterestKey(i spec.Interest) string {
	o, ok := i.(Outcome)
	if !ok {
		return ""
	}
	return o.String()
}

// SymmetryClasses implements model.Symmetric: participants scripted to the
// same vote are interchangeable roles; the coordinator (node 0) is
// distinguished. Atomicity compares outcomes pairwise over all node pairs
// without privileging slots, so it is slot-symmetric within the classes.
func (mc *Machine) SymmetryClasses() [][]model.NodeID {
	var yes, no []model.NodeID
	for n := 1; n < mc.N; n++ {
		if mc.NoVoters[model.NodeID(n)] {
			no = append(no, model.NodeID(n))
		} else {
			yes = append(yes, model.NodeID(n))
		}
	}
	return [][]model.NodeID{yes, no}
}
