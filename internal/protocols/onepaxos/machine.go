package onepaxos

import (
	"fmt"
	"math/rand"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/protocols/paxos"
)

// UtilLayer tags the embedded PaxosUtility instance's messages.
const UtilLayer paxos.Tag = "util."

// AcceptReq asks the active acceptor to accept a value for an index. It
// carries the proposing leader's epoch; acceptors refuse stale epochs.
type AcceptReq struct {
	From, To model.NodeID
	Index    int
	Epoch    int
	Value    int
}

// Src implements model.Message.
func (m AcceptReq) Src() model.NodeID { return m.From }

// Dst implements model.Message.
func (m AcceptReq) Dst() model.NodeID { return m.To }

// Encode implements codec.Encoder.
func (m AcceptReq) Encode(w *codec.Writer) {
	w.String("1p.accept-req")
	w.Int(int(m.From))
	w.Int(int(m.To))
	w.Int(m.Index)
	w.Int(m.Epoch)
	w.Int(m.Value)
}

// String implements model.Message.
func (m AcceptReq) String() string {
	return fmt.Sprintf("AcceptReq{%v->%v i=%d e=%d v=%d}", m.From, m.To, m.Index, m.Epoch, m.Value)
}

// Learn1 is the single acceptor's announcement; one Learn1 suffices for a
// learner to choose.
type Learn1 struct {
	From, To model.NodeID
	Index    int
	Epoch    int
	Value    int
}

// Src implements model.Message.
func (m Learn1) Src() model.NodeID { return m.From }

// Dst implements model.Message.
func (m Learn1) Dst() model.NodeID { return m.To }

// Encode implements codec.Encoder.
func (m Learn1) Encode(w *codec.Writer) {
	w.String("1p.learn")
	w.Int(int(m.From))
	w.Int(int(m.To))
	w.Int(m.Index)
	w.Int(m.Epoch)
	w.Int(m.Value)
}

// String implements model.Message.
func (m Learn1) String() string {
	return fmt.Sprintf("Learn1{%v->%v i=%d e=%d v=%d}", m.From, m.To, m.Index, m.Epoch, m.Value)
}

// ProposeValue is the application call: a node believing itself leader
// submits a value for an index directly to its view of the acceptor.
type ProposeValue struct {
	On    model.NodeID
	Index int
	Value int
}

// Node implements model.Action.
func (a ProposeValue) Node() model.NodeID { return a.On }

// Encode implements codec.Encoder.
func (a ProposeValue) Encode(w *codec.Writer) {
	w.String("1p.propose")
	w.Int(int(a.On))
	w.Int(a.Index)
	w.Int(a.Value)
}

// String implements model.Action.
func (a ProposeValue) String() string {
	return fmt.Sprintf("ProposeValue{%v i=%d v=%d}", a.On, a.Index, a.Value)
}

// BecomeLeader is the fault-detector-driven takeover: the node inserts a
// LeaderChange entry for itself into the PaxosUtility (§5.6: "N3 attempts
// to be the leader by inserting a LeaderChange entry into the
// PaxosUtility").
type BecomeLeader struct {
	On model.NodeID
}

// Node implements model.Action.
func (a BecomeLeader) Node() model.NodeID { return a.On }

// Encode implements codec.Encoder.
func (a BecomeLeader) Encode(w *codec.Writer) {
	w.String("1p.become-leader")
	w.Int(int(a.On))
}

// String implements model.Action.
func (a BecomeLeader) String() string { return fmt.Sprintf("BecomeLeader{%v}", a.On) }

// LiveApp is the application of the §5.6 live runs: at each application
// call the node "triggers the fault detector with the probability of 0.1
// to stress the fault tolerance mechanisms of 1Paxos" — here, a non-leader
// attempting a takeover — and a node that believes itself leader proposes
// a value for its next index. The signature matches the sim package's
// AppFunc.
func LiveApp(m *Machine, faultProb float64) func(rng *rand.Rand, n model.NodeID, s model.State) []model.Action {
	if faultProb <= 0 {
		faultProb = 0.1
	}
	return func(rng *rand.Rand, n model.NodeID, s model.State) []model.Action {
		st, ok := s.(*State)
		if !ok {
			return nil
		}
		if st.Leader == n {
			idx, ok := m.nextIndex(st)
			if !ok {
				// All known business settled: open a fresh index, the way
				// the live application keeps the log moving. Two nodes that
				// both believe they lead (the ++ bug plus a lost
				// LeaderChange) will collide on the same fresh index.
				idx = m.freshIndex(st)
			}
			return []model.Action{ProposeValue{On: n, Index: idx, Value: int(n) + 1}}
		}
		if rng.Float64() < faultProb {
			return []model.Action{BecomeLeader{On: n}}
		}
		return nil
	}
}

// Driver gates the actions the checker (or the live application) may
// initiate.
type Driver struct {
	// MaxProposals bounds value propositions per node.
	MaxProposals int
	// MaxTakeovers bounds leadership takeovers per node.
	MaxTakeovers int
}

// Machine adapts 1Paxos to model.Machine.
type Machine struct {
	N      int
	Bug    BugKind
	Driver Driver

	util paxos.Params
}

// New builds a 1Paxos machine over n nodes. Non-positive driver budgets
// mean unlimited: the budgets count lifetime actions (ProposalsMade /
// LeaderAttempts, which a live run's history advances too), so online
// checker runs — whose snapshots arrive with history — must leave them
// open and rely on the checker's per-pass local-event bound instead.
func New(n int, bug BugKind, driver Driver) *Machine {
	return &Machine{
		N:      n,
		Bug:    bug,
		Driver: driver,
		util:   paxos.Params{N: n, Layer: UtilLayer},
	}
}

// Name implements model.Machine.
func (mc *Machine) Name() string {
	if mc.Bug == NoBug {
		return "1paxos"
	}
	return "1paxos-" + mc.Bug.String()
}

// NumNodes implements model.Machine.
func (mc *Machine) NumNodes() int { return mc.N }

// Init implements model.Machine: the §5.6 initialization function. The
// leader is set to the first member; the acceptor is intended to be the
// second — `*(++members.begin())` — but the buggy variant evaluates
// `*(members.begin()++)`, which is the first member again.
func (mc *Machine) Init(model.NodeID) model.State {
	s := &State{
		Util:     paxos.NewState(),
		Leader:   0,
		Acceptor: 1,
		Accepted: make(map[int]acceptedVal),
		Chosen:   make(map[int]int),
	}
	if mc.Bug == PlusPlusBug {
		s.Acceptor = 0 // same node as the leader
	}
	return s
}

// HandleMessage implements model.Machine.
func (mc *Machine) HandleMessage(n model.NodeID, s model.State, m model.Message) (model.State, []model.Message) {
	st := s.(*State)
	// Lower layer first: PaxosUtility messages are tagged with UtilLayer.
	if out, ok := paxos.Step(mc.util, n, st.Util, m); ok {
		out = append(out, mc.applyUtil(n, st)...)
		return st, out
	}
	switch msg := m.(type) {
	case AcceptReq:
		return mc.handleAcceptReq(n, st, msg)
	case Learn1:
		if _, done := st.Chosen[msg.Index]; !done {
			st.Chosen[msg.Index] = msg.Value
		}
		return st, nil
	default:
		return nil, nil // unknown message: local assertion
	}
}

// handleAcceptReq is the acceptor role: accept when the request's epoch is
// current. The epoch — the count of LeaderChange entries — is the guard
// against deposed leaders; a leader only addresses the node it believes is
// the acceptor, which is exactly the local variable the §5.6 bug corrupts.
func (mc *Machine) handleAcceptReq(n model.NodeID, st *State, m AcceptReq) (model.State, []model.Message) {
	if m.Epoch < st.Epoch {
		return st, nil // stale leader
	}
	if cur, ok := st.Accepted[m.Index]; ok && m.Epoch <= cur.Epoch {
		return st, nil // already accepted for this index in this epoch
	}
	st.Accepted[m.Index] = acceptedVal{Epoch: m.Epoch, Value: m.Value}
	out := make([]model.Message, 0, mc.N)
	for to := 0; to < mc.N; to++ {
		out = append(out, Learn1{From: n, To: model.NodeID(to),
			Index: m.Index, Epoch: m.Epoch, Value: m.Value})
	}
	return st, out
}

// applyUtil applies newly chosen PaxosUtility entries in log order,
// updating the node's leader/acceptor view. A node that just became leader
// refreshes its acceptor variable from the utility — §5.6: "At this moment,
// it obtains from the PaxosUtility the correct value of the active
// acceptor, which is N2" — and, should the utility name the new leader
// itself as acceptor, installs a backup through another utility entry
// (leader and acceptor must be separate nodes).
func (mc *Machine) applyUtil(n model.NodeID, st *State) []model.Message {
	var out []model.Message
	for {
		v, ok := st.Util.HasChosen(st.UtilApplied)
		if !ok {
			return out
		}
		st.UtilApplied++
		kind, who := DecodeEntry(v)
		switch kind {
		case entryLeader:
			st.Epoch++
			st.Leader = who
			if who == n {
				st.Acceptor = mc.utilAcceptor(st)
				if st.Acceptor == who {
					backup := mc.pickBackup(who, st.Acceptor)
					out = append(out, mc.utilPropose(n, st, EncodeEntry(entryAcceptor, backup))...)
				}
			}
		case entryAcceptor:
			st.Acceptor = who
		}
	}
}

// utilAcceptor reads the active acceptor from the utility's applied log:
// the last AcceptorChange entry, or the deployment's intended initial
// configuration — the second member. (The intended configuration is
// correct; the §5.6 bug only corrupts the locally cached copy computed by
// the node's initialization function.)
func (mc *Machine) utilAcceptor(st *State) model.NodeID {
	acceptor := model.NodeID(1)
	for idx := 0; idx < st.UtilApplied; idx++ {
		if v, ok := st.Util.HasChosen(idx); ok {
			if kind, who := DecodeEntry(v); kind == entryAcceptor {
				acceptor = who
			}
		}
	}
	return acceptor
}

// pickBackup chooses the replacement acceptor.
func (mc *Machine) pickBackup(leader, failed model.NodeID) model.NodeID {
	for i := 0; i < mc.N; i++ {
		cand := model.NodeID(i)
		if cand != leader && cand != failed {
			return cand
		}
	}
	return leader // degenerate single-node system
}

// utilPropose submits a configuration entry to the PaxosUtility at the
// next utility index this node considers free.
func (mc *Machine) utilPropose(n model.NodeID, st *State, value int) []model.Message {
	idx := st.UtilApplied
	for {
		if _, chosen := st.Util.HasChosen(idx); !chosen {
			break
		}
		idx++
	}
	return paxos.DoPropose(mc.util, n, st.Util, idx, value)
}

// Actions implements model.Machine.
func (mc *Machine) Actions(n model.NodeID, s model.State) []model.Action {
	st := s.(*State)
	var acts []model.Action
	if st.Leader == n &&
		(mc.Driver.MaxProposals <= 0 || st.ProposalsMade < mc.Driver.MaxProposals) {
		if idx, ok := mc.nextIndex(st); ok {
			acts = append(acts, ProposeValue{On: n, Index: idx, Value: int(n) + 1})
		}
	}
	if st.Leader != n &&
		(mc.Driver.MaxTakeovers <= 0 || st.LeaderAttempts < mc.Driver.MaxTakeovers) {
		acts = append(acts, BecomeLeader{On: n})
	}
	return acts
}

// nextIndex picks the index a leader proposes at: the smallest index with
// visible, unchosen activity; index 0 counts as always active, so a node
// that has seen nothing starts the log.
func (mc *Machine) nextIndex(st *State) (int, bool) {
	best := -1
	consider := func(i int) {
		if _, chosen := st.Chosen[i]; chosen {
			return
		}
		if best < 0 || i < best {
			best = i
		}
	}
	consider(0)
	for i := range st.Accepted {
		consider(i)
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// freshIndex is the next log index beyond everything this node has seen.
func (mc *Machine) freshIndex(st *State) int {
	top := -1
	for i := range st.Accepted {
		if i > top {
			top = i
		}
	}
	for i := range st.Chosen {
		if i > top {
			top = i
		}
	}
	return top + 1
}

// HandleAction implements model.Machine.
func (mc *Machine) HandleAction(n model.NodeID, s model.State, a model.Action) (model.State, []model.Message) {
	st := s.(*State)
	switch act := a.(type) {
	case ProposeValue:
		if st.Leader != n {
			return nil, nil
		}
		st.ProposalsMade++
		return st, []model.Message{AcceptReq{
			From:  n,
			To:    st.Acceptor,
			Index: act.Index,
			Epoch: st.Epoch,
			Value: act.Value,
		}}
	case BecomeLeader:
		if st.Leader == n {
			return nil, nil
		}
		st.LeaderAttempts++
		return st, mc.utilPropose(n, st, EncodeEntry(entryLeader, n))
	default:
		return nil, nil
	}
}

// SymmetryClasses implements model.Symmetric. Init pins node 0 as the
// initial leader and node 1 as the initial (or, under the ++ bug, shadowed)
// acceptor, so those two are distinguished roles; the remaining nodes start
// as interchangeable bystanders that may later attempt takeovers. The
// Agreement invariant compares Chosen maps pairwise over all node pairs, so
// it is slot-symmetric across any class.
func (mc *Machine) SymmetryClasses() [][]model.NodeID {
	var class []model.NodeID
	for n := 2; n < mc.N; n++ {
		class = append(class, model.NodeID(n))
	}
	return [][]model.NodeID{class}
}
