package onepaxos

import (
	"fmt"

	"lmc/internal/model"
	"lmc/internal/testkit"
)

// PaperLiveState reconstructs the live state of the §5.6 experiment at the
// moment the online checker snapshots it: node N3 has become the leader
// through the PaxosUtility (its LeaderChange entry chosen by the N2/N3
// majority), read N2 as the active acceptor, and proposed value 3 for
// index 0; N2 accepted and broadcast Learn; every message to N1 was lost,
// so N1 still believes it is the leader — with its acceptor variable
// pointing wherever the initialization function left it.
func PaperLiveState(m *Machine) (model.SystemState, error) {
	h := testkit.New(m)
	h.Drop = func(msg model.Message) bool { return msg.Dst() == 0 }

	if err := h.Act(BecomeLeader{On: 2}); err != nil {
		return nil, err
	}
	if err := h.Settle(10000); err != nil {
		return nil, err
	}
	st := h.State(2).(*State)
	if st.Leader != 2 || st.Acceptor != 1 {
		return nil, fmt.Errorf("onepaxos: takeover did not converge: %s", st.String())
	}
	if err := h.Act(ProposeValue{On: 2, Index: 0, Value: 3}); err != nil {
		return nil, err
	}
	if err := h.Settle(10000); err != nil {
		return nil, err
	}
	for _, n := range []model.NodeID{1, 2} {
		st := h.State(n).(*State)
		if v, ok := st.HasChosen(0); !ok || v != 3 {
			return nil, fmt.Errorf("onepaxos: %v did not choose 3: %s", n, st.String())
		}
	}
	n1 := h.State(0).(*State)
	if n1.Leader != 0 {
		return nil, fmt.Errorf("onepaxos: N1 lost its stale leadership: %s", n1.String())
	}
	return h.Snapshot(), nil
}
