package onepaxos

import (
	"fmt"
	"sort"
	"strings"

	"lmc/internal/model"
	"lmc/internal/spec"
)

// AgreementName names the 1Paxos safety invariant — the original Paxos
// invariant, as installed in §5.6.
const AgreementName = "1paxos-agreement"

// Agreement is the Paxos safety property over 1Paxos learner state: no two
// nodes choose different values for the same index.
func Agreement() spec.Invariant {
	return spec.InvariantFunc{
		InvName: AgreementName,
		Fn: func(ss model.SystemState) *spec.Violation {
			for i := 0; i < len(ss); i++ {
				si, ok := ss[i].(*State)
				if !ok {
					return nil
				}
				for idx, vi := range si.Chosen {
					for j := i + 1; j < len(ss); j++ {
						sj := ss[j].(*State)
						if vj, ok := sj.Chosen[idx]; ok && vj != vi {
							return spec.Violate(AgreementName, ss,
								"index %d: %v chose %d but %v chose %d",
								idx, model.NodeID(i), vi, model.NodeID(j), vj)
						}
					}
				}
			}
			return nil
		},
	}
}

// chosenInterest is the LMC-OPT projection: the node's chosen map.
type chosenInterest map[int]int

// Reduction is the invariant-specific system-state creation rule for the
// 1Paxos agreement invariant, mirroring the Paxos one of §4.2.
type Reduction struct{}

// Interest implements spec.Reduction.
func (Reduction) Interest(_ model.NodeID, s model.State) (spec.Interest, bool) {
	st, ok := s.(*State)
	if !ok || len(st.Chosen) == 0 {
		return nil, false
	}
	return chosenInterest(st.ChosenSet()), true
}

// Conflict implements spec.Reduction.
func (Reduction) Conflict(a, b spec.Interest) bool {
	ca, ok := a.(chosenInterest)
	if !ok {
		return false
	}
	cb, ok := b.(chosenInterest)
	if !ok {
		return false
	}
	for idx, va := range ca {
		if vb, ok := cb[idx]; ok && va != vb {
			return true
		}
	}
	return false
}

// InterestKey implements spec.Keyer.
func (Reduction) InterestKey(i spec.Interest) string {
	ci, ok := i.(chosenInterest)
	if !ok {
		return ""
	}
	idxs := make([]int, 0, len(ci))
	for idx := range ci {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var b strings.Builder
	for _, idx := range idxs {
		fmt.Fprintf(&b, "%d=%d;", idx, ci[idx])
	}
	return b.String()
}

// SeparationName names the configuration invariant of 1Paxos.
const SeparationName = "1paxos-leader-acceptor-separate"

// Separation checks the 1Paxos design requirement that the leader and the
// active acceptor are distinct nodes ("it is necessary that the acceptor
// and leader roles to be assigned to two separate nodes", §5.6) — a
// node-local property, checkable without any Cartesian combination. The
// buggy initialization violates it immediately.
func Separation() spec.LocalInvariant {
	return spec.LocalInvariantFunc{
		InvName: SeparationName,
		Fn: func(n model.NodeID, s model.State) string {
			st, ok := s.(*State)
			if !ok {
				return ""
			}
			if st.Leader == st.Acceptor {
				return fmt.Sprintf("leader and acceptor are both %v", st.Leader)
			}
			return ""
		},
	}
}
