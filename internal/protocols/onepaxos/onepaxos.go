// Package onepaxos implements 1Paxos (§5.6, citing "One Acceptor is
// Enough"): an efficient Multi-Paxos variant with a single active acceptor.
// A global leader sends accept requests directly to the active acceptor;
// the acceptor's Learn broadcast alone suffices for learners to choose.
// Upon (suspected) failure, the acceptor is replaced by the global leader.
// Leader and acceptor identities are agreed upon through a separate
// consensus service, PaxosUtility, which — as in the paper's experiment —
// is implemented with Paxos itself, mounted as a lower-layer module of
// every node (the "whole service stack" of §4.2).
//
// The package provides the correct protocol and, behind a switch, the
// paper's newly found bug: the initialization function computed the active
// acceptor with `acceptor = *(members.begin()++)`, which — because postfix
// ++ returns the original iterator — sets the acceptor to the first member,
// the same node as the leader.
package onepaxos

import (
	"fmt"
	"sort"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/protocols/paxos"
)

// BugKind selects a protocol variant.
type BugKind int

const (
	// NoBug initializes the acceptor to the second member, as intended.
	NoBug BugKind = iota
	// PlusPlusBug reproduces the §5.6 initialization bug: the acceptor
	// local variable is set to the first member — the leader itself.
	PlusPlusBug
)

// String names the variant.
func (b BugKind) String() string {
	if b == PlusPlusBug {
		return "plusplus-bug"
	}
	return "correct"
}

// Entry kinds stored in the PaxosUtility log. Entries are encoded into the
// utility's integer value space as kind*1000 + node + 1.
const (
	entryLeader   = 1
	entryAcceptor = 2
)

// EncodeEntry packs a configuration entry into a utility value.
func EncodeEntry(kind int, n model.NodeID) int { return kind*1000 + int(n) + 1 }

// DecodeEntry unpacks a utility value.
func DecodeEntry(v int) (kind int, n model.NodeID) {
	return v / 1000, model.NodeID(v%1000 - 1)
}

// acceptedVal is the acceptor role's record for one index.
type acceptedVal struct {
	Epoch int
	Value int
}

// State is one 1Paxos node's local state, including its embedded
// PaxosUtility (lower-layer Paxos) state.
type State struct {
	// Util is the PaxosUtility lower layer.
	Util *paxos.State
	// UtilApplied is the next utility log index to apply.
	UtilApplied int

	// Leader is the node's view of the global leader.
	Leader model.NodeID
	// Acceptor is the node's view of the active acceptor — the local
	// variable the §5.6 bug mis-initializes.
	Acceptor model.NodeID
	// Epoch counts LeaderChange entries applied; accept requests from
	// stale epochs are refused.
	Epoch int

	// Accepted is the acceptor role's per-index record.
	Accepted map[int]acceptedVal
	// Chosen is the learner role's decisions.
	Chosen map[int]int
	// ProposalsMade counts this node's value propositions (driver budget).
	ProposalsMade int
	// LeaderAttempts counts this node's leadership takeovers (driver
	// budget).
	LeaderAttempts int
}

// Clone implements model.State.
func (s *State) Clone() model.State {
	c := &State{
		Util:           s.Util.Clone().(*paxos.State),
		UtilApplied:    s.UtilApplied,
		Leader:         s.Leader,
		Acceptor:       s.Acceptor,
		Epoch:          s.Epoch,
		Accepted:       make(map[int]acceptedVal, len(s.Accepted)),
		Chosen:         make(map[int]int, len(s.Chosen)),
		ProposalsMade:  s.ProposalsMade,
		LeaderAttempts: s.LeaderAttempts,
	}
	for i, a := range s.Accepted {
		c.Accepted[i] = a
	}
	for i, v := range s.Chosen {
		c.Chosen[i] = v
	}
	return c
}

// Encode implements codec.Encoder.
func (s *State) Encode(w *codec.Writer) {
	s.Util.Encode(w)
	w.Int(s.UtilApplied)
	w.Int(int(s.Leader))
	w.Int(int(s.Acceptor))
	w.Int(s.Epoch)
	idxs := make([]int, 0, len(s.Accepted))
	for i := range s.Accepted {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	w.Uint32(uint32(len(idxs)))
	for _, i := range idxs {
		a := s.Accepted[i]
		w.Int(i)
		w.Int(a.Epoch)
		w.Int(a.Value)
	}
	w.IntMap(s.Chosen)
	w.Int(s.ProposalsMade)
	w.Int(s.LeaderAttempts)
}

// String implements model.State.
func (s *State) String() string {
	out := fmt.Sprintf("{L=%v A=%v e=%d", s.Leader, s.Acceptor, s.Epoch)
	idxs := make([]int, 0, len(s.Chosen))
	for i := range s.Chosen {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		out += fmt.Sprintf(" chosen[%d]=%d", i, s.Chosen[i])
	}
	return out + "}"
}

// HasChosen reports the chosen value for an index, if any.
func (s *State) HasChosen(index int) (int, bool) {
	v, ok := s.Chosen[index]
	return v, ok
}

// ChosenSet returns a copy of the chosen map.
func (s *State) ChosenSet() map[int]int {
	out := make(map[int]int, len(s.Chosen))
	for k, v := range s.Chosen {
		out[k] = v
	}
	return out
}
