package onepaxos

import (
	"testing"

	"lmc/internal/model"
	"lmc/internal/protocols/paxos"
	"lmc/internal/testkit"
)

// TestEntryCodec round-trips configuration entries.
func TestEntryCodec(t *testing.T) {
	for _, kind := range []int{entryLeader, entryAcceptor} {
		for n := model.NodeID(0); n < 3; n++ {
			k, who := DecodeEntry(EncodeEntry(kind, n))
			if k != kind || who != n {
				t.Fatalf("round trip failed: %d/%v -> %d/%v", kind, n, k, who)
			}
		}
	}
}

// TestEpochRefusesStaleLeader: an accept request from a deposed epoch is
// ignored — the guard that keeps the correct variant safe.
func TestEpochRefusesStaleLeader(t *testing.T) {
	m := New(3, NoBug, Driver{})
	st := m.Init(1).(*State)
	st.Epoch = 2
	next, out := m.HandleMessage(1, st.Clone(), AcceptReq{From: 0, To: 1, Index: 0, Epoch: 1, Value: 9})
	if next == nil {
		t.Fatal("stale request rejected as assertion (should be ignored)")
	}
	if len(out) != 0 {
		t.Fatal("stale request accepted")
	}
	if _, ok := next.(*State).Accepted[0]; ok {
		t.Fatal("stale request recorded")
	}
}

// TestAcceptBroadcastsLearn: a current-epoch accept reaches every learner.
func TestAcceptBroadcastsLearn(t *testing.T) {
	m := New(3, NoBug, Driver{})
	st := m.Init(1).(*State)
	next, out := m.HandleMessage(1, st.Clone(), AcceptReq{From: 0, To: 1, Index: 0, Epoch: 0, Value: 9})
	if next == nil || len(out) != 3 {
		t.Fatalf("accept wrong: %v %v", next, out)
	}
	for _, msg := range out {
		l := msg.(Learn1)
		if l.Value != 9 || l.Index != 0 {
			t.Fatalf("learn wrong: %v", l)
		}
	}
}

// TestReacceptOnlyHigherEpoch: an index re-accepts only for a newer epoch.
func TestReacceptOnlyHigherEpoch(t *testing.T) {
	m := New(3, NoBug, Driver{})
	st := m.Init(1).(*State)
	m.HandleMessage(1, st, AcceptReq{From: 0, To: 1, Index: 0, Epoch: 0, Value: 9})
	st.Accepted[0] = acceptedVal{Epoch: 0, Value: 9}
	_, out := m.HandleMessage(1, st.Clone(), AcceptReq{From: 0, To: 1, Index: 0, Epoch: 0, Value: 5})
	if len(out) != 0 {
		t.Fatal("same-epoch re-accept")
	}
	next, out := m.HandleMessage(1, st.Clone(), AcceptReq{From: 2, To: 1, Index: 0, Epoch: 1, Value: 5})
	if len(out) != 3 || next.(*State).Accepted[0].Value != 5 {
		t.Fatal("higher-epoch re-accept refused")
	}
}

// TestLearnKeepsFirstChoice mirrors the Paxos learner rule.
func TestLearnKeepsFirstChoice(t *testing.T) {
	m := New(3, NoBug, Driver{})
	st := m.Init(0).(*State)
	m.HandleMessage(0, st, Learn1{From: 1, To: 0, Index: 0, Epoch: 0, Value: 9})
	st.Chosen[0] = 9
	next, _ := m.HandleMessage(0, st.Clone(), Learn1{From: 1, To: 0, Index: 0, Epoch: 1, Value: 4})
	if next.(*State).Chosen[0] != 9 {
		t.Fatal("choice overwritten")
	}
}

// TestBecomeLeaderRunsUtilConsensus: a takeover flows through the embedded
// Paxos (PaxosUtility) and updates every node's view.
func TestBecomeLeaderRunsUtilConsensus(t *testing.T) {
	m := New(3, NoBug, Driver{})
	h := testkit.New(m)
	if err := h.Act(BecomeLeader{On: 2}); err != nil {
		t.Fatal(err)
	}
	if err := h.Settle(10000); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		st := h.State(model.NodeID(n)).(*State)
		if st.Leader != 2 {
			t.Fatalf("node %d still sees leader %v", n, st.Leader)
		}
		if st.Epoch != 1 {
			t.Fatalf("node %d epoch %d", n, st.Epoch)
		}
	}
	// The utility log of every node holds the LeaderChange entry at index 0.
	st := h.State(0).(*State)
	v, ok := st.Util.HasChosen(0)
	if !ok {
		t.Fatal("utility log empty")
	}
	if kind, who := DecodeEntry(v); kind != entryLeader || who != 2 {
		t.Fatalf("utility entry wrong: %d %v", kind, who)
	}
}

// TestUtilAcceptorDefaultsToSecondMember: with no AcceptorChange entries,
// the deployment's intended configuration (second member) is read.
func TestUtilAcceptorDefaultsToSecondMember(t *testing.T) {
	m := New(3, PlusPlusBug, Driver{})
	st := m.Init(2).(*State)
	if got := m.utilAcceptor(st); got != 1 {
		t.Fatalf("default acceptor %v, want N2", got)
	}
}

// TestProposeValueUsesCachedAcceptor: the fatal path — the proposer
// addresses its cached acceptor variable without consulting the utility.
func TestProposeValueUsesCachedAcceptor(t *testing.T) {
	for _, tc := range []struct {
		bug  BugKind
		want model.NodeID
	}{{NoBug, 1}, {PlusPlusBug, 0}} {
		m := New(3, tc.bug, Driver{})
		st := m.Init(0)
		_, out := m.HandleAction(0, st.Clone(), ProposeValue{On: 0, Index: 0, Value: 1})
		if len(out) != 1 {
			t.Fatalf("%v: no accept request", tc.bug)
		}
		if got := out[0].(AcceptReq).To; got != tc.want {
			t.Fatalf("%v: request addressed to %v, want %v", tc.bug, got, tc.want)
		}
	}
}

// TestActionsGating: only leader-believers propose; only others take over.
func TestActionsGating(t *testing.T) {
	m := New(3, NoBug, Driver{})
	leader := m.Init(0).(*State) // believes leader (L=N1 on node 0)
	acts := m.Actions(0, leader)
	if len(acts) != 1 {
		t.Fatalf("leader actions: %v", acts)
	}
	if _, ok := acts[0].(ProposeValue); !ok {
		t.Fatalf("leader's action is %T", acts[0])
	}
	follower := m.Init(1).(*State)
	acts = m.Actions(1, follower)
	if len(acts) != 1 {
		t.Fatalf("follower actions: %v", acts)
	}
	if _, ok := acts[0].(BecomeLeader); !ok {
		t.Fatalf("follower's action is %T", acts[0])
	}
}

// TestNextIndexSkipsChosen: leaders move past decided indexes.
func TestNextIndexSkipsChosen(t *testing.T) {
	m := New(3, NoBug, Driver{})
	st := m.Init(0).(*State)
	if idx, ok := m.nextIndex(st); !ok || idx != 0 {
		t.Fatalf("fresh leader should start the log: %d %v", idx, ok)
	}
	st.Chosen[0] = 3
	if _, ok := m.nextIndex(st); ok {
		t.Fatal("no unfinished business should yield no proposal")
	}
	st.Accepted[1] = acceptedVal{Epoch: 0, Value: 2}
	if idx, ok := m.nextIndex(st); !ok || idx != 1 {
		t.Fatalf("accepted-but-unchosen index not targeted: %d %v", idx, ok)
	}
}

// TestUnknownMessageAsserted: foreign messages are local assertions.
func TestUnknownMessageAsserted(t *testing.T) {
	m := New(3, NoBug, Driver{})
	stray := paxos.Prepare{} // zero-layer paxos message, not the util layer
	if next, _ := m.HandleMessage(0, m.Init(0), stray); next != nil {
		t.Fatal("stray message accepted")
	}
}

// TestStateCloneEncodeAgree: clones encode identically and independently.
func TestStateCloneEncodeAgree(t *testing.T) {
	m := New(3, NoBug, Driver{})
	live, err := PaperLiveState(m)
	if err != nil {
		t.Fatal(err)
	}
	for n, s := range live {
		c := s.Clone()
		if model.StateFingerprint(c) != model.StateFingerprint(s) {
			t.Fatalf("node %d clone fingerprint differs", n)
		}
		c.(*State).Chosen[77] = 1
		if model.StateFingerprint(c) == model.StateFingerprint(s) {
			t.Fatalf("node %d clone aliases original", n)
		}
	}
}
