package onepaxos

import (
	"testing"

	"lmc/internal/model"
	"lmc/internal/testkit"
)

// BuildPaperLiveState wraps PaperLiveState for tests.
func BuildPaperLiveState(t testing.TB, m *Machine) model.SystemState {
	t.Helper()
	sys, err := PaperLiveState(m)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestLiveScenarios checks the scripted §5.6 live run against both
// variants: the buggy one leaves N1 with acceptor == leader == N1, the
// correct one with acceptor N2.
func TestLiveScenarios(t *testing.T) {
	for _, bug := range []BugKind{NoBug, PlusPlusBug} {
		m := New(3, bug, Driver{})
		sys := BuildPaperLiveState(t, m)
		n1 := sys[0].(*State)
		wantAcceptor := model.NodeID(1)
		if bug == PlusPlusBug {
			wantAcceptor = 0
		}
		if n1.Acceptor != wantAcceptor {
			t.Errorf("%v: N1 acceptor = %v, want %v", bug, n1.Acceptor, wantAcceptor)
		}
	}
}

// TestSeparationInvariant: the ++ bug makes leader == acceptor in the very
// first state, violating the node-local separation property.
func TestSeparationInvariant(t *testing.T) {
	inv := Separation()
	buggy := New(3, PlusPlusBug, Driver{})
	if msg := inv.CheckNode(0, buggy.Init(0)); msg == "" {
		t.Errorf("buggy init does not violate separation")
	}
	correct := New(3, NoBug, Driver{})
	if msg := inv.CheckNode(0, correct.Init(0)); msg != "" {
		t.Errorf("correct init violates separation: %s", msg)
	}
}

// TestNormalOperation drives a full, loss-free decision through the single
// acceptor: the initial leader proposes and every node chooses.
func TestNormalOperation(t *testing.T) {
	m := New(3, NoBug, Driver{})
	h := testkit.New(m)
	if err := h.Act(ProposeValue{On: 0, Index: 0, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.Settle(1000); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		st := h.State(model.NodeID(n)).(*State)
		if v, ok := st.HasChosen(0); !ok || v != 1 {
			t.Fatalf("node %d did not choose 1: %s", n, st.String())
		}
	}
}
