package stats

import (
	"sync"
	"testing"
)

// TestMemProbeConcurrent: the probe must be usable from many goroutines at
// once — heartbeat snapshots sample mid-run while exploration workers are
// allocating, and an online harness may re-baseline between checker
// restarts while an expvar scraper still samples the previous run. Run
// under -race (the CI race job covers internal/...), this fails on any
// unsynchronized access to the baseline.
func TestMemProbeConcurrent(t *testing.T) {
	var p MemProbe
	p.Baseline()

	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	sink := make([]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if g == 0 && i%50 == 0 {
					p.Baseline()
				}
				sink[g] += p.Sample() & 1
				// Churn the heap so samples actually move.
				buf := make([]byte, 1024)
				sink[g] += uint64(buf[0])
			}
		}(g)
	}
	wg.Wait()
}

// TestMemProbeGrowthVisible: a large live allocation is visible to a
// mid-run Sample without any GC in between (the cheap-sampling contract the
// heartbeat relies on).
func TestMemProbeGrowthVisible(t *testing.T) {
	var p MemProbe
	p.Baseline()
	block := make([]int64, 1<<20) // 8 MiB live
	for i := range block {
		block[i] = int64(i)
	}
	got := p.Sample()
	if got < 4<<20 {
		t.Fatalf("8 MiB live allocation invisible to Sample: %d bytes", got)
	}
	_ = block[len(block)-1]
}
