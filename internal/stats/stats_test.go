package stats

import (
	"strings"
	"testing"
	"time"
)

// TestAvgSoundnessCall guards the division.
func TestAvgSoundnessCall(t *testing.T) {
	var c Counters
	if c.AvgSoundnessCall() != 0 {
		t.Fatal("zero calls should average zero")
	}
	c.SoundnessCalls = 4
	c.SoundnessTime = 400 * time.Millisecond
	if c.AvgSoundnessCall() != 100*time.Millisecond {
		t.Fatalf("avg = %v", c.AvgSoundnessCall())
	}
}

// TestCountersString mentions the headline quantities.
func TestCountersString(t *testing.T) {
	c := Counters{Transitions: 42, NodeStates: 7, ConfirmedBugs: 1}
	s := c.String()
	for _, want := range []string{"transitions=42", "nodeStates=7", "confirmedBugs=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
}

// TestSeriesOrdering: points come back sorted by depth, later samples at a
// depth overwrite earlier ones.
func TestSeriesOrdering(t *testing.T) {
	se := NewSeries()
	se.Record(Sample{Depth: 5, Transitions: 50})
	se.Record(Sample{Depth: 1, Transitions: 10})
	se.Record(Sample{Depth: 5, Transitions: 55})
	pts := se.Points()
	if len(pts) != 2 || se.Len() != 2 {
		t.Fatalf("len=%d", len(pts))
	}
	if pts[0].Depth != 1 || pts[1].Depth != 5 {
		t.Fatalf("order wrong: %+v", pts)
	}
	if pts[1].Transitions != 55 {
		t.Fatal("later sample did not overwrite")
	}
}

// TestSeriesZeroValue: Record on a zero-constructed Series must not panic.
func TestSeriesZeroValue(t *testing.T) {
	var se Series
	se.Record(Sample{Depth: 1})
	if se.Len() != 1 {
		t.Fatal("zero-value series broken")
	}
}

// TestMemProbe: allocations after Baseline show up in Sample.
func TestMemProbe(t *testing.T) {
	var p MemProbe
	p.Baseline()
	sink = make([]byte, 8<<20)
	if got := p.Sample(); got < 4<<20 {
		t.Fatalf("8 MB allocation invisible: %d", got)
	}
	sink = nil
	if p.SamplePrecise() > 6<<20 {
		t.Fatal("freed allocation still dominates after GC")
	}
}

var sink []byte

// TestStopwatch measures something monotone.
func TestStopwatch(t *testing.T) {
	var sw Stopwatch
	sw.Start()
	if sw.Elapsed() < 0 {
		t.Fatal("negative elapsed")
	}
}
