// Package stats provides the accounting both checkers report: transition,
// state and system-state counters, soundness-verification tallies, per-depth
// progress samples for the paper's figures, and heap-growth measurement.
package stats

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counters accumulates the quantities §5 of the paper reports.
type Counters struct {
	// Transitions is the number of handler executions performed by the
	// checker (§5.1 compares 157,332 for B-DFS against 1,186 for LMC).
	Transitions int
	// NodeStates is the number of distinct node local states visited
	// ("LMC-local" in Figure 11). The global checker leaves it zero.
	NodeStates int
	// GlobalStates is the number of distinct global states visited by the
	// baseline checker. LMC leaves it zero.
	GlobalStates int
	// SystemStates is the number of system states materialized for
	// invariant checking (the "-system" series of Figure 11).
	SystemStates int
	// InvariantChecks counts invariant evaluations on system states.
	InvariantChecks int
	// PreliminaryViolations counts invariant violations before soundness
	// verification (valid or not).
	PreliminaryViolations int
	// SoundnessCalls counts invocations of the soundness-verification
	// module (isStateSound). §5.4 reports 773 for the buggy-Paxos run.
	SoundnessCalls int
	// SequencesChecked counts event-sequence combinations examined by
	// soundness verification (§5.4 reports 427,731).
	SequencesChecked int
	// SoundnessTime is the total wall time spent in soundness verification.
	SoundnessTime time.Duration
	// SystemStateTime is the total wall time spent materializing system
	// states and checking invariants on them.
	SystemStateTime time.Duration
	// ShardWaitTime is the wall time a sharded run's coordinator spent
	// blocked on worker-process frames (collecting delivery records and
	// end-of-round digests). Zero outside sharded runs; excluded from
	// determinism comparisons like the other wall-clock fields.
	ShardWaitTime time.Duration
	// ConfirmedBugs counts violations that passed soundness verification.
	ConfirmedBugs int
	// CoverIndexHits / CoverIndexMisses count coverage queries answered by
	// the producer index during witness searches: a hit found a visible
	// producer for the queried message fingerprint, a miss found none.
	CoverIndexHits   int
	CoverIndexMisses int
	// WitnessSkips counts candidate-pair walks skipped by the epoch-gated
	// witness outcome cache (their recorded refutation evidence still held).
	WitnessSkips int
	// SymmetrySkips counts system-state combinations skipped by the symmetry
	// reduction: non-canonical arrangements whose canonical representative
	// is covered (GEN enumeration) and witness-walk combinations whose
	// canonical twin was already invariant-clean (OPT).
	SymmetrySkips int
	// OrbitChecks counts the arrangements re-expanded and invariant-checked
	// by the fixpoint orbit sweep (the completion half of the symmetry skip).
	OrbitChecks int
	// PORPathsDeduped counts per-node paths dropped by the partial-order
	// reduction's flow-signature dedupe before the interleaving odometer.
	PORPathsDeduped int
	// PORDetached counts combination members the partial-order reduction
	// validated outside the interleaving odometer (their generated messages
	// feed no other member, so their delivery orders commute).
	PORDetached int
	// Rejections counts handler executions rejected by local assertions
	// (handlers returning a nil state).
	Rejections int
	// DuplicatesDropped counts messages refused by the duplicate limit.
	DuplicatesDropped int
	// MaxDepth is the deepest exploration point reached (event-sequence
	// length; for LMC, the largest total system-state depth).
	MaxDepth int
	// Elapsed is the wall time of the whole run.
	Elapsed time.Duration
}

// AvgSoundnessCall is the mean wall time per soundness-verification call.
func (c *Counters) AvgSoundnessCall() time.Duration {
	if c.SoundnessCalls == 0 {
		return 0
	}
	return c.SoundnessTime / time.Duration(c.SoundnessCalls)
}

// String renders the counters as a compact multi-line report.
func (c *Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transitions=%d nodeStates=%d globalStates=%d systemStates=%d\n",
		c.Transitions, c.NodeStates, c.GlobalStates, c.SystemStates)
	fmt.Fprintf(&b, "invariantChecks=%d prelimViolations=%d soundnessCalls=%d sequencesChecked=%d confirmedBugs=%d\n",
		c.InvariantChecks, c.PreliminaryViolations, c.SoundnessCalls, c.SequencesChecked, c.ConfirmedBugs)
	fmt.Fprintf(&b, "coverIndexHits=%d coverIndexMisses=%d witnessSkips=%d\n",
		c.CoverIndexHits, c.CoverIndexMisses, c.WitnessSkips)
	fmt.Fprintf(&b, "symmetrySkips=%d orbitChecks=%d porPathsDeduped=%d porDetached=%d\n",
		c.SymmetrySkips, c.OrbitChecks, c.PORPathsDeduped, c.PORDetached)
	fmt.Fprintf(&b, "rejections=%d dupDropped=%d maxDepth=%d elapsed=%v soundnessTime=%v systemStateTime=%v",
		c.Rejections, c.DuplicatesDropped, c.MaxDepth, c.Elapsed.Round(time.Microsecond),
		c.SoundnessTime.Round(time.Microsecond), c.SystemStateTime.Round(time.Microsecond))
	if c.ShardWaitTime > 0 {
		fmt.Fprintf(&b, " shardWait=%v", c.ShardWaitTime.Round(time.Microsecond))
	}
	return b.String()
}

// Sample is one point of a per-depth progress series, the raw material of
// Figures 10–13.
type Sample struct {
	Depth        int
	Elapsed      time.Duration
	Transitions  int
	NodeStates   int
	GlobalStates int
	SystemStates int
	// HeapBytes is the heap growth since the run started, sampled when the
	// checker first reached this depth.
	HeapBytes uint64
}

// Series collects per-depth samples keyed by depth; each depth keeps the
// values observed when the checker finished exploring that depth.
type Series struct {
	byDepth map[int]Sample
}

// NewSeries returns an empty series.
func NewSeries() *Series { return &Series{byDepth: make(map[int]Sample)} }

// Record stores s for its depth, overwriting an earlier sample at the same
// depth (later samples reflect completed exploration of the depth).
func (se *Series) Record(s Sample) {
	if se.byDepth == nil {
		se.byDepth = make(map[int]Sample)
	}
	se.byDepth[s.Depth] = s
}

// Points returns the samples in ascending depth order.
func (se *Series) Points() []Sample {
	out := make([]Sample, 0, len(se.byDepth))
	for _, s := range se.byDepth {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Depth < out[j].Depth })
	return out
}

// Len is the number of recorded depths.
func (se *Series) Len() int { return len(se.byDepth) }

// MemProbe measures heap growth relative to a baseline, the way Figure 12
// reports "increased memory size". Call Baseline once before the run, then
// Sample at measurement points.
//
// The probe is re-entrant and data-race-free: the baseline is an atomic,
// and Sample reads the heap through runtime/metrics — which takes no
// stop-the-world pause, unlike runtime.ReadMemStats — so periodic heartbeat
// snapshots can sample mid-run, concurrently with exploration workers
// (Options.Workers > 1) and with other samplers, without perturbing the run
// they are observing.
type MemProbe struct {
	base atomic.Uint64
}

// heapInUse reads the live heap-object bytes without stopping the world.
func heapInUse() uint64 {
	var s [1]metrics.Sample
	s[0].Name = "/memory/classes/heap/objects:bytes"
	metrics.Read(s[:])
	if s[0].Value.Kind() == metrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	// Metric unavailable (a future runtime renamed it): fall back to the
	// stop-the-world reader rather than reporting garbage.
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// Baseline garbage-collects and records the current heap allocation.
func (p *MemProbe) Baseline() {
	runtime.GC()
	p.base.Store(heapInUse())
}

// Sample returns the heap growth since Baseline, clamped at zero. It does
// not force a GC — sampling is frequent and must stay cheap — so values are
// an upper estimate, as in the paper's coarse MB-scale plot.
func (p *MemProbe) Sample() uint64 {
	cur := heapInUse()
	base := p.base.Load()
	if cur < base {
		return 0
	}
	return cur - base
}

// SamplePrecise forces a GC first, for end-of-run measurements.
func (p *MemProbe) SamplePrecise() uint64 {
	runtime.GC()
	return p.Sample()
}

// Stopwatch measures elapsed wall time with a fixed start.
type Stopwatch struct {
	start time.Time
}

// Start resets the stopwatch to now.
func (s *Stopwatch) Start() { s.start = time.Now() }

// Elapsed reports time since Start.
func (s *Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }
