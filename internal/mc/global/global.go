// Package global implements the classic global model-checking baseline the
// paper compares against (§3.2): a bounded search over global states
// (L, I) — the tuple of node local states plus the multiset of in-flight
// messages — with duplicate detection on hashed global states and invariant
// checking on every traversed state. The search order is pluggable: B-DFS
// (the paper's baseline) or BFS (which yields the cumulative per-depth
// series of Figures 10–12 in a single run).
package global

import (
	"context"
	"errors"
	"time"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/netstate"
	"lmc/internal/obs"
	"lmc/internal/spec"
	"lmc/internal/stats"
	"lmc/internal/trace"
)

// Strategy selects the worklist discipline.
type Strategy int

const (
	// DFS explores depth-first with a depth bound: the paper's B-DFS.
	DFS Strategy = iota
	// BFS explores breadth-first; depths complete in order, so one run
	// produces the whole cumulative-by-depth series.
	BFS
)

// String names the strategy.
func (s Strategy) String() string {
	if s == DFS {
		return "B-DFS"
	}
	return "BFS"
}

// Options configures a run.
type Options struct {
	// Invariant is checked on the system part of every traversed global
	// state. Required.
	Invariant spec.Invariant
	// Strategy is DFS (default) or BFS.
	Strategy Strategy
	// InitialMessages seeds the in-flight network of the root global state,
	// for callers that capture in-flight messages along with the live state
	// — the counterpart of the local checker's Options.InitialMessages, so
	// both checkers can be pointed at an identical start configuration.
	InitialMessages []model.Message
	// MaxDepth bounds the event depth; 0 means unbounded.
	MaxDepth int
	// MaxTransitions bounds handler executions; 0 means unbounded.
	MaxTransitions int
	// Budget bounds wall time; 0 means unbounded.
	Budget time.Duration
	// StopAtFirstBug ends the search at the first violation.
	StopAtFirstBug bool
	// RecordSeries collects per-depth progress samples (Figures 10–12).
	RecordSeries bool
	// Observer receives run events: run start/end, one round-end per
	// completed BFS depth level, every violation, and periodic heartbeats.
	// The global search is single-goroutine, so events are emitted inline;
	// nil costs one branch per site.
	Observer obs.Observer
	// HeartbeatEvery is the interval between heartbeat events. Zero means
	// one second when Observer is set; negative disables heartbeats. The
	// wall clock is consulted only every few hundred expansions, so the
	// effective period is approximate.
	HeartbeatEvery time.Duration
}

// Validate reports whether the options describe a runnable search. It is
// the error-returning form of the invariant check Check enforces by panic.
func (o *Options) Validate() error {
	if o.Invariant == nil {
		return errors.New("global: Options.Invariant is required")
	}
	if o.Strategy != DFS && o.Strategy != BFS {
		return errors.New("global: Options.Strategy must be DFS or BFS")
	}
	if o.MaxDepth < 0 {
		return errors.New("global: Options.MaxDepth must be >= 0 (0 means unbounded)")
	}
	if o.MaxTransitions < 0 {
		return errors.New("global: Options.MaxTransitions must be >= 0 (0 means unbounded)")
	}
	if o.Budget < 0 {
		return errors.New("global: Options.Budget must be >= 0 (0 means unbounded)")
	}
	return nil
}

// Bug is a violation found by the global checker. Global search is sound by
// construction, so every Bug is realizable; Schedule is the event path from
// the start state that realizes it.
type Bug struct {
	Violation *spec.Violation
	Schedule  trace.Schedule
}

// Result reports a finished run.
type Result struct {
	Stats  stats.Counters
	Series *stats.Series
	Bugs   []Bug
	// Complete is true when the search exhausted the reachable state space
	// within MaxDepth before hitting any transition/time bound.
	Complete bool
	// StopReason says why the run ended: StopFixpoint for an exhausted
	// space, otherwise the bound or cancellation that cut it off.
	StopReason obs.StopReason
}

// node is one traversed global state, kept for path reconstruction.
type node struct {
	sys    model.SystemState
	net    *netstate.Multiset
	depth  int
	parent int // index into the arena; -1 for the root
	via    model.Event
}

// Check explores the global state space of machine m from the given start
// system state (with an empty in-flight network) under opt. It panics on
// invalid options; CheckContext returns the validation error instead.
func Check(m model.Machine, start model.SystemState, opt Options) *Result {
	if err := opt.Validate(); err != nil {
		panic(err.Error())
	}
	return run(context.Background(), m, start, opt)
}

// CheckContext is Check with option validation surfaced as an error and
// cooperative cancellation. The context is polled once per worklist
// iteration; a cancelled run returns its partial Result with
// Complete=false and StopReason=StopCancelled, not an error.
func CheckContext(ctx context.Context, m model.Machine, start model.SystemState, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return run(ctx, m, start, opt), nil
}

func run(ctx context.Context, m model.Machine, start model.SystemState, opt Options) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	res := &Result{Complete: true, StopReason: obs.StopFixpoint}
	if opt.RecordSeries {
		res.Series = stats.NewSeries()
	}
	var probe stats.MemProbe
	probe.Baseline()
	begin := time.Now()

	// Inline emission: the global search is single-goroutine, so there is no
	// hot parallel path to keep events out of; a nil observer reduces every
	// site to one branch.
	o := opt.Observer
	emit := func(ev obs.Event) {
		if o == nil {
			return
		}
		ev.Checker = "global"
		ev.Elapsed = time.Since(begin)
		o.OnEvent(ev)
	}
	beat := opt.HeartbeatEvery
	if o == nil || beat < 0 {
		beat = 0
	} else if beat == 0 {
		beat = time.Second
	}
	nextBeat := beat
	heartbeat := func(el time.Duration) {
		cur := res.Stats
		cur.Elapsed = el
		emit(obs.Event{
			Kind:      obs.KindHeartbeat,
			Counters:  cur,
			HeapBytes: probe.Sample(),
			Phases:    obs.Attribution(&cur, el),
		})
	}
	finish := func() *Result {
		res.Stats.Elapsed = time.Since(begin)
		cur := res.Stats
		emit(obs.Event{
			Kind:     obs.KindRunEnd,
			Reason:   res.StopReason,
			Depth:    cur.MaxDepth,
			Counters: cur,
			Phases:   obs.Attribution(&cur, cur.Elapsed),
		})
		return res
	}
	emit(obs.Event{Kind: obs.KindRunStart})

	arena := make([]node, 0, 1024)
	rootNet := netstate.NewMultiset()
	rootNet.AddAll(opt.InitialMessages)
	root := node{sys: start.Clone(), net: rootNet, depth: 0, parent: -1}
	arena = append(arena, root)

	// visited maps global fingerprint → best (smallest) depth seen. With a
	// depth bound, a state re-reached at a strictly smaller depth must be
	// re-expanded or bounded DFS would be incomplete.
	visited := map[codec.Fingerprint]int{globalFP(root.sys, root.net): 0}
	res.Stats.GlobalStates = 1
	res.Stats.InvariantChecks++
	if v := opt.Invariant.Check(root.sys); v != nil {
		res.Stats.PreliminaryViolations++
		res.Stats.ConfirmedBugs++
		res.Bugs = append(res.Bugs, Bug{Violation: v})
		emit(obs.Event{Kind: obs.KindViolation, Invariant: v.Invariant, Detail: v.Detail})
		if opt.StopAtFirstBug {
			// The root state is the whole explored space here, so Complete
			// keeps its seed semantics (true).
			res.StopReason = obs.StopFirstBug
			return finish()
		}
	}

	work := []int{0} // indexes into arena
	lastLevel := 0
	record := func(depth int) {
		if res.Series == nil {
			return
		}
		res.Series.Record(stats.Sample{
			Depth:        depth,
			Elapsed:      time.Since(begin),
			Transitions:  res.Stats.Transitions,
			GlobalStates: res.Stats.GlobalStates,
			HeapBytes:    probe.Sample(),
		})
	}

	deadline := time.Time{}
	if opt.Budget > 0 {
		deadline = begin.Add(opt.Budget)
	}

	for len(work) > 0 {
		if ctx.Err() != nil {
			res.Complete = false
			res.StopReason = obs.StopCancelled
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Complete = false
			res.StopReason = obs.StopBudget
			break
		}
		if opt.MaxTransitions > 0 && res.Stats.Transitions >= opt.MaxTransitions {
			res.Complete = false
			res.StopReason = obs.StopTransitions
			break
		}
		if beat > 0 {
			if el := time.Since(begin); el >= nextBeat {
				heartbeat(el)
				nextBeat = el + beat
			}
		}

		var cur int
		if opt.Strategy == BFS {
			cur = work[0]
			work = work[1:]
		} else {
			cur = work[len(work)-1]
			work = work[:len(work)-1]
		}
		n := &arena[cur]
		if n.depth > res.Stats.MaxDepth {
			res.Stats.MaxDepth = n.depth
		}
		if opt.Strategy == BFS && n.depth > lastLevel {
			// All states of depth lastLevel are fully expanded: the global
			// checker's analogue of a round barrier.
			record(lastLevel)
			emit(obs.Event{
				Kind:  obs.KindRoundEnd,
				Round: lastLevel,
				Depth: lastLevel,
				Count: res.Stats.GlobalStates,
			})
			lastLevel = n.depth
		}
		if opt.MaxDepth > 0 && n.depth >= opt.MaxDepth {
			continue
		}

		for _, ev := range enabledEvents(m, n.sys, n.net) {
			next, emitted := ev.Apply(m, n.sys[ev.Node])
			res.Stats.Transitions++
			if next == nil {
				res.Stats.Rejections++
				continue
			}
			sys2 := make(model.SystemState, len(n.sys))
			copy(sys2, n.sys)
			sys2[ev.Node] = next
			net2 := n.net.Clone()
			if ev.Kind == model.NetworkEvent {
				net2.Remove(model.MessageFingerprint(ev.Msg))
			}
			net2.AddAll(emitted)

			fp := globalFP(sys2, net2)
			d2 := n.depth + 1
			if best, seen := visited[fp]; seen && best <= d2 {
				continue
			}
			visited[fp] = d2
			res.Stats.GlobalStates = len(visited)
			arena = append(arena, node{sys: sys2, net: net2, depth: d2, parent: cur, via: ev})
			idx := len(arena) - 1

			res.Stats.InvariantChecks++
			if v := opt.Invariant.Check(sys2); v != nil {
				res.Stats.PreliminaryViolations++
				res.Stats.ConfirmedBugs++
				res.Bugs = append(res.Bugs, Bug{Violation: v, Schedule: pathTo(arena, idx)})
				emit(obs.Event{Kind: obs.KindViolation, Invariant: v.Invariant, Detail: v.Detail, Depth: d2})
				if opt.StopAtFirstBug {
					if d2 > res.Stats.MaxDepth {
						res.Stats.MaxDepth = d2
					}
					res.Complete = false
					res.StopReason = obs.StopFirstBug
					return finish()
				}
			}
			work = append(work, idx)
		}
	}

	if opt.Strategy == BFS {
		record(lastLevel)
		emit(obs.Event{
			Kind:  obs.KindRoundEnd,
			Round: lastLevel,
			Depth: lastLevel,
			Count: res.Stats.GlobalStates,
		})
	}
	return finish()
}

// enabledEvents enumerates the transitions enabled at a global state: one
// delivery event per distinct in-flight message (copies are equivalent) and
// every enabled internal action of every node.
func enabledEvents(m model.Machine, sys model.SystemState, net *netstate.Multiset) []model.Event {
	var evs []model.Event
	for _, inf := range net.Messages() {
		evs = append(evs, model.RecvEvent(inf.Msg))
	}
	for i, s := range sys {
		for _, a := range m.Actions(model.NodeID(i), s) {
			evs = append(evs, model.ActEvent(a))
		}
	}
	return evs
}

// pathTo reconstructs the event schedule from the root to arena[idx].
func pathTo(arena []node, idx int) trace.Schedule {
	var rev []model.Event
	for idx >= 0 && arena[idx].parent >= 0 {
		rev = append(rev, arena[idx].via)
		idx = arena[idx].parent
	}
	sc := make(trace.Schedule, len(rev))
	for i := range rev {
		sc[i] = rev[len(rev)-1-i]
	}
	return sc
}

// globalFP hashes the full global state: system part plus network part.
func globalFP(sys model.SystemState, net *netstate.Multiset) codec.Fingerprint {
	return codec.Combine(sys.Fingerprint(), net.Fingerprint())
}
