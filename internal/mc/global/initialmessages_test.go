package global_test

import (
	"testing"

	"lmc/internal/mc/global"
	"lmc/internal/model"
	"lmc/internal/protocols/tree"
	"lmc/internal/spec"
	"lmc/internal/testkit"
)

// noForward fires as soon as any node has forwarded — from a mid-run
// checkpoint this is reachable only by delivering a seeded message.
func noForward() spec.Invariant {
	return spec.InvariantFunc{
		InvName: "no-forward",
		Fn: func(ss model.SystemState) *spec.Violation {
			for n, s := range ss {
				if s.(*tree.State).Forwarded {
					return spec.Violate("no-forward", ss, "node %d forwarded", n)
				}
			}
			return nil
		},
	}
}

// TestInitialMessagesSeedRootNetwork: Options.InitialMessages makes the
// checker resume from a checkpoint (snapshot + in-flight set) instead of
// treating the snapshot as a quiescent world.
func TestInitialMessagesSeedRootNetwork(t *testing.T) {
	m := tree.NewPaperTree()
	h := testkit.New(m)
	if err := h.Act(tree.Initiate{Root: 0}); err != nil {
		t.Fatal(err)
	}
	snap, inflight := h.Snapshot(), h.InFlight()
	if len(inflight) == 0 {
		t.Fatal("checkpoint has no in-flight messages")
	}

	// Without the seeds the checkpoint is quiescent: the root has already
	// acted and no message exists, so exploration stops at the root state.
	dry := global.Check(m, snap, global.Options{Invariant: noForward()})
	if !dry.Complete {
		t.Fatal("quiescent exploration did not complete")
	}
	if len(dry.Bugs) != 0 {
		t.Fatalf("quiescent exploration found %d bugs", len(dry.Bugs))
	}
	if dry.Stats.GlobalStates != 1 {
		t.Fatalf("quiescent exploration visited %d states, want 1", dry.Stats.GlobalStates)
	}

	// With the seeds the in-flight messages are deliverable and the
	// violation becomes reachable in one step.
	res := global.Check(m, snap, global.Options{
		Invariant:       noForward(),
		InitialMessages: inflight,
	})
	if len(res.Bugs) == 0 {
		t.Fatal("seeded exploration missed the violation")
	}
	if res.Stats.GlobalStates <= dry.Stats.GlobalStates {
		t.Fatalf("seeding did not grow the explored space: %d states", res.Stats.GlobalStates)
	}

	// Every witness must replay from the same checkpoint — snapshot plus
	// seeds — to exactly the claimed violating state.
	for i, b := range res.Bugs {
		final, err := testkit.Replay(m, snap, inflight, b.Schedule)
		if err != nil {
			t.Fatalf("bug %d: schedule does not replay from the checkpoint: %v", i, err)
		}
		if final.Fingerprint() != b.Violation.System.Fingerprint() {
			t.Fatalf("bug %d: replay reached %s, report claims %s",
				i, final.Fingerprint(), b.Violation.System.Fingerprint())
		}
		if noForward().Check(final) == nil {
			t.Fatalf("bug %d: replayed state does not violate the invariant", i)
		}
	}
}

// TestInitialMessagesDeterministic: seeding must not disturb determinism —
// two identical seeded runs produce identical statistics and reports.
func TestInitialMessagesDeterministic(t *testing.T) {
	m := tree.NewPaperTree()
	h := testkit.New(m)
	if err := h.Act(tree.Initiate{Root: 0}); err != nil {
		t.Fatal(err)
	}
	snap, inflight := h.Snapshot(), h.InFlight()

	opt := global.Options{Invariant: m.CausalityInvariant(), InitialMessages: inflight}
	a := global.Check(m, snap, opt)
	b := global.Check(m, snap, opt)
	a.Stats.Elapsed, b.Stats.Elapsed = 0, 0
	if a.Stats != b.Stats {
		t.Fatalf("seeded runs diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	if len(a.Bugs) != len(b.Bugs) {
		t.Fatalf("seeded runs found %d vs %d bugs", len(a.Bugs), len(b.Bugs))
	}
}
