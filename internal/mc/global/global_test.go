package global_test

import (
	"testing"
	"time"

	"lmc/internal/mc/global"
	"lmc/internal/model"
	"lmc/internal/protocols/tree"
	"lmc/internal/protocols/twophase"
	"lmc/internal/spec"
	"lmc/internal/trace"
)

func treeSetup() (model.Machine, spec.Invariant, model.SystemState) {
	m := tree.NewPaperTree()
	return m, m.CausalityInvariant(), model.InitialSystem(m)
}

// TestDFSAndBFSAgree: both strategies visit the same reachable set.
func TestDFSAndBFSAgree(t *testing.T) {
	m, inv, start := treeSetup()
	dfs := global.Check(m, start, global.Options{Invariant: inv, Strategy: global.DFS})
	bfs := global.Check(m, start, global.Options{Invariant: inv, Strategy: global.BFS})
	if !dfs.Complete || !bfs.Complete {
		t.Fatal("incomplete exploration")
	}
	if dfs.Stats.GlobalStates != bfs.Stats.GlobalStates {
		t.Fatalf("state counts differ: dfs=%d bfs=%d",
			dfs.Stats.GlobalStates, bfs.Stats.GlobalStates)
	}
	if dfs.Stats.Transitions != bfs.Stats.Transitions {
		t.Fatalf("transition counts differ: dfs=%d bfs=%d",
			dfs.Stats.Transitions, bfs.Stats.Transitions)
	}
}

// TestDepthBound: bounding the depth prunes the space monotonically.
func TestDepthBound(t *testing.T) {
	m, inv, start := treeSetup()
	prev := 0
	for d := 1; d <= 5; d++ {
		res := global.Check(m, start, global.Options{Invariant: inv, MaxDepth: d})
		if res.Stats.GlobalStates < prev {
			t.Fatalf("state count shrank at depth %d", d)
		}
		if res.Stats.MaxDepth > d {
			t.Fatalf("depth bound %d exceeded: %d", d, res.Stats.MaxDepth)
		}
		prev = res.Stats.GlobalStates
	}
	full := global.Check(m, start, global.Options{Invariant: inv})
	if prev != full.Stats.GlobalStates {
		t.Fatalf("depth-5 exploration (%d) misses states of the full run (%d)",
			prev, full.Stats.GlobalStates)
	}
}

// TestBugWithSchedule: the checker's witness replays and violates.
func TestBugWithSchedule(t *testing.T) {
	m := twophase.New(4, twophase.MajorityBug, 2)
	inv := twophase.Atomicity()
	start := model.InitialSystem(m)
	res := global.Check(m, start, global.Options{
		Invariant:      inv,
		StopAtFirstBug: true,
		Budget:         30 * time.Second,
	})
	if len(res.Bugs) == 0 {
		t.Fatal("bug not found")
	}
	bug := res.Bugs[0]
	rr := trace.Replay(m, start, bug.Schedule)
	if rr.Err != nil {
		t.Fatalf("global witness does not replay: %v", rr.Err)
	}
	if inv.Check(rr.Final) == nil {
		t.Fatal("replayed witness does not violate")
	}
}

// TestTransitionBound stops the search.
func TestTransitionBound(t *testing.T) {
	m, inv, start := treeSetup()
	res := global.Check(m, start, global.Options{Invariant: inv, MaxTransitions: 3})
	if res.Complete {
		t.Fatal("bounded run claims completeness")
	}
	if res.Stats.Transitions > 3 {
		t.Fatalf("transition bound exceeded: %d", res.Stats.Transitions)
	}
}

// TestSeriesMonotone: the BFS per-depth series grows monotonically in both
// depth and cumulative counters.
func TestSeriesMonotone(t *testing.T) {
	m, inv, start := treeSetup()
	res := global.Check(m, start, global.Options{
		Invariant:    inv,
		Strategy:     global.BFS,
		RecordSeries: true,
	})
	pts := res.Series.Points()
	if len(pts) == 0 {
		t.Fatal("no series recorded")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].GlobalStates < pts[i-1].GlobalStates ||
			pts[i].Transitions < pts[i-1].Transitions ||
			pts[i].Elapsed < pts[i-1].Elapsed {
			t.Fatalf("series not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
}

// TestDeterministicCounts: repeated runs agree exactly.
func TestDeterministicCounts(t *testing.T) {
	m, inv, start := treeSetup()
	a := global.Check(m, start, global.Options{Invariant: inv})
	b := global.Check(m, start, global.Options{Invariant: inv})
	if a.Stats.GlobalStates != b.Stats.GlobalStates || a.Stats.Transitions != b.Stats.Transitions {
		t.Fatalf("nondeterministic exploration: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestStrategyString names both.
func TestStrategyString(t *testing.T) {
	if global.DFS.String() != "B-DFS" || global.BFS.String() != "BFS" {
		t.Fatal("strategy names changed")
	}
}
