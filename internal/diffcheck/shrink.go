package diffcheck

// Property is a predicate over scenarios that the shrinker preserves —
// typically "this scenario still produces a disagreement". It must be
// deterministic; the shrinker re-evaluates it on every candidate.
type Property func(Scenario) bool

// Shrink greedily minimizes a scenario while keeping prop true, and returns
// the smallest scenario found. It repeatedly tries, until a full round makes
// no progress: dropping prefix ops (largest reduction first), removing a
// node, lowering the depth and local bounds, zeroing the duplicate limit,
// and trimming the protocol-specific lists (proposers, no-voters). Every
// candidate is validated through Build before prop is consulted, so shrink
// steps that make a scenario ill-formed are skipped rather than reported.
//
// prop(sc) must hold on entry; if it does not, sc is returned unchanged.
func Shrink(sc Scenario, prop Property) Scenario {
	holds := func(c Scenario) bool {
		if _, err := c.Build(); err != nil {
			return false
		}
		return prop(c)
	}
	if !holds(sc) {
		return sc
	}
	for progress := true; progress; {
		progress = false
		for _, cand := range candidates(sc) {
			if holds(cand) {
				sc = cand
				progress = true
				break // restart from the new, smaller scenario
			}
		}
	}
	return sc
}

// candidates enumerates one-step reductions of sc, most aggressive first.
func candidates(sc Scenario) []Scenario {
	var out []Scenario
	add := func(c Scenario) { out = append(out, c) }

	// Halve the prefix, then drop single ops back to front.
	if n := len(sc.Prefix); n > 0 {
		c := sc
		c.Prefix = append([]PrefixOp(nil), sc.Prefix[:n/2]...)
		add(c)
		for i := n - 1; i >= 0; i-- {
			c := sc
			c.Prefix = append(append([]PrefixOp(nil), sc.Prefix[:i]...), sc.Prefix[i+1:]...)
			add(c)
		}
	}
	if sc.Nodes > 1 {
		c := sc
		c.Nodes--
		add(c)
	}
	if sc.Depth > 1 {
		c := sc
		c.Depth--
		add(c)
	}
	if sc.MaxLocalBound > sc.LocalBound {
		c := sc
		c.MaxLocalBound--
		add(c)
	}
	if sc.LocalBound > 1 {
		c := sc
		c.LocalBound--
		if c.MaxLocalBound > 0 && c.MaxLocalBound < c.LocalBound {
			c.MaxLocalBound = c.LocalBound
		}
		add(c)
	}
	if sc.DupLimit > 0 {
		c := sc
		c.DupLimit = 0
		add(c)
	}
	for i := range sc.Proposers {
		c := sc
		c.Proposers = append(append([]int(nil), sc.Proposers[:i]...), sc.Proposers[i+1:]...)
		add(c)
	}
	for i := range sc.NoVoters {
		c := sc
		c.NoVoters = append(append([]int(nil), sc.NoVoters[:i]...), sc.NoVoters[i+1:]...)
		add(c)
	}
	if sc.MaxProposals > 1 {
		c := sc
		c.MaxProposals--
		add(c)
	}
	if sc.MaxTakeovers > 1 {
		c := sc
		c.MaxTakeovers--
		add(c)
	}
	if sc.MaxChildren > 1 {
		c := sc
		c.MaxChildren--
		add(c)
	}
	return out
}
