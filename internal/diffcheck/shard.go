package diffcheck

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"lmc/internal/core"
	"lmc/internal/obs"
	"lmc/internal/shard"
)

// shardSpecPrefix namespaces diffcheck scenarios inside the shard-worker
// spec space: the whole scenario travels as JSON in the spec string, so a
// worker process reconstructs the exact machine, start state (including the
// scripted prefix), and in-flight messages.
const shardSpecPrefix = "diffcheck:"

// ShardSpec encodes a scenario as a shard-workload spec.
func ShardSpec(sc Scenario) (string, error) {
	raw, err := json.Marshal(sc)
	if err != nil {
		return "", fmt.Errorf("encoding scenario: %w", err)
	}
	return shardSpecPrefix + string(raw), nil
}

// ShardResolver resolves "diffcheck:<scenario JSON>" specs by rebuilding
// the scenario exactly the way Run does: Build for the machine, Prepare for
// the post-prefix start state and captured in-flight messages.
func ShardResolver() shard.Resolver {
	return func(spec string) (shard.Workload, error) {
		raw, ok := strings.CutPrefix(spec, shardSpecPrefix)
		if !ok {
			return shard.Workload{}, fmt.Errorf("diffcheck resolver: unknown spec %q", spec)
		}
		var sc Scenario
		if err := json.Unmarshal([]byte(raw), &sc); err != nil {
			return shard.Workload{}, fmt.Errorf("diffcheck resolver: %w", err)
		}
		inst, err := sc.Build()
		if err != nil {
			return shard.Workload{}, err
		}
		start, inflight, err := sc.Prepare(inst)
		if err != nil {
			return shard.Workload{}, err
		}
		return shard.Workload{
			Machine:         inst.Machine,
			Start:           start,
			InitialMessages: inflight,
			Invariant:       inst.Invariant,
		}, nil
	}
}

// ShardParity cross-validates the sharded engine on one scenario: LMC-GEN
// runs in-process and through a shard fleet with the exact options the
// differential uses — except the wall-clock budget, which is lifted because
// a time-based stop is the one nondeterministic cutoff (the deterministic
// transition cap still bounds the run). Any divergence in the deterministic
// counters, the bug list, or completeness is returned as an error, as is a
// degradation (a degraded run silently compares the in-process path against
// itself, which would make the check vacuous).
func ShardParity(sc Scenario, tun Tuning, shards int, spawner shard.Spawner) error {
	inst, err := sc.Build()
	if err != nil {
		return err
	}
	start, inflight, err := sc.Prepare(inst)
	if err != nil {
		return err
	}
	opt := lmcOptions(sc, tun, inst, inflight, false)
	opt.Budget = 0
	base := core.Check(inst.Machine, start, opt)

	spec, err := ShardSpec(sc)
	if err != nil {
		return err
	}
	var degraded string
	opt.Observer = obs.Multi(opt.Observer, obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindShardDegraded {
			degraded = e.Detail
		}
	}))
	res, err := shard.Check(context.Background(), inst.Machine, start, opt, shard.Config{
		Shards:  shards,
		Spawner: spawner,
		Spec:    spec,
	})
	if err != nil {
		return err
	}
	if degraded != "" {
		return fmt.Errorf("sharded run degraded: %s", degraded)
	}

	b, g := base.Stats, res.Stats
	if b.NodeStates != g.NodeStates ||
		b.Transitions != g.Transitions ||
		b.SystemStates != g.SystemStates ||
		b.InvariantChecks != g.InvariantChecks ||
		b.DuplicatesDropped != g.DuplicatesDropped ||
		b.ConfirmedBugs != g.ConfirmedBugs {
		return fmt.Errorf("counters diverged:\nseq:   %s\nshard: %s", b.String(), g.String())
	}
	if base.Complete != res.Complete || base.Suppressed != res.Suppressed {
		return fmt.Errorf("termination diverged: seq complete=%v suppressed=%v, shard complete=%v suppressed=%v",
			base.Complete, base.Suppressed, res.Complete, res.Suppressed)
	}
	if len(base.Bugs) != len(res.Bugs) {
		return fmt.Errorf("bug count diverged: seq=%d shard=%d", len(base.Bugs), len(res.Bugs))
	}
	for i := range base.Bugs {
		if base.Bugs[i].System.Fingerprint() != res.Bugs[i].System.Fingerprint() {
			return fmt.Errorf("bug %d system state diverged", i)
		}
	}
	return nil
}
