package diffcheck

import (
	"encoding/json"
	"flag"
	"reflect"
	"testing"
	"time"

	"lmc/internal/core"
	"lmc/internal/mc/global"
	"lmc/internal/spec"
)

// corpusSeed seeds the deterministic tier-1 corpus. Changing it changes
// which scenarios run, so it is a flag, not an environment lookup: the same
// test binary invocation always checks the same corpus, and a failure log
// names the seed needed to reproduce.
var corpusSeed = flag.Int64("diffcheck.seed", 20260806, "corpus seed for TestCorpusAgreement")

const corpusSize = 60

// corpusTuning caps each checker run inside the corpus: a run that exceeds
// the cap degrades to inconclusive (never a disagreement), so the corpus
// verdict is stable across machines while total runtime stays bounded.
var corpusTuning = Tuning{Budget: 500 * time.Millisecond}

// TestCorpusAgreement is the tier-1 differential corpus: a deterministic set
// of small scenarios over every protocol, each run through the global
// baseline, LMC-GEN and (where a reduction exists) LMC-OPT, with all
// counterexamples replay-validated. Any disagreement is a checker bug.
func TestCorpusAgreement(t *testing.T) {
	seed := *corpusSeed
	t.Logf("corpus seed %d (reproduce: go test ./internal/diffcheck -run TestCorpusAgreement -diffcheck.seed=%d)", seed, seed)
	scenarios := Corpus(seed, corpusSize)
	bugsFound := 0
	for i, sc := range scenarios {
		v, err := Run(sc, corpusTuning)
		if err != nil {
			t.Fatalf("scenario %d (%s): %v\nscenario: %s", i, sc.Name(), err, mustJSON(sc))
		}
		if v.Global.Bugs > 0 {
			bugsFound++
		}
		if !v.Agree() {
			min := Shrink(sc, func(c Scenario) bool {
				mv, merr := Run(c, corpusTuning)
				return merr == nil && !mv.Agree()
			})
			t.Errorf("scenario %d (%s) seed %d: %d disagreement(s):", i, sc.Name(), seed, len(v.Disagreements))
			for _, d := range v.Disagreements {
				t.Errorf("  %s", d)
			}
			t.Errorf("shrunk scenario: %s", mustJSON(min))
		}
	}
	t.Logf("%d scenarios, %d with global-confirmed bugs", len(scenarios), bugsFound)
}

// TestCorpusDeterministic pins generator reproducibility: the same seed must
// yield the same scenarios, and a scenario must prepare to the same start
// configuration every time.
func TestCorpusDeterministic(t *testing.T) {
	a := Corpus(7, 20)
	b := Corpus(7, 20)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Corpus(7, 20) is not deterministic")
	}
	for i, sc := range a {
		inst, err := sc.Build()
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		s1, in1, err1 := sc.Prepare(inst)
		s2, in2, err2 := sc.Prepare(inst)
		if err1 != nil || err2 != nil {
			t.Fatalf("scenario %d prepare: %v / %v", i, err1, err2)
		}
		if s1.Fingerprint() != s2.Fingerprint() || len(in1) != len(in2) {
			t.Fatalf("scenario %d (%s): Prepare is not deterministic", i, sc.Name())
		}
	}
}

// actorCorpusSize keeps the adapter corpus smaller than the main one: each
// scenario runs the real implementation through the interception seam, which
// costs a snapshot/restore cycle per handler execution.
const actorCorpusSize = 16

// TestActorCorpusAgreement is the adapter-backed differential corpus: random
// actordemo configurations checked through actorcheck against the global
// baseline, with witnesses validated by trace replay, testkit replay AND the
// uninstrumented implementation. The main 60-scenario corpus is frozen; this
// corpus is generated separately so it can grow without shifting those draws.
func TestActorCorpusAgreement(t *testing.T) {
	seed := *corpusSeed
	scenarios := ActorCorpus(seed, actorCorpusSize)
	bugsFound := 0
	for i, sc := range scenarios {
		v, err := Run(sc, corpusTuning)
		if err != nil {
			t.Fatalf("scenario %d (%s): %v\nscenario: %s", i, sc.Name(), err, mustJSON(sc))
		}
		if v.Global.Bugs > 0 {
			bugsFound++
		}
		if !v.Agree() {
			min := Shrink(sc, func(c Scenario) bool {
				mv, merr := Run(c, corpusTuning)
				return merr == nil && !mv.Agree()
			})
			t.Errorf("scenario %d (%s) seed %d: %d disagreement(s):", i, sc.Name(), seed, len(v.Disagreements))
			for _, d := range v.Disagreements {
				t.Errorf("  %s", d)
			}
			t.Errorf("shrunk scenario: %s", mustJSON(min))
		}
	}
	t.Logf("%d adapter scenarios, %d with global-confirmed bugs", len(scenarios), bugsFound)
}

// TestActorCorpusDeterministic pins the actor generator the same way
// TestCorpusDeterministic pins the main one.
func TestActorCorpusDeterministic(t *testing.T) {
	a := ActorCorpus(7, 10)
	b := ActorCorpus(7, 10)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ActorCorpus(7, 10) is not deterministic")
	}
	for i, sc := range a {
		inst, err := sc.Build()
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		s1, _, err1 := sc.Prepare(inst)
		s2, _, err2 := sc.Prepare(inst)
		if err1 != nil || err2 != nil {
			t.Fatalf("scenario %d prepare: %v / %v", i, err1, err2)
		}
		if s1.Fingerprint() != s2.Fingerprint() {
			t.Fatalf("scenario %d (%s): Prepare is not deterministic", i, sc.Name())
		}
	}
}

// TestKnownBugsAgree pins one hand-written scenario per buggy protocol
// variant and requires the global checker to confirm the planted bug, LMC to
// agree, and all replays to validate.
func TestKnownBugsAgree(t *testing.T) {
	cases := []Scenario{
		// The paxos §5.5 and onepaxos §5.6 bugs are only reachable from
		// the papers' live states within tractable depth bounds.
		{Protocol: ProtoPaxos, Bug: BugLastResponse, Nodes: 3, Live: true, Depth: 12,
			LocalBound: 1, MaxLocalBound: 4},
		{Protocol: ProtoOnePaxos, Bug: BugPlusPlus, Nodes: 3, Live: true, Depth: 8,
			LocalBound: 1, MaxLocalBound: 4, MaxProposals: 1, MaxTakeovers: 1},
		{Protocol: ProtoRandTree, Bug: BugSelfSibling, Nodes: 4, Depth: 8,
			LocalBound: 1, MaxLocalBound: 4, MaxChildren: 2},
		{Protocol: ProtoTwoPhase, Bug: BugMajority, Nodes: 4, Depth: 10,
			LocalBound: 1, MaxLocalBound: 4, NoVoters: []int{2}},
		// The adapter-backed real implementation: the same majority bug, but
		// found through actorcheck's interception seam, with every witness
		// additionally replayed on the uninstrumented code (KindRawDiverged).
		{Protocol: ProtoActor2PC, Bug: BugMajority, Nodes: 4, Depth: 10,
			LocalBound: 1, MaxLocalBound: 4, NoVoters: []int{2}},
	}
	// On the paxos live state LMC-GEN drowns in Cartesian combination and
	// burns its whole budget without confirming the bug (the §5.4 GEN/OPT
	// gap), so the budget is paid in full every run. It must still cover
	// LMC-OPT's ~1 s time-to-bug under the race detector's ~10x slowdown.
	tun := Tuning{Budget: 20 * time.Second}
	for _, sc := range cases {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			v, err := Run(sc, tun)
			if err != nil {
				t.Fatal(err)
			}
			if v.Global.Bugs == 0 {
				t.Errorf("global checker found no bug in %s (depth %d too small?)", sc.Name(), sc.Depth)
			}
			t.Logf("global: %+v", v.Global)
			t.Logf("GEN:    %+v", v.GEN)
			if v.OPT != nil {
				t.Logf("OPT:    %+v", v.OPT)
			}
			lmcFound := v.GEN.Bugs > 0 || (v.OPT != nil && v.OPT.Bugs > 0)
			if !lmcFound {
				t.Errorf("no LMC strategy found the bug in %s", sc.Name())
			}
			if !v.Agree() {
				for _, d := range v.Disagreements {
					t.Errorf("disagreement: %s", d)
				}
			}
		})
	}
}

// TestCorrectProtocolsQuiet pins that the correct variants stay quiet: no
// checker reports a bug, and the runs still agree.
func TestCorrectProtocolsQuiet(t *testing.T) {
	cases := []Scenario{
		{Protocol: ProtoTree, Nodes: 5, Depth: 12, LocalBound: 1, MaxLocalBound: 4},
		{Protocol: ProtoChain, Nodes: 4, Depth: 10, LocalBound: 1, MaxLocalBound: 4},
		{Protocol: ProtoTwoPhase, Nodes: 3, Depth: 10, LocalBound: 1, MaxLocalBound: 4},
		{Protocol: ProtoActor2PC, Nodes: 3, Depth: 10, LocalBound: 1, MaxLocalBound: 4},
	}
	for _, sc := range cases {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			v, err := Run(sc, Tuning{})
			if err != nil {
				t.Fatal(err)
			}
			if v.Global.Bugs != 0 || v.GEN.Bugs != 0 {
				t.Errorf("correct protocol reported bugs: global=%d gen=%d", v.Global.Bugs, v.GEN.Bugs)
			}
			if !v.Agree() {
				for _, d := range v.Disagreements {
					t.Errorf("disagreement: %s", d)
				}
			}
		})
	}
}

// TestMissedBugGating pins the detector's core rule at the unit level with
// constructed checker results: a global-confirmed bug against an
// empty-handed LMC run is a missed-bug disagreement ONLY when the LMC run
// reached an unsuppressed fixpoint; bounded or suppressed runs degrade to
// inconclusive notes.
func TestMissedBugGating(t *testing.T) {
	sc := Scenario{Protocol: ProtoChain, Nodes: 2, Depth: 4, LocalBound: 1, MaxLocalBound: 2}
	inst, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	start, inflight, err := sc.Prepare(inst)
	if err != nil {
		t.Fatal(err)
	}
	g := &global.Result{Bugs: []global.Bug{{Violation: &spec.Violation{Invariant: "x"}}}}

	cases := []struct {
		name                 string
		complete, suppressed bool
		wantMissed           bool
	}{
		{"unsuppressed-fixpoint", true, false, true},
		{"suppressed-fixpoint", true, true, false},
		{"budget-capped", false, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := &Verdict{Scenario: sc}
			r := &core.Result{Complete: tc.complete, Suppressed: tc.suppressed}
			v.crossCheck(inst, start, inflight, "lmc-gen", r, g)
			missed := false
			for _, d := range v.Disagreements {
				if d.Kind == KindMissedBug {
					missed = true
				}
			}
			if missed != tc.wantMissed {
				t.Errorf("complete=%v suppressed=%v: missed-bug=%v, want %v (disagreements: %v, notes: %v)",
					tc.complete, tc.suppressed, missed, tc.wantMissed, v.Disagreements, v.Inconclusive)
			}
			if !tc.wantMissed && len(v.Inconclusive) == 0 {
				t.Error("gated-out run produced no inconclusive note")
			}
		})
	}
}

// TestUnsoundReportDetected corrupts a real counterexample and checks the
// validator flags it: a truncated schedule replays fine but must fail the
// claimed-fingerprint and claimed-violation checks.
func TestUnsoundReportDetected(t *testing.T) {
	sc := Scenario{Protocol: ProtoTwoPhase, Bug: BugMajority, Nodes: 4, Depth: 10,
		LocalBound: 1, MaxLocalBound: 4, NoVoters: []int{2}}
	inst, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	start, inflight, err := sc.Prepare(inst)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Check(inst.Machine, start, lmcOptions(sc, Tuning{}, inst, inflight, false))
	if len(res.Bugs) == 0 {
		t.Fatal("need a real bug to corrupt")
	}
	v := &Verdict{Scenario: sc}
	bug := res.Bugs[0]

	// Truncated schedule: replays, but to the wrong (non-violating) state.
	wantFP := bug.System.Fingerprint()
	trunc := bug.Schedule[:len(bug.Schedule)-1]
	v.validateSchedule(inst, start, inflight, "lmc-gen", bug.Violation.Invariant, trunc, &wantFP, "tampered")
	if len(v.Disagreements) == 0 || v.Disagreements[0].Kind != KindUnsound {
		t.Errorf("truncated schedule not flagged unsound: %+v", v.Disagreements)
	}

	// Unknown invariant name.
	v2 := &Verdict{Scenario: sc}
	v2.validateSchedule(inst, start, inflight, "lmc-gen", "no-such-invariant", bug.Schedule, &wantFP, "tampered")
	if len(v2.Disagreements) == 0 || v2.Disagreements[0].Kind != KindUnsound {
		t.Errorf("unknown invariant not flagged unsound: %+v", v2.Disagreements)
	}

	// The untampered bug passes clean.
	v3 := &Verdict{Scenario: sc}
	v3.validateSchedule(inst, start, inflight, "lmc-gen", bug.Violation.Invariant, bug.Schedule, &wantFP, "real")
	if len(v3.Disagreements) != 0 {
		t.Errorf("real counterexample flagged: %+v", v3.Disagreements)
	}
}

// TestShrinkSynthetic drives the shrinker with a synthetic property and
// checks it reaches the known minimum.
func TestShrinkSynthetic(t *testing.T) {
	sc := Scenario{Protocol: ProtoChain, Nodes: 6, Depth: 12, LocalBound: 2, MaxLocalBound: 5,
		DupLimit: 1, Prefix: []PrefixOp{{Op: "act"}, {Op: "deliver", Pick: 3}, {Op: "drop"}, {Op: "act", Node: 1}}}
	// Property: at least 3 nodes and depth at least 4.
	prop := func(c Scenario) bool { return c.Nodes >= 3 && c.Depth >= 4 }
	min := Shrink(sc, prop)
	if min.Nodes != 3 || min.Depth != 4 {
		t.Errorf("shrink stopped at nodes=%d depth=%d, want 3/4", min.Nodes, min.Depth)
	}
	if len(min.Prefix) != 0 {
		t.Errorf("shrink kept %d prefix ops, want 0", len(min.Prefix))
	}
	if min.DupLimit != 0 || min.LocalBound != 1 || min.MaxLocalBound != min.LocalBound {
		t.Errorf("shrink kept bounds dup=%d local=%d/%d", min.DupLimit, min.LocalBound, min.MaxLocalBound)
	}
}

// TestShrinkPreservesRealProperty shrinks a buggy scenario under "the global
// checker still finds the bug" and checks the result is no larger and still
// valid.
func TestShrinkPreservesRealProperty(t *testing.T) {
	sc := Scenario{Protocol: ProtoTwoPhase, Bug: BugMajority, Nodes: 5, Depth: 12,
		LocalBound: 2, MaxLocalBound: 5, NoVoters: []int{2, 3},
		Prefix: []PrefixOp{{Op: "act"}, {Op: "deliver"}}}
	prop := func(c Scenario) bool {
		v, err := Run(c, Tuning{SkipOPT: true})
		return err == nil && v.Global.Bugs > 0
	}
	if !prop(sc) {
		t.Fatal("starting scenario does not exhibit the property")
	}
	min := Shrink(sc, prop)
	if !prop(min) {
		t.Fatal("shrunk scenario lost the property")
	}
	if min.Nodes > sc.Nodes || min.Depth > sc.Depth || len(min.Prefix) > len(sc.Prefix) {
		t.Errorf("shrink grew the scenario: %s -> %s", mustJSON(sc), mustJSON(min))
	}
	t.Logf("shrunk %s -> %s", sc.Name(), min.Name())
}

// TestScenarioJSONRoundTrip pins that scenarios survive the artifact format.
func TestScenarioJSONRoundTrip(t *testing.T) {
	for i, sc := range Corpus(42, 30) {
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		var back Scenario
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("scenario %d does not round-trip:\n%s\nvs\n%s", i, mustJSON(sc), mustJSON(back))
		}
	}
}

// TestArtifactRoundTrip writes and reloads an artifact.
func TestArtifactRoundTrip(t *testing.T) {
	sc := Corpus(3, 1)[0]
	v, err := Run(sc, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	a := &Artifact{Seed: 3, Index: 0, Scenario: sc, Verdict: v}
	path := t.TempDir() + "/artifact.json"
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Scenario, sc) || back.Seed != 3 {
		t.Fatalf("artifact does not round-trip: %s", mustJSON(back.Scenario))
	}
}

// TestGeneratedScenariosBuild pins that every generated scenario is valid
// and that onepaxos driver budgets are always explicit (a zero budget means
// unlimited and would make the state space infinite).
func TestGeneratedScenariosBuild(t *testing.T) {
	for i, sc := range Corpus(99, 200) {
		if _, err := sc.Build(); err != nil {
			t.Errorf("scenario %d (%s): %v", i, sc.Name(), err)
		}
		if sc.Protocol == ProtoOnePaxos && (sc.MaxProposals < 1 || sc.MaxTakeovers < 1) {
			t.Errorf("scenario %d: onepaxos with unlimited driver budget: %s", i, mustJSON(sc))
		}
		if sc.LocalBound < 1 || sc.MaxLocalBound < sc.LocalBound {
			t.Errorf("scenario %d: bad local bounds %d/%d", i, sc.LocalBound, sc.MaxLocalBound)
		}
	}
}

func mustJSON(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(data)
}

// TestReductionDivergenceGating pins the reduction-conservatism detector at
// the unit level with constructed results: an unreduced-confirmed bug
// against an empty-handed reduced run is a reduction-diverged disagreement
// ONLY when the reduced run reached an unsuppressed fixpoint; bounded or
// suppressed reduced runs degrade to inconclusive notes.
func TestReductionDivergenceGating(t *testing.T) {
	sc := Scenario{Protocol: ProtoChain, Nodes: 2, Depth: 4, LocalBound: 1, MaxLocalBound: 2}
	inst, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	start, inflight, err := sc.Prepare(inst)
	if err != nil {
		t.Fatal(err)
	}
	unreduced := &core.Result{Bugs: []core.Bug{{Violation: &spec.Violation{Invariant: "x"}}}}

	cases := []struct {
		name                 string
		complete, suppressed bool
		wantDiverged         bool
	}{
		{"unsuppressed-fixpoint", true, false, true},
		{"suppressed-fixpoint", true, true, false},
		{"budget-capped", false, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := &Verdict{Scenario: sc}
			reduced := &core.Result{Complete: tc.complete, Suppressed: tc.suppressed}
			v.checkReduced(inst, start, inflight, "lmc-gen-reduced", unreduced, reduced)
			diverged := false
			for _, d := range v.Disagreements {
				if d.Kind == KindReductionDiverged {
					diverged = true
				}
			}
			if diverged != tc.wantDiverged {
				t.Errorf("complete=%v suppressed=%v: reduction-diverged=%v, want %v (disagreements: %v, notes: %v)",
					tc.complete, tc.suppressed, diverged, tc.wantDiverged, v.Disagreements, v.Inconclusive)
			}
			if !tc.wantDiverged && len(v.Inconclusive) == 0 {
				t.Error("gated-out reduced run produced no inconclusive note")
			}
		})
	}
}

// TestReducedTwinRunsOnBugScenario: a scenario whose unreduced run confirms
// a bug must get a reduced twin run, and the twin must re-find the bug (the
// end-to-end conservatism direction on a real space).
func TestReducedTwinRunsOnBugScenario(t *testing.T) {
	sc := Scenario{Protocol: ProtoTwoPhase, Bug: BugMajority, Nodes: 4, Depth: 10,
		LocalBound: 1, MaxLocalBound: 4, NoVoters: []int{2}}
	v, err := Run(sc, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	if v.GEN.Bugs == 0 {
		t.Fatal("unreduced GEN did not find the planted bug; test is vacuous")
	}
	if v.GENReduced == nil {
		t.Fatal("no reduced twin ran despite a confirmed unreduced bug")
	}
	if v.GENReduced.Bugs == 0 {
		t.Fatalf("reduced twin lost the planted bug: %+v", v.GENReduced)
	}
	if !v.Agree() {
		for _, d := range v.Disagreements {
			t.Errorf("disagreement: %s", d)
		}
	}
}

// TestReducedTwinSkippedWhenVacuous: an unreduced run that burned its
// budget without confirming anything gates the twin out (nothing to
// preserve), leaving a note instead of re-burning the budget.
func TestReducedTwinSkippedWhenVacuous(t *testing.T) {
	if !reducedTwinInformative(&core.Result{Complete: false, Suppressed: true}) {
		// Gate holds for the bounded empty-handed shape.
	} else {
		t.Error("bounded empty-handed run should not get a reduced twin")
	}
	if !reducedTwinInformative(&core.Result{Complete: true}) {
		t.Error("clean fixpoint run should get a reduced twin")
	}
	if !reducedTwinInformative(&core.Result{Bugs: []core.Bug{{}}}) {
		t.Error("bug-confirming run should get a reduced twin")
	}
}
