package diffcheck

import (
	"math/rand"
)

// Generate draws one random scenario from rng. Parameter ranges are tuned so
// every scenario is small enough for the global baseline to finish its
// bounded search in well under a second: the differential corpus wants many
// cheap configurations, not a few expensive ones. About half the draws use a
// protocol's buggy variant (when it has one), so both the "finds the bug"
// and the "stays quiet" directions are exercised.
func Generate(rng *rand.Rand) Scenario {
	protos := Protocols()
	sc := Scenario{Protocol: protos[rng.Intn(len(protos))]}

	sc.LocalBound = 1 + rng.Intn(2)                    // 1..2
	sc.MaxLocalBound = sc.LocalBound + 2 + rng.Intn(2) // start+2..start+3
	sc.DupLimit = rng.Intn(2)                          // 0..1

	pickBug := func(name string) {
		if rng.Intn(2) == 0 {
			sc.Bug = name
		}
	}

	switch sc.Protocol {
	case ProtoPaxos:
		sc.Nodes = 3
		pickBug(BugLastResponse)
		if rng.Intn(3) == 0 {
			// From the §5.5 live state the last-response bug is within a
			// shallow depth; from the initial system it is unreachable in
			// tractable bounds, so those draws check the quiet direction.
			sc.Live = true
			sc.Depth = 8 + rng.Intn(4) // 8..11
		} else {
			sc.Depth = 4 + rng.Intn(2) // 4..5: global paxos blows up past d5
			if rng.Intn(2) == 0 {
				// Two competing proposers on the same index.
				sc.Proposers = []int{0, 1}
			}
		}
	case ProtoOnePaxos:
		pickBug(BugPlusPlus)
		// Driver budgets of 0 mean UNLIMITED, which makes the state space
		// infinite; the generator always emits explicit small budgets.
		sc.MaxProposals = 1
		sc.MaxTakeovers = 1
		if rng.Intn(3) == 0 {
			sc.Live = true // §5.6 live state; the ++ bug is shallow from here
			sc.Nodes = 3
			sc.Depth = 6 + rng.Intn(3) // 6..8
		} else {
			sc.Nodes = 2 + rng.Intn(2) // 2..3
			sc.Depth = 4 + rng.Intn(3) // 4..6
		}
	case ProtoRandTree:
		sc.Nodes = 3 + rng.Intn(3) // 3..5
		sc.MaxChildren = 1 + rng.Intn(2)
		sc.Depth = 6 + rng.Intn(5) // 6..10
		pickBug(BugSelfSibling)
	case ProtoTree:
		sc.Nodes = 3 + rng.Intn(4) // 3..6, default heap-shaped topology
		sc.Depth = 8 + rng.Intn(5) // 8..12
	case ProtoChain:
		sc.Nodes = 2 + rng.Intn(5) // 2..6
		sc.Depth = 8 + rng.Intn(5) // 8..12
	case ProtoTwoPhase:
		sc.Nodes = 3 + rng.Intn(2) // 3..4
		sc.Depth = 8 + rng.Intn(4) // 8..11
		pickBug(BugMajority)
		for n := 1; n < sc.Nodes; n++ {
			if rng.Intn(3) == 0 {
				sc.NoVoters = append(sc.NoVoters, n)
			}
		}
	}

	for i, n := 0, rng.Intn(7); i < n; i++ { // 0..6 prefix ops
		op := PrefixOp{Pick: rng.Intn(8), Node: rng.Intn(sc.Nodes)}
		switch r := rng.Intn(10); {
		case r < 4:
			op.Op = "act"
		case r < 8:
			op.Op = "deliver"
		default:
			op.Op = "drop"
		}
		sc.Prefix = append(sc.Prefix, op)
	}
	return sc
}

// Corpus derives n scenarios deterministically from one seed. The same
// (seed, n) always yields the same slice, so a corpus run is reproducible
// from its logged seed alone.
func Corpus(seed int64, n int) []Scenario {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Scenario, n)
	for i := range out {
		out[i] = Generate(rng)
	}
	return out
}

// GenerateActor draws one random adapter-backed scenario: the actordemo
// real implementation checked through actorcheck, with the same size and
// bound ranges as the hand-written twophase arm of Generate. It is a
// separate generator — not a Protocols() entry — so the main corpus's draw
// sequence stays frozen (see ProtoActor2PC).
func GenerateActor(rng *rand.Rand) Scenario {
	sc := Scenario{Protocol: ProtoActor2PC}
	sc.LocalBound = 1 + rng.Intn(2)                    // 1..2
	sc.MaxLocalBound = sc.LocalBound + 2 + rng.Intn(2) // start+2..start+3
	sc.DupLimit = rng.Intn(2)                          // 0..1
	sc.Nodes = 3 + rng.Intn(2)                         // 3..4
	sc.Depth = 8 + rng.Intn(4)                         // 8..11
	if rng.Intn(2) == 0 {
		sc.Bug = BugMajority
	}
	for n := 1; n < sc.Nodes; n++ {
		if rng.Intn(3) == 0 {
			sc.NoVoters = append(sc.NoVoters, n)
		}
	}
	for i, n := 0, rng.Intn(7); i < n; i++ { // 0..6 prefix ops
		op := PrefixOp{Pick: rng.Intn(8), Node: rng.Intn(sc.Nodes)}
		switch r := rng.Intn(10); {
		case r < 4:
			op.Op = "act"
		case r < 8:
			op.Op = "deliver"
		default:
			op.Op = "drop"
		}
		sc.Prefix = append(sc.Prefix, op)
	}
	return sc
}

// ActorCorpus derives n adapter-backed scenarios deterministically from one
// seed, the ActorCorpus analogue of Corpus.
func ActorCorpus(seed int64, n int) []Scenario {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Scenario, n)
	for i := range out {
		out[i] = GenerateActor(rng)
	}
	return out
}
