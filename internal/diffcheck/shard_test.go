package diffcheck_test

import (
	"testing"

	"lmc/internal/diffcheck"
	"lmc/internal/shard"
)

// TestShardParityCorpus runs the sharded cross-check over a slice of the
// generated corpus with in-process pipe workers: every scenario must explore
// bit-for-bit identically at 2 shards, including the scripted-prefix and
// seeded-inflight configurations the generator produces.
func TestShardParityCorpus(t *testing.T) {
	tun := diffcheck.Tuning{LMCMaxTransitions: 4000}
	for _, sc := range diffcheck.Corpus(7, 6) {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			err := diffcheck.ShardParity(sc, tun, 2,
				shard.PipeSpawner{Resolve: diffcheck.ShardResolver()})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardResolverRejects: malformed specs must error, not panic.
func TestShardResolverRejects(t *testing.T) {
	r := diffcheck.ShardResolver()
	for _, spec := range []string{"bench:paxos", "diffcheck:{not json", "diffcheck:"} {
		if _, err := r(spec); err == nil {
			t.Errorf("spec %q: want error, got nil", spec)
		}
	}
}
