// Package diffcheck is the differential checking harness: it cross-validates
// the local model checker (internal/core, both the LMC-GEN and LMC-OPT
// strategies) against the global B-DFS baseline (internal/mc/global) on
// randomized small scenarios, and cross-checks every reported counterexample
// by replaying it through two independent replay implementations
// (internal/testkit and internal/trace).
//
// The paper's central claim is that local model checking finds the same
// violations as global exploration at a fraction of the cost, with an
// a-posteriori soundness verification filtering out false positives (§4.2,
// §4.4). This package checks that claim mechanically, in both directions:
//
//   - No missed bugs within bound: when the global checker confirms a
//     violation, the local checker — run to its exploration fixpoint with no
//     suppressed local events — must confirm one too.
//   - No unsound reports: every violation the local checker confirms must
//     replay, through the real handlers and a real message-consuming
//     network, to a system state with the claimed fingerprint that violates
//     the claimed invariant.
//
// Scenarios are plain serializable values: re-running the same scenario JSON
// reproduces a disagreement bit-for-bit, and a greedy shrinker minimizes a
// disagreeing scenario before it is written out as an artifact.
package diffcheck

import (
	"fmt"

	"lmc/internal/actordemo"
	"lmc/internal/model"
	"lmc/internal/protocols/chain"
	"lmc/internal/protocols/onepaxos"
	"lmc/internal/protocols/paxos"
	"lmc/internal/protocols/randtree"
	"lmc/internal/protocols/tree"
	"lmc/internal/protocols/twophase"
	"lmc/internal/spec"
	"lmc/internal/testkit"
)

// Protocol names accepted in Scenario.Protocol.
const (
	ProtoPaxos    = "paxos"
	ProtoOnePaxos = "onepaxos"
	ProtoRandTree = "randtree"
	ProtoTree     = "tree"
	ProtoChain    = "chain"
	ProtoTwoPhase = "twophase"
	// ProtoActor2PC is the actordemo register-commit service checked
	// through the actorcheck adapter — real implementation code, not a
	// hand-written model. It is accepted by Build but deliberately NOT
	// listed in Protocols: adding it there would shift the main corpus's
	// random draws and silently replace every historical scenario. Actor
	// scenarios come from ActorCorpus instead.
	ProtoActor2PC = "actor2pc"
)

// Protocols lists every protocol the main corpus generator draws from. The
// list is append-only in spirit but frozen in practice: the deterministic
// corpus (seed → scenarios) is part of the harness's regression surface.
func Protocols() []string {
	return []string{ProtoPaxos, ProtoOnePaxos, ProtoRandTree, ProtoTree, ProtoChain, ProtoTwoPhase}
}

// Bug variant names per protocol; "" is the correct variant everywhere.
const (
	BugLastResponse = "last-response" // paxos §5.5
	BugPlusPlus     = "plusplus"      // onepaxos §5.6
	BugSelfSibling  = "self-sibling"  // randtree §4
	BugMajority     = "majority"      // twophase
)

// PrefixOp is one step of the scripted run prefix executed before checking
// starts. Ops are interpreted against whatever the run offers at that
// moment — Pick indexes modulo the enabled actions or the queued messages —
// so an op list stays meaningful under shrinking (an op with nothing to
// pick from is a no-op). The prefix plays the role of the paper's live run:
// it evolves the system to an arbitrary reachable state, and whatever is
// still queued afterward becomes the checkers' initial in-flight set.
type PrefixOp struct {
	// Op is "act" (fire an enabled internal action of Node), "deliver"
	// (deliver a queued message) or "drop" (discard a queued message).
	Op string `json:"op"`
	// Node selects the acting node for "act" (taken modulo the node count).
	Node int `json:"node,omitempty"`
	// Pick selects among the available choices, modulo their count.
	Pick int `json:"pick"`
}

// Scenario is one serializable checking configuration: a protocol variant,
// a system size, checker bounds, and a scripted run prefix. Everything the
// differential run does is a deterministic function of this value.
type Scenario struct {
	Protocol string `json:"protocol"`
	// Bug selects the protocol variant; "" is the correct protocol.
	Bug   string `json:"bug,omitempty"`
	Nodes int    `json:"nodes"`
	// Live starts checking from the protocol's paper live state instead of
	// the initial system — the configuration of the paper's online runs,
	// and the only tractable way to reach the paxos §5.5 and onepaxos §5.6
	// bugs within small depth bounds. Only paxos and onepaxos have one.
	Live bool `json:"live,omitempty"`

	// Depth bounds the global checker's B-DFS (events from the start
	// configuration). The local checker runs unbounded in depth; the
	// missed-bug comparison is therefore one-directional by construction.
	Depth int `json:"depth"`
	// LocalBound is the local checker's starting per-node local-event
	// budget; MaxLocalBound caps its iterative deepening.
	LocalBound    int `json:"local_bound"`
	MaxLocalBound int `json:"max_local_bound"`
	// DupLimit is the local checker's duplicate-message tolerance for I+.
	DupLimit int `json:"dup_limit,omitempty"`

	// Protocol-specific knobs.
	Proposers    []int   `json:"proposers,omitempty"`     // paxos: nodes that propose (EachOnce); nil → node 0 once
	Index        int     `json:"index,omitempty"`         // paxos: the contested index
	MaxProposals int     `json:"max_proposals,omitempty"` // onepaxos driver budget
	MaxTakeovers int     `json:"max_takeovers,omitempty"` // onepaxos driver budget
	MaxChildren  int     `json:"max_children,omitempty"`  // randtree fan-out
	Children     [][]int `json:"children,omitempty"`      // tree topology; node 0 is the root
	Target       int     `json:"target,omitempty"`        // tree target node
	NoVoters     []int   `json:"no_voters,omitempty"`     // twophase scripted no-voters

	// Prefix is the scripted run executed before the checkers start.
	Prefix []PrefixOp `json:"prefix,omitempty"`
}

// Name renders a compact human-readable label for reports.
func (sc Scenario) Name() string {
	bug := sc.Bug
	if bug == "" {
		bug = "correct"
	}
	live := ""
	if sc.Live {
		live = "/live"
	}
	return fmt.Sprintf("%s/%s%s/n%d/d%d/p%d", sc.Protocol, bug, live, sc.Nodes, sc.Depth, len(sc.Prefix))
}

// Instance is a scenario resolved into the objects the checkers consume.
type Instance struct {
	Machine model.Machine
	// Start is the system state checking begins from (before the prefix):
	// the machine's initial system, or the paper live state when the
	// scenario sets Live.
	Start model.SystemState
	// Invariant is the system-wide safety property (nil for protocols with
	// only node-local invariants).
	Invariant spec.Invariant
	// Locals are node-local invariants, checked directly by LMC and lifted
	// to a system invariant for the global baseline.
	Locals []spec.LocalInvariant
	// Reduction enables the LMC-OPT strategy when non-nil.
	Reduction spec.Reduction
}

// GlobalInvariant combines the system invariant and every lifted local
// invariant into the single invariant the global checker evaluates, so both
// checkers judge states against the same properties.
func (in *Instance) GlobalInvariant() spec.Invariant {
	invs := make([]spec.Invariant, 0, 1+len(in.Locals))
	if in.Invariant != nil {
		invs = append(invs, in.Invariant)
	}
	for _, li := range in.Locals {
		invs = append(invs, spec.Lift(li))
	}
	if len(invs) == 1 {
		return invs[0]
	}
	return spec.InvariantFunc{
		InvName: "diffcheck-all",
		Fn: func(ss model.SystemState) *spec.Violation {
			for _, inv := range invs {
				if v := inv.Check(ss); v != nil {
					return v
				}
			}
			return nil
		},
	}
}

// InvariantByName resolves the checker an individual violation names, for
// re-judging a replayed final state against exactly the property the bug
// report claims was violated.
func (in *Instance) InvariantByName(name string) spec.Invariant {
	if in.Invariant != nil && in.Invariant.Name() == name {
		return in.Invariant
	}
	for _, li := range in.Locals {
		if li.Name() == name {
			return spec.Lift(li)
		}
	}
	return nil
}

// Build resolves the scenario into a machine plus its invariants. It fails
// on unknown protocols or bug names and on out-of-range sizes, so a
// hand-edited or shrunk scenario is validated before anything runs.
func (sc Scenario) Build() (*Instance, error) {
	if sc.Nodes < 1 {
		return nil, fmt.Errorf("diffcheck: scenario needs at least 1 node, got %d", sc.Nodes)
	}
	wrongBug := func() error {
		return fmt.Errorf("diffcheck: protocol %s has no bug variant %q", sc.Protocol, sc.Bug)
	}
	if sc.Live && sc.Protocol != ProtoPaxos && sc.Protocol != ProtoOnePaxos {
		return nil, fmt.Errorf("diffcheck: protocol %s has no paper live state", sc.Protocol)
	}
	switch sc.Protocol {
	case ProtoPaxos:
		bug := paxos.NoBug
		switch sc.Bug {
		case "":
		case BugLastResponse:
			bug = paxos.LastResponseBug
		default:
			return nil, wrongBug()
		}
		var driver paxos.Driver
		switch {
		case sc.Live:
			// The live state already has accepted values on the contested
			// index; every node may re-propose once, the §5.5 setup.
			driver = paxos.ActiveIndex{MaxPerNode: 1}
		case len(sc.Proposers) <= 1:
			node := 0
			if len(sc.Proposers) == 1 {
				node = sc.Proposers[0] % sc.Nodes
			}
			driver = paxos.OnceAt{Node: model.NodeID(node), Index: sc.Index, Value: node + 1}
		default:
			nodes := make([]model.NodeID, 0, len(sc.Proposers))
			for _, p := range sc.Proposers {
				nodes = append(nodes, model.NodeID(p%sc.Nodes))
			}
			driver = paxos.EachOnce{Nodes: nodes, Index: sc.Index}
		}
		m := paxos.New(sc.Nodes, bug, driver)
		inst := &Instance{
			Machine:   m,
			Invariant: paxos.Agreement(),
			Reduction: paxos.Reduction{},
		}
		if sc.Live {
			if sc.Nodes != 3 {
				return nil, fmt.Errorf("diffcheck: the paxos live state is a 3-node configuration, got %d", sc.Nodes)
			}
			live, err := paxos.PaperLiveState(m)
			if err != nil {
				return nil, err
			}
			inst.Start = live
		}
		return inst, nil

	case ProtoOnePaxos:
		bug := onepaxos.NoBug
		switch sc.Bug {
		case "":
		case BugPlusPlus:
			bug = onepaxos.PlusPlusBug
		default:
			return nil, wrongBug()
		}
		if sc.Nodes < 2 {
			return nil, fmt.Errorf("diffcheck: onepaxos needs ≥2 nodes, got %d", sc.Nodes)
		}
		driver := onepaxos.Driver{MaxProposals: sc.MaxProposals, MaxTakeovers: sc.MaxTakeovers}
		m := onepaxos.New(sc.Nodes, bug, driver)
		inst := &Instance{
			Machine:   m,
			Invariant: onepaxos.Agreement(),
			Reduction: onepaxos.Reduction{},
		}
		if sc.Live {
			if sc.Nodes != 3 {
				return nil, fmt.Errorf("diffcheck: the onepaxos live state is a 3-node configuration, got %d", sc.Nodes)
			}
			live, err := onepaxos.PaperLiveState(m)
			if err != nil {
				return nil, err
			}
			inst.Start = live
		}
		return inst, nil

	case ProtoRandTree:
		bug := randtree.NoBug
		switch sc.Bug {
		case "":
		case BugSelfSibling:
			bug = randtree.SelfSiblingBug
		default:
			return nil, wrongBug()
		}
		return &Instance{
			Machine: randtree.New(sc.Nodes, sc.MaxChildren, bug),
			Locals:  []spec.LocalInvariant{randtree.Structure()},
		}, nil

	case ProtoTree:
		if sc.Bug != "" {
			return nil, wrongBug()
		}
		children, target, err := sc.treeTopology()
		if err != nil {
			return nil, err
		}
		m := tree.New(children, 0, model.NodeID(target))
		return &Instance{
			Machine:   m,
			Invariant: m.CausalityInvariant(),
			Reduction: tree.Reduction{Root: 0, Target: model.NodeID(target)},
		}, nil

	case ProtoChain:
		if sc.Bug != "" {
			return nil, wrongBug()
		}
		m := chain.New(sc.Nodes)
		return &Instance{Machine: m, Invariant: m.Causality()}, nil

	case ProtoTwoPhase:
		bug := twophase.NoBug
		switch sc.Bug {
		case "":
		case BugMajority:
			bug = twophase.MajorityBug
		default:
			return nil, wrongBug()
		}
		if sc.Nodes < 2 {
			return nil, fmt.Errorf("diffcheck: twophase needs ≥2 nodes, got %d", sc.Nodes)
		}
		voters := make([]model.NodeID, 0, len(sc.NoVoters))
		for _, v := range sc.NoVoters {
			n := v % sc.Nodes
			if n == 0 {
				n = 1 // the coordinator always votes yes
			}
			voters = append(voters, model.NodeID(n))
		}
		return &Instance{
			Machine:   twophase.New(sc.Nodes, bug, voters...),
			Invariant: twophase.Atomicity(),
			Reduction: twophase.Reduction{},
		}, nil

	case ProtoActor2PC:
		bug := actordemo.NoBug
		switch sc.Bug {
		case "":
		case BugMajority:
			bug = actordemo.MajorityBug
		default:
			return nil, wrongBug()
		}
		if sc.Nodes < 2 {
			return nil, fmt.Errorf("diffcheck: actor2pc needs ≥2 nodes, got %d", sc.Nodes)
		}
		refusers := make([]model.NodeID, 0, len(sc.NoVoters))
		for _, v := range sc.NoVoters {
			n := v % sc.Nodes
			if n == 0 {
				n = 1 // the coordinator always acknowledges its own write
			}
			refusers = append(refusers, model.NodeID(n))
		}
		ad := actordemo.NewAdapter(sc.Nodes, bug, refusers...)
		return &Instance{
			Machine:   ad,
			Invariant: actordemo.Atomicity(ad),
			Reduction: actordemo.Reduction{Ad: ad},
		}, nil

	default:
		return nil, fmt.Errorf("diffcheck: unknown protocol %q", sc.Protocol)
	}
}

// treeTopology resolves the tree scenario's topology: the explicit Children
// lists when given (validated), otherwise a deterministic two-child tree
// over Nodes nodes with the highest-numbered node as target.
func (sc Scenario) treeTopology() ([][]model.NodeID, int, error) {
	if len(sc.Children) == 0 {
		children := make([][]model.NodeID, sc.Nodes)
		for i := 0; i < sc.Nodes; i++ {
			for _, c := range []int{2*i + 1, 2*i + 2} {
				if c < sc.Nodes {
					children[i] = append(children[i], model.NodeID(c))
				}
			}
		}
		return children, sc.Nodes - 1, nil
	}
	if len(sc.Children) != sc.Nodes {
		return nil, 0, fmt.Errorf("diffcheck: tree topology lists %d nodes, scenario has %d",
			len(sc.Children), sc.Nodes)
	}
	children := make([][]model.NodeID, sc.Nodes)
	for i, cs := range sc.Children {
		for _, c := range cs {
			if c <= i || c >= sc.Nodes {
				return nil, 0, fmt.Errorf("diffcheck: tree child %d of node %d out of range", c, i)
			}
			children[i] = append(children[i], model.NodeID(c))
		}
	}
	target := sc.Target
	if target < 0 || target >= sc.Nodes {
		return nil, 0, fmt.Errorf("diffcheck: tree target %d out of range", target)
	}
	return children, target, nil
}

// Prepare executes the scenario's prefix against the instance's start state
// through the testkit pump and returns the resulting system state plus the
// messages still in flight — the configuration both checkers are pointed
// at. The result is a pure function of the scenario.
func (sc Scenario) Prepare(inst *Instance) (model.SystemState, []model.Message, error) {
	m := inst.Machine
	var h *testkit.Harness
	if inst.Start != nil {
		h = testkit.NewAt(m, inst.Start, nil)
	} else {
		h = testkit.New(m)
	}
	for i, op := range sc.Prefix {
		switch op.Op {
		case "act":
			n := model.NodeID(abs(op.Node) % m.NumNodes())
			acts := m.Actions(n, h.Sys[n])
			if len(acts) == 0 {
				continue
			}
			a := acts[abs(op.Pick)%len(acts)]
			if err := h.Act(a); err != nil {
				// An enabled action whose handler rejects is a protocol
				// quirk, not a scenario error: skip the op.
				continue
			}
		case "deliver":
			if len(h.Queue) == 0 {
				continue
			}
			if err := h.DeliverAt(abs(op.Pick) % len(h.Queue)); err != nil {
				// A queued message rejected by its destination (a local
				// assertion): the state is unchanged, continue scripting.
				continue
			}
		case "drop":
			if len(h.Queue) == 0 {
				continue
			}
			if err := h.DropAt(abs(op.Pick) % len(h.Queue)); err != nil {
				return nil, nil, fmt.Errorf("diffcheck: prefix op %d: %w", i, err)
			}
		default:
			return nil, nil, fmt.Errorf("diffcheck: prefix op %d has unknown kind %q", i, op.Op)
		}
	}
	return h.Snapshot(), h.InFlight(), nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
