package diffcheck

import (
	"encoding/json"
	"fmt"
	"os"
)

// Artifact is the reproducible record of a disagreement: the seed and index
// that generated the scenario, the (shrunk) scenario itself, and the verdict
// with its counterexample schedules. Feeding the scenario back through Run
// with the same Tuning reproduces the disagreement bit-for-bit.
type Artifact struct {
	// Seed and Index locate the original scenario in Corpus(Seed, ...);
	// Index is -1 for hand-written scenarios.
	Seed  int64 `json:"seed"`
	Index int   `json:"index"`
	// Scenario is the minimized scenario (after shrinking).
	Scenario Scenario `json:"scenario"`
	// Original is the pre-shrink scenario when shrinking changed anything.
	Original *Scenario `json:"original,omitempty"`
	Verdict  *Verdict  `json:"verdict"`
}

// WriteFile writes the artifact as indented JSON.
func (a *Artifact) WriteFile(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("diffcheck: encode artifact: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadArtifact reads an artifact written by WriteFile.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("diffcheck: decode artifact %s: %w", path, err)
	}
	return &a, nil
}
