package diffcheck

import (
	"fmt"
	"time"

	"lmc/internal/codec"
	"lmc/internal/core"
	"lmc/internal/mc/global"
	"lmc/internal/model"
	"lmc/internal/obs"
	"lmc/internal/testkit"
	"lmc/internal/trace"
)

// Tuning bounds one differential run. The zero value picks defaults sized
// for the randomized corpus (small scenarios, sub-second runs).
type Tuning struct {
	// GlobalMaxTransitions caps the baseline's handler executions; 0 means
	// DefaultMaxTransitions. A capped-out global run is inconclusive, never
	// a disagreement.
	GlobalMaxTransitions int
	// LMCMaxTransitions caps the local checker's handler executions; 0
	// means DefaultMaxTransitions.
	LMCMaxTransitions int
	// Budget bounds each individual checker run; 0 means DefaultBudget.
	Budget time.Duration
	// DisableDeepening turns off the local checker's iterative deepening of
	// the local-event bound, pinning it at Scenario.LocalBound. The corpus
	// never sets this; tests use it to manufacture bounded runs that miss
	// bugs, exercising the disagreement detector.
	DisableDeepening bool
	// SkipOPT skips the LMC-OPT run even when the scenario has a reduction.
	SkipOPT bool
	// SkipReductions skips the symmetry+POR twin runs (the lmc_gen_reduced /
	// lmc_opt_reduced summaries and the reduction-diverged direction). The
	// corpus never sets this; tests use it to time-box runs that target
	// other directions.
	SkipReductions bool
	// Observer receives run events from every checker run of the
	// differential (global, LMC-GEN, LMC-OPT). With concurrent scenarios the
	// streams interleave; the implementation must be safe for concurrent
	// use.
	Observer obs.Observer
}

// Defaults for Tuning. A differential run executes up to three checkers, so
// the per-checker budget is kept small: a capped-out run degrades to
// inconclusive for the completeness directions while its confirmed bugs are
// still replay-validated.
const (
	DefaultMaxTransitions = 100000
	DefaultBudget         = 2 * time.Second
)

func (t Tuning) withDefaults() Tuning {
	if t.GlobalMaxTransitions <= 0 {
		t.GlobalMaxTransitions = DefaultMaxTransitions
	}
	if t.LMCMaxTransitions <= 0 {
		t.LMCMaxTransitions = DefaultMaxTransitions
	}
	if t.Budget <= 0 {
		t.Budget = DefaultBudget
	}
	return t
}

// Disagreement kinds.
const (
	// KindMissedBug: the global checker confirmed a violation but a local
	// run that reached an unsuppressed fixpoint confirmed none — a
	// completeness failure of LMC within the bound.
	KindMissedBug = "missed-bug"
	// KindOptMissedBug: LMC-GEN confirmed a violation but LMC-OPT, at an
	// unsuppressed fixpoint, confirmed none — the reduction was not
	// conservative.
	KindOptMissedBug = "opt-missed-bug"
	// KindUnsound: a locally confirmed violation failed replay — its
	// schedule does not execute, reaches a different state than claimed, or
	// reaches a state that does not violate the claimed invariant.
	KindUnsound = "unsound-report"
	// KindGlobalMissed: the global checker completed its bounded search
	// with no violation, yet a validated local counterexample fits inside
	// the same bound — a soundness failure of the baseline itself.
	KindGlobalMissed = "global-missed-bug"
	// KindReplayDiverged: the two independent replay implementations
	// (testkit and trace) disagree about a schedule's outcome.
	KindReplayDiverged = "replay-diverged"
	// KindRawDiverged: for adapter-backed machines (model.RawReplayer), the
	// uninstrumented implementation replays a validated schedule to a
	// different outcome than the instrumented replays — the interception
	// seam itself changed behavior.
	KindRawDiverged = "raw-replay-diverged"
	// KindReductionDiverged: a checker run with the symmetry+POR reductions
	// enabled reached an unsuppressed fixpoint without confirming a
	// violation its unreduced twin confirmed — a reduction lost a bug.
	KindReductionDiverged = "reduction-diverged"
)

// Disagreement is one detected inconsistency between checkers.
type Disagreement struct {
	Kind    string `json:"kind"`
	Checker string `json:"checker"` // which run is implicated
	Detail  string `json:"detail"`
	// Schedule is the implicated counterexample, rendered one event per
	// line, when one exists.
	Schedule string `json:"schedule,omitempty"`
}

func (d Disagreement) String() string {
	return fmt.Sprintf("[%s] %s: %s", d.Kind, d.Checker, d.Detail)
}

// RunSummary condenses one checker run for reports and artifacts.
type RunSummary struct {
	Checker     string        `json:"checker"`
	Complete    bool          `json:"complete"`
	Suppressed  bool          `json:"suppressed,omitempty"`
	Bugs        int           `json:"bugs"`
	Transitions int           `json:"transitions"`
	States      int           `json:"states"`
	Elapsed     time.Duration `json:"elapsed_ns"`
}

// Verdict is the outcome of one differential run.
type Verdict struct {
	Scenario Scenario    `json:"scenario"`
	Global   RunSummary  `json:"global"`
	GEN      RunSummary  `json:"lmc_gen"`
	OPT      *RunSummary `json:"lmc_opt,omitempty"`
	// GENReduced / OPTReduced are the same runs with the fingerprint-layer
	// reductions (symmetry + partial order) enabled; each is cross-checked
	// against its unreduced twin (reduced ⊇ unreduced violations).
	GENReduced *RunSummary `json:"lmc_gen_reduced,omitempty"`
	OPTReduced *RunSummary `json:"lmc_opt_reduced,omitempty"`
	// Disagreements is empty when every cross-check passed.
	Disagreements []Disagreement `json:"disagreements,omitempty"`
	// Inconclusive notes checks skipped because a run hit its resource caps
	// before reaching a verdict-grade state (not disagreements).
	Inconclusive []string `json:"inconclusive,omitempty"`
}

// Agree reports whether every cross-check passed.
func (v *Verdict) Agree() bool { return len(v.Disagreements) == 0 }

// Run executes one differential check: the scenario's prefix is applied,
// then the global baseline, LMC-GEN and (when the scenario's invariant has
// a reduction) LMC-OPT are all run from the identical start configuration,
// and their verdicts and counterexamples are cross-validated.
func Run(sc Scenario, tun Tuning) (*Verdict, error) {
	tun = tun.withDefaults()
	inst, err := sc.Build()
	if err != nil {
		return nil, err
	}
	start, inflight, err := sc.Prepare(inst)
	if err != nil {
		return nil, err
	}

	v := &Verdict{Scenario: sc}

	g := global.Check(inst.Machine, start, global.Options{
		Invariant:       inst.GlobalInvariant(),
		Strategy:        global.DFS,
		MaxDepth:        sc.Depth,
		MaxTransitions:  tun.GlobalMaxTransitions,
		Budget:          tun.Budget,
		Observer:        tun.Observer,
		StopAtFirstBug:  true,
		InitialMessages: inflight,
	})
	v.Global = RunSummary{
		Checker: "global", Complete: g.Complete, Bugs: len(g.Bugs),
		Transitions: g.Stats.Transitions, States: g.Stats.GlobalStates,
		Elapsed: g.Stats.Elapsed,
	}

	gen := core.Check(inst.Machine, start, lmcOptions(sc, tun, inst, inflight, false))
	v.GEN = summarize("lmc-gen", gen)
	v.crossCheck(inst, start, inflight, "lmc-gen", gen, g)

	if !tun.SkipReductions && reducedTwinInformative(gen) {
		ro := lmcOptions(sc, tun, inst, inflight, false)
		ro.Reduce = core.Reductions{Symmetry: true, PartialOrder: true}
		genRed := core.Check(inst.Machine, start, ro)
		s := summarize("lmc-gen-reduced", genRed)
		v.GENReduced = &s
		v.checkReduced(inst, start, inflight, "lmc-gen-reduced", gen, genRed)
	}

	var opt *core.Result
	if inst.Reduction != nil && !tun.SkipOPT {
		opt = core.Check(inst.Machine, start, lmcOptions(sc, tun, inst, inflight, true))
		s := summarize("lmc-opt", opt)
		v.OPT = &s
		v.crossCheck(inst, start, inflight, "lmc-opt", opt, g)

		if !tun.SkipReductions && reducedTwinInformative(opt) {
			ro := lmcOptions(sc, tun, inst, inflight, true)
			ro.Reduce = core.Reductions{Symmetry: true, PartialOrder: true}
			optRed := core.Check(inst.Machine, start, ro)
			rs := summarize("lmc-opt-reduced", optRed)
			v.OPTReduced = &rs
			v.checkReduced(inst, start, inflight, "lmc-opt-reduced", opt, optRed)
		}

		// GEN→OPT completeness: the reduction must not lose violations.
		if len(gen.Bugs) > 0 && len(opt.Bugs) == 0 {
			if opt.Complete && !opt.Suppressed {
				v.add(Disagreement{
					Kind: KindOptMissedBug, Checker: "lmc-opt",
					Detail:   fmt.Sprintf("LMC-GEN confirmed %d violation(s) but LMC-OPT reached an unsuppressed fixpoint with none", len(gen.Bugs)),
					Schedule: gen.Bugs[0].Schedule.String(),
				})
			} else {
				v.note("lmc-opt found no bugs but was bounded (complete=%v suppressed=%v)", opt.Complete, opt.Suppressed)
			}
		}
	}

	// Validate the baseline's own counterexamples through the independent
	// replayers too: global search is sound by construction, so a failure
	// here means the baseline's path reconstruction or a replayer is wrong.
	for i, b := range g.Bugs {
		v.validateSchedule(inst, start, inflight, "global", b.Violation.Invariant,
			b.Schedule, nil, fmt.Sprintf("global bug %d", i))
	}

	return v, nil
}

// lmcOptions maps a scenario plus tuning onto the local checker's options —
// factored out so tests can run core.Check with exactly the configuration
// Run uses.
func lmcOptions(sc Scenario, tun Tuning, inst *Instance, inflight []model.Message, useReduction bool) core.Options {
	tun = tun.withDefaults()
	opt := core.Options{
		Invariant:       inst.Invariant,
		LocalInvariants: inst.Locals,
		InitialMessages: inflight,
		DupLimit:        sc.DupLimit,
		LocalBound:      sc.LocalBound,
		MaxTransitions:  tun.LMCMaxTransitions,
		Budget:          tun.Budget,
		Observer:        tun.Observer,
		// One confirmed violation per run is all the comparison needs;
		// confirming every violation in the space (the onepaxos live state
		// has thousands) would dwarf the exploration itself.
		StopAtFirstBug: true,
	}
	if !tun.DisableDeepening {
		opt.LocalBoundStep = 1
		opt.MaxLocalBound = sc.MaxLocalBound
	}
	if useReduction {
		opt.Reduction = inst.Reduction
	}
	return opt
}

func summarize(name string, r *core.Result) RunSummary {
	return RunSummary{
		Checker: name, Complete: r.Complete, Suppressed: r.Suppressed,
		Bugs: len(r.Bugs), Transitions: r.Stats.Transitions,
		States: r.Stats.NodeStates, Elapsed: r.Stats.Elapsed,
	}
}

// crossCheck applies the two agreement directions to one local run.
func (v *Verdict) crossCheck(inst *Instance, start model.SystemState, inflight []model.Message,
	name string, r *core.Result, g *global.Result) {

	// Direction 1 — no missed bugs within bound: a global-confirmed
	// violation must be confirmed locally, provided the local run actually
	// exhausted its space (fixpoint, no suppressed local events).
	if len(g.Bugs) > 0 && len(r.Bugs) == 0 {
		if r.Complete && !r.Suppressed {
			v.add(Disagreement{
				Kind: KindMissedBug, Checker: name,
				Detail: fmt.Sprintf("global confirmed %q but %s reached an unsuppressed fixpoint with no confirmed violation",
					g.Bugs[0].Violation.Invariant, name),
				Schedule: g.Bugs[0].Schedule.String(),
			})
		} else {
			v.note("%s found no bugs but was bounded (complete=%v suppressed=%v)", name, r.Complete, r.Suppressed)
		}
	}

	// Direction 2 — no unsound reports: every confirmed violation must
	// replay to the claimed state and violate the claimed invariant.
	for i, b := range r.Bugs {
		wantFP := b.System.Fingerprint()
		v.validateSchedule(inst, start, inflight, name, b.Violation.Invariant,
			b.Schedule, &wantFP, fmt.Sprintf("%s bug %d", name, i))
	}

	// Direction 3 — the bounded baseline must not have missed a validated
	// local counterexample that fits inside its own bound.
	if g.Complete && len(g.Bugs) == 0 {
		for _, b := range r.Bugs {
			if len(b.Schedule) > 0 && len(b.Schedule) <= v.Scenario.Depth &&
				v.scheduleReplays(inst, start, inflight, b) {
				v.add(Disagreement{
					Kind: KindGlobalMissed, Checker: "global",
					Detail: fmt.Sprintf("%s confirmed %q with a depth-%d schedule but the complete depth-%d global search found nothing",
						name, b.Violation.Invariant, len(b.Schedule), v.Scenario.Depth),
					Schedule: b.Schedule.String(),
				})
				break // one witness is enough
			}
		}
	}
}

// reducedTwinInformative reports whether running the reduced twin of an
// unreduced run can produce a verdict-grade comparison. When the unreduced
// run burned its whole budget without confirming anything, the conservatism
// direction (reduced ⊇ unreduced violations) is vacuous and the twin would
// only re-burn the same budget — the dominant cost on budget-bound
// scenarios like the paxos live state, where GEN drowns in Cartesian
// combination either way.
func reducedTwinInformative(r *core.Result) bool {
	return len(r.Bugs) > 0 || (r.Complete && !r.Suppressed)
}

// checkReduced applies the reduction-conservatism directions to a reduced
// run against its unreduced twin: every violation the unreduced run
// confirms must be confirmed by the reduced run (up to StopAtFirstBug,
// presence per run), and every reduced-run counterexample — including those
// assembled by the orbit sweep and the partial-order search — must replay
// and violate its claimed invariant. A reduced run that was cut off by a
// budget or transition cap is inconclusive, not divergent: the symmetry
// skip relies on the canonical representative being enumerated later in the
// same pass, which a mid-run stop can prevent, exactly like the
// completeness gating of the other directions.
func (v *Verdict) checkReduced(inst *Instance, start model.SystemState, inflight []model.Message,
	name string, unreduced, reduced *core.Result) {

	if len(unreduced.Bugs) > 0 && len(reduced.Bugs) == 0 {
		if reduced.Complete && !reduced.Suppressed {
			v.add(Disagreement{
				Kind: KindReductionDiverged, Checker: name,
				Detail: fmt.Sprintf("unreduced run confirmed %q but %s reached an unsuppressed fixpoint with no confirmed violation",
					unreduced.Bugs[0].Violation.Invariant, name),
				Schedule: unreduced.Bugs[0].Schedule.String(),
			})
		} else {
			v.note("%s found no bugs but was bounded (complete=%v suppressed=%v)",
				name, reduced.Complete, reduced.Suppressed)
		}
	}
	for i, b := range reduced.Bugs {
		wantFP := b.System.Fingerprint()
		v.validateSchedule(inst, start, inflight, name, b.Violation.Invariant,
			b.Schedule, &wantFP, fmt.Sprintf("%s bug %d", name, i))
	}
}

// scheduleReplays reports whether a bug's schedule replays cleanly (used to
// confirm a KindGlobalMissed witness really is realizable before accusing
// the baseline).
func (v *Verdict) scheduleReplays(inst *Instance, start model.SystemState, inflight []model.Message, b core.Bug) bool {
	rr := trace.ReplayWith(inst.Machine, start, inflight, b.Schedule)
	return rr.Err == nil && rr.Fingerprint() == b.System.Fingerprint()
}

// validateSchedule replays one counterexample schedule through both replay
// implementations and cross-checks: both must succeed, agree with each
// other, reach the claimed state (when a fingerprint is claimed), and the
// final state must violate the named invariant.
func (v *Verdict) validateSchedule(inst *Instance, start model.SystemState, inflight []model.Message,
	checker, invName string, sched trace.Schedule, wantFP *codec.Fingerprint, label string) {

	rr := trace.ReplayWith(inst.Machine, start, inflight, sched)
	tkFinal, tkErr := testkit.Replay(inst.Machine, start, inflight, sched)

	if (rr.Err == nil) != (tkErr == nil) {
		v.add(Disagreement{
			Kind: KindReplayDiverged, Checker: checker,
			Detail:   fmt.Sprintf("%s: trace replay err=%v but testkit replay err=%v", label, rr.Err, tkErr),
			Schedule: sched.String(),
		})
		return
	}
	if rr.Err != nil {
		v.add(Disagreement{
			Kind: KindUnsound, Checker: checker,
			Detail:   fmt.Sprintf("%s: schedule does not replay: %v", label, rr.Err),
			Schedule: sched.String(),
		})
		return
	}
	if rr.Fingerprint() != tkFinal.Fingerprint() {
		v.add(Disagreement{
			Kind: KindReplayDiverged, Checker: checker,
			Detail:   fmt.Sprintf("%s: trace and testkit replays reach different final states", label),
			Schedule: sched.String(),
		})
		return
	}
	if wantFP != nil && rr.Fingerprint() != *wantFP {
		v.add(Disagreement{
			Kind: KindUnsound, Checker: checker,
			Detail:   fmt.Sprintf("%s: schedule replays to a state other than the one reported", label),
			Schedule: sched.String(),
		})
		return
	}
	// Third replay direction for machines wrapping a real implementation:
	// the schedule must also execute on the uninstrumented code and land in
	// the same final state the instrumented replays reached.
	if raw, ok := inst.Machine.(model.RawReplayer); ok {
		rawFinal, rawErr := raw.ReplayRaw(start, inflight, sched)
		if rawErr != nil {
			v.add(Disagreement{
				Kind: KindRawDiverged, Checker: checker,
				Detail:   fmt.Sprintf("%s: uninstrumented replay failed: %v", label, rawErr),
				Schedule: sched.String(),
			})
			return
		}
		if rawFinal.Fingerprint() != rr.Fingerprint() {
			v.add(Disagreement{
				Kind: KindRawDiverged, Checker: checker,
				Detail:   fmt.Sprintf("%s: uninstrumented replay reaches a different final state", label),
				Schedule: sched.String(),
			})
			return
		}
	}
	inv := inst.InvariantByName(invName)
	if inv == nil {
		v.add(Disagreement{
			Kind: KindUnsound, Checker: checker,
			Detail: fmt.Sprintf("%s: reports unknown invariant %q", label, invName),
		})
		return
	}
	if inv.Check(rr.Final) == nil {
		v.add(Disagreement{
			Kind: KindUnsound, Checker: checker,
			Detail:   fmt.Sprintf("%s: replayed final state does not violate %q", label, invName),
			Schedule: sched.String(),
		})
	}
}

func (v *Verdict) add(d Disagreement) { v.Disagreements = append(v.Disagreements, d) }

func (v *Verdict) note(format string, args ...any) {
	v.Inconclusive = append(v.Inconclusive, fmt.Sprintf(format, args...))
}
