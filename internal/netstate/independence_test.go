package netstate

import (
	"math/rand"
	"sync"
	"testing"

	"lmc/internal/model"
)

// TestIndependenceProperties is the property test for the partial-order
// reduction's independence relation over I+ entries: the relation must be
// symmetric (Independent(a,b) == Independent(b,a)), must agree with its
// defining semantics (disjoint receivers), and must be stable under epoch
// growth — adding messages to the monotonically growing shared network never
// changes the verdict recorded for an existing pair. Stability is what lets
// the checker cache commutation decisions across rounds without epoch tags.
func TestIndependenceProperties(t *testing.T) {
	seed := *sharedPropSeed
	t.Logf("seed %d (reproduce with -netstate.seed=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	for trial := 0; trial < 100; trial++ {
		sh := NewShared(rng.Intn(2))
		grow := func(n int) {
			for i := 0; i < n; i++ {
				sh.Add(testMsg{
					From: model.NodeID(rng.Intn(4)),
					To:   model.NodeID(rng.Intn(4)),
					Body: rng.Intn(6),
				})
			}
		}
		grow(2 + rng.Intn(10))
		entries := sh.Entries()
		if len(entries) < 2 {
			continue
		}

		// Record the verdict matrix over the current epoch.
		type pairVerdict struct {
			a, b *Entry
			ok   bool
		}
		var recorded []pairVerdict
		for i := 0; i < len(entries); i++ {
			for j := 0; j < len(entries); j++ {
				got := Independent(entries[i], entries[j])
				want := entries[i].Msg.Dst() != entries[j].Msg.Dst()
				if got != want {
					t.Fatalf("trial=%d: Independent disagrees with receiver disjointness for %v / %v",
						trial, entries[i].Msg, entries[j].Msg)
				}
				if got != Independent(entries[j], entries[i]) {
					t.Fatalf("trial=%d: Independent is asymmetric for %v / %v",
						trial, entries[i].Msg, entries[j].Msg)
				}
				if got != IndependentMsgs(entries[i].Msg, entries[j].Msg) {
					t.Fatalf("trial=%d: IndependentMsgs disagrees with Independent", trial)
				}
				recorded = append(recorded, pairVerdict{a: entries[i], b: entries[j], ok: got})
			}
		}

		// Monotonic I+: grow the network (several epochs) and re-query every
		// recorded pair. No verdict may move.
		for epoch := 0; epoch < 3; epoch++ {
			grow(1 + rng.Intn(8))
			for _, pv := range recorded {
				if Independent(pv.a, pv.b) != pv.ok {
					t.Fatalf("trial=%d epoch=%d: verdict for %v / %v changed after I+ growth",
						trial, epoch, pv.a.Msg, pv.b.Msg)
				}
			}
		}
	}
}

// TestIndependenceConcurrentReaders drives Independent from concurrent
// readers while a writer grows the shared network, mirroring how parallel
// soundness workers consult the relation against an immutable epoch prefix.
// Run under -race (the CI race job covers ./internal/...), this pins down
// that the relation reads no mutable Shared state.
func TestIndependenceConcurrentReaders(t *testing.T) {
	sh := NewShared(0)
	for i := 0; i < 16; i++ {
		sh.Add(testMsg{From: 0, To: model.NodeID(i % 4), Body: i})
	}
	prefix := sh.Entries()[:sh.Len()] // immutable epoch snapshot

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				a := prefix[(k+w)%len(prefix)]
				b := prefix[(k*7+w)%len(prefix)]
				want := a.Msg.Dst() != b.Msg.Dst()
				if Independent(a, b) != want {
					t.Errorf("concurrent Independent verdict wrong for %v / %v", a.Msg, b.Msg)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 64; i++ {
		sh.Add(testMsg{From: 1, To: model.NodeID(i % 4), Body: 100 + i})
	}
	close(stop)
	wg.Wait()
}
