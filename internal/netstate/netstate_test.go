package netstate

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"lmc/internal/codec"
	"lmc/internal/model"
)

// testMsg is a minimal message for network tests.
type testMsg struct {
	From, To model.NodeID
	Body     int
}

func (m testMsg) Src() model.NodeID { return m.From }
func (m testMsg) Dst() model.NodeID { return m.To }
func (m testMsg) Encode(w *codec.Writer) {
	w.String("test")
	w.Int(int(m.From))
	w.Int(int(m.To))
	w.Int(m.Body)
}
func (m testMsg) String() string { return fmt.Sprintf("test{%v->%v %d}", m.From, m.To, m.Body) }

// TestMultisetAddRemove checks counting semantics.
func TestMultisetAddRemove(t *testing.T) {
	ms := NewMultiset()
	m := testMsg{0, 1, 7}
	fp := ms.Add(m)
	ms.Add(m)
	if ms.Len() != 2 || ms.Distinct() != 1 {
		t.Fatalf("len=%d distinct=%d, want 2/1", ms.Len(), ms.Distinct())
	}
	if !ms.Remove(fp) {
		t.Fatal("remove failed")
	}
	if ms.Len() != 1 || !ms.Contains(fp) {
		t.Fatal("first remove should leave one copy")
	}
	if !ms.Remove(fp) || ms.Remove(fp) {
		t.Fatal("second remove should succeed, third should fail")
	}
	if ms.Len() != 0 || ms.Contains(fp) {
		t.Fatal("multiset not empty")
	}
}

// TestMultisetFingerprintOrderInsensitive: the fingerprint must depend only
// on contents, not on insertion or removal order — a property-based check
// that also exercises Remove.
func TestMultisetFingerprintOrderInsensitive(t *testing.T) {
	f := func(bodies []int, seed int64) bool {
		a := NewMultiset()
		b := NewMultiset()
		for _, body := range bodies {
			a.Add(testMsg{0, 1, body % 5})
		}
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(len(bodies))
		for _, i := range perm {
			b.Add(testMsg{0, 1, bodies[i] % 5})
		}
		return a.Fingerprint() == b.Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMultisetFingerprintAfterRemove: adding then removing a message must
// restore the fingerprint.
func TestMultisetFingerprintAfterRemove(t *testing.T) {
	ms := NewMultiset()
	ms.Add(testMsg{0, 1, 1})
	before := ms.Fingerprint()
	fp := ms.Add(testMsg{1, 0, 2})
	ms.Remove(fp)
	if ms.Fingerprint() != before {
		t.Fatal("fingerprint not restored after add+remove")
	}
}

// TestMultisetClone checks deep independence of clones.
func TestMultisetClone(t *testing.T) {
	ms := NewMultiset()
	fp := ms.Add(testMsg{0, 1, 1})
	c := ms.Clone()
	c.Remove(fp)
	if !ms.Contains(fp) {
		t.Fatal("clone shares state with the original")
	}
	if c.Contains(fp) {
		t.Fatal("remove on clone had no effect")
	}
}

// TestMultisetMessagesDeterministic checks the iteration order is stable.
func TestMultisetMessagesDeterministic(t *testing.T) {
	build := func() *Multiset {
		ms := NewMultiset()
		for i := 0; i < 10; i++ {
			ms.Add(testMsg{0, 1, i})
		}
		return ms
	}
	a, b := build().Messages(), build().Messages()
	for i := range a {
		if a[i].FP != b[i].FP {
			t.Fatal("Messages order not deterministic")
		}
	}
}

// TestSharedDedup checks the paper's duplicate limit of zero: an identical
// message is stored once.
func TestSharedDedup(t *testing.T) {
	sh := NewShared(0)
	if sh.Add(testMsg{0, 1, 1}) == nil {
		t.Fatal("first add dropped")
	}
	if sh.Add(testMsg{0, 1, 1}) != nil {
		t.Fatal("duplicate admitted with limit 0")
	}
	if sh.Len() != 1 || sh.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d", sh.Len(), sh.Dropped())
	}
}

// TestSharedDupLimit checks tolerated duplicate copies get distinct
// delivery identities.
func TestSharedDupLimit(t *testing.T) {
	sh := NewShared(1)
	e0 := sh.Add(testMsg{0, 1, 1})
	e1 := sh.Add(testMsg{0, 1, 1})
	if e0 == nil || e1 == nil {
		t.Fatal("copies within limit dropped")
	}
	if sh.Add(testMsg{0, 1, 1}) != nil {
		t.Fatal("over-limit duplicate admitted")
	}
	if e0.EventFingerprint() == e1.EventFingerprint() {
		t.Fatal("duplicate copies share a delivery identity")
	}
	if e0.FP != e1.FP {
		t.Fatal("copies of one message have different content fingerprints")
	}
}

// TestSharedGrowsMonotonically: entries are never removed and keep stable
// indexes — the property completeness rests on.
func TestSharedGrowsMonotonically(t *testing.T) {
	sh := NewShared(0)
	var fps []codec.Fingerprint
	for i := 0; i < 20; i++ {
		e := sh.Add(testMsg{0, 1, i})
		fps = append(fps, e.FP)
	}
	for i, e := range sh.Entries() {
		if e.FP != fps[i] {
			t.Fatalf("entry %d moved", i)
		}
		if !sh.Contains(e.FP) {
			t.Fatalf("entry %d not contained", i)
		}
	}
	if sh.Entry(3).FP != fps[3] {
		t.Fatal("Entry(3) mismatch")
	}
}

// TestSharedAddAll checks batch insertion filters duplicates.
func TestSharedAddAll(t *testing.T) {
	sh := NewShared(0)
	added := sh.AddAll([]model.Message{
		testMsg{0, 1, 1}, testMsg{0, 1, 1}, testMsg{0, 2, 2},
	})
	if len(added) != 2 {
		t.Fatalf("added %d entries, want 2", len(added))
	}
}
