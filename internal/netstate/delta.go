package netstate

import (
	"fmt"

	"lmc/internal/codec"
)

// EpochDelta describes the entries appended to a shared network after a
// known base length, by fingerprint and duplicate-copy index only. The
// sharded engine ships the coordinator's action-phase delta to every worker
// each round: a worker holds a full replica and re-derives the same
// appends itself, so the delta carries no message objects — it is the
// cross-process assertion that both replicas appended the same entries in
// the same order, caught one round early instead of at the end-of-round
// digest.
type EpochDelta struct {
	// Base is the network length the delta extends.
	Base int
	// FPs and Copies describe entries Base..Base+len(FPs)-1 in order.
	FPs    []codec.Fingerprint
	Copies []int
}

// DeltaSince captures the entries appended after length base.
func (s *SharedNet) DeltaSince(base int) EpochDelta {
	view := *s.view.Load()
	if base < 0 {
		base = 0
	}
	if base > len(view) {
		base = len(view)
	}
	tail := view[base:]
	d := EpochDelta{
		Base:   base,
		FPs:    make([]codec.Fingerprint, len(tail)),
		Copies: make([]int, len(tail)),
	}
	for i, e := range tail {
		d.FPs[i] = e.FP
		d.Copies[i] = e.Copy
	}
	return d
}

// VerifyTail checks that this network's entries past d.Base are exactly the
// delta — same length, same fingerprints, same copy indexes. A mismatch
// means the two replicas diverged (non-deterministic handlers, or corrupt
// state); the shard coordinator degrades to in-process exploration when a
// worker reports one.
func (s *SharedNet) VerifyTail(d EpochDelta) error {
	view := *s.view.Load()
	if d.Base > len(view) {
		return fmt.Errorf("netstate: delta base %d beyond local length %d", d.Base, len(view))
	}
	tail := view[d.Base:]
	if len(tail) != len(d.FPs) {
		return fmt.Errorf("netstate: delta length %d, local tail %d (base %d)",
			len(d.FPs), len(tail), d.Base)
	}
	for i, e := range tail {
		if e.FP != d.FPs[i] || e.Copy != d.Copies[i] {
			return fmt.Errorf("netstate: entry %d diverged: local (%016x,%d) vs delta (%016x,%d)",
				d.Base+i, uint64(e.FP), e.Copy, uint64(d.FPs[i]), d.Copies[i])
		}
	}
	return nil
}

// Encode writes the delta in the canonical wire form.
func (d EpochDelta) Encode(w *codec.Writer) {
	w.Int(d.Base)
	w.Int(len(d.FPs))
	for i := range d.FPs {
		w.Uint64(uint64(d.FPs[i]))
		w.Int(d.Copies[i])
	}
}

// DecodeEpochDelta reads a delta written by Encode. Decode errors stick to
// the reader; callers check r.Err.
func DecodeEpochDelta(r *codec.Reader) EpochDelta {
	d := EpochDelta{Base: r.Int()}
	n := r.Int()
	if n < 0 || r.Err() != nil {
		return EpochDelta{}
	}
	// Each element takes at least 16 encoded bytes; an absurd count from a
	// corrupt frame must not allocate.
	if n > r.Remaining()/16+1 {
		return EpochDelta{}
	}
	d.FPs = make([]codec.Fingerprint, 0, n)
	d.Copies = make([]int, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		d.FPs = append(d.FPs, codec.Fingerprint(r.Uint64()))
		d.Copies = append(d.Copies, r.Int())
	}
	return d
}

// Digest is an order-sensitive fingerprint of the whole network — every
// entry's (fingerprint, copy) in append order. Two replicas that ran the
// same rounds agree on it; the shard protocol compares digests at round
// ends to detect divergence.
func (s *SharedNet) Digest() codec.Fingerprint {
	view := *s.view.Load()
	h := codec.NewHasher()
	h.Add(codec.Fingerprint(len(view)))
	for _, e := range view {
		h.Add(e.FP)
		h.Add(codec.Fingerprint(e.Copy))
	}
	return h.Sum()
}

// AnyAdmissible reports whether at least one of the fingerprints would be
// admitted by the duplicate limit right now. The sharded merge uses it to
// decide whether a fingerprint-only emission batch needs its messages
// materialized: when every copy budget is exhausted the whole batch drops
// without re-executing the producing handler.
func (s *SharedNet) AnyAdmissible(fps []codec.Fingerprint) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, fp := range fps {
		if s.sh.index[fp] < 1+s.sh.DupLimit {
			return true
		}
	}
	return false
}
