package netstate

import (
	"sync"
	"sync/atomic"

	"lmc/internal/codec"
	"lmc/internal/model"
)

// SharedNet is the concurrency-safe view of the shared network I+ used by
// the parallel exploration engine: appends are serialized behind a mutex,
// while readers iterate lock-free over an immutable snapshot published
// atomically after every append batch.
//
// Monotonicity (§2: I+ only ever grows) is exactly what makes the scheme
// sound. A snapshot taken at any instant is a stable prefix of every later
// snapshot — entries never move, mutate identity, or disappear — so a
// worker holding a round's Epoch sees a well-defined network regardless of
// concurrent appends, and per-entry Applied prefixes plus per-round entry
// counts stay valid across epochs.
type SharedNet struct {
	mu   sync.Mutex
	sh   *Shared
	view atomic.Pointer[[]*Entry] // published immutable prefix of sh.entries
}

// NewSharedNet returns an empty concurrent shared network with the given
// duplicate limit.
func NewSharedNet(dupLimit int) *SharedNet {
	s := &SharedNet{sh: NewShared(dupLimit)}
	empty := []*Entry{}
	s.view.Store(&empty)
	return s
}

// publish must be called with mu held: it makes the current entry list
// visible to lock-free readers. The stored slice header is never mutated
// afterwards (appends may reallocate sh.entries, but published headers keep
// referencing the prefix they captured).
func (s *SharedNet) publish() {
	v := s.sh.Entries()
	s.view.Store(&v)
}

// Add inserts m unless its duplicate budget is exhausted, returning the new
// entry or nil for an over-limit duplicate.
func (s *SharedNet) Add(m model.Message) *Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.sh.Add(m)
	if e != nil {
		s.publish()
	}
	return e
}

// AddAll inserts every message in c as one batch, returning the entries
// actually added. Readers observe the batch atomically.
func (s *SharedNet) AddAll(c []model.Message) []*Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var added []*Entry
	for _, m := range c {
		if e := s.sh.Add(m); e != nil {
			added = append(added, e)
		}
	}
	if len(added) > 0 {
		s.publish()
	}
	return added
}

// AddAllFP is AddAll for callers that already hold the messages'
// fingerprints (fps[i] must be model.MessageFingerprint(c[i])), skipping
// the re-hash on insert. Readers observe the batch atomically.
func (s *SharedNet) AddAllFP(c []model.Message, fps []codec.Fingerprint) []*Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var added []*Entry
	for i, m := range c {
		if e := s.sh.AddFP(m, fps[i]); e != nil {
			added = append(added, e)
		}
	}
	if len(added) > 0 {
		s.publish()
	}
	return added
}

// Epoch snapshots the currently published entries. The snapshot is
// immutable: it remains a valid prefix of the network forever.
func (s *SharedNet) Epoch() Epoch { return Epoch{entries: *s.view.Load()} }

// Len is the number of published entries.
func (s *SharedNet) Len() int { return len(*s.view.Load()) }

// Entry returns the i-th published entry.
func (s *SharedNet) Entry(i int) *Entry { return (*s.view.Load())[i] }

// Dropped is the number of messages refused as over-limit duplicates.
func (s *SharedNet) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sh.Dropped()
}

// Contains reports whether at least one copy of the message fingerprint has
// been stored.
func (s *SharedNet) Contains(fp codec.Fingerprint) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sh.Contains(fp)
}

// Epoch is an immutable snapshot of the shared network taken at a round
// boundary. Exploration workers of one round all iterate the same epoch, so
// the set of deliverable messages is identical for every worker count.
type Epoch struct {
	entries []*Entry
}

// Len is the number of entries in the snapshot.
func (e Epoch) Len() int { return len(e.entries) }

// Entry returns the i-th entry of the snapshot.
func (e Epoch) Entry(i int) *Entry { return e.entries[i] }
