// Package netstate implements the two network representations of the paper:
//
//   - Multiset: the classic in-flight message multiset I that is part of
//     every global state in the baseline checker (Figure 5). Delivering a
//     message removes it; sending inserts it.
//   - Shared: the single, monotonically growing network object I+ of the
//     local approach (Figures 7 and 8). Messages are never removed —
//     "this is necessary for the completeness of the search, because each
//     message must be received by all the states of the destination node,
//     including the node states that will be explored later" (§2) — and
//     each message remembers how many states of its destination node it has
//     already been executed on, so each round only considers newly added
//     states (§4.2).
package netstate

import (
	"fmt"
	"sort"
	"strings"

	"lmc/internal/codec"
	"lmc/internal/model"
)

// Multiset is the in-flight network I of a global state. The zero value is
// not ready; use NewMultiset. A Multiset maintains an order-insensitive
// running fingerprint so global-state hashing is O(1) in the network part.
type Multiset struct {
	entries map[codec.Fingerprint]*multiEntry
	size    int
	fpSum   uint64 // commutative fingerprint accumulator
}

type multiEntry struct {
	msg   model.Message
	count int
	mix   uint64 // premixed per-copy contribution to fpSum
}

// NewMultiset returns an empty in-flight network.
func NewMultiset() *Multiset {
	return &Multiset{entries: make(map[codec.Fingerprint]*multiEntry)}
}

func premix(fp codec.Fingerprint) uint64 {
	return uint64(codec.Combine(fp))
}

// Add inserts one copy of m, returning its fingerprint.
func (ms *Multiset) Add(m model.Message) codec.Fingerprint {
	fp := model.MessageFingerprint(m)
	e := ms.entries[fp]
	if e == nil {
		e = &multiEntry{msg: m, mix: premix(fp)}
		ms.entries[fp] = e
	}
	e.count++
	ms.size++
	ms.fpSum += e.mix
	return fp
}

// AddAll inserts one copy of every message in c.
func (ms *Multiset) AddAll(c []model.Message) {
	for _, m := range c {
		ms.Add(m)
	}
}

// Remove deletes one copy of the message with fingerprint fp. It reports
// whether a copy was present.
func (ms *Multiset) Remove(fp codec.Fingerprint) bool {
	e := ms.entries[fp]
	if e == nil {
		return false
	}
	e.count--
	ms.size--
	ms.fpSum -= e.mix
	if e.count == 0 {
		delete(ms.entries, fp)
	}
	return true
}

// Contains reports whether at least one copy of fp is in flight.
func (ms *Multiset) Contains(fp codec.Fingerprint) bool {
	return ms.entries[fp] != nil
}

// Len is the total number of in-flight message copies.
func (ms *Multiset) Len() int { return ms.size }

// Distinct is the number of distinct in-flight messages.
func (ms *Multiset) Distinct() int { return len(ms.entries) }

// Fingerprint is an order-insensitive hash of the multiset contents,
// suitable for combining into a global-state fingerprint.
func (ms *Multiset) Fingerprint() codec.Fingerprint {
	return codec.Fingerprint(ms.fpSum ^ uint64(ms.size)*0x9e3779b97f4a7c15)
}

// Clone deep-copies the multiset structure (messages themselves are
// immutable and shared).
func (ms *Multiset) Clone() *Multiset {
	out := &Multiset{
		entries: make(map[codec.Fingerprint]*multiEntry, len(ms.entries)),
		size:    ms.size,
		fpSum:   ms.fpSum,
	}
	for fp, e := range ms.entries {
		out.entries[fp] = &multiEntry{msg: e.msg, count: e.count, mix: e.mix}
	}
	return out
}

// Messages returns the distinct in-flight messages with their counts, in
// deterministic (fingerprint) order.
func (ms *Multiset) Messages() []InFlight {
	out := make([]InFlight, 0, len(ms.entries))
	for fp, e := range ms.entries {
		out = append(out, InFlight{Msg: e.msg, FP: fp, Count: e.count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FP < out[j].FP })
	return out
}

// String renders the multiset for debugging.
func (ms *Multiset) String() string {
	items := ms.Messages()
	parts := make([]string, len(items))
	for i, it := range items {
		if it.Count > 1 {
			parts[i] = fmt.Sprintf("%s x%d", it.Msg.String(), it.Count)
		} else {
			parts[i] = it.Msg.String()
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// InFlight pairs a distinct message with its multiplicity.
type InFlight struct {
	Msg   model.Message
	FP    codec.Fingerprint
	Count int
}

// Entry is a message stored in the shared network I+.
type Entry struct {
	Msg model.Message
	FP  codec.Fingerprint
	// Copy distinguishes tolerated duplicates (see Shared.DupLimit). Copy 0
	// is the original; copies 1..DupLimit of an identical message get
	// distinct identities so the checker delivers them separately.
	Copy int
	// Applied is the number of states of the destination node (a prefix of
	// the checker's per-node visited list) this message has already been
	// executed on. Maintained by the checker, not by this package.
	Applied int
	// RecvEventFP memoizes the fingerprint of the receive event delivering
	// this entry, which is otherwise re-hashed for every (entry, state)
	// execution. Like Applied it is maintained by the checker and owned by
	// the destination node's worker during a delivery phase; zero means not
	// yet computed.
	RecvEventFP codec.Fingerprint
}

// EventFingerprint identifies the delivery of this entry. For copy 0 it is
// the plain message fingerprint — which is what soundness verification
// matches against generated-message hashes.
func (e *Entry) EventFingerprint() codec.Fingerprint {
	if e.Copy == 0 {
		return e.FP
	}
	return codec.Combine(e.FP, codec.Fingerprint(e.Copy))
}

// Independent reports whether two in-flight entries commute: delivering
// them in either order reaches the same system state. The relation used here
// is receiver disjointness — a delivery only ever mutates the state of the
// destination node, so two messages bound for different nodes cannot
// influence each other's handler execution, regardless of senders or
// payloads. This is the independence relation of the partial-order
// reduction: the checker's soundness layer treats per-node event sequences
// as freely commutable exactly when their deliveries are pairwise
// Independent (plus the generated-message condition checked there), and
// skips the dominated delivery orders.
//
// The relation is symmetric, and — because it is a pure function of the two
// entries — stable under growth of I+: adding messages to the shared network
// never changes the verdict for an existing pair (the monotonicity property
// the reduction's parity argument relies on).
func Independent(a, b *Entry) bool {
	return a.Msg.Dst() != b.Msg.Dst()
}

// IndependentMsgs is Independent over raw messages, for callers that have
// not stored the messages in a Shared network.
func IndependentMsgs(a, b model.Message) bool {
	return a.Dst() != b.Dst()
}

// Shared is the single network object I+ of local model checking. Content
// only ever grows. Duplicate messages (identical canonical encoding) are
// admitted up to DupLimit extra copies per message; the paper sets this
// limit to zero for all reported results (§4.2, "Duplicate messages").
type Shared struct {
	// DupLimit is the number of duplicate copies of an identical message
	// tolerated beyond the first. Zero (the default) drops duplicates.
	DupLimit int

	entries []*Entry
	index   map[codec.Fingerprint]int // message fingerprint → copies stored
	dropped int
}

// NewShared returns an empty shared network with the given duplicate limit.
func NewShared(dupLimit int) *Shared {
	return &Shared{DupLimit: dupLimit, index: make(map[codec.Fingerprint]int)}
}

// Add inserts m unless its duplicate budget is exhausted. It returns the
// new entry, or nil if the message was dropped as an over-limit duplicate.
func (sh *Shared) Add(m model.Message) *Entry {
	return sh.AddFP(m, model.MessageFingerprint(m))
}

// AddFP is Add for callers that already hold m's fingerprint (the checker
// fingerprints emissions once at the handler and reuses the hash here).
func (sh *Shared) AddFP(m model.Message, fp codec.Fingerprint) *Entry {
	copies := sh.index[fp]
	if copies >= 1+sh.DupLimit {
		sh.dropped++
		return nil
	}
	e := &Entry{Msg: m, FP: fp, Copy: copies}
	sh.index[fp] = copies + 1
	sh.entries = append(sh.entries, e)
	return e
}

// AddAll inserts every message in c, returning the entries actually added.
func (sh *Shared) AddAll(c []model.Message) []*Entry {
	var added []*Entry
	for _, m := range c {
		if e := sh.Add(m); e != nil {
			added = append(added, e)
		}
	}
	return added
}

// Len is the number of stored entries (distinct messages plus tolerated
// duplicate copies).
func (sh *Shared) Len() int { return len(sh.entries) }

// Dropped is the number of messages refused as over-limit duplicates.
func (sh *Shared) Dropped() int { return sh.dropped }

// Entries exposes the stored entries in insertion order. The checker
// iterates this list each round; because content only grows, indexes are
// stable.
func (sh *Shared) Entries() []*Entry { return sh.entries }

// Entry returns the i-th stored entry.
func (sh *Shared) Entry(i int) *Entry { return sh.entries[i] }

// Contains reports whether at least one copy of the message fingerprint has
// been stored.
func (sh *Shared) Contains(fp codec.Fingerprint) bool { return sh.index[fp] > 0 }

// String renders the shared network for debugging.
func (sh *Shared) String() string {
	parts := make([]string, len(sh.entries))
	for i, e := range sh.entries {
		parts[i] = e.Msg.String()
		if e.Copy > 0 {
			parts[i] += fmt.Sprintf("#%d", e.Copy)
		}
	}
	return "I+{" + strings.Join(parts, ", ") + "}"
}
