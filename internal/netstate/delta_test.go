package netstate

import (
	"strings"
	"testing"

	"lmc/internal/codec"
)

func TestDeltaRoundTripAndVerify(t *testing.T) {
	a := NewSharedNet(1)
	b := NewSharedNet(1)
	seed := []testMsg{{0, 0, 1}, {0, 1, 2}, {0, 1, 2}, {1, 0, 3}}
	for _, m := range seed {
		a.Add(m)
		b.Add(m)
	}
	base := a.Len()
	a.Add(testMsg{0, 1, 9})
	a.Add(testMsg{1, 0, 10})

	d := a.DeltaSince(base)
	if d.Base != base || len(d.FPs) != 2 {
		t.Fatalf("delta: base=%d fps=%d", d.Base, len(d.FPs))
	}

	w := codec.GetWriter()
	defer codec.PutWriter(w)
	d.Encode(w)
	r := codec.NewReader(w.Bytes())
	got := DecodeEpochDelta(r)
	if r.Err() != nil {
		t.Fatalf("decode: %v", r.Err())
	}
	if got.Base != d.Base || len(got.FPs) != len(d.FPs) {
		t.Fatalf("round trip changed shape: %+v vs %+v", got, d)
	}
	for i := range d.FPs {
		if got.FPs[i] != d.FPs[i] || got.Copies[i] != d.Copies[i] {
			t.Fatalf("round trip changed entry %d", i)
		}
	}

	// Replica b replays the same appends: VerifyTail holds and digests match.
	b.Add(testMsg{0, 1, 9})
	b.Add(testMsg{1, 0, 10})
	if err := b.VerifyTail(got); err != nil {
		t.Fatalf("verify on matching replica: %v", err)
	}
	if a.Digest() != b.Digest() {
		t.Fatal("matching replicas disagree on digest")
	}

	// A diverged replica fails VerifyTail and changes its digest.
	c := NewSharedNet(1)
	for _, m := range seed {
		c.Add(m)
	}
	c.Add(testMsg{0, 1, 9})
	c.Add(testMsg{1, 0, 11}) // diverges
	if err := c.VerifyTail(got); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("diverged replica passed VerifyTail: %v", err)
	}
	if c.Digest() == a.Digest() {
		t.Fatal("diverged replica matches digest")
	}

	// Length mismatch.
	short := NewSharedNet(1)
	for _, m := range seed {
		short.Add(m)
	}
	if err := short.VerifyTail(got); err == nil {
		t.Fatal("short replica passed VerifyTail")
	}
}

func TestDecodeEpochDeltaMalformed(t *testing.T) {
	// A huge element count over a tiny buffer must not allocate or panic.
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	w.Int(0)
	w.Int(1 << 40)
	d := DecodeEpochDelta(codec.NewReader(w.Bytes()))
	if len(d.FPs) != 0 {
		t.Fatalf("malformed count decoded %d entries", len(d.FPs))
	}
	// Truncated payload sticks an error on the reader.
	w.Reset()
	EpochDelta{Base: 0, FPs: []codec.Fingerprint{1, 2}, Copies: []int{0, 0}}.Encode(w)
	r := codec.NewReader(w.Bytes()[:len(w.Bytes())-4])
	DecodeEpochDelta(r)
	if r.Err() == nil {
		t.Fatal("truncated delta decoded cleanly")
	}
}

func TestAnyAdmissible(t *testing.T) {
	s := NewSharedNet(0) // no duplicates tolerated
	e := s.Add(testMsg{0, 0, 1})
	if e == nil {
		t.Fatal("first add dropped")
	}
	fresh := codec.Fingerprint(0xdead)
	if !s.AnyAdmissible([]codec.Fingerprint{e.FP, fresh}) {
		t.Fatal("fresh fingerprint reported inadmissible")
	}
	if s.AnyAdmissible([]codec.Fingerprint{e.FP}) {
		t.Fatal("exhausted fingerprint reported admissible")
	}
	if s.AnyAdmissible(nil) {
		t.Fatal("empty batch reported admissible")
	}
}
