package netstate

import (
	"flag"
	"math/rand"
	"testing"

	"lmc/internal/model"
)

// sharedPropSeed seeds the randomized Shared property tests. The seed is
// logged on every run and printed in failure messages, so any failing
// interleaving reproduces with -netstate.seed=N.
var sharedPropSeed = flag.Int64("netstate.seed", 20260806, "seed for Shared property tests")

// TestSharedMonotone is the property test for the paper's central I+
// invariant (§2): the shared network only ever grows. Across randomized Add
// interleavings of duplicate-heavy message streams it checks that no entry
// is ever removed or moved, that stored entries are never mutated, and that
// indexes stay stable — the properties the checker's round structure
// (Applied prefixes into a growing list) depends on.
func TestSharedMonotone(t *testing.T) {
	seed := *sharedPropSeed
	t.Logf("seed %d (reproduce with -netstate.seed=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	for trial := 0; trial < 200; trial++ {
		dupLimit := rng.Intn(3)
		sh := NewShared(dupLimit)
		// Track every entry pointer ever returned and its index.
		type seen struct {
			e   *Entry
			idx int
			fp  uint64
		}
		var history []seen

		steps := 1 + rng.Intn(60)
		for s := 0; s < steps; s++ {
			// Duplicate-heavy stream: few distinct bodies.
			m := testMsg{
				From: 0,
				To:   model.NodeID(1 + rng.Intn(3)),
				Body: rng.Intn(4),
			}
			before := sh.Len()
			e := sh.Add(m)
			if e != nil {
				if sh.Len() != before+1 {
					t.Fatalf("seed=%d trial=%d: accepted Add grew Len by %d", seed, trial, sh.Len()-before)
				}
				if sh.Entry(sh.Len()-1) != e {
					t.Fatalf("seed=%d trial=%d: new entry not appended at the end", seed, trial)
				}
				history = append(history, seen{e: e, idx: sh.Len() - 1, fp: uint64(e.EventFingerprint())})
			} else if sh.Len() != before {
				t.Fatalf("seed=%d trial=%d: dropped Add changed Len", seed, trial)
			}

			// Monotonicity: every entry ever returned is still at its
			// original index, identical pointer, identical identity.
			for _, h := range history {
				if h.idx >= sh.Len() {
					t.Fatalf("seed=%d trial=%d: entry index %d vanished (len now %d)", seed, trial, h.idx, sh.Len())
				}
				if sh.Entry(h.idx) != h.e {
					t.Fatalf("seed=%d trial=%d: entry %d was replaced", seed, trial, h.idx)
				}
				if uint64(h.e.EventFingerprint()) != h.fp {
					t.Fatalf("seed=%d trial=%d: entry %d changed identity", seed, trial, h.idx)
				}
				if !sh.Contains(h.e.FP) {
					t.Fatalf("seed=%d trial=%d: Contains lost a stored message", seed, trial)
				}
			}
		}

		// Duplicate budget: per message fingerprint at most 1+DupLimit
		// copies, numbered 0..copies-1, with distinct event identities.
		copies := map[uint64][]int{}
		events := map[uint64]bool{}
		for _, e := range sh.Entries() {
			copies[uint64(e.FP)] = append(copies[uint64(e.FP)], e.Copy)
			ev := uint64(e.EventFingerprint())
			if events[ev] {
				t.Fatalf("seed=%d trial=%d: duplicate event fingerprint %x", seed, trial, ev)
			}
			events[ev] = true
		}
		for fp, cs := range copies {
			if len(cs) > 1+dupLimit {
				t.Fatalf("seed=%d trial=%d: message %x stored %d copies, limit %d",
					seed, trial, fp, len(cs), 1+dupLimit)
			}
			for want, got := range cs {
				if got != want {
					t.Fatalf("seed=%d trial=%d: message %x copies numbered %v", seed, trial, fp, cs)
				}
			}
		}
		if got := len(sh.Entries()); got != sh.Len() {
			t.Fatalf("seed=%d trial=%d: Entries()=%d but Len()=%d", seed, trial, got, sh.Len())
		}
	}
}

// TestSharedDropAccounting checks Dropped counts exactly the over-limit
// duplicates across a randomized stream: accepted + dropped = offered.
func TestSharedDropAccounting(t *testing.T) {
	seed := *sharedPropSeed
	t.Logf("seed %d (reproduce with -netstate.seed=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed + 1))

	for trial := 0; trial < 100; trial++ {
		dupLimit := rng.Intn(3)
		sh := NewShared(dupLimit)
		offered, accepted := 0, 0
		want := map[uint64]int{} // fingerprint → offered count
		for s := 0; s < 1+rng.Intn(80); s++ {
			m := testMsg{From: 0, To: 1, Body: rng.Intn(3)}
			offered++
			if e := sh.Add(m); e != nil {
				accepted++
				want[uint64(e.FP)]++
			}
		}
		if accepted+sh.Dropped() != offered {
			t.Fatalf("seed=%d trial=%d: accepted %d + dropped %d != offered %d",
				seed, trial, accepted, sh.Dropped(), offered)
		}
		for fp, n := range want {
			if n > 1+dupLimit {
				t.Fatalf("seed=%d trial=%d: message %x accepted %d times, limit %d",
					seed, trial, fp, n, 1+dupLimit)
			}
		}
		if sh.Len() != accepted {
			t.Fatalf("seed=%d trial=%d: Len %d != accepted %d", seed, trial, sh.Len(), accepted)
		}
	}
}
