package netstate

import (
	"flag"
	"math/rand"
	"sync"
	"testing"

	"lmc/internal/model"
)

// sharedPropSeed seeds the randomized Shared property tests. The seed is
// logged on every run and printed in failure messages, so any failing
// interleaving reproduces with -netstate.seed=N.
var sharedPropSeed = flag.Int64("netstate.seed", 20260806, "seed for Shared property tests")

// TestSharedMonotone is the property test for the paper's central I+
// invariant (§2): the shared network only ever grows. Across randomized Add
// interleavings of duplicate-heavy message streams it checks that no entry
// is ever removed or moved, that stored entries are never mutated, and that
// indexes stay stable — the properties the checker's round structure
// (Applied prefixes into a growing list) depends on.
func TestSharedMonotone(t *testing.T) {
	seed := *sharedPropSeed
	t.Logf("seed %d (reproduce with -netstate.seed=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	for trial := 0; trial < 200; trial++ {
		dupLimit := rng.Intn(3)
		sh := NewShared(dupLimit)
		// Track every entry pointer ever returned and its index.
		type seen struct {
			e   *Entry
			idx int
			fp  uint64
		}
		var history []seen

		steps := 1 + rng.Intn(60)
		for s := 0; s < steps; s++ {
			// Duplicate-heavy stream: few distinct bodies.
			m := testMsg{
				From: 0,
				To:   model.NodeID(1 + rng.Intn(3)),
				Body: rng.Intn(4),
			}
			before := sh.Len()
			e := sh.Add(m)
			if e != nil {
				if sh.Len() != before+1 {
					t.Fatalf("seed=%d trial=%d: accepted Add grew Len by %d", seed, trial, sh.Len()-before)
				}
				if sh.Entry(sh.Len()-1) != e {
					t.Fatalf("seed=%d trial=%d: new entry not appended at the end", seed, trial)
				}
				history = append(history, seen{e: e, idx: sh.Len() - 1, fp: uint64(e.EventFingerprint())})
			} else if sh.Len() != before {
				t.Fatalf("seed=%d trial=%d: dropped Add changed Len", seed, trial)
			}

			// Monotonicity: every entry ever returned is still at its
			// original index, identical pointer, identical identity.
			for _, h := range history {
				if h.idx >= sh.Len() {
					t.Fatalf("seed=%d trial=%d: entry index %d vanished (len now %d)", seed, trial, h.idx, sh.Len())
				}
				if sh.Entry(h.idx) != h.e {
					t.Fatalf("seed=%d trial=%d: entry %d was replaced", seed, trial, h.idx)
				}
				if uint64(h.e.EventFingerprint()) != h.fp {
					t.Fatalf("seed=%d trial=%d: entry %d changed identity", seed, trial, h.idx)
				}
				if !sh.Contains(h.e.FP) {
					t.Fatalf("seed=%d trial=%d: Contains lost a stored message", seed, trial)
				}
			}
		}

		// Duplicate budget: per message fingerprint at most 1+DupLimit
		// copies, numbered 0..copies-1, with distinct event identities.
		copies := map[uint64][]int{}
		events := map[uint64]bool{}
		for _, e := range sh.Entries() {
			copies[uint64(e.FP)] = append(copies[uint64(e.FP)], e.Copy)
			ev := uint64(e.EventFingerprint())
			if events[ev] {
				t.Fatalf("seed=%d trial=%d: duplicate event fingerprint %x", seed, trial, ev)
			}
			events[ev] = true
		}
		for fp, cs := range copies {
			if len(cs) > 1+dupLimit {
				t.Fatalf("seed=%d trial=%d: message %x stored %d copies, limit %d",
					seed, trial, fp, len(cs), 1+dupLimit)
			}
			for want, got := range cs {
				if got != want {
					t.Fatalf("seed=%d trial=%d: message %x copies numbered %v", seed, trial, fp, cs)
				}
			}
		}
		if got := len(sh.Entries()); got != sh.Len() {
			t.Fatalf("seed=%d trial=%d: Entries()=%d but Len()=%d", seed, trial, got, sh.Len())
		}
	}
}

// TestSharedNetConcurrentMonotone is the concurrent version of the I+
// monotonicity property, exercised under -race: several writer goroutines
// append randomized duplicate-heavy batches to one SharedNet while reader
// goroutines continuously snapshot epochs. Every reader must observe only
// monotone growth — each epoch a prefix-extension of the previous one, with
// entry identities stable at their indexes — which is the property the
// parallel exploration engine's per-round epoch snapshots rely on.
func TestSharedNetConcurrentMonotone(t *testing.T) {
	seed := *sharedPropSeed
	t.Logf("seed %d (reproduce with -netstate.seed=%d)", seed, seed)

	const (
		writers       = 4
		readers       = 3
		stepsPerTrial = 150
	)
	for trial := 0; trial < 20; trial++ {
		dupLimit := trial % 3
		sn := NewSharedNet(dupLimit)
		done := make(chan struct{})
		errs := make(chan string, readers)

		var readerWG sync.WaitGroup
		for r := 0; r < readers; r++ {
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				var prev Epoch
				var prevIDs []uint64
				for {
					ep := sn.Epoch()
					if ep.Len() < prev.Len() {
						errs <- "epoch shrank"
						return
					}
					for i := 0; i < prev.Len(); i++ {
						if ep.Entry(i) != prev.Entry(i) {
							errs <- "entry replaced across epochs"
							return
						}
						if uint64(ep.Entry(i).EventFingerprint()) != prevIDs[i] {
							errs <- "entry changed identity"
							return
						}
					}
					prev = ep
					prevIDs = prevIDs[:0]
					for i := 0; i < ep.Len(); i++ {
						prevIDs = append(prevIDs, uint64(ep.Entry(i).EventFingerprint()))
					}
					select {
					case <-done:
						return
					default:
					}
				}
			}()
		}

		offered := make([]int, writers)
		var writerWG sync.WaitGroup
		for w := 0; w < writers; w++ {
			writerWG.Add(1)
			go func(w int) {
				defer writerWG.Done()
				rng := rand.New(rand.NewSource(seed + int64(trial*writers+w)))
				for s := 0; s < stepsPerTrial; s++ {
					batch := make([]model.Message, 1+rng.Intn(3))
					for i := range batch {
						batch[i] = testMsg{
							From: model.NodeID(w),
							To:   model.NodeID(1 + rng.Intn(3)),
							Body: rng.Intn(5),
						}
					}
					offered[w] += len(batch)
					sn.AddAll(batch)
				}
			}(w)
		}

		writerWG.Wait()
		close(done)
		readerWG.Wait()

		select {
		case msg := <-errs:
			t.Fatalf("seed=%d trial=%d: %s", seed, trial, msg)
		default:
		}

		// Post-conditions on the final network: accounting and dup limits as
		// in the sequential property test.
		total := 0
		for _, n := range offered {
			total += n
		}
		if sn.Len()+sn.Dropped() != total {
			t.Fatalf("seed=%d trial=%d: len %d + dropped %d != offered %d",
				seed, trial, sn.Len(), sn.Dropped(), total)
		}
		finalEp := sn.Epoch()
		copies := map[uint64]int{}
		for i := 0; i < finalEp.Len(); i++ {
			copies[uint64(finalEp.Entry(i).FP)]++
		}
		for fp, n := range copies {
			if n > 1+dupLimit {
				t.Fatalf("seed=%d trial=%d: message %x stored %d copies, limit %d",
					seed, trial, fp, n, 1+dupLimit)
			}
		}
	}
}

// TestSharedDropAccounting checks Dropped counts exactly the over-limit
// duplicates across a randomized stream: accepted + dropped = offered.
func TestSharedDropAccounting(t *testing.T) {
	seed := *sharedPropSeed
	t.Logf("seed %d (reproduce with -netstate.seed=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed + 1))

	for trial := 0; trial < 100; trial++ {
		dupLimit := rng.Intn(3)
		sh := NewShared(dupLimit)
		offered, accepted := 0, 0
		want := map[uint64]int{} // fingerprint → offered count
		for s := 0; s < 1+rng.Intn(80); s++ {
			m := testMsg{From: 0, To: 1, Body: rng.Intn(3)}
			offered++
			if e := sh.Add(m); e != nil {
				accepted++
				want[uint64(e.FP)]++
			}
		}
		if accepted+sh.Dropped() != offered {
			t.Fatalf("seed=%d trial=%d: accepted %d + dropped %d != offered %d",
				seed, trial, accepted, sh.Dropped(), offered)
		}
		for fp, n := range want {
			if n > 1+dupLimit {
				t.Fatalf("seed=%d trial=%d: message %x accepted %d times, limit %d",
					seed, trial, fp, n, 1+dupLimit)
			}
		}
		if sh.Len() != accepted {
			t.Fatalf("seed=%d trial=%d: Len %d != accepted %d", seed, trial, sh.Len(), accepted)
		}
	}
}
