package obs

import (
	"expvar"
	"log/slog"
	"sync"
)

// LogObserver logs events through log/slog: run/pass milestones,
// violations, heartbeats and run ends at Info, per-round chatter
// (round start/end and the barrier batch aggregates) at Debug — so the
// default Info level yields a readable progress log and Debug yields the
// full stream.
type LogObserver struct {
	l *slog.Logger
}

// NewLogObserver builds a LogObserver; a nil logger means slog.Default().
func NewLogObserver(l *slog.Logger) *LogObserver {
	if l == nil {
		l = slog.Default()
	}
	return &LogObserver{l: l}
}

// OnEvent implements Observer.
func (o *LogObserver) OnEvent(e Event) {
	attrs := []any{
		slog.String("checker", e.Checker),
		slog.Duration("elapsed", e.Elapsed),
	}
	switch e.Kind {
	case KindRunStart:
		o.l.Info("checker run started", attrs...)
	case KindPassStart:
		o.l.Info("exploration pass", append(attrs,
			slog.Int("pass", e.Pass), slog.Int("localBound", e.LocalBound))...)
	case KindRoundStart:
		o.l.Debug("round started", append(attrs,
			slog.Int("pass", e.Pass), slog.Int("round", e.Round))...)
	case KindRoundEnd:
		o.l.Debug("round finished", append(attrs,
			slog.Int("pass", e.Pass), slog.Int("round", e.Round),
			slog.Int("depth", e.Depth), slog.Int("nodeStates", e.Count))...)
	case KindSystemStates:
		o.l.Debug("system states checked", append(attrs,
			slog.Int("round", e.Round), slog.Int("count", e.Count),
			slog.Duration("phaseTime", e.Phases.SystemStates))...)
	case KindSoundness:
		o.l.Debug("soundness calls", append(attrs,
			slog.Int("round", e.Round), slog.Int("calls", e.Count),
			slog.Int("sequences", e.Sequences),
			slog.Duration("phaseTime", e.Phases.Soundness))...)
	case KindPrelimViolations:
		o.l.Debug("preliminary violations", append(attrs,
			slog.Int("round", e.Round), slog.Int("count", e.Count))...)
	case KindViolation:
		o.l.Info("violation confirmed", append(attrs,
			slog.String("invariant", e.Invariant),
			slog.String("detail", e.Detail), slog.Int("depth", e.Depth))...)
	case KindHeartbeat:
		o.l.Info("heartbeat", append(attrs,
			slog.Int("transitions", e.Counters.Transitions),
			slog.Int("nodeStates", e.Counters.NodeStates),
			slog.Int("systemStates", e.Counters.SystemStates),
			slog.Int("soundnessCalls", e.Counters.SoundnessCalls),
			slog.Int("confirmedBugs", e.Counters.ConfirmedBugs),
			slog.Uint64("heapBytes", e.HeapBytes),
			slog.Duration("explore", e.Phases.Explore),
			slog.Duration("systemStateTime", e.Phases.SystemStates),
			slog.Duration("soundnessTime", e.Phases.Soundness))...)
	case KindSnapshot:
		o.l.Info("online snapshot", append(attrs,
			slog.Int("run", e.Count), slog.Float64("simTime", e.SimTime))...)
	case KindRunEnd:
		o.l.Info("checker run finished", append(attrs,
			slog.String("reason", e.Reason.String()),
			slog.Int("transitions", e.Counters.Transitions),
			slog.Int("nodeStates", e.Counters.NodeStates),
			slog.Int("systemStates", e.Counters.SystemStates),
			slog.Int("confirmedBugs", e.Counters.ConfirmedBugs),
			slog.Duration("explore", e.Phases.Explore),
			slog.Duration("systemStateTime", e.Phases.SystemStates),
			slog.Duration("soundnessTime", e.Phases.Soundness))...)
	default:
		o.l.Debug(e.Kind.String(), attrs...)
	}
}

// ExpvarObserver publishes the live counters of a run under an expvar map,
// so any process that imports net/http/pprof (or expvar itself) serves them
// on /debug/vars. The same named map is reused across observers — expvar
// names are process-global and cannot be unregistered — which lets
// consecutive runs (the online driver's restarts, a soak loop) update one
// dashboard.
type ExpvarObserver struct {
	transitions, nodeStates, systemStates   *expvar.Int
	soundnessCalls, sequences, prelim, bugs *expvar.Int
	coverHits, coverMisses, witnessSkips    *expvar.Int
	rounds, passes, heapBytes, elapsedMS    *expvar.Int
	reason                                  *expvar.String
}

var (
	expvarMu   sync.Mutex
	expvarMaps = map[string]*ExpvarObserver{}
)

// NewExpvarObserver returns the observer publishing under map name (e.g.
// "lmc"). Calling it again with the same name returns the same observer.
func NewExpvarObserver(name string) *ExpvarObserver {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if o, ok := expvarMaps[name]; ok {
		return o
	}
	m := expvar.NewMap(name)
	o := &ExpvarObserver{
		transitions:    new(expvar.Int),
		nodeStates:     new(expvar.Int),
		systemStates:   new(expvar.Int),
		soundnessCalls: new(expvar.Int),
		sequences:      new(expvar.Int),
		prelim:         new(expvar.Int),
		bugs:           new(expvar.Int),
		coverHits:      new(expvar.Int),
		coverMisses:    new(expvar.Int),
		witnessSkips:   new(expvar.Int),
		rounds:         new(expvar.Int),
		passes:         new(expvar.Int),
		heapBytes:      new(expvar.Int),
		elapsedMS:      new(expvar.Int),
		reason:         new(expvar.String),
	}
	m.Set("transitions", o.transitions)
	m.Set("node_states", o.nodeStates)
	m.Set("system_states", o.systemStates)
	m.Set("soundness_calls", o.soundnessCalls)
	m.Set("sequences_checked", o.sequences)
	m.Set("prelim_violations", o.prelim)
	m.Set("confirmed_bugs", o.bugs)
	m.Set("cover_index_hits", o.coverHits)
	m.Set("cover_index_misses", o.coverMisses)
	m.Set("witness_skips", o.witnessSkips)
	m.Set("rounds", o.rounds)
	m.Set("passes", o.passes)
	m.Set("heap_bytes", o.heapBytes)
	m.Set("elapsed_ms", o.elapsedMS)
	m.Set("stop_reason", o.reason)
	expvarMaps[name] = o
	return o
}

// OnEvent implements Observer.
func (o *ExpvarObserver) OnEvent(e Event) {
	switch e.Kind {
	case KindRunStart:
		o.rounds.Set(0)
		o.passes.Set(0)
		o.reason.Set("running")
	case KindPassStart:
		o.passes.Set(int64(e.Pass))
	case KindRoundEnd:
		o.rounds.Set(int64(e.Round))
	case KindHeartbeat, KindRunEnd:
		o.transitions.Set(int64(e.Counters.Transitions))
		o.nodeStates.Set(int64(e.Counters.NodeStates))
		o.systemStates.Set(int64(e.Counters.SystemStates))
		o.soundnessCalls.Set(int64(e.Counters.SoundnessCalls))
		o.sequences.Set(int64(e.Counters.SequencesChecked))
		o.prelim.Set(int64(e.Counters.PreliminaryViolations))
		o.bugs.Set(int64(e.Counters.ConfirmedBugs))
		o.coverHits.Set(int64(e.Counters.CoverIndexHits))
		o.coverMisses.Set(int64(e.Counters.CoverIndexMisses))
		o.witnessSkips.Set(int64(e.Counters.WitnessSkips))
		o.heapBytes.Set(int64(e.HeapBytes))
		o.elapsedMS.Set(e.Elapsed.Milliseconds())
		if e.Kind == KindRunEnd {
			o.reason.Set(e.Reason.String())
		}
	}
}

// Recorder collects every event, for tests and post-hoc analysis. It is
// safe for concurrent use (an online session interleaves driver and checker
// events from one goroutine, but harnesses may share a Recorder across
// runs).
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// OnEvent implements Observer.
func (r *Recorder) OnEvent(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Count returns how many events of kind k were recorded.
func (r *Recorder) Count(k Kind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Reset drops everything recorded.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}
