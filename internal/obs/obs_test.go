package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"lmc/internal/stats"
)

func TestStopReasonStrings(t *testing.T) {
	want := map[StopReason]string{
		StopFixpoint:    "fixpoint",
		StopBudget:      "budget",
		StopTransitions: "transitions",
		StopCancelled:   "cancelled",
		StopFirstBug:    "first-bug",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), s)
		}
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty Multi must collapse to nil (the checkers' fast path)")
	}
	r := &Recorder{}
	if Multi(nil, r) != Observer(r) {
		t.Fatal("single-observer Multi must not wrap")
	}
	r2 := &Recorder{}
	Multi(r, r2).OnEvent(Event{Kind: KindRunStart})
	if r.Count(KindRunStart) != 1 || r2.Count(KindRunStart) != 1 {
		t.Fatal("fan-out did not reach every observer")
	}
}

func TestAttribution(t *testing.T) {
	c := &stats.Counters{
		SystemStateTime: 30 * time.Millisecond,
		SoundnessTime:   20 * time.Millisecond,
	}
	p := Attribution(c, 100*time.Millisecond)
	if p.Explore != 50*time.Millisecond {
		t.Fatalf("Explore = %v, want 50ms", p.Explore)
	}
	// Clock skew between the phase timers and the caller's elapsed reading
	// must clamp at zero, not go negative.
	p = Attribution(c, 40*time.Millisecond)
	if p.Explore != 0 {
		t.Fatalf("Explore = %v, want 0 under skew", p.Explore)
	}
}

func TestLogObserverLevels(t *testing.T) {
	var buf bytes.Buffer
	o := NewLogObserver(slog.New(slog.NewTextHandler(&buf, nil))) // Info level
	o.OnEvent(Event{Kind: KindRunStart, Checker: "lmc"})
	o.OnEvent(Event{Kind: KindRoundStart, Checker: "lmc", Pass: 1, Round: 1})
	o.OnEvent(Event{Kind: KindViolation, Checker: "lmc", Invariant: "agreement", Detail: "split"})
	out := buf.String()
	if !strings.Contains(out, "checker run started") {
		t.Fatalf("run start not logged at Info:\n%s", out)
	}
	if strings.Contains(out, "round started") {
		t.Fatalf("per-round chatter leaked to Info:\n%s", out)
	}
	if !strings.Contains(out, "agreement") {
		t.Fatalf("violation not logged:\n%s", out)
	}
}

func TestExpvarObserverReuse(t *testing.T) {
	a := NewExpvarObserver("obs_test_reuse")
	b := NewExpvarObserver("obs_test_reuse")
	if a != b {
		t.Fatal("same name must return the same observer (expvar names are process-global)")
	}
	a.OnEvent(Event{Kind: KindRunEnd, Reason: StopBudget,
		Counters: stats.Counters{Transitions: 42}, Elapsed: time.Second})
	if got := a.transitions.Value(); got != 42 {
		t.Fatalf("transitions = %d, want 42", got)
	}
	if got := a.reason.Value(); got != "budget" {
		t.Fatalf("reason = %q, want %q", got, "budget")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := &Recorder{}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				r.OnEvent(Event{Kind: KindHeartbeat})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if r.Count(KindHeartbeat) != 400 {
		t.Fatalf("recorded %d events, want 400", r.Count(KindHeartbeat))
	}
}
