// Package obs is the run-event observability layer shared by every checker
// in the repository: the local checker (internal/core), the global baseline
// (internal/mc/global), and the online driver (internal/online) all emit
// the same typed events into an Observer supplied through their options.
//
// The layer is deliberately zero-dependency (standard library only) and
// deliberately out of the hot path: checkers buffer events per exploration
// round and flush the buffer at the round's merge barrier, on the
// sequential merge goroutine — workers never call an observer, so an active
// observer cannot perturb the bit-for-bit determinism of parallel runs, and
// a nil observer costs a single branch per barrier.
//
// Events answer the questions a long-running checker run raises while it is
// still running: which pass/round is executing, which phase (exploration,
// system-state creation, soundness verification) is burning the budget, how
// the counters and the heap are growing, and what has been found so far.
package obs

import (
	"fmt"
	"time"

	"lmc/internal/stats"
)

// Kind is the type tag of a run event.
type Kind int

const (
	// KindRunStart opens a checker run.
	KindRunStart Kind = iota
	// KindPassStart opens one exploration pass (the local checker restarts
	// a pass from scratch whenever LocalBoundStep deepens the local-event
	// bound); Event.LocalBound carries the pass's bound.
	KindPassStart
	// KindRoundStart opens one exploration round within a pass.
	KindRoundStart
	// KindRoundEnd closes a round at its merge barrier; Event.Depth carries
	// the deepest total system-state depth reached so far and Event.Count
	// the cumulative visited node states.
	KindRoundEnd
	// KindSystemStates reports the system states materialized and
	// invariant-checked since the previous barrier (Event.Count), with the
	// wall time attributed to the system-state phase in Event.Phases.
	KindSystemStates
	// KindSoundness reports the soundness-verification calls executed since
	// the previous barrier (Event.Count) and the event-sequence combinations
	// they examined (Event.Sequences).
	KindSoundness
	// KindPrelimViolations reports invariant violations detected since the
	// previous barrier that still await soundness verification
	// (Event.Count).
	KindPrelimViolations
	// KindViolation reports one confirmed (soundness-verified) violation;
	// Event.Invariant and Event.Detail identify it, Event.Depth its total
	// depth.
	KindViolation
	// KindHeartbeat is a periodic snapshot: Event.Counters (cumulative),
	// Event.HeapBytes (heap growth since the run's baseline), and
	// Event.Phases (cumulative per-phase wall-time attribution). Heartbeats
	// are emitted at round barriers when the configured interval elapsed, so
	// their timing is wall-clock-dependent but their contents are the same
	// deterministic merged state every worker count produces.
	KindHeartbeat
	// KindSnapshot is emitted by the online driver when it captures a live
	// state and restarts the checker from it; Event.SimTime is the simulated
	// time of the snapshot and Event.Count the 1-based restart index.
	KindSnapshot
	// KindRunEnd closes a run: final Event.Counters, Event.Phases, and
	// Event.Reason (why the run stopped).
	KindRunEnd
	// KindShardRound reports one shard's contribution to a round of sharded
	// multi-process exploration: Event.Shard/Event.Shards identify the shard,
	// Event.Count the delivery records it shipped for the round.
	KindShardRound
	// KindShardDegraded reports that the sharded engine abandoned its worker
	// processes and fell back to in-process exploration; Event.Detail carries
	// the reason (EOF from a dead worker, digest divergence, spawn failure)
	// and Event.Shard the implicated shard (-1 when not attributable).
	KindShardDegraded
	// KindCheckpoint reports one round checkpoint handed to the configured
	// sink at the round's merge barrier: Event.Count carries the delivery
	// records captured for the round. A non-empty Event.Detail means the sink
	// failed and checkpointing was disabled for the rest of the run (the run
	// itself continues).
	KindCheckpoint
	// KindResume reports that a round's delivery walk was primed with the
	// records of a previous run's checkpoint (Event.Count records). A
	// non-empty Event.Detail reports a post-round digest mismatch against the
	// stored checkpoint — the run stops with StopResumeDiverged and the
	// caller should invalidate the checkpoint and re-run fresh.
	KindResume
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRunStart:
		return "run-start"
	case KindPassStart:
		return "pass-start"
	case KindRoundStart:
		return "round-start"
	case KindRoundEnd:
		return "round-end"
	case KindSystemStates:
		return "system-states"
	case KindSoundness:
		return "soundness"
	case KindPrelimViolations:
		return "prelim-violations"
	case KindViolation:
		return "violation"
	case KindHeartbeat:
		return "heartbeat"
	case KindSnapshot:
		return "snapshot"
	case KindRunEnd:
		return "run-end"
	case KindShardRound:
		return "shard-round"
	case KindShardDegraded:
		return "shard-degraded"
	case KindCheckpoint:
		return "checkpoint"
	case KindResume:
		return "resume"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// StopReason says why a checker run ended. It replaces the old bool-only
// Complete signal: Complete=false used to mean "some stop criterion fired"
// with no way to tell which one.
type StopReason int

const (
	// StopFixpoint: exploration exhausted the reachable space within the
	// configured bounds (the run is Complete).
	StopFixpoint StopReason = iota
	// StopBudget: the wall-clock budget (Options.Budget) expired.
	StopBudget
	// StopTransitions: the transition cap (Options.MaxTransitions) was hit.
	StopTransitions
	// StopCancelled: the context passed to CheckContext was cancelled; the
	// local checker observes cancellation at round barriers only, so the
	// partial result is bit-for-bit identical for every worker count.
	StopCancelled
	// StopFirstBug: Options.StopAtFirstBug ended the run at the first
	// confirmed violation.
	StopFirstBug
	// StopResumeDiverged: a run resumed from a checkpoint produced a
	// post-round digest that disagreed with the stored one — the checkpoint
	// belongs to a different code or option state. The partial result is
	// meaningless; invalidate the checkpoint and re-run fresh.
	StopResumeDiverged
)

// String names the reason.
func (r StopReason) String() string {
	switch r {
	case StopFixpoint:
		return "fixpoint"
	case StopBudget:
		return "budget"
	case StopTransitions:
		return "transitions"
	case StopCancelled:
		return "cancelled"
	case StopFirstBug:
		return "first-bug"
	case StopResumeDiverged:
		return "resume-diverged"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// PhaseTimes attributes wall time to the phases of a local-checker run.
// Explore is derived (elapsed minus the measured phases, clamped at zero);
// SystemStates includes the invariant evaluation on materialized
// combinations; Soundness the witness searches and sequence validation;
// ShardWait the coordinator time spent blocked on shard-worker frames
// (zero outside sharded runs).
type PhaseTimes struct {
	Explore      time.Duration
	SystemStates time.Duration
	Soundness    time.Duration
	ShardWait    time.Duration
}

// Attribution derives the per-phase split from cumulative counters.
func Attribution(c *stats.Counters, elapsed time.Duration) PhaseTimes {
	explore := elapsed - c.SystemStateTime - c.SoundnessTime - c.ShardWaitTime
	if explore < 0 {
		explore = 0
	}
	return PhaseTimes{
		Explore:      explore,
		SystemStates: c.SystemStateTime,
		Soundness:    c.SoundnessTime,
		ShardWait:    c.ShardWaitTime,
	}
}

// Event is one run event. Only the fields documented for the event's Kind
// are meaningful; everything else is zero.
type Event struct {
	Kind Kind
	// Checker tags the emitting checker: "lmc", "global", or "online".
	Checker string
	// Elapsed is the wall time since the run started.
	Elapsed time.Duration
	// Pass is the 1-based exploration pass (local checker).
	Pass int
	// Round is the 1-based round within the pass (local checker) or the
	// completed BFS depth (global checker's per-depth events).
	Round int
	// LocalBound is the pass's local-event bound (KindPassStart).
	LocalBound int
	// Depth is the deepest exploration point reached so far (KindRoundEnd,
	// KindRunEnd) or the violation's total depth (KindViolation).
	Depth int
	// Count is the event's cardinality: batch sizes for the barrier
	// aggregates, cumulative node states for KindRoundEnd, the restart
	// index for KindSnapshot.
	Count int
	// Sequences is the number of event-sequence combinations examined
	// (KindSoundness).
	Sequences int
	// Invariant and Detail identify a violation (KindViolation).
	Invariant string
	Detail    string
	// Reason is why the run ended (KindRunEnd).
	Reason StopReason
	// Counters is a snapshot of the cumulative run counters (KindHeartbeat,
	// KindRunEnd).
	Counters stats.Counters
	// HeapBytes is the heap growth since the run's baseline
	// (KindHeartbeat).
	HeapBytes uint64
	// Phases is the per-phase wall-time attribution (KindHeartbeat,
	// KindRunEnd, KindSystemStates).
	Phases PhaseTimes
	// SimTime is the simulated time of an online snapshot (KindSnapshot).
	SimTime float64
	// Shard and Shards identify a shard of a multi-process run
	// (KindShardRound, KindShardDegraded): shard index (or -1) and total
	// shard count.
	Shard  int
	Shards int
}

// String renders a compact single-line form, the same shape LogObserver
// logs.
func (e Event) String() string {
	s := fmt.Sprintf("%s %s", e.Checker, e.Kind)
	switch e.Kind {
	case KindPassStart:
		s += fmt.Sprintf(" pass=%d bound=%d", e.Pass, e.LocalBound)
	case KindRoundStart:
		s += fmt.Sprintf(" pass=%d round=%d", e.Pass, e.Round)
	case KindRoundEnd:
		s += fmt.Sprintf(" pass=%d round=%d depth=%d states=%d", e.Pass, e.Round, e.Depth, e.Count)
	case KindSystemStates, KindPrelimViolations:
		s += fmt.Sprintf(" pass=%d round=%d count=%d", e.Pass, e.Round, e.Count)
	case KindSoundness:
		s += fmt.Sprintf(" pass=%d round=%d calls=%d sequences=%d", e.Pass, e.Round, e.Count, e.Sequences)
	case KindViolation:
		s += fmt.Sprintf(" invariant=%q depth=%d", e.Invariant, e.Depth)
	case KindHeartbeat:
		s += fmt.Sprintf(" transitions=%d nodeStates=%d systemStates=%d heap=%d",
			e.Counters.Transitions, e.Counters.NodeStates, e.Counters.SystemStates, e.HeapBytes)
	case KindSnapshot:
		s += fmt.Sprintf(" run=%d simTime=%.0f", e.Count, e.SimTime)
	case KindRunEnd:
		s += fmt.Sprintf(" reason=%s transitions=%d bugs=%d",
			e.Reason, e.Counters.Transitions, e.Counters.ConfirmedBugs)
	case KindShardRound:
		s += fmt.Sprintf(" pass=%d round=%d shard=%d/%d records=%d",
			e.Pass, e.Round, e.Shard, e.Shards, e.Count)
	case KindShardDegraded:
		s += fmt.Sprintf(" shard=%d/%d reason=%q", e.Shard, e.Shards, e.Detail)
	case KindCheckpoint:
		s += fmt.Sprintf(" pass=%d round=%d records=%d", e.Pass, e.Round, e.Count)
		if e.Detail != "" {
			s += fmt.Sprintf(" error=%q", e.Detail)
		}
	case KindResume:
		s += fmt.Sprintf(" pass=%d round=%d records=%d", e.Pass, e.Round, e.Count)
		if e.Detail != "" {
			s += fmt.Sprintf(" diverged=%q", e.Detail)
		}
	}
	return s
}

// Observer receives run events. Implementations must be cheap relative to
// a checker round (they run on the sequential merge goroutine) and must not
// retain the Event's Counters pointer-free snapshot beyond the call unless
// they copy it — the checkers reuse nothing, the snapshot is by value, so
// retaining is in fact safe; the requirement is only about cost.
//
// Observers attached to a run with Options.Workers > 1 are still called
// from a single goroutine (the merge barrier); they need no internal
// locking for that. An observer shared across concurrently running checkers
// (the online driver never does this, but a custom harness might) must
// synchronize itself.
type Observer interface {
	OnEvent(Event)
}

// FuncObserver adapts a function to Observer.
type FuncObserver func(Event)

// OnEvent implements Observer.
func (f FuncObserver) OnEvent(e Event) { f(e) }

// Nop is the no-op Observer; a nil Observer in checker options behaves the
// same without any call at all.
type Nop struct{}

// OnEvent implements Observer.
func (Nop) OnEvent(Event) {}

// Multi fans every event out to several observers, in order.
func Multi(os ...Observer) Observer {
	list := make([]Observer, 0, len(os))
	for _, o := range os {
		if o != nil {
			list = append(list, o)
		}
	}
	// Nil in, nil out: callers rely on a nil Observer keeping the checkers'
	// zero-cost fast path, and a single observer needs no fan-out shim.
	switch len(list) {
	case 0:
		return nil
	case 1:
		return list[0]
	}
	return multi(list)
}

type multi []Observer

func (m multi) OnEvent(e Event) {
	for _, o := range m {
		o.OnEvent(e)
	}
}
