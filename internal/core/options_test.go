package core

import (
	"testing"
	"time"

	"lmc/internal/actordemo"
	"lmc/internal/model"
	"lmc/internal/protocols/paxos"
	"lmc/internal/protocols/tree"
	"lmc/internal/protocols/twophase"
)

func paxosSpace() (*paxos.Machine, model.SystemState) {
	m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	return m, model.InitialSystem(m)
}

// TestGenOptExploreSameNodeStates: the reduction changes which system
// states are materialized, never which node states are explored.
func TestGenOptExploreSameNodeStates(t *testing.T) {
	m, start := paxosSpace()
	gen := Check(m, start, Options{Invariant: paxos.Agreement()})
	opt := Check(m, start, Options{Invariant: paxos.Agreement(), Reduction: paxos.Reduction{}})
	if gen.Stats.NodeStates != opt.Stats.NodeStates {
		t.Fatalf("node states differ: gen=%d opt=%d", gen.Stats.NodeStates, opt.Stats.NodeStates)
	}
	if gen.Stats.Transitions != opt.Stats.Transitions {
		t.Fatalf("transitions differ: gen=%d opt=%d", gen.Stats.Transitions, opt.Stats.Transitions)
	}
	if opt.Stats.SystemStates >= gen.Stats.SystemStates {
		t.Fatalf("reduction did not reduce: opt=%d gen=%d",
			opt.Stats.SystemStates, gen.Stats.SystemStates)
	}
}

// TestWorkersParity: the worker pool is an implementation detail — every
// worker count must produce bit-for-bit identical results: the same bugs,
// in the same order, with the same system states, and identical
// deterministic counters. SoundnessShare is disabled in every case because
// time-based deferral is the one intentionally wall-clock-dependent knob.
func TestWorkersParity(t *testing.T) {
	treeInflight := tree.NewPaperTree()
	actorBug := actordemo.NewAdapter(4, actordemo.MajorityBug, 2)
	cases := []struct {
		name string
		m    model.Machine
		opt  Options
	}{
		{
			name: "paxos-gen",
			m:    paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7}),
			opt:  Options{Invariant: paxos.Agreement(), SoundnessShare: -1},
		},
		{
			name: "paxos-opt",
			m:    paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7}),
			opt: Options{Invariant: paxos.Agreement(), Reduction: paxos.Reduction{},
				SoundnessShare: -1},
		},
		{
			// A bug-bearing space: exercises preliminary violations, the
			// speculative confirmation batch, and Bug ordering.
			name: "twophase-majority",
			m:    twophase.New(4, twophase.MajorityBug, 2),
			opt:  Options{Invariant: twophase.Atomicity(), SoundnessShare: -1},
		},
		{
			// Local invariants + seeded in-flight messages: exercises the
			// deferred local-invariant checks and witness searches.
			name: "tree-inflight",
			m:    treeInflight,
			opt: Options{
				Invariant: treeInflight.CausalityInvariant(),
				InitialMessages: []model.Message{
					tree.Forward{From: 0, To: 1},
					tree.Forward{From: 0, To: 2},
				},
				SoundnessShare: -1,
			},
		},
		{
			// A real implementation behind the actorcheck adapter: parity
			// must hold for blob-backed node states too, including the
			// raw-replay confirmation running inside parallel soundness
			// workers.
			name: "actordemo-majority",
			m:    actorBug,
			opt:  Options{Invariant: actordemo.Atomicity(actorBug), SoundnessShare: -1},
		},
		{
			name: "actordemo-majority-opt",
			m:    actorBug,
			opt: Options{Invariant: actordemo.Atomicity(actorBug),
				Reduction: actordemo.Reduction{Ad: actorBug}, SoundnessShare: -1},
		},
		{
			// Reductions on: the symmetry skip predicate, the fixpoint orbit
			// sweep, and the partial-order soundness search must all stay
			// bit-for-bit across worker counts.
			name: "paxos-gen-reduced",
			m:    paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7}),
			opt: Options{Invariant: paxos.Agreement(), SoundnessShare: -1,
				Reduce: Reductions{Symmetry: true, PartialOrder: true}},
		},
		{
			// Reductions on over a bug-bearing space: orbit sweep and
			// clean-twin caching interact with speculative confirmation.
			name: "twophase-majority-reduced",
			m:    twophase.New(4, twophase.MajorityBug, 2),
			opt: Options{Invariant: twophase.Atomicity(), SoundnessShare: -1,
				Reduce: Reductions{Symmetry: true, PartialOrder: true}},
		},
		{
			// A transition cap forces canonical charge order; the pool must
			// still agree bit-for-bit at the cutoff.
			name: "paxos-gen-capped",
			m:    paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7}),
			opt: Options{Invariant: paxos.Agreement(), MaxTransitions: 500,
				SoundnessShare: -1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			start := model.InitialSystem(tc.m)
			run := func(workers int) *Result {
				o := tc.opt
				o.Workers = workers
				return Check(tc.m, start, o)
			}
			base := run(-1) // forced sequential reference
			for _, w := range []int{0, 1, 4, 8} {
				got := run(w)
				assertSameResult(t, w, base, got)
			}
		})
	}
}

// assertSameResult fails the test if two runs differ in any deterministic
// counter or in their confirmed bug list.
func assertSameResult(t *testing.T, workers int, base, got *Result) {
	t.Helper()
	b, g := base.Stats, got.Stats
	if b.SystemStates != g.SystemStates ||
		b.InvariantChecks != g.InvariantChecks ||
		b.NodeStates != g.NodeStates ||
		b.Transitions != g.Transitions ||
		b.PreliminaryViolations != g.PreliminaryViolations ||
		b.SoundnessCalls != g.SoundnessCalls ||
		b.SequencesChecked != g.SequencesChecked ||
		b.ConfirmedBugs != g.ConfirmedBugs ||
		b.DuplicatesDropped != g.DuplicatesDropped ||
		b.SymmetrySkips != g.SymmetrySkips ||
		b.OrbitChecks != g.OrbitChecks ||
		b.PORPathsDeduped != g.PORPathsDeduped ||
		b.PORDetached != g.PORDetached {
		t.Fatalf("workers=%d diverged from sequential:\nseq: %s\ngot: %s",
			workers, b.String(), g.String())
	}
	if base.Complete != got.Complete {
		t.Fatalf("workers=%d completeness diverged: seq=%v got=%v",
			workers, base.Complete, got.Complete)
	}
	if len(base.Bugs) != len(got.Bugs) {
		t.Fatalf("workers=%d bug count diverged: seq=%d got=%d",
			workers, len(base.Bugs), len(got.Bugs))
	}
	for i := range base.Bugs {
		bb, gb := base.Bugs[i], got.Bugs[i]
		if bb.Violation.Invariant != gb.Violation.Invariant ||
			bb.Violation.Detail != gb.Violation.Detail {
			t.Fatalf("workers=%d bug %d violation diverged:\nseq: %s %s\ngot: %s %s",
				workers, i, bb.Violation.Invariant, bb.Violation.Detail,
				gb.Violation.Invariant, gb.Violation.Detail)
		}
		if bb.Depth != gb.Depth {
			t.Fatalf("workers=%d bug %d depth diverged: seq=%d got=%d",
				workers, i, bb.Depth, gb.Depth)
		}
		if bb.System.Fingerprint() != gb.System.Fingerprint() {
			t.Fatalf("workers=%d bug %d system state diverged:\nseq: %s\ngot: %s",
				workers, i, bb.System.String(), gb.System.String())
		}
		if len(bb.Schedule) != len(gb.Schedule) {
			t.Fatalf("workers=%d bug %d schedule length diverged: seq=%d got=%d",
				workers, i, len(bb.Schedule), len(gb.Schedule))
		}
	}
}

// TestMaxTransitions is a hard stop.
func TestMaxTransitions(t *testing.T) {
	m, start := paxosSpace()
	res := Check(m, start, Options{Invariant: paxos.Agreement(), MaxTransitions: 100})
	if res.Complete {
		t.Fatal("bounded run claims completeness")
	}
	if res.Stats.Transitions > 100 {
		t.Fatalf("transitions %d exceed the bound", res.Stats.Transitions)
	}
}

// TestBudgetStops within a tolerance.
func TestBudgetStops(t *testing.T) {
	m := paxos.New(3, paxos.NoBug, paxos.EachOnce{Nodes: []model.NodeID{0, 1}, Index: 0})
	start := model.InitialSystem(m)
	t0 := time.Now()
	res := Check(m, start, Options{
		Invariant: paxos.Agreement(),
		Budget:    300 * time.Millisecond,
	})
	elapsed := time.Since(t0)
	if res.Complete {
		t.Skip("machine finished the two-proposal space unexpectedly fast")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("budget of 300ms overrun to %v", elapsed)
	}
}

// TestMaxPathDepthMonotone: deeper bounds explore supersets.
func TestMaxPathDepthMonotone(t *testing.T) {
	m, start := paxosSpace()
	prev := 0
	for d := 1; d <= 6; d++ {
		res := Check(m, start, Options{Invariant: paxos.Agreement(), MaxPathDepth: d,
			DisableSystemStates: true})
		if res.Stats.NodeStates < prev {
			t.Fatalf("node states shrank at depth %d", d)
		}
		prev = res.Stats.NodeStates
	}
}

// TestDisableSystemStates: the LMC-explore configuration of Figure 13
// materializes nothing.
func TestDisableSystemStates(t *testing.T) {
	m, start := paxosSpace()
	res := Check(m, start, Options{Invariant: paxos.Agreement(), DisableSystemStates: true})
	if res.Stats.SystemStates != 0 || res.Stats.InvariantChecks != 0 {
		t.Fatalf("system states created despite DisableSystemStates: %s", res.Stats.String())
	}
	if !res.Complete || res.Stats.NodeStates == 0 {
		t.Fatal("exploration broken")
	}
}

// TestDisableSoundness: the LMC-system-state configuration counts
// preliminary violations but confirms nothing.
func TestDisableSoundness(t *testing.T) {
	m := paxos.New(3, paxos.LastResponseBug, paxos.ActiveIndex{MaxPerNode: 1})
	live, err := paxos.PaperLiveState(m)
	if err != nil {
		t.Fatal(err)
	}
	res := Check(m, live, Options{
		Invariant:            paxos.Agreement(),
		Reduction:            paxos.Reduction{},
		DisableSoundness:     true,
		Budget:               2 * time.Second,
		MaxSequencesPerCheck: 256, // bound per-search enumeration
	})
	if res.Stats.ConfirmedBugs != 0 || len(res.Bugs) != 0 {
		t.Fatal("bugs confirmed with soundness disabled")
	}
	if res.Stats.PreliminaryViolations == 0 {
		// Under heavy machine load exploration may not reach a conflicting
		// state within the budget; the property under test (no confirmed
		// bugs with soundness disabled) has been checked either way.
		t.Skip("no conflicting states materialized within the budget")
	}
}

// TestDupLimitGrowsSpace: admitting duplicate copies can only enlarge I+
// coverage (more deliveries), never lose states.
func TestDupLimitGrowsSpace(t *testing.T) {
	m, start := paxosSpace()
	base := Check(m, start, Options{Invariant: paxos.Agreement(), Reduction: paxos.Reduction{}})
	dup := Check(m, start, Options{Invariant: paxos.Agreement(), Reduction: paxos.Reduction{},
		DupLimit: 1})
	if dup.Stats.NodeStates < base.Stats.NodeStates {
		t.Fatalf("duplicate admission lost states: %d < %d",
			dup.Stats.NodeStates, base.Stats.NodeStates)
	}
	if dup.Stats.Transitions <= base.Stats.Transitions {
		t.Fatalf("duplicate admission added no deliveries: %d <= %d",
			dup.Stats.Transitions, base.Stats.Transitions)
	}
}

// TestLocalBoundDeepening: with per-pass deepening enabled, the final bound
// grows when the first pass suppressed actions.
func TestLocalBoundDeepening(t *testing.T) {
	m := twophase.New(3, twophase.NoBug)
	start := model.InitialSystem(m)
	res := Check(m, start, Options{
		Invariant:      twophase.Atomicity(),
		LocalBound:     1,
		LocalBoundStep: 1,
		MaxLocalBound:  3,
	})
	// 2PC's single Begin action never needs more than bound 1; the run
	// must terminate at the first fixpoint rather than restarting forever.
	if res.FinalLocalBound != 1 {
		t.Fatalf("bound deepened needlessly to %d", res.FinalLocalBound)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
}

// TestInitialMessagesSeedNetwork: captured in-flight messages are both
// explorable and usable by soundness verification.
func TestInitialMessagesSeedNetwork(t *testing.T) {
	m := tree.NewPaperTree()
	start := model.InitialSystem(m)
	// Pretend the root's sends were in flight at snapshot time but the
	// root state was captured before flipping to Sent — then the target
	// CAN receive while the root looks idle, making the causality
	// invariant's violation real.
	inflight := []model.Message{
		tree.Forward{From: 0, To: 1},
		tree.Forward{From: 0, To: 2},
	}
	res := Check(m, start, Options{
		Invariant:       m.CausalityInvariant(),
		InitialMessages: inflight,
		StopAtFirstBug:  true,
	})
	if len(res.Bugs) == 0 {
		t.Fatalf("seeded in-flight messages not explored: %s", res.Stats.String())
	}
}

// TestResultCompleteOnEmptyMachine: a machine with no enabled events
// reaches its fixpoint instantly.
func TestResultCompleteOnEmptyMachine(t *testing.T) {
	m := tree.New([][]model.NodeID{{}}, 0, 0) // single node, no children
	res := Check(m, model.InitialSystem(m), Options{Invariant: m.CausalityInvariant()})
	if !res.Complete {
		t.Fatal("trivial machine incomplete")
	}
}

// TestDeterministicRuns: repeated identical runs agree on all counters
// that do not measure time.
func TestDeterministicRuns(t *testing.T) {
	m, start := paxosSpace()
	a := Check(m, start, Options{Invariant: paxos.Agreement(), Reduction: paxos.Reduction{}})
	b := Check(m, start, Options{Invariant: paxos.Agreement(), Reduction: paxos.Reduction{}})
	if a.Stats.NodeStates != b.Stats.NodeStates ||
		a.Stats.Transitions != b.Stats.Transitions ||
		a.Stats.SystemStates != b.Stats.SystemStates ||
		a.Stats.DuplicatesDropped != b.Stats.DuplicatesDropped {
		t.Fatalf("nondeterministic:\n%s\n%s", a.Stats.String(), b.Stats.String())
	}
}
