package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/obs"
	"lmc/internal/protocols/paxos"
	"lmc/internal/protocols/twophase"
)

// memStore is the in-memory CheckpointSink + ResumeSource the engine-level
// tests use: what internal/store does with a file, minus the file.
type memStore struct {
	rounds map[[2]int]RoundCheckpoint
	err    error // injected sink failure
}

func newMemStore() *memStore { return &memStore{rounds: make(map[[2]int]RoundCheckpoint)} }

func (s *memStore) OnRoundCheckpoint(cp RoundCheckpoint) error {
	if s.err != nil {
		return s.err
	}
	// Deep-copy the record slice: the engine hands live buffers.
	recs := make([]DeliveryRecord, len(cp.Records))
	copy(recs, cp.Records)
	cp.Records = recs
	s.rounds[[2]int{cp.Pass, cp.Round}] = cp
	return nil
}

func (s *memStore) RoundHints(pass, round int) (RoundCheckpoint, bool) {
	cp, ok := s.rounds[[2]int{pass, round}]
	return cp, ok
}

// truncated returns a copy holding only rounds <= k of pass 1, simulating a
// run killed at the k-th round barrier.
func (s *memStore) truncated(k int) *memStore {
	out := newMemStore()
	for key, cp := range s.rounds {
		if key[0] == 1 && key[1] <= k {
			out.rounds[key] = cp
		}
	}
	return out
}

// zeroWallClock clears the wall-clock duration fields, the only Counters
// fields resume parity excludes.
func zeroWallClock(c *Result) {
	c.Stats.Elapsed = 0
	c.Stats.SoundnessTime = 0
	c.Stats.SystemStateTime = 0
	c.Stats.ShardWaitTime = 0
	if c.Series != nil {
		c.Series = nil
	}
}

func assertBitForBit(t *testing.T, label string, base, got *Result) {
	t.Helper()
	zeroWallClock(base)
	zeroWallClock(got)
	if base.Stats != got.Stats {
		t.Fatalf("%s: counters diverged:\nbase: %s\ngot:  %s", label, base.Stats.String(), got.Stats.String())
	}
	if base.Complete != got.Complete || base.StopReason != got.StopReason ||
		base.Suppressed != got.Suppressed || base.FinalLocalBound != got.FinalLocalBound {
		t.Fatalf("%s: run outcome diverged: base=%+v got=%+v", label, base, got)
	}
	if len(base.Bugs) != len(got.Bugs) {
		t.Fatalf("%s: bug count diverged: base=%d got=%d", label, len(base.Bugs), len(got.Bugs))
	}
	for i := range base.Bugs {
		b, g := base.Bugs[i], got.Bugs[i]
		if b.Violation.Invariant != g.Violation.Invariant || b.Violation.Detail != g.Violation.Detail ||
			b.Depth != g.Depth || b.System.Fingerprint() != g.System.Fingerprint() ||
			len(b.Schedule) != len(g.Schedule) {
			t.Fatalf("%s: bug %d diverged", label, i)
		}
	}
}

// TestCheckpointParity: a checkpointed run's Result is bit-for-bit the
// plain run's, and a run resumed from any truncated checkpoint prefix
// (killed at round k) reproduces it too — including every deterministic
// counter.
func TestCheckpointParity(t *testing.T) {
	cases := []struct {
		name  string
		m     model.Machine
		opt   Options
		kills []int
	}{
		{
			name:  "paxos-gen",
			m:     paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7}),
			opt:   Options{Invariant: paxos.Agreement(), SoundnessShare: -1},
			kills: []int{1, 2, 3},
		},
		{
			name:  "twophase-bug",
			m:     twophase.New(3, twophase.MajorityBug),
			opt:   Options{Invariant: twophase.Atomicity(), SoundnessShare: -1},
			kills: []int{1, 2, 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			start := model.InitialSystem(tc.m)
			base := Check(tc.m, start, tc.opt)

			st := newMemStore()
			opt := tc.opt
			opt.Checkpoint = st
			ck := Check(tc.m, start, opt)
			assertBitForBit(t, "checkpointed", base, ck)
			if len(st.rounds) == 0 {
				t.Fatal("no rounds checkpointed")
			}

			for _, k := range tc.kills {
				opt := tc.opt
				opt.Resume = st.truncated(k)
				res := Check(tc.m, start, opt)
				assertBitForBit(t, "resumed@"+string(rune('0'+k)), base, res)
			}

			// Full-store resume too: every round primed from records.
			opt = tc.opt
			opt.Resume = st
			res := Check(tc.m, start, opt)
			assertBitForBit(t, "resumed@full", base, res)
		})
	}
}

// TestCheckpointKillAtBarrier: an interrupted checkpointed run (cancelled
// at round k, like a killed daemon whose last durable segment is round k)
// resumed from what it managed to store matches the uninterrupted run.
func TestCheckpointKillAtBarrier(t *testing.T) {
	m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	start := model.InitialSystem(m)
	base := Check(m, start, Options{Invariant: paxos.Agreement(), SoundnessShare: -1})

	for _, k := range []int{1, 2, 3} {
		st := newMemStore()
		ctx, cancel := context.WithCancel(context.Background())
		opt := Options{Invariant: paxos.Agreement(), SoundnessShare: -1,
			Checkpoint: st, HeartbeatEvery: -1,
			Observer: obs.FuncObserver(func(e obs.Event) {
				if e.Kind == obs.KindRoundEnd && e.Round == k {
					cancel()
				}
			}),
		}
		partial, err := CheckContext(ctx, m, start, opt)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if partial.StopReason != obs.StopCancelled {
			t.Fatalf("kill@%d: expected cancellation, got %v", k, partial.StopReason)
		}
		if len(st.rounds) == 0 {
			t.Fatalf("kill@%d: nothing checkpointed before the kill", k)
		}
		// A cancelled-at-barrier round is complete and must be stored.
		if _, ok := st.rounds[[2]int{1, k}]; !ok {
			t.Fatalf("kill@%d: round %d missing from the store", k, k)
		}
		res := Check(m, start, Options{Invariant: paxos.Agreement(), SoundnessShare: -1, Resume: st})
		assertBitForBit(t, "kill-resume", base, res)
	}
}

// TestResumeDigestDivergence: stored records that contradict the handlers
// (here: a successor fingerprint from a different round's reality) must stop
// the run with StopResumeDiverged instead of silently producing garbage.
func TestResumeDigestDivergence(t *testing.T) {
	m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	start := model.InitialSystem(m)

	st := newMemStore()
	Check(m, start, Options{Invariant: paxos.Agreement(), SoundnessShare: -1, Checkpoint: st})

	// Corrupt round 2: claim a recorded delivery was rejected. The record
	// must be one whose successor the round actually discovered (a
	// duplicate successor would leave the digest unchanged), and whose
	// successor no other record of the round also produces — then the
	// primed walk trusts the lie, the round's state set comes out smaller,
	// and the post-round digest disagrees with the stored one.
	cp, ok := st.rounds[[2]int{1, 2}]
	if !ok || len(cp.Records) == 0 {
		t.Skip("round 2 carries no records in this space")
	}
	isNew := make(map[codec.Fingerprint]bool)
	for _, fps := range cp.NewStates {
		for _, fp := range fps {
			isNew[fp] = true
		}
	}
	succCount := make(map[codec.Fingerprint]int)
	for _, r := range cp.Records {
		if !r.Rejected {
			succCount[r.Succ]++
		}
	}
	recs := make([]DeliveryRecord, len(cp.Records))
	copy(recs, cp.Records)
	corrupted := false
	for i := range recs {
		if !recs[i].Rejected && isNew[recs[i].Succ] && succCount[recs[i].Succ] == 1 {
			recs[i].Rejected = true
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Skip("round 2 has no uniquely-producing record to corrupt")
	}
	cp.Records = recs
	st.rounds[[2]int{1, 2}] = cp

	var diverged bool
	res := Check(m, start, Options{Invariant: paxos.Agreement(), SoundnessShare: -1,
		Resume: st, HeartbeatEvery: -1,
		Observer: obs.FuncObserver(func(e obs.Event) {
			if e.Kind == obs.KindResume && e.Detail != "" {
				diverged = true
			}
		}),
	})
	if res.StopReason != obs.StopResumeDiverged {
		t.Fatalf("corrupted checkpoint: StopReason=%v, want StopResumeDiverged", res.StopReason)
	}
	if res.Complete {
		t.Fatal("diverged run claims completeness")
	}
	if !diverged {
		t.Fatal("no KindResume divergence event emitted")
	}
}

// TestCheckpointSinkFailure: a sink error disables checkpointing, surfaces
// as a KindCheckpoint event with the error detail, and leaves the run's
// result untouched.
func TestCheckpointSinkFailure(t *testing.T) {
	m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	start := model.InitialSystem(m)
	base := Check(m, start, Options{Invariant: paxos.Agreement(), SoundnessShare: -1})

	st := newMemStore()
	st.err = errors.New("disk full")
	var failures int
	res := Check(m, start, Options{Invariant: paxos.Agreement(), SoundnessShare: -1,
		Checkpoint: st, HeartbeatEvery: -1,
		Observer: obs.FuncObserver(func(e obs.Event) {
			if e.Kind == obs.KindCheckpoint && e.Detail != "" {
				failures++
			}
		}),
	})
	if failures != 1 {
		t.Fatalf("sink failure events = %d, want exactly 1 (checkpointing disabled after the first)", failures)
	}
	assertBitForBit(t, "sink-failure", base, res)
}

// TestCheckpointWorkersParity: record capture lives on the parallel
// workers' buffers; a multi-worker checkpointed run must store the same
// canonical rounds a sequential one does.
func TestCheckpointWorkersParity(t *testing.T) {
	m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	start := model.InitialSystem(m)

	seq := newMemStore()
	Check(m, start, Options{Invariant: paxos.Agreement(), SoundnessShare: -1, Workers: -1, Checkpoint: seq})
	par := newMemStore()
	Check(m, start, Options{Invariant: paxos.Agreement(), SoundnessShare: -1, Workers: 4, Checkpoint: par})

	if len(seq.rounds) != len(par.rounds) {
		t.Fatalf("round counts diverged: seq=%d par=%d", len(seq.rounds), len(par.rounds))
	}
	for key, b := range seq.rounds {
		g, ok := par.rounds[key]
		if !ok {
			t.Fatalf("parallel store missing round %v", key)
		}
		if b.Digest != g.Digest || len(b.Records) != len(g.Records) {
			t.Fatalf("round %v diverged: digests %v vs %v, records %d vs %d",
				key, b.Digest, g.Digest, len(b.Records), len(g.Records))
		}
		for i := range b.Records {
			br, gr := b.Records[i], g.Records[i]
			if br.Entry != gr.Entry || br.Parent != gr.Parent || br.Rejected != gr.Rejected || br.Succ != gr.Succ {
				t.Fatalf("round %v record %d diverged: %+v vs %+v", key, i, br, gr)
			}
		}
		// The stored counter snapshots agree on the deterministic fields.
		bc, gc := b.Counters, g.Counters
		bc.Elapsed, gc.Elapsed = 0, 0
		bc.SoundnessTime, gc.SoundnessTime = 0, 0
		bc.SystemStateTime, gc.SystemStateTime = 0, 0
		bc.ShardWaitTime, gc.ShardWaitTime = 0, 0
		if bc != gc {
			t.Fatalf("round %v counter snapshots diverged", key)
		}
	}
}

// TestCheckpointOverheadSmoke keeps the checkpoint path from regressing
// catastrophically in unit tests (the precise <=5% gate lives in
// cmd/benchjson -storegate): a checkpointed run must finish within 3x of a
// plain one on the small test space, a bar generous enough for CI noise.
func TestCheckpointOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke")
	}
	m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	start := model.InitialSystem(m)
	opt := Options{Invariant: paxos.Agreement(), SoundnessShare: -1}

	best := func(o Options) time.Duration {
		min := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			res := Check(m, start, o)
			if res.Stats.Elapsed < min {
				min = res.Stats.Elapsed
			}
		}
		return min
	}
	plain := best(opt)
	opt.Checkpoint = newMemStore()
	ck := best(opt)
	if plain > 10*time.Millisecond && ck > 3*plain {
		t.Fatalf("checkpointed run %v vs plain %v exceeds 3x smoke bar", ck, plain)
	}
}
