package core

import (
	"lmc/internal/codec"
	"lmc/internal/obs"
	"lmc/internal/stats"
)

// Round checkpointing reuses the shard layer's records-as-hints design
// (shard.go) for durability instead of distribution: at every completed
// round barrier the checker can hand a fingerprint-only description of the
// round — the delivery records its walk produced, the per-node new-state
// fingerprints, a replica digest, and a counter snapshot — to a
// CheckpointSink. A later run of the identical spec resumes by replaying
// exploration from scratch while feeding each round's stored records back
// through loadShardRecords: the canonical walk consults them exactly like a
// shard coordinator's merged batch, and because deliver charges the
// transition before consulting the record table, the resumed run's Result —
// bugs, schedules, state counts, Counters — is bit-for-bit identical to the
// uninterrupted one (modulo the wall-clock duration fields). Only the
// deliveries that discovered a node state are captured: a rejected or
// duplicate-successor delivery re-derives itself bit-for-bit when the
// resumed walk executes it inline, so recording it would buy resume speed
// at several times the capture, encode and write volume (86% of a typical
// round's deliveries land on already-visited successors). The stored digest is
// compared against the replica's own after each primed round; a mismatch
// (changed handler code, changed options, corrupted store) latches
// StopResumeDiverged so the caller can invalidate the checkpoint and re-run
// fresh. Records are hints, never authority — a truncated checkpoint simply
// leaves the later rounds to execute inline.

// RoundCheckpoint is one completed exploration round as handed to a
// CheckpointSink at the round's merge barrier, and as returned by a
// ResumeSource when a later run replays the same round.
type RoundCheckpoint struct {
	// Pass and Round locate the round (both 1-based); LocalBound is the
	// pass's local-event bound.
	Pass, Round, LocalBound int
	// Records are the round's discovery records in the canonical merge order
	// (ascending by network entry), the batch a resumed run feeds to its
	// delivery walk. Deliveries that rejected or landed on an
	// already-visited successor carry no record; the resumed walk
	// re-executes them inline with identical results.
	Records []DeliveryRecord
	// NewStates holds, per node, the fingerprints of the node states first
	// visited during this round (both phases) — the explored-set segment the
	// round contributed.
	NewStates [][]codec.Fingerprint
	// Digest summarizes the replica after the round; a resumed run verifies
	// its own post-round digest against it.
	Digest ShardDigest
	// Counters is the cumulative counter snapshot at the barrier. The
	// wall-clock duration fields are as measured and are excluded from
	// resume parity.
	Counters stats.Counters
}

// CheckpointSink receives one RoundCheckpoint per completed round. Called
// on the sequential merge goroutine; implementations must not retain the
// slices beyond the call (the store serializes them synchronously). An
// error disables checkpointing for the rest of the run — the run itself
// continues and a KindCheckpoint event carries the error detail.
type CheckpointSink interface {
	OnRoundCheckpoint(RoundCheckpoint) error
}

// ResumeSource supplies the stored rounds of a previous run of the
// identical spec. RoundHints is called once per (pass, round) before the
// round's delivery walk; ok=false means the source has no checkpoint for
// that round (the run has caught up with the stored frontier) and the
// source is not consulted again.
type ResumeSource interface {
	RoundHints(pass, round int) (cp RoundCheckpoint, ok bool)
}

// capture buffers one delivery record produced by this node's walk; a
// single branch when checkpointing is off. Canonical mode interleaves the
// delivery walk across nodes in entry order on one goroutine, so its
// captures land straight in the checker's round buffer already in the
// canonical merge order; parallel phases capture per node and merge at the
// barrier.
func (r *nodeRun) capture(rec DeliveryRecord) {
	if !r.c.ckptOn {
		return
	}
	if r.c.ckptSeq {
		r.c.ckptRecs = append(r.c.ckptRecs, rec)
	} else {
		r.recs = append(r.recs, rec)
	}
}

// spaceLens snapshots every node's visited-list length, taken at round
// start so the barrier can segment the round's new-state fingerprints.
func (c *checker) spaceLens() []int {
	lens := make([]int, len(c.spaces))
	for n, sp := range c.spaces {
		lens[n] = len(sp.states)
	}
	return lens
}

// beginRoundCheckpoint arms the per-round capture flag and primes the
// delivery walk with the stored records of a resumed run. Returns the
// round-start visited-list lengths when the sink needs them (nil
// otherwise).
func (c *checker) beginRoundCheckpoint(round int) []int {
	c.ckptOn = c.ckpt != nil
	var lens []int
	if c.ckptOn {
		lens = c.spaceLens()
	}
	if c.resume != nil {
		cp, ok := c.resume.RoundHints(c.em.pass, round)
		if !ok {
			// Past the stored frontier: later rounds execute inline.
			c.resume = nil
		} else {
			c.loadShardRecords(cp.Records)
			c.resumeDigest = cp.Digest
			c.resumePending = true
			c.em.resume(len(cp.Records), "")
		}
	}
	return lens
}

// endRoundCheckpoint is the barrier half: verify a resume-primed round's
// digest against the stored one, then hand the completed round to the sink.
// Skipped entirely when a stop criterion fired mid-round — the round is
// incomplete and a partial checkpoint would poison a resume. Runs before
// em.barrier so its events flush with the round's batch.
func (c *checker) endRoundCheckpoint(round int, runs []*nodeRun, startLens []int) {
	defer c.reclaimRecBufs(runs)
	pending := c.resumePending
	c.resumePending = false
	if c.stopped || (!pending && !c.ckptOn) {
		return
	}
	d := c.shardDigest()
	if pending {
		if d != c.resumeDigest {
			c.resume = nil
			c.em.resume(0, "post-round digest mismatch against stored checkpoint")
			c.stop(obs.StopResumeDiverged)
			return
		}
		if c.shardTaint != nil && c.link == nil {
			// A record's emissions disagreed with re-execution during the
			// primed walk (mergeEmit latched the taint). The net content
			// still matched the digest, but the checkpoint lied once —
			// treat it as divergence rather than trust the rest.
			c.resume = nil
			c.em.resume(0, c.shardTaint.Error())
			c.shardTaint = nil
			c.stop(obs.StopResumeDiverged)
			return
		}
	}
	if !c.ckptOn {
		return
	}
	// Canonical merge order: ascending by producing entry. Entries have a
	// single destination node, so cross-node ties cannot occur.
	recs := c.ckptRecs
	if !c.ckptSeq {
		recs = c.mergeRunRecords(runs)
	}
	if len(c.ckptNews) != len(c.spaces) {
		c.ckptNews = make([][]codec.Fingerprint, len(c.spaces))
	}
	news := c.ckptNews
	for n, sp := range c.spaces {
		buf := news[n][:0]
		for _, ns := range sp.states[startLens[n]:] {
			buf = append(buf, ns.fp)
		}
		news[n] = buf
	}
	cp := RoundCheckpoint{
		Pass:       c.em.pass,
		Round:      round,
		LocalBound: c.localBound,
		Records:    recs,
		NewStates:  news,
		Digest:     d,
		Counters:   c.res.Stats,
	}
	if err := c.ckpt.OnRoundCheckpoint(cp); err != nil {
		c.ckpt = nil
		c.ckptOn = false
		c.em.checkpoint(len(recs), err.Error())
		return
	}
	c.em.checkpoint(len(recs), "")
}

// mergeRunRecords merges the per-node capture batches into the canonical
// order (ascending by producing entry) in a single pass over a reused
// buffer. Each batch is entry-ascending by construction and an entry has
// exactly one destination node, so the batches are disjoint ascending
// sequences: a k-way merge copies every record once. (Sorting the
// concatenation instead hits exactly the interleaving that drives
// comparison sorts to their worst case, and the repeated swaps of a
// pointer-bearing struct made the write barrier the round's hottest path.)
func (c *checker) mergeRunRecords(runs []*nodeRun) []DeliveryRecord {
	total := 0
	for _, r := range runs {
		total += len(r.recs)
	}
	recs := c.ckptRecs[:0]
	if cap(recs) < total {
		recs = make([]DeliveryRecord, 0, total)
	}
	if len(c.recIdx) != len(runs) {
		c.recIdx = make([]int, len(runs))
	}
	idx := c.recIdx
	for k := range idx {
		idx[k] = 0
	}
	for len(recs) < total {
		best := -1
		for k, r := range runs {
			if idx[k] >= len(r.recs) {
				continue
			}
			if best < 0 || r.recs[idx[k]].Entry < runs[best].recs[idx[best]].Entry {
				best = k
			}
		}
		// All records for one entry are contiguous in their node's batch;
		// copy the whole group in one append.
		b := runs[best].recs
		j := idx[best]
		for e := b[j].Entry; j < len(b) && b[j].Entry == e; j++ {
		}
		recs = append(recs, b[idx[best]:j]...)
		idx[best] = j
	}
	c.ckptRecs = recs
	return recs
}

// armRecBufs readies this round's capture buffers. A canonical phase (no
// shared halt flag: one goroutine, entries walked in index order) captures
// straight into the checker's round buffer; a parallel phase gets the
// per-node buffers, which reclaimRecBufs takes back at the barrier once
// the merge has copied the records out. Both reuse capacity across rounds,
// so steady-state capture allocates only on growth.
func (c *checker) armRecBufs(runs []*nodeRun) {
	if !c.ckptOn {
		return
	}
	c.ckptSeq = len(runs) == 0 || runs[0].halt == nil
	if c.ckptSeq {
		if c.ckptRecs == nil {
			c.ckptRecs = make([]DeliveryRecord, 0, 512)
		}
		c.ckptRecs = c.ckptRecs[:0]
		return
	}
	if len(c.recsBuf) != len(runs) {
		c.recsBuf = make([][]DeliveryRecord, len(runs))
	}
	for n, r := range runs {
		r.recs = c.recsBuf[n][:0]
	}
}

func (c *checker) reclaimRecBufs(runs []*nodeRun) {
	if c.ckptSeq || len(c.recsBuf) != len(runs) {
		return
	}
	for n, r := range runs {
		c.recsBuf[n] = r.recs[:0]
	}
}
