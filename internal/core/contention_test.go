package core

import (
	"testing"
	"time"

	"lmc/internal/mc/global"
	"lmc/internal/model"
	"lmc/internal/protocols/paxos"
)

// TestPaxosContentionNoFalsePositive is the strongest soundness regression
// test: the two-proposal space (§5.2) floods the local checker with
// invalid node-state combinations — states that chose different values but
// could never coexist in a real run. Correct Paxos guarantees agreement,
// so every preliminary violation must be refuted; a single confirmed bug
// here would be a false positive, which the a-posteriori soundness
// verification exists to rule out (§3.2).
func TestPaxosContentionNoFalsePositive(t *testing.T) {
	m := paxos.New(3, paxos.NoBug, paxos.EachOnce{Nodes: []model.NodeID{0, 1}, Index: 0})
	res := Check(m, model.InitialSystem(m), Options{
		Invariant: paxos.Agreement(),
		Reduction: paxos.Reduction{},
		Budget:    8 * time.Second,
	})
	if len(res.Bugs) != 0 {
		t.Fatalf("FALSE POSITIVE on correct Paxos under contention:\n%v\n%s",
			res.Bugs[0].Violation, res.Bugs[0].Schedule)
	}
	t.Logf("refuted %d preliminary violations across %d soundness calls",
		res.Stats.PreliminaryViolations, res.Stats.SoundnessCalls)
}

// TestPaxosContentionGlobalAgrees cross-checks with the global baseline,
// which is sound by construction.
func TestPaxosContentionGlobalAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded global exploration")
	}
	m := paxos.New(3, paxos.NoBug, paxos.EachOnce{Nodes: []model.NodeID{0, 1}, Index: 0})
	res := global.Check(m, model.InitialSystem(m), global.Options{
		Invariant: paxos.Agreement(),
		Strategy:  global.BFS,
		Budget:    8 * time.Second,
	})
	if len(res.Bugs) != 0 {
		t.Fatalf("global checker found a bug in correct Paxos: %v", res.Bugs[0].Violation)
	}
}
