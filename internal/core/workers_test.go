package core

import (
	"runtime"
	"testing"
)

// TestResolveWorkersClamp pins the GOMAXPROCS clamp: a requested pool wider
// than the scheduler's parallelism resolves to GOMAXPROCS, and on a 1-CPU
// configuration every non-negative request resolves to 1 — which makes the
// exploration phases skip worker-pool setup entirely (the parallel gate
// requires workers >= 2), fixing the regression where an 8-wide pool on a
// 1-CPU host ran measurably slower than sequential.
func TestResolveWorkersClamp(t *testing.T) {
	// Not t.Parallel(): the test rewrites the process-wide GOMAXPROCS.
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	runtime.GOMAXPROCS(1)
	for _, req := range []int{0, 1, 4, 8} {
		if got := resolveWorkers(req); got != 1 {
			t.Errorf("GOMAXPROCS=1: resolveWorkers(%d) = %d, want 1", req, got)
		}
	}

	runtime.GOMAXPROCS(2)
	if got := resolveWorkers(8); got != 2 {
		t.Errorf("GOMAXPROCS=2: resolveWorkers(8) = %d, want 2", got)
	}
	if got := resolveWorkers(2); got != 2 {
		t.Errorf("GOMAXPROCS=2: resolveWorkers(2) = %d, want 2", got)
	}
	if got := resolveWorkers(1); got != 1 {
		t.Errorf("GOMAXPROCS=2: resolveWorkers(1) = %d, want 1", got)
	}
	// Negative still forces sequential regardless of the CPU count.
	if got := resolveWorkers(-1); got != 1 {
		t.Errorf("resolveWorkers(-1) = %d, want 1", got)
	}
}
