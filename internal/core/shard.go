package core

import (
	"context"
	"math/bits"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/stats"
)

// Sharded multi-process exploration (the DSCMC direction): every process —
// the coordinator and each worker — holds a full replica of the run and
// executes the identical canonical engine, so control flow (round
// boundaries, delivery order, caps, stop criteria) never has to be
// reconciled over the wire. What crosses processes is pure work-avoidance:
//
//   - Each worker runs its rounds autonomously the moment a pass begins,
//     capturing fingerprint-only records for the work it owns while its
//     canonical walk executes: ActionRecords for the internal-event phase,
//     DeliveryRecords for the network-event phase, and AnchorReports for
//     the system-state (invariant) sweeps of the node states whose
//     fingerprints fall in the worker's range. One RECORDS message per
//     round streams back to the coordinator.
//   - The coordinator fetches a round's records before running the round
//     and consults them as hints: a record whose successor is already
//     visited resolves to a predecessor edge with no handler execution at
//     all; a clean anchor report replaces the whole invariant sweep of
//     that anchor with a counter merge. Pairs or anchors with no record —
//     owned by the coordinator itself, or lost to a dead worker — simply
//     execute inline.
//
// Records are hints, never authority: the walk IS the sequential
// algorithm, so any record subset — including the empty set — yields the
// bit-for-bit sequential result. That is what makes degradation trivial
// (drop the link, keep walking) and what TestShardsParity enforces. The
// one nuance is the anchor reports: a clean report's combination count is
// merged rather than re-derived (re-deriving would erase the savings), so
// counter parity there rests on the replicas running the identical
// canonical engine — which the digest exchange verifies.
//
// Correctness of a trusted record rests on the model.Machine determinism
// contract (equal state + message in, equal successor + emissions out) that
// fingerprint dedup and witness replay already rely on. Transport
// corruption is caught by frame checksums (codec.ReadFrame); replica
// divergence — a broken determinism contract or an engine bug — is caught
// by the digest exchange at batch boundaries and degrades the run to
// in-process exploration. Batching digests (Config.Batch rounds per
// exchange) delays divergence detection by up to Batch-1 rounds, which is
// benign for the same reason degradation is: the rounds in between
// consumed records only as hints.

// DeliveryRecord is one executed delivery pair, identified by the
// network-entry index and the parent state's fingerprint (unique per
// round: a node's visited states have distinct fingerprints and an entry
// has a single destination).
type DeliveryRecord struct {
	Entry    int
	Parent   codec.Fingerprint
	Rejected bool // the handler rejected the message (nil successor)
	// Succ is the successor state's fingerprint; Emitted the fingerprints
	// of the messages the handler emitted, in emission order. Both are
	// meaningless when Rejected.
	Succ    codec.Fingerprint
	Emitted []codec.Fingerprint
}

// ActionRecord is one executed internal action: the acting node, the
// parent state's fingerprint, and the index of the action in the
// machine's Actions enumeration for that state (the enumeration is
// deterministic, so the index identifies the action on every replica).
type ActionRecord struct {
	Node     int
	Parent   codec.Fingerprint
	Action   int
	Rejected bool // the handler rejected the action (nil successor)
	Succ     codec.Fingerprint
	Emitted  []codec.Fingerprint
}

// AnchorReport is one completed system-state sweep on a worker replica:
// the invariant was evaluated on every combination anchored at the node
// state identified by (Node, Seq) — seq numbers are discovery-ordered and
// identical across replicas. A clean report (Violated false) lets the
// coordinator merge Combos into its SystemStates/InvariantChecks counters
// and skip the sweep; a violated or missing report makes the coordinator
// run the sweep inline, so violation handling (soundness confirmation,
// StopAtFirstBug) stays exactly canonical.
type AnchorReport struct {
	Node     int
	Seq      int
	Violated bool
	Combos   int
	// MaxDepth is the replica's running Stats.MaxDepth after the sweep; the
	// coordinator max-merges it. Each replica's running max covers its own
	// check subset, and the subsets union to the sequential check set, so
	// the final merged value is exact.
	MaxDepth int
}

// shardKey indexes the round's delivery-record table.
type shardKey struct {
	entry  int
	parent codec.Fingerprint
}

// actKey indexes the round's action-record table.
type actKey struct {
	node   int
	parent codec.Fingerprint
	action int
}

// anchorKey indexes the round's anchor-report table.
type anchorKey struct {
	node int
	seq  int
}

// ShardDigest summarizes a replica after a round: network length and
// order-sensitive content fingerprint, total visited node states, and a
// fingerprint over every node's visited list. Replicas that ran the same
// rounds agree on all four.
type ShardDigest struct {
	NetLen int
	Net    codec.Fingerprint
	States int
	Spaces codec.Fingerprint
}

// RoundBatch is one worker's records for one round.
type RoundBatch struct {
	Acts    []ActionRecord
	Dels    []DeliveryRecord
	Anchors []AnchorReport
}

// ShardLink is the coordinator's view of its worker fleet; internal/shard
// implements it over the wire protocol. Every method is called from the
// sequential merge goroutine. An error from any method makes the checker
// degrade: it drops the link and finishes the run in-process (partial
// record batches returned alongside an error are still used for the
// current round — records are only hints).
type ShardLink interface {
	// Shards is the total process count, coordinator included (the
	// fingerprint space is split N ways; range 0 is the coordinator's).
	Shards() int
	// Batch is the digest cadence: replica digests are exchanged every
	// Batch rounds and at every pass fixpoint.
	Batch() int
	// BeginPass announces a fresh pass (iterative deepening restarts
	// exploration from scratch) with its local-event bound; the workers
	// then run the pass's rounds autonomously, streaming records.
	BeginPass(pass, bound int) error
	// FetchRound returns every worker's records for the round, in worker
	// order. On error the batches collected so far are returned.
	FetchRound(round int) ([]RoundBatch, error)
	// EndBatch closes a digest window after the given round: collect every
	// worker's digest for the round and compare it against d. final marks
	// the pass fixpoint, after which the workers park awaiting the next
	// pass (or DONE).
	EndBatch(round int, d ShardDigest, final bool) error
	// Finish shuts the fleet down (best-effort DONE to parked workers,
	// then close).
	Finish()
}

// ShardOwner maps a state fingerprint to its owning shard: contiguous
// fingerprint ranges via the high word of fp × shards, so the partition
// needs no modulo and stays stable for any shard count.
func ShardOwner(fp codec.Fingerprint, shards int) int {
	if shards <= 1 {
		return 0
	}
	hi, _ := bits.Mul64(uint64(fp), uint64(shards))
	return int(hi)
}

// CheckShardedContext runs the checker with a shard-worker fleet attached.
// Results are bit-for-bit identical to Check/CheckContext for any shard
// count; the link only redistributes handler executions and invariant
// sweeps. The caller owns the link's transport setup; the checker calls
// Finish when the run ends (including degraded runs).
func CheckShardedContext(ctx context.Context, m model.Machine, start model.SystemState,
	opt Options, link ShardLink) (*Result, error) {

	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return run(ctx, m, start, opt, link), nil
}

// ShardInvariantsEligible reports whether a run's invariant sweeps can be
// partitioned across the fleet: a plain LMC-GEN invariant run, with no
// reduction, no symmetry, and system states enabled. Reduced runs prune
// combinations through coordinator-resident caches (interest groups,
// canonicalized orbits) whose evolution a worker cannot replicate
// counter-exactly, so they keep invariant checking on the coordinator.
func ShardInvariantsEligible(opt Options) bool {
	return opt.Invariant != nil && opt.Reduction == nil &&
		!opt.Reduce.Symmetry && !opt.DisableSystemStates
}

// shardRec looks up the round's delivery record for (entry, parent); nil
// outside sharded rounds or on a miss.
func (c *checker) shardRec(entry int, parent codec.Fingerprint) *DeliveryRecord {
	if c.shardRecs == nil {
		return nil
	}
	return c.shardRecs[shardKey{entry, parent}]
}

// shardAct looks up the round's action record for (node, parent, action
// index); nil outside sharded rounds or on a miss.
func (c *checker) shardAct(node int, parent codec.Fingerprint, action int) *ActionRecord {
	if c.actRecs == nil {
		return nil
	}
	return c.actRecs[actKey{node, parent, action}]
}

// shardAnchor looks up the round's anchor report for a discovery; nil on a
// miss (the coordinator then sweeps inline).
func (c *checker) shardAnchor(node, seq int) *AnchorReport {
	if c.anchorReps == nil {
		return nil
	}
	return c.anchorReps[anchorKey{node, seq}]
}

// loadShardRecords indexes a round's delivery records.
func (c *checker) loadShardRecords(recs []DeliveryRecord) {
	if len(recs) == 0 {
		return
	}
	if c.shardRecs == nil {
		c.shardRecs = make(map[shardKey]*DeliveryRecord, len(recs))
	}
	for i := range recs {
		r := &recs[i]
		c.shardRecs[shardKey{r.Entry, r.Parent}] = r
	}
}

// loadActionRecords indexes a round's action records.
func (c *checker) loadActionRecords(recs []ActionRecord) {
	if len(recs) == 0 {
		return
	}
	if c.actRecs == nil {
		c.actRecs = make(map[actKey]*ActionRecord, len(recs))
	}
	for i := range recs {
		r := &recs[i]
		c.actRecs[actKey{r.Node, r.Parent, r.Action}] = r
	}
}

// loadAnchorReports indexes a round's anchor reports.
func (c *checker) loadAnchorReports(reps []AnchorReport) {
	if len(reps) == 0 {
		return
	}
	if c.anchorReps == nil {
		c.anchorReps = make(map[anchorKey]*AnchorReport, len(reps))
	}
	for i := range reps {
		r := &reps[i]
		c.anchorReps[anchorKey{r.Node, r.Seq}] = r
	}
}

// clearShardRecords drops the round's record tables; all are meaningful
// for one round only.
func (c *checker) clearShardRecords() {
	c.shardRecs = nil
	c.actRecs = nil
	c.anchorReps = nil
}

// capOwned reports whether this replica captures records for the given
// parent fingerprint (worker replicas only; capCount is 0 elsewhere).
func (c *checker) capOwned(fp codec.Fingerprint) bool {
	return c.capCount > 1 && ShardOwner(fp, c.capCount) == c.capIdx
}

func fingerprintAll(msgs []model.Message) []codec.Fingerprint {
	if len(msgs) == 0 {
		return nil
	}
	fps := make([]codec.Fingerprint, len(msgs))
	for i, m := range msgs {
		fps[i] = model.MessageFingerprint(m)
	}
	return fps
}

// shardDigest fingerprints the replica's deterministic state after a round.
// Each space maintains its visited-list combination incrementally (space.
// chain), so the digest costs O(nodes), not O(visited states).
func (c *checker) shardDigest() ShardDigest {
	h := codec.NewHasher()
	states := 0
	for _, sp := range c.spaces {
		h.Add(codec.Fingerprint(len(sp.states)))
		h.Add(sp.chain.Sum())
		states += len(sp.states)
	}
	return ShardDigest{
		NetLen: c.net.Len(),
		Net:    c.net.Digest(),
		States: states,
		Spaces: h.Sum(),
	}
}

// degradeShards abandons the worker fleet: emit the typed obs event, shut
// the link down, and finish the run in-process. The current round's
// already-loaded records stay usable (they are hints), and Result.Complete
// keeps its usual meaning — the in-process walk explores everything the
// workers would have.
func (c *checker) degradeShards(shard int, err error) {
	if c.link == nil {
		return
	}
	n := c.link.Shards()
	c.link.Finish()
	c.link = nil
	detail := "shard link failed"
	if err != nil {
		detail = err.Error()
	}
	c.em.shardDegraded(shard, n, detail)
}

// shardFetchRound pulls every worker's records for the round — the workers
// produced them autonomously, so in the steady state the frames are already
// buffered in the transport — and loads them as hints for the round's
// walks. Wait time is accounted to ShardWaitTime, never to the exploration
// phases. A link error degrades, keeping whatever partial batches arrived.
func (c *checker) shardFetchRound(round int) {
	link := c.link
	if link == nil {
		return
	}
	var sw stats.Stopwatch
	sw.Start()
	batches, err := link.FetchRound(round)
	c.res.Stats.ShardWaitTime += sw.Elapsed()
	for i, b := range batches {
		c.em.shardRound(i+1, link.Shards(), len(b.Acts)+len(b.Dels)+len(b.Anchors))
	}
	if err != nil {
		c.degradeShards(-1, err)
	}
	for _, b := range batches {
		c.loadActionRecords(b.Acts)
		c.loadShardRecords(b.Dels)
		c.loadAnchorReports(b.Anchors)
	}
}

// shardEndBatch closes the round on the link: a latched determinism taint
// degrades immediately; otherwise digests are exchanged at the batch
// cadence and at the pass fixpoint (progress false). A mismatch or link
// error degrades. Not called once a stop criterion fired — the pass is
// over and worker divergence past a stop is expected (workers ignore
// coordinator-only criteria like the wall-clock budget).
func (c *checker) shardEndBatch(round int, progress bool) {
	if c.link == nil {
		return
	}
	if c.shardTaint != nil {
		c.degradeShards(-1, c.shardTaint)
		return
	}
	if progress && round%c.shardBatch != 0 {
		return
	}
	var sw stats.Stopwatch
	sw.Start()
	err := c.link.EndBatch(round, c.shardDigest(), !progress)
	c.res.Stats.ShardWaitTime += sw.Elapsed()
	if err != nil {
		c.degradeShards(-1, err)
	}
}

// ShardWorker drives one worker process's replica. The zero value is not
// usable; build with NewShardWorker. BeginPass resets the replica; the
// worker then calls RunRound repeatedly — no per-round coordination — and
// ships each round's captured records to the coordinator.
type ShardWorker struct {
	c     *checker
	idx   int
	count int
}

// NewShardWorker builds a worker replica for shard idx of count processes
// (idx ≥ 1; index 0 is the coordinator). The options must carry the
// exploration-shaping knobs of the coordinator's run (DupLimit,
// LocalBound, MaxPathDepth, MaxPredecessors, RoundDeliveryCap,
// MaxTransitions, MaxSystemDepth, InitialMessages). Reductions, soundness,
// budgets and observers are stripped — they are coordinator work. The
// invariant is kept only when shardInvariants is set (and opt.Invariant is
// non-nil): the worker then sweeps the system-state combinations of the
// anchors it owns and reports them, instead of exploring without checking.
func NewShardWorker(m model.Machine, start model.SystemState, opt Options, idx, count int, shardInvariants bool) *ShardWorker {
	shardInv := shardInvariants && opt.Invariant != nil
	if !shardInv {
		opt.Invariant = nil
	}
	opt.LocalInvariants = nil
	opt.Reduction = nil
	opt.Reduce = Reductions{}
	opt.DisableSystemStates = !shardInv
	opt.DisableSoundness = true
	opt.Budget = 0
	opt.StopAtFirstBug = false
	opt.Workers = -1
	opt.Observer = nil
	opt.RecordSeries = false
	opt.Checkpoint = nil
	opt.Resume = nil
	opt.Shards = 0
	c := newChecker(context.Background(), m, start, opt)
	c.capIdx, c.capCount = idx, count
	if shardInv {
		c.invShardIdx, c.invShardCount = idx, count
	}
	return &ShardWorker{c: c, idx: idx, count: count}
}

// DisableActionRecords turns off action-record capture (delivery records
// and anchor reports still flow). The coordinator's action phase then
// executes inline — records are hints, so results are unchanged.
func (w *ShardWorker) DisableActionRecords() { w.c.capActsOff = true }

// BeginPass resets the replica for a fresh pass under the given local-event
// bound.
func (w *ShardWorker) BeginPass(bound int) {
	w.c.localBound = bound
	w.c.beginPass()
}

// RunRound executes one full canonical round — internal-event phase, then
// network-event phase, with the deferred system-state sweeps of owned
// anchors — and returns the records captured for this shard's ranges plus
// whether the round made progress (progress false is the pass fixpoint).
// The returned slices are valid until the next RunRound call.
func (w *ShardWorker) RunRound() (RoundBatch, bool) {
	c := w.c
	c.capActs = c.capActs[:0]
	c.capDels = c.capDels[:0]
	c.capAnchors = c.capAnchors[:0]
	progress := false
	runsA := c.runActionPhase(false)
	if c.mergeActionPhase(runsA) {
		progress = true
	}
	if !c.stopped {
		runsB := c.runDeliveryPhase(false)
		if c.mergeDeliveryPhase(runsB) {
			progress = true
		}
	}
	return RoundBatch{Acts: c.capActs, Dels: c.capDels, Anchors: c.capAnchors}, progress
}

// Stopped reports whether a replicated stop criterion (MaxTransitions,
// shipped in the handshake) fired; the worker then parks without a digest,
// mirroring the coordinator, whose round loop breaks before the digest
// exchange.
func (w *ShardWorker) Stopped() bool { return w.c.stopped }

// Digest returns the replica's current digest for a batch-boundary
// exchange.
func (w *ShardWorker) Digest() ShardDigest { return w.c.shardDigest() }
