package core

import (
	"context"
	"math/bits"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/netstate"
	"lmc/internal/stats"
)

// Sharded multi-process exploration (the DSCMC direction): every process —
// the coordinator and each of N shard workers — holds a full replica of the
// run and executes the identical canonical engine, so control flow (round
// boundaries, delivery order, caps, stop criteria) never has to be
// reconciled over the wire. What crosses processes is pure work-avoidance:
//
//   - Each round, after the replicated action phase, every worker
//     speculatively executes the delivery pairs it owns — (network entry,
//     parent state) pairs whose parent fingerprint falls in the worker's
//     range — and ships fingerprint-only DeliveryRecords back.
//   - The coordinator merges all records, broadcasts them (plus its
//     action-phase net delta, an early divergence check) to every worker,
//     and then every process runs the same canonical delivery walk. The
//     walk consults the record table before executing a handler: a record
//     whose successor is already visited resolves to a predecessor edge
//     with no handler execution at all; a record discovering a new state is
//     materialized from the worker's local object cache (the owner) or by
//     one deterministic re-execution (everyone else). Pairs with no record
//     — states discovered mid-phase, sweeps cut short by caps, records
//     lost to a dead worker — simply execute inline.
//
// Records are hints, never authority: the walk IS the sequential
// algorithm, so any record subset — including the empty set — yields the
// bit-for-bit sequential result. That is what makes degradation trivial
// (drop the link, keep walking) and what TestShardsParity enforces.
//
// Correctness of a trusted record rests on the model.Machine determinism
// contract (equal state + message in, equal successor + emissions out) that
// fingerprint dedup and witness replay already rely on. Transport
// corruption is caught by frame checksums (codec.ReadFrame); replica
// divergence — a broken determinism contract or an engine bug — is caught
// by the per-round digest exchange and degrades the run to in-process
// exploration.

// DeliveryRecord is one speculatively executed delivery pair, identified by
// the network-entry index and the parent state's fingerprint (unique per
// round: a node's visited states have distinct fingerprints and an entry
// has a single destination).
type DeliveryRecord struct {
	Entry    int
	Parent   codec.Fingerprint
	Rejected bool // the handler rejected the message (nil successor)
	// Succ is the successor state's fingerprint; Emitted the fingerprints
	// of the messages the handler emitted, in emission order. Both are
	// meaningless when Rejected.
	Succ    codec.Fingerprint
	Emitted []codec.Fingerprint
}

// shardKey indexes the round's record table and the worker-side object
// cache.
type shardKey struct {
	entry  int
	parent codec.Fingerprint
}

// shardExec is a worker's cached execution result for an owned pair, so the
// owner's canonical walk reuses the sweep's objects instead of re-executing.
type shardExec struct {
	next    model.State
	emitted []model.Message
}

// ShardDigest summarizes a replica after a round: network length and
// order-sensitive content fingerprint, total visited node states, and a
// fingerprint over every node's visited list. Replicas that ran the same
// rounds agree on all four.
type ShardDigest struct {
	NetLen int
	Net    codec.Fingerprint
	States int
	Spaces codec.Fingerprint
}

// ShardLink is the coordinator's view of its worker fleet; internal/shard
// implements it over the wire protocol. Every method is called from the
// sequential merge goroutine in lockstep with the round structure. An error
// from any method makes the checker degrade: it drops the link and finishes
// the run in-process (partial record batches returned alongside an error
// are still used for the current round — records are only hints).
type ShardLink interface {
	// Shards is the worker count (the fingerprint space is split N ways).
	Shards() int
	// BeginPass announces a fresh pass (iterative deepening restarts
	// exploration from scratch) with its local-event bound.
	BeginPass(pass, bound int) error
	// BeginRound tells every worker to run its replicated action phase and
	// speculative delivery sweep for the round.
	BeginRound(pass, round int) error
	// CollectRecords gathers each shard's delivery records for the round.
	// On error the partial per-shard batches collected so far are returned.
	CollectRecords(round int) ([][]DeliveryRecord, error)
	// BroadcastApply ships the merged record table and the coordinator's
	// action-phase net delta to every worker, which then runs its own
	// canonical delivery walk.
	BroadcastApply(round int, recs []DeliveryRecord, delta netstate.EpochDelta) error
	// EndRound collects every worker's post-round digest and compares it
	// against the coordinator's.
	EndRound(round int, d ShardDigest) error
	// Finish shuts the fleet down (best-effort DONE, then close).
	Finish()
}

// ShardOwner maps a state fingerprint to its owning shard: contiguous
// fingerprint ranges via the high word of fp × shards, so the partition
// needs no modulo and stays stable for any shard count.
func ShardOwner(fp codec.Fingerprint, shards int) int {
	if shards <= 1 {
		return 0
	}
	hi, _ := bits.Mul64(uint64(fp), uint64(shards))
	return int(hi)
}

// CheckShardedContext runs the checker with a shard-worker fleet attached.
// Results are bit-for-bit identical to Check/CheckContext for any shard
// count; the link only redistributes handler executions. The caller owns
// the link's transport setup; the checker calls Finish when the run ends
// (including degraded runs).
func CheckShardedContext(ctx context.Context, m model.Machine, start model.SystemState,
	opt Options, link ShardLink) (*Result, error) {

	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return run(ctx, m, start, opt, link), nil
}

// shardRec looks up the round's record for (entry, parent); nil outside
// sharded rounds or on a sweep miss.
func (c *checker) shardRec(entry int, parent codec.Fingerprint) *DeliveryRecord {
	if c.shardRecs == nil {
		return nil
	}
	return c.shardRecs[shardKey{entry, parent}]
}

// loadShardRecords indexes a round's merged record batch.
func (c *checker) loadShardRecords(recs []DeliveryRecord) {
	if len(recs) == 0 {
		return
	}
	if c.shardRecs == nil {
		c.shardRecs = make(map[shardKey]*DeliveryRecord, len(recs))
	}
	for i := range recs {
		r := &recs[i]
		c.shardRecs[shardKey{r.Entry, r.Parent}] = r
	}
}

// clearShardRecords drops the round's record table and object cache; both
// are meaningful for one delivery phase only.
func (c *checker) clearShardRecords() {
	c.shardRecs = nil
	c.shardObjs = nil
}

// sweepShardRecords is the worker-side speculative sweep: it replays the
// canonical delivery traversal over the phase-start heads of every node's
// visited list — without mutating anything — and executes only the pairs
// this shard owns, caching the produced objects for the owner's walk.
// States discovered mid-phase are invisible here by construction; their
// pairs execute inline during the walk on every replica. The delivered
// counter mirrors the walk's round cap, but only approximately (the walk
// also charges mid-phase discoveries); an over- or under-shoot is harmless
// because extra records are never queried and missing ones execute inline.
func (c *checker) sweepShardRecords(idx, count int) []DeliveryRecord {
	ep := c.net.Epoch()
	nNodes := len(c.spaces)
	startLen := make([]int, nNodes)
	for n, sp := range c.spaces {
		startLen[n] = len(sp.states)
	}
	delivered := make([]int, nNodes)
	if c.shardObjs == nil {
		c.shardObjs = make(map[shardKey]shardExec)
	}
	var recs []DeliveryRecord
	for i := 0; i < ep.Len(); i++ {
		e := ep.Entry(i)
		dst := int(e.Msg.Dst())
		if dst < 0 || dst >= nNodes {
			continue
		}
		if c.roundCap > 0 && delivered[dst] >= c.roundCap {
			continue
		}
		sp := c.spaces[dst]
		evfp := e.EventFingerprint()
		for j := e.Applied; j < startLen[dst]; j++ {
			if c.roundCap > 0 && delivered[dst] >= c.roundCap {
				break
			}
			s := sp.states[j]
			if c.opt.MaxPathDepth > 0 && s.depth >= c.opt.MaxPathDepth {
				continue
			}
			if s.history.contains(evfp) {
				continue
			}
			delivered[dst]++
			if ShardOwner(s.fp, count) != idx {
				continue
			}
			next, emitted := c.m.HandleMessage(s.node, s.state.Clone(), e.Msg)
			rec := DeliveryRecord{Entry: i, Parent: s.fp}
			if next == nil {
				rec.Rejected = true
			} else {
				rec.Succ = model.StateFingerprint(next)
				rec.Emitted = fingerprintAll(emitted)
				c.shardObjs[shardKey{i, s.fp}] = shardExec{next: next, emitted: emitted}
			}
			recs = append(recs, rec)
		}
	}
	return recs
}

func fingerprintAll(msgs []model.Message) []codec.Fingerprint {
	if len(msgs) == 0 {
		return nil
	}
	fps := make([]codec.Fingerprint, len(msgs))
	for i, m := range msgs {
		fps[i] = model.MessageFingerprint(m)
	}
	return fps
}

// shardDigest fingerprints the replica's deterministic state after a round.
// Each space maintains its visited-list combination incrementally (space.
// chain), so the digest costs O(nodes), not O(visited states).
func (c *checker) shardDigest() ShardDigest {
	h := codec.NewHasher()
	states := 0
	for _, sp := range c.spaces {
		h.Add(codec.Fingerprint(len(sp.states)))
		h.Add(sp.chain.Sum())
		states += len(sp.states)
	}
	return ShardDigest{
		NetLen: c.net.Len(),
		Net:    c.net.Digest(),
		States: states,
		Spaces: h.Sum(),
	}
}

// degradeShards abandons the worker fleet: emit the typed obs event, shut
// the link down, and finish the run in-process. The current round's
// already-loaded records stay usable (they are hints), and Result.Complete
// keeps its usual meaning — the in-process walk explores everything the
// workers would have.
func (c *checker) degradeShards(shard int, err error) {
	if c.link == nil {
		return
	}
	n := c.link.Shards()
	c.link.Finish()
	c.link = nil
	detail := "shard link failed"
	if err != nil {
		detail = err.Error()
	}
	c.em.shardDegraded(shard, n, detail)
}

// shardExchange is the coordinator's record exchange between the action
// merge and the delivery walk: collect every worker's sweep records,
// broadcast the merged table plus the action-phase net delta, and load the
// table for the walk. Wait time is accounted to ShardWaitTime, never to the
// exploration phases.
func (c *checker) shardExchange(round, netBase int) {
	link := c.link
	if link == nil {
		return
	}
	var sw stats.Stopwatch
	sw.Start()
	perShard, err := link.CollectRecords(round)
	c.res.Stats.ShardWaitTime += sw.Elapsed()
	var all []DeliveryRecord
	for i, recs := range perShard {
		c.em.shardRound(i, link.Shards(), len(recs))
		all = append(all, recs...)
	}
	if err != nil {
		c.degradeShards(-1, err)
	} else if berr := link.BroadcastApply(round, all, c.net.DeltaSince(netBase)); berr != nil {
		c.degradeShards(-1, berr)
	}
	c.loadShardRecords(all)
}

// shardEndRound compares every worker's post-round digest with the
// coordinator's; a mismatch or link error degrades. Skipped once a stop
// criterion fired — the pass is over and worker divergence past a stop is
// expected (workers ignore coordinator-only criteria like the wall-clock
// budget).
func (c *checker) shardEndRound(round int) {
	if c.link == nil {
		return
	}
	if c.shardTaint != nil {
		c.degradeShards(-1, c.shardTaint)
		return
	}
	var sw stats.Stopwatch
	sw.Start()
	err := c.link.EndRound(round, c.shardDigest())
	c.res.Stats.ShardWaitTime += sw.Elapsed()
	if err != nil {
		c.degradeShards(-1, err)
	}
}

// ShardWorker drives one worker process's replica. The zero value is not
// usable; build with NewShardWorker. Calls arrive in the wire protocol's
// lockstep order: BeginPass, then per round RunRound (replicated action
// phase + speculative sweep) followed by Apply (canonical delivery walk
// against the merged record table).
type ShardWorker struct {
	c     *checker
	idx   int
	count int
}

// NewShardWorker builds a worker replica for shard idx of count. The
// options must carry the exploration-relevant knobs of the coordinator's
// run (DupLimit, LocalBound, MaxPathDepth, MaxPredecessors,
// RoundDeliveryCap, InitialMessages); everything that does not shape the
// explored spaces — invariants, reductions, soundness, budgets, observers —
// is stripped here, so workers explore without checking.
func NewShardWorker(m model.Machine, start model.SystemState, opt Options, idx, count int) *ShardWorker {
	opt.Invariant = nil
	opt.LocalInvariants = nil
	opt.Reduction = nil
	opt.Reduce = Reductions{}
	opt.DisableSystemStates = true
	opt.DisableSoundness = true
	opt.Budget = 0
	opt.MaxTransitions = 0
	opt.StopAtFirstBug = false
	opt.Workers = -1
	opt.Observer = nil
	opt.RecordSeries = false
	opt.Checkpoint = nil
	opt.Resume = nil
	opt.Shards = 0
	c := newChecker(context.Background(), m, start, opt)
	return &ShardWorker{c: c, idx: idx, count: count}
}

// BeginPass resets the replica for a fresh pass under the given local-event
// bound.
func (w *ShardWorker) BeginPass(bound int) {
	w.c.localBound = bound
	w.c.beginPass()
}

// RunRound executes the replicated action phase and the speculative
// delivery sweep, returning this shard's records.
func (w *ShardWorker) RunRound() []DeliveryRecord {
	c := w.c
	runs := c.runActionPhase(false)
	c.mergeActionPhase(runs)
	return c.sweepShardRecords(w.idx, w.count)
}

// Apply verifies the coordinator's action-phase delta against the replica,
// runs the canonical delivery walk with the merged record table, and
// returns the post-round digest.
func (w *ShardWorker) Apply(recs []DeliveryRecord, delta netstate.EpochDelta) (ShardDigest, error) {
	c := w.c
	if err := c.net.VerifyTail(delta); err != nil {
		return ShardDigest{}, err
	}
	c.loadShardRecords(recs)
	runs := c.runDeliveryPhase(false)
	c.mergeDeliveryPhase(runs)
	c.clearShardRecords()
	if c.shardTaint != nil {
		return ShardDigest{}, c.shardTaint
	}
	return c.shardDigest(), nil
}
