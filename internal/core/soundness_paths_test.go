package core

import (
	"math/rand"
	"sync"
	"testing"

	"lmc/internal/codec"
	"lmc/internal/model"
)

// Tests for the predecessor-path enumeration (soundness.go) on the graph
// shapes the exploration loop can actually produce: addPred back edges that
// make the predecessor graph cyclic, self-referencing edges, dense DAGs that
// exhaust the path and step caps, and the memoization contract of
// creationPath/flowOf under concurrent witness searches.

// chainState extends sp with one state whose creation edge comes from parent.
func chainState(sp *space, parent *nodeState, fp codec.Fingerprint) *nodeState {
	ns := &nodeState{
		node:  parent.node,
		fp:    fp,
		depth: parent.depth + 1,
		preds: []pred{{prev: parent, kind: model.InternalEvent}},
		gen:   parent.gen,
	}
	sp.add(ns)
	return ns
}

// TestEnumeratePathsCyclicGraph: an addPred back edge makes the predecessor
// graph cyclic (s1 → s2 → s1); the backward walk must terminate and return
// only acyclic paths.
func TestEnumeratePathsCyclicGraph(t *testing.T) {
	sp := newSpace()
	s0 := &nodeState{fp: 1}
	sp.add(s0)
	s1 := chainState(sp, s0, 2)
	s2 := chainState(sp, s1, 3)
	// Back edge recorded later by addPred: s1 is (also) reachable from s2.
	s1.preds = append(s1.preds, pred{prev: s2, kind: model.InternalEvent})
	// Self-referencing edge, which the paper's simplification ignores.
	s2.preds = append(s2.preds, pred{prev: s2, kind: model.InternalEvent})

	c := &checker{opt: Options{MaxPathsPerNode: DefaultMaxPathsPerNode}}
	paths := c.enumeratePaths(s2)
	if len(paths) != 1 {
		t.Fatalf("expected exactly the creation path, got %d paths", len(paths))
	}
	p := paths[0]
	if len(p) != 2 || p[0].prev != s0 || p[1].prev != s1 {
		t.Fatalf("path is not start→s1→s2: %+v", p)
	}
	// And from the middle of the cycle: s1's back edge leads to s2, whose
	// only non-cyclic predecessor is s1 itself (on stack) or its self edge —
	// so only the direct creation path survives.
	paths = c.enumeratePaths(s1)
	if len(paths) != 1 || len(paths[0]) != 1 || paths[0][0].prev != s0 {
		t.Fatalf("cycle leaked into s1's paths: %+v", paths)
	}
}

// ladder builds a depth-level graph where every level has `width` parallel
// predecessor edges to the previous level's state, giving width^depth
// distinct backward paths.
func ladder(depth, width int) *nodeState {
	sp := newSpace()
	cur := &nodeState{fp: 1}
	sp.add(cur)
	for d := 1; d <= depth; d++ {
		next := &nodeState{
			fp:    codec.Fingerprint(1 + d),
			depth: d,
			preds: []pred{{prev: cur, kind: model.InternalEvent}},
		}
		for w := 1; w < width; w++ {
			next.preds = append(next.preds, pred{prev: cur, kind: model.NetworkEvent,
				msgFP: codec.Fingerprint(0x100*d + w)})
		}
		sp.add(next)
		cur = next
	}
	return cur
}

// TestEnumeratePathsCap: the enumeration stops exactly at the configured
// path cap on a DAG with more paths than the cap.
func TestEnumeratePathsCap(t *testing.T) {
	tip := ladder(6, 2) // 64 distinct paths
	c := &checker{opt: Options{MaxPathsPerNode: 16}}
	if got := len(c.enumeratePaths(tip)); got != 16 {
		t.Fatalf("path cap 16 returned %d paths", got)
	}
	if got := len(c.enumeratePathsCapped(tip, 10)); got != 10 {
		t.Fatalf("explicit cap 10 returned %d paths", got)
	}
	if got := len(c.enumeratePathsCapped(tip, 100)); got != 64 {
		t.Fatalf("uncapped ladder should have 64 paths, got %d", got)
	}
}

// TestEnumeratePathsStepCap: with the path cap effectively unbounded, the
// step cap still bounds the walk on a DAG with 2^16 paths — the enumeration
// terminates with a nonempty, truncated result.
func TestEnumeratePathsStepCap(t *testing.T) {
	tip := ladder(16, 2) // 65536 distinct paths, far beyond maxSteps
	c := &checker{}
	paths := c.enumeratePathsCapped(tip, 1<<30)
	if len(paths) == 0 {
		t.Fatal("step cap returned no paths at all")
	}
	if len(paths) >= 1<<16 {
		t.Fatalf("step cap did not truncate: %d paths", len(paths))
	}
	for _, p := range paths {
		if len(p) != 16 {
			t.Fatalf("truncated enumeration returned a malformed path of length %d", len(p))
		}
	}
}

// TestCreationPathMemoConcurrent exercises the documented concurrency
// contract: concurrent creationPath/flowOf calls on DISTINCT states are safe
// (each memoizes only its own state while reading shared ancestors). Run
// under -race this is the regression test for the candidate-prep fanout.
func TestCreationPathMemoConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	universe := testUniverse(8)
	sp := buildRandomSpace(rng, 0, 150, universe, false)

	var wg sync.WaitGroup
	for _, ns := range sp.states {
		wg.Add(1)
		go func(ns *nodeState) {
			defer wg.Done()
			creationPath(ns)
			flowOf(ns)
		}(ns)
	}
	wg.Wait()

	for _, ns := range sp.states {
		if !ns.creationDone || !ns.flowDone {
			t.Fatalf("seq %d: memo not recorded", ns.seq)
		}
		if got := len(creationPath(ns)); got != ns.depth {
			t.Fatalf("seq %d: creation path length %d, depth %d", ns.seq, got, ns.depth)
		}
		// The memoized flow must equal a fresh recount of the path.
		want := make(map[codec.Fingerprint]int)
		for _, e := range ns.creation {
			if e.kind == model.NetworkEvent {
				want[e.msgFP]++
			}
			for _, g := range e.generated {
				want[g]--
			}
		}
		for _, fe := range ns.flow {
			if want[fe.fp] != fe.n {
				t.Fatalf("seq %d fp %#x: memo %d recount %d", ns.seq, fe.fp, fe.n, want[fe.fp])
			}
			delete(want, fe.fp)
		}
		for fp, n := range want {
			if n != 0 {
				t.Fatalf("seq %d: memo missing fp %#x (recount %d)", ns.seq, fp, n)
			}
		}
	}
}
