package core

import (
	"testing"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/protocols/paxos"
	"lmc/internal/protocols/tree"
	"lmc/internal/protocols/twophase"
)

func TestParseReductions(t *testing.T) {
	cases := []struct {
		in   string
		want Reductions
		err  bool
	}{
		{"", Reductions{}, false},
		{"none", Reductions{}, false},
		{"off", Reductions{}, false},
		{"sym", Reductions{Symmetry: true}, false},
		{"symmetry", Reductions{Symmetry: true}, false},
		{"por", Reductions{PartialOrder: true}, false},
		{"partial-order", Reductions{PartialOrder: true}, false},
		{"sym,por", Reductions{Symmetry: true, PartialOrder: true}, false},
		{"por,sym", Reductions{Symmetry: true, PartialOrder: true}, false},
		{" sym , por ", Reductions{Symmetry: true, PartialOrder: true}, false},
		{"all", Reductions{Symmetry: true, PartialOrder: true}, false},
		{"bogus", Reductions{}, true},
		{"sym,bogus", Reductions{}, true},
	}
	for _, tc := range cases {
		got, err := ParseReductions(tc.in)
		if tc.err != (err != nil) {
			t.Fatalf("ParseReductions(%q) error = %v, want error %v", tc.in, err, tc.err)
		}
		if got != tc.want {
			t.Fatalf("ParseReductions(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	for _, r := range []Reductions{{}, {Symmetry: true}, {PartialOrder: true}, {Symmetry: true, PartialOrder: true}} {
		back, err := ParseReductions(r.String())
		if err != nil || back != r {
			t.Fatalf("round trip %+v via %q failed: %+v err=%v", r, r.String(), back, err)
		}
	}
}

func TestBuildCanonicalizerRejectsMalformed(t *testing.T) {
	if c := buildCanonicalizer(3, [][]model.NodeID{{1, 3}}); c != nil {
		t.Fatal("out-of-range class accepted")
	}
	if c := buildCanonicalizer(3, [][]model.NodeID{{1, 1}}); c != nil {
		t.Fatal("duplicated member accepted")
	}
	if c := buildCanonicalizer(4, [][]model.NodeID{{1, 2}, {2, 3}}); c != nil {
		t.Fatal("overlapping classes accepted")
	}
	if c := buildCanonicalizer(4, [][]model.NodeID{{1}, {2}}); c != nil {
		t.Fatal("all-trivial declaration should yield nil")
	}
	if c := buildCanonicalizer(4, [][]model.NodeID{{1, 2, 3}}); c == nil {
		t.Fatal("valid declaration rejected")
	}
}

// bugSet projects a result's bugs to comparable (invariant, system
// fingerprint) identities, order-independently.
func bugSet(res *Result) map[string]int {
	out := make(map[string]int)
	for _, b := range res.Bugs {
		out[b.Violation.Invariant+"/"+b.System.Fingerprint().String()]++
	}
	return out
}

func assertSameBugSet(t *testing.T, base, got *Result) {
	t.Helper()
	bs, gs := bugSet(base), bugSet(got)
	for k, n := range bs {
		if gs[k] != n {
			t.Fatalf("bug %s: unreduced found %d, reduced found %d", k, n, gs[k])
		}
	}
	for k, n := range gs {
		if bs[k] != n {
			t.Fatalf("bug %s: reduced found %d, unreduced found %d", k, n, bs[k])
		}
	}
}

// TestSymmetryReductionParity: on a clean 4-node Paxos space with a
// distinguished proposer and three interchangeable acceptors, the symmetry
// reduction must halve (at least) the materialized system states while
// agreeing on completeness and verdicts, and must leave node-state
// exploration untouched.
func TestSymmetryReductionParity(t *testing.T) {
	m := paxos.New(4, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	start := model.InitialSystem(m)
	opt := Options{Invariant: paxos.Agreement(), SoundnessShare: -1}
	base := Check(m, start, opt)
	ropt := opt
	ropt.Reduce = Reductions{Symmetry: true}
	red := Check(m, start, ropt)

	if base.Complete != red.Complete {
		t.Fatalf("completeness diverged: base=%v reduced=%v", base.Complete, red.Complete)
	}
	if base.Stats.NodeStates != red.Stats.NodeStates ||
		base.Stats.Transitions != red.Stats.Transitions {
		t.Fatalf("reduction changed local exploration:\nbase: %s\nred:  %s",
			base.Stats.String(), red.Stats.String())
	}
	assertSameBugSet(t, base, red)
	if red.Stats.SymmetrySkips == 0 {
		t.Fatal("no symmetry skips on a 3-acceptor space")
	}
	if 2*red.Stats.SystemStates > base.Stats.SystemStates {
		t.Fatalf("reduction below 2x: base=%d reduced=%d",
			base.Stats.SystemStates, red.Stats.SystemStates)
	}
	t.Logf("system states: base=%d reduced=%d (%.1f%%), skips=%d",
		base.Stats.SystemStates, red.Stats.SystemStates,
		100*float64(red.Stats.SystemStates)/float64(base.Stats.SystemStates),
		red.Stats.SymmetrySkips)
}

// TestSymmetryOrbitSweep: on a bug-bearing space whose violating states
// have nontrivial orbits, the fixpoint orbit sweep must recover every
// arrangement-specific bug the unreduced run confirms.
func TestSymmetryOrbitSweep(t *testing.T) {
	m := twophase.New(4, twophase.MajorityBug, 2)
	start := model.InitialSystem(m)
	opt := Options{Invariant: twophase.Atomicity(), SoundnessShare: -1}
	base := Check(m, start, opt)
	if len(base.Bugs) == 0 {
		t.Fatal("seed scenario found no bugs; test is vacuous")
	}
	ropt := opt
	ropt.Reduce = Reductions{Symmetry: true}
	red := Check(m, start, ropt)

	if base.Complete != red.Complete {
		t.Fatalf("completeness diverged: base=%v reduced=%v", base.Complete, red.Complete)
	}
	assertSameBugSet(t, base, red)
	if red.Stats.SymmetrySkips == 0 {
		t.Fatal("no symmetry skips despite a declared class")
	}
	if red.Stats.OrbitChecks == 0 {
		t.Fatal("violating orbits recorded no sweep checks")
	}
	t.Logf("system states: base=%d reduced=%d, skips=%d orbitChecks=%d bugs=%d",
		base.Stats.SystemStates, red.Stats.SystemStates,
		red.Stats.SymmetrySkips, red.Stats.OrbitChecks, len(red.Bugs))
}

// TestPartialOrderParity: POR must not change which bugs are confirmed or
// which system states are materialized — only the sequence search. The
// paper tree with seeded in-flight messages has a leaf member that emits
// nothing, so it is provably detachable from every interleaving.
func TestPartialOrderParity(t *testing.T) {
	m := tree.NewPaperTree()
	start := model.InitialSystem(m)
	inflight := []model.Message{
		tree.Forward{From: 0, To: 1},
		tree.Forward{From: 0, To: 2},
	}
	opt := Options{
		Invariant:       m.CausalityInvariant(),
		InitialMessages: inflight,
		SoundnessShare:  -1,
	}
	base := Check(m, start, opt)
	if len(base.Bugs) == 0 {
		t.Fatal("seed scenario found no bugs; test is vacuous")
	}
	ropt := opt
	ropt.Reduce = Reductions{PartialOrder: true}
	red := Check(m, start, ropt)

	if base.Complete != red.Complete {
		t.Fatalf("completeness diverged: base=%v reduced=%v", base.Complete, red.Complete)
	}
	if base.Stats.SystemStates != red.Stats.SystemStates ||
		base.Stats.PreliminaryViolations != red.Stats.PreliminaryViolations {
		t.Fatalf("POR changed materialization:\nbase: %s\nred:  %s",
			base.Stats.String(), red.Stats.String())
	}
	assertSameBugSet(t, base, red)
	if red.Stats.PORDetached == 0 {
		t.Fatal("no member detached on a fan-out tree")
	}
	t.Logf("sequences: base=%d reduced=%d, detached=%d deduped=%d",
		base.Stats.SequencesChecked, red.Stats.SequencesChecked,
		red.Stats.PORDetached, red.Stats.PORPathsDeduped)
}

// TestCombinedReductions: sym+por together on the bug-bearing 2PC space —
// the end-to-end configuration the -reduce=sym,por flag enables.
func TestCombinedReductions(t *testing.T) {
	m := twophase.New(4, twophase.MajorityBug, 2)
	start := model.InitialSystem(m)
	opt := Options{Invariant: twophase.Atomicity(), SoundnessShare: -1}
	base := Check(m, start, opt)
	ropt := opt
	ropt.Reduce = Reductions{Symmetry: true, PartialOrder: true}
	red := Check(m, start, ropt)
	if base.Complete != red.Complete {
		t.Fatalf("completeness diverged: base=%v reduced=%v", base.Complete, red.Complete)
	}
	assertSameBugSet(t, base, red)
}

// TestSymmetryInactiveWithoutDeclaration: machines without a usable
// declaration run unreduced even when the flag is on.
func TestSymmetryInactiveWithoutDeclaration(t *testing.T) {
	m := paxos.New(3, paxos.NoBug, paxos.ActiveIndex{MaxPerNode: 1})
	start := model.InitialSystem(m)
	opt := Options{
		Invariant:      paxos.Agreement(),
		Reduce:         Reductions{Symmetry: true},
		MaxTransitions: 2000,
	}
	res := Check(m, start, opt)
	if res.Stats.SymmetrySkips != 0 || res.Stats.OrbitChecks != 0 {
		t.Fatalf("symmetry applied without a declaration: %s", res.Stats.String())
	}
	if _, ok := interface{}(m).(model.Symmetric); !ok {
		t.Fatal("paxos machine no longer declares model.Symmetric")
	}
	if cls := m.SymmetryClasses(); cls != nil {
		t.Fatalf("ActiveIndex driver must declare no classes, got %v", cls)
	}
}

// TestProtocolDeclarations: the shipped declarations match the documented
// role analysis.
func TestProtocolDeclarations(t *testing.T) {
	gen := paxos.New(4, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	if got := gen.SymmetryClasses(); len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("paxos OnceAt classes = %v, want one 3-member class", got)
	}
	if c := buildCanonicalizer(gen.NumNodes(), gen.SymmetryClasses()); c == nil {
		t.Fatal("paxos OnceAt declaration did not build")
	}
	tp := twophase.New(4, twophase.MajorityBug, 2)
	cls := tp.SymmetryClasses()
	if len(cls) != 2 || len(cls[0]) != 2 || len(cls[1]) != 1 {
		t.Fatalf("twophase classes = %v, want yes={1,3} no={2}", cls)
	}
	if c := buildCanonicalizer(tp.NumNodes(), cls); c == nil || c.NumClasses() != 1 {
		t.Fatal("twophase declaration should keep exactly the yes-voter class")
	}
}

// TestAppendValidAccounting: appendValid must leave the pool untouched on
// failure and apply the exact delta on success.
func TestAppendValidAccounting(t *testing.T) {
	fpA, fpB := codec.Fingerprint(1), codec.Fingerprint(2)
	net := map[codec.Fingerprint]int{fpA: 1}
	p := []pred{
		{kind: model.NetworkEvent, msgFP: fpA, generated: []codec.Fingerprint{fpB}},
		{kind: model.NetworkEvent, msgFP: fpB},
	}
	ok, sched := appendValid(net, p)
	if !ok || len(sched) != 2 {
		t.Fatalf("valid append rejected: ok=%v len=%d", ok, len(sched))
	}
	if net[fpA] != 0 || net[fpB] != 0 {
		t.Fatalf("pool after append: %v", net)
	}
	bad := []pred{{kind: model.NetworkEvent, msgFP: fpA}}
	ok, _ = appendValid(net, bad)
	if ok {
		t.Fatal("append consumed a missing message")
	}
	if net[fpA] != 0 || net[fpB] != 0 {
		t.Fatalf("failed append mutated the pool: %v", net)
	}
}
