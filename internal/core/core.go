// Package core implements LMC, the paper's local model-checking approach
// (§4, Figures 7–9): the network element is removed from the checker's
// states a priori; each node's local state space is explored independently
// against a single shared, monotonically growing network object I+; system
// states are only materialized temporarily — by Cartesian combination of
// visited node states — for invariant checking; and a preliminary invariant
// violation is confirmed a posteriori by a soundness-verification phase
// that searches the predecessor DAG for a real schedule realizing the
// combination.
//
// The package provides both the general algorithm (LMC-GEN) and the
// invariant-specific optimization (LMC-OPT) selected by supplying a
// spec.Reduction.
package core

import (
	"errors"
	"time"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/obs"
	"lmc/internal/spec"
	"lmc/internal/stats"
	"lmc/internal/trace"
)

// StopReason says why a run ended; the vocabulary is shared with the global
// baseline through the observability layer. See obs.StopReason.
type StopReason = obs.StopReason

// Re-exported stop reasons.
const (
	StopFixpoint    = obs.StopFixpoint
	StopBudget      = obs.StopBudget
	StopTransitions = obs.StopTransitions
	StopCancelled   = obs.StopCancelled
	StopFirstBug    = obs.StopFirstBug
)

// Options configures a run of the local checker.
type Options struct {
	// Invariant is the system-wide safety property. May be nil when only
	// LocalInvariants are checked.
	Invariant spec.Invariant
	// LocalInvariants are node-local properties checked directly on every
	// newly visited node state, with no Cartesian combination (§4,
	// RandTree's disjoint children/siblings example).
	LocalInvariants []spec.LocalInvariant
	// Reduction, when non-nil, enables LMC-OPT: system states are only
	// materialized for combinations whose member interests conflict.
	Reduction spec.Reduction

	// Reduce selects the optional fingerprint-layer reductions — symmetry
	// canonicalization of system-state combinations (for machines declaring
	// model.Symmetric) and partial-order reduction of delivery interleavings
	// during soundness verification. Both default off; a reduced run finds
	// every violation the unreduced run finds (the diffcheck corpus gates
	// this), while exploring a fraction of the system states.
	Reduce Reductions

	// InitialMessages seeds the shared network I+ before exploration, for
	// callers that capture in-flight messages along with the live state.
	// The paper's online runs seed nothing (messages in flight at snapshot
	// time are simply lost, which is safe).
	InitialMessages []model.Message

	// DupLimit is the number of duplicate copies of an identical message
	// admitted to I+ beyond the first; the paper uses 0 (§4.2).
	DupLimit int

	// LocalBound caps the number of internal-action handler executions per
	// node within one exploration pass (§4.2, "Local events": "in each
	// round we put a bound on the number of local events that each node can
	// execute"). Zero means 1. Budget is granted to node states in
	// discovery order, which favors the live state's own local events.
	LocalBound int
	// LocalBoundStep, when positive, re-runs the exploration from scratch
	// with LocalBound increased by the step whenever the bound actually
	// suppressed an action, until MaxLocalBound or another stop criterion.
	LocalBoundStep int
	// MaxLocalBound caps the iterative-deepening of LocalBound; zero
	// disables the outer loop regardless of LocalBoundStep.
	MaxLocalBound int

	// MaxPathDepth bounds the per-node path length (events executed on one
	// node); 0 means unbounded.
	MaxPathDepth int
	// MaxSystemDepth bounds the total depth (sum of member path lengths)
	// of materialized system states; 0 means unbounded.
	MaxSystemDepth int
	// MaxTransitions bounds handler executions; 0 means unbounded.
	MaxTransitions int
	// Budget bounds wall time; 0 means unbounded.
	Budget time.Duration
	// StopAtFirstBug ends the search at the first confirmed violation.
	StopAtFirstBug bool

	// CreateSystemStates gates system-state materialization and invariant
	// checking; disabling it yields the "LMC-explore" configuration of
	// Figure 13. Enabled by default (the zero Options value flips it on
	// via Check).
	DisableSystemStates bool
	// DisableSoundness skips the a-posteriori soundness verification,
	// yielding the "LMC-system-state" configuration of Figure 13.
	// Preliminary violations are then counted but never confirmed.
	DisableSoundness bool
	// DisableReplay skips the final schedule replay that double-checks a
	// sound violation against the real handlers before reporting.
	DisableReplay bool

	// MaxPathsPerNode caps the predecessor paths enumerated per node during
	// soundness verification (the combinatorial cost the paper identifies
	// in §5.2). Zero means DefaultMaxPathsPerNode.
	MaxPathsPerNode int
	// MaxSequencesPerCheck caps the path combinations examined per
	// soundness call. Zero means DefaultMaxSequencesPerCheck.
	MaxSequencesPerCheck int
	// MaxPredecessors caps predecessor edges recorded per node state; 0
	// means DefaultMaxPredecessors.
	MaxPredecessors int

	// SoundnessShare bounds the fraction of elapsed wall time spent in
	// witness searches while exploration is still making progress; searches
	// beyond the share are queued and drained between rounds and at the
	// exploration fixpoint. §4.3 observes that "the cost of soundness
	// verification dominates" when preliminary violations are plentiful —
	// the share keeps the checker exploring toward the states that make
	// witnesses valid instead of exhaustively refuting early junk. Zero
	// means the default of 0.5; negative disables deferral.
	SoundnessShare float64

	// Workers sets the size of the worker pool used for exploration rounds,
	// system-state invariant checking, and speculative soundness
	// confirmation ("the model checking process can be embarrassingly
	// parallelized", §1). Zero auto-detects runtime.NumCPU(); a negative
	// value forces fully sequential execution; a positive value is used
	// as-is. Results are bit-for-bit identical for every setting: workers
	// buffer their discoveries per round and the engine merges them in the
	// canonical sequential order. Exploration phases additionally fall back
	// to the canonical order whenever MaxTransitions is set, so a bounded
	// run truncates at the same transition regardless of Workers.
	Workers int

	// ParallelThreshold is the Cartesian-product size above which
	// system-state invariant checking fans out across the worker pool;
	// below it the dispatch overhead dominates any gain. Zero means the
	// default of 64.
	ParallelThreshold int

	// RoundDeliveryCap bounds the message-handler executions each node
	// performs per exploration round. Late rounds can deliver thousands of
	// I+ entries across a six-figure visited list; uncapped, one such round
	// monopolizes the whole wall-clock budget while every deferred
	// invariant check waits at the round barrier — and a budget-bounded run
	// then stops having explored much and checked nothing. The cap splits
	// giant rounds into bounded slices (each entry resumes from its Applied
	// prefix next round), so checks run at bounded intervals just as they
	// do in the inline sequential formulation. The boundary is structural —
	// a fixed execution count, never wall time — so results stay identical
	// for every worker count. Zero means the default of 8192; negative
	// disables the cap.
	RoundDeliveryCap int

	// RecordSeries collects per-round progress samples (Figures 10–13).
	RecordSeries bool

	// AssertionPolicy selects how handler rejections are treated; both
	// policies discard the successor state (§4.2, "Local assertions").
	AssertionPolicy spec.AssertionPolicy

	// Checkpoint, when non-nil, receives a RoundCheckpoint at every
	// completed round merge barrier: the round's delivery records (the same
	// fingerprint-only records the shard layer exchanges), the per-node
	// new-state fingerprints, a replica digest, and a counter snapshot. A
	// sink error disables checkpointing for the rest of the run (reported
	// via a KindCheckpoint event); the run itself continues. See
	// checkpoint.go and internal/store.
	Checkpoint CheckpointSink
	// Resume, when non-nil, primes each round's delivery walk with the
	// stored records of a previous run of the identical spec, so the resumed
	// run re-derives — bit-for-bit, including Counters modulo the wall-clock
	// duration fields — everything the interrupted run computed, without
	// re-executing recorded handlers. After each primed round the replica's
	// digest is verified against the stored one; a mismatch stops the run
	// with StopResumeDiverged.
	Resume ResumeSource
	// Shards requests sharded multi-process exploration when the run is
	// launched through a runner that can spawn worker processes (cmd/lmc,
	// internal/service, internal/shard.Check); <= 1 means in-process. The
	// in-process checkers themselves ignore it — sharding needs a Spawner,
	// which only those runners supply.
	Shards int

	// Observer receives typed run events: round start/end, pass restarts,
	// system-state batches, soundness calls, preliminary and confirmed
	// violations, and periodic heartbeat snapshots of the counters. Events
	// are buffered per round and flushed at the round's merge barrier on the
	// sequential merge goroutine, so an active observer never runs inside
	// the parallel workers' hot path and cannot perturb the bit-for-bit
	// determinism of parallel runs. Nil disables emission entirely (a single
	// branch per barrier).
	Observer obs.Observer
	// HeartbeatEvery is the minimum wall time between heartbeat events.
	// Zero means one second when an Observer is set; negative disables
	// heartbeats (useful for deterministic event-stream tests). Heartbeats
	// fire at round barriers, so a long round delays the next beat.
	HeartbeatEvery time.Duration
}

// Validate checks the options for configurations that cannot produce a
// meaningful run. It is called by CheckContext (and by the facade's
// context APIs); the legacy Check entry point deliberately skips it for
// backward compatibility.
//
// A nil Invariant is legal in two documented configurations: when
// LocalInvariants are supplied (node-local properties are checked directly
// on visited node states, with no Cartesian combination — §4's RandTree
// case), and when DisableSystemStates is set (the pure-exploration
// "LMC-explore" configuration of Figure 13). With neither, the run would
// explore and materialize system states but check nothing on them.
func (o *Options) Validate() error {
	if o.Invariant == nil && len(o.LocalInvariants) == 0 && !o.DisableSystemStates {
		return errors.New("core: Options.Invariant is required (or supply LocalInvariants, or set DisableSystemStates for a pure exploration run)")
	}
	if o.SoundnessShare > 1 {
		return errors.New("core: Options.SoundnessShare is a fraction of elapsed wall time and must be <= 1 (negative disables deferral)")
	}
	return nil
}

// Defaults for the soundness-verification caps. The caps trade completeness
// of the a-posteriori check for bounded cost; the paper accepts the same
// kind of incompleteness ("the search in the limited time budget is
// incomplete anyway", §4.2).
const (
	DefaultMaxPathsPerNode      = 512
	DefaultMaxSequencesPerCheck = 1 << 14
	DefaultMaxPredecessors      = 64

	// DefaultParallelThreshold is the Options.ParallelThreshold default: the
	// combination count above which system-state checking fans out.
	DefaultParallelThreshold = 64

	// DefaultRoundDeliveryCap is the Options.RoundDeliveryCap default:
	// per-node message deliveries per round before the round barrier (and
	// its deferred checks) must run.
	DefaultRoundDeliveryCap = 8192

	// witnessPairPathCap bounds the alternate paths tried per member of the
	// conflicting pair during a witness search; witnessCompletionPathCap
	// does the same for completion nodes. A state can be reachable by
	// several routes (its predecessor DAG), and a witness may need a route
	// other than the discovery one — e.g. one that includes the handler
	// execution that generated a message the pair consumed.
	witnessPairPathCap       = 8
	witnessCompletionPathCap = 8
)

// Bug is a violation confirmed by soundness verification. Schedule is a
// realizable total order of events from the start system state whose final
// state violates the invariant; it has been validated by isSequenceValid
// and (unless DisableReplay) replayed against the real handlers.
type Bug struct {
	Violation *spec.Violation
	Schedule  trace.Schedule
	// System is the violating system state.
	System model.SystemState
	// Depth is the total depth (sum of member path lengths).
	Depth int
}

// Result reports a finished run.
type Result struct {
	Stats  stats.Counters
	Series *stats.Series
	Bugs   []Bug
	// Complete is true when exploration reached a fixpoint (no new node
	// states, all messages applied everywhere) within the configured
	// bounds, without hitting a transition/time cutoff.
	Complete bool
	// Suppressed is true when the final pass's local-event bound actually
	// suppressed at least one enabled internal action: the fixpoint of a
	// Complete run is then relative to the bound, and a run with a larger
	// bound could reach more states. Differential harnesses use this to
	// tell "explored everything" apart from "explored everything the bound
	// allowed".
	Suppressed bool
	// StopReason says why the run ended: StopFixpoint for a Complete run,
	// otherwise the first stop criterion that fired (budget, transition
	// cap, cancellation, or first confirmed bug). It disambiguates the
	// bool-only Complete signal.
	StopReason StopReason
	// FinalLocalBound is the local-event bound of the last pass.
	FinalLocalBound int
}

// nodeState is one visited local state of one node, the unit the local
// checker stores (the LS sets of Figure 7).
type nodeState struct {
	node  model.NodeID
	state model.State
	fp    codec.Fingerprint
	// seq is the state's index in its node's visited list; the shared
	// network's per-message Applied counters refer to these indexes.
	seq int
	// depth is the length of the first path that reached this state.
	depth int
	// history is the persistent set of delivery-event fingerprints executed
	// along the first path (§4.2, "Duplicate messages": a message is never
	// re-executed on a state whose history already contains it).
	history *historyNode
	// preds records every immediate predecessor edge (Figure 9 line 14);
	// soundness verification walks them backward to enumerate the event
	// sequences that could lead here.
	preds []pred
	// interest caches the Reduction projection (LMC-OPT).
	interest    spec.Interest
	interesting bool
	// creation memoizes the state's creation path (the chain of first
	// predecessor edges back to the node's start state).
	creation     []pred
	creationDone bool
	// gen is the persistent chain of message fingerprints generated along
	// the creation path; witness searches use it to rank and prune
	// completion candidates by what they can supply.
	gen *genNode
	// flow is the state's flow memo: net consumed-minus-generated counts per
	// message fingerprint along the creation path, sorted by fingerprint
	// (index.go). Built at discovery from the predecessor's memo; flowDone
	// guards the lazy fallback for states added outside the exploration loop.
	flow     []flowEntry
	flowDone bool
	// actionsDone marks that this state's enabled internal actions have
	// been executed (subject to the local bound).
	actionsDone bool
	// suppressed marks that the local bound suppressed at least one action
	// at this state, so a higher bound could reach more states.
	suppressed bool
}

// pred is a predecessor edge: the event that produced a state from a prior
// state of the same node, plus exactly the data isSequenceValid needs — the
// consumed message fingerprint (network events) and the fingerprints of
// the generated messages (§4.2, "the input to Procedure isSequenceValid is
// the set of sequenced events as well as the set of generated messages by
// each event").
type pred struct {
	prev      *nodeState // nil when the edge leaves the start state
	kind      model.EventKind
	event     model.Event // retained for counterexample reporting
	eventFP   codec.Fingerprint
	msgFP     codec.Fingerprint // consumed message (network events)
	generated []codec.Fingerprint
}

// historyNode is a persistent (shared-tail) list of delivered message
// event fingerprints.
type historyNode struct {
	parent *historyNode
	fp     codec.Fingerprint
}

// genNode is a persistent (shared-tail) list of the message fingerprints
// one creation-path event generated.
type genNode struct {
	parent *genNode
	fps    []codec.Fingerprint
}

// contains walks the chain looking for fp.
func (g *genNode) contains(fp codec.Fingerprint) bool {
	for n := g; n != nil; n = n.parent {
		for _, f := range n.fps {
			if f == fp {
				return true
			}
		}
	}
	return false
}

func (h *historyNode) contains(fp codec.Fingerprint) bool {
	for n := h; n != nil; n = n.parent {
		if n.fp == fp {
			return true
		}
	}
	return false
}

// space is the set of visited states of a single node.
type space struct {
	states []*nodeState
	byFP   map[codec.Fingerprint]*nodeState

	// chain is the running combination of every visited fingerprint in
	// discovery order. The states list only ever appends within a pass, so
	// shardDigest reads this instead of re-hashing the whole list each round.
	chain codec.Hasher

	// minProducer indexes creation-edge message emissions: fingerprint → seq
	// of the first state whose creation edge generated it (index.go).
	minProducer map[codec.Fingerprint]int

	// groups buckets interesting states by their canonical interest key
	// (LMC-OPT with a spec.Keyer reduction); rest holds the non-interesting
	// states. A conflicting pair must come from two groups, but the other
	// nodes of the combination range over all their states — their events
	// are what generated the messages the pair consumed, so restricting
	// them would starve soundness verification of every valid witness.
	groups     map[string]*interestGroup
	groupOrder []string
	rest       []*nodeState
}

// witnessKey identifies one witness search: the new node state, the peer
// node index, and the conflicting group (or "all" for keyless reductions).
type witnessKey struct {
	fp    codec.Fingerprint
	node  int
	group string
}

// pendingSearch is a witness search deferred by the soundness share.
type pendingSearch struct {
	ns    *nodeState
	node  int
	group string
}

// searchQueue is a min-heap of deferred witness searches ordered by the
// depth of the triggering node state: shallow states are more likely to be
// valid (junk combinations accumulate with depth), so their searches run
// first when the soundness share frees up.
type searchQueue []pendingSearch

func (q searchQueue) Len() int           { return len(q) }
func (q searchQueue) Less(i, j int) bool { return q[i].ns.depth < q[j].ns.depth }
func (q searchQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *searchQueue) Push(x any)        { *q = append(*q, x.(pendingSearch)) }
func (q *searchQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// interestGroup is the bucket of node states sharing one interest key.
type interestGroup struct {
	key      string
	interest spec.Interest
	members  []*nodeState
}

func newSpace() *space {
	return &space{
		byFP:        make(map[codec.Fingerprint]*nodeState),
		groups:      make(map[string]*interestGroup),
		minProducer: make(map[codec.Fingerprint]int),
		chain:       codec.NewHasher(),
	}
}

func (sp *space) add(ns *nodeState) {
	ns.seq = len(sp.states)
	sp.states = append(sp.states, ns)
	sp.byFP[ns.fp] = ns
	sp.chain.Add(ns.fp)
	sp.indexProducers(ns)
}

// classify registers ns in its interest group (or among the non-interesting
// rest) under a Keyer reduction.
func (sp *space) classify(ns *nodeState, keyer spec.Keyer) {
	if !ns.interesting {
		sp.rest = append(sp.rest, ns)
		return
	}
	key := keyer.InterestKey(ns.interest)
	g := sp.groups[key]
	if g == nil {
		g = &interestGroup{key: key, interest: ns.interest}
		sp.groups[key] = g
		sp.groupOrder = append(sp.groupOrder, key)
	}
	g.members = append(g.members, ns)
}

func (sp *space) lookup(fp codec.Fingerprint) *nodeState { return sp.byFP[fp] }
