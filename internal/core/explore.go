package core

import (
	"container/heap"
	"context"
	"runtime"
	"runtime/pprof"
	"time"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/netstate"
	"lmc/internal/obs"
	"lmc/internal/spec"
	"lmc/internal/stats"
)

// checker carries one run's mutable state.
type checker struct {
	m     model.Machine
	opt   Options
	start model.SystemState

	// ctx is polled at round barriers only, so cancellation cuts off at the
	// same round for every worker count.
	ctx context.Context
	// em buffers run events and flushes them at the same barriers.
	em emitter

	spaces []*space
	net    *netstate.SharedNet

	// initialNet lists message fingerprints available before any event
	// executes (Options.InitialMessages); soundness verification seeds its
	// generated-message set with them. initNetCount is the same multiset in
	// counted form, the supply baseline of the flow memos (index.go).
	initialNet   []codec.Fingerprint
	initNetCount map[codec.Fingerprint]int

	res        *Result
	probe      stats.MemProbe
	begin      time.Time
	deadline   time.Time
	localBound int

	// workers is the resolved worker-pool size (>= 1); parThreshold the
	// resolved Options.ParallelThreshold; roundCap the resolved
	// Options.RoundDeliveryCap (0 = uncapped).
	workers      int
	parThreshold int
	roundCap     int

	// keyer is non-nil when the reduction supports canonical interest keys
	// (the grouped LMC-OPT path).
	keyer spec.Keyer

	// canon is the role-symmetry canonicalizer, non-nil only when
	// Options.Reduce.Symmetry is set and the machine declares usable
	// model.Symmetric classes. It drives the GEN enumeration skip
	// (symSkip), the OPT clean-twin skip (canonClean) and the fixpoint
	// orbit sweep.
	canon *codec.Canonicalizer
	// canonClean caches canonical fingerprints of combinations the invariant
	// held on. OPT witness walks skip a combination whose canonical twin is
	// recorded here: slot-symmetric invariants give permuted arrangements
	// the same (clean) verdict, and clean combinations never become
	// witnesses. Violating combinations are never recorded — their soundness
	// verdicts are arrangement-specific. Content-keyed, so it persists
	// across passes.
	canonClean map[codec.Fingerprint]bool
	// orbits and orbitSeen record the violating orbits of the current pass
	// for sweepOrbits; both reset with the LS sets (the stored fingerprints
	// are resolved against the pass's spaces).
	orbits    []orbitRec
	orbitSeen map[codec.Fingerprint]struct{}

	// verdicts caches soundness outcomes per system-state fingerprint so a
	// combination is never verified twice (§4.2 discusses caching violated
	// system states).
	verdicts map[codec.Fingerprint]bool
	// reported guards against duplicate bug reports for one system state.
	reported map[codec.Fingerprint]bool
	// witnessed marks (state, node, group) witness searches already run;
	// like the paper's predecessor-update simplification, completed
	// searches are not redone when later states extend the completion
	// space — new states trigger their own searches instead.
	witnessed map[witnessKey]struct{}
	// pending queues witness searches deferred by the soundness share,
	// prioritized by the triggering state's depth.
	pending searchQueue
	// pairOutcomes is the epoch-gated witness outcome cache (index.go). Its
	// evidence is positional in the current pass's visited lists, so pass()
	// resets it along with the LS sets.
	pairOutcomes map[pairKey]*pairOutcome

	// link is the shard-worker fleet of a sharded run (nil otherwise); it is
	// dropped on degradation, after which the run finishes in-process.
	// shardRecs/actRecs/anchorReps are the current round's record tables
	// (hints for the walks and the invariant sweeps); shardBatch the digest
	// cadence cached from the link; shardTaint latches a detected
	// determinism violation (a record's emissions disagreed with
	// re-execution), which degrades at round end.
	link       ShardLink
	shardRecs  map[shardKey]*DeliveryRecord
	actRecs    map[actKey]*ActionRecord
	anchorReps map[anchorKey]*AnchorReport
	shardBatch int
	shardTaint error

	// Worker-replica capture state (zero on the coordinator): capIdx/
	// capCount partition the fingerprint space for record capture, and the
	// cap* buffers collect one round's records for owned parents
	// (capActsOff suppresses the action records). invShardIdx/invShardCount
	// additionally partition the system-state sweeps when invariant
	// sharding is on (zero otherwise).
	capIdx, capCount           int
	capActsOff                 bool
	capActs                    []ActionRecord
	capDels                    []DeliveryRecord
	capAnchors                 []AnchorReport
	invShardIdx, invShardCount int

	// ckpt is the round-checkpoint sink (nil disables); ckptOn arms the
	// per-round record capture in the delivery walk. resume supplies stored
	// rounds of a previous identical run; resumeDigest/resumePending carry a
	// primed round's stored digest to the barrier's verification.
	ckpt          CheckpointSink
	ckptOn        bool
	resume        ResumeSource
	resumeDigest  ShardDigest
	resumePending bool
	// Reused checkpoint buffers: the merged record batch and per-node
	// new-state segments handed to the sink (which serializes them
	// synchronously and must not retain them), plus the per-node capture
	// buffers lent to the delivery runs. All keep their capacity across
	// rounds so steady-state checkpointing allocates nothing per round.
	ckptRecs []DeliveryRecord
	ckptNews [][]codec.Fingerprint
	recsBuf  [][]DeliveryRecord
	recIdx   []int
	// ckptSeq marks a canonical delivery phase, whose single-goroutine walk
	// captures into ckptRecs directly in merge order (armRecBufs).
	ckptSeq bool

	stopped bool // a stop criterion (budget/transitions/first-bug) fired
	// reason records which criterion fired first; meaningful only while
	// stopped is set.
	reason         obs.StopReason
	passSuppressed bool // the local bound suppressed an action this pass
	// localExecuted counts internal-action handler executions per node in
	// the current pass, charged against localBound. During a parallel phase
	// each slot is owned by its node's worker.
	localExecuted []int
}

// resolveWorkers maps Options.Workers to a concrete pool size: negative
// forces sequential (one worker), zero auto-detects the CPU count, positive
// is clamped to GOMAXPROCS — a pool wider than the scheduler's parallelism
// cannot run any faster, and on a 1-CPU host the goroutine churn made the
// pool measurably slower than sequential (the resolved count of 1 then
// skips pool setup entirely via the parallel-phase gate).
func resolveWorkers(w int) int {
	switch {
	case w < 0:
		return 1
	case w == 0:
		w = runtime.NumCPU()
	}
	if procs := runtime.GOMAXPROCS(0); w > procs {
		w = procs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Check runs the local model checker on machine m from the given start
// system state — the live state in online use, or model.InitialSystem(m)
// for offline checking — under opt. It is a thin wrapper over CheckContext
// with a background context and, for backward compatibility, no option
// validation.
func Check(m model.Machine, start model.SystemState, opt Options) *Result {
	return run(context.Background(), m, start, opt, nil)
}

// CheckContext is Check with option validation and cooperative
// cancellation. The context is polled at round barriers only — between
// rounds the merge goroutine flushes buffered run events and then checks
// ctx — so a cancelled run stops at the same round for every Workers
// setting, and an Observer hook that cancels on a given round produces
// identical partial results sequentially and in parallel. A cancelled run
// is not an error: it returns the partial Result with Complete=false and
// StopReason=StopCancelled. The error return is reserved for invalid
// Options (see Options.Validate).
func CheckContext(ctx context.Context, m model.Machine, start model.SystemState, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return run(ctx, m, start, opt, nil), nil
}

// newChecker resolves the option defaults and builds a checker ready to run
// passes. Shard workers build their replicas through it too, so coordinator
// and worker resolve every exploration knob identically.
func newChecker(ctx context.Context, m model.Machine, start model.SystemState, opt Options) *checker {
	if opt.LocalBound <= 0 {
		opt.LocalBound = 1
	}
	if opt.MaxPathsPerNode <= 0 {
		opt.MaxPathsPerNode = DefaultMaxPathsPerNode
	}
	if opt.MaxSequencesPerCheck <= 0 {
		opt.MaxSequencesPerCheck = DefaultMaxSequencesPerCheck
	}
	if opt.MaxPredecessors <= 0 {
		opt.MaxPredecessors = DefaultMaxPredecessors
	}
	c := &checker{
		m:         m,
		opt:       opt,
		start:     start.Clone(),
		res:       &Result{},
		verdicts:  make(map[codec.Fingerprint]bool),
		reported:  make(map[codec.Fingerprint]bool),
		witnessed: make(map[witnessKey]struct{}),
	}
	c.workers = resolveWorkers(opt.Workers)
	c.parThreshold = opt.ParallelThreshold
	if c.parThreshold <= 0 {
		c.parThreshold = DefaultParallelThreshold
	}
	switch {
	case opt.RoundDeliveryCap > 0:
		c.roundCap = opt.RoundDeliveryCap
	case opt.RoundDeliveryCap == 0:
		c.roundCap = DefaultRoundDeliveryCap
	}
	if k, ok := opt.Reduction.(spec.Keyer); ok {
		c.keyer = k
	}
	if opt.Reduce.Symmetry {
		if sym, ok := m.(model.Symmetric); ok {
			c.canon = buildCanonicalizer(m.NumNodes(), sym.SymmetryClasses())
		}
		if c.canon != nil {
			c.canonClean = make(map[codec.Fingerprint]bool)
		}
	}
	if opt.RecordSeries {
		c.res.Series = stats.NewSeries()
	}
	c.probe.Baseline()
	c.begin = time.Now()
	if opt.Budget > 0 {
		c.deadline = c.begin.Add(opt.Budget)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	c.ctx = ctx
	c.em = newEmitter(opt.Observer, opt.HeartbeatEvery, c.begin)
	c.localBound = opt.LocalBound
	c.ckpt = opt.Checkpoint
	c.resume = opt.Resume
	return c
}

func run(ctx context.Context, m model.Machine, start model.SystemState, opt Options, link ShardLink) *Result {
	c := newChecker(ctx, m, start, opt)
	c.link = link
	if link != nil {
		c.shardBatch = link.Batch()
		if c.shardBatch < 1 {
			c.shardBatch = 1
		}
	}
	c.em.runStart()

	// Iterative deepening on the local-event bound (§4.2, "Local events"):
	// run a pass; if the bound suppressed any action and deepening is
	// configured, restart from scratch with a larger bound.
	for pass := 1; ; pass++ {
		c.em.passStart(pass, c.localBound)
		if c.link != nil {
			if err := c.link.BeginPass(pass, c.localBound); err != nil {
				c.degradeShards(-1, err)
			}
		}
		complete := c.pass()
		c.res.Complete = complete && !c.stopped
		c.res.Suppressed = c.passSuppressed
		c.res.FinalLocalBound = c.localBound
		if c.stopped || !c.passSuppressed ||
			opt.LocalBoundStep <= 0 || opt.MaxLocalBound <= 0 ||
			c.localBound >= opt.MaxLocalBound {
			break
		}
		c.localBound += c.opt.LocalBoundStep
		if c.localBound > c.opt.MaxLocalBound {
			c.localBound = c.opt.MaxLocalBound
		}
	}
	if c.link != nil {
		c.link.Finish()
		c.link = nil
	}
	c.res.Stats.Elapsed = time.Since(c.begin)
	if c.stopped {
		c.res.StopReason = c.reason
	} else {
		c.res.StopReason = obs.StopFixpoint
	}
	c.em.runEnd(c.res, &c.probe)
	return c.res
}

// stop latches the first stop criterion that fires; later calls keep the
// original reason.
func (c *checker) stop(reason obs.StopReason) {
	if !c.stopped {
		c.stopped = true
		c.reason = reason
	}
}

// pollCancel checks the run context at a round barrier. A nil context (a
// checker built directly by tests, bypassing run) never cancels.
func (c *checker) pollCancel() {
	if c.ctx != nil && c.ctx.Err() != nil {
		c.stop(obs.StopCancelled)
	}
}

// deadlinePollInterval is the number of charged work units (handler
// executions during exploration, combinations during the system-state and
// witness walks) between wall-clock deadline checks. One shared cadence
// keeps budget cutoffs comparably prompt in every loop while keeping
// time.Now off the per-unit hot path.
const deadlinePollInterval = 256

// pollDeadline charges one unit against the poll cadence and reports
// whether the wall-clock deadline has passed (checked on every
// deadlinePollInterval-th call). It only reads checker state, so parallel
// workers may call it concurrently; the caller decides how to latch the
// stop — c.stop on sequential paths, the shared halt flag inside parallel
// phases.
func (c *checker) pollDeadline(tick *int) bool {
	*tick++
	if *tick%deadlinePollInterval != 0 {
		return false
	}
	return !c.deadline.IsZero() && time.Now().After(c.deadline)
}

// underPhase runs f with a pprof "phase" label, so CPU profiles attribute
// samples to the exploration phases out of the box (goroutines spawned
// under the label inherit it). Labels nest lexically: soundness work
// reached from inside a sysstate-labeled barrier reports as soundness.
func (c *checker) underPhase(phase string, f func()) {
	ctx := c.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	pprof.Do(ctx, pprof.Labels("phase", phase), func(context.Context) { f() })
}

// pass explores to a fixpoint under the current local bound, starting from
// scratch (fresh LS sets and fresh I+). It reports whether the fixpoint was
// reached (as opposed to a stop criterion firing).
//
// Each round runs in two phases — internal events, then network events —
// and each phase fans every node's share out to its own worker goroutine
// (the per-node exploration is independent: a worker touches only its own
// LS set and, in the delivery phase, the Applied counters of its own
// inbound entries, reading the network through an immutable epoch
// snapshot). Workers buffer emissions and discoveries; the round barrier
// merges them into I+ in the canonical sequential order and then runs the
// deferred invariant checks against virtual-time prefix views, so results
// are bit-for-bit identical for every worker count.
// beginPass resets the per-pass state: fresh LS sets seeded with the start
// states, a fresh shared network seeded with the captured in-flight
// messages, and fresh per-pass caches. Shard workers reset their replicas
// through it too (ShardWorker.BeginPass), so coordinator and worker start
// every pass from identical ground.
func (c *checker) beginPass() {
	c.passSuppressed = false
	c.net = netstate.NewSharedNet(c.opt.DupLimit)
	c.localExecuted = make([]int, c.m.NumNodes())
	c.spaces = make([]*space, c.m.NumNodes())
	for n := range c.spaces {
		c.spaces[n] = newSpace()
	}

	// Seed the shared network with any captured in-flight messages. Their
	// fingerprints count as available from the start during soundness
	// verification.
	c.initialNet = nil
	for _, msg := range c.opt.InitialMessages {
		if e := c.net.Add(msg); e != nil {
			c.initialNet = append(c.initialNet, e.FP)
		} else {
			c.res.Stats.DuplicatesDropped++
		}
	}
	c.initNetCount = make(map[codec.Fingerprint]int, len(c.initialNet))
	for _, fp := range c.initialNet {
		c.initNetCount[fp]++
	}
	c.pairOutcomes = make(map[pairKey]*pairOutcome)
	if c.canon != nil {
		c.orbits = nil
		c.orbitSeen = make(map[codec.Fingerprint]struct{})
	}

	// Lines 3–4 of Figure 9: initialize each LSn with the live state.
	for n := 0; n < c.m.NumNodes(); n++ {
		ns := &nodeState{
			node:  model.NodeID(n),
			state: c.start[n].Clone(),
			fp:    model.StateFingerprint(c.start[n]),
			// The empty creation path consumes and generates nothing.
			flowDone: true,
		}
		c.project(ns)
		c.spaces[n].add(ns)
		if c.keyer != nil {
			c.spaces[n].classify(ns, c.keyer)
		}
		c.res.Stats.NodeStates++
	}
}

func (c *checker) pass() bool {
	c.beginPass()
	// The start system state itself is checked once, before exploration.
	c.checkStartState()

	// Exploration phases fan out only when the transition budget is
	// unbounded: a MaxTransitions cap must be charged in the canonical
	// sequential order so a bounded run cuts off at the same transition for
	// every worker count.
	parallel := c.workers >= 2 && c.m.NumNodes() >= 2 && c.opt.MaxTransitions <= 0

	for round := 1; !c.stopped; round++ {
		progress := false
		c.em.roundStart()
		// Checkpointing: arm record capture, snapshot the round-start
		// visited-list lengths, and prime the delivery walk with a resumed
		// run's stored records for this round.
		ckLens := c.beginRoundCheckpoint(round)
		// Sharded runs: the workers ran this round on their replicas
		// already (they stream rounds autonomously once the pass begins);
		// pull their records so both phases below consult them as hints.
		c.shardFetchRound(round)

		// Internal events: execute the enabled actions of every node state
		// that has not been processed yet (new states from the previous
		// round included). The phase sweeps and the barrier's deferred
		// system-state checks run under distinct pprof phase labels.
		var runsA []*nodeRun
		c.underPhase("actions", func() { runsA = c.runActionPhase(parallel) })
		c.underPhase("sysstate", func() {
			if c.mergeActionPhase(runsA) {
				progress = true
			}
		})

		// Network events (lines 6 and 8 of Figure 9): each message in I+ is
		// executed on every visited state of its destination node; the
		// Applied counter skips states already covered in earlier rounds.
		// Messages appended during this round are picked up next round (the
		// epoch snapshot), matching the paper's rounds.
		var runsB []*nodeRun
		if !c.stopped {
			c.underPhase("delivery", func() { runsB = c.runDeliveryPhase(parallel) })
			c.underPhase("sysstate", func() {
				if c.mergeDeliveryPhase(runsB) {
					progress = true
				}
			})
			c.clearShardRecords()
		}

		c.underPhase("soundness", func() { c.drainPending(false) })
		c.recordRound()
		// Checkpoint barrier: verify a resume-primed round's digest, then
		// hand the completed round to the sink. Before em.barrier, so the
		// checkpoint/resume events flush with the round's batch; skipped
		// when a stop criterion fired mid-round (the round is incomplete).
		c.endRoundCheckpoint(round, runsB, ckLens)
		// The round barrier: flush buffered run events, then poll the
		// context. The observer runs before the poll, so a hook that cancels
		// on a chosen round stops the run at that exact barrier regardless of
		// the worker count.
		c.em.barrier(c.res, &c.probe, true)
		c.pollCancel()
		if c.stopped {
			break
		}
		c.shardEndBatch(round, progress)
		if !progress {
			// Exploration fixpoint: run every deferred witness search, then
			// re-expand the recorded violating orbits so every arrangement
			// the symmetry skip covered gets its own soundness verdict.
			c.underPhase("soundness", func() { c.drainPending(true) })
			c.sweepOrbits()
			return true
		}
	}
	return false
}

// drainPending runs deferred witness searches: all of them when force is
// set (the exploration fixpoint), otherwise only while the soundness share
// allows. Deferred searches resolve their candidate lists at run time (nil
// view), so they see everything visited by then.
func (c *checker) drainPending(force bool) {
	for c.pending.Len() > 0 && !c.stopped {
		if !force && c.soundnessShareExceeded() {
			return
		}
		p := heap.Pop(&c.pending).(pendingSearch)
		c.searchWitness(p.ns, p.node, p.group, true, nil)
	}
}

// soundnessShareExceeded reports whether witness searching has consumed its
// configured share of the elapsed wall time.
func (c *checker) soundnessShareExceeded() bool {
	share := c.opt.SoundnessShare
	if share < 0 {
		return false
	}
	if share == 0 {
		share = 0.5
	}
	spent := c.res.Stats.SoundnessTime
	if spent < 10*time.Millisecond {
		return false
	}
	return float64(spent) > share*float64(time.Since(c.begin))
}

// addPred appends a predecessor edge unless it duplicates an existing one
// or the cap is reached.
func (c *checker) addPred(ns *nodeState, edge pred) {
	if len(ns.preds) >= c.opt.MaxPredecessors {
		return
	}
	for _, p := range ns.preds {
		if p.prev == edge.prev && p.eventFP == edge.eventFP {
			return
		}
	}
	ns.preds = append(ns.preds, edge)
}

// project caches the LMC-OPT interest of a node state.
func (c *checker) project(ns *nodeState) {
	if c.opt.Reduction == nil {
		return
	}
	ns.interest, ns.interesting = c.opt.Reduction.Interest(ns.node, ns.state)
}

// chargeTransition accounts for one handler execution and evaluates the
// global stop criteria in canonical (sequential) exploration mode. It
// returns false when the execution must not proceed.
func (c *checker) chargeTransition() bool {
	if c.stopped {
		return false
	}
	if c.opt.MaxTransitions > 0 && c.res.Stats.Transitions >= c.opt.MaxTransitions {
		c.stop(obs.StopTransitions)
		return false
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		c.stop(obs.StopBudget)
		return false
	}
	c.res.Stats.Transitions++
	return true
}

// checkLocalInvariants evaluates node-local invariants directly on a newly
// visited node state, with no Cartesian combination (§4: RandTree's
// disjoint children/siblings). A violation still goes through soundness
// verification — the node state must be reachable in a real run, and the
// messages its path consumed must be generated by some completion of the
// other nodes — via the same lazy witness search system violations use.
func (c *checker) checkLocalInvariants(ns *nodeState, view []int) {
	for _, li := range c.opt.LocalInvariants {
		msg := li.CheckNode(ns.node, ns.state)
		if msg == "" {
			continue
		}
		c.res.Stats.PreliminaryViolations++
		v := &spec.Violation{
			Invariant: li.Name(),
			Detail:    "node " + ns.node.String() + ": " + msg,
		}
		c.confirmLocalViolation(ns, v, view)
		if c.stopped {
			return
		}
	}
}

// recordRound samples the per-round progress series. The depth coordinate
// is the maximum total system-state depth reachable from the states visited
// so far (the sum over nodes of the deepest visited path), which is the
// depth axis the paper plots for LMC (§5.1: LMC explores sequences up to
// 25 in the 22-event space).
func (c *checker) recordRound() {
	if c.res.Series == nil {
		return
	}
	depth := 0
	for _, sp := range c.spaces {
		max := 0
		for _, ns := range sp.states {
			if ns.depth > max {
				max = ns.depth
			}
		}
		depth += max
	}
	if depth > c.res.Stats.MaxDepth {
		c.res.Stats.MaxDepth = depth
	}
	c.res.Series.Record(stats.Sample{
		Depth:        depth,
		Elapsed:      time.Since(c.begin),
		Transitions:  c.res.Stats.Transitions,
		NodeStates:   c.res.Stats.NodeStates,
		SystemStates: c.res.Stats.SystemStates,
		HeapBytes:    c.probe.Sample(),
	})
}
