package core

import (
	"container/heap"
	"time"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/netstate"
	"lmc/internal/spec"
	"lmc/internal/stats"
)

// checker carries one run's mutable state.
type checker struct {
	m     model.Machine
	opt   Options
	start model.SystemState

	spaces []*space
	net    *netstate.Shared

	// initialNet lists message fingerprints available before any event
	// executes (Options.InitialMessages); soundness verification seeds its
	// generated-message set with them.
	initialNet []codec.Fingerprint

	res        *Result
	probe      stats.MemProbe
	begin      time.Time
	deadline   time.Time
	localBound int

	// keyer is non-nil when the reduction supports canonical interest keys
	// (the grouped LMC-OPT path).
	keyer spec.Keyer

	// verdicts caches soundness outcomes per system-state fingerprint so a
	// combination is never verified twice (§4.2 discusses caching violated
	// system states).
	verdicts map[codec.Fingerprint]bool
	// reported guards against duplicate bug reports for one system state.
	reported map[codec.Fingerprint]bool
	// witnessed marks (state, node, group) witness searches already run;
	// like the paper's predecessor-update simplification, completed
	// searches are not redone when later states extend the completion
	// space — new states trigger their own searches instead.
	witnessed map[witnessKey]struct{}
	// pending queues witness searches deferred by the soundness share,
	// prioritized by the triggering state's depth.
	pending searchQueue

	stopped        bool // a stop criterion (budget/transitions/first-bug) fired
	passSuppressed bool // the local bound suppressed an action this pass
	// localExecuted counts internal-action handler executions per node in
	// the current pass, charged against localBound.
	localExecuted []int
}

// Check runs the local model checker on machine m from the given start
// system state — the live state in online use, or model.InitialSystem(m)
// for offline checking — under opt.
func Check(m model.Machine, start model.SystemState, opt Options) *Result {
	if opt.LocalBound <= 0 {
		opt.LocalBound = 1
	}
	if opt.MaxPathsPerNode <= 0 {
		opt.MaxPathsPerNode = DefaultMaxPathsPerNode
	}
	if opt.MaxSequencesPerCheck <= 0 {
		opt.MaxSequencesPerCheck = DefaultMaxSequencesPerCheck
	}
	if opt.MaxPredecessors <= 0 {
		opt.MaxPredecessors = DefaultMaxPredecessors
	}
	c := &checker{
		m:         m,
		opt:       opt,
		start:     start.Clone(),
		res:       &Result{},
		verdicts:  make(map[codec.Fingerprint]bool),
		reported:  make(map[codec.Fingerprint]bool),
		witnessed: make(map[witnessKey]struct{}),
	}
	if k, ok := opt.Reduction.(spec.Keyer); ok {
		c.keyer = k
	}
	if opt.RecordSeries {
		c.res.Series = stats.NewSeries()
	}
	c.probe.Baseline()
	c.begin = time.Now()
	if opt.Budget > 0 {
		c.deadline = c.begin.Add(opt.Budget)
	}

	// Iterative deepening on the local-event bound (§4.2, "Local events"):
	// run a pass; if the bound suppressed any action and deepening is
	// configured, restart from scratch with a larger bound.
	c.localBound = opt.LocalBound
	for {
		complete := c.pass()
		c.res.Complete = complete && !c.stopped
		c.res.Suppressed = c.passSuppressed
		c.res.FinalLocalBound = c.localBound
		if c.stopped || !c.passSuppressed ||
			opt.LocalBoundStep <= 0 || opt.MaxLocalBound <= 0 ||
			c.localBound >= opt.MaxLocalBound {
			break
		}
		c.localBound += opt.LocalBoundStep
		if c.localBound > opt.MaxLocalBound {
			c.localBound = opt.MaxLocalBound
		}
	}
	c.res.Stats.Elapsed = time.Since(c.begin)
	return c.res
}

// pass explores to a fixpoint under the current local bound, starting from
// scratch (fresh LS sets and fresh I+). It reports whether the fixpoint was
// reached (as opposed to a stop criterion firing).
func (c *checker) pass() bool {
	c.passSuppressed = false
	c.net = netstate.NewShared(c.opt.DupLimit)
	c.localExecuted = make([]int, c.m.NumNodes())
	c.spaces = make([]*space, c.m.NumNodes())
	for n := range c.spaces {
		c.spaces[n] = newSpace()
	}

	// Seed the shared network with any captured in-flight messages. Their
	// fingerprints count as available from the start during soundness
	// verification.
	c.initialNet = nil
	for _, msg := range c.opt.InitialMessages {
		if e := c.net.Add(msg); e != nil {
			c.initialNet = append(c.initialNet, e.FP)
		} else {
			c.res.Stats.DuplicatesDropped++
		}
	}

	// Lines 3–4 of Figure 9: initialize each LSn with the live state.
	for n := 0; n < c.m.NumNodes(); n++ {
		ns := &nodeState{
			node:  model.NodeID(n),
			state: c.start[n].Clone(),
			fp:    model.StateFingerprint(c.start[n]),
		}
		c.project(ns)
		c.spaces[n].add(ns)
		if c.keyer != nil {
			c.spaces[n].classify(ns, c.keyer)
		}
		c.res.Stats.NodeStates++
	}
	// The start system state itself is checked once, before exploration.
	c.checkStartState()

	for !c.stopped {
		progress := false

		// Internal events: execute the enabled actions of every node state
		// that has not been processed yet (new states from the previous
		// round included).
		for n := range c.spaces {
			list := c.spaces[n].states
			for i := 0; i < len(list); i++ { // list may grow while iterating
				list = c.spaces[n].states
				ns := list[i]
				if ns.actionsDone || c.stopped {
					continue
				}
				ns.actionsDone = true
				if c.opt.MaxPathDepth > 0 && ns.depth >= c.opt.MaxPathDepth {
					continue
				}
				if c.runActions(ns) {
					progress = true
				}
			}
		}

		// Network events (lines 6 and 8 of Figure 9): each message in I+ is
		// executed on every visited state of its destination node; the
		// Applied counter skips states already covered in earlier rounds.
		// Messages appended during this round are picked up next round
		// (snapshot of the entry count), matching the paper's rounds.
		numEntries := c.net.Len()
		for i := 0; i < numEntries && !c.stopped; i++ {
			e := c.net.Entry(i)
			dst := int(e.Msg.Dst())
			if dst < 0 || dst >= len(c.spaces) {
				continue
			}
			destList := c.spaces[dst].states
			limit := len(destList)
			for j := e.Applied; j < limit && !c.stopped; j++ {
				c.deliver(e, destList[j])
			}
			if e.Applied < limit {
				e.Applied = limit
				progress = true
			}
		}

		c.drainPending(false)
		c.recordRound()
		if !progress {
			// Exploration fixpoint: run every deferred witness search.
			c.drainPending(true)
			return true
		}
	}
	return false
}

// drainPending runs deferred witness searches: all of them when force is
// set (the exploration fixpoint), otherwise only while the soundness share
// allows.
func (c *checker) drainPending(force bool) {
	for c.pending.Len() > 0 && !c.stopped {
		if !force && c.soundnessShareExceeded() {
			return
		}
		p := heap.Pop(&c.pending).(pendingSearch)
		c.searchWitness(p.ns, p.node, p.group, true)
	}
}

// soundnessShareExceeded reports whether witness searching has consumed its
// configured share of the elapsed wall time.
func (c *checker) soundnessShareExceeded() bool {
	share := c.opt.SoundnessShare
	if share < 0 {
		return false
	}
	if share == 0 {
		share = 0.5
	}
	spent := c.res.Stats.SoundnessTime
	if spent < 10*time.Millisecond {
		return false
	}
	return float64(spent) > share*float64(time.Since(c.begin))
}

// deliver executes message entry e's handler on node state s, unless the
// message is already in s's history.
func (c *checker) deliver(e *netstate.Entry, s *nodeState) {
	if c.opt.MaxPathDepth > 0 && s.depth >= c.opt.MaxPathDepth {
		return
	}
	evfp := e.EventFingerprint()
	if s.history.contains(evfp) {
		return
	}
	if !c.chargeTransition() {
		return
	}
	next, emitted := c.m.HandleMessage(s.node, s.state.Clone(), e.Msg)
	if next == nil {
		c.res.Stats.Rejections++
		return
	}
	ev := model.RecvEvent(e.Msg)
	c.addNext(s, ev, evfp, next, emitted, e.FP)
}

// runActions executes the internal actions enabled at s, subject to the
// per-node, per-pass local-event budget of §4.2. It reports whether any
// handler ran.
func (c *checker) runActions(s *nodeState) bool {
	acts := c.m.Actions(s.node, s.state)
	if len(acts) == 0 {
		return false
	}
	ran := false
	for _, a := range acts {
		if c.stopped {
			break
		}
		if c.localExecuted[s.node] >= c.localBound {
			s.suppressed = true
			c.passSuppressed = true
			break
		}
		if !c.chargeTransition() {
			break
		}
		c.localExecuted[s.node]++
		next, emitted := c.m.HandleAction(s.node, s.state.Clone(), a)
		ran = true
		if next == nil {
			c.res.Stats.Rejections++
			continue
		}
		ev := model.ActEvent(a)
		c.addNext(s, ev, 0, next, emitted, 0)
	}
	return ran
}

// addNext is Procedure addNextState of Figure 9: add the generated messages
// to I+, add the successor to LSn if new, and record the predecessor edge.
// historyFP is the delivery-event fingerprint for network events (zero for
// internal events); msgFP is the consumed message's content fingerprint.
func (c *checker) addNext(prev *nodeState, ev model.Event, historyFP codec.Fingerprint,
	next model.State, emitted []model.Message, msgFP codec.Fingerprint) {

	generated := make([]codec.Fingerprint, len(emitted))
	for i, m := range emitted {
		generated[i] = model.MessageFingerprint(m)
	}
	added := c.net.AddAll(emitted)
	c.res.Stats.DuplicatesDropped += len(emitted) - len(added)

	fp := model.StateFingerprint(next)
	sp := c.spaces[prev.node]
	edge := pred{
		prev:      prev,
		kind:      ev.Kind,
		event:     ev,
		eventFP:   ev.Fingerprint(),
		msgFP:     msgFP,
		generated: generated,
	}

	if existing := sp.lookup(fp); existing != nil {
		// The state exists: only a predecessor pointer is added (the paper
		// keeps all immediate predecessors). The history rule (i) of §4.2
		// is deliberately not applied to existing states, matching the
		// paper's simplification.
		c.addPred(existing, edge)
		return
	}

	ns := &nodeState{
		node:    prev.node,
		state:   next,
		fp:      fp,
		depth:   prev.depth + 1,
		history: prev.history,
		preds:   []pred{edge},
	}
	if ev.Kind == model.NetworkEvent {
		ns.history = &historyNode{parent: prev.history, fp: historyFP}
	}
	ns.gen = prev.gen
	if len(generated) > 0 {
		ns.gen = &genNode{parent: prev.gen, fps: generated}
	}
	c.project(ns)
	sp.add(ns)
	if c.keyer != nil {
		sp.classify(ns, c.keyer)
	}
	c.res.Stats.NodeStates++
	if ns.depth > c.res.Stats.MaxDepth {
		c.res.Stats.MaxDepth = ns.depth
	}

	c.checkLocalInvariants(ns)
	if !c.stopped {
		c.checkNewState(ns)
	}
}

// addPred appends a predecessor edge unless it duplicates an existing one
// or the cap is reached.
func (c *checker) addPred(ns *nodeState, edge pred) {
	if len(ns.preds) >= c.opt.MaxPredecessors {
		return
	}
	for _, p := range ns.preds {
		if p.prev == edge.prev && p.eventFP == edge.eventFP {
			return
		}
	}
	ns.preds = append(ns.preds, edge)
}

// project caches the LMC-OPT interest of a node state.
func (c *checker) project(ns *nodeState) {
	if c.opt.Reduction == nil {
		return
	}
	ns.interest, ns.interesting = c.opt.Reduction.Interest(ns.node, ns.state)
}

// chargeTransition accounts for one handler execution and evaluates the
// global stop criteria. It returns false when the execution must not
// proceed.
func (c *checker) chargeTransition() bool {
	if c.stopped {
		return false
	}
	if c.opt.MaxTransitions > 0 && c.res.Stats.Transitions >= c.opt.MaxTransitions {
		c.stopped = true
		return false
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		c.stopped = true
		return false
	}
	c.res.Stats.Transitions++
	return true
}

// checkLocalInvariants evaluates node-local invariants directly on a newly
// visited node state, with no Cartesian combination (§4: RandTree's
// disjoint children/siblings). A violation still goes through soundness
// verification — the node state must be reachable in a real run, and the
// messages its path consumed must be generated by some completion of the
// other nodes — via the same lazy witness search system violations use.
func (c *checker) checkLocalInvariants(ns *nodeState) {
	for _, li := range c.opt.LocalInvariants {
		msg := li.CheckNode(ns.node, ns.state)
		if msg == "" {
			continue
		}
		c.res.Stats.PreliminaryViolations++
		v := &spec.Violation{
			Invariant: li.Name(),
			Detail:    "node " + ns.node.String() + ": " + msg,
		}
		c.confirmLocalViolation(ns, v)
		if c.stopped {
			return
		}
	}
}

// recordRound samples the per-round progress series. The depth coordinate
// is the maximum total system-state depth reachable from the states visited
// so far (the sum over nodes of the deepest visited path), which is the
// depth axis the paper plots for LMC (§5.1: LMC explores sequences up to
// 25 in the 22-event space).
func (c *checker) recordRound() {
	if c.res.Series == nil {
		return
	}
	depth := 0
	for _, sp := range c.spaces {
		max := 0
		for _, ns := range sp.states {
			if ns.depth > max {
				max = ns.depth
			}
		}
		depth += max
	}
	if depth > c.res.Stats.MaxDepth {
		c.res.Stats.MaxDepth = depth
	}
	c.res.Series.Record(stats.Sample{
		Depth:        depth,
		Elapsed:      time.Since(c.begin),
		Transitions:  c.res.Stats.Transitions,
		NodeStates:   c.res.Stats.NodeStates,
		SystemStates: c.res.Stats.SystemStates,
		HeapBytes:    c.probe.Sample(),
	})
}
