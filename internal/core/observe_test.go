package core

import (
	"context"
	"testing"
	"time"

	"lmc/internal/model"
	"lmc/internal/obs"
	"lmc/internal/protocols/paxos"
	"lmc/internal/protocols/randtree"
	"lmc/internal/protocols/twophase"
	"lmc/internal/spec"
)

// TestValidate covers the error-returning option check CheckContext runs.
func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		opt     Options
		wantErr bool
	}{
		{"no invariant at all", Options{}, true},
		{"system invariant", Options{Invariant: paxos.Agreement()}, false},
		{"local invariants only", Options{LocalInvariants: []spec.LocalInvariant{randtree.Structure()}}, false},
		{"pure exploration", Options{DisableSystemStates: true}, false},
		{"soundness share above 1", Options{Invariant: paxos.Agreement(), SoundnessShare: 1.5}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opt.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

// TestCheckContextValidates: an invalid configuration surfaces as a returned
// error, never a run.
func TestCheckContextValidates(t *testing.T) {
	m, start := paxosSpace()
	res, err := CheckContext(context.Background(), m, start, Options{})
	if err == nil {
		t.Fatal("CheckContext accepted options without any invariant")
	}
	if res != nil {
		t.Fatal("CheckContext returned a result alongside the error")
	}
}

// TestStopReasons: every way a run can end is named correctly.
func TestStopReasons(t *testing.T) {
	m, start := paxosSpace()

	full := Check(m, start, Options{Invariant: paxos.Agreement(), SoundnessShare: -1})
	if !full.Complete || full.StopReason != StopFixpoint {
		t.Fatalf("fixpoint run: complete=%v reason=%v", full.Complete, full.StopReason)
	}

	capped := Check(m, start, Options{Invariant: paxos.Agreement(), MaxTransitions: 100})
	if capped.Complete || capped.StopReason != StopTransitions {
		t.Fatalf("capped run: complete=%v reason=%v", capped.Complete, capped.StopReason)
	}

	bugged := Check(twophase.New(4, twophase.MajorityBug, 2), model.InitialSystem(twophase.New(4, twophase.MajorityBug, 2)),
		Options{Invariant: twophase.Atomicity(), SoundnessShare: -1, StopAtFirstBug: true})
	if len(bugged.Bugs) == 0 {
		t.Fatal("majority-bug space produced no bug")
	}
	if bugged.StopReason != StopFirstBug {
		t.Fatalf("first-bug run: reason=%v", bugged.StopReason)
	}

	two := paxos.New(3, paxos.NoBug, paxos.EachOnce{Nodes: []model.NodeID{0, 1}, Index: 0})
	budgeted := Check(two, model.InitialSystem(two), Options{
		Invariant: paxos.Agreement(),
		Budget:    50 * time.Millisecond,
	})
	if budgeted.Complete {
		t.Skip("two-proposal space finished inside the budget")
	}
	if budgeted.StopReason != StopBudget {
		t.Fatalf("budgeted run: reason=%v", budgeted.StopReason)
	}
}

// TestCancelledContext: a pre-cancelled context stops the run at the first
// round barrier with the partial result intact.
func TestCancelledContext(t *testing.T) {
	m, start := paxosSpace()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := CheckContext(ctx, m, start, Options{Invariant: paxos.Agreement(), SoundnessShare: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("cancelled run claims completeness")
	}
	if res.StopReason != StopCancelled {
		t.Fatalf("reason=%v, want StopCancelled", res.StopReason)
	}
}

// cancelAtRound builds an observer hook that cancels the run's context when
// round `round` of pass 1 finishes.
func cancelAtRound(cancel context.CancelFunc, round int) obs.Observer {
	return obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindRoundEnd && e.Pass == 1 && e.Round == round {
			cancel()
		}
	})
}

// TestCancelDeterminism: cancellation is polled at round barriers, after
// the observer flush, so a hook cancelling at a fixed round cuts the run
// off at the same point for every worker count — identical partial stats
// and bugs.
func TestCancelDeterminism(t *testing.T) {
	cases := []struct {
		name string
		m    model.Machine
		opt  Options
	}{
		{
			name: "paxos-gen",
			m:    paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7}),
			opt:  Options{Invariant: paxos.Agreement(), SoundnessShare: -1},
		},
		{
			name: "twophase-majority",
			m:    twophase.New(4, twophase.MajorityBug, 2),
			opt:  Options{Invariant: twophase.Atomicity(), SoundnessShare: -1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			start := model.InitialSystem(tc.m)
			run := func(workers, round int) *Result {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				o := tc.opt
				o.Workers = workers
				o.Observer = cancelAtRound(cancel, round)
				o.HeartbeatEvery = -1
				res, err := CheckContext(ctx, tc.m, start, o)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			for _, round := range []int{1, 2, 3} {
				base := run(1, round)
				if base.Complete {
					// The space ran out before the cancel round; still a
					// valid parity point but no cancellation to compare.
					continue
				}
				if base.StopReason != StopCancelled {
					t.Fatalf("round=%d: reason=%v, want StopCancelled", round, base.StopReason)
				}
				for _, w := range []int{4, 8} {
					got := run(w, round)
					if got.StopReason != StopCancelled {
						t.Fatalf("round=%d workers=%d: reason=%v", round, w, got.StopReason)
					}
					assertSameResult(t, w, base, got)
				}
			}
		})
	}
}

// TestWorkersParityWithObserver: an attached observer must not perturb the
// parallel engine — results stay bit-for-bit identical to the sequential
// nil-observer run, and the flushed event stream itself is identical for
// every worker count (heartbeats disabled; they are wall-clock gated).
func TestWorkersParityWithObserver(t *testing.T) {
	m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	start := model.InitialSystem(m)
	base := Check(m, start, Options{Invariant: paxos.Agreement(), SoundnessShare: -1, Workers: -1})

	type runOut struct {
		res    *Result
		events []obs.Event
	}
	run := func(workers int) runOut {
		rec := &obs.Recorder{}
		res := Check(m, start, Options{
			Invariant:      paxos.Agreement(),
			SoundnessShare: -1,
			Workers:        workers,
			Observer:       rec,
			HeartbeatEvery: -1,
		})
		return runOut{res: res, events: rec.Events()}
	}

	seq := run(1)
	assertSameResult(t, 1, base, seq.res)
	if len(seq.events) == 0 {
		t.Fatal("no events recorded")
	}
	for _, w := range []int{4, 8} {
		got := run(w)
		assertSameResult(t, w, base, got.res)
		if len(got.events) != len(seq.events) {
			t.Fatalf("workers=%d event count diverged: %d vs %d",
				w, len(got.events), len(seq.events))
		}
		for i := range seq.events {
			a, b := seq.events[i], got.events[i]
			// Elapsed and phase times are wall clock; everything else must
			// match exactly.
			if a.Kind != b.Kind || a.Pass != b.Pass || a.Round != b.Round ||
				a.Depth != b.Depth || a.Count != b.Count || a.Sequences != b.Sequences ||
				a.Invariant != b.Invariant || a.Detail != b.Detail || a.Reason != b.Reason {
				t.Fatalf("workers=%d event %d diverged:\nseq: %+v\ngot: %+v", w, i, a, b)
			}
		}
	}
}

// TestObserverSeesViolations: each confirmed bug is emitted exactly once.
func TestObserverSeesViolations(t *testing.T) {
	m := twophase.New(4, twophase.MajorityBug, 2)
	rec := &obs.Recorder{}
	res := Check(m, model.InitialSystem(m), Options{
		Invariant:      twophase.Atomicity(),
		SoundnessShare: -1,
		Observer:       rec,
		HeartbeatEvery: -1,
	})
	if got := rec.Count(obs.KindViolation); got != len(res.Bugs) {
		t.Fatalf("%d violation events for %d bugs", got, len(res.Bugs))
	}
	if rec.Count(obs.KindRunStart) != 1 || rec.Count(obs.KindRunEnd) != 1 {
		t.Fatalf("run start/end not emitted exactly once: %d/%d",
			rec.Count(obs.KindRunStart), rec.Count(obs.KindRunEnd))
	}
}
