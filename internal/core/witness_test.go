package core

import (
	"testing"
	"time"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/protocols/paxos"
)

// buildBugRun replays the §5.5 violating scenario on top of the live state
// and returns the per-node final states plus the schedule.
func buildBugRun(t *testing.T, m model.Machine, live model.SystemState) (model.SystemState, []model.Event) {
	t.Helper()
	sys := live.Clone()
	var sched []model.Event
	apply := func(ev model.Event) []model.Message {
		next, out := ev.Apply(m, sys[ev.Node])
		if next == nil {
			t.Fatalf("bug-run construction: handler rejected %s", ev)
		}
		sys[ev.Node] = next
		sched = append(sched, ev)
		return out
	}
	// N2 proposes value 2 for index 0.
	prepares := apply(model.ActEvent(paxos.Propose{On: 1, Index: 0, Value: 2}))
	if len(prepares) != 3 {
		t.Fatalf("want 3 prepares, got %d", len(prepares))
	}
	// N2 handles its own Prepare; N3 handles its Prepare. (Prepare to N1 lost.)
	var prN2, prN3 model.Message
	for _, p := range prepares {
		switch p.Dst() {
		case 1:
			out := apply(model.RecvEvent(p))
			prN2 = out[0]
		case 2:
			out := apply(model.RecvEvent(p))
			prN3 = out[0]
		}
	}
	// N2 receives its own response first, then N3's (echo v2) — the
	// majority-completing message, triggering the bug.
	apply(model.RecvEvent(prN2))
	accepts := apply(model.RecvEvent(prN3))
	if len(accepts) != 3 {
		t.Fatalf("want 3 accepts, got %d (bug not triggered?)", len(accepts))
	}
	// N2 and N3 accept; each broadcasts Learn.
	var learns []model.Message
	for _, a := range accepts {
		if a.Dst() == 0 {
			continue
		}
		learns = append(learns, apply(model.RecvEvent(a))...)
	}
	// N3 receives the Learns addressed to it.
	for _, l := range learns {
		if l.Dst() == 2 {
			apply(model.RecvEvent(l))
		}
	}
	st := sys[2].(*paxos.State)
	if v, ok := st.HasChosen(0); !ok || v != 2 {
		t.Fatalf("N3 did not choose 2: %s", st.String())
	}
	return sys, sched
}

func TestProbeWitnessDirect(t *testing.T) {
	m := paxos.New(3, paxos.LastResponseBug, paxos.ActiveIndex{MaxPerNode: 1})
	live := PaperLiveState(t, m)
	finals, _ := buildBugRun(t, m, live)

	c := &checker{
		m: m,
		opt: Options{
			Invariant:            paxos.Agreement(),
			MaxPathDepth:         8,
			DisableSystemStates:  true,
			MaxPathsPerNode:      DefaultMaxPathsPerNode,
			MaxSequencesPerCheck: DefaultMaxSequencesPerCheck,
			MaxPredecessors:      DefaultMaxPredecessors,
			MaxTransitions:       20000,
		},
		start:     live.Clone(),
		res:       &Result{},
		verdicts:  map[codec.Fingerprint]bool{},
		reported:  map[codec.Fingerprint]bool{},
		witnessed: map[witnessKey]struct{}{},
	}
	c.localBound = 1
	c.begin = time.Now()
	c.pass()
	t.Logf("spaces: %d/%d/%d transitions=%d", len(c.spaces[0].states),
		len(c.spaces[1].states), len(c.spaces[2].states), c.res.Stats.Transitions)

	combo := make([]*nodeState, 3)
	for n := 0; n < 3; n++ {
		fp := model.StateFingerprint(finals[n])
		combo[n] = c.spaces[n].lookup(fp)
		if combo[n] == nil {
			t.Fatalf("node %d final state not in explored space (fp=%v): %s",
				n, fp, finals[n].String())
		}
		t.Logf("node %d member found at depth %d seq %d", n, combo[n].depth, combo[n].seq)
	}

	budget := 1 << 20
	var tally soundTally
	ok, sched := c.witnessSequences(combo, 0, 2, &budget, &tally)
	t.Logf("witnessSequences: ok=%v budgetUsed=%d", ok, 1<<20-budget)
	if !ok {
		for n, ns := range combo {
			t.Logf("node %d creation path:", n)
			for _, e := range creationPath(ns) {
				t.Logf("   %s gen=%d", e.event.String(), len(e.generated))
			}
		}
		t.Fatal("known-valid combo rejected")
	}
	t.Logf("schedule:\n%v", sched)
}
