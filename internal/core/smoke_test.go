package core

import (
	"testing"

	"lmc/internal/mc/global"
	"lmc/internal/model"
	"lmc/internal/protocols/tree"
)

// TestTreePrimer reproduces the §2 primer: on the 5-node tree the global
// checker explores many global states while the local checker visits only a
// handful of node states; the "----r" combination (target received, root
// never sent) is a preliminary violation that soundness verification must
// reject, so no bug is reported by either checker.
func TestTreePrimer(t *testing.T) {
	m := tree.NewPaperTree()
	inv := m.CausalityInvariant()
	start := model.InitialSystem(m)

	g := global.Check(m, start, global.Options{Invariant: inv})
	if !g.Complete {
		t.Fatalf("global search did not complete: %+v", g.Stats)
	}
	if len(g.Bugs) != 0 {
		t.Fatalf("global checker reported a bug in a correct protocol: %v", g.Bugs[0].Violation)
	}
	t.Logf("global: %s", g.Stats.String())

	l := Check(m, start, Options{Invariant: inv})
	if !l.Complete {
		t.Fatalf("local search did not complete: %+v", l.Stats)
	}
	if len(l.Bugs) != 0 {
		t.Fatalf("local checker reported a bug in a correct protocol: %v", l.Bugs[0].Violation)
	}
	t.Logf("local: %s", l.Stats.String())

	if l.Stats.PreliminaryViolations == 0 {
		t.Errorf("expected the invalid ----r combination to trigger a preliminary violation")
	}
	if l.Stats.SoundnessCalls == 0 {
		t.Errorf("expected at least one soundness-verification call")
	}
	if l.Stats.NodeStates >= g.Stats.GlobalStates {
		t.Errorf("local node states (%d) should be fewer than global states (%d)",
			l.Stats.NodeStates, g.Stats.GlobalStates)
	}
	if l.Stats.Transitions >= g.Stats.Transitions {
		t.Errorf("local transitions (%d) should be fewer than global transitions (%d)",
			l.Stats.Transitions, g.Stats.Transitions)
	}
}
