package core

import (
	"testing"
	"time"

	"lmc/internal/protocols/onepaxos"
	"lmc/internal/trace"
)

// TestOnePaxosBugFound reproduces §5.6: starting from the live state where
// N3 leads with acceptor N2 and all nodes but N1 chose value 3, the buggy
// variant lets N1 — still believing it is both leader and (due to the ++
// initialization bug) acceptor — decide value 1 alone.
func TestOnePaxosBugFound(t *testing.T) {
	m := onepaxos.New(3, onepaxos.PlusPlusBug, onepaxos.Driver{})
	live, err := onepaxos.PaperLiveState(m)
	if err != nil {
		t.Fatal(err)
	}

	res := Check(m, live, Options{
		Invariant:      onepaxos.Agreement(),
		Reduction:      onepaxos.Reduction{},
		StopAtFirstBug: true,
		Budget:         60 * time.Second,
	})
	if len(res.Bugs) == 0 {
		t.Fatalf("LMC did not find the ++ bug: %s", res.Stats.String())
	}
	bug := res.Bugs[0]
	t.Logf("bug: %v", bug.Violation)
	t.Logf("schedule:\n%s", bug.Schedule)
	t.Logf("stats: %s", res.Stats.String())

	rr := trace.Replay(m, live, bug.Schedule)
	if rr.Err != nil {
		t.Fatalf("witness schedule does not replay: %v", rr.Err)
	}
	if v := onepaxos.Agreement().Check(rr.Final); v == nil {
		t.Fatalf("replayed final state does not violate agreement")
	}

	// The correct variant must be clean from its own live state.
	correct := onepaxos.New(3, onepaxos.NoBug, onepaxos.Driver{})
	cleanLive, err := onepaxos.PaperLiveState(correct)
	if err != nil {
		t.Fatal(err)
	}
	clean := Check(correct, cleanLive, Options{
		Invariant: onepaxos.Agreement(),
		Reduction: onepaxos.Reduction{},
		Budget:    10 * time.Second,
	})
	if len(clean.Bugs) != 0 {
		t.Fatalf("correct 1Paxos reported a bug: %v\n%s",
			clean.Bugs[0].Violation, clean.Bugs[0].Schedule)
	}
}
