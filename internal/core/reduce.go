package core

import (
	"fmt"
	"strings"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/trace"
)

// Reductions selects the optional state-space reductions of the fingerprint
// layer. Both default off; a reduced run must find every violation the
// unreduced run finds (the diffcheck corpus gates this end to end), it just
// spends fewer system-state materializations and sequence validations doing
// so.
type Reductions struct {
	// Symmetry enables role-symmetry reduction: when the machine declares
	// interchangeable node classes (model.Symmetric), the checker skips
	// system-state combinations that are non-canonical permutations of an
	// already-covered arrangement (GEN), and witness walks skip combinations
	// whose canonical twin was already invariant-clean (OPT). Machines
	// without the capability run unreduced.
	Symmetry bool
	// PartialOrder enables partial-order reduction inside soundness
	// verification: per-node paths with identical message flow are
	// deduplicated, and combination members whose generated messages feed no
	// other member are factored out of the interleaving odometer and
	// validated independently (delivery interleavings of provably commuting
	// messages are never enumerated).
	PartialOrder bool
}

// Any reports whether at least one reduction is enabled.
func (r Reductions) Any() bool { return r.Symmetry || r.PartialOrder }

// String renders the enabled reductions in the -reduce flag syntax.
func (r Reductions) String() string {
	switch {
	case r.Symmetry && r.PartialOrder:
		return "sym,por"
	case r.Symmetry:
		return "sym"
	case r.PartialOrder:
		return "por"
	default:
		return "none"
	}
}

// ParseReductions parses a -reduce flag value: a comma-separated subset of
// "sym" and "por" ("all" enables both; "", "none" and "off" disable both).
func ParseReductions(s string) (Reductions, error) {
	var r Reductions
	s = strings.TrimSpace(s)
	if s == "" || s == "none" || s == "off" {
		return r, nil
	}
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "sym", "symmetry":
			r.Symmetry = true
		case "por", "partial-order":
			r.PartialOrder = true
		case "all":
			r.Symmetry, r.PartialOrder = true, true
		case "":
		default:
			return Reductions{}, fmt.Errorf("core: unknown reduction %q (want sym, por, all, or none)", part)
		}
	}
	return r, nil
}

// buildCanonicalizer resolves a machine's symmetry declaration into a
// codec.Canonicalizer. A malformed declaration (out-of-range, duplicated or
// overlapping indexes) and a declaration with no non-trivial class both
// yield nil — the run proceeds unreduced, which is always sound.
func buildCanonicalizer(numNodes int, decl [][]model.NodeID) *codec.Canonicalizer {
	classes := make([][]int, 0, len(decl))
	for _, cl := range decl {
		ints := make([]int, len(cl))
		for i, n := range cl {
			ints[i] = int(n)
		}
		classes = append(classes, ints)
	}
	canon, err := codec.NewCanonicalizer(numNodes, classes)
	if err != nil || canon.NumClasses() == 0 {
		return nil
	}
	return canon
}

// symSkip is the GEN-side symmetry predicate, evaluated at every leaf of the
// forEachCombo enumeration (scratch is a per-chunk buffer of len(combo)
// fingerprints). A combination is skipped iff
//
//  1. it is a non-canonical arrangement of its orbit (some class segment out
//     of order), and
//  2. its canonical representative is realizable right now — every slot of
//     the representative arrangement resolves to a visited state of that
//     node — and
//  3. when MaxSystemDepth caps materialization, the representative passes
//     the same depth filter the skipped arrangement already passed.
//
// Soundness: the representative, being canonical, is never skipped, and the
// enumeration scheme visits every combination of visited states exactly once
// (at the discovery of its last member), so a representative whose members
// all exist has been or will be enumerated. If the representative is
// invariant-clean, the skipped arrangement is clean too (model.Symmetric
// demands slot-symmetric invariants); if it violates, the recorded orbit is
// re-expanded by sweepOrbits at the exploration fixpoint and the skipped
// arrangement gets its own invariant check and soundness verification there.
// The predicate reads only immutable per-leaf state (spaces are frozen while
// forEachCombo runs on the merge goroutine), so chunk workers evaluate it
// concurrently and every chunking produces the same skips.
func (c *checker) symSkip(combo []*nodeState, scratch []codec.Fingerprint) bool {
	for i, ns := range combo {
		scratch[i] = ns.fp
	}
	if c.canon.IsCanonical(scratch) {
		return false
	}
	c.canon.Canonicalize(scratch)
	repDepth := 0
	for i, fp := range scratch {
		if fp == combo[i].fp {
			repDepth += combo[i].depth
			continue
		}
		rep := c.spaces[i].byFP[fp]
		if rep == nil {
			return false
		}
		repDepth += rep.depth
	}
	return c.opt.MaxSystemDepth <= 0 || repDepth <= c.opt.MaxSystemDepth
}

// orbitRec is one violating system-state arrangement recorded for the
// fixpoint orbit sweep. The fingerprints (not the nodeState pointers) are
// stored: the sweep re-resolves members against the final spaces.
type orbitRec struct {
	fps []codec.Fingerprint
}

// recordOrbit notes a preliminarily violating combination so sweepOrbits can
// check its permuted siblings at the fixpoint. Orbits are deduplicated by
// canonical fingerprint; orbits whose class segments hold equal fingerprints
// have no sibling arrangements and are dropped.
func (c *checker) recordOrbit(combo []*nodeState) {
	if c.canon == nil {
		return
	}
	fps := make([]codec.Fingerprint, len(combo))
	for i, ns := range combo {
		fps[i] = ns.fp
	}
	cfp := c.canon.Canonical(fps)
	if _, dup := c.orbitSeen[cfp]; dup {
		return
	}
	c.orbitSeen[cfp] = struct{}{}
	if !c.orbitNontrivial(fps) {
		return
	}
	c.orbits = append(c.orbits, orbitRec{fps: fps})
}

// orbitNontrivial reports whether some class holds at least two distinct
// member fingerprints, i.e. the orbit has more than one arrangement.
func (c *checker) orbitNontrivial(fps []codec.Fingerprint) bool {
	for _, cl := range c.canon.Classes() {
		for i := 1; i < len(cl); i++ {
			if fps[cl[i]] != fps[cl[0]] {
				return true
			}
		}
	}
	return false
}

// sweepOrbits runs at the exploration fixpoint: every arrangement of every
// recorded violating orbit that resolves against the final visited spaces is
// invariant-checked and, on violation, confirmed through the same batch
// machinery the enumeration uses. This is the completion half of the
// symmetry skip — arrangements skipped during enumeration because their
// (violating) representative was covered get their individual soundness
// verdicts here, so a reduced run reports every arrangement-specific bug the
// unreduced run reports.
func (c *checker) sweepOrbits() {
	if c.canon == nil || len(c.orbits) == 0 || c.stopped {
		return
	}
	if c.opt.Invariant == nil || c.opt.DisableSystemStates {
		return
	}
	n := len(c.spaces)
	arr := make([]codec.Fingerprint, n)
	combo := make([]*nodeState, n)
	ss := make(model.SystemState, n)
	seen := make(map[codec.Fingerprint]bool)
	var prelims []prelim
	idx := 0
	c.underPhase("sysstate", func() {
		for _, od := range c.orbits {
			if c.stopped {
				return
			}
			c.forEachArrangement(od.fps, arr, func() {
				// The recorded arrangement itself was checked when it was
				// enumerated.
				same := true
				for i := range arr {
					if arr[i] != od.fps[i] {
						same = false
						break
					}
				}
				if same {
					return
				}
				fp := codec.Combine(arr...)
				if seen[fp] {
					return
				}
				seen[fp] = true
				depth := 0
				for i := range arr {
					ns := c.spaces[i].byFP[arr[i]]
					if ns == nil {
						// Arrangement not realizable: some member fingerprint
						// was never visited by that node. The unreduced run
						// never materializes it either.
						return
					}
					combo[i] = ns
					depth += ns.depth
				}
				if c.opt.MaxSystemDepth > 0 && depth > c.opt.MaxSystemDepth {
					return
				}
				for i, ns := range combo {
					ss[i] = ns.state
				}
				c.res.Stats.SystemStates++
				c.res.Stats.InvariantChecks++
				c.res.Stats.OrbitChecks++
				if depth > c.res.Stats.MaxDepth {
					c.res.Stats.MaxDepth = depth
				}
				v := c.opt.Invariant.Check(ss)
				if v == nil {
					return
				}
				cp := make([]*nodeState, n)
				copy(cp, combo)
				// Repoint a violation retaining the scratch system state at a
				// stable copy, as the enumeration leaves do.
				sys := make(model.SystemState, n)
				copy(sys, ss)
				if len(v.System) == len(ss) && len(ss) > 0 && &v.System[0] == &ss[0] {
					v.System = sys
				}
				prelims = append(prelims, prelim{idx: idx, combo: cp, v: v})
				idx++
			})
		}
	})
	if len(prelims) == 0 {
		return
	}
	c.res.Stats.PreliminaryViolations += len(prelims)
	c.underPhase("soundness", func() { c.confirmBatch(prelims) })
}

// forEachArrangement enumerates every arrangement of the orbit of base:
// the product, over all classes, of the permutations of the class's member
// values (fixed slots keep their value). arr is the scratch the callback
// reads; it holds base outside class slots. Enumeration order is
// deterministic (swap-based permutation generation in class order).
func (c *checker) forEachArrangement(base []codec.Fingerprint, arr []codec.Fingerprint, fn func()) {
	copy(arr, base)
	classes := c.canon.Classes()
	var rec func(ci int)
	rec = func(ci int) {
		if ci == len(classes) {
			fn()
			return
		}
		permuteAt(arr, classes[ci], 0, func() { rec(ci + 1) })
	}
	rec(0)
}

// permuteAt enumerates, in place, all permutations of the values at the slot
// positions cl[k:] of buf, invoking fn for each; buf is restored before
// returning. Equal values produce duplicate arrangements — the caller
// deduplicates by fingerprint.
func permuteAt(buf []codec.Fingerprint, cl []int, k int, fn func()) {
	if k == len(cl) {
		fn()
		return
	}
	for i := k; i < len(cl); i++ {
		buf[cl[k]], buf[cl[i]] = buf[cl[i]], buf[cl[k]]
		permuteAt(buf, cl, k+1, fn)
		buf[cl[k]], buf[cl[i]] = buf[cl[i]], buf[cl[k]]
	}
}

// soundTally accumulates the per-search counters of one soundness search so
// speculative parallel confirmations can merge them at the canonical point
// (confirmBatch's sequential merge), exactly like the sequence counter they
// generalize.
type soundTally struct {
	// seqs counts sequence combinations examined (stats.SequencesChecked).
	seqs int
	// porPathsDropped counts per-node paths dropped by the flow-signature
	// dedupe (stats.PORPathsDeduped).
	porPathsDropped int
	// porDetached counts combination members validated outside the
	// interleaving odometer (stats.PORDetached).
	porDetached int
}

// addTally merges a sequentially produced tally into the run stats.
func (c *checker) addTally(t *soundTally) {
	c.res.Stats.SequencesChecked += t.seqs
	c.res.Stats.PORPathsDeduped += t.porPathsDropped
	c.res.Stats.PORDetached += t.porDetached
}

// flowSignature fingerprints what a path means to isSequenceValid: the
// ordered sequence of (event kind, consumed message fingerprint, generated
// multiset). The validator's verdict — and, because predecessor edges encode
// real handler executions ending at the same node state, the replayed final
// state — is a pure function of this signature, so paths sharing it are
// interchangeable.
func flowSignature(p []pred) codec.Fingerprint {
	h := codec.NewHasher()
	for i := range p {
		e := &p[i]
		h.Add(codec.Fingerprint(e.kind))
		h.Add(e.msgFP)
		h.Add(codec.CombineUnordered(e.generated))
	}
	return h.Sum()
}

// dedupFlowPaths drops paths whose flow signature duplicates an earlier
// path's, keeping the first occurrence (enumeration order is deterministic,
// and the kept path is a real predecessor-DAG path, so returned schedules
// still replay). This is the first half of the partial-order reduction: two
// paths that consume and generate the same messages in the same order are
// the same interleaving constraint, and the odometer must not pay for both.
func dedupFlowPaths(paths [][]pred, dropped *int) [][]pred {
	if len(paths) < 2 {
		return paths
	}
	seen := make(map[codec.Fingerprint]struct{}, len(paths))
	out := paths[:0]
	for _, p := range paths {
		sig := flowSignature(p)
		if _, dup := seen[sig]; dup {
			*dropped++
			continue
		}
		seen[sig] = struct{}{}
		out = append(out, p)
	}
	return out
}

// porPartition splits the combination members into the odometer core and the
// detachable members. Member k is detachable when no path of any other
// member consumes a message any path of k generates. Consumed sets are
// pairwise disjoint by construction — a node only consumes messages
// addressed to it (netstate.Independent's receiver disjointness) — so the
// generated/consumed test is the whole commutation condition: a detachable
// member's events commute past every other member's, and its delivery
// interleavings need never be enumerated against them.
func porPartition(paths [][][]pred) (core, det []int) {
	n := len(paths)
	consumed := make([]map[codec.Fingerprint]struct{}, n)
	generated := make([]map[codec.Fingerprint]struct{}, n)
	for k := range paths {
		cons := make(map[codec.Fingerprint]struct{})
		gen := make(map[codec.Fingerprint]struct{})
		for _, p := range paths[k] {
			for i := range p {
				e := &p[i]
				if e.kind == model.NetworkEvent {
					cons[e.msgFP] = struct{}{}
				}
				for _, g := range e.generated {
					gen[g] = struct{}{}
				}
			}
		}
		consumed[k] = cons
		generated[k] = gen
	}
	for k := range paths {
		detachable := true
		for j := range paths {
			if j == k {
				continue
			}
			for g := range generated[k] {
				if _, need := consumed[j][g]; need {
					detachable = false
					break
				}
			}
			if !detachable {
				break
			}
		}
		if detachable {
			det = append(det, k)
		} else {
			core = append(core, k)
		}
	}
	return core, det
}

// searchSequences searches the per-member path-choice space for a valid
// total order, with the partial-order reduction applied when enabled. It is
// the shared back half of isStateSoundBudget and witnessSequences.
func (c *checker) searchSequences(paths [][][]pred, budget *int, tally *soundTally) (bool, trace.Schedule) {
	if c.opt.Reduce.PartialOrder {
		for k := range paths {
			paths[k] = dedupFlowPaths(paths[k], &tally.porPathsDropped)
		}
		return c.porSearch(paths, budget, tally)
	}
	return c.odometerSearch(paths, budget, tally)
}

// odometerSearch is the unreduced search: the full Cartesian product of the
// per-member path choices, each combination handed to the greedy validator,
// capped by the sequence budget (the exponential cost §5.2 identifies).
func (c *checker) odometerSearch(paths [][][]pred, budget *int, tally *soundTally) (bool, trace.Schedule) {
	idx := make([]int, len(paths))
	cand := make([][]pred, len(paths))
	for {
		for k := range paths {
			cand[k] = paths[k][idx[k]]
		}
		*budget--
		tally.seqs++
		if ok, sched := c.isSequenceValid(cand); ok {
			return true, sched
		}
		if *budget <= 0 {
			return false, nil
		}
		k := 0
		for ; k < len(idx); k++ {
			idx[k]++
			if idx[k] < len(paths[k]) {
				break
			}
			idx[k] = 0
		}
		if k == len(idx) {
			return false, nil
		}
	}
}

// porSearch is the reduced search: the odometer ranges over the core members
// only, and each valid core interleaving is extended by appending, for every
// detachable member, the first of its paths that validates against the
// core's final message pool.
//
// This is exact, both directions. Completeness: in any valid full
// interleaving, core events never consume detached-generated messages (the
// detachability condition), so the core projection is itself valid and the
// core odometer finds it; a detachable member's path then appends validly
// because postponing it only grows its supply (nothing it needs is consumed
// by others — receivers are disjoint — and nothing it generates is needed
// before it runs). Soundness: the assembled schedule is validated piecewise
// by the same greedy fingerprint accounting and then replay-confirmed like
// any other witness.
//
// Budget: only core combinations charge the shared sequence budget. Append
// attempts are linear in a single path and budget-exempt, which makes the
// reduced search dominate the unreduced one under any shared budget — the
// odometer reaches a given full combination no earlier (in charges) than
// porSearch reaches its core projection, so every witness the unreduced
// search can afford, the reduced search can too. They still count into the
// sequence tally as examined work.
func (c *checker) porSearch(paths [][][]pred, budget *int, tally *soundTally) (bool, trace.Schedule) {
	core, det := porPartition(paths)
	if len(det) == 0 {
		return c.odometerSearch(paths, budget, tally)
	}
	idx := make([]int, len(core))
	cand := make([][]pred, len(core))
	for {
		for i, k := range core {
			cand[i] = paths[k][idx[i]]
		}
		*budget--
		tally.seqs++
		if ok, sched, net := c.sequenceValidNet(cand); ok {
			full := sched
			good := true
			for _, k := range det {
				found := false
				for _, p := range paths[k] {
					tally.seqs++
					if ok2, sub := appendValid(net, p); ok2 {
						tally.porDetached++
						full = append(full, sub...)
						found = true
						break
					}
				}
				if !found {
					good = false
					break
				}
			}
			if good {
				return true, full
			}
		}
		if *budget <= 0 {
			return false, nil
		}
		k := 0
		for ; k < len(idx); k++ {
			idx[k]++
			if idx[k] < len(paths[core[k]]) {
				break
			}
			idx[k] = 0
		}
		if k == len(idx) {
			return false, nil
		}
	}
}

// appendValid validates one path appended after an already-validated
// schedule whose final message pool is net: every network event must find
// its message in the pool extended by the path's own earlier emissions. On
// success the pool is updated (so later detachable members see the combined
// supply — immaterial for correctness, since no two members consume the same
// fingerprints, but it keeps the accounting the exact greedy semantics of
// the concatenated schedule) and the path's events are returned in order.
// On failure net is left unchanged.
func appendValid(net map[codec.Fingerprint]int, p []pred) (bool, trace.Schedule) {
	delta := make(map[codec.Fingerprint]int)
	for i := range p {
		e := &p[i]
		if e.kind == model.NetworkEvent {
			if net[e.msgFP]+delta[e.msgFP] <= 0 {
				return false, nil
			}
			delta[e.msgFP]--
		}
		for _, g := range e.generated {
			delta[g]++
		}
	}
	for fp, d := range delta {
		net[fp] += d
	}
	sched := make(trace.Schedule, len(p))
	for i := range p {
		sched[i] = p[i].event
	}
	return true, sched
}

// symmetryActive reports whether the checker resolved a canonicalizer for
// this run (a test seam).
func (c *checker) symmetryActive() bool { return c.canon != nil }
