package core

import (
	"math/rand"
	"sort"
	"testing"

	"lmc/internal/codec"
	"lmc/internal/model"
)

// Tests for the incremental index layer (index.go): the producer index and
// flow memos are differentially checked against the definitional scans they
// replaced, over randomized synthetic predecessor graphs; the epoch-gated
// outcome cache's frontier arithmetic is unit-tested directly.

// testUniverse is a small fingerprint universe; keeping it small forces
// supply/demand collisions so the multiset arithmetic is actually exercised.
func testUniverse(n int) []codec.Fingerprint {
	u := make([]codec.Fingerprint, n)
	for i := range u {
		u[i] = codec.Fingerprint(0x1000 + i)
	}
	return u
}

// buildRandomSpace grows a synthetic visited list the way the exploration
// loop does: a start state at seq 0, then states each reached by one creation
// edge from a random earlier state, consuming at most one message and
// generating a random subset of the universe. When withFlows is set, roughly
// half the states carry a discovery-time flow memo built incrementally from
// the parent's memo (the addNext path); the rest leave flowDone unset and
// exercise the lazy creation-path fallback.
func buildRandomSpace(rng *rand.Rand, node model.NodeID, nStates int, universe []codec.Fingerprint, withFlows bool) *space {
	sp := newSpace()
	sp.add(&nodeState{node: node, fp: codec.Fingerprint(rng.Uint64())})
	scratch := make([]flowEntry, 0, len(universe)+1)
	for len(sp.states) < nStates {
		parent := sp.states[rng.Intn(len(sp.states))]
		kind := model.InternalEvent
		var consumed codec.Fingerprint
		if rng.Intn(2) == 0 {
			kind = model.NetworkEvent
			consumed = universe[rng.Intn(len(universe))]
		}
		var gen []codec.Fingerprint
		for _, fp := range universe {
			if rng.Intn(5) == 0 {
				gen = append(gen, fp)
			}
		}
		edge := pred{prev: parent, kind: kind, msgFP: consumed, generated: gen}
		ns := &nodeState{
			node:  node,
			fp:    codec.Fingerprint(rng.Uint64()),
			depth: parent.depth + 1,
			preds: []pred{edge},
			gen:   parent.gen,
		}
		if len(gen) > 0 {
			ns.gen = &genNode{parent: parent.gen, fps: gen}
		}
		if withFlows && rng.Intn(2) == 0 {
			ns.flow = mergeFlows(flowOf(parent), edgeFlow(&edge, scratch))
			ns.flowDone = true
		}
		sp.add(ns)
	}
	return sp
}

// TestProducerIndexMatchesGenScan checks the index.go lemma directly:
// producerBefore(fp, lim) must agree with scanning states[:lim] for a gen
// chain containing fp, for every fingerprint and every view limit.
func TestProducerIndexMatchesGenScan(t *testing.T) {
	universe := testUniverse(12)
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sp := buildRandomSpace(rng, 0, 40, universe, false)
		for _, fp := range universe {
			for lim := 0; lim <= len(sp.states); lim++ {
				want := false
				for _, s := range sp.states[:lim] {
					if s.gen.contains(fp) {
						want = true
						break
					}
				}
				if got := sp.producerBefore(fp, lim); got != want {
					t.Fatalf("seed %d fp %#x lim %d: producerBefore=%v genScan=%v",
						seed, fp, lim, got, want)
				}
			}
		}
	}
}

// TestProducerIndexIgnoresAddPredEdges: edges appended to an existing state
// after discovery (the addPred case) never enter gen chains, so the index
// must not see them either — indexing only the creation edge is exact.
func TestProducerIndexIgnoresAddPredEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	universe := testUniverse(8)
	sp := buildRandomSpace(rng, 0, 10, universe, false)
	ghost := codec.Fingerprint(0xdead)
	target := sp.states[5]
	target.preds = append(target.preds, pred{
		prev:      sp.states[0],
		kind:      model.InternalEvent,
		generated: []codec.Fingerprint{ghost},
	})
	if target.gen.contains(ghost) {
		t.Fatal("gen chain picked up a non-creation edge")
	}
	if sp.producerBefore(ghost, len(sp.states)) {
		t.Fatal("producer index picked up a non-creation edge")
	}
}

// TestCoveredByAnyMatchesScan checks the full coverage query — several
// completion nodes, partial views, the nil view of a deferred search —
// against the scan it replaced.
func TestCoveredByAnyMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	universe := testUniverse(10)
	c := &checker{res: &Result{}}
	for n := 0; n < 3; n++ {
		c.spaces = append(c.spaces, buildRandomSpace(rng, model.NodeID(n), 20, universe, false))
	}
	completion := []int{0, 2}
	for trial := 0; trial < 300; trial++ {
		fp := universe[rng.Intn(len(universe))]
		var view []int
		if rng.Intn(4) > 0 {
			view = make([]int, len(c.spaces))
			for n := range view {
				view[n] = rng.Intn(len(c.spaces[n].states) + 1)
			}
		}
		want := false
		for _, n := range completion {
			lim := c.viewLimit(n, view)
			for _, s := range c.spaces[n].states[:lim] {
				if s.gen.contains(fp) {
					want = true
					break
				}
			}
			if want {
				break
			}
		}
		if got := c.coveredByAny(completion, fp, view); got != want {
			t.Fatalf("trial %d fp %#x view %v: coveredByAny=%v scan=%v",
				trial, fp, view, got, want)
		}
	}
	if c.res.Stats.CoverIndexHits+c.res.Stats.CoverIndexMisses != 300 {
		t.Fatalf("coverage counters uncharged: hits=%d misses=%d",
			c.res.Stats.CoverIndexHits, c.res.Stats.CoverIndexMisses)
	}
}

func sortedFPs(fps []codec.Fingerprint) []codec.Fingerprint {
	out := append([]codec.Fingerprint(nil), fps...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestPairMissingMatchesMissingOf differentially checks the flow-memo
// missing set against missingOf, the retained reference implementation, over
// randomized creation chains and seeded initial networks. Both discovery-time
// memos and the lazy fallback feed pairMissing here (withFlows randomizes
// which), so the incremental construction is validated too.
func TestPairMissingMatchesMissingOf(t *testing.T) {
	universe := testUniverse(6)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		var net []codec.Fingerprint
		counts := make(map[codec.Fingerprint]int)
		for _, fp := range universe {
			for k := rng.Intn(3); k > 0; k-- {
				net = append(net, fp)
				counts[fp]++
			}
		}
		c := &checker{initialNet: net, initNetCount: counts, res: &Result{}}
		spA := buildRandomSpace(rng, 0, 30, universe, true)
		spB := buildRandomSpace(rng, 1, 30, universe, true)
		for trial := 0; trial < 150; trial++ {
			a := spA.states[rng.Intn(len(spA.states))]
			b := spB.states[rng.Intn(len(spB.states))]
			got := c.pairMissing(a, b)
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("seed %d trial %d: missingFromFlows output not ascending: %v",
					seed, trial, got)
			}
			want := sortedFPs(c.missingOf(a, b))
			if len(got) != len(want) {
				t.Fatalf("seed %d trial %d: pairMissing=%v missingOf=%v",
					seed, trial, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d trial %d: pairMissing=%v missingOf=%v",
						seed, trial, got, want)
				}
			}
		}
	}
}

// TestFlowOfMatchesCreationPath checks the lazy flow fallback (and any
// discovery-time memo) against a direct recount of the creation path.
func TestFlowOfMatchesCreationPath(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	universe := testUniverse(6)
	sp := buildRandomSpace(rng, 0, 30, universe, true)
	for _, ns := range sp.states {
		want := make(map[codec.Fingerprint]int)
		for _, e := range creationPath(ns) {
			if e.kind == model.NetworkEvent {
				want[e.msgFP]++
			}
			for _, g := range e.generated {
				want[g]--
			}
		}
		got := flowOf(ns)
		nonzero := 0
		for _, n := range want {
			if n != 0 {
				nonzero++
			}
		}
		if len(got) != nonzero {
			t.Fatalf("seq %d: flow has %d entries, path recount has %d nonzero",
				ns.seq, len(got), nonzero)
		}
		for i, fe := range got {
			if fe.n == 0 {
				t.Fatalf("seq %d: zero entry %#x survived", ns.seq, fe.fp)
			}
			if want[fe.fp] != fe.n {
				t.Fatalf("seq %d fp %#x: flow=%d recount=%d", ns.seq, fe.fp, fe.n, want[fe.fp])
			}
			if i > 0 && got[i-1].fp >= fe.fp {
				t.Fatalf("seq %d: flow not strictly ascending", ns.seq)
			}
		}
	}
}

func TestLimitsUnder(t *testing.T) {
	cases := []struct {
		cur, rec []int
		want     bool
	}{
		{[]int{1, 2}, []int{1, 2}, true},
		{[]int{0, 2}, []int{1, 2}, true},
		{[]int{2, 2}, []int{1, 2}, false},
		{[]int{1, 3}, []int{1, 2}, false},
		{[]int{1}, []int{1, 2}, false}, // length mismatch is never under
		{nil, nil, true},
	}
	for i, tc := range cases {
		if got := limitsUnder(tc.cur, tc.rec); got != tc.want {
			t.Errorf("case %d: limitsUnder(%v, %v)=%v want %v", i, tc.cur, tc.rec, got, tc.want)
		}
	}
}

// TestAddRefutedDominance: a new frontier drops recorded frontiers it
// dominates, and refutedUnder answers from whatever survives.
func TestAddRefutedDominance(t *testing.T) {
	oc := &pairOutcome{}
	if oc.refutedUnder([]int{0, 0}) {
		t.Fatal("empty outcome refuted something")
	}
	oc.addRefuted([]int{2, 2})
	if !oc.refutedUnder([]int{2, 2}) || !oc.refutedUnder([]int{1, 2}) {
		t.Fatal("recorded frontier does not dominate itself / a smaller one")
	}
	if oc.refutedUnder([]int{2, 3}) || oc.refutedUnder([]int{2}) {
		t.Fatal("refuted beyond the recorded frontier")
	}
	// [3,3] dominates [2,2]: the dominated frontier must be dropped.
	oc.addRefuted([]int{3, 3})
	if len(oc.refuted) != 1 || oc.refuted[0][0] != 3 || oc.refuted[0][1] != 3 {
		t.Fatalf("dominated frontier not pruned: %v", oc.refuted)
	}
	// Incomparable frontiers accumulate.
	oc.addRefuted([]int{9, 1})
	if len(oc.refuted) != 2 {
		t.Fatalf("incomparable frontier pruned: %v", oc.refuted)
	}
	if !oc.refutedUnder([]int{8, 1}) || !oc.refutedUnder([]int{3, 3}) {
		t.Fatal("lost refutation coverage after accumulation")
	}
}

// TestAddRefutedEvictsOldest: beyond maxRefutedFrontiers incomparable
// frontiers, the oldest is evicted and its coverage is genuinely lost.
func TestAddRefutedEvictsOldest(t *testing.T) {
	oc := &pairOutcome{}
	fronts := [][]int{{1, 9}, {2, 8}, {3, 7}, {4, 6}, {5, 5}} // pairwise incomparable
	for _, f := range fronts[:maxRefutedFrontiers] {
		oc.addRefuted(f)
	}
	if len(oc.refuted) != maxRefutedFrontiers {
		t.Fatalf("expected %d frontiers, got %v", maxRefutedFrontiers, oc.refuted)
	}
	if !oc.refutedUnder([]int{1, 9}) {
		t.Fatal("first frontier missing before eviction")
	}
	oc.addRefuted(fronts[4])
	if len(oc.refuted) != maxRefutedFrontiers {
		t.Fatalf("cap not enforced: %v", oc.refuted)
	}
	if oc.refutedUnder([]int{1, 9}) {
		t.Fatalf("oldest frontier not evicted: %v", oc.refuted)
	}
	if !oc.refutedUnder([]int{5, 5}) || !oc.refutedUnder([]int{2, 8}) {
		t.Fatalf("surviving frontiers lost: %v", oc.refuted)
	}
}

// TestOutcomeCacheKeysAndNilTolerance: mirror encounters share a key, swapped
// node assignments do not, and a test-built checker with no cache map is
// handled.
func TestOutcomeCacheKeysAndNilTolerance(t *testing.T) {
	a := &nodeState{node: 0, fp: 0x111}
	b := &nodeState{node: 1, fp: 0x222}
	miss := codec.Fingerprint(0x9)

	if pairKeyOf(a, b, miss) != pairKeyOf(b, a, miss) {
		t.Fatal("mirror encounter produced a different key")
	}
	// Swapping WHICH node holds which state materializes different system
	// states; the keys must not alias.
	aSwap := &nodeState{node: 0, fp: 0x222}
	bSwap := &nodeState{node: 1, fp: 0x111}
	if pairKeyOf(a, b, miss) == pairKeyOf(aSwap, bSwap, miss) {
		t.Fatal("swapped assignment aliased the original pair")
	}
	if pairKeyOf(a, b, miss) == pairKeyOf(a, b, codec.Fingerprint(0xa)) {
		t.Fatal("missing-set fingerprint not part of the key")
	}

	c := &checker{} // no pairOutcomes map, as tests build it
	key := pairKeyOf(a, b, miss)
	if c.outcomeOf(key) != nil {
		t.Fatal("outcomeOf invented an outcome")
	}
	oc := c.ensureOutcome(key)
	if oc == nil {
		t.Fatal("ensureOutcome failed on empty cache")
	}
	if c.ensureOutcome(key) != oc || c.outcomeOf(key) != oc {
		t.Fatal("outcome identity not stable")
	}
}
