package core

import (
	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/trace"
)

// isStateSound is Procedure isStateSound of Figure 9: given the node states
// of a preliminarily violating system state, enumerate the event sequences
// that could lead to each node state (by following predecessor pointers),
// and search the Cartesian product of the per-node sequences for one
// combination that admits a valid total order. The system state is valid
// iff such a combination exists; the realizing schedule is returned as the
// counterexample witness.
func (c *checker) isStateSound(combo []*nodeState) (bool, trace.Schedule) {
	budget := c.opt.MaxSequencesPerCheck
	var tally soundTally
	ok, sched := c.isStateSoundBudget(combo, &budget, &tally)
	c.addTally(&tally)
	return ok, sched
}

// isStateSoundBudget is isStateSound with an externally shared sequence
// budget, so one witness search can spread its allowance across many
// candidate combinations. Checked sequences are counted into the tally
// rather than the result stats directly, so speculative confirmations can
// run on worker goroutines and merge their counts at the canonical point.
func (c *checker) isStateSoundBudget(combo []*nodeState, budget *int, tally *soundTally) (bool, trace.Schedule) {
	paths := make([][][]pred, len(combo))
	for k, ns := range combo {
		paths[k] = c.enumeratePaths(ns)
		if len(paths[k]) == 0 {
			// No acyclic predecessor path within caps: cannot validate.
			return false, nil
		}
	}
	// The odometer over the per-node path choices — capped by the sequence
	// budget (the exponential cost §5.2 identifies) — lives in reduce.go's
	// searchSequences, which applies the partial-order reduction when
	// enabled.
	return c.searchSequences(paths, budget, tally)
}

// creationPath returns (memoized) the chain of first predecessor edges from
// the node's start state to ns — the path along which ns was discovered.
// The chain is acyclic by construction: a creation edge always points to an
// earlier-created state.
//
// Concurrency contract: the walk reads ancestors but memoizes ONLY ns
// itself (ancestors' creation/creationDone are never touched), so parallel
// precomputation stages — the witness prep fanout, speculative confirmBatch
// jobs — may call it concurrently as long as each goroutine passes distinct
// states. flowOf (index.go) follows the same contract.
func creationPath(ns *nodeState) []pred {
	if ns.creationDone {
		return ns.creation
	}
	var rev []pred
	for cur := ns; cur.seq != 0; cur = cur.preds[0].prev {
		rev = append(rev, cur.preds[0])
	}
	path := make([]pred, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	ns.creation = path
	ns.creationDone = true
	return path
}

// enumeratePaths lists event sequences (as predecessor-edge slices ordered
// start→state) that lead from the node's start state to ns. Following the
// paper's simplification, self-referencing edges are ignored and, more
// generally, a backward walk never revisits a state already on its stack;
// the enumeration is capped at max paths.
func (c *checker) enumeratePaths(ns *nodeState) [][]pred {
	return c.enumeratePathsCapped(ns, c.opt.MaxPathsPerNode)
}

func (c *checker) enumeratePathsCapped(ns *nodeState, maxPaths int) [][]pred {
	var out [][]pred
	var rev []pred // edges from ns backward
	onStack := map[*nodeState]bool{ns: true}

	// The backward walk is capped on visited edges, not only on completed
	// paths: a dense predecessor DAG can wander exponentially between
	// completions (dead ends whose predecessors are all on the stack), and
	// the wandering budget must stay bounded regardless of DAG shape.
	steps := 0
	const maxSteps = 1 << 12

	var walk func(cur *nodeState)
	walk = func(cur *nodeState) {
		steps++
		if len(out) >= maxPaths || steps > maxSteps {
			return
		}
		if cur.seq == 0 {
			// Reached the node's start state: materialize the path in
			// forward order.
			path := make([]pred, len(rev))
			for i := range rev {
				path[i] = rev[len(rev)-1-i]
			}
			out = append(out, path)
			return
		}
		for i := range cur.preds {
			e := cur.preds[i]
			if e.prev == nil || onStack[e.prev] {
				continue
			}
			onStack[e.prev] = true
			rev = append(rev, e)
			walk(e.prev)
			rev = rev[:len(rev)-1]
			delete(onStack, e.prev)
			if len(out) >= maxPaths || steps > maxSteps {
				return
			}
		}
	}
	walk(ns)
	return out
}

// witnessSequences validates one candidate witness combination: the two
// conflicting pair members (indices pairA, pairB) contribute a capped set
// of alternate paths; every completion node contributes only its creation
// path. The shared budget caps the total sequence combinations tried;
// checked sequences are counted into the tally.
func (c *checker) witnessSequences(combo []*nodeState, pairA, pairB int, budget *int, tally *soundTally) (bool, trace.Schedule) {
	paths := make([][][]pred, len(combo))
	for k, ns := range combo {
		if k == pairA || k == pairB {
			paths[k] = c.enumeratePathsCapped(ns, witnessPairPathCap)
		} else {
			paths[k] = c.enumeratePathsCapped(ns, witnessCompletionPathCap)
		}
		if len(paths[k]) == 0 {
			return false, nil
		}
	}
	return c.searchSequences(paths, budget, tally)
}

// isSequenceValid is Procedure isSequenceValid of Figure 9, in the
// efficient formulation of §4.2: rather than loading a simulator, events
// are validated by integer comparisons over message fingerprints. A local
// event is always enabled; a network event is enabled when the fingerprint
// of its required message is present in the set net of generated (and not
// yet consumed) message fingerprints. Executing an event consumes its
// required message and adds the fingerprints of the messages it generated.
// The greedy strategy is complete: it does not matter which enabled event
// runs next, since the order demanded by the per-node sequences is enforced
// by only ever consuming messages that were already generated.
func (c *checker) isSequenceValid(seqs [][]pred) (bool, trace.Schedule) {
	ok, sched, _ := c.sequenceValidNet(seqs)
	return ok, sched
}

// sequenceValidNet is isSequenceValid exposing the final message pool (the
// generated-and-unconsumed fingerprint counts after the whole schedule ran).
// The partial-order reduction appends detachable members' paths against this
// pool (appendValid in reduce.go).
func (c *checker) sequenceValidNet(seqs [][]pred) (bool, trace.Schedule, map[codec.Fingerprint]int) {
	net := make(map[codec.Fingerprint]int, len(c.initialNet)+8)
	for _, fp := range c.initialNet {
		net[fp]++
	}
	idx := make([]int, len(seqs))
	var order trace.Schedule

	for {
		progressed := false
		for k := range seqs {
			for idx[k] < len(seqs[k]) {
				e := seqs[k][idx[k]]
				if e.kind == model.NetworkEvent {
					if net[e.msgFP] <= 0 {
						break
					}
					net[e.msgFP]--
				}
				for _, g := range e.generated {
					net[g]++
				}
				order = append(order, e.event)
				idx[k]++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	for k := range seqs {
		if idx[k] != len(seqs[k]) {
			return false, nil, nil
		}
	}
	return true, order, net
}
