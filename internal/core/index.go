package core

import (
	"sort"

	"lmc/internal/codec"
	"lmc/internal/model"
)

// This file is the incremental index layer under the witness search. The
// sequential formulation of the search (sysstate.go) re-derived three kinds
// of facts from scratch on every call:
//
//   - whether ANY visited state of a completion node generates a message
//     fingerprint (a scan of the node's whole visited list, walking each
//     state's generated-message chain);
//   - the missing-message set of a candidate pair (a walk of both members'
//     creation paths, rebuilding need/supply multisets);
//   - the verdict of a pair that an earlier search already refuted (the
//     full Cartesian walk over the completion lists, re-materializing and
//     re-checking every combination).
//
// All three are replaced here by structures maintained incrementally as
// states are discovered: a per-node producer index, per-state flow memos,
// and an epoch-gated outcome cache keyed by (pair, missing set). Each
// replacement is exact — see the equivalence notes on the individual
// pieces — so searches return the same verdicts the rescanning formulation
// returned, only cheaper. DESIGN.md ("Indexed soundness engine") has the
// full argument.

// ---------------------------------------------------------------------------
// Producer index
//
// minProducer (on space) maps a message fingerprint to the seq of the first
// state whose creation edge generated it. The index answers the coverage
// question "does any state of node n visible under the view generate fp on
// its creation path" in O(1):
//
//   ∃ s ∈ states[:lim] with s.gen.contains(fp)  ⇔  minProducer[fp] < lim
//
// (⇐) the producing state's own gen chain contains fp. (⇒) if s.gen
// contains fp, some ancestor t on s's creation path has fp on its creation
// edge; ancestors are discovered before their descendants, so t.seq ≤ s.seq
// < lim and minProducer[fp] ≤ t.seq. Edges later added to existing states by
// addPred never enter any gen chain (gen is fixed at discovery), so indexing
// only the creation edge is not an approximation.

// indexProducers records ns's creation-edge emissions; called by space.add,
// so the index is maintained as a cheap delta at discovery time by the
// worker that owns the node.
func (sp *space) indexProducers(ns *nodeState) {
	if len(ns.preds) == 0 {
		return
	}
	for _, fp := range ns.preds[0].generated {
		if _, ok := sp.minProducer[fp]; !ok {
			sp.minProducer[fp] = ns.seq
		}
	}
}

// producerBefore reports whether some state with seq < lim generates fp
// along its creation path.
func (sp *space) producerBefore(fp codec.Fingerprint, lim int) bool {
	seq, ok := sp.minProducer[fp]
	return ok && seq < lim
}

// viewLimit is the number of node n's states visible under view (all of
// them for the nil view of a deferred search).
func (c *checker) viewLimit(n int, view []int) int {
	if view == nil {
		return len(c.spaces[n].states)
	}
	return view[n]
}

// coveredByAny answers one coverage query through the producer index: can
// any completion node visible under the view supply fp? Queries run on the
// sequential merge path, so the hit/miss counters stay deterministic for
// every worker count.
func (c *checker) coveredByAny(completionNodes []int, fp codec.Fingerprint, view []int) bool {
	for _, n := range completionNodes {
		if c.spaces[n].producerBefore(fp, c.viewLimit(n, view)) {
			c.res.Stats.CoverIndexHits++
			return true
		}
	}
	c.res.Stats.CoverIndexMisses++
	return false
}

// ---------------------------------------------------------------------------
// Flow memos
//
// flowEntry records the creation path's net demand for one message
// fingerprint: consumed count minus generated count. Positive entries are
// messages the path needs beyond what it produces itself; negative entries
// are surplus production that can offset the other pair member's demand. A
// state's memo is the multiset difference the old missingOf walk rebuilt on
// every call, computed once — from the predecessor's memo plus the creation
// edge's delta at discovery, or from the memoized creation path on first use
// for states added outside the exploration loop (tests).
type flowEntry struct {
	fp codec.Fingerprint
	n  int
}

// sortFlows is an allocation-free insertion sort; edge deltas hold a
// handful of entries.
func sortFlows(fs []flowEntry) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].fp < fs[j-1].fp; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// edgeFlow is the flow delta of one predecessor edge: +1 for the consumed
// message, −1 per generated message, coalesced and sorted.
func edgeFlow(e *pred, scratch []flowEntry) []flowEntry {
	d := scratch[:0]
	if e.kind == model.NetworkEvent {
		d = append(d, flowEntry{fp: e.msgFP, n: 1})
	}
	for _, g := range e.generated {
		d = append(d, flowEntry{fp: g, n: -1})
	}
	sortFlows(d)
	out := d[:0]
	for _, fe := range d {
		if len(out) > 0 && out[len(out)-1].fp == fe.fp {
			out[len(out)-1].n += fe.n
		} else {
			out = append(out, fe)
		}
	}
	return out
}

// mergeFlows adds two sorted flow memos, dropping zero entries. Both inputs
// are immutable; the result is fresh.
func mergeFlows(a, b []flowEntry) []flowEntry {
	out := make([]flowEntry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].fp < b[j].fp):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j].fp < a[i].fp:
			out = append(out, b[j])
			j++
		default:
			if n := a[i].n + b[j].n; n != 0 {
				out = append(out, flowEntry{fp: a[i].fp, n: n})
			}
			i++
			j++
		}
	}
	return out
}

// flowOf returns ns's flow memo. States discovered by the exploration loop
// carry it from addNext; the fallback derives it from the (memoized)
// creation path and, like creationPath itself, writes only ns — safe under
// the candidate-prep fanout, which hands each worker distinct states.
func flowOf(ns *nodeState) []flowEntry {
	if ns.flowDone {
		return ns.flow
	}
	m := make(map[codec.Fingerprint]int)
	for _, e := range creationPath(ns) {
		if e.kind == model.NetworkEvent {
			m[e.msgFP]++
		}
		for _, g := range e.generated {
			m[g]--
		}
	}
	out := make([]flowEntry, 0, len(m))
	for fp, n := range m {
		if n != 0 {
			out = append(out, flowEntry{fp: fp, n: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].fp < out[j].fp })
	ns.flow = out
	ns.flowDone = true
	return out
}

// missingFromFlows lists the fingerprints whose combined demand across two
// memos exceeds what the seeded network supplies, in ascending fingerprint
// order. This is exactly the missing set of the old multiset walk — fp is
// missing iff need(fp) > generated(fp) + initial(fp), i.e. flow(fp) >
// initial(fp) — except for the order of the returned slice, which nothing
// downstream is sensitive to: feasibility checks membership, the cache key
// is an unordered combination, and orderByCoverage counts matches.
func (c *checker) missingFromFlows(a, b []flowEntry) []codec.Fingerprint {
	var missing []codec.Fingerprint
	emit := func(fe flowEntry) {
		if fe.n > c.initNetCount[fe.fp] {
			missing = append(missing, fe.fp)
		}
	}
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].fp < b[j].fp):
			emit(a[i])
			i++
		case i >= len(a) || b[j].fp < a[i].fp:
			emit(b[j])
			j++
		default:
			emit(flowEntry{fp: a[i].fp, n: a[i].n + b[j].n})
			i++
			j++
		}
	}
	return missing
}

// ---------------------------------------------------------------------------
// Epoch-gated witness outcome cache
//
// The same candidate pair recurs across searches — most commonly as its own
// mirror: when A's discovery searched (A, B), B's own search later examines
// (B, A) with the identical unordered missing set — and the sequential
// formulation re-ran the full Cartesian walk each time. The cache records
// refutations with the evidence that produced them, and an encounter is
// skipped only while that evidence still holds under the encounter's view:
//
//   - an infeasibility refutation records WHICH fingerprints had no
//     producer; the pair is retried only after the producer index gains a
//     covering state for every one of them (and then goes through the full
//     feasibility check again, so fingerprints that were covered at
//     refutation time are still re-validated against the new view);
//   - a completed-walk refutation records the frontier of visible
//     completion-list lengths it enumerated. Visited lists only grow, so an
//     encounter whose frontier fits under a recorded one walks a subset of
//     combinations whose verdicts are all deterministic repeats (invariant
//     checks are pure; soundness verdicts are cached globally) — the walk
//     would return refuted again without side effects on the bug list.
//
// Searches that found a witness, or walks cut short by the budget or a stop
// criterion, are never cached: they re-run exactly as before.
type pairKey struct {
	// pair combines the two member state fingerprints in canonical node
	// order (lower node first). Order sensitivity matters: combining
	// unordered would alias the pair (X at the lower node, Y at the higher)
	// with its swapped counterpart, which materializes different system
	// states — while a mirror encounter of the same assignment still maps to
	// the same key.
	pair           codec.Fingerprint
	nodeLo, nodeHi int
	// miss identifies the pair's missing-message set (unordered).
	miss codec.Fingerprint
}

// pairOutcome is the recorded refutation evidence for one (pair, missing
// set).
type pairOutcome struct {
	// uncovered are the fingerprints that had no producer when the pair was
	// refuted as infeasible; cleared when the index gains coverage.
	uncovered []codec.Fingerprint
	// refuted are completed-walk frontiers (visible completion-list lengths,
	// aligned with the search's ascending completion-node order).
	refuted [][]int
}

// maxPairOutcomes bounds the cache; beyond it, new refutations are simply
// not recorded (searches stay correct, just uncached).
const maxPairOutcomes = 1 << 20

func pairKeyOf(a, b *nodeState, miss codec.Fingerprint) pairKey {
	lo, hi := a, b
	if lo.node > hi.node {
		lo, hi = hi, lo
	}
	return pairKey{
		pair:   codec.Combine(lo.fp, hi.fp),
		nodeLo: int(lo.node),
		nodeHi: int(hi.node),
		miss:   miss,
	}
}

// limitsUnder reports whether cur is elementwise ≤ rec.
func limitsUnder(cur, rec []int) bool {
	if len(cur) != len(rec) {
		return false
	}
	for i := range cur {
		if cur[i] > rec[i] {
			return false
		}
	}
	return true
}

// refutedUnder reports whether some recorded frontier dominates cur.
func (oc *pairOutcome) refutedUnder(cur []int) bool {
	for _, rec := range oc.refuted {
		if limitsUnder(cur, rec) {
			return true
		}
	}
	return false
}

// maxRefutedFrontiers caps the frontiers kept per outcome; incomparable
// frontiers beyond the cap evict the oldest.
const maxRefutedFrontiers = 4

// addRefuted records a completed-walk refutation frontier, dropping
// frontiers it dominates.
func (oc *pairOutcome) addRefuted(limits []int) {
	kept := oc.refuted[:0]
	for _, rec := range oc.refuted {
		if !limitsUnder(rec, limits) {
			kept = append(kept, rec)
		}
	}
	oc.refuted = kept
	if len(oc.refuted) >= maxRefutedFrontiers {
		copy(oc.refuted, oc.refuted[1:])
		oc.refuted = oc.refuted[:len(oc.refuted)-1]
	}
	oc.refuted = append(oc.refuted, limits)
}

// outcomeOf looks up the recorded outcome for key; nil-map tolerant for
// checkers built directly by tests.
func (c *checker) outcomeOf(key pairKey) *pairOutcome {
	return c.pairOutcomes[key]
}

// ensureOutcome returns the outcome record for key, creating it (and the
// cache) on demand; nil when the cache is full and key is new.
func (c *checker) ensureOutcome(key pairKey) *pairOutcome {
	if oc := c.pairOutcomes[key]; oc != nil {
		return oc
	}
	if len(c.pairOutcomes) >= maxPairOutcomes {
		return nil
	}
	if c.pairOutcomes == nil {
		c.pairOutcomes = make(map[pairKey]*pairOutcome)
	}
	oc := &pairOutcome{}
	c.pairOutcomes[key] = oc
	return oc
}
