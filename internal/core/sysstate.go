package core

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/obs"
	"lmc/internal/spec"
	"lmc/internal/trace"
)

// replayConfirms is the final defense on a sound witness: re-execute the
// schedule through the model-level replayer (real handlers, real
// message-consuming network) and confirm it reproduces the violating
// system state. When the machine wraps a real implementation behind an
// adapter (model.RawReplayer — package actorcheck), the schedule is
// additionally re-driven through the *uninstrumented* implementation:
// live instances mutating in place, no snapshot/restore between events.
// A bug is only reported when both executions reach the claimed state, so
// adapter-found violations are bugs of the real code, never artifacts of
// the interception seam. Concurrency-safe (parallel soundness workers call
// it): c.start and c.opt are read-only here.
func (c *checker) replayConfirms(sched trace.Schedule, fp codec.Fingerprint) bool {
	rr := trace.ReplayWith(c.m, c.start, c.opt.InitialMessages, sched)
	if rr.Err != nil || rr.Final.Fingerprint() != fp {
		return false
	}
	if raw, ok := c.m.(model.RawReplayer); ok {
		final, err := raw.ReplayRaw(c.start, c.opt.InitialMessages, sched)
		if err != nil || final.Fingerprint() != fp {
			return false
		}
	}
	return true
}

// viewStates is the visited-state list of node n as seen at a discovery's
// virtual time. Deferred witness searches pass a nil view and see everything
// visited by the time they run, matching the sequential algorithm's deferral
// semantics.
func (c *checker) viewStates(n int, view []int) []*nodeState {
	sp := c.spaces[n]
	if view == nil {
		return sp.states
	}
	return sp.states[:view[n]]
}

// visibleMembers is the prefix of an interest group visible under view.
// Members join in discovery order, so their seq numbers are ascending and
// the visible prefix is found by binary search.
func (c *checker) visibleMembers(g *interestGroup, n int, view []int) []*nodeState {
	if view == nil {
		return g.members
	}
	lim := view[n]
	i := sort.Search(len(g.members), func(i int) bool { return g.members[i].seq >= lim })
	return g.members[:i]
}

// comboFP fingerprints a combination without re-encoding any member state:
// node-state fingerprints are memoized at discovery, and
// model.SystemState.Fingerprint is the same order-sensitive combination of
// member fingerprints.
func comboFP(combo []*nodeState) codec.Fingerprint {
	h := codec.NewHasher()
	for _, ns := range combo {
		h.Add(ns.fp)
	}
	return h.Sum()
}

// checkStartState evaluates the invariant once on the start system state
// itself, before exploration.
func (c *checker) checkStartState() {
	if c.opt.Invariant == nil || c.opt.DisableSystemStates {
		return
	}
	if c.invShardIdx > 0 {
		// Worker replica with sharded invariants: the start-state check is
		// coordinator work (it is not anchored at a discovery, so it has no
		// report slot). Defensive — workers drive rounds through RunRound
		// and never reach the pass preamble.
		return
	}
	combo := make([]*nodeState, len(c.spaces))
	for n := range c.spaces {
		combo[n] = c.spaces[n].states[0]
	}
	if c.opt.Reduction != nil && !c.comboConflicts(combo) {
		// LMC-OPT admission applies to the start state too: with no
		// conflicting interests it cannot violate the invariant.
		return
	}
	c.res.Stats.SystemStates++
	c.res.Stats.InvariantChecks++
	if v := c.opt.Invariant.Check(c.comboSystem(combo)); v != nil {
		c.res.Stats.PreliminaryViolations++
		// A violating start state seeds the orbit sweep too: its permuted
		// arrangements may become realizable (and skipped) later.
		c.recordOrbit(combo)
		// The start state is the live state of a real run: trivially sound.
		fp := comboFP(combo)
		if !c.reported[fp] {
			c.reported[fp] = true
			c.res.Stats.ConfirmedBugs++
			c.res.Bugs = append(c.res.Bugs, Bug{
				Violation: v,
				System:    c.comboSystem(combo),
			})
			if c.opt.StopAtFirstBug {
				c.stop(obs.StopFirstBug)
			}
		}
	}
}

// checkNewState is Procedure checkSystemInvariant of Figure 9: after node
// state ns is newly visited, materialize every system state that combines
// ns with already-visited states of the other nodes, and evaluate the
// invariant on each. Combinations of previously visited states were checked
// in earlier rounds, so fixing ns avoids revisiting system states (§4.2,
// "System states"). The other nodes' lists are taken at the discovery's
// virtual-time view, so a deferred (round-barrier) check sees exactly the
// states an inline sequential check would have seen.
func (c *checker) checkNewState(ns *nodeState, view []int) {
	if c.opt.Invariant == nil || c.opt.DisableSystemStates {
		return
	}
	t0 := time.Now()
	defer func() { c.res.Stats.SystemStateTime += time.Since(t0) }()

	if c.opt.Reduction != nil {
		c.checkNewStateOpt(ns, view)
		return
	}

	// Sharded invariants, worker side: sweep only the anchors whose
	// fingerprint falls in this replica's range, and report each sweep's
	// outcome. Foreign anchors are the coordinator's (or another worker's)
	// work.
	if c.invShardCount > 1 {
		if ShardOwner(ns.fp, c.invShardCount) != c.invShardIdx {
			return
		}
		states0 := c.res.Stats.SystemStates
		prelims0 := c.res.Stats.PreliminaryViolations
		c.forEachComboGEN(ns, view)
		c.capAnchors = append(c.capAnchors, AnchorReport{
			Node:     int(ns.node),
			Seq:      ns.seq,
			Violated: c.res.Stats.PreliminaryViolations > prelims0,
			Combos:   c.res.Stats.SystemStates - states0,
			MaxDepth: c.res.Stats.MaxDepth,
		})
		return
	}

	// Sharded invariants, coordinator side: a clean report from the owning
	// worker stands in for the whole sweep — its combination count merges
	// into the counters (the worker enumerated the identical product). A
	// violated or missing report falls through to the inline sweep, so
	// violations are confirmed and reported exactly canonically.
	if rep := c.shardAnchor(int(ns.node), ns.seq); rep != nil && !rep.Violated {
		c.res.Stats.SystemStates += rep.Combos
		c.res.Stats.InvariantChecks += rep.Combos
		if rep.MaxDepth > c.res.Stats.MaxDepth {
			c.res.Stats.MaxDepth = rep.MaxDepth
		}
		return
	}

	c.forEachComboGEN(ns, view)
}

// forEachComboGEN runs the LMC-GEN sweep anchored at ns: the full
// Cartesian product of ns with the other nodes' visited states under the
// discovery's view.
func (c *checker) forEachComboGEN(ns *nodeState, view []int) {
	lists := make([][]*nodeState, len(c.spaces))
	for n := range c.spaces {
		if n == int(ns.node) {
			lists[n] = []*nodeState{ns}
		} else {
			lists[n] = c.viewStates(n, view)
		}
	}
	c.forEachCombo(lists)
}

// checkNewStateOpt is the invariant-specific system-state creation of
// LMC-OPT (§4.2): only node states with an invariant-relevant interest
// participate, other nodes are represented by a non-interesting filler
// state, and a combination is materialized only when at least one pair of
// interests conflicts.
//
// With a spec.Keyer reduction, interesting states are pre-grouped by
// interest key and conflicts are decided once per key profile — the shape
// of the paper's Paxos mapping ("we map the node states to the values that
// are chosen in them") — so the non-conflicting case costs a handful of key
// comparisons instead of a scan of the whole Cartesian product. Groups with
// no member visible at the discovery's virtual time did not exist yet from
// the sequential algorithm's point of view and are skipped without leaving
// any witnessed mark.
func (c *checker) checkNewStateOpt(ns *nodeState, view []int) {
	if !ns.interesting {
		return
	}
	// The violation, if any, lives in a pair of node states whose interests
	// conflict; the other nodes' states only decide whether the pair is
	// co-reachable in a real run. Materializing the full Cartesian product
	// of completions up front would bury the checker (one invalid chooser
	// times millions of completions); instead, for each conflicting
	// (state, group) pair the witness search below iterates candidate
	// members and completions lazily, invariant-checks each candidate
	// system state, soundness-checks the violating ones, and stops at the
	// first confirmed witness. Verdicts are cached per (state, group) —
	// with the same deliberate staleness the paper accepts for predecessor
	// updates (§4.2): new node states trigger fresh searches of their own.
	for k, sp := range c.spaces {
		if k == int(ns.node) {
			continue
		}
		if c.keyer != nil {
			for _, key := range sp.groupOrder {
				g := sp.groups[key]
				if len(c.visibleMembers(g, k, view)) == 0 {
					continue
				}
				if !c.opt.Reduction.Conflict(ns.interest, g.interest) {
					continue
				}
				c.searchWitness(ns, k, "g:"+key, false, view)
				if c.stopped {
					return
				}
			}
			continue
		}
		c.searchWitness(ns, k, "all", false, view)
		if c.stopped {
			return
		}
	}
}

// resolveCandidates returns the conflicting candidate states of node k for
// a witness search, restricted to the search's view. Deferred searches
// resolve with a nil view at run time, so they see members that joined in
// the meantime.
func (c *checker) resolveCandidates(ns *nodeState, k int, groupKey string, view []int) []*nodeState {
	sp := c.spaces[k]
	if g, ok := c.keyerGroup(sp, groupKey); ok {
		return c.visibleMembers(g, k, view)
	}
	var cands []*nodeState
	for _, b := range c.viewStates(k, view) {
		if b.interesting && c.opt.Reduction.Conflict(ns.interest, b.interest) {
			cands = append(cands, b)
		}
	}
	return cands
}

func (c *checker) keyerGroup(sp *space, groupKey string) (*interestGroup, bool) {
	if len(groupKey) < 2 || groupKey[:2] != "g:" {
		return nil, false
	}
	g := sp.groups[groupKey[2:]]
	return g, g != nil
}

// witnessPrepFanout is the candidate count above which a witness search
// pre-resolves its per-candidate missing sets and coverage verdicts on the
// worker pool.
const witnessPrepFanout = 16

// searchWitness looks for a real run in which ns coexists with one of the
// conflicting candidate states of node k. Other nodes are completed with
// any visited state (within the search's view), iterated lazily in
// discovery order — their events are what generated the messages the pair
// consumed. Each candidate system state is materialized and
// invariant-checked; a violating one goes through soundness verification;
// the first confirmed witness is reported and ends the search. The whole
// search counts as one soundness-verification invocation, with the sequence
// budget shared across candidates.
//
// Unless force is set, the search defers to the pending queue when the
// soundness share is exhausted, so exploration keeps progressing.
//
// The search runs on the incremental index layer (index.go): missing sets
// come from the pair's flow memos, coverage questions go to the producer
// index, and candidate pairs whose refutation evidence still stands are
// skipped outright. When the candidate list is large and a worker pool is
// available, the per-candidate missing sets are pre-resolved in parallel —
// pure functions of immutable memos — and committed in candidate order, so
// the sequential walk below consumes them with the exact sequential budget
// charges.
func (c *checker) searchWitness(ns *nodeState, k int, groupKey string, force bool, view []int) {
	cacheKey := witnessKey{fp: ns.fp, node: k, group: groupKey}
	if _, done := c.witnessed[cacheKey]; done {
		return
	}
	if !force && c.soundnessShareExceeded() {
		heap.Push(&c.pending, pendingSearch{ns: ns, node: k, group: groupKey})
		return
	}
	c.witnessed[cacheKey] = struct{}{}
	c.underPhase("soundness", func() { c.witnessSearch(ns, k, groupKey, view) })
}

// witnessSearch is the body of searchWitness, separated so the whole search
// (including the path enumeration and replay it triggers) profiles under
// the soundness phase label.
func (c *checker) witnessSearch(ns *nodeState, k int, groupKey string, view []int) {
	cands := c.resolveCandidates(ns, k, groupKey, view)
	if len(cands) == 0 {
		return
	}

	c.res.Stats.SoundnessCalls++
	budget := c.opt.MaxSequencesPerCheck

	completionNodes := make([]int, 0, len(c.spaces)-2)
	for n := range c.spaces {
		if n != int(ns.node) && n != k {
			completionNodes = append(completionNodes, n)
		}
	}
	// The completion frontier visible to this search: how many states of
	// each completion node the Cartesian walk below can range over. This is
	// both the walk's input size and the evidence recorded by a
	// completed-walk refutation.
	curLimits := make([]int, len(completionNodes))
	for i, n := range completionNodes {
		curLimits[i] = c.viewLimit(n, view)
	}

	combo := make([]*nodeState, len(c.spaces))
	combo[ns.node] = ns
	deadlineTick := 0

	var preMissing [][]codec.Fingerprint
	if c.workers >= 2 && len(cands) >= witnessPrepFanout {
		// Memoize the shared pair member's memos before fanning out: flowOf
		// (and the creationPath walk under it) writes only the state it is
		// called on, so each parallel task touches a distinct candidate.
		flowOf(ns)
		preMissing = make([][]codec.Fingerprint, len(cands))
		c.runParallel(len(cands), func(i int) {
			preMissing[i] = c.pairMissing(ns, cands[i])
		})
	}

	type orderKey struct {
		node int
		miss codec.Fingerprint
	}
	orderCache := make(map[orderKey][]*nodeState)

	for ci, b := range cands {
		if c.stopped || budget <= 0 {
			return
		}
		// Examining a candidate costs budget even when the feasibility
		// check refutes it without materializing anything — conflicting
		// groups can hold thousands of members, and the walk must stay
		// within the per-search allowance. Ordering a node's completions by
		// coverage scans that node's whole visited list, so it is charged
		// proportionally below.
		budget--
		if c.pollDeadline(&deadlineTick) {
			c.stop(obs.StopBudget)
			return
		}
		combo[k] = b

		// What must the completion nodes supply? Every message the pair's
		// creation paths consume beyond what the pair itself (or the seeded
		// network) generates. Candidates that cannot cover a missing
		// message are tried last; a message nobody can cover refutes this
		// pair outright (modulo alternate-path generation, the same kind of
		// incompleteness the paper's caps accept).
		var missing []codec.Fingerprint
		if preMissing != nil {
			missing = preMissing[ci]
		} else {
			missing = c.pairMissing(ns, b)
		}
		missKey := codec.CombineUnordered(missing)
		key := pairKeyOf(ns, b, missKey)
		oc := c.outcomeOf(key)

		// Epoch gate 1: the pair was refuted as infeasible, and at least one
		// of the fingerprints that had no producer then still has none — the
		// verdict cannot have changed. Once the producer index gains covering
		// states for all of them the evidence is void, and the pair goes back
		// through the full feasibility check against the current view.
		if oc != nil && len(oc.uncovered) > 0 {
			still := false
			for _, fp := range oc.uncovered {
				if !c.coveredByAny(completionNodes, fp, view) {
					still = true
					break
				}
			}
			if still {
				c.res.Stats.WitnessSkips++
				continue
			}
			oc.uncovered = nil
		}

		// Feasibility, via the producer index. All uncovered fingerprints are
		// collected — not just the first — so a refutation records the full
		// evidence the retry gate above must see disproven.
		var uncovered []codec.Fingerprint
		for _, fp := range missing {
			if !c.coveredByAny(completionNodes, fp, view) {
				uncovered = append(uncovered, fp)
			}
		}
		if len(uncovered) > 0 {
			if rec := c.ensureOutcome(key); rec != nil {
				rec.uncovered = uncovered
			}
			continue
		}

		// Epoch gate 2: a completed walk refuted this pair over a completion
		// frontier at least as large. The current walk would enumerate a
		// subset of those combinations, and their verdicts are deterministic
		// repeats (invariant checks are pure; soundness verdicts are cached
		// globally) — skip it.
		if oc != nil && oc.refutedUnder(curLimits) {
			c.res.Stats.WitnessSkips++
			continue
		}

		lists := make([][]*nodeState, len(completionNodes))
		for i, n := range completionNodes {
			okey := orderKey{node: n, miss: missKey}
			ordered, ok := orderCache[okey]
			if !ok {
				ordered, _ = orderByCoverage(c.viewStates(n, view), missing)
				orderCache[okey] = ordered
				// A coverage scan touches every visited state of the node;
				// short lists still cost at least one unit.
				cost := len(ordered) / 64
				if cost < 1 {
					cost = 1
				}
				budget -= cost
			}
			lists[i] = ordered
		}
		if budget <= 0 {
			return
		}

		var walk func(i int) bool
		walk = func(i int) bool {
			if c.stopped || budget <= 0 {
				return false
			}
			if i == len(lists) {
				if c.pollDeadline(&deadlineTick) {
					c.stop(obs.StopBudget)
					return false
				}
				return c.tryWitness(combo, int(ns.node), k, &budget)
			}
			for _, s := range lists[i] {
				combo[completionNodes[i]] = s
				if walk(i + 1) {
					return true
				}
				if c.stopped || budget <= 0 {
					return false
				}
			}
			return false
		}
		if walk(0) {
			return
		}
		if c.stopped {
			return
		}
		if budget > 0 {
			// The walk ran to completion (not cut short by budget or a stop
			// criterion) without finding a witness: record the refuted
			// frontier so re-encounters under it are skipped.
			if rec := c.ensureOutcome(key); rec != nil {
				rec.addRefuted(curLimits)
			}
		}
	}
}

// confirmLocalViolation runs the witness search for a node-local invariant
// violation: the violating state alone is the "pair"; every other node is a
// completion ranged over lazily (within the discovery's view), ordered by
// which missing messages its creation path can supply.
func (c *checker) confirmLocalViolation(ns *nodeState, v *spec.Violation, view []int) {
	cacheKey := witnessKey{fp: ns.fp, node: int(ns.node), group: "local:" + v.Invariant}
	if _, done := c.witnessed[cacheKey]; done {
		return
	}
	c.witnessed[cacheKey] = struct{}{}
	c.underPhase("soundness", func() { c.confirmLocal(ns, v, view) })
}

// confirmLocal is the body of confirmLocalViolation, separated so the
// search profiles under the soundness phase label.
func (c *checker) confirmLocal(ns *nodeState, v *spec.Violation, view []int) {
	c.res.Stats.SoundnessCalls++
	budget := c.opt.MaxSequencesPerCheck

	completionNodes := make([]int, 0, len(c.spaces)-1)
	for n := range c.spaces {
		if n != int(ns.node) {
			completionNodes = append(completionNodes, n)
		}
	}
	missing := c.missingFromFlows(flowOf(ns), nil)
	lists := make([][]*nodeState, len(completionNodes))
	for i, n := range completionNodes {
		lists[i], _ = orderByCoverage(c.viewStates(n, view), missing)
	}

	combo := make([]*nodeState, len(c.spaces))
	combo[ns.node] = ns
	deadlineTick := 0
	var walk func(i int) bool
	walk = func(i int) bool {
		if c.stopped || budget <= 0 {
			return false
		}
		if i == len(lists) {
			if c.pollDeadline(&deadlineTick) {
				c.stop(obs.StopBudget)
				return false
			}
			ss := c.comboSystem(combo)
			fp := comboFP(combo)
			if verdict, cached := c.verdicts[fp]; cached {
				return verdict && c.reported[fp]
			}
			t0 := time.Now()
			var tally soundTally
			sound, sched := c.witnessSequences(combo, int(ns.node), int(ns.node), &budget, &tally)
			c.res.Stats.SoundnessTime += time.Since(t0)
			c.addTally(&tally)
			if sound && !c.opt.DisableReplay {
				sound = c.replayConfirms(sched, fp)
			}
			c.verdicts[fp] = sound
			if !sound {
				return false
			}
			c.reported[fp] = true
			c.res.Stats.ConfirmedBugs++
			vv := *v
			vv.System = ss.Clone()
			c.res.Bugs = append(c.res.Bugs, Bug{
				Violation: &vv,
				Schedule:  sched,
				System:    ss.Clone(),
				Depth:     comboDepth(combo),
			})
			if c.opt.StopAtFirstBug {
				c.stop(obs.StopFirstBug)
			}
			return true
		}
		for _, s := range lists[i] {
			combo[completionNodes[i]] = s
			if walk(i + 1) {
				return true
			}
			if c.stopped || budget <= 0 {
				return false
			}
		}
		return false
	}
	walk(0)
}

// pairMissing lists the message fingerprints the creation paths of the two
// pair members consume but neither generates (and the seeded network does
// not supply), counting multiplicities. It is a two-pointer merge of the
// members' flow memos; missingOf below is the definitional multiset walk it
// replaced, kept as the oracle the differential tests compare against.
func (c *checker) pairMissing(a, b *nodeState) []codec.Fingerprint {
	return c.missingFromFlows(flowOf(a), flowOf(b))
}

// missingOf computes the missing set of any member set directly from the
// creation paths. Superseded on the hot path by the flow memos (index.go);
// retained as the reference implementation for tests.
func (c *checker) missingOf(states ...*nodeState) []codec.Fingerprint {
	supply := make(map[codec.Fingerprint]int)
	for _, fp := range c.initialNet {
		supply[fp]++
	}
	var need []codec.Fingerprint
	for _, ns := range states {
		for _, e := range creationPath(ns) {
			if e.kind == model.NetworkEvent {
				need = append(need, e.msgFP)
			}
			for _, g := range e.generated {
				supply[g]++
			}
		}
	}
	var missing []codec.Fingerprint
	seen := make(map[codec.Fingerprint]bool)
	for _, fp := range need {
		if supply[fp] > 0 {
			supply[fp]--
			continue
		}
		if !seen[fp] {
			seen[fp] = true
			missing = append(missing, fp)
		}
	}
	return missing
}

// orderByCoverage buckets states by how many of the missing fingerprints
// their creation path generates: full coverers first, partial next, the
// rest last; discovery order is preserved within each bucket. It also
// reports whether any state covers at least one missing fingerprint.
func orderByCoverage(states []*nodeState, missing []codec.Fingerprint) ([]*nodeState, bool) {
	if len(missing) == 0 {
		return states, true
	}
	var full, partial, zero []*nodeState
	any := false
	for _, s := range states {
		covered := 0
		for _, fp := range missing {
			if s.gen.contains(fp) {
				covered++
			}
		}
		switch {
		case covered == len(missing):
			full = append(full, s)
			any = true
		case covered > 0:
			partial = append(partial, s)
			any = true
		default:
			zero = append(zero, s)
		}
	}
	out := make([]*nodeState, 0, len(states))
	out = append(out, full...)
	out = append(out, partial...)
	out = append(out, zero...)
	return out, any
}

// tryWitness materializes one candidate combination, checks the invariant,
// and — on a preliminary violation — runs the path-enumeration soundness
// check against the shared sequence budget. It reports whether a confirmed
// bug was found.
func (c *checker) tryWitness(combo []*nodeState, pairA, pairB int, budget *int) bool {
	// The OPT half of the symmetry reduction: a combination whose canonical
	// twin was already invariant-clean is clean too (slot-symmetric
	// invariants) and can never become a witness — skip it without charging
	// the budget, so the reduced walk covers at least the combinations the
	// unreduced walk covers. Violating twins are never skipped: their
	// soundness verdicts are arrangement-specific.
	var canonFP codec.Fingerprint
	if c.canon != nil {
		var buf [16]codec.Fingerprint
		var fps []codec.Fingerprint
		if len(combo) <= len(buf) {
			fps = buf[:len(combo)]
		} else {
			fps = make([]codec.Fingerprint, len(combo))
		}
		for i, ns := range combo {
			fps[i] = ns.fp
		}
		canonFP = c.canon.Canonical(fps)
		if c.canonClean[canonFP] {
			c.res.Stats.SymmetrySkips++
			return false
		}
	}
	// Every examined combination charges the search budget, so the walk
	// terminates even when soundness verification (the other consumer of
	// the budget) is disabled or cached away.
	*budget--
	ss := c.comboSystem(combo)
	c.res.Stats.SystemStates++
	c.res.Stats.InvariantChecks++
	d := comboDepth(combo)
	if d > c.res.Stats.MaxDepth {
		c.res.Stats.MaxDepth = d
	}
	v := c.opt.Invariant.Check(ss)
	if v == nil {
		if c.canon != nil {
			c.canonClean[canonFP] = true
		}
		return false
	}
	c.res.Stats.PreliminaryViolations++
	if c.opt.DisableSoundness {
		return false
	}
	fp := comboFP(combo)
	if verdict, cached := c.verdicts[fp]; cached {
		return verdict && c.reported[fp]
	}
	t0 := time.Now()
	var tally soundTally
	sound, sched := c.witnessSequences(combo, pairA, pairB, budget, &tally)
	c.res.Stats.SoundnessTime += time.Since(t0)
	c.addTally(&tally)
	if sound && !c.opt.DisableReplay {
		sound = c.replayConfirms(sched, fp)
	}
	c.verdicts[fp] = sound
	if !sound {
		return false
	}
	c.reported[fp] = true
	c.res.Stats.ConfirmedBugs++
	c.res.Bugs = append(c.res.Bugs, Bug{
		Violation: v,
		Schedule:  sched,
		System:    ss.Clone(),
		Depth:     d,
	})
	if c.opt.StopAtFirstBug {
		c.stop(obs.StopFirstBug)
	}
	return true
}

// comboConflicts reports whether some pair of interesting members of the
// combination conflicts under the reduction.
func (c *checker) comboConflicts(combo []*nodeState) bool {
	for i := 0; i < len(combo); i++ {
		if !combo[i].interesting {
			continue
		}
		for j := i + 1; j < len(combo); j++ {
			if !combo[j].interesting {
				continue
			}
			if c.opt.Reduction.Conflict(combo[i].interest, combo[j].interest) {
				return true
			}
		}
	}
	return false
}

// prelim is one preliminary violation found during combination enumeration,
// tagged with its global enumeration index so confirmation runs in the
// canonical sequential order regardless of how the product was chunked.
type prelim struct {
	idx   int
	fp    codec.Fingerprint
	combo []*nodeState
	v     *spec.Violation
}

// forEachCombo enumerates the Cartesian product of lists in the canonical
// lexicographic order (last list fastest), materializes each combination
// into a reused scratch system state, and checks the invariant. When the
// product is large and Options.Workers allows, the widest dimension is
// chunked across the worker pool (§1: "the model checking process can be
// embarrassingly parallelized"); each chunk works on private scratch and
// private counters, and preliminary violations are replayed for
// confirmation in ascending enumeration index — so stats and reported bugs
// are identical for every worker count.
func (c *checker) forEachCombo(lists [][]*nodeState) {
	if c.stopped {
		return
	}
	total := 1
	for _, l := range lists {
		total *= len(l)
		if total == 0 {
			return
		}
	}

	// Strides of the mixed-radix enumeration index.
	strides := make([]int, len(lists))
	s := 1
	for d := len(lists) - 1; d >= 0; d-- {
		strides[d] = s
		s *= len(lists[d])
	}

	// Chunk the widest dimension for balance.
	widest := 0
	for d, l := range lists {
		if len(l) > len(lists[widest]) {
			widest = d
		}
	}
	nchunks := c.workers
	if nchunks > len(lists[widest]) {
		nchunks = len(lists[widest])
	}
	if nchunks < 2 || total < c.parThreshold {
		nchunks = 1
	}
	chunk := (len(lists[widest]) + nchunks - 1) / nchunks

	type chunkOut struct {
		systemStates int
		invChecks    int
		maxDepth     int
		symSkips     int
		prelims      []prelim
	}
	outs := make([]chunkOut, nchunks)
	var halt atomic.Bool

	runChunk := func(ci int) {
		lo := ci * chunk
		hi := lo + chunk
		if hi > len(lists[widest]) {
			hi = len(lists[widest])
		}
		if lo >= hi {
			return
		}
		out := &outs[ci]
		sub := make([][]*nodeState, len(lists))
		copy(sub, lists)
		sub[widest] = lists[widest][lo:hi]

		// Scratch reused across the whole chunk: the combination, its
		// materialized system state, and the enumeration position.
		combo := make([]*nodeState, len(lists))
		ss := make(model.SystemState, len(lists))
		pos := make([]int, len(lists))
		var symFPs []codec.Fingerprint
		if c.canon != nil {
			symFPs = make([]codec.Fingerprint, len(lists))
		}
		base := lo * strides[widest]
		tick := 0
		halted := false
		last := len(lists) - 1

		var rec func(d, depth int)
		rec = func(d, depth int) {
			if d == last {
				for i, st := range sub[d] {
					pos[d] = i
					combo[d] = st
					ss[d] = st.state
					leafDepth := depth + st.depth

					tick++
					if tick&1023 == 0 {
						// The system-state phase can dominate a run
						// (Figure 13), so the wall-clock budget must be
						// enforced here too, not only between handler
						// executions.
						if halt.Load() {
							halted = true
							return
						}
						if !c.deadline.IsZero() && time.Now().After(c.deadline) {
							halt.Store(true)
							halted = true
							return
						}
					}
					if c.opt.MaxSystemDepth > 0 && leafDepth > c.opt.MaxSystemDepth {
						continue
					}
					if c.canon != nil && c.symSkip(combo, symFPs) {
						// A non-canonical arrangement whose representative is
						// covered: its verdict is decided at the
						// representative's enumeration point (clean) or by
						// the fixpoint orbit sweep (violating).
						out.symSkips++
						continue
					}
					out.systemStates++
					out.invChecks++
					if leafDepth > out.maxDepth {
						out.maxDepth = leafDepth
					}
					if v := c.opt.Invariant.Check(ss); v != nil {
						// pos[widest] is relative to the chunk; base covers lo.
						gidx := base
						for dd := range pos {
							gidx += pos[dd] * strides[dd]
						}
						cp := make([]*nodeState, len(combo))
						copy(cp, combo)
						// The violation may retain the scratch system state
						// (spec.Violate stores it as-is); repoint it at a
						// stable copy before the scratch is reused.
						sys := make(model.SystemState, len(ss))
						copy(sys, ss)
						if len(v.System) == len(ss) && len(ss) > 0 && &v.System[0] == &ss[0] {
							v.System = sys
						}
						out.prelims = append(out.prelims, prelim{idx: gidx, combo: cp, v: v})
					}
				}
				return
			}
			for i, st := range sub[d] {
				pos[d] = i
				combo[d] = st
				ss[d] = st.state
				rec(d+1, depth+st.depth)
				if halted {
					return
				}
			}
		}
		rec(0, 0)
	}

	if nchunks == 1 {
		runChunk(0)
	} else {
		var wg sync.WaitGroup
		for ci := 0; ci < nchunks; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				runChunk(ci)
			}(ci)
		}
		wg.Wait()
	}
	if halt.Load() && !c.deadline.IsZero() && time.Now().After(c.deadline) {
		c.stop(obs.StopBudget)
	}

	var all []prelim
	for i := range outs {
		c.res.Stats.SystemStates += outs[i].systemStates
		c.res.Stats.InvariantChecks += outs[i].invChecks
		c.res.Stats.SymmetrySkips += outs[i].symSkips
		if outs[i].maxDepth > c.res.Stats.MaxDepth {
			c.res.Stats.MaxDepth = outs[i].maxDepth
		}
		all = append(all, outs[i].prelims...)
	}
	c.res.Stats.PreliminaryViolations += len(all)
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i].idx < all[j].idx })
	if c.canon != nil {
		// Violating orbits feed the fixpoint sweep: skipped sibling
		// arrangements of a violating combination get their own checks there.
		for i := range all {
			c.recordOrbit(all[i].combo)
		}
	}
	// Confirmation is soundness work (path enumeration plus replay); label
	// it so profiles separate it from the combination sweep above.
	c.underPhase("soundness", func() { c.confirmBatch(all) })
}

// confirmResult is one precomputed soundness verdict.
type confirmResult struct {
	sound     bool
	sched     trace.Schedule
	soundTime time.Duration
	tally     soundTally
}

// confirmBatch confirms preliminary violations in canonical enumeration
// order (Figure 9 lines 19–21). The soundness runs themselves — path
// enumeration, sequence validation, and the final replay — are pure given
// the immutable exploration structures, so they are precomputed on the
// worker pool, one per distinct undecided fingerprint; the sequential merge
// then replays the exact bookkeeping of an inline confirmation loop:
// verdict and reported caches, stats, and the StopAtFirstBug cutoff, with
// stats charged only for the confirmations that actually execute.
func (c *checker) confirmBatch(prelims []prelim) {
	if c.opt.DisableSoundness {
		// Figure 13's "LMC-system-state" configuration: preliminary
		// violations are counted but never confirmed or reported.
		return
	}

	type job struct {
		fp    codec.Fingerprint
		combo []*nodeState
	}
	var jobs []job
	need := make(map[codec.Fingerprint]int)
	for i := range prelims {
		fp := comboFP(prelims[i].combo)
		prelims[i].fp = fp
		if c.reported[fp] {
			continue
		}
		if _, cached := c.verdicts[fp]; cached {
			continue
		}
		if _, dup := need[fp]; dup {
			continue
		}
		need[fp] = len(jobs)
		jobs = append(jobs, job{fp: fp, combo: prelims[i].combo})
	}

	results := make([]confirmResult, len(jobs))
	run := func(i int) {
		r := &results[i]
		budget := c.opt.MaxSequencesPerCheck
		t0 := time.Now()
		sound, sched := c.isStateSoundBudget(jobs[i].combo, &budget, &r.tally)
		r.soundTime = time.Since(t0)
		if sound && !c.opt.DisableReplay {
			sound = c.replayConfirms(sched, jobs[i].fp)
		}
		r.sound = sound
		r.sched = sched
	}
	if c.workers >= 2 && len(jobs) >= 2 {
		c.runParallel(len(jobs), run)
	} else {
		for i := range jobs {
			run(i)
		}
	}

	for i := range prelims {
		if c.stopped {
			return
		}
		p := &prelims[i]
		if c.reported[p.fp] {
			continue
		}
		if _, cached := c.verdicts[p.fp]; cached {
			// Sound verdicts are reported immediately when first computed,
			// so a cache hit of either polarity means nothing is left to do.
			continue
		}
		r := results[need[p.fp]]
		c.res.Stats.SoundnessCalls++
		c.res.Stats.SoundnessTime += r.soundTime
		c.addTally(&r.tally)
		c.verdicts[p.fp] = r.sound
		if !r.sound {
			continue
		}
		c.reported[p.fp] = true
		c.res.Stats.ConfirmedBugs++
		ss := c.comboSystem(p.combo)
		c.res.Bugs = append(c.res.Bugs, Bug{
			Violation: p.v,
			Schedule:  r.sched,
			System:    ss.Clone(),
			Depth:     comboDepth(p.combo),
		})
		if c.opt.StopAtFirstBug {
			c.stop(obs.StopFirstBug)
		}
	}
}

// comboSystem materializes the temporary system state for a combination.
func (c *checker) comboSystem(combo []*nodeState) model.SystemState {
	ss := make(model.SystemState, len(combo))
	for i, ns := range combo {
		ss[i] = ns.state
	}
	return ss
}

// comboDepth is the total depth of a combination: the sum of member path
// lengths, the depth axis of the paper's LMC plots.
func comboDepth(combo []*nodeState) int {
	d := 0
	for _, ns := range combo {
		d += ns.depth
	}
	return d
}
