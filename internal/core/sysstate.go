package core

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/spec"
	"lmc/internal/trace"
)

// parallelThreshold is the combination count above which system-state
// invariant checking fans out to worker goroutines (when Options.Workers
// allows it). Below it the dispatch overhead dominates any gain.
const parallelThreshold = 64

// checkStartState evaluates the invariant once on the start system state
// itself, before exploration.
func (c *checker) checkStartState() {
	if c.opt.Invariant == nil || c.opt.DisableSystemStates {
		return
	}
	combo := make([]*nodeState, len(c.spaces))
	for n := range c.spaces {
		combo[n] = c.spaces[n].states[0]
	}
	if c.opt.Reduction != nil && !c.comboConflicts(combo) {
		// LMC-OPT admission applies to the start state too: with no
		// conflicting interests it cannot violate the invariant.
		return
	}
	c.res.Stats.SystemStates++
	c.res.Stats.InvariantChecks++
	if v := c.opt.Invariant.Check(c.comboSystem(combo)); v != nil {
		c.res.Stats.PreliminaryViolations++
		// The start state is the live state of a real run: trivially sound.
		fp := c.comboSystem(combo).Fingerprint()
		if !c.reported[fp] {
			c.reported[fp] = true
			c.res.Stats.ConfirmedBugs++
			c.res.Bugs = append(c.res.Bugs, Bug{
				Violation: v,
				System:    c.comboSystem(combo),
			})
			if c.opt.StopAtFirstBug {
				c.stopped = true
			}
		}
	}
}

// checkNewState is Procedure checkSystemInvariant of Figure 9: after node
// state ns is newly visited, materialize every system state that combines
// ns with already-visited states of the other nodes, and evaluate the
// invariant on each. Combinations of previously visited states were checked
// in earlier rounds, so fixing ns avoids revisiting system states (§4.2,
// "System states").
func (c *checker) checkNewState(ns *nodeState) {
	if c.opt.Invariant == nil || c.opt.DisableSystemStates {
		return
	}
	t0 := time.Now()
	defer func() { c.res.Stats.SystemStateTime += time.Since(t0) }()

	if c.opt.Reduction != nil {
		c.checkNewStateOpt(ns)
		return
	}

	// LMC-GEN: full Cartesian product over the other nodes' visited states.
	lists := make([][]*nodeState, len(c.spaces))
	for n := range c.spaces {
		if n == int(ns.node) {
			lists[n] = []*nodeState{ns}
		} else {
			lists[n] = c.spaces[n].states
		}
	}
	c.forEachCombo(lists, nil)
}

// checkNewStateOpt is the invariant-specific system-state creation of
// LMC-OPT (§4.2): only node states with an invariant-relevant interest
// participate, other nodes are represented by a non-interesting filler
// state, and a combination is materialized only when at least one pair of
// interests conflicts.
//
// With a spec.Keyer reduction, interesting states are pre-grouped by
// interest key and conflicts are decided once per key profile — the shape
// of the paper's Paxos mapping ("we map the node states to the values that
// are chosen in them") — so the non-conflicting case costs a handful of key
// comparisons instead of a scan of the whole Cartesian product.
func (c *checker) checkNewStateOpt(ns *nodeState) {
	if !ns.interesting {
		return
	}
	// The violation, if any, lives in a pair of node states whose interests
	// conflict; the other nodes' states only decide whether the pair is
	// co-reachable in a real run. Materializing the full Cartesian product
	// of completions up front would bury the checker (one invalid chooser
	// times millions of completions); instead, for each conflicting
	// (state, group) pair the witness search below iterates candidate
	// members and completions lazily, invariant-checks each candidate
	// system state, soundness-checks the violating ones, and stops at the
	// first confirmed witness. Verdicts are cached per (state, group) —
	// with the same deliberate staleness the paper accepts for predecessor
	// updates (§4.2): new node states trigger fresh searches of their own.
	for k, sp := range c.spaces {
		if k == int(ns.node) {
			continue
		}
		if c.keyer != nil {
			for _, key := range sp.groupOrder {
				g := sp.groups[key]
				if !c.opt.Reduction.Conflict(ns.interest, g.interest) {
					continue
				}
				c.searchWitness(ns, k, "g:"+key, false)
				if c.stopped {
					return
				}
			}
			continue
		}
		c.searchWitness(ns, k, "all", false)
		if c.stopped {
			return
		}
	}
}

// resolveCandidates returns the current conflicting candidate states of
// node k for a (deferred or immediate) witness search. Resolving at run
// time rather than enqueue time lets a deferred search see members that
// joined the group in the meantime.
func (c *checker) resolveCandidates(ns *nodeState, k int, groupKey string) []*nodeState {
	sp := c.spaces[k]
	if g, ok := c.keyerGroup(sp, groupKey); ok {
		return g.members
	}
	var cands []*nodeState
	for _, b := range sp.states {
		if b.interesting && c.opt.Reduction.Conflict(ns.interest, b.interest) {
			cands = append(cands, b)
		}
	}
	return cands
}

func (c *checker) keyerGroup(sp *space, groupKey string) (*interestGroup, bool) {
	if len(groupKey) < 2 || groupKey[:2] != "g:" {
		return nil, false
	}
	g := sp.groups[groupKey[2:]]
	return g, g != nil
}

// searchWitness looks for a real run in which ns coexists with one of the
// conflicting candidate states of node k. Other nodes are completed with
// any visited state, iterated lazily in discovery order — their events are
// what generated the messages the pair consumed. Each candidate system
// state is materialized and invariant-checked; a violating one goes through
// soundness verification; the first confirmed witness is reported and ends
// the search. The whole search counts as one soundness-verification
// invocation, with the sequence budget shared across candidates.
//
// Unless force is set, the search defers to the pending queue when the
// soundness share is exhausted, so exploration keeps progressing.
func (c *checker) searchWitness(ns *nodeState, k int, groupKey string, force bool) {
	cacheKey := witnessKey{fp: ns.fp, node: k, group: groupKey}
	if _, done := c.witnessed[cacheKey]; done {
		return
	}
	if !force && c.soundnessShareExceeded() {
		heap.Push(&c.pending, pendingSearch{ns: ns, node: k, group: groupKey})
		return
	}
	c.witnessed[cacheKey] = struct{}{}

	cands := c.resolveCandidates(ns, k, groupKey)
	if len(cands) == 0 {
		return
	}

	c.res.Stats.SoundnessCalls++
	budget := c.opt.MaxSequencesPerCheck

	completionNodes := make([]int, 0, len(c.spaces)-2)
	for n := range c.spaces {
		if n != int(ns.node) && n != k {
			completionNodes = append(completionNodes, n)
		}
	}

	combo := make([]*nodeState, len(c.spaces))
	combo[ns.node] = ns
	deadlineTick := 0

	// Per-search caches: whether any completion state generates a given
	// message, and the coverage-ordered completion list per (node, missing
	// set). Completion spaces are fixed for the duration of the search.
	coverCache := make(map[codec.Fingerprint]bool)
	coveredByAny := func(fp codec.Fingerprint) bool {
		if v, ok := coverCache[fp]; ok {
			return v
		}
		covered := false
		for _, n := range completionNodes {
			for _, s := range c.spaces[n].states {
				if s.gen.contains(fp) {
					covered = true
					break
				}
			}
			if covered {
				break
			}
		}
		coverCache[fp] = covered
		return covered
	}
	type orderKey struct {
		node int
		miss codec.Fingerprint
	}
	orderCache := make(map[orderKey][]*nodeState)

	for _, b := range cands {
		if c.stopped || budget <= 0 {
			return
		}
		// Examining a candidate costs budget even when the feasibility
		// check refutes it without materializing anything — conflicting
		// groups can hold thousands of members, and the walk must stay
		// within the per-search allowance. Ordering a node's completions by
		// coverage scans that node's whole visited list, so it is charged
		// proportionally below.
		budget--
		if !c.deadline.IsZero() && time.Now().After(c.deadline) {
			c.stopped = true
			return
		}
		combo[k] = b

		// What must the completion nodes supply? Every message the pair's
		// creation paths consume beyond what the pair itself (or the seeded
		// network) generates. Candidates that cannot cover a missing
		// message are tried last; a message nobody can cover refutes this
		// pair outright (modulo alternate-path generation, the same kind of
		// incompleteness the paper's caps accept).
		missing := c.pairMissing(ns, b)
		feasible := true
		for _, fp := range missing {
			if !coveredByAny(fp) {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		missKey := codec.CombineUnordered(missing)
		lists := make([][]*nodeState, len(completionNodes))
		for i, n := range completionNodes {
			key := orderKey{node: n, miss: missKey}
			ordered, ok := orderCache[key]
			if !ok {
				ordered, _ = orderByCoverage(c.spaces[n].states, missing)
				orderCache[key] = ordered
				// A coverage scan touches every visited state of the node.
				budget -= len(ordered) / 64
			}
			lists[i] = ordered
		}
		if budget <= 0 {
			return
		}

		var walk func(i int) bool
		walk = func(i int) bool {
			if c.stopped || budget <= 0 {
				return false
			}
			if i == len(lists) {
				deadlineTick++
				if deadlineTick%256 == 0 && !c.deadline.IsZero() && time.Now().After(c.deadline) {
					c.stopped = true
					return false
				}
				return c.tryWitness(combo, int(ns.node), k, &budget)
			}
			for _, s := range lists[i] {
				combo[completionNodes[i]] = s
				if walk(i + 1) {
					return true
				}
				if c.stopped || budget <= 0 {
					return false
				}
			}
			return false
		}
		if walk(0) {
			return
		}
	}
}

// confirmLocalViolation runs the witness search for a node-local invariant
// violation: the violating state alone is the "pair"; every other node is a
// completion ranged over lazily, ordered by which missing messages its
// creation path can supply.
func (c *checker) confirmLocalViolation(ns *nodeState, v *spec.Violation) {
	cacheKey := witnessKey{fp: ns.fp, node: int(ns.node), group: "local:" + v.Invariant}
	if _, done := c.witnessed[cacheKey]; done {
		return
	}
	c.witnessed[cacheKey] = struct{}{}
	c.res.Stats.SoundnessCalls++
	budget := c.opt.MaxSequencesPerCheck

	completionNodes := make([]int, 0, len(c.spaces)-1)
	for n := range c.spaces {
		if n != int(ns.node) {
			completionNodes = append(completionNodes, n)
		}
	}
	missing := c.missingOf(ns)
	lists := make([][]*nodeState, len(completionNodes))
	for i, n := range completionNodes {
		lists[i], _ = orderByCoverage(c.spaces[n].states, missing)
	}

	combo := make([]*nodeState, len(c.spaces))
	combo[ns.node] = ns
	deadlineTick := 0
	var walk func(i int) bool
	walk = func(i int) bool {
		if c.stopped || budget <= 0 {
			return false
		}
		if i == len(lists) {
			deadlineTick++
			if deadlineTick%256 == 0 && !c.deadline.IsZero() && time.Now().After(c.deadline) {
				c.stopped = true
				return false
			}
			ss := c.comboSystem(combo)
			fp := ss.Fingerprint()
			if verdict, cached := c.verdicts[fp]; cached {
				return verdict && c.reported[fp]
			}
			t0 := time.Now()
			sound, sched := c.witnessSequences(combo, int(ns.node), int(ns.node), &budget)
			c.res.Stats.SoundnessTime += time.Since(t0)
			if sound && !c.opt.DisableReplay {
				rr := trace.ReplayWith(c.m, c.start, c.opt.InitialMessages, sched)
				if rr.Err != nil || rr.Final.Fingerprint() != fp {
					sound = false
				}
			}
			c.verdicts[fp] = sound
			if !sound {
				return false
			}
			c.reported[fp] = true
			c.res.Stats.ConfirmedBugs++
			vv := *v
			vv.System = ss.Clone()
			c.res.Bugs = append(c.res.Bugs, Bug{
				Violation: &vv,
				Schedule:  sched,
				System:    ss.Clone(),
				Depth:     comboDepth(combo),
			})
			if c.opt.StopAtFirstBug {
				c.stopped = true
			}
			return true
		}
		for _, s := range lists[i] {
			combo[completionNodes[i]] = s
			if walk(i + 1) {
				return true
			}
			if c.stopped || budget <= 0 {
				return false
			}
		}
		return false
	}
	walk(0)
}

// pairMissing lists the message fingerprints the creation paths of the two
// pair members consume but neither generates (and the seeded network does
// not supply), counting multiplicities.
func (c *checker) pairMissing(a, b *nodeState) []codec.Fingerprint {
	return c.missingOf(a, b)
}

// missingOf generalizes pairMissing to any member set.
func (c *checker) missingOf(states ...*nodeState) []codec.Fingerprint {
	supply := make(map[codec.Fingerprint]int)
	for _, fp := range c.initialNet {
		supply[fp]++
	}
	var need []codec.Fingerprint
	for _, ns := range states {
		for _, e := range creationPath(ns) {
			if e.kind == model.NetworkEvent {
				need = append(need, e.msgFP)
			}
			for _, g := range e.generated {
				supply[g]++
			}
		}
	}
	var missing []codec.Fingerprint
	seen := make(map[codec.Fingerprint]bool)
	for _, fp := range need {
		if supply[fp] > 0 {
			supply[fp]--
			continue
		}
		if !seen[fp] {
			seen[fp] = true
			missing = append(missing, fp)
		}
	}
	return missing
}

// orderByCoverage buckets states by how many of the missing fingerprints
// their creation path generates: full coverers first, partial next, the
// rest last; discovery order is preserved within each bucket. It also
// reports whether any state covers at least one missing fingerprint.
func orderByCoverage(states []*nodeState, missing []codec.Fingerprint) ([]*nodeState, bool) {
	if len(missing) == 0 {
		return states, true
	}
	var full, partial, zero []*nodeState
	any := false
	for _, s := range states {
		covered := 0
		for _, fp := range missing {
			if s.gen.contains(fp) {
				covered++
			}
		}
		switch {
		case covered == len(missing):
			full = append(full, s)
			any = true
		case covered > 0:
			partial = append(partial, s)
			any = true
		default:
			zero = append(zero, s)
		}
	}
	out := make([]*nodeState, 0, len(states))
	out = append(out, full...)
	out = append(out, partial...)
	out = append(out, zero...)
	return out, any
}

// tryWitness materializes one candidate combination, checks the invariant,
// and — on a preliminary violation — runs the path-enumeration soundness
// check against the shared sequence budget. It reports whether a confirmed
// bug was found.
func (c *checker) tryWitness(combo []*nodeState, pairA, pairB int, budget *int) bool {
	// Every examined combination charges the search budget, so the walk
	// terminates even when soundness verification (the other consumer of
	// the budget) is disabled or cached away.
	*budget--
	ss := c.comboSystem(combo)
	c.res.Stats.SystemStates++
	c.res.Stats.InvariantChecks++
	d := comboDepth(combo)
	if d > c.res.Stats.MaxDepth {
		c.res.Stats.MaxDepth = d
	}
	v := c.opt.Invariant.Check(ss)
	if v == nil {
		return false
	}
	c.res.Stats.PreliminaryViolations++
	if c.opt.DisableSoundness {
		return false
	}
	fp := ss.Fingerprint()
	if verdict, cached := c.verdicts[fp]; cached {
		return verdict && c.reported[fp]
	}
	t0 := time.Now()
	sound, sched := c.witnessSequences(combo, pairA, pairB, budget)
	c.res.Stats.SoundnessTime += time.Since(t0)
	if sound && !c.opt.DisableReplay {
		rr := trace.ReplayWith(c.m, c.start, c.opt.InitialMessages, sched)
		if rr.Err != nil || rr.Final.Fingerprint() != fp {
			sound = false
		}
	}
	c.verdicts[fp] = sound
	if !sound {
		return false
	}
	c.reported[fp] = true
	c.res.Stats.ConfirmedBugs++
	c.res.Bugs = append(c.res.Bugs, Bug{
		Violation: v,
		Schedule:  sched,
		System:    ss.Clone(),
		Depth:     d,
	})
	if c.opt.StopAtFirstBug {
		c.stopped = true
	}
	return true
}

// comboConflicts reports whether some pair of interesting members of the
// combination conflicts under the reduction.
func (c *checker) comboConflicts(combo []*nodeState) bool {
	for i := 0; i < len(combo); i++ {
		if !combo[i].interesting {
			continue
		}
		for j := i + 1; j < len(combo); j++ {
			if !combo[j].interesting {
				continue
			}
			if c.opt.Reduction.Conflict(combo[i].interest, combo[j].interest) {
				return true
			}
		}
	}
	return false
}

// forEachCombo enumerates the Cartesian product of lists, applying the
// admit filter (nil admits everything), materializing each admitted
// combination as a system state and checking the invariant. Preliminary
// violations are then confirmed sequentially. When the product is large and
// Options.Workers allows, invariant evaluation fans out across goroutines
// (§1: "the model checking process can be embarrassingly parallelized").
func (c *checker) forEachCombo(lists [][]*nodeState, admit func([]*nodeState) bool) {
	total := 1
	for _, l := range lists {
		total *= len(l)
		if total == 0 {
			return
		}
	}

	type prelim struct {
		combo []*nodeState
		v     *spec.Violation
	}
	var found []prelim
	var mu sync.Mutex
	var halt atomic.Bool
	if c.stopped {
		return
	}
	var sinceDeadlineCheck atomic.Int64

	workers := c.opt.Workers
	parallel := workers >= 2 && total >= parallelThreshold

	examine := func(combo []*nodeState) {
		if halt.Load() {
			return
		}
		// The system-state phase can dominate a run (Figure 13), so the
		// wall-clock budget must be enforced here too, not only between
		// handler executions.
		if !c.deadline.IsZero() && sinceDeadlineCheck.Add(1)%1024 == 0 &&
			time.Now().After(c.deadline) {
			halt.Store(true)
			return
		}
		if c.opt.MaxSystemDepth > 0 && comboDepth(combo) > c.opt.MaxSystemDepth {
			return
		}
		if admit != nil && !admit(combo) {
			return
		}
		ss := c.comboSystem(combo)
		v := c.opt.Invariant.Check(ss)
		mu.Lock()
		c.res.Stats.SystemStates++
		c.res.Stats.InvariantChecks++
		d := comboDepth(combo)
		if d > c.res.Stats.MaxDepth {
			c.res.Stats.MaxDepth = d
		}
		if v != nil {
			c.res.Stats.PreliminaryViolations++
			if !parallel {
				// Confirm inline: waiting for the full product to finish
				// could starve soundness verification of the entire budget
				// when conflicting groups are large.
				mu.Unlock()
				c.confirmAndReport(combo, v)
				if c.stopped {
					halt.Store(true)
				}
				return
			}
			cp := make([]*nodeState, len(combo))
			copy(cp, combo)
			found = append(found, prelim{combo: cp, v: v})
		}
		mu.Unlock()
	}

	if !parallel {
		combo := make([]*nodeState, len(lists))
		c.enumerate(lists, 0, combo, examine, &halt)
	} else {
		c.enumerateParallel(lists, workers, examine, &halt)
	}
	if halt.Load() && !c.deadline.IsZero() && time.Now().After(c.deadline) {
		c.stopped = true
	}

	for _, p := range found {
		if c.stopped {
			return
		}
		c.confirmAndReport(p.combo, p.v)
	}
}

// enumerate walks the Cartesian product recursively (sequential path).
func (c *checker) enumerate(lists [][]*nodeState, i int, combo []*nodeState, fn func([]*nodeState), halt *atomic.Bool) {
	if halt.Load() {
		return
	}
	if i == len(lists) {
		fn(combo)
		return
	}
	for _, s := range lists[i] {
		combo[i] = s
		c.enumerate(lists, i+1, combo, fn, halt)
	}
}

// enumerateParallel splits the product along the largest dimension across a
// worker pool. Node states are immutable once stored, so workers only need
// synchronization when recording results (handled by the caller's mutex).
func (c *checker) enumerateParallel(lists [][]*nodeState, workers int, fn func([]*nodeState), halt *atomic.Bool) {
	// Split on the widest list to get balanced chunks.
	widest := 0
	for i, l := range lists {
		if len(l) > len(lists[widest]) {
			widest = i
		}
	}
	items := lists[widest]
	chunk := (len(items) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(items) {
			break
		}
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		wg.Add(1)
		go func(part []*nodeState) {
			defer wg.Done()
			sub := make([][]*nodeState, len(lists))
			copy(sub, lists)
			sub[widest] = part
			combo := make([]*nodeState, len(lists))
			c.enumerate(sub, 0, combo, fn, halt)
		}(items[lo:hi])
	}
	wg.Wait()
}

// comboSystem materializes the temporary system state for a combination.
func (c *checker) comboSystem(combo []*nodeState) model.SystemState {
	ss := make(model.SystemState, len(combo))
	for i, ns := range combo {
		ss[i] = ns.state
	}
	return ss
}

// comboDepth is the total depth of a combination: the sum of member path
// lengths, the depth axis of the paper's LMC plots.
func comboDepth(combo []*nodeState) int {
	d := 0
	for _, ns := range combo {
		d += ns.depth
	}
	return d
}

// confirmAndReport runs the a-posteriori soundness verification on a
// preliminary violation and, if the system state is confirmed valid,
// reports the bug with its realizing schedule (Figure 9 lines 19–21).
func (c *checker) confirmAndReport(combo []*nodeState, v *spec.Violation) {
	ss := c.comboSystem(combo)
	fp := ss.Fingerprint()
	if c.reported[fp] {
		return
	}
	if c.opt.DisableSoundness {
		// Figure 13's "LMC-system-state" configuration: the preliminary
		// violation is counted but never confirmed or reported.
		return
	}
	if verdict, cached := c.verdicts[fp]; cached {
		// Sound verdicts are reported immediately when first computed, so a
		// cache hit of either polarity means there is nothing left to do.
		_ = verdict
		return
	}

	c.res.Stats.SoundnessCalls++
	t0 := time.Now()
	sound, sched := c.isStateSound(combo)
	c.res.Stats.SoundnessTime += time.Since(t0)

	if sound && !c.opt.DisableReplay {
		// Final defense: replay the schedule on the real handlers with the
		// real message-consuming network and confirm it reproduces the
		// violating system state.
		rr := trace.ReplayWith(c.m, c.start, c.opt.InitialMessages, sched)
		if rr.Err != nil || rr.Final.Fingerprint() != fp {
			sound = false
		}
	}
	c.verdicts[fp] = sound
	if !sound {
		return
	}

	c.reported[fp] = true
	c.res.Stats.ConfirmedBugs++
	c.res.Bugs = append(c.res.Bugs, Bug{
		Violation: v,
		Schedule:  sched,
		System:    ss.Clone(),
		Depth:     comboDepth(combo),
	})
	if c.opt.StopAtFirstBug {
		c.stopped = true
	}
}
