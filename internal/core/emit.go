package core

import (
	"time"

	"lmc/internal/obs"
	"lmc/internal/stats"
)

// emitter is the local checker's side of the run-event layer. All emission
// happens on the sequential merge goroutine, at the structural barriers the
// engine already has (round merges, pass boundaries, run end): events
// produced since the previous barrier are derived from counter deltas,
// buffered, and flushed in one batch. Workers never see the observer, so an
// active observer cannot perturb parallel determinism, and a nil observer
// reduces every emitter method to a single branch.
type emitter struct {
	o     obs.Observer
	begin time.Time

	// every is the heartbeat interval (<= 0 disables); nextBeat the elapsed
	// time at which the next heartbeat is due.
	every    time.Duration
	nextBeat time.Duration

	pass, round int

	// last is the counter snapshot at the previous barrier; lastBugs the
	// confirmed-bug count already reported. Deltas between barriers become
	// the batch events.
	last     stats.Counters
	lastBugs int

	buf []obs.Event
}

// newEmitter resolves the heartbeat default: one second when an observer is
// attached, disabled otherwise or when every is negative.
func newEmitter(o obs.Observer, every time.Duration, begin time.Time) emitter {
	e := emitter{o: o, begin: begin}
	if o != nil {
		switch {
		case every > 0:
			e.every = every
		case every == 0:
			e.every = time.Second
		}
		e.nextBeat = e.every
	}
	return e
}

func (e *emitter) active() bool { return e.o != nil }

// push buffers one event, stamping the shared coordinates.
func (e *emitter) push(ev obs.Event) {
	ev.Checker = "lmc"
	ev.Elapsed = time.Since(e.begin)
	ev.Pass = e.pass
	ev.Round = e.round
	e.buf = append(e.buf, ev)
}

// flush delivers the buffered batch, in order.
func (e *emitter) flush() {
	for i := range e.buf {
		e.o.OnEvent(e.buf[i])
	}
	e.buf = e.buf[:0]
}

func (e *emitter) runStart() {
	if !e.active() {
		return
	}
	e.push(obs.Event{Kind: obs.KindRunStart})
	e.flush()
}

func (e *emitter) passStart(pass, localBound int) {
	e.pass = pass
	e.round = 0
	if !e.active() {
		return
	}
	e.push(obs.Event{Kind: obs.KindPassStart, LocalBound: localBound})
	e.flush()
}

func (e *emitter) roundStart() {
	e.round++
	if !e.active() {
		return
	}
	e.push(obs.Event{Kind: obs.KindRoundStart})
}

// barrier emits everything that happened since the previous barrier —
// system-state batches, soundness calls, preliminary violations, newly
// confirmed violations — plus, when roundEnd is set, the round-end marker,
// and a heartbeat when one is due. It then flushes the whole buffer.
func (e *emitter) barrier(res *Result, probe *stats.MemProbe, roundEnd bool) {
	if !e.active() {
		return
	}
	cur := res.Stats
	if d := cur.SystemStates - e.last.SystemStates; d > 0 {
		e.push(obs.Event{
			Kind:   obs.KindSystemStates,
			Count:  d,
			Phases: obs.PhaseTimes{SystemStates: cur.SystemStateTime - e.last.SystemStateTime},
		})
	}
	if d := cur.SoundnessCalls - e.last.SoundnessCalls; d > 0 || cur.SequencesChecked > e.last.SequencesChecked {
		e.push(obs.Event{
			Kind:      obs.KindSoundness,
			Count:     d,
			Sequences: cur.SequencesChecked - e.last.SequencesChecked,
			Phases:    obs.PhaseTimes{Soundness: cur.SoundnessTime - e.last.SoundnessTime},
		})
	}
	if d := cur.PreliminaryViolations - e.last.PreliminaryViolations; d > 0 {
		e.push(obs.Event{Kind: obs.KindPrelimViolations, Count: d})
	}
	for _, b := range res.Bugs[e.lastBugs:] {
		e.push(obs.Event{
			Kind:      obs.KindViolation,
			Invariant: b.Violation.Invariant,
			Detail:    b.Violation.Detail,
			Depth:     b.Depth,
		})
	}
	e.lastBugs = len(res.Bugs)
	if roundEnd {
		e.push(obs.Event{Kind: obs.KindRoundEnd, Depth: cur.MaxDepth, Count: cur.NodeStates})
	}
	e.last = cur

	if e.every > 0 {
		if el := time.Since(e.begin); el >= e.nextBeat {
			e.heartbeat(cur, probe, el)
			e.nextBeat = el + e.every
		}
	}
	e.flush()
}

func (e *emitter) heartbeat(cur stats.Counters, probe *stats.MemProbe, el time.Duration) {
	cur.Elapsed = el
	e.push(obs.Event{
		Kind:      obs.KindHeartbeat,
		Counters:  cur,
		HeapBytes: probe.Sample(),
		Phases:    obs.Attribution(&cur, el),
	})
}

// shardRound buffers one shard's per-round record contribution; it is
// flushed with the rest of the round's batch at the merge barrier.
func (e *emitter) shardRound(shard, shards, records int) {
	if !e.active() {
		return
	}
	e.push(obs.Event{Kind: obs.KindShardRound, Shard: shard, Shards: shards, Count: records})
}

// checkpoint buffers the round's checkpoint event (records captured, or the
// sink error that disabled checkpointing); flushed with the round's batch.
func (e *emitter) checkpoint(records int, detail string) {
	if !e.active() {
		return
	}
	e.push(obs.Event{Kind: obs.KindCheckpoint, Count: records, Detail: detail})
}

// resume buffers a resume event: a round primed with stored records, or —
// with a non-empty detail — a digest divergence against the checkpoint.
func (e *emitter) resume(records int, detail string) {
	if !e.active() {
		return
	}
	e.push(obs.Event{Kind: obs.KindResume, Count: records, Detail: detail})
}

// shardDegraded reports the fall back from sharded to in-process
// exploration. It flushes immediately — degradation can happen right before
// a long in-process round, and the operator should see it now.
func (e *emitter) shardDegraded(shard, shards int, detail string) {
	if !e.active() {
		return
	}
	e.push(obs.Event{Kind: obs.KindShardDegraded, Shard: shard, Shards: shards, Detail: detail})
	e.flush()
}

// runEnd emits any leftover deltas (the fixpoint drain runs after the last
// round barrier) and the final run-end event. res.Stats.Elapsed must
// already be set.
func (e *emitter) runEnd(res *Result, probe *stats.MemProbe) {
	if !e.active() {
		return
	}
	e.barrier(res, probe, false)
	cur := res.Stats
	e.push(obs.Event{
		Kind:     obs.KindRunEnd,
		Reason:   res.StopReason,
		Depth:    cur.MaxDepth,
		Counters: cur,
		Phases:   obs.Attribution(&cur, cur.Elapsed),
	})
	e.flush()
}
