package core

import (
	"testing"

	"lmc/internal/model"
	"lmc/internal/protocols/tree"
	"lmc/internal/spec"
	"lmc/internal/trace"
)

// TestSoundnessConfirmsValidState uses an invariant that a perfectly valid
// run violates ("the target never receives"): LMC must confirm the
// violation and produce a replayable schedule.
func TestSoundnessConfirmsValidState(t *testing.T) {
	m := tree.NewPaperTree()
	inv := spec.InvariantFunc{
		InvName: "target-never-receives",
		Fn: func(ss model.SystemState) *spec.Violation {
			st := ss[4].(*tree.State)
			if st.St == tree.Received {
				return spec.Violate("target-never-receives", ss, "target received")
			}
			return nil
		},
	}
	res := Check(m, model.InitialSystem(m), Options{Invariant: inv, StopAtFirstBug: true})
	t.Logf("stats: %s", res.Stats.String())
	if len(res.Bugs) == 0 {
		t.Fatalf("no confirmed bug; prelim=%d soundness=%d",
			res.Stats.PreliminaryViolations, res.Stats.SoundnessCalls)
	}
	bug := res.Bugs[0]
	t.Logf("schedule:\n%s", bug.Schedule)
	rr := trace.Replay(m, model.InitialSystem(m), bug.Schedule)
	if rr.Err != nil {
		t.Fatalf("schedule does not replay: %v", rr.Err)
	}
}
