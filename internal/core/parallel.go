package core

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/netstate"
	"lmc/internal/obs"
)

// nodeRun is one node's share of one exploration phase, accumulated
// privately by its worker goroutine and merged at the round barrier. A
// worker touches only its own LS set (states, history chains, predecessor
// edges), its own localExecuted slot, and — in the delivery phase — the
// Applied counters of entries destined to its node, so phase workers never
// contend; everything that must interleave deterministically (network
// appends, stats, invariant checks) is buffered here and replayed at the
// barrier in the canonical sequential order.
type nodeRun struct {
	c    *checker
	node int

	// halt is the shared cross-worker stop flag of a parallel phase (only
	// the wall-clock deadline can raise it mid-phase); nil in canonical
	// mode, where the checker's global stop criteria apply directly.
	halt *atomic.Bool

	// emits are the emission batches in execution order; news the node
	// states discovered this phase, in discovery order. entry tags carry
	// the producing network-entry index in the delivery phase (-1 for
	// internal events), which is what the barrier sorts by.
	emits []emitBatch
	news  []discovery
	// recs are the delivery records captured for the round checkpoint
	// (checkpoint.go); entry-ascending by construction, empty unless a
	// CheckpointSink armed the capture.
	recs []DeliveryRecord

	// Stats deltas, merged into Result.Stats at the barrier. transitions
	// stays zero in canonical mode (chargeTransition charges the global
	// counter directly there).
	transitions int
	rejections  int
	maxDepth    int

	ran        bool // an action handler executed (phase A progress)
	advanced   bool // an Applied prefix advanced (phase B progress)
	suppressed bool // the local bound suppressed an action

	// delivered counts this node's message-handler executions this round,
	// against the checker's round delivery cap.
	delivered int

	deadlineTick int
}

// capped reports whether this node has exhausted its per-round delivery
// budget; the sweep pauses and resumes from the Applied prefixes next round.
func (r *nodeRun) capped() bool {
	return r.c.roundCap > 0 && r.delivered >= r.c.roundCap
}

// emitBatch is one handler execution's emitted messages, with their
// fingerprints (hashed once at the handler; the barrier's network merge
// reuses them instead of re-hashing). A batch minted from a trusted shard
// record carries fingerprints only: msgs is nil and lazy holds what the
// merge needs to materialize the real messages, which it does only when the
// network would still admit one of them (mergeEmit).
type emitBatch struct {
	entry int // producing network-entry index; -1 for internal events
	msgs  []model.Message
	fps   []codec.Fingerprint
	lazy  *lazyEmit
}

// lazyEmit is the deferred re-execution closure of a fingerprint-only
// emission batch: the parent state and the message (or internal action,
// when isAct is set) whose handler produced it. Node states are immutable
// once visited, so holding the state is safe.
type lazyEmit struct {
	node  model.NodeID
	state model.State
	msg   model.Message
	act   model.Action
	isAct bool
}

// discovery is one newly visited node state awaiting its deferred
// invariant checks.
type discovery struct {
	ns    *nodeState
	entry int // producing network-entry index; -1 for internal events
}

// halted reports whether the phase must stop promptly: the shared halt flag
// in parallel mode, the checker's stop flag in canonical mode.
func (r *nodeRun) halted() bool {
	if r.halt != nil {
		return r.halt.Load()
	}
	return r.c.stopped
}

// charge accounts for one handler execution. Canonical mode charges the
// global counters so MaxTransitions truncates exactly like a sequential
// run; parallel mode (only entered with MaxTransitions unset) counts
// locally and polls the wall-clock deadline on the shared cadence.
func (r *nodeRun) charge() bool {
	if r.halt == nil {
		return r.c.chargeTransition()
	}
	if r.halt.Load() {
		return false
	}
	if r.c.pollDeadline(&r.deadlineTick) {
		r.halt.Store(true)
		return false
	}
	r.transitions++
	return true
}

// sweepActions is the internal-events sweep of one node: execute the
// enabled actions of every unprocessed state, including states discovered
// during the sweep itself (the list grows while iterating).
func (r *nodeRun) sweepActions() {
	c := r.c
	sp := c.spaces[r.node]
	for i := 0; i < len(sp.states); i++ {
		ns := sp.states[i]
		if ns.actionsDone || r.halted() {
			continue
		}
		ns.actionsDone = true
		if c.opt.MaxPathDepth > 0 && ns.depth >= c.opt.MaxPathDepth {
			continue
		}
		if r.runActions(ns) {
			r.ran = true
		}
	}
}

// runActions executes the internal actions enabled at s, subject to the
// per-node, per-pass local-event budget of §4.2. It reports whether any
// handler ran. On a sharded coordinator an ActionRecord shipped by the
// owning worker stands in for the execution (after the canonical charge):
// a recorded rejection or duplicate successor costs no handler call at
// all. On a worker replica the execution additionally captures a record
// when this replica owns the parent's fingerprint range.
func (r *nodeRun) runActions(s *nodeState) bool {
	c := r.c
	acts := c.m.Actions(s.node, s.state)
	if len(acts) == 0 {
		return false
	}
	ran := false
	for ai, a := range acts {
		if r.halted() {
			break
		}
		if c.localExecuted[s.node] >= c.localBound {
			s.suppressed = true
			r.suppressed = true
			break
		}
		if !r.charge() {
			break
		}
		c.localExecuted[s.node]++
		if rec := c.shardAct(int(s.node), s.fp, ai); rec != nil {
			ran = true
			if rec.Rejected {
				r.rejections++
				continue
			}
			if existing := c.spaces[s.node].lookup(rec.Succ); existing != nil {
				// Sequential addNext buffers the emissions before the
				// duplicate lookup, so the record's emission fingerprints
				// must enter the merge even though the successor is known;
				// they materialize lazily only if the network would admit
				// one (mergeEmit).
				ev := model.ActEvent(a)
				if len(rec.Emitted) > 0 {
					r.emits = append(r.emits, emitBatch{entry: -1, fps: rec.Emitted,
						lazy: &lazyEmit{node: s.node, state: s.state, act: a, isAct: true}})
				}
				c.addPred(existing, pred{
					prev:      s,
					kind:      ev.Kind,
					event:     ev,
					eventFP:   ev.Fingerprint(),
					generated: rec.Emitted,
				})
				continue
			}
			// New successor: the walk needs the real objects — one inline
			// execution, exactly what an unsharded run pays.
		}
		next, emitted := c.m.HandleAction(s.node, s.state.Clone(), a)
		ran = true
		if next == nil {
			r.rejections++
			if c.capOwned(s.fp) && !c.capActsOff {
				c.capActs = append(c.capActs, ActionRecord{
					Node: int(s.node), Parent: s.fp, Action: ai, Rejected: true})
			}
			continue
		}
		ev := model.ActEvent(a)
		fp, generated, _ := r.addNext(s, ev, ev.Fingerprint(), 0, next, emitted, 0, -1)
		if c.capOwned(s.fp) && !c.capActsOff {
			c.capActs = append(c.capActs, ActionRecord{
				Node: int(s.node), Parent: s.fp, Action: ai, Succ: fp, Emitted: generated})
		}
	}
	return ran
}

// sweepDeliveries is the network-events sweep of one node: every epoch
// entry destined here executes on every visited state past its Applied
// prefix. Entries are processed in index order, so the per-node buffers
// come out pre-sorted by entry tag.
func (r *nodeRun) sweepDeliveries(ep netstate.Epoch) {
	c := r.c
	sp := c.spaces[r.node]
	for i := 0; i < ep.Len(); i++ {
		if r.halted() || r.capped() {
			return
		}
		e := ep.Entry(i)
		if int(e.Msg.Dst()) != r.node {
			continue
		}
		r.deliverEntry(e, i, sp)
	}
}

// deliverEntry executes one entry on every uncovered state of its
// destination node and advances the Applied prefix. A delivery-cap pause
// records the exact resume position; a halt (stop criterion) covers the
// whole prefix like the sequential algorithm, whose pass ends there anyway.
func (r *nodeRun) deliverEntry(e *netstate.Entry, i int, sp *space) {
	limit := len(sp.states)
	j := e.Applied
	for ; j < limit; j++ {
		if r.halted() {
			break
		}
		if r.capped() {
			if j > e.Applied {
				e.Applied = j
				r.advanced = true
			}
			return
		}
		r.deliver(e, sp.states[j], i)
	}
	if e.Applied < limit {
		e.Applied = limit
		r.advanced = true
	}
}

// deliver executes message entry e's handler on node state s, unless the
// message is already in s's history.
func (r *nodeRun) deliver(e *netstate.Entry, s *nodeState, entry int) {
	c := r.c
	if c.opt.MaxPathDepth > 0 && s.depth >= c.opt.MaxPathDepth {
		return
	}
	evfp := e.EventFingerprint()
	if s.history.contains(evfp) {
		return
	}
	if !r.charge() {
		return
	}
	r.delivered++
	if rec := c.shardRec(entry, s.fp); rec != nil {
		r.deliverRecorded(e, s, entry, rec, evfp)
		return
	}
	next, emitted := c.m.HandleMessage(s.node, s.state.Clone(), e.Msg)
	if next == nil {
		r.rejections++
		// A worker replica records owned rejections too: the trusted
		// rejection saves the coordinator the whole handler call.
		if c.capOwned(s.fp) {
			c.capDels = append(c.capDels, DeliveryRecord{Entry: entry, Parent: s.fp, Rejected: true})
		}
		return
	}
	ev := model.RecvEvent(e.Msg)
	// The receive event is identical for every state this entry executes
	// on; memoize its fingerprint on the entry (owned by this worker, like
	// Applied) instead of re-hashing the message per execution.
	if e.RecvEventFP == 0 {
		e.RecvEventFP = ev.Fingerprint()
	}
	fp, generated, fresh := r.addNext(s, ev, e.RecvEventFP, evfp, next, emitted, e.FP, entry)
	// Checkpoint only the deliveries that discovered a state: records are
	// hints, and a rejected or duplicate-successor delivery re-derives
	// itself bit-for-bit when a resumed walk executes it inline, so those
	// records would buy resume speed at a ~7x capture/encode/write cost.
	if fresh {
		r.capture(DeliveryRecord{Entry: entry, Parent: s.fp, Succ: fp, Emitted: generated})
	}
	// Shard capture is the opposite trade: ~85% of deliveries land on
	// already-visited successors, and those records are exactly the ones
	// that let the coordinator skip the handler call entirely, so a worker
	// records every owned pair.
	if c.capOwned(s.fp) {
		c.capDels = append(c.capDels, DeliveryRecord{Entry: entry, Parent: s.fp, Succ: fp, Emitted: generated})
	}
}

// deliverRecorded resolves one delivery pair from its shard record instead
// of executing the handler. Three cases, in decreasing savings: a rejection
// is trusted outright; a successor already in the visited set resolves to a
// predecessor edge plus a fingerprint-only (lazy) emission batch, with no
// execution at all; a new successor is materialized by one inline
// re-execution — exactly what an unsharded run pays for the pair. The
// transition was already charged by deliver — exactly the sequential
// charge for this pair — so counters match the unsharded run bit-for-bit.
func (r *nodeRun) deliverRecorded(e *netstate.Entry, s *nodeState, entry int,
	rec *DeliveryRecord, evfp codec.Fingerprint) {

	c := r.c
	if rec.Rejected {
		r.rejections++
		return
	}
	ev := model.RecvEvent(e.Msg)
	if e.RecvEventFP == 0 {
		e.RecvEventFP = ev.Fingerprint()
	}
	if existing := c.spaces[s.node].lookup(rec.Succ); existing != nil {
		// Sequential addNext buffers the emissions before the duplicate
		// lookup, so the record's emission fingerprints must enter the merge
		// even though the successor is already known.
		if len(rec.Emitted) > 0 {
			r.emits = append(r.emits, emitBatch{entry: entry, fps: rec.Emitted,
				lazy: &lazyEmit{node: s.node, state: s.state, msg: e.Msg}})
		}
		c.addPred(existing, pred{
			prev:      s,
			kind:      ev.Kind,
			event:     ev,
			eventFP:   e.RecvEventFP,
			msgFP:     e.FP,
			generated: rec.Emitted,
		})
		return
	}
	// New successor: the walk needs the real objects.
	next, emitted := c.m.HandleMessage(s.node, s.state.Clone(), e.Msg)
	if next == nil {
		// Contradicts the record; trust the local execution (the digest
		// exchange will catch a replica that trusted the record instead).
		r.rejections++
		return
	}
	fp, generated, fresh := r.addNext(s, ev, e.RecvEventFP, evfp, next, emitted, e.FP, entry)
	if fresh {
		r.capture(DeliveryRecord{Entry: entry, Parent: s.fp, Succ: fp, Emitted: generated})
	}
}

// addNext is Procedure addNextState of Figure 9, split around the round
// barrier: the successor joins LSn (and records its predecessor edge)
// immediately — the worker owns its node's space — while the generated
// messages and the deferred invariant checks are buffered for the barrier.
// evFP is ev's fingerprint (hashed once by the caller); historyFP the
// delivery-event fingerprint for network events (zero for internal
// events); msgFP the consumed message's content fingerprint; entry the
// producing network-entry index (-1 for internal events). It returns the
// successor's state fingerprint and the generated-message fingerprints —
// both computed here anyway, so the delivery walk's checkpoint capture
// never re-hashes — plus whether the successor was first visited here,
// which is what decides if the delivery is worth a checkpoint record.
func (r *nodeRun) addNext(prev *nodeState, ev model.Event, evFP, historyFP codec.Fingerprint,
	next model.State, emitted []model.Message, msgFP codec.Fingerprint, entry int) (codec.Fingerprint, []codec.Fingerprint, bool) {

	c := r.c
	generated := make([]codec.Fingerprint, len(emitted))
	for i, m := range emitted {
		generated[i] = model.MessageFingerprint(m)
	}
	if len(emitted) > 0 {
		r.emits = append(r.emits, emitBatch{entry: entry, msgs: emitted, fps: generated})
	}

	fp := model.StateFingerprint(next)
	sp := c.spaces[prev.node]
	edge := pred{
		prev:      prev,
		kind:      ev.Kind,
		event:     ev,
		eventFP:   evFP,
		msgFP:     msgFP,
		generated: generated,
	}

	if existing := sp.lookup(fp); existing != nil {
		// The state exists: only a predecessor pointer is added (the paper
		// keeps all immediate predecessors). The history rule (i) of §4.2
		// is deliberately not applied to existing states, matching the
		// paper's simplification.
		c.addPred(existing, edge)
		return fp, generated, false
	}

	ns := &nodeState{
		node:    prev.node,
		state:   next,
		fp:      fp,
		depth:   prev.depth + 1,
		history: prev.history,
		preds:   []pred{edge},
	}
	if ev.Kind == model.NetworkEvent {
		ns.history = &historyNode{parent: prev.history, fp: historyFP}
	}
	ns.gen = prev.gen
	if len(generated) > 0 {
		ns.gen = &genNode{parent: prev.gen, fps: generated}
	}
	// The flow memo extends the predecessor's by this edge's delta; prev is
	// either a start state or an earlier discovery of this node, so its
	// memo is already built (flowOf re-derives it otherwise).
	var scratch [8]flowEntry
	ns.flow = mergeFlows(flowOf(prev), edgeFlow(&edge, scratch[:]))
	ns.flowDone = true
	c.project(ns)
	sp.add(ns)
	if c.keyer != nil {
		sp.classify(ns, c.keyer)
	}
	if ns.depth > r.maxDepth {
		r.maxDepth = ns.depth
	}
	r.news = append(r.news, discovery{ns: ns, entry: entry})
	return fp, generated, true
}

// runActionPhase executes the internal-events half of a round. In parallel
// mode every node sweeps on its own worker; in canonical mode the sweeps
// run inline in node order, exactly like the sequential algorithm.
func (c *checker) runActionPhase(parallel bool) []*nodeRun {
	runs := c.newRuns(parallel)
	if !parallel {
		for _, r := range runs {
			if c.stopped {
				break
			}
			r.sweepActions()
		}
		return runs
	}
	c.eachRunParallel(runs, func(r *nodeRun) { r.sweepActions() })
	return runs
}

// runDeliveryPhase executes the network-events half of a round against one
// epoch snapshot. Parallel mode partitions entries by destination across
// node workers; canonical mode interleaves entries in index order — the
// exact sequential charging order, which matters when MaxTransitions
// truncates mid-phase.
func (c *checker) runDeliveryPhase(parallel bool) []*nodeRun {
	ep := c.net.Epoch()
	runs := c.newRuns(parallel)
	c.armRecBufs(runs)
	if !parallel {
		for i := 0; i < ep.Len() && !c.stopped; i++ {
			e := ep.Entry(i)
			dst := int(e.Msg.Dst())
			if dst < 0 || dst >= len(runs) || runs[dst].capped() {
				continue
			}
			runs[dst].deliverEntry(e, i, c.spaces[dst])
		}
		return runs
	}
	c.eachRunParallel(runs, func(r *nodeRun) { r.sweepDeliveries(ep) })
	return runs
}

// newRuns allocates the per-node runs for one phase; parallel runs share a
// halt flag.
func (c *checker) newRuns(parallel bool) []*nodeRun {
	var halt *atomic.Bool
	if parallel {
		halt = new(atomic.Bool)
	}
	runs := make([]*nodeRun, len(c.spaces))
	for n := range runs {
		runs[n] = &nodeRun{c: c, node: n, halt: halt}
	}
	return runs
}

// eachRunParallel fans the per-node work out across the worker pool and
// waits for the phase barrier. A deadline halt raised by any worker stops
// the whole run.
func (c *checker) eachRunParallel(runs []*nodeRun, work func(*nodeRun)) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.workers)
	for _, r := range runs {
		wg.Add(1)
		sem <- struct{}{}
		go func(r *nodeRun) {
			defer wg.Done()
			work(r)
			<-sem
		}(r)
	}
	wg.Wait()
	if len(runs) > 0 && runs[0].halt != nil && runs[0].halt.Load() {
		c.stop(obs.StopBudget)
	}
}

// absorbRun folds one run's stats deltas into the result.
func (c *checker) absorbRun(r *nodeRun) {
	c.res.Stats.Transitions += r.transitions
	c.res.Stats.Rejections += r.rejections
	c.res.Stats.NodeStates += len(r.news)
	if r.maxDepth > c.res.Stats.MaxDepth {
		c.res.Stats.MaxDepth = r.maxDepth
	}
	if r.suppressed {
		c.passSuppressed = true
	}
}

// mergeActionPhase is the barrier after the internal-events phase:
// emissions enter I+ in node order — the order the sequential sweep
// produces them, so entry indexes and duplicate drops are identical for
// every worker count — and the deferred checks run in the same canonical
// order. A discovery by node n is checked against the prefix view in which
// nodes k < n have finished their sweeps and nodes k > n have not, which is
// exactly what the sequential interleaving exposes at that moment.
func (c *checker) mergeActionPhase(runs []*nodeRun) bool {
	progress := false
	for _, r := range runs {
		for _, b := range r.emits {
			c.mergeEmit(b)
		}
		c.absorbRun(r)
		if r.ran {
			progress = true
		}
	}

	pre := c.phaseStarts(runs)
	defer c.suspendStop()()
	for n, r := range runs {
		if len(r.news) == 0 {
			continue
		}
		view := make([]int, len(runs))
		for k := range view {
			view[k] = pre[k]
			if k <= n {
				view[k] += len(runs[k].news)
			}
		}
		for _, d := range r.news {
			if c.stopped {
				return progress
			}
			c.checkDiscovery(d.ns, view)
		}
	}
	return progress
}

// suspendStop prepares the barrier's deferred checks to run after an
// exploration stop (transition cap or deadline) fired mid-phase: in the
// sequential algorithm every discovery is charged before the cap and
// checked immediately, so its checks always start un-stopped. The stop flag
// is cleared for the duration of the checks and re-asserted by the returned
// restore func; a stop raised by the checks themselves (a confirmed
// first bug, or the deadline observed inside a check) still halts the
// remaining checks through c.stopped as usual.
func (c *checker) suspendStop() func() {
	explorationStopped, explorationReason := c.stopped, c.reason
	c.stopped = false
	return func() {
		if explorationStopped && !c.stopped {
			// In the sequential interleaving these checks all ran before the
			// exploration stop was observed, so a stop the checks raised
			// themselves keeps its own reason; otherwise the suspended
			// exploration stop is re-asserted with its original reason.
			c.stopped = true
			c.reason = explorationReason
		}
	}
}

// mergeDeliveryPhase is the barrier after the network-events phase. The
// sequential sweep interleaves nodes entry by entry, so both the emissions
// and the deferred checks are replayed in ascending entry order (within an
// entry, per-node execution order is already correct; entries have a single
// destination, so cross-node ties cannot occur). The prefix view of a
// discovery from entry i exposes every node's discoveries from entries
// before i and nothing later.
func (c *checker) mergeDeliveryPhase(runs []*nodeRun) bool {
	progress := false
	for _, r := range runs {
		c.absorbRun(r)
		if r.advanced {
			progress = true
		}
	}

	// Emissions, ascending by producing entry.
	var emits []emitBatch
	for _, r := range runs {
		emits = append(emits, r.emits...)
	}
	sort.SliceStable(emits, func(i, j int) bool { return emits[i].entry < emits[j].entry })
	for _, b := range emits {
		c.mergeEmit(b)
	}

	// Discoveries, ascending by producing entry, checked group-by-group
	// with running per-node counts: a check for a discovery from entry i
	// sees all discoveries from entries i' < i.
	type tagged struct {
		discovery
		node int
	}
	var all []tagged
	for n, r := range runs {
		for _, d := range r.news {
			all = append(all, tagged{discovery: d, node: n})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].entry < all[j].entry })

	pre := c.phaseStarts(runs)
	counts := make([]int, len(runs))
	defer c.suspendStop()()
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].entry == all[i].entry {
			j++
		}
		view := make([]int, len(runs))
		for k := range view {
			view[k] = pre[k] + counts[k]
		}
		// The group's own discoveries are all on one node, whose list never
		// participates in its own checks; expose it fully for uniformity.
		view[all[i].node] += j - i
		for g := i; g < j; g++ {
			if c.stopped {
				return progress
			}
			c.checkDiscovery(all[g].ns, view)
		}
		counts[all[i].node] += j - i
		i = j
	}
	return progress
}

// mergeEmit appends one emission batch to I+. A materialized batch adds its
// messages directly. A fingerprint-only batch (from a trusted shard record)
// is resolved lazily: if the network would drop every emitted fingerprint as
// a duplicate anyway, the whole batch is accounted as dropped without ever
// building the messages — the common case for recorded duplicates — and only
// an admissible batch pays one handler re-execution. A re-execution whose
// emissions disagree with the record latches shardTaint; the local truth is
// used and the run degrades at the round barrier.
func (c *checker) mergeEmit(b emitBatch) {
	msgs, fps := b.msgs, b.fps
	if b.lazy != nil {
		if !c.net.AnyAdmissible(fps) {
			c.res.Stats.DuplicatesDropped += len(fps)
			return
		}
		var emitted []model.Message
		if b.lazy.isAct {
			_, emitted = c.m.HandleAction(b.lazy.node, b.lazy.state.Clone(), b.lazy.act)
		} else {
			_, emitted = c.m.HandleMessage(b.lazy.node, b.lazy.state.Clone(), b.lazy.msg)
		}
		real := fingerprintAll(emitted)
		if !fpsEqual(real, fps) && c.shardTaint == nil {
			c.shardTaint = errors.New("shard record emissions diverged from re-execution")
		}
		msgs, fps = emitted, real
	}
	added := c.net.AddAllFP(msgs, fps)
	c.res.Stats.DuplicatesDropped += len(msgs) - len(added)
}

func fpsEqual(a, b []codec.Fingerprint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// phaseStarts recovers each node's visited-list length at phase start from
// the current length minus this phase's discoveries.
func (c *checker) phaseStarts(runs []*nodeRun) []int {
	pre := make([]int, len(runs))
	for n, r := range runs {
		pre[n] = len(c.spaces[n].states) - len(r.news)
	}
	return pre
}

// checkDiscovery runs the deferred per-discovery checks in their canonical
// order: node-local invariants first, then the system-state combination
// check, both against the discovery's virtual-time prefix view.
func (c *checker) checkDiscovery(ns *nodeState, view []int) {
	c.checkLocalInvariants(ns, view)
	if !c.stopped {
		c.checkNewState(ns, view)
	}
}

// runParallel runs fn(0..n-1) across the worker pool and waits for all of
// them. Work items must be independent; callers use it for pure
// precomputation whose results are merged in canonical order afterwards.
func (c *checker) runParallel(n int, fn func(int)) {
	if n == 0 {
		return
	}
	workers := c.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
