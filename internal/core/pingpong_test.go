package core

import (
	"fmt"
	"testing"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/spec"
	"lmc/internal/trace"
)

// ppState is a tiny two-node protocol state used to unit-test soundness:
// A sends ping (phase 1), B replies pong (phase 1), A completes (phase 2).
type ppState struct{ Phase int }

func (s *ppState) Encode(w *codec.Writer) { w.Int(s.Phase) }
func (s *ppState) Clone() model.State     { c := *s; return &c }
func (s *ppState) String() string         { return fmt.Sprintf("p%d", s.Phase) }

type ppMsg struct {
	Kind     string
	From, To model.NodeID
}

func (m ppMsg) Src() model.NodeID { return m.From }
func (m ppMsg) Dst() model.NodeID { return m.To }
func (m ppMsg) Encode(w *codec.Writer) {
	w.String(m.Kind)
	w.Int(int(m.From))
	w.Int(int(m.To))
}
func (m ppMsg) String() string { return fmt.Sprintf("%s{%v->%v}", m.Kind, m.From, m.To) }

type ppAct struct{ On model.NodeID }

func (a ppAct) Node() model.NodeID     { return a.On }
func (a ppAct) Encode(w *codec.Writer) { w.String("send-ping"); w.Int(int(a.On)) }
func (a ppAct) String() string         { return "SendPing{}" }

type ppMachine struct{}

func (ppMachine) Name() string                  { return "pingpong" }
func (ppMachine) NumNodes() int                 { return 2 }
func (ppMachine) Init(model.NodeID) model.State { return &ppState{} }

func (ppMachine) HandleMessage(n model.NodeID, s model.State, m model.Message) (model.State, []model.Message) {
	st := s.(*ppState)
	msg := m.(ppMsg)
	switch {
	case msg.Kind == "ping" && n == 1 && st.Phase == 0:
		st.Phase = 1
		return st, []model.Message{ppMsg{Kind: "pong", From: 1, To: 0}}
	case msg.Kind == "pong" && n == 0 && st.Phase == 1:
		st.Phase = 2
		return st, nil
	}
	return nil, nil
}

func (ppMachine) Actions(n model.NodeID, s model.State) []model.Action {
	st := s.(*ppState)
	if n == 0 && st.Phase == 0 {
		return []model.Action{ppAct{On: 0}}
	}
	return nil
}

func (ppMachine) HandleAction(n model.NodeID, s model.State, a model.Action) (model.State, []model.Message) {
	st := s.(*ppState)
	st.Phase = 1
	return st, []model.Message{ppMsg{Kind: "ping", From: 0, To: 1}}
}

// TestSoundnessPingPong: the invariant "A never completes" is violated by a
// valid run; LMC must confirm it with a replayable schedule.
func TestSoundnessPingPong(t *testing.T) {
	m := ppMachine{}
	inv := spec.InvariantFunc{
		InvName: "A-never-done",
		Fn: func(ss model.SystemState) *spec.Violation {
			if ss[0].(*ppState).Phase == 2 {
				return spec.Violate("A-never-done", ss, "A completed")
			}
			return nil
		},
	}
	res := Check(m, model.InitialSystem(m), Options{Invariant: inv, StopAtFirstBug: true})
	t.Logf("stats: %s", res.Stats.String())
	if len(res.Bugs) == 0 {
		t.Fatalf("no confirmed bug")
	}
	t.Logf("schedule:\n%s", res.Bugs[0].Schedule)
	rr := trace.Replay(m, model.InitialSystem(m), res.Bugs[0].Schedule)
	if rr.Err != nil {
		t.Fatalf("schedule does not replay: %v", rr.Err)
	}
}
