package core

import (
	"testing"
	"time"

	"lmc/internal/mc/global"
	"lmc/internal/model"
	"lmc/internal/protocols/paxos"
	"lmc/internal/trace"
)

// oneProposalSpace builds the §5.1 benchmark space: three nodes, one node
// proposes one value once, the others react.
func oneProposalSpace(bug paxos.BugKind) *paxos.Machine {
	return paxos.New(3, bug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
}

// TestPaxosOneProposalLMC explores the single-proposal space with LMC-GEN
// and LMC-OPT: both must complete, find no bug, and OPT must materialize
// zero system states (Figure 11: "The number of system states explored by
// LMC-OPT is zero").
func TestPaxosOneProposalLMC(t *testing.T) {
	m := oneProposalSpace(paxos.NoBug)
	start := model.InitialSystem(m)

	gen := Check(m, start, Options{Invariant: paxos.Agreement()})
	if !gen.Complete {
		t.Fatalf("LMC-GEN did not complete: %s", gen.Stats.String())
	}
	if len(gen.Bugs) != 0 {
		t.Fatalf("LMC-GEN reported a bug in correct Paxos:\n%v\n%s",
			gen.Bugs[0].Violation, gen.Bugs[0].Schedule)
	}
	t.Logf("LMC-GEN: %s", gen.Stats.String())

	opt := Check(m, start, Options{Invariant: paxos.Agreement(), Reduction: paxos.Reduction{}})
	if !opt.Complete {
		t.Fatalf("LMC-OPT did not complete: %s", opt.Stats.String())
	}
	if len(opt.Bugs) != 0 {
		t.Fatalf("LMC-OPT reported a bug in correct Paxos: %v", opt.Bugs[0].Violation)
	}
	if opt.Stats.SystemStates != 0 {
		t.Errorf("LMC-OPT materialized %d system states; want 0 (no conflicting choices exist)",
			opt.Stats.SystemStates)
	}
	t.Logf("LMC-OPT: %s", opt.Stats.String())

	if gen.Stats.NodeStates != opt.Stats.NodeStates {
		t.Errorf("GEN and OPT explored different node-state counts: %d vs %d",
			gen.Stats.NodeStates, opt.Stats.NodeStates)
	}
}

// TestPaxosOneProposalGlobal explores the same space with the global
// baseline; it must complete without bugs, and its transition count must
// dwarf LMC's (§5.1 reports a ~132x gap).
func TestPaxosOneProposalGlobal(t *testing.T) {
	if testing.Short() {
		t.Skip("global exploration of the Paxos space is slow")
	}
	m := oneProposalSpace(paxos.NoBug)
	start := model.InitialSystem(m)

	g := global.Check(m, start, global.Options{
		Invariant: paxos.Agreement(),
		Budget:    120 * time.Second,
	})
	t.Logf("B-DFS: %s", g.Stats.String())
	if !g.Complete {
		t.Fatalf("B-DFS did not complete within budget: %s", g.Stats.String())
	}
	if len(g.Bugs) != 0 {
		t.Fatalf("B-DFS reported a bug in correct Paxos: %v", g.Bugs[0].Violation)
	}

	l := Check(m, start, Options{Invariant: paxos.Agreement()})
	if g.Stats.Transitions < 10*l.Stats.Transitions {
		t.Errorf("expected B-DFS transitions (%d) to dwarf LMC's (%d)",
			g.Stats.Transitions, l.Stats.Transitions)
	}
}

// TestPaxosBugFound checks §5.5: starting from the paper's live state —
// for index 0, node N1 proposed v1, N1 and N2 accepted, only N1 learned —
// the buggy proposer variant lets LMC confirm an agreement violation, and
// the witness schedule replays.
func TestPaxosBugFound(t *testing.T) {
	m := paxos.New(3, paxos.LastResponseBug, paxos.ActiveIndex{MaxPerNode: 1})
	live := PaperLiveState(t, m)

	res := Check(m, live, Options{
		Invariant:      paxos.Agreement(),
		Reduction:      paxos.Reduction{},
		StopAtFirstBug: true,
		Budget:         60 * time.Second,
	})
	if len(res.Bugs) == 0 {
		t.Fatalf("LMC did not find the injected bug: %s", res.Stats.String())
	}
	bug := res.Bugs[0]
	t.Logf("bug: %v", bug.Violation)
	t.Logf("schedule:\n%s", bug.Schedule)
	t.Logf("stats: %s", res.Stats.String())

	rr := trace.Replay(m, live, bug.Schedule)
	if rr.Err != nil {
		t.Fatalf("witness schedule does not replay: %v", rr.Err)
	}
	if v := paxos.Agreement().Check(rr.Final); v == nil {
		t.Fatalf("replayed final state does not violate agreement")
	}

	// The correct protocol must be clean from the same live state.
	correct := paxos.New(3, paxos.NoBug, paxos.ActiveIndex{MaxPerNode: 1})
	clean := Check(correct, live, Options{
		Invariant: paxos.Agreement(),
		Reduction: paxos.Reduction{},
		Budget:    10 * time.Second,
	})
	if len(clean.Bugs) != 0 {
		t.Fatalf("correct Paxos reported a bug from the live state: %v\n%s",
			clean.Bugs[0].Violation, clean.Bugs[0].Schedule)
	}
}

// PaperLiveState wraps paxos.PaperLiveState for tests.
func PaperLiveState(t testing.TB, m model.Machine) model.SystemState {
	t.Helper()
	sys, err := paxos.PaperLiveState(m)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}
