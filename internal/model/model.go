// Package model defines the distributed-system model of the paper's
// Figure 5: a finite set of nodes, each running the same deterministic
// state machine with two kinds of handlers — a message handler HM executed
// in response to a network message, and an internal-action handler HA
// executed in response to a node-local event such as a timer or an
// application call.
//
// Everything above this package — the global baseline checker, the local
// model checker (LMC), the live discrete-event runtime and the online
// controller — executes protocols exclusively through these interfaces.
package model

import (
	"fmt"
	"strings"

	"lmc/internal/codec"
)

// NodeID identifies a node. Nodes of an N-node system are numbered 0..N-1.
type NodeID int

// String formats the id the way the paper's scenarios do (N1, N2, ...).
func (n NodeID) String() string { return fmt.Sprintf("N%d", int(n)+1) }

// Message is a network message in flight. The paper represents an in-flight
// message as a (destination, content) pair; the content includes the sender.
// Messages must be immutable once emitted and must encode canonically.
type Message interface {
	codec.Encoder
	// Src is the sending node.
	Src() NodeID
	// Dst is the destination node.
	Dst() NodeID
	// String renders the message for traces and bug reports.
	String() string
}

// Action is an internal node event (timer, application call). Unlike a
// message handler, an action handler consumes no network message.
type Action interface {
	codec.Encoder
	// Node is the node on which the action executes.
	Node() NodeID
	// String renders the action for traces and bug reports.
	String() string
}

// State is one node's local state. States must encode canonically: two
// semantically equal states must produce identical bytes, because both
// checkers identify states by the fingerprint of their encoding.
type State interface {
	codec.Encoder
	// Clone returns a deep copy. Checkers clone before invoking handlers so
	// handler implementations are free to mutate the state they receive.
	Clone() State
	// String renders the state compactly for traces.
	String() string
}

// Machine is a protocol: the behavior functions HM and HA of Figure 5.
//
// Determinism contract: given equal (node, state, message/action) inputs,
// handlers must produce equal outputs. Any nondeterminism (randomness,
// wall-clock time) must be folded into the Action value itself so that a
// re-execution of the recorded event replays identically (paper §4.1,
// footnote 3).
//
// Mutation contract: the state passed to HandleMessage/HandleAction is a
// private copy owned by the handler; it may be mutated and returned, or a
// fresh state may be returned instead.
//
// Rejection contract: a handler returns a nil state to signal a node-local
// assertion failure, e.g. receipt of a message that is impossible in the
// handler's current state. Per §4.2 ("Local assertions"), LMC discards such
// states: the conservative delivery policy of the shared network routinely
// delivers messages to node states that could never receive them in a real
// run, and the assertion marks the resulting state invalid rather than
// buggy. The global checker treats a nil state as a disabled transition.
type Machine interface {
	// Name identifies the protocol in reports.
	Name() string
	// NumNodes is the number of nodes in the configured system.
	NumNodes() int
	// Init returns node n's initial state.
	Init(n NodeID) State
	// HandleMessage executes HM: node n in state s receives message m.
	// It returns the successor state (nil to reject) and emitted messages.
	HandleMessage(n NodeID, s State, m Message) (State, []Message)
	// Actions enumerates the internal actions enabled in state s of node n.
	// The slice must be freshly allocated or immutable.
	Actions(n NodeID, s State) []Action
	// HandleAction executes HA: node n in state s performs action a.
	HandleAction(n NodeID, s State, a Action) (State, []Message)
}

// Symmetric is an optional Machine capability declaring role symmetry. The
// precise contract is invariant slot-symmetry: every invariant the protocol
// is checked against must give the same verdict when the states of two
// class members are swapped within the system-state vector (the invariant
// compares class members' states without privileging individual slots).
// Checkers with symmetry reduction enabled use the classes to canonicalize
// system-state fingerprints under within-class permutation
// (codec.Canonicalizer) and to skip permuted system-state arrangements whose
// canonical representative is already covered — each skipped arrangement's
// verdict is derived from its representative's (clean) or re-checked
// individually at the fixpoint (violating), so nothing beyond invariant
// slot-symmetry is assumed about the dynamics.
//
// Declare only genuinely interchangeable roles: Paxos acceptors yes, a
// distinguished proposer/leader/coordinator no, topology-pinned nodes
// (chain positions, tree levels) no. Classes must be disjoint; classes with
// fewer than two members are ignored. Machines that do not implement the
// interface get no symmetry reduction (always sound).
type Symmetric interface {
	// SymmetryClasses lists the interchangeable node classes for the
	// configured system size. The result must be deterministic.
	SymmetryClasses() [][]NodeID
}

// RawReplayer is an optional Machine capability for machines that wrap a
// real implementation behind an adapter (package actorcheck). ReplayRaw
// re-drives an event sequence through the wrapped implementation directly —
// live instances mutating in place, no per-event snapshot/restore — and
// returns the final system state. Checkers that find a violation witness on
// such a machine run the schedule through ReplayRaw in addition to the
// model-level replay, so a confirmed bug is one the uninstrumented code
// actually exhibits, not an artifact of the adapter's interception seam.
//
// ReplayRaw must not mutate start and must be safe for concurrent calls
// with distinct event slices (soundness verification runs on a worker pool).
type RawReplayer interface {
	ReplayRaw(start SystemState, inflight []Message, events []Event) (SystemState, error)
}

// SystemState is the tuple of node local states (the paper's L): what the
// user-specified invariants are checked against. Index i holds node i's
// state.
type SystemState []State

// Clone deep-copies every node state.
func (ss SystemState) Clone() SystemState {
	out := make(SystemState, len(ss))
	for i, s := range ss {
		out[i] = s.Clone()
	}
	return out
}

// Fingerprint combines the fingerprints of the node states in order. The
// value equals codec.Combine over the per-state StateFingerprints, which
// lets checkers derive a system fingerprint from memoized node-state
// fingerprints without re-encoding any state.
func (ss SystemState) Fingerprint() codec.Fingerprint {
	h := codec.NewHasher()
	for _, s := range ss {
		h.Add(StateFingerprint(s))
	}
	return h.Sum()
}

// String renders the system state as node states joined by " | ".
func (ss SystemState) String() string {
	parts := make([]string, len(ss))
	for i, s := range ss {
		parts[i] = fmt.Sprintf("%v:%s", NodeID(i), s.String())
	}
	return strings.Join(parts, " | ")
}

// InitialSystem builds the system state of all nodes' initial states.
func InitialSystem(m Machine) SystemState {
	ss := make(SystemState, m.NumNodes())
	for i := range ss {
		ss[i] = m.Init(NodeID(i))
	}
	return ss
}

// EventKind discriminates the two handler families of Figure 5.
type EventKind uint8

const (
	// NetworkEvent delivers a message (HM).
	NetworkEvent EventKind = iota + 1
	// InternalEvent performs a node-local action (HA).
	InternalEvent
)

// String names the kind for traces.
func (k EventKind) String() string {
	switch k {
	case NetworkEvent:
		return "recv"
	case InternalEvent:
		return "act"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one enabled transition of the system: either the delivery of a
// message to its destination node, or an internal action of a node.
type Event struct {
	Kind EventKind
	Node NodeID  // the node whose handler executes
	Msg  Message // set iff Kind == NetworkEvent
	Act  Action  // set iff Kind == InternalEvent
}

// RecvEvent builds a message-delivery event.
func RecvEvent(m Message) Event {
	return Event{Kind: NetworkEvent, Node: m.Dst(), Msg: m}
}

// ActEvent builds an internal-action event.
func ActEvent(a Action) Event {
	return Event{Kind: InternalEvent, Node: a.Node(), Act: a}
}

// Encode writes the event canonically: kind, node, then payload.
func (e Event) Encode(w *codec.Writer) {
	w.Byte(byte(e.Kind))
	w.Int(int(e.Node))
	switch e.Kind {
	case NetworkEvent:
		e.Msg.Encode(w)
	case InternalEvent:
		e.Act.Encode(w)
	}
}

// Fingerprint identifies the event; it is what LMC stores in predecessor
// pointers instead of the event itself (§4.2: "Instead of the actual event,
// its hash is added into the predecessor pointers").
func (e Event) Fingerprint() codec.Fingerprint { return codec.HashOf(e) }

// String renders the event for traces: "N2 recv Prepare{...}" or
// "N1 act Propose{...}".
func (e Event) String() string {
	switch e.Kind {
	case NetworkEvent:
		return fmt.Sprintf("%v %v %s", e.Node, e.Kind, e.Msg.String())
	case InternalEvent:
		return fmt.Sprintf("%v %v %s", e.Node, e.Kind, e.Act.String())
	default:
		return fmt.Sprintf("%v <invalid event>", e.Node)
	}
}

// Apply executes the event's handler on a clone of s via machine m,
// returning the successor (nil if the handler rejected) and emissions.
func (e Event) Apply(m Machine, s State) (State, []Message) {
	switch e.Kind {
	case NetworkEvent:
		return m.HandleMessage(e.Node, s.Clone(), e.Msg)
	case InternalEvent:
		return m.HandleAction(e.Node, s.Clone(), e.Act)
	default:
		return nil, nil
	}
}

// MessageFingerprint hashes a message's canonical encoding.
func MessageFingerprint(m Message) codec.Fingerprint { return codec.HashOf(m) }

// StateFingerprint hashes a state's canonical encoding.
func StateFingerprint(s State) codec.Fingerprint { return codec.HashOf(s) }
