package model_test

import (
	"strings"
	"testing"

	"lmc/internal/model"
	"lmc/internal/protocols/tree"
)

// TestNodeIDString checks the paper's N1..Nk rendering.
func TestNodeIDString(t *testing.T) {
	if model.NodeID(0).String() != "N1" || model.NodeID(2).String() != "N3" {
		t.Fatalf("NodeID rendering off: %v %v", model.NodeID(0), model.NodeID(2))
	}
}

// TestInitialSystem checks per-node initial states.
func TestInitialSystem(t *testing.T) {
	m := tree.NewPaperTree()
	ss := model.InitialSystem(m)
	if len(ss) != 5 {
		t.Fatalf("system size %d, want 5", len(ss))
	}
	for _, s := range ss {
		if s.(*tree.State).St != tree.Idle {
			t.Fatal("non-idle initial state")
		}
	}
}

// TestSystemStateCloneIsDeep checks clone independence.
func TestSystemStateCloneIsDeep(t *testing.T) {
	m := tree.NewPaperTree()
	ss := model.InitialSystem(m)
	c := ss.Clone()
	c[0].(*tree.State).St = tree.Sent
	if ss[0].(*tree.State).St != tree.Idle {
		t.Fatal("clone shares node state with original")
	}
}

// TestSystemFingerprint: equal contents hash equal; different contents
// hash different; node order matters.
func TestSystemFingerprint(t *testing.T) {
	m := tree.NewPaperTree()
	a := model.InitialSystem(m)
	b := model.InitialSystem(m)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal systems hash differently")
	}
	b[0].(*tree.State).St = tree.Sent
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("modified system hashes equally")
	}
	// Swapping two equal-state nodes must not change the hash; swapping
	// unequal ones must.
	c := model.InitialSystem(m)
	c[1].(*tree.State).St = tree.Sent
	d := model.InitialSystem(m)
	d[2].(*tree.State).St = tree.Sent
	if c.Fingerprint() == d.Fingerprint() {
		t.Fatal("node position does not affect the fingerprint")
	}
}

// TestEventFingerprints: distinct kinds and payloads produce distinct
// fingerprints; equal events agree.
func TestEventFingerprints(t *testing.T) {
	fwd := tree.Forward{From: 0, To: 1}
	recv := model.RecvEvent(fwd)
	recv2 := model.RecvEvent(tree.Forward{From: 0, To: 1})
	if recv.Fingerprint() != recv2.Fingerprint() {
		t.Fatal("equal events disagree")
	}
	act := model.ActEvent(tree.Initiate{Root: 0})
	if recv.Fingerprint() == act.Fingerprint() {
		t.Fatal("recv and act collide")
	}
	other := model.RecvEvent(tree.Forward{From: 0, To: 2})
	if recv.Fingerprint() == other.Fingerprint() {
		t.Fatal("different messages collide")
	}
}

// TestEventString checks trace rendering mentions node and payload.
func TestEventString(t *testing.T) {
	e := model.RecvEvent(tree.Forward{From: 0, To: 1})
	s := e.String()
	if !strings.Contains(s, "N2") || !strings.Contains(s, "recv") {
		t.Fatalf("unhelpful event rendering: %q", s)
	}
}

// TestEventApplyClones: Apply must not mutate the input state.
func TestEventApplyClones(t *testing.T) {
	m := tree.NewPaperTree()
	s0 := m.Init(0)
	ev := model.ActEvent(tree.Initiate{Root: 0})
	next, out := ev.Apply(m, s0)
	if next == nil || len(out) != 2 {
		t.Fatalf("initiate failed: %v %v", next, out)
	}
	if s0.(*tree.State).St != tree.Idle {
		t.Fatal("Apply mutated the input state")
	}
}

// TestMessageFingerprintMatchesHashOf checks the helper agreement.
func TestMessageFingerprintMatchesHashOf(t *testing.T) {
	msg := tree.Forward{From: 1, To: 3}
	if model.MessageFingerprint(msg) != model.MessageFingerprint(tree.Forward{From: 1, To: 3}) {
		t.Fatal("message fingerprint unstable")
	}
}

// TestEventKindString names the kinds.
func TestEventKindString(t *testing.T) {
	if model.NetworkEvent.String() != "recv" || model.InternalEvent.String() != "act" {
		t.Fatal("kind names changed")
	}
}
