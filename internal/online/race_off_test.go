//go:build !race

package online

// raceBudgetScale stretches wall-clock exploration budgets in tests when
// the race detector is active. In a normal build it is 1.
const raceBudgetScale = 1
