//go:build race

package online

// raceBudgetScale stretches wall-clock exploration budgets in tests when
// the race detector is active: instrumented runs are an order of magnitude
// slower, so a budget tuned for a plain build would starve the exploration
// before the detection point and fail the test for a reason that has
// nothing to do with races.
const raceBudgetScale = 15
