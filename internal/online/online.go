// Package online implements the CrystalBall-style online model checking
// scheme of §3.3: a model checker runs alongside a live system and is
// "restarted periodically from the current live state of a running
// system", so it explores relevant states at depths the offline checker
// could never reach before the exponential explosion sets in (Figure 6).
// This is the setting in which the paper's local checker found both Paxos
// bugs (§5.5, §5.6).
package online

import (
	"context"
	"errors"
	"time"

	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/obs"
	"lmc/internal/sim"
	"lmc/internal/stats"
)

// Config parameterizes an online checking session.
type Config struct {
	// Machine is the protocol under test — the checker's model. It may be
	// the same machine the live system runs, or a variant (e.g. a checker
	// driver replacing the live application).
	Machine model.Machine
	// Interval is the simulated time between checker restarts; the paper
	// restarts "every one minute".
	Interval float64
	// MaxSimTime bounds the live run; zero means 24 simulated hours.
	MaxSimTime float64
	// Checker configures each checker run (budget, invariant, reduction).
	Checker core.Options
	// StopAtFirstBug ends the session at the first confirmed bug.
	StopAtFirstBug bool
}

// Validate reports whether the config describes a runnable session: a
// machine to model-check, non-negative timing (zero selects the defaults —
// 60 s interval, 24 simulated hours), and runnable checker options. It is
// called by RunContext; the legacy Run entry point deliberately skips it.
func (c *Config) Validate() error {
	if c.Machine == nil {
		return errors.New("online: Config.Machine is required")
	}
	if c.Interval < 0 {
		return errors.New("online: Config.Interval is simulated seconds between restarts and must be >= 0 (0 means 60)")
	}
	if c.MaxSimTime < 0 {
		return errors.New("online: Config.MaxSimTime is simulated seconds and must be >= 0 (0 means 24 hours)")
	}
	return c.Checker.Validate()
}

// RunReport records one checker restart.
type RunReport struct {
	// SimTime is the simulated time of the snapshot.
	SimTime float64
	// Stats are the checker run's counters.
	Stats stats.Counters
	// Bugs are the confirmed violations found from this snapshot.
	Bugs []core.Bug
}

// Report summarizes an online checking session.
type Report struct {
	// Runs are the individual checker restarts, in order.
	Runs []RunReport
	// FirstBug points at the first confirmed bug, if any.
	FirstBug *core.Bug
	// DetectionSimTime is the simulated time of the snapshot that revealed
	// the first bug (§5.5 reports 1150 s, §5.6 reports 225 s).
	DetectionSimTime float64
	// DetectionWall is the wall-clock time the checker spent across runs
	// up to and including the revealing one.
	DetectionWall time.Duration
	// SimTime is the total simulated time covered.
	SimTime float64
}

// Run drives the live simulation, snapshotting every Interval simulated
// seconds and restarting the local checker from the snapshot. It is the
// legacy entry point: no option validation, no cancellation.
func Run(live *sim.Sim, cfg Config) *Report {
	return run(context.Background(), live, cfg, false)
}

// RunContext is Run with checker-option validation surfaced as an error
// and cooperative cancellation. The context is threaded into every checker
// restart (cancellation cuts the current restart off at its next round
// barrier) and polled between restarts; a cancelled session returns the
// partial Report accumulated so far, not an error. Each restart is
// announced to cfg.Checker.Observer with a KindSnapshot event before the
// checker run's own events.
func RunContext(ctx context.Context, live *sim.Sim, cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return run(ctx, live, cfg, true), nil
}

func run(ctx context.Context, live *sim.Sim, cfg Config, validated bool) *Report {
	if cfg.Interval <= 0 {
		cfg.Interval = 60
	}
	if cfg.MaxSimTime <= 0 {
		cfg.MaxSimTime = 24 * 3600
	}
	begin := time.Now()
	rep := &Report{}
	var wall time.Duration
	for t := cfg.Interval; t <= cfg.MaxSimTime; t += cfg.Interval {
		if ctx.Err() != nil {
			break
		}
		live.RunUntil(t)
		snap := live.Snapshot()
		if cfg.Checker.Observer != nil {
			cfg.Checker.Observer.OnEvent(obs.Event{
				Kind:    obs.KindSnapshot,
				Checker: "online",
				Elapsed: time.Since(begin),
				Count:   len(rep.Runs) + 1,
				SimTime: live.Now(),
			})
		}
		var res *core.Result
		if validated {
			// Validation already passed, so CheckContext cannot error here.
			res, _ = core.CheckContext(ctx, cfg.Machine, snap, cfg.Checker)
		} else {
			res = core.Check(cfg.Machine, snap, cfg.Checker)
		}
		wall += res.Stats.Elapsed
		rep.Runs = append(rep.Runs, RunReport{
			SimTime: live.Now(),
			Stats:   res.Stats,
			Bugs:    res.Bugs,
		})
		rep.SimTime = live.Now()
		if len(res.Bugs) > 0 && rep.FirstBug == nil {
			bug := res.Bugs[0]
			rep.FirstBug = &bug
			rep.DetectionSimTime = live.Now()
			rep.DetectionWall = wall
			if cfg.StopAtFirstBug {
				return rep
			}
		}
		if res.StopReason == core.StopCancelled {
			break
		}
	}
	return rep
}
