package online

import (
	"testing"
	"time"

	"lmc/internal/core"
	"lmc/internal/protocols/paxos"
	"lmc/internal/sim"
	"lmc/internal/simnet"
)

// TestOnlineFindsPaxosBug is the §5.5 experiment end to end: a live 3-node
// buggy-Paxos deployment over a 30%-lossy network, each node proposing its
// id for a new index at random times; the local checker restarts from the
// live state every simulated minute and eventually confirms an agreement
// violation. (The paper's detection took 1150 simulated seconds.)
func TestOnlineFindsPaxosBug(t *testing.T) {
	if testing.Short() {
		t.Skip("online detection run")
	}
	m := paxos.New(3, paxos.LastResponseBug, paxos.ActiveIndex{})
	live := sim.New(sim.Config{
		Machine:   m,
		Net:       simnet.Config{Seed: 11, DropProb: 0.3},
		Seed:      7,
		AppPeriod: 60,
		App:       paxos.LiveApp(m.P),
	})
	rep := Run(live, Config{
		Machine:    m,
		Interval:   60,
		MaxSimTime: 4 * 3600,
		Checker: core.Options{
			Invariant:      paxos.Agreement(),
			Reduction:      paxos.Reduction{},
			StopAtFirstBug: true,
			Budget:         raceBudgetScale * 2 * time.Second,
			LocalBoundStep: 1,
			MaxLocalBound:  3,
		},
		StopAtFirstBug: true,
	})
	if rep.FirstBug == nil {
		t.Fatalf("online checking did not detect the bug in %v simulated seconds (%d runs)",
			rep.SimTime, len(rep.Runs))
	}
	t.Logf("detected at sim time %.0fs after %d runs (wall %v)",
		rep.DetectionSimTime, len(rep.Runs), rep.DetectionWall)
	t.Logf("violation: %v", rep.FirstBug.Violation)
	t.Logf("schedule:\n%s", rep.FirstBug.Schedule)
}
