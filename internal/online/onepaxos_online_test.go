package online

import (
	"testing"
	"time"

	"lmc/internal/core"
	"lmc/internal/protocols/onepaxos"
	"lmc/internal/sim"
	"lmc/internal/simnet"
)

// TestOnlineFindsOnePaxosBug is the §5.6 experiment end to end: a live
// buggy 1Paxos deployment whose application triggers the fault detector
// with probability 0.1; the checker restarts each simulated minute. The
// paper's tool found the ++ bug after 225 simulated seconds.
func TestOnlineFindsOnePaxosBug(t *testing.T) {
	if testing.Short() {
		t.Skip("online detection run")
	}
	m := onepaxos.New(3, onepaxos.PlusPlusBug, onepaxos.Driver{MaxTakeovers: 1, MaxProposals: 2})
	live := sim.New(sim.Config{
		Machine:   m,
		Net:       simnet.Config{Seed: 21, DropProb: 0.3},
		Seed:      22,
		AppPeriod: 60,
		App:       onepaxos.LiveApp(m, 0.1),
	})
	rep := Run(live, Config{
		Machine:    m,
		Interval:   60,
		MaxSimTime: 2 * 3600,
		Checker: core.Options{
			Invariant:       onepaxos.Agreement(),
			Reduction:       onepaxos.Reduction{},
			LocalInvariants: nil,
			StopAtFirstBug:  true,
			Budget:          2 * time.Second,
			LocalBoundStep:  1,
			MaxLocalBound:   3,
		},
		StopAtFirstBug: true,
	})
	if rep.FirstBug == nil {
		t.Fatalf("online checking did not detect the ++ bug in %.0f simulated seconds (%d runs)",
			rep.SimTime, len(rep.Runs))
	}
	t.Logf("detected at sim time %.0fs after %d runs (wall %v; paper: 225 s)",
		rep.DetectionSimTime, len(rep.Runs), rep.DetectionWall)
	t.Logf("violation: %v", rep.FirstBug.Violation)
	t.Logf("schedule:\n%s", rep.FirstBug.Schedule)
}
