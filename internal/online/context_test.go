package online

import (
	"context"
	"testing"
	"time"

	"lmc/internal/core"
	"lmc/internal/obs"
	"lmc/internal/protocols/paxos"
	"lmc/internal/sim"
	"lmc/internal/simnet"
)

func sessionConfig(o obs.Observer) (*sim.Sim, Config) {
	m := paxos.New(3, paxos.NoBug, paxos.ActiveIndex{})
	live := sim.New(sim.Config{
		Machine:   m,
		Net:       simnet.Config{Seed: 5, DropProb: 0.2},
		Seed:      3,
		AppPeriod: 60,
		App:       paxos.LiveApp(m.P),
	})
	return live, Config{
		Machine:    m,
		Interval:   60,
		MaxSimTime: 5 * 60,
		Checker: core.Options{
			Invariant:      paxos.Agreement(),
			Reduction:      paxos.Reduction{},
			Budget:         200 * time.Millisecond,
			Observer:       o,
			HeartbeatEvery: -1,
		},
	}
}

// TestRunContextValidates: an invalid checker configuration surfaces as an
// error before the live run is touched.
func TestRunContextValidates(t *testing.T) {
	live, cfg := sessionConfig(nil)
	cfg.Checker.Invariant = nil
	if _, err := RunContext(context.Background(), live, cfg); err == nil {
		t.Fatal("RunContext accepted a checker configuration without an invariant")
	}
}

// TestRunContextSnapshotEvents: every checker restart is announced with a
// KindSnapshot event carrying the snapshot's simulated time, interleaved
// with that run's own events.
func TestRunContextSnapshotEvents(t *testing.T) {
	rec := &obs.Recorder{}
	live, cfg := sessionConfig(rec)
	rep, err := RunContext(context.Background(), live, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) == 0 {
		t.Fatal("no checker restarts")
	}
	snaps := 0
	for _, e := range rec.Events() {
		if e.Kind != obs.KindSnapshot {
			continue
		}
		snaps++
		if e.Checker != "online" || e.SimTime <= 0 || e.Count != snaps {
			t.Fatalf("malformed snapshot event %d: %+v", snaps, e)
		}
	}
	if snaps != len(rep.Runs) {
		t.Fatalf("%d snapshot events for %d runs", snaps, len(rep.Runs))
	}
	if rec.Count(obs.KindRunStart) != len(rep.Runs) {
		t.Fatalf("%d run-start events for %d runs", rec.Count(obs.KindRunStart), len(rep.Runs))
	}
}

// TestRunContextCancellation: a context cancelled from an observer hook
// mid-session stops the current restart at its next round barrier and ends
// the session with the partial report.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runs := 0
	hook := obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindSnapshot {
			runs++
			if runs == 2 {
				cancel()
			}
		}
	})
	live, cfg := sessionConfig(hook)
	rep, err := RunContext(ctx, live, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The second restart observes the cancelled context at its first round
	// barrier, records its partial run, and the session stops.
	if len(rep.Runs) != 2 {
		t.Fatalf("session recorded %d runs, want 2", len(rep.Runs))
	}
}
