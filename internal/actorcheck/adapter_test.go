package actorcheck_test

import (
	"fmt"
	"strings"
	"testing"

	"lmc/internal/actorcheck"
	"lmc/internal/codec"
	"lmc/internal/model"
)

// ping is the toy payload of the test actors.
type ping struct {
	Hop int `json:"hop"`
}

func (p ping) Encode(w *codec.Writer) {
	w.String("test.ping")
	w.Int(p.Hop)
}

func (p ping) String() string { return fmt.Sprintf("Ping{hop=%d}", p.Hop) }

// kick is the toy tick starting a round.
type kick struct{}

func (kick) Encode(w *codec.Writer) { w.String("test.kick") }
func (kick) String() string         { return "Kick{}" }

// counterActor is a plain-struct actor (exported fields, no maps) relying
// on the gob snapshot default: node 0 kicks off a token that hops around
// the ring a bounded number of times.
type counterActor struct {
	ID      int
	N       int
	Started bool
	Seen    int
}

func newCounter(n int) actorcheck.Factory {
	return func(id model.NodeID) actorcheck.Actor {
		return &counterActor{ID: int(id), N: n}
	}
}

func (c *counterActor) Ticks() []actorcheck.Tick {
	if c.ID == 0 && !c.Started {
		return []actorcheck.Tick{kick{}}
	}
	return nil
}

func (c *counterActor) OnTick(ctx actorcheck.Context, t actorcheck.Tick) error {
	if _, ok := t.(kick); !ok {
		return fmt.Errorf("unknown tick %s", t)
	}
	if c.ID != 0 || c.Started {
		return fmt.Errorf("kick on %d (started=%v)", c.ID, c.Started)
	}
	c.Started = true
	ctx.Send(model.NodeID((c.ID+1)%c.N), ping{Hop: 1})
	return nil
}

func (c *counterActor) OnMessage(ctx actorcheck.Context, _ model.NodeID, p actorcheck.Payload) error {
	pg, ok := p.(ping)
	if !ok {
		return fmt.Errorf("unknown payload %s", p)
	}
	c.Seen++
	if pg.Hop < 2*c.N {
		ctx.Send(model.NodeID((c.ID+1)%c.N), ping{Hop: pg.Hop + 1})
	}
	return nil
}

func counterAdapter(n int) *actorcheck.Adapter {
	ad := actorcheck.New("counter", n, newCounter(n))
	ad.RegisterPayloads(ping{})
	ad.RegisterTicks(kick{})
	return ad
}

// TestGobDefaultSnapshot: a plain-struct actor without a Snapshotter must
// pass the full conformance suite on the gob path.
func TestGobDefaultSnapshot(t *testing.T) {
	if err := actorcheck.Conformance(counterAdapter(3), 0); err != nil {
		t.Fatal(err)
	}
}

// TestMisdeliveryRejected: envelopes addressed elsewhere, foreign message
// types and foreign states must all reject rather than corrupt.
func TestMisdeliveryRejected(t *testing.T) {
	ad := counterAdapter(3)
	s0 := ad.Init(0)
	env := actorcheck.Envelope{From: 0, To: 2, P: ping{Hop: 1}}
	if next, _ := ad.HandleMessage(0, s0, env); next != nil {
		t.Fatal("envelope for node 2 delivered to node 0")
	}
	if next, _ := ad.HandleMessage(2, s0.Clone(), badMessage{}); next != nil {
		t.Fatal("foreign message type accepted")
	}
	if acts := ad.Actions(0, badState{}); acts != nil {
		t.Fatal("foreign state type enumerated actions")
	}
}

type badMessage struct{}

func (badMessage) Src() model.NodeID      { return 0 }
func (badMessage) Dst() model.NodeID      { return 2 }
func (badMessage) Encode(w *codec.Writer) { w.String("bad") }
func (badMessage) String() string         { return "bad" }

type badState struct{}

func (badState) Encode(w *codec.Writer) { w.String("bad-state") }
func (badState) Clone() model.State     { return badState{} }
func (badState) String() string         { return "bad-state" }

// wildSender sends to a node outside the system on its first delivery.
type wildSender struct {
	ID int
	N  int
}

func (a *wildSender) Ticks() []actorcheck.Tick { return nil }
func (a *wildSender) OnTick(actorcheck.Context, actorcheck.Tick) error {
	return fmt.Errorf("no ticks")
}
func (a *wildSender) OnMessage(ctx actorcheck.Context, _ model.NodeID, _ actorcheck.Payload) error {
	ctx.Send(model.NodeID(a.N+3), ping{Hop: 1})
	return nil
}

// TestOutOfRangeSendRejectsTransition: a handler addressing a nonexistent
// peer is a rejected transition, not a silent drop.
func TestOutOfRangeSendRejectsTransition(t *testing.T) {
	ad := actorcheck.New("wild", 2, func(id model.NodeID) actorcheck.Actor {
		return &wildSender{ID: int(id), N: 2}
	})
	s := ad.Init(1)
	env := actorcheck.Envelope{From: 0, To: 1, P: ping{Hop: 1}}
	if next, out := ad.HandleMessage(1, s, env); next != nil || out != nil {
		t.Fatal("out-of-range send did not reject the transition")
	}
}

// TestViewMemoized: decoding a node state twice returns the same live view.
func TestViewMemoized(t *testing.T) {
	ad := counterAdapter(3)
	s := ad.Init(1)
	v1, err := ad.View(1, s)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ad.View(1, s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if v1.(*counterActor) != v2.(*counterActor) {
		t.Fatal("view not memoized across clones of the same state")
	}
}

// TestWitnessRequiresRegistration: serializing an unregistered payload type
// fails loudly instead of committing an undecodable artifact.
func TestWitnessRequiresRegistration(t *testing.T) {
	ad := actorcheck.New("unregistered", 2, newCounter(2))
	env := actorcheck.Envelope{From: 0, To: 1, P: ping{Hop: 1}}
	if _, _, err := ad.EncodeMessage(env); err == nil ||
		!strings.Contains(err.Error(), "unregistered") {
		t.Fatalf("expected unregistered-type error, got %v", err)
	}
}

// TestEnvelopeStringAndStateString cover the trace renderings.
func TestEnvelopeStringAndStateString(t *testing.T) {
	env := actorcheck.Envelope{From: 0, To: 1, P: ping{Hop: 3}}
	if got := env.String(); !strings.Contains(got, "Ping{hop=3}") {
		t.Fatalf("envelope rendering %q lacks payload", got)
	}
	ad := counterAdapter(2)
	// counterActor has no Stringer: the state renders as an opaque hash.
	if got := ad.Init(0).String(); !strings.HasPrefix(got, "actor{") {
		t.Fatalf("state rendering %q", got)
	}
}
