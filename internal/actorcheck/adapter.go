package actorcheck

import (
	"bytes"
	"fmt"
	"sync"

	"lmc/internal/codec"
	"lmc/internal/model"
)

// Wire tags keeping adapter messages and actions disjoint from each other
// (payload encodings only need to be canonical within the wrapped
// implementation; the tag plus addressing makes the envelope canonical for
// the checker).
const (
	envelopeTag = 0xA1
	tickTag     = 0xA2
)

// Envelope is an intercepted message: a payload captured in flight between
// two actors, addressed for the checker's shared network.
type Envelope struct {
	From, To model.NodeID
	P        Payload
}

// Src implements model.Message.
func (e Envelope) Src() model.NodeID { return e.From }

// Dst implements model.Message.
func (e Envelope) Dst() model.NodeID { return e.To }

// Encode writes the envelope canonically: tag, addressing, then the
// payload's own canonical encoding.
func (e Envelope) Encode(w *codec.Writer) {
	w.Byte(envelopeTag)
	w.Int(int(e.From))
	w.Int(int(e.To))
	e.P.Encode(w)
}

// String renders the envelope for traces.
func (e Envelope) String() string {
	return fmt.Sprintf("%v→%v %s", e.From, e.To, e.P.String())
}

// TickAction lifts an actor's node-local tick to a model.Action.
type TickAction struct {
	N model.NodeID
	T Tick
}

// Node implements model.Action.
func (a TickAction) Node() model.NodeID { return a.N }

// Encode writes the action canonically.
func (a TickAction) Encode(w *codec.Writer) {
	w.Byte(tickTag)
	w.Int(int(a.N))
	a.T.Encode(w)
}

// String renders the action for traces.
func (a TickAction) String() string { return a.T.String() }

// NodeState is an actor's local state as the checker sees it: the canonical
// snapshot bytes, opaque to the exploration machinery. Fingerprinting and
// deduplication run on the blob through the ordinary codec path; decoding
// back to a live actor happens only on demand (Adapter.View) for
// invariants and reductions.
type NodeState struct {
	ad   *Adapter
	node model.NodeID
	blob []byte
}

// Blob returns the snapshot bytes. Callers must not mutate them.
func (s *NodeState) Blob() []byte { return s.blob }

// Encode implements codec.Encoder.
func (s *NodeState) Encode(w *codec.Writer) { w.Bytes32(s.blob) }

// Clone implements model.State. The blob is immutable by construction
// (handlers run on restored instances, never on the snapshot), so the copy
// is shallow.
func (s *NodeState) Clone() model.State {
	c := *s
	return &c
}

// String renders the state by decoding it back to the actor and using its
// Stringer if it has one; the decode is memoized, so repeated trace
// rendering stays cheap.
func (s *NodeState) String() string {
	if s.ad != nil {
		if a, err := s.ad.View(s.node, s); err == nil {
			if str, ok := a.(fmt.Stringer); ok {
				return str.String()
			}
		}
	}
	return fmt.Sprintf("actor{%v}", codec.Hash(s.blob))
}

// Adapter wraps a Factory of actors as a model.Machine. One adapter checks
// one configured system (name, size, factory); the zero value is unusable —
// construct with New.
type Adapter struct {
	name    string
	n       int
	factory Factory

	// CheckDeterminism, when set before checking starts, re-executes every
	// handler twice from the same snapshot and compares successor blobs and
	// emissions; a mismatch panics with a *DeterminismError. Exploration
	// runs roughly twice as slow under it — it is a conformance mode, not a
	// default.
	CheckDeterminism bool

	// views memoizes blob → decoded actor per (node, fingerprint), shared
	// by invariant and reduction evaluation across worker goroutines.
	views sync.Map

	// reg maps payload/tick type names for witness JSON (witness.go).
	reg registry
}

// New builds an adapter for an n-node system of actors produced by f.
func New(name string, n int, f Factory) *Adapter {
	if n <= 0 {
		panic(fmt.Sprintf("actorcheck: invalid system size %d", n))
	}
	if f == nil {
		panic("actorcheck: nil factory")
	}
	return &Adapter{name: name, n: n, factory: f}
}

// Name implements model.Machine.
func (ad *Adapter) Name() string { return ad.name }

// NumNodes implements model.Machine.
func (ad *Adapter) NumNodes() int { return ad.n }

// Init implements model.Machine: a fresh actor's snapshot. A snapshot
// failure here is a broken Snapshotter contract, not a checkable outcome,
// so it panics.
func (ad *Adapter) Init(n model.NodeID) model.State {
	blob, err := snapshot(ad.factory(n))
	if err != nil {
		panic(fmt.Sprintf("actorcheck: snapshot of initial %v state: %v", n, err))
	}
	return &NodeState{ad: ad, node: n, blob: blob}
}

// restore builds a live actor for node n from snapshot bytes.
func (ad *Adapter) restore(n model.NodeID, blob []byte) (Actor, error) {
	a := ad.factory(n)
	if err := restore(a, blob); err != nil {
		return nil, err
	}
	return a, nil
}

// View decodes a node state back to a live actor for read-only inspection —
// invariants and reductions are written against the implementation's own
// types, not the blob. The result is memoized per (node, fingerprint) and
// shared; callers must not mutate it.
func (ad *Adapter) View(n model.NodeID, s model.State) (Actor, error) {
	st, ok := s.(*NodeState)
	if !ok {
		return nil, fmt.Errorf("actorcheck: %T is not an adapter state", s)
	}
	key := viewKey{n: n, fp: codec.Hash(st.blob)}
	if v, ok := ad.views.Load(key); ok {
		return v.(Actor), nil
	}
	a, err := ad.restore(n, st.blob)
	if err != nil {
		return nil, err
	}
	v, _ := ad.views.LoadOrStore(key, a)
	return v.(Actor), nil
}

type viewKey struct {
	n  model.NodeID
	fp codec.Fingerprint
}

// HandleMessage implements model.Machine: restore the actor, run the real
// OnMessage handler with an intercepting context, snapshot the successor.
func (ad *Adapter) HandleMessage(n model.NodeID, s model.State, m model.Message) (model.State, []model.Message) {
	env, ok := m.(Envelope)
	if !ok || env.To != n {
		return nil, nil
	}
	st, ok := s.(*NodeState)
	if !ok {
		return nil, nil
	}
	return ad.step(n, st.blob, env.String(), func(a Actor, ctx Context) error {
		return a.OnMessage(ctx, env.From, env.P)
	})
}

// Actions implements model.Machine: the actor's enabled ticks.
func (ad *Adapter) Actions(n model.NodeID, s model.State) []model.Action {
	st, ok := s.(*NodeState)
	if !ok {
		return nil
	}
	a, err := ad.View(n, st)
	if err != nil {
		return nil
	}
	ticks := a.Ticks()
	if len(ticks) == 0 {
		return nil
	}
	out := make([]model.Action, len(ticks))
	for i, t := range ticks {
		out[i] = TickAction{N: n, T: t}
	}
	return out
}

// HandleAction implements model.Machine.
func (ad *Adapter) HandleAction(n model.NodeID, s model.State, act model.Action) (model.State, []model.Message) {
	ta, ok := act.(TickAction)
	if !ok || ta.N != n {
		return nil, nil
	}
	st, ok := s.(*NodeState)
	if !ok {
		return nil, nil
	}
	return ad.step(n, st.blob, ta.String(), func(a Actor, ctx Context) error {
		return a.OnTick(ctx, ta.T)
	})
}

// step is one intercepted handler execution: fresh actor, restore, run,
// snapshot. A handler error or a context misuse (out-of-range send) rejects
// the transition — the model-level nil-state local assertion. Under
// CheckDeterminism the execution runs twice and the outcomes must agree.
func (ad *Adapter) step(n model.NodeID, blob []byte, event string, run func(Actor, Context) error) (model.State, []model.Message) {
	next, sent, err := ad.execute(n, blob, run)
	if err != nil {
		return nil, nil
	}
	if ad.CheckDeterminism {
		next2, sent2, err2 := ad.execute(n, blob, run)
		if detail := compareRuns(next, sent, next2, sent2, err2); detail != "" {
			panic(&DeterminismError{Node: n, Event: event, Detail: detail})
		}
	}
	var msgs []model.Message
	if len(sent) > 0 {
		msgs = make([]model.Message, len(sent))
		for i, e := range sent {
			msgs[i] = e
		}
	}
	return &NodeState{ad: ad, node: n, blob: next}, msgs
}

// execute runs one handler on a freshly restored actor and returns the
// successor snapshot and the intercepted sends.
func (ad *Adapter) execute(n model.NodeID, blob []byte, run func(Actor, Context) error) ([]byte, []Envelope, error) {
	a, err := ad.restore(n, blob)
	if err != nil {
		return nil, nil, err
	}
	ob := &outbox{self: n, n: ad.n}
	if err := run(a, ob); err != nil {
		return nil, nil, err
	}
	if ob.err != nil {
		return nil, nil, ob.err
	}
	next, err := snapshot(a)
	if err != nil {
		return nil, nil, err
	}
	return next, ob.sent, nil
}

// compareRuns diffs two executions of the same handler from the same
// snapshot; "" means they agree.
func compareRuns(blob1 []byte, sent1 []Envelope, blob2 []byte, sent2 []Envelope, err2 error) string {
	if err2 != nil {
		return fmt.Sprintf("first run succeeded, second failed: %v", err2)
	}
	if !bytes.Equal(blob1, blob2) {
		return "successor snapshots differ between runs"
	}
	if len(sent1) != len(sent2) {
		return fmt.Sprintf("first run sent %d messages, second %d", len(sent1), len(sent2))
	}
	for i := range sent1 {
		if model.MessageFingerprint(sent1[i]) != model.MessageFingerprint(sent2[i]) {
			return fmt.Sprintf("send %d differs between runs (%s vs %s)", i+1, sent1[i], sent2[i])
		}
	}
	return ""
}

// outbox is the Context implementation handed to handlers: it records the
// sends of one execution.
type outbox struct {
	self model.NodeID
	n    int
	sent []Envelope
	err  error
}

// Self implements Context.
func (o *outbox) Self() model.NodeID { return o.self }

// NumNodes implements Context.
func (o *outbox) NumNodes() int { return o.n }

// Send implements Context. A payload sent to an out-of-range node (or a nil
// payload) fails the whole handler execution rather than being dropped —
// a real implementation that addresses a nonexistent peer is broken, and
// silently losing the send would hide it.
func (o *outbox) Send(to model.NodeID, p Payload) {
	if o.err != nil {
		return
	}
	if int(to) < 0 || int(to) >= o.n {
		o.err = fmt.Errorf("actorcheck: %v sent to out-of-range node %d", o.self, int(to))
		return
	}
	if p == nil {
		o.err = fmt.Errorf("actorcheck: %v sent a nil payload", o.self)
		return
	}
	o.sent = append(o.sent, Envelope{From: o.self, To: to, P: p})
}
