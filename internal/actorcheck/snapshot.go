package actorcheck

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
)

// snapshot captures an actor's state: its own Snapshotter when it has one,
// otherwise the gob default.
func snapshot(a Actor) ([]byte, error) {
	if s, ok := a.(Snapshotter); ok {
		return s.Snapshot()
	}
	return gobSnapshot(a)
}

// restore is the inverse of snapshot, reconstructing state on a freshly
// constructed actor.
func restore(a Actor, blob []byte) error {
	if s, ok := a.(Snapshotter); ok {
		return s.Restore(blob)
	}
	return gobRestore(a, blob)
}

// gobSnapshot is the default state capture for actors that do not implement
// Snapshotter: gob-encode the actor value itself.
//
// This is only sound for plain structs — exported fields of fixed-layout
// types. It must NOT be used for actors holding maps (gob iterates them in
// random order, so equal states would snapshot to different bytes and the
// checker would see one state as many), unexported mutable fields (gob
// skips them, so they silently escape the state space), or pointers shared
// between instances. Such actors implement Snapshotter with an explicit
// canonical encoding; the conformance suite's round-trip and stability
// checks catch most violations.
func gobSnapshot(a Actor) ([]byte, error) {
	v := reflect.ValueOf(a)
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return nil, fmt.Errorf("actorcheck: gob snapshot of nil actor")
		}
		v = v.Elem()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v.Interface()); err != nil {
		return nil, fmt.Errorf("actorcheck: gob snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// gobRestore decodes a gob snapshot into the actor, which must be a pointer
// to a freshly constructed (zero-state) instance: gob decode merges into
// existing fields rather than resetting them, so restoring over a used
// instance would leak state between executions. The adapter always
// constructs fresh instances via the Factory, which guarantees this.
func gobRestore(a Actor, blob []byte) error {
	v := reflect.ValueOf(a)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		return fmt.Errorf("actorcheck: gob restore needs a non-nil pointer actor, got %T", a)
	}
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(a); err != nil {
		return fmt.Errorf("actorcheck: gob restore: %w", err)
	}
	return nil
}
