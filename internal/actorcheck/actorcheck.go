// Package actorcheck checks real actor-style Go implementations with the
// local model checker. The paper's machinery — per-node local-state spaces
// explored against the monotonic shared network I+, Cartesian system-state
// materialization, a-posteriori soundness verification — operates on
// model.Machine; this package puts an actual implementation (a mailbox plus
// a handler loop) behind that interface, intercepting every send and
// receive, so LMC-GEN and LMC-OPT explore the real code's local states
// rather than a hand-written model of them.
//
// The interception seam is narrow and explicit. An Actor is the system
// under test: a handler loop that reacts to delivered payloads and to
// node-local ticks (timers, application calls). The only side channel an
// actor is given is the Context passed to each handler — Send on it is the
// intercepted network. Everything else the checker needs is obtained by
// snapshotting the actor's state to canonical bytes between handler
// invocations, so the adapter's model.State is an opaque blob and the
// existing codec fingerprinting path applies unchanged.
//
// Determinism requirements (the adapter cannot check a real implementation
// that violates them):
//
//   - A handler's successor state and emissions must be a function of the
//     (state, delivered payload / tick) pair alone. No wall-clock reads, no
//     goroutine scheduling, no global mutable state: any nondeterminism
//     must be folded into the Tick value, mirroring the model.Machine
//     determinism contract.
//   - Snapshot must be canonical: semantically equal states must produce
//     identical bytes, because states are identified by the fingerprint of
//     the snapshot. (This is the reason the gob fallback is restricted to
//     plain structs — gob's map encoding is order-nondeterministic.)
//   - Restore(Snapshot(x)) must reproduce x exactly, as observed by the
//     actor's subsequent behavior and snapshots.
//
// Adapter.CheckDeterminism re-executes every handler twice from the same
// snapshot and compares the outcomes, turning a violated requirement into
// an immediate, attributed failure instead of an unsound exploration; the
// conformance suite (conformance.go) runs an actor through that mode plus
// snapshot round-trip and fingerprint-stability checks.
package actorcheck

import (
	"fmt"

	"lmc/internal/codec"
	"lmc/internal/model"
)

// Payload is the content of a message exchanged between actors. Payloads
// must be immutable once sent and must encode canonically (equal payloads →
// identical bytes) so the shared network can fingerprint them.
type Payload interface {
	codec.Encoder
	// String renders the payload for traces and bug reports.
	String() string
}

// Tick is a node-local event an actor can perform: a timer firing, an
// application call arriving. Ticks are the actor-world analogue of
// model.Action and carry the same obligations: canonical encoding, and any
// nondeterministic inputs (random choices, timestamps) folded into the
// value itself so re-executing a recorded tick replays identically.
type Tick interface {
	codec.Encoder
	// String renders the tick for traces and bug reports.
	String() string
}

// Context is the capability handed to an actor's handlers — the intercepted
// environment. Sending through it is the only legal way for the
// implementation to talk to the outside world; the adapter records the
// sends and feeds them to the checker's shared network.
type Context interface {
	// Self is the identity of the actor whose handler is executing.
	Self() model.NodeID
	// NumNodes is the size of the configured system.
	NumNodes() int
	// Send queues a payload for delivery to node to. Delivery is
	// asynchronous and unordered (the checker explores all interleavings);
	// sending to an out-of-range node fails the handler.
	Send(to model.NodeID, p Payload)
}

// Actor is the system under test: one node's mailbox handler loop.
//
// Handlers return a non-nil error to reject the delivery — a local
// assertion in the sense of the paper's §4.2: the message is impossible in
// the current state, and the checker discards the (state, event) branch
// rather than reporting a bug. Handlers may mutate the actor in place; the
// adapter snapshots after the handler returns.
type Actor interface {
	// OnMessage handles a payload delivered from another actor.
	OnMessage(ctx Context, from model.NodeID, p Payload) error
	// Ticks enumerates the node-local events currently enabled. The slice
	// must be freshly allocated or immutable, and its contents a function
	// of the actor's state alone.
	Ticks() []Tick
	// OnTick handles one of the enabled ticks.
	OnTick(ctx Context, t Tick) error
}

// Snapshotter is the state capture pair a checkable actor provides:
// Snapshot serializes the actor's complete mutable state to canonical
// bytes, Restore reconstructs it on a freshly constructed actor. Actors
// that do not implement it get the gob-based default (snapshot.go), which
// is only sound for plain structs — exported fields, no maps, no shared
// pointers.
type Snapshotter interface {
	Snapshot() ([]byte, error)
	Restore(blob []byte) error
}

// Factory constructs a fresh actor for node n in its initial state. The
// adapter calls it once per handler execution (state is restored into the
// fresh instance), so construction must be cheap and must not share
// mutable data between instances.
type Factory func(n model.NodeID) Actor

// BytesPayload is an opaque payload for implementations that carry their
// own wire format: the adapter fingerprints the raw bytes and never looks
// inside. The bytes must themselves be canonical (equal logical messages →
// equal bytes) for deduplication to work.
type BytesPayload struct {
	Data []byte `json:"data"`
}

// Encode implements codec.Encoder.
func (p BytesPayload) Encode(w *codec.Writer) {
	w.String("actorcheck.bytes")
	w.Bytes32(p.Data)
}

// String implements Payload.
func (p BytesPayload) String() string {
	return fmt.Sprintf("Bytes{%d bytes, %v}", len(p.Data), codec.Hash(p.Data))
}

// DeterminismError reports a handler that produced different outcomes on
// two executions from the same snapshot — a violated determinism
// requirement, attributed to the event that exposed it.
type DeterminismError struct {
	Node   model.NodeID
	Event  string // rendering of the delivery or tick
	Detail string
}

// Error implements error.
func (e *DeterminismError) Error() string {
	return fmt.Sprintf("actorcheck: nondeterministic handler on %v for %s: %s", e.Node, e.Event, e.Detail)
}
