// The table-driven adapter conformance suite: every adapter-backed
// implementation in the tree registers here, and future ones follow the
// same pattern — the reusable checks (snapshot round-trip, handler
// determinism) come from conformance.go, and fingerprint stability across
// worker counts runs the full checker at several worker settings and
// demands identical outcomes. Negative cases pin down that the suite
// actually catches the contract violations it exists for.
package actorcheck_test

import (
	"errors"
	"fmt"
	"testing"

	"lmc/internal/actorcheck"
	"lmc/internal/actordemo"
	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/spec"
)

// TestConformanceSuite runs the reusable checks plus cross-worker
// fingerprint stability over every conforming adapter configuration.
func TestConformanceSuite(t *testing.T) {
	cases := []struct {
		name  string
		build func() *actorcheck.Adapter
		inv   func(ad *actorcheck.Adapter) spec.Invariant
	}{
		{
			name:  "gob-counter-ring",
			build: func() *actorcheck.Adapter { return counterAdapter(3) },
			inv: func(*actorcheck.Adapter) spec.Invariant {
				return spec.InvariantFunc{InvName: "true", Fn: func(model.SystemState) *spec.Violation { return nil }}
			},
		},
		{
			name:  "actordemo-correct",
			build: func() *actorcheck.Adapter { return actordemo.NewAdapter(3, actordemo.NoBug, 1) },
			inv:   func(ad *actorcheck.Adapter) spec.Invariant { return actordemo.Atomicity(ad) },
		},
		{
			name:  "actordemo-majority-bug",
			build: func() *actorcheck.Adapter { return actordemo.NewAdapter(4, actordemo.MajorityBug, 2) },
			inv:   func(ad *actorcheck.Adapter) spec.Invariant { return actordemo.Atomicity(ad) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ad := tc.build()
			if err := actorcheck.CheckSnapshotRoundTrip(ad, 0); err != nil {
				t.Errorf("snapshot round-trip: %v", err)
			}
			if err := actorcheck.CheckHandlerDeterminism(ad, 0); err != nil {
				t.Errorf("handler determinism: %v", err)
			}

			// Fingerprint stability across worker counts: the same space,
			// bugs and state fingerprints whichever way the pool runs.
			// (SoundnessShare off — wall-clock deferral is the one knob
			// allowed to vary.)
			run := func(workers int) *core.Result {
				a := tc.build()
				return core.Check(a, model.InitialSystem(a), core.Options{
					Invariant: tc.inv(a), Workers: workers, SoundnessShare: -1})
			}
			base := run(-1)
			for _, w := range []int{0, 2, 4} {
				got := run(w)
				if base.Stats.NodeStates != got.Stats.NodeStates ||
					base.Stats.Transitions != got.Stats.Transitions ||
					base.Stats.SystemStates != got.Stats.SystemStates ||
					base.Stats.ConfirmedBugs != got.Stats.ConfirmedBugs {
					t.Fatalf("workers=%d diverged:\nseq: %s\ngot: %s",
						w, base.Stats.String(), got.Stats.String())
				}
				for i := range base.Bugs {
					if base.Bugs[i].System.Fingerprint() != got.Bugs[i].System.Fingerprint() {
						t.Fatalf("workers=%d bug %d fingerprint diverged", w, i)
					}
				}
			}
		})
	}
}

// globalSeq is the shared mutable state nondetActor leaks through —
// exactly the kind of bug CheckHandlerDeterminism exists to catch.
var globalSeq int

type nondetActor struct {
	ID int
	N  int
	On bool
}

func (a *nondetActor) Ticks() []actorcheck.Tick {
	if a.ID == 0 && !a.On {
		return []actorcheck.Tick{kick{}}
	}
	return nil
}

func (a *nondetActor) OnTick(ctx actorcheck.Context, _ actorcheck.Tick) error {
	a.On = true
	ctx.Send(model.NodeID((a.ID+1)%a.N), ping{Hop: 1})
	return nil
}

func (a *nondetActor) OnMessage(ctx actorcheck.Context, _ model.NodeID, _ actorcheck.Payload) error {
	globalSeq++ // state outside the snapshot: each execution sees a new value
	ctx.Send(model.NodeID((a.ID+1)%a.N), ping{Hop: globalSeq})
	return nil
}

// TestDeterminismCheckCatchesGlobalState: an actor reading mutable state
// outside its snapshot must be reported as a *DeterminismError naming the
// offending node.
func TestDeterminismCheckCatchesGlobalState(t *testing.T) {
	ad := actorcheck.New("nondet", 2, func(id model.NodeID) actorcheck.Actor {
		return &nondetActor{ID: int(id), N: 2}
	})
	err := actorcheck.CheckHandlerDeterminism(ad, 0)
	var de *actorcheck.DeterminismError
	if !errors.As(err, &de) {
		t.Fatalf("expected *DeterminismError, got %v", err)
	}
}

// driftSnapActor implements Snapshotter with a drifting encoding: every
// Snapshot call includes a counter, so restore+snapshot is never identity.
type driftSnapActor struct {
	ID    int
	taken int
}

func (a *driftSnapActor) Snapshot() ([]byte, error) {
	a.taken++
	return []byte(fmt.Sprintf("drift-%d", a.taken)), nil
}

func (a *driftSnapActor) Restore(blob []byte) error {
	_, err := fmt.Sscanf(string(blob), "drift-%d", &a.taken)
	return err
}

func (a *driftSnapActor) Ticks() []actorcheck.Tick { return nil }
func (a *driftSnapActor) OnTick(actorcheck.Context, actorcheck.Tick) error {
	return fmt.Errorf("no ticks")
}
func (a *driftSnapActor) OnMessage(actorcheck.Context, model.NodeID, actorcheck.Payload) error {
	return nil
}

// TestRoundTripCheckCatchesNonCanonicalSnapshot: a Snapshotter whose
// encoding is not a function of the state must fail the round-trip check.
func TestRoundTripCheckCatchesNonCanonicalSnapshot(t *testing.T) {
	ad := actorcheck.New("drift", 2, func(id model.NodeID) actorcheck.Actor {
		return &driftSnapActor{ID: int(id)}
	})
	if err := actorcheck.CheckSnapshotRoundTrip(ad, 0); err == nil {
		t.Fatal("drifting snapshot passed the round-trip check")
	}
}
