package actorcheck_test

import (
	"bytes"
	"testing"

	"lmc/internal/actorcheck"
	"lmc/internal/codec"
	"lmc/internal/model"
)

// fuzzEnvelope builds an envelope from raw fuzz inputs, normalizing the
// addressing into an n-node system.
func fuzzEnvelope(n int, from, to int, data []byte) actorcheck.Envelope {
	norm := func(v int) model.NodeID {
		v %= n
		if v < 0 {
			v += n
		}
		return model.NodeID(v)
	}
	return actorcheck.Envelope{From: norm(from), To: norm(to), P: actorcheck.BytesPayload{Data: data}}
}

// encodeBytes returns an envelope's canonical encoding.
func encodeBytes(e actorcheck.Envelope) []byte {
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	e.Encode(w)
	return w.Clone()
}

// FuzzEnvelopeRoundTrip fuzzes the adapter's intercepted-message encode
// path: canonical-encoding determinism, addressing injectivity, and the
// witness JSON round-trip (encode → decode → identical fingerprint), which
// is the path committed repro artifacts travel.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	f.Add(0, 1, []byte(nil), 4)
	f.Add(1, 0, []byte{}, 2)
	f.Add(2, 3, []byte("prepare"), 4)
	f.Add(-7, 12, []byte{0xA1, 0x00, 0xFF}, 3)
	f.Add(3, 3, bytes.Repeat([]byte{0x42}, 300), 5)
	f.Fuzz(func(t *testing.T, from, to int, data []byte, n int) {
		n = n % 8
		if n < 2 {
			n = 2
		}
		env := fuzzEnvelope(n, from, to, data)

		// Determinism: two encodings of the same envelope are identical.
		b1, b2 := encodeBytes(env), encodeBytes(env)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("encoding not deterministic: %x vs %x", b1, b2)
		}
		fp := model.MessageFingerprint(env)
		if fp != codec.Hash(b1) {
			t.Fatalf("fingerprint %v disagrees with hash of encoding %v", fp, codec.Hash(b1))
		}

		// Addressing injectivity: flipping any address bit changes the
		// encoding (payload bytes are length-prefixed, so address and
		// payload cannot alias).
		other := env
		other.From = model.NodeID((int(env.From) + 1) % n)
		if bytes.Equal(b1, encodeBytes(other)) && other.From != env.From {
			t.Fatal("distinct senders encode identically")
		}

		// Witness JSON round-trip through a registered adapter.
		ad := actorcheck.New("fuzz", n, newCounter(n))
		ad.RegisterPayloads(actorcheck.BytesPayload{})
		typ, jd, err := ad.EncodeMessage(env)
		if err != nil {
			t.Fatalf("EncodeMessage: %v", err)
		}
		back, err := ad.DecodeMessage(typ, jd)
		if err != nil {
			t.Fatalf("DecodeMessage: %v", err)
		}
		if model.MessageFingerprint(back) != fp {
			t.Fatalf("witness round-trip changed the message: %s vs %s", back, env)
		}
	})
}
