package actorcheck

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strconv"

	"lmc/internal/codec"
	"lmc/internal/model"
	"lmc/internal/trace"
)

// registry maps payload and tick type names to their reflect types, so
// witness schedules can be committed as JSON and decoded back. Types are
// registered once at adapter construction time — registration is not
// synchronized against concurrent checking.
type registry struct {
	payloads map[string]reflect.Type
	ticks    map[string]reflect.Type
}

// typeName is the registry key for a value's type: the package-qualified
// type string with any pointer stripped ("actordemo.Prepare").
func typeName(v any) string {
	t := reflect.TypeOf(v)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.String()
}

// RegisterPayloads makes the payload types (given as exemplar values)
// serializable in witness artifacts. Payload types must round-trip through
// encoding/json — only needed when witnesses are marshaled, not for
// checking itself.
func (ad *Adapter) RegisterPayloads(ps ...Payload) {
	if ad.reg.payloads == nil {
		ad.reg.payloads = make(map[string]reflect.Type)
	}
	for _, p := range ps {
		ad.reg.payloads[typeName(p)] = baseType(p)
	}
}

// RegisterTicks makes the tick types serializable in witness artifacts.
func (ad *Adapter) RegisterTicks(ts ...Tick) {
	if ad.reg.ticks == nil {
		ad.reg.ticks = make(map[string]reflect.Type)
	}
	for _, t := range ts {
		ad.reg.ticks[typeName(t)] = baseType(t)
	}
}

// baseType is a value's type with pointers stripped, plus whether the
// exemplar itself was a pointer — decoded values are rebuilt in the same
// shape the exemplar had.
func baseType(v any) reflect.Type {
	t := reflect.TypeOf(v)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t
}

// decodeRegistered rebuilds a value of the registered type from JSON,
// returned as the pointer-free value (payload and tick exemplars are
// expected to be value types; pointer payloads also work since interface
// satisfaction is checked at use).
func decodeRegistered(types map[string]reflect.Type, kind, typ string, data json.RawMessage) (any, error) {
	t, ok := types[typ]
	if !ok {
		return nil, fmt.Errorf("actorcheck: unregistered %s type %q", kind, typ)
	}
	ptr := reflect.New(t)
	if err := json.Unmarshal(data, ptr.Interface()); err != nil {
		return nil, fmt.Errorf("actorcheck: decoding %s %q: %w", kind, typ, err)
	}
	return ptr.Elem().Interface(), nil
}

// envelopeJSON is the serialized form of an Envelope; the payload type tag
// travels in the enclosing JSONEvent.
type envelopeJSON struct {
	From    int             `json:"from"`
	To      int             `json:"to"`
	Payload json.RawMessage `json:"payload"`
}

// tickJSON is the serialized form of a TickAction.
type tickJSON struct {
	Node int             `json:"node"`
	Tick json.RawMessage `json:"tick"`
}

// EncodeMessage implements trace.EventCodec.
func (ad *Adapter) EncodeMessage(m model.Message) (string, json.RawMessage, error) {
	env, ok := m.(Envelope)
	if !ok {
		return "", nil, fmt.Errorf("actorcheck: %T is not an adapter envelope", m)
	}
	name := typeName(env.P)
	if _, ok := ad.reg.payloads[name]; !ok {
		return "", nil, fmt.Errorf("actorcheck: unregistered payload type %q", name)
	}
	pd, err := json.Marshal(env.P)
	if err != nil {
		return "", nil, fmt.Errorf("actorcheck: encoding payload %q: %w", name, err)
	}
	data, err := json.Marshal(envelopeJSON{From: int(env.From), To: int(env.To), Payload: pd})
	if err != nil {
		return "", nil, err
	}
	return name, data, nil
}

// DecodeMessage implements trace.EventCodec.
func (ad *Adapter) DecodeMessage(typ string, data json.RawMessage) (model.Message, error) {
	var ej envelopeJSON
	if err := json.Unmarshal(data, &ej); err != nil {
		return nil, fmt.Errorf("actorcheck: decoding envelope: %w", err)
	}
	v, err := decodeRegistered(ad.reg.payloads, "payload", typ, ej.Payload)
	if err != nil {
		return nil, err
	}
	p, ok := v.(Payload)
	if !ok {
		return nil, fmt.Errorf("actorcheck: registered type %q does not implement Payload as a value", typ)
	}
	if ej.From < 0 || ej.From >= ad.n || ej.To < 0 || ej.To >= ad.n {
		return nil, fmt.Errorf("actorcheck: envelope %d→%d out of range for %d nodes", ej.From, ej.To, ad.n)
	}
	return Envelope{From: model.NodeID(ej.From), To: model.NodeID(ej.To), P: p}, nil
}

// EncodeAction implements trace.EventCodec.
func (ad *Adapter) EncodeAction(a model.Action) (string, json.RawMessage, error) {
	ta, ok := a.(TickAction)
	if !ok {
		return "", nil, fmt.Errorf("actorcheck: %T is not an adapter tick action", a)
	}
	name := typeName(ta.T)
	if _, ok := ad.reg.ticks[name]; !ok {
		return "", nil, fmt.Errorf("actorcheck: unregistered tick type %q", name)
	}
	td, err := json.Marshal(ta.T)
	if err != nil {
		return "", nil, fmt.Errorf("actorcheck: encoding tick %q: %w", name, err)
	}
	data, err := json.Marshal(tickJSON{Node: int(ta.N), Tick: td})
	if err != nil {
		return "", nil, err
	}
	return name, data, nil
}

// DecodeAction implements trace.EventCodec.
func (ad *Adapter) DecodeAction(typ string, data json.RawMessage) (model.Action, error) {
	var tj tickJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return nil, fmt.Errorf("actorcheck: decoding tick action: %w", err)
	}
	v, err := decodeRegistered(ad.reg.ticks, "tick", typ, tj.Tick)
	if err != nil {
		return nil, err
	}
	t, ok := v.(Tick)
	if !ok {
		return nil, fmt.Errorf("actorcheck: registered type %q does not implement Tick as a value", typ)
	}
	if tj.Node < 0 || tj.Node >= ad.n {
		return nil, fmt.Errorf("actorcheck: tick on node %d out of range for %d nodes", tj.Node, ad.n)
	}
	return TickAction{N: model.NodeID(tj.Node), T: t}, nil
}

// Witness is a committed bug reproduction: the schedule that drives the
// system from its initial state to a state violating the invariant, plus
// the fingerprint of that final state. It is the JSON artifact the golden
// witness-trace test pins down, replayable both through the adapter
// (trace.Replay) and through the raw implementation (ReplayRaw).
type Witness struct {
	Machine   string            `json:"machine"`
	Invariant string            `json:"invariant"`
	FinalFP   string            `json:"final_fingerprint"`
	Schedule  []trace.JSONEvent `json:"schedule"`
}

// MarshalWitness serializes a witness schedule as an indented, committable
// JSON artifact.
func (ad *Adapter) MarshalWitness(invariant string, finalFP codec.Fingerprint, sc trace.Schedule) ([]byte, error) {
	evs, err := trace.ScheduleToJSON(sc, ad)
	if err != nil {
		return nil, err
	}
	w := Witness{Machine: ad.name, Invariant: invariant, FinalFP: finalFP.String(), Schedule: evs}
	out, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// UnmarshalWitness parses a witness artifact and rebuilds its schedule.
func (ad *Adapter) UnmarshalWitness(data []byte) (*Witness, trace.Schedule, codec.Fingerprint, error) {
	var w Witness
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, nil, 0, fmt.Errorf("actorcheck: parsing witness: %w", err)
	}
	if w.Machine != ad.name {
		return nil, nil, 0, fmt.Errorf("actorcheck: witness is for machine %q, adapter is %q", w.Machine, ad.name)
	}
	sc, err := trace.ScheduleFromJSON(w.Schedule, ad)
	if err != nil {
		return nil, nil, 0, err
	}
	raw, err := strconv.ParseUint(w.FinalFP, 16, 64)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("actorcheck: parsing witness fingerprint %q: %w", w.FinalFP, err)
	}
	return &w, sc, codec.Fingerprint(raw), nil
}
