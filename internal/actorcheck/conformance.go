package actorcheck

import (
	"bytes"
	"fmt"

	"lmc/internal/codec"
	"lmc/internal/model"
)

// This file is the reusable half of the adapter conformance suite: checks
// any adapter-backed implementation must pass before its exploration
// results mean anything. They are exported, error-returning functions so
// implementations outside this package (actordemo today, any future SUT)
// can table-drive them from their own tests; conformance_test.go runs them
// plus the cross-worker fingerprint-parity check that needs the full
// checker.

// DefaultConformanceStates bounds the conformance walk when the caller
// passes no explicit limit.
const DefaultConformanceStates = 4096

// Conformance runs every adapter-local conformance check: snapshot
// round-trip identity and handler determinism under repeated delivery,
// over up to maxStates reachable states (<= 0 means
// DefaultConformanceStates).
func Conformance(ad *Adapter, maxStates int) error {
	if err := CheckSnapshotRoundTrip(ad, maxStates); err != nil {
		return err
	}
	return CheckHandlerDeterminism(ad, maxStates)
}

// CheckSnapshotRoundTrip walks the reachable state space and verifies the
// Snapshotter contract on every state: restoring a snapshot into a fresh
// actor and snapshotting again must reproduce the bytes exactly. A
// violation means equal states do not encode equally — the checker would
// see one state as many (a state-space explosion at best, missed
// deduplication soundness at worst).
func CheckSnapshotRoundTrip(ad *Adapter, maxStates int) error {
	return walk(ad, maxStates, func(n model.NodeID, s *NodeState) error {
		a, err := ad.restore(n, s.blob)
		if err != nil {
			return fmt.Errorf("actorcheck: restore of %v state %v failed: %w", n, codec.Hash(s.blob), err)
		}
		again, err := snapshot(a)
		if err != nil {
			return fmt.Errorf("actorcheck: re-snapshot of %v state %v failed: %w", n, codec.Hash(s.blob), err)
		}
		if !bytes.Equal(s.blob, again) {
			return fmt.Errorf("actorcheck: snapshot round-trip of %v state %v not identity (%d bytes vs %d)",
				n, codec.Hash(s.blob), len(s.blob), len(again))
		}
		return nil
	})
}

// CheckHandlerDeterminism walks the reachable state space with the
// adapter's double-execution mode enabled: every handler runs twice from
// the same snapshot, and the first diverging outcome is reported as a
// *DeterminismError naming the node and event. This is the check that
// catches wall-clock reads, map-iteration-order dependence and shared
// mutable state in the implementation.
func CheckHandlerDeterminism(ad *Adapter, maxStates int) (err error) {
	prev := ad.CheckDeterminism
	ad.CheckDeterminism = true
	defer func() {
		ad.CheckDeterminism = prev
		if r := recover(); r != nil {
			de, ok := r.(*DeterminismError)
			if !ok {
				panic(r)
			}
			err = de
		}
	}()
	return walk(ad, maxStates, func(model.NodeID, *NodeState) error { return nil })
}

// walk explores the adapter's per-node state spaces against a monotonic
// shared message pool — the paper's I+ loop in miniature, without any of
// the checker's bookkeeping — calling visit once per newly discovered node
// state (including the initial ones). The walk stops at a fixpoint or
// after maxStates visits, whichever is first.
func walk(ad *Adapter, maxStates int, visit func(model.NodeID, *NodeState) error) error {
	if maxStates <= 0 {
		maxStates = DefaultConformanceStates
	}
	type stateKey struct {
		n  model.NodeID
		fp codec.Fingerprint
	}
	type comboKey struct {
		sk stateKey
		ev codec.Fingerprint
	}
	states := make(map[model.NodeID][]*NodeState)
	seenState := make(map[stateKey]bool)
	seenMsg := make(map[codec.Fingerprint]bool)
	var pool []Envelope
	tried := make(map[comboKey]bool)
	visited := 0

	addState := func(n model.NodeID, s model.State) error {
		st, ok := s.(*NodeState)
		if !ok {
			return fmt.Errorf("actorcheck: walk got %T, not an adapter state", s)
		}
		key := stateKey{n: n, fp: codec.Hash(st.blob)}
		if seenState[key] {
			return nil
		}
		seenState[key] = true
		states[n] = append(states[n], st)
		visited++
		return visit(n, st)
	}
	addMsgs := func(ms []model.Message) {
		for _, m := range ms {
			env, ok := m.(Envelope)
			if !ok {
				continue
			}
			fp := model.MessageFingerprint(env)
			if !seenMsg[fp] {
				seenMsg[fp] = true
				pool = append(pool, env)
			}
		}
	}

	for i := 0; i < ad.n; i++ {
		if err := addState(model.NodeID(i), ad.Init(model.NodeID(i))); err != nil {
			return err
		}
	}

	for changed := true; changed && visited < maxStates; {
		changed = false
		for n := 0; n < ad.n; n++ {
			node := model.NodeID(n)
			// Index-based loop: states[node] grows while we iterate.
			for i := 0; i < len(states[node]) && visited < maxStates; i++ {
				s := states[node][i]
				sk := stateKey{n: node, fp: codec.Hash(s.blob)}
				for _, a := range ad.Actions(node, s) {
					ck := comboKey{sk: sk, ev: model.ActEvent(a).Fingerprint()}
					if tried[ck] {
						continue
					}
					tried[ck] = true
					next, out := ad.HandleAction(node, s.Clone(), a)
					if next == nil {
						continue
					}
					changed = true
					if err := addState(node, next); err != nil {
						return err
					}
					addMsgs(out)
				}
				// pool also grows while we iterate.
				for j := 0; j < len(pool); j++ {
					env := pool[j]
					if env.To != node {
						continue
					}
					ck := comboKey{sk: sk, ev: model.RecvEvent(env).Fingerprint()}
					if tried[ck] {
						continue
					}
					tried[ck] = true
					next, out := ad.HandleMessage(node, s.Clone(), env)
					if next == nil {
						continue
					}
					changed = true
					if err := addState(node, next); err != nil {
						return err
					}
					addMsgs(out)
				}
			}
		}
	}
	return nil
}
