package actorcheck

import (
	"fmt"

	"lmc/internal/model"
	"lmc/internal/netstate"
)

// ReplayRaw implements model.RawReplayer: it re-drives an event sequence
// through the wrapped implementation the way a real deployment would run it
// — one live actor per node, restored once at the start and then mutating
// in place across events, with no per-event snapshot/restore and no
// interception beyond send capture. A witness schedule that replays here to
// the claimed final state is a bug of the real code, not of the adapter's
// seam: the checker's model-level replay (package trace) exercises the
// snapshot path on every event, while this replay exercises none of it.
//
// The network is the same consuming multiset semantics as trace.Replay:
// each delivery must find its envelope in flight (one copy consumed), each
// tick must be among the actor's currently enabled ticks. Any divergence —
// a missing message, a disabled tick, a handler rejection — fails the
// replay, and core treats the witness as unsound.
func (ad *Adapter) ReplayRaw(start model.SystemState, inflight []model.Message, events []model.Event) (model.SystemState, error) {
	if len(start) != ad.n {
		return nil, fmt.Errorf("actorcheck: raw replay start has %d nodes, adapter has %d", len(start), ad.n)
	}
	actors := make([]Actor, ad.n)
	for i := range actors {
		st, ok := start[i].(*NodeState)
		if !ok {
			return nil, fmt.Errorf("actorcheck: raw replay start state %d is %T, not an adapter state", i, start[i])
		}
		a, err := ad.restore(model.NodeID(i), st.blob)
		if err != nil {
			return nil, fmt.Errorf("actorcheck: raw replay restore of node %d: %w", i, err)
		}
		actors[i] = a
	}
	net := netstate.NewMultiset()
	net.AddAll(inflight)

	for i, e := range events {
		if int(e.Node) < 0 || int(e.Node) >= ad.n {
			return nil, fmt.Errorf("actorcheck: raw replay event %d (%s): node out of range", i+1, e)
		}
		ob := &outbox{self: e.Node, n: ad.n}
		switch e.Kind {
		case model.NetworkEvent:
			env, ok := e.Msg.(Envelope)
			if !ok || env.To != e.Node {
				return nil, fmt.Errorf("actorcheck: raw replay event %d (%s): not an envelope for %v", i+1, e, e.Node)
			}
			if !net.Remove(model.MessageFingerprint(env)) {
				return nil, fmt.Errorf("actorcheck: raw replay event %d (%s): message not in flight", i+1, e)
			}
			if err := actors[e.Node].OnMessage(ob, env.From, env.P); err != nil {
				return nil, fmt.Errorf("actorcheck: raw replay event %d (%s): handler rejected: %w", i+1, e, err)
			}
		case model.InternalEvent:
			ta, ok := e.Act.(TickAction)
			if !ok || ta.N != e.Node {
				return nil, fmt.Errorf("actorcheck: raw replay event %d (%s): not a tick for %v", i+1, e, e.Node)
			}
			if !tickEnabled(actors[e.Node], e.Node, ta) {
				return nil, fmt.Errorf("actorcheck: raw replay event %d (%s): tick not enabled", i+1, e)
			}
			if err := actors[e.Node].OnTick(ob, ta.T); err != nil {
				return nil, fmt.Errorf("actorcheck: raw replay event %d (%s): handler rejected: %w", i+1, e, err)
			}
		default:
			return nil, fmt.Errorf("actorcheck: raw replay event %d: invalid kind", i+1)
		}
		if ob.err != nil {
			return nil, fmt.Errorf("actorcheck: raw replay event %d (%s): %w", i+1, e, ob.err)
		}
		for _, env := range ob.sent {
			net.Add(env)
		}
	}

	// Snapshot only at the very end, to compare against the checker's
	// claimed final state by fingerprint.
	final := make(model.SystemState, ad.n)
	for i, a := range actors {
		blob, err := snapshot(a)
		if err != nil {
			return nil, fmt.Errorf("actorcheck: raw replay final snapshot of node %d: %w", i, err)
		}
		final[i] = &NodeState{ad: ad, node: model.NodeID(i), blob: blob}
	}
	return final, nil
}

// tickEnabled reports whether the live actor currently enables the tick,
// compared by event fingerprint like every other replayer in the tree.
func tickEnabled(a Actor, n model.NodeID, ta TickAction) bool {
	want := model.ActEvent(ta).Fingerprint()
	for _, t := range a.Ticks() {
		if model.ActEvent(TickAction{N: n, T: t}).Fingerprint() == want {
			return true
		}
	}
	return false
}
