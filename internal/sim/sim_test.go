package sim_test

import (
	"math/rand"
	"testing"

	"lmc/internal/model"
	"lmc/internal/protocols/paxos"
	"lmc/internal/sim"
	"lmc/internal/simnet"
)

func newPaxosSim(seed int64, drop float64) (*paxos.Machine, *sim.Sim) {
	m := paxos.New(3, paxos.NoBug, paxos.NoDriver{})
	s := sim.New(sim.Config{
		Machine:   m,
		Net:       simnet.Config{Seed: seed, DropProb: drop},
		Seed:      seed + 1,
		AppPeriod: 30,
		App:       paxos.LiveApp(m.P),
	})
	return m, s
}

// TestLosslessRunDecides: with no loss, live Paxos decides values.
func TestLosslessRunDecides(t *testing.T) {
	_, s := newPaxosSim(3, 0)
	s.RunUntil(300)
	chosen := 0
	for n := 0; n < 3; n++ {
		st := s.State(model.NodeID(n)).(*paxos.State)
		chosen += len(st.ChosenSet())
	}
	if chosen == 0 {
		t.Fatalf("no decisions after 300 s: %+v", s.Stats)
	}
	if s.Stats.Deliveries == 0 || s.Stats.AppCalls == 0 {
		t.Fatalf("no activity: %+v", s.Stats)
	}
}

// TestDeterministicReplay: two sims with equal seeds evolve identically.
func TestDeterministicReplay(t *testing.T) {
	_, a := newPaxosSim(9, 0.3)
	_, b := newPaxosSim(9, 0.3)
	a.RunUntil(600)
	b.RunUntil(600)
	if a.Snapshot().Fingerprint() != b.Snapshot().Fingerprint() {
		t.Fatal("equal seeds diverged")
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestSeedsDiffer: different seeds explore different runs.
func TestSeedsDiffer(t *testing.T) {
	_, a := newPaxosSim(1, 0.3)
	_, b := newPaxosSim(2, 0.3)
	a.RunUntil(600)
	b.RunUntil(600)
	if a.Snapshot().Fingerprint() == b.Snapshot().Fingerprint() {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

// TestSnapshotIsolated: mutating a snapshot does not touch the live run.
func TestSnapshotIsolated(t *testing.T) {
	_, s := newPaxosSim(5, 0)
	s.RunUntil(100)
	snap := s.Snapshot()
	before := s.Snapshot().Fingerprint()
	snap[0].(*paxos.State).SetChosen(99, 1)
	if s.Snapshot().Fingerprint() != before {
		t.Fatal("snapshot aliases live state")
	}
}

// TestTimeAdvances: RunUntil moves the clock even with no events.
func TestTimeAdvances(t *testing.T) {
	m := paxos.New(3, paxos.NoBug, paxos.NoDriver{})
	s := sim.New(sim.Config{
		Machine: m,
		Net:     simnet.Config{Seed: 1},
		App: func(*rand.Rand, model.NodeID, model.State) []model.Action {
			return nil
		},
	})
	s.RunUntil(123)
	if s.Now() != 123 {
		t.Fatalf("now=%f", s.Now())
	}
}

// TestDropsReduceDeliveries: a lossy network delivers strictly less.
func TestDropsReduceDeliveries(t *testing.T) {
	_, lossless := newPaxosSim(11, 0)
	_, lossy := newPaxosSim(11, 0.5)
	lossless.RunUntil(600)
	lossy.RunUntil(600)
	if lossy.Network().Dropped == 0 {
		t.Fatal("lossy network dropped nothing")
	}
	if lossy.Stats.Deliveries >= lossless.Stats.Deliveries {
		t.Fatalf("lossy deliveries %d >= lossless %d",
			lossy.Stats.Deliveries, lossless.Stats.Deliveries)
	}
}
