// Package sim is the discrete-event live runtime: the "running system" the
// paper's online model checker snapshots periodically (Figure 6). Nodes
// execute the same model.Machine handlers the checkers analyze; messages
// travel through a seeded lossy network (simnet); an application driver
// fires node-local calls at random times — for Paxos, "each node proposes
// its Id for a new index and then sleeps for a random time between 0 and
// 60 s" (§5.5); for 1Paxos, the application "triggers the fault detector
// with the probability of 0.1" (§5.6).
package sim

import (
	"container/heap"
	"math/rand"

	"lmc/internal/model"
	"lmc/internal/simnet"
)

// AppFunc is the application driver: called when node n's application timer
// fires, it returns the internal actions to attempt. The rng is the
// simulation's seeded generator — the only sanctioned source of
// randomness, so runs replay identically for a fixed seed.
type AppFunc func(rng *rand.Rand, n model.NodeID, s model.State) []model.Action

// Config parameterizes a live run.
type Config struct {
	// Machine is the protocol under test.
	Machine model.Machine
	// Net configures the lossy network.
	Net simnet.Config
	// Seed seeds application-timer randomness.
	Seed int64
	// AppPeriod is the maximum application sleep: each node's application
	// timer re-fires after a uniform delay in [0, AppPeriod) simulated
	// seconds (the paper's 0–60 s).
	AppPeriod float64
	// App is the application driver; nil runs a pure network simulation.
	App AppFunc
}

// event is one scheduled occurrence.
type event struct {
	at  float64
	seq int // FIFO tie-break for equal times
	// msg is set for a delivery event; otherwise the event is node's
	// application timer.
	msg  model.Message
	node model.NodeID
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Stats counts what happened during the run.
type Stats struct {
	Deliveries int
	Rejections int
	AppCalls   int
	Actions    int
}

// Sim is a live run in progress.
type Sim struct {
	cfg Config
	net *simnet.Net
	rng *rand.Rand

	now    float64
	seq    int
	events eventHeap
	sys    model.SystemState

	// Stats accumulates run counters.
	Stats Stats
}

// New builds a live run at time zero with every node in its initial state
// and application timers armed.
func New(cfg Config) *Sim {
	if cfg.AppPeriod <= 0 {
		cfg.AppPeriod = 60
	}
	s := &Sim{
		cfg: cfg,
		net: simnet.New(cfg.Net),
		rng: rand.New(rand.NewSource(cfg.Seed)),
		sys: model.InitialSystem(cfg.Machine),
	}
	for n := 0; n < cfg.Machine.NumNodes(); n++ {
		s.scheduleApp(model.NodeID(n))
	}
	return s
}

// Now is the current simulated time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Network exposes the underlying lossy network's counters.
func (s *Sim) Network() *simnet.Net { return s.net }

// Snapshot clones the current system state — the live state the online
// checker restarts from. In-flight messages are not captured, exactly as
// in the paper's scheme.
func (s *Sim) Snapshot() model.SystemState { return s.sys.Clone() }

// State returns node n's current state (not cloned).
func (s *Sim) State(n model.NodeID) model.State { return s.sys[n] }

// scheduleApp arms node n's next application timer.
func (s *Sim) scheduleApp(n model.NodeID) {
	delay := s.rng.Float64() * s.cfg.AppPeriod
	s.seq++
	heap.Push(&s.events, event{at: s.now + delay, seq: s.seq, node: n})
}

// send routes emitted messages through the lossy network.
func (s *Sim) send(ms []model.Message) {
	for _, m := range ms {
		delay, dropped := s.net.Transmit(m)
		if dropped {
			continue
		}
		s.seq++
		heap.Push(&s.events, event{at: s.now + delay, seq: s.seq, msg: m, node: m.Dst()})
	}
}

// RunUntil advances the simulation to time t.
func (s *Sim) RunUntil(t float64) {
	for s.events.Len() > 0 {
		if s.events[0].at > t {
			break
		}
		ev := heap.Pop(&s.events).(event)
		s.now = ev.at
		if ev.msg != nil {
			s.deliver(ev.msg)
			continue
		}
		s.fireApp(ev.node)
	}
	if s.now < t {
		s.now = t
	}
}

// deliver executes a message handler on the destination node.
func (s *Sim) deliver(m model.Message) {
	n := m.Dst()
	next, out := s.cfg.Machine.HandleMessage(n, s.sys[n].Clone(), m)
	s.Stats.Deliveries++
	if next == nil {
		s.Stats.Rejections++
		return
	}
	s.sys[n] = next
	s.send(out)
}

// fireApp runs the application driver on node n and re-arms its timer.
func (s *Sim) fireApp(n model.NodeID) {
	s.Stats.AppCalls++
	if s.cfg.App != nil {
		for _, a := range s.cfg.App(s.rng, n, s.sys[n]) {
			next, out := s.cfg.Machine.HandleAction(n, s.sys[n].Clone(), a)
			s.Stats.Actions++
			if next == nil {
				s.Stats.Rejections++
				continue
			}
			s.sys[n] = next
			s.send(out)
		}
	}
	s.scheduleApp(n)
}
