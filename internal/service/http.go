package service

import (
	"encoding/json"
	"net/http"

	"lmc/internal/bench"
)

// Handler returns the service's HTTP API, mounted by cmd/lmc on the same
// listener as expvar and pprof:
//
//	POST /jobs              submit a JobSpec, returns its JobStatus (202)
//	GET  /jobs              list all jobs
//	GET  /jobs/{id}         one job's status (includes result when done)
//	POST /jobs/{id}/cancel  stop at the next round barrier / drop if queued
//	GET  /runs              checkpoint store buckets (RunMeta)
//	GET  /workloads         the bench registry (valid JobSpec.Workload values)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
			return
		}
		st, err := s.Submit(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Job(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if !s.Cancel(r.PathValue("id")) {
			http.Error(w, "no such job (or already finished)", http.StatusNotFound)
			return
		}
		st, _ := s.Job(r.PathValue("id"))
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.st.Runs())
	})

	mux.HandleFunc("GET /workloads", func(w http.ResponseWriter, r *http.Request) {
		type entry struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		}
		var out []entry
		for _, wl := range bench.Workloads() {
			out = append(out, entry{wl.Name, wl.Description})
		}
		writeJSON(w, http.StatusOK, out)
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
