package service_test

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lmc/internal/bench"
	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/obs"
	"lmc/internal/service"
	"lmc/internal/shard"
	"lmc/internal/store"
)

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "svc.lmcstore"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// startService runs the job loop until the test ends.
func startService(t *testing.T, cfg service.Config) *service.Service {
	t.Helper()
	s := service.New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go s.Run(ctx)
	return s
}

// waitJob polls until the job leaves the queued/running states.
func waitJob(t *testing.T, s *service.Service, id string) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State != service.StateQueued && st.State != service.StateRunning {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return service.JobStatus{}
}

func TestServiceJobLifecycle(t *testing.T) {
	st := openStore(t)
	s := startService(t, service.Config{Store: st})

	sub, err := s.Submit(service.JobSpec{Workload: "paxos"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID != "job-1" || sub.State != service.StateQueued {
		t.Fatalf("fresh submission: %+v", sub)
	}
	got := waitJob(t, s, sub.ID)
	if got.State != service.StateDone {
		t.Fatalf("state=%s err=%q", got.State, got.Error)
	}
	if got.Result == nil || !got.Result.Complete || len(got.Result.Bugs) != 0 {
		t.Fatalf("correct paxos result: %+v", got.Result)
	}
	if got.CheckpointRounds == 0 {
		t.Fatal("no rounds checkpointed")
	}
	if got.RunID != sub.ID {
		t.Fatalf("run bucket %q, want the job ID", got.RunID)
	}

	// The result is durable: the store bucket is finished, carries the
	// serialized result, and holds every checkpointed round.
	meta, ok := st.Run(sub.ID)
	if !ok || !meta.Done {
		t.Fatalf("store bucket not finished: %+v", meta)
	}
	if meta.Rounds != got.CheckpointRounds {
		t.Fatalf("store has %d rounds, status says %d", meta.Rounds, got.CheckpointRounds)
	}
	var stored service.JobResult
	if err := json.Unmarshal([]byte(meta.Detail), &stored); err != nil {
		t.Fatalf("stored detail is not a JobResult: %v", err)
	}
	if stored.Stats.Transitions != got.Result.Stats.Transitions {
		t.Fatal("stored result diverged from reported result")
	}
}

func TestServiceFindsBugs(t *testing.T) {
	st := openStore(t)
	s := startService(t, service.Config{Store: st})
	sub, err := s.Submit(service.JobSpec{Workload: "twophase-bug", First: true})
	if err != nil {
		t.Fatal(err)
	}
	got := waitJob(t, s, sub.ID)
	if got.State != service.StateDone || got.Result == nil {
		t.Fatalf("state=%s", got.State)
	}
	if len(got.Result.Bugs) == 0 {
		t.Fatal("majority 2PC bug not reported")
	}
	if got.Result.Bugs[0].Invariant == "" || got.Result.Bugs[0].Detail == "" {
		t.Fatalf("bug summary incomplete: %+v", got.Result.Bugs[0])
	}
}

func TestServiceGlobalChecker(t *testing.T) {
	st := openStore(t)
	s := startService(t, service.Config{Store: st})
	sub, err := s.Submit(service.JobSpec{Workload: "tree", Checker: "global"})
	if err != nil {
		t.Fatal(err)
	}
	got := waitJob(t, s, sub.ID)
	if got.State != service.StateDone || !got.Result.Complete {
		t.Fatalf("global job: state=%s result=%+v", got.State, got.Result)
	}
	// The global checker has no round structure, so nothing checkpoints.
	if got.CheckpointRounds != 0 {
		t.Fatalf("global job checkpointed %d rounds", got.CheckpointRounds)
	}
}

func TestServiceSubmitRejects(t *testing.T) {
	st := openStore(t)
	s := service.New(service.Config{Store: st})
	cases := []struct {
		spec service.JobSpec
		want string
	}{
		{service.JobSpec{}, "workload"},
		{service.JobSpec{Workload: "no-such"}, "unknown workload"},
		{service.JobSpec{Workload: "paxos", Checker: "tlc"}, "unknown checker"},
		{service.JobSpec{Workload: "paxos", Budget: "fast"}, "budget"},
		{service.JobSpec{Workload: "paxos", Depth: -1}, "depth"},
		{service.JobSpec{Workload: "paxos", Reduce: "magic"}, "magic"},
	}
	for i, tc := range cases {
		if _, err := s.Submit(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("case %d: err=%v, want containing %q", i, err, tc.want)
		}
	}
	if _, err := s.Submit(service.JobSpec{ID: "dup", Workload: "paxos"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(service.JobSpec{ID: "dup", Workload: "paxos"}); err == nil {
		t.Fatal("duplicate job ID accepted")
	}
	// Without a Run loop the job stays queued; cancelling drops it.
	if !s.Cancel("dup") {
		t.Fatal("cancel of a queued job refused")
	}
	if got, _ := s.Job("dup"); got.State != service.StateCancelled {
		t.Fatalf("state=%s after cancel", got.State)
	}
	if s.Cancel("dup") {
		t.Fatal("cancel of a cancelled job accepted")
	}
}

// serviceOptions mirrors how the service builds core options for a default
// lmc-opt job, so manually planted "previous daemon" buckets explore the
// identical space.
func serviceOptions(t *testing.T, workload string) (bench.Workload, core.Options) {
	t.Helper()
	w, err := bench.Lookup(workload)
	if err != nil {
		t.Fatal(err)
	}
	return w, core.Options{
		Invariant:       w.Invariant,
		LocalInvariants: w.Locals,
		Reduction:       w.Reduction,
	}
}

// plantInterruptedRun simulates a daemon that died mid-job: it creates the
// job's bucket under the given code hash and runs the workload with the
// store sink attached, cancelling at the round-`rounds` barrier — exactly
// the state a SIGKILL at that barrier leaves behind.
func plantInterruptedRun(t *testing.T, st *store.Store, id, workload string, codeHash uint64, rounds int) {
	t.Helper()
	spec := service.JobSpec{ID: id, Workload: workload, Checker: "lmc-opt"}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateRun(id, string(specJSON), codeHash, spec.Sig()); err != nil {
		t.Fatal(err)
	}
	w, opt := serviceOptions(t, workload)
	opt.Checkpoint = st.Sink(id)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt.Observer = obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindCheckpoint && e.Detail == "" && e.Pass == 1 && e.Round == rounds {
			cancel()
		}
	})
	res, err := core.CheckContext(ctx, w.Machine, model.InitialSystem(w.Machine), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatalf("interrupted run completed before round %d; pick a shallower cut", rounds)
	}
	meta, _ := st.Run(id)
	if meta.Rounds != rounds {
		t.Fatalf("planted %d rounds, want %d", meta.Rounds, rounds)
	}
}

func TestServiceRecoverResumes(t *testing.T) {
	const codeHash = 7
	st := openStore(t)
	plantInterruptedRun(t, st, "j1", "paxos", codeHash, 2)

	// "Restart the daemon": a new service over the same store.
	s := service.New(service.Config{Store: st, CodeHash: codeHash})
	s.Recover()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)

	got := waitJob(t, s, "j1")
	if got.State != service.StateDone {
		t.Fatalf("state=%s err=%q", got.State, got.Error)
	}
	if !got.Result.Resumed {
		t.Fatal("recovered job did not resume from its checkpoints")
	}
	if got.Result.Invalidated != "" {
		t.Fatalf("clean resume reported an invalidation: %q", got.Result.Invalidated)
	}

	// The resumed result matches an uninterrupted run of the same job.
	w, opt := serviceOptions(t, "paxos")
	base, err := core.CheckContext(context.Background(), w.Machine, model.InitialSystem(w.Machine), opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Stats.Transitions != base.Stats.Transitions ||
		got.Result.Stats.SystemStates != base.Stats.SystemStates ||
		got.Result.Complete != base.Complete {
		t.Fatalf("resumed result diverged from uninterrupted run:\n got %+v\nbase %+v",
			got.Result.Stats, base.Stats)
	}

	// A second restart adopts the finished job without re-running it.
	s2 := service.New(service.Config{Store: st, CodeHash: codeHash})
	s2.Recover()
	adopted, ok := s2.Job("j1")
	if !ok || adopted.State != service.StateDone {
		t.Fatalf("finished job not adopted on restart: %+v", adopted)
	}
	if adopted.Result.Stats.Transitions != got.Result.Stats.Transitions {
		t.Fatal("adopted result diverged from the stored one")
	}
}

func TestServiceRecoverInvalidatesStaleCode(t *testing.T) {
	st := openStore(t)
	plantInterruptedRun(t, st, "j1", "paxos", 7, 2)

	// The "rebuilt" daemon has a different code hash: the stored rounds
	// are untrustworthy, so the job must re-run from scratch.
	s := service.New(service.Config{Store: st, CodeHash: 8})
	s.Recover()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)

	got := waitJob(t, s, "j1")
	if got.State != service.StateDone {
		t.Fatalf("state=%s err=%q", got.State, got.Error)
	}
	if got.Result.Resumed {
		t.Fatal("job resumed from checkpoints written by a different binary")
	}
	if !strings.Contains(got.Result.Invalidated, "binary") {
		t.Fatalf("invalidation reason %q", got.Result.Invalidated)
	}
	// The old bucket is invalidated; the fresh run checkpointed into a new
	// one and finished there.
	old, _ := st.Run("j1")
	if !old.Invalid {
		t.Fatal("stale bucket not invalidated")
	}
	if got.RunID == "j1" {
		t.Fatal("fresh run reused the invalidated bucket")
	}
	fresh, ok := st.Run(got.RunID)
	if !ok || !fresh.Done || fresh.Rounds == 0 {
		t.Fatalf("fresh bucket wrong: %+v", fresh)
	}
}

func TestServiceResumeDivergenceBackstop(t *testing.T) {
	const codeHash = 7
	st := openStore(t)
	// Plant checkpoints that CLAIM to be paxos (spec, sig, hash all match)
	// but were actually produced by a different protocol: the startup
	// staleness checks cannot catch this, only the per-round digest can.
	spec := service.JobSpec{ID: "j1", Workload: "paxos", Checker: "lmc-opt"}
	specJSON, _ := json.Marshal(spec)
	if err := st.CreateRun("j1", string(specJSON), codeHash, spec.Sig()); err != nil {
		t.Fatal(err)
	}
	w, opt := serviceOptions(t, "twophase")
	opt.Checkpoint = st.Sink("j1")
	ctx0, cancel0 := context.WithCancel(context.Background())
	defer cancel0()
	opt.Observer = obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindCheckpoint && e.Detail == "" && e.Pass == 1 && e.Round == 2 {
			cancel0()
		}
	})
	if _, err := core.CheckContext(ctx0, w.Machine, model.InitialSystem(w.Machine), opt); err != nil {
		t.Fatal(err)
	}

	s := service.New(service.Config{Store: st, CodeHash: codeHash})
	s.Recover()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)

	got := waitJob(t, s, "j1")
	if got.State != service.StateDone {
		t.Fatalf("state=%s err=%q", got.State, got.Error)
	}
	if !strings.Contains(got.Result.Invalidated, "diverged") {
		t.Fatalf("divergence not reported: %+v", got.Result)
	}
	if got.RunID == "j1" {
		t.Fatal("diverged bucket reused")
	}
	// The retry's fresh result matches a plain paxos run.
	pw, popt := serviceOptions(t, "paxos")
	base, err := core.CheckContext(context.Background(), pw.Machine, model.InitialSystem(pw.Machine), popt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Stats.Transitions != base.Stats.Transitions || !got.Result.Complete {
		t.Fatalf("post-divergence rerun diverged from a clean run:\n got %+v\nbase %+v",
			got.Result.Stats, base.Stats)
	}
	if old, _ := st.Run("j1"); !old.Invalid {
		t.Fatal("diverged bucket not invalidated")
	}
}

func TestServiceShardedJob(t *testing.T) {
	st := openStore(t)
	s := startService(t, service.Config{
		Store:   st,
		Spawner: shard.PipeSpawner{Resolve: bench.ShardResolver()},
	})
	sub, err := s.Submit(service.JobSpec{Workload: "paxos", Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := waitJob(t, s, sub.ID)
	if got.State != service.StateDone {
		t.Fatalf("state=%s err=%q", got.State, got.Error)
	}
	if got.CheckpointRounds == 0 {
		t.Fatal("sharded run did not checkpoint")
	}

	// Sharded and in-process jobs explore identically.
	w, opt := serviceOptions(t, "paxos")
	base, err := core.CheckContext(context.Background(), w.Machine, model.InitialSystem(w.Machine), opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Stats.Transitions != base.Stats.Transitions ||
		got.Result.Stats.SystemStates != base.Stats.SystemStates {
		t.Fatalf("sharded job diverged from in-process run:\n got %+v\nbase %+v",
			got.Result.Stats, base.Stats)
	}
	meta, ok := st.Run(sub.ID)
	if !ok || meta.Rounds != got.CheckpointRounds {
		t.Fatalf("store rounds=%d, status says %d", meta.Rounds, got.CheckpointRounds)
	}
}

// A job that asked for shards resumes fine on a daemon without a spawner:
// resumed runs always execute in-process (results are identical anyway).
func TestServiceResumedShardedSpecRunsInProcess(t *testing.T) {
	const codeHash = 7
	st := openStore(t)
	spec := service.JobSpec{ID: "j1", Workload: "paxos", Checker: "lmc-opt", Shards: 4}
	specJSON, _ := json.Marshal(spec)
	if err := st.CreateRun("j1", string(specJSON), codeHash, spec.Sig()); err != nil {
		t.Fatal(err)
	}
	w, opt := serviceOptions(t, "paxos")
	opt.Checkpoint = st.Sink("j1")
	ctx0, cancel0 := context.WithCancel(context.Background())
	defer cancel0()
	opt.Observer = obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindCheckpoint && e.Detail == "" && e.Pass == 1 && e.Round == 2 {
			cancel0()
		}
	})
	if _, err := core.CheckContext(ctx0, w.Machine, model.InitialSystem(w.Machine), opt); err != nil {
		t.Fatal(err)
	}

	s := service.New(service.Config{Store: st, CodeHash: codeHash})
	s.Recover()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)
	got := waitJob(t, s, "j1")
	if got.State != service.StateDone || !got.Result.Resumed || !got.Result.Complete {
		t.Fatalf("sharded-spec resume: state=%s result=%+v err=%q", got.State, got.Result, got.Error)
	}
}
