// Package service is the resident checking service behind `lmc serve`: a
// sequential job queue over the bench workload registry, executing each job
// under the parallel (and optionally sharded) engine with every completed
// round checkpointed to a persistent store (internal/store). Kill the
// daemon — SIGKILL included — and the next daemon over the same store file
// resumes every unfinished job from its last completed round, bit-for-bit:
// resumed results are identical to uninterrupted ones because resume just
// replays exploration with the stored delivery records primed into the
// canonical walk (internal/core/checkpoint.go).
//
// Staleness is handled at two levels. At startup, a stored run whose code
// hash (the checker binary's fingerprint) or options signature disagrees
// with the current daemon is invalidated and re-run fresh — handler code
// changed, so the records are lies. As a backstop, a resume whose
// post-round digest disagrees with the stored checkpoint stops with
// StopResumeDiverged; the service invalidates that run and re-runs it
// fresh under a new run ID.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"

	"lmc/internal/bench"
	"lmc/internal/core"
	"lmc/internal/mc/global"
	"lmc/internal/model"
	"lmc/internal/obs"
	"lmc/internal/shard"
	"lmc/internal/stats"
	"lmc/internal/store"
)

// JobSpec is the wire format of one job submission (POST /jobs).
type JobSpec struct {
	// ID names the job; empty means the service assigns job-<n>.
	ID string `json:"id,omitempty"`
	// Workload is a bench registry name (GET /workloads lists them).
	Workload string `json:"workload"`
	// Checker is "lmc-opt" (default), "lmc", "global" or "bfs".
	Checker string `json:"checker,omitempty"`
	// Reduce is the reduction spec for the LMC checkers ("sym,por", "all",
	// "none"; empty = off).
	Reduce string `json:"reduce,omitempty"`
	// Workers sets the in-process worker pool (0 = auto).
	Workers int `json:"workers,omitempty"`
	// Shards requests sharded multi-process exploration: the total process
	// count, coordinator included (<=1 = in-process).
	Shards int `json:"shards,omitempty"`
	// ShardBatch is the sharded run's digest cadence in rounds (<=0 =
	// default). Like Shards it never changes results, only synchronization
	// frequency, so it is excluded from Sig.
	ShardBatch int `json:"shard_batch,omitempty"`
	// Budget is a Go duration string bounding wall time ("30s"; empty =
	// unbounded).
	Budget string `json:"budget,omitempty"`
	// Depth bounds the per-node path depth (LMC) or event depth (global).
	Depth int `json:"depth,omitempty"`
	// First stops at the first confirmed bug.
	First bool `json:"first,omitempty"`
}

// Sig returns the job's options signature: exactly the fields that shape
// the explored state space. Workers, Shards and Budget are excluded —
// exploration is bit-for-bit identical across worker and shard counts, and
// a wall-clock budget only decides where a run stops, never what a
// completed round contains.
func (j JobSpec) Sig() uint64 {
	return store.OptionsSig(j.Workload, j.Checker, j.Reduce,
		strconv.Itoa(j.Depth), strconv.FormatBool(j.First))
}

// validate resolves and normalizes the spec.
func (j *JobSpec) validate() error {
	if j.Workload == "" {
		return fmt.Errorf("service: job needs a workload")
	}
	if _, err := bench.Lookup(j.Workload); err != nil {
		return err
	}
	switch j.Checker {
	case "":
		j.Checker = "lmc-opt"
	case "lmc-opt", "lmc", "global", "bfs":
	default:
		return fmt.Errorf("service: unknown checker %q (want lmc-opt, lmc, global, bfs)", j.Checker)
	}
	if _, err := core.ParseReductions(j.Reduce); err != nil {
		return err
	}
	if j.Budget != "" {
		if _, err := time.ParseDuration(j.Budget); err != nil {
			return fmt.Errorf("service: bad budget: %w", err)
		}
	}
	if j.Depth < 0 {
		return fmt.Errorf("service: negative depth")
	}
	return nil
}

// BugSummary is one confirmed bug in a job result.
type BugSummary struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
	Depth     int    `json:"depth"`
}

// JobResult summarizes a finished checker run. It is stored verbatim (as
// JSON) in the run's store bucket, so a restarted daemon can report
// finished jobs without re-running them.
type JobResult struct {
	Complete   bool           `json:"complete"`
	StopReason string         `json:"stop_reason"`
	Bugs       []BugSummary   `json:"bugs,omitempty"`
	Stats      stats.Counters `json:"stats"`
	// Resumed is true when the run was primed from stored checkpoints.
	Resumed bool `json:"resumed,omitempty"`
	// Invalidated carries the reason the job's previous checkpoints were
	// discarded before this (fresh) run, when they were.
	Invalidated string `json:"invalidated,omitempty"`
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobStatus is the externally visible state of one job.
type JobStatus struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	State string  `json:"state"`
	// RunID is the store bucket the job checkpoints into (differs from ID
	// after a divergence re-run).
	RunID string `json:"run_id,omitempty"`
	// CheckpointRounds counts the round checkpoints persisted so far.
	CheckpointRounds int        `json:"checkpoint_rounds,omitempty"`
	Result           *JobResult `json:"result,omitempty"`
	Error            string     `json:"error,omitempty"`
}

// job is the internal job record.
type job struct {
	status JobStatus
	cancel context.CancelFunc
	// resume marks a job recovered from the store at startup.
	resume bool
}

// Config parameterizes a Service.
type Config struct {
	// Store is the checkpoint store; required.
	Store *store.Store
	// CodeHash overrides the binary fingerprint (store.CodeHash()); zero
	// means compute it. Tests use a fixed value to simulate rebuilds.
	CodeHash uint64
	// Spawner, when non-nil, enables sharded exploration for jobs with
	// Shards > 1 (cmd/lmc passes a SelfExec re-running itself as a shard
	// worker; tests pass a PipeSpawner).
	Spawner shard.Spawner
	// Defaults fills unset JobSpec fields at submission time: Workload,
	// Checker, Reduce, Workers, Shards, Budget and Depth each apply when
	// the submitted spec leaves them zero. cmd/lmc passes its run-mode
	// flag values here, so both modes share one configuration surface.
	Defaults JobSpec
	// Observer receives the run events of every job (e.g. the expvar
	// observer, so /debug/vars shows live counters); nil disables.
	Observer obs.Observer
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Service is the resident job queue. Create with New, recover stored jobs
// with Recover, then drive with Run; Submit/Jobs/Job/Cancel are safe from
// any goroutine (the HTTP layer calls them).
type Service struct {
	st       *store.Store
	codeHash uint64
	spawner  shard.Spawner
	defaults JobSpec
	observer obs.Observer
	logf     func(string, ...any)

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	queue  chan string
	nextID int
}

// New builds a Service over the given store.
func New(cfg Config) *Service {
	if cfg.CodeHash == 0 {
		cfg.CodeHash = store.CodeHash()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Service{
		st:       cfg.Store,
		codeHash: cfg.CodeHash,
		spawner:  cfg.Spawner,
		defaults: cfg.Defaults,
		observer: cfg.Observer,
		logf:     logf,
		jobs:     make(map[string]*job),
		queue:    make(chan string, 1024),
	}
}

// applyDefaults fills unset spec fields from the service defaults.
func (s *Service) applyDefaults(spec *JobSpec) {
	d := s.defaults
	if spec.Workload == "" {
		spec.Workload = d.Workload
	}
	if spec.Checker == "" {
		spec.Checker = d.Checker
	}
	if spec.Reduce == "" {
		spec.Reduce = d.Reduce
	}
	if spec.Workers == 0 {
		spec.Workers = d.Workers
	}
	if spec.Shards == 0 {
		spec.Shards = d.Shards
	}
	if spec.Budget == "" {
		spec.Budget = d.Budget
	}
	if spec.Depth == 0 {
		spec.Depth = d.Depth
	}
}

// Recover scans the store for runs left behind by a previous daemon and
// re-enqueues the unfinished ones: matching code hash and options
// signature → resume from the stored rounds; mismatch → invalidate and run
// fresh. Finished runs surface as done jobs with their stored results.
// Call once, before Run.
func (s *Service) Recover() {
	for _, meta := range s.st.Runs() {
		var spec JobSpec
		if err := json.Unmarshal([]byte(meta.Spec), &spec); err != nil {
			s.logf("recover: run %s has an unreadable spec; ignoring", meta.ID)
			continue
		}
		switch {
		case meta.Done:
			var res JobResult
			if err := json.Unmarshal([]byte(meta.Detail), &res); err == nil {
				s.adopt(spec, meta.ID, JobStatus{State: StateDone, Result: &res,
					CheckpointRounds: meta.Rounds})
			}
		case meta.Invalid:
			// A bucket invalidated by a previous daemon whose replacement
			// run never finished (or never started): run fresh.
			s.logf("recover: %s was invalidated (%s); running fresh", meta.ID, meta.Detail)
			s.enqueueRecovered(spec, meta.ID, false, meta.Detail)
		case meta.CodeHash != s.codeHash:
			s.st.InvalidateRun(meta.ID, "checker binary changed")
			s.logf("recover: %s checkpointed under a different binary; running fresh", meta.ID)
			s.enqueueRecovered(spec, meta.ID, false, "checker binary changed")
		case meta.OptionsSig != spec.Sig():
			s.st.InvalidateRun(meta.ID, "options changed")
			s.logf("recover: %s checkpointed under different options; running fresh", meta.ID)
			s.enqueueRecovered(spec, meta.ID, false, "options changed")
		default:
			s.logf("recover: resuming %s from %d stored rounds", meta.ID, meta.Rounds)
			s.enqueueRecovered(spec, meta.ID, true, "")
		}
	}
}

// adopt registers a terminal job without queueing it.
func (s *Service) adopt(spec JobSpec, id string, st JobStatus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st.ID, st.Spec, st.RunID = id, spec, id
	s.jobs[id] = &job{status: st, cancel: func() {}}
	s.order = append(s.order, id)
}

// enqueueRecovered queues a job recovered from bucket id. When resume is
// false the bucket was invalidated for the given reason and the job will
// checkpoint into a fresh bucket.
func (s *Service) enqueueRecovered(spec JobSpec, id string, resume bool, invalidated string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := &job{
		status: JobStatus{ID: id, Spec: spec, State: StateQueued, RunID: id, Error: invalidated},
		cancel: func() {},
		resume: resume,
	}
	// Error doubles as the invalidation note until the run finishes.
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue <- id
}

// Submit validates and enqueues a job, filling unset spec fields from the
// service defaults first.
func (s *Service) Submit(spec JobSpec) (JobStatus, error) {
	s.applyDefaults(&spec)
	if err := spec.validate(); err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if spec.ID == "" {
		for {
			s.nextID++
			spec.ID = "job-" + strconv.Itoa(s.nextID)
			if _, taken := s.jobs[spec.ID]; !taken {
				break
			}
		}
	} else if _, taken := s.jobs[spec.ID]; taken {
		return JobStatus{}, fmt.Errorf("service: job %q already exists", spec.ID)
	}
	j := &job{
		status: JobStatus{ID: spec.ID, Spec: spec, State: StateQueued},
		cancel: func() {},
	}
	s.jobs[spec.ID] = j
	s.order = append(s.order, spec.ID)
	s.queue <- spec.ID
	return j.status, nil
}

// Jobs lists every job in submission order.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status)
	}
	return out
}

// Job returns one job's status.
func (s *Service) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status, true
}

// Cancel stops a running job at its next round barrier (keeping its
// checkpoints, so a later daemon can resume it), or drops a queued one.
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false
	}
	switch j.status.State {
	case StateQueued:
		j.status.State = StateCancelled
	case StateRunning:
		j.cancel()
	default:
		return false
	}
	return true
}

// Run executes queued jobs sequentially until ctx is cancelled. It is the
// daemon's main loop; run it on one goroutine.
func (s *Service) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case id := <-s.queue:
			s.mu.Lock()
			j, ok := s.jobs[id]
			if !ok || j.status.State != StateQueued {
				s.mu.Unlock()
				continue
			}
			jctx, cancel := context.WithCancel(ctx)
			j.cancel = cancel
			j.status.State = StateRunning
			status := j.status
			resume := j.resume
			s.mu.Unlock()

			res, err := s.execute(jctx, &status, resume)
			cancel()

			s.mu.Lock()
			// The sink mirrored checkpoint progress into the live status
			// while execute ran; keep it over the stale snapshot.
			status.CheckpointRounds = j.status.CheckpointRounds
			j.status = status
			switch {
			case err != nil:
				j.status.State = StateFailed
				j.status.Error = err.Error()
				s.logf("job %s failed: %v", id, err)
			case res.StopReason == obs.StopCancelled.String() && !res.Complete:
				j.status.State = StateCancelled
				j.status.Result = res
				s.logf("job %s cancelled at round barrier", id)
			default:
				j.status.State = StateDone
				j.status.Result = res
				j.status.Error = ""
				s.logf("job %s done: complete=%v bugs=%d", id, res.Complete, len(res.Bugs))
			}
			s.mu.Unlock()
		}
	}
}

// countSink wraps the store sink to mirror checkpoint progress into the
// job status (read by GET /jobs/{id} while the job runs).
type countSink struct {
	next   core.CheckpointSink
	s      *Service
	id     string
	rounds int
}

func (c *countSink) OnRoundCheckpoint(cp core.RoundCheckpoint) error {
	if err := c.next.OnRoundCheckpoint(cp); err != nil {
		return err
	}
	c.rounds++
	n := c.rounds
	c.s.mu.Lock()
	if j, ok := c.s.jobs[c.id]; ok {
		j.status.CheckpointRounds = n
	}
	c.s.mu.Unlock()
	return nil
}

// execute runs one job to completion, handling checkpoint setup, resume,
// and the divergence retry. status is the caller's snapshot; execute
// updates its RunID/CheckpointRounds fields.
func (s *Service) execute(ctx context.Context, status *JobStatus, resume bool) (*JobResult, error) {
	spec := status.Spec
	w, err := bench.Lookup(spec.Workload)
	if err != nil {
		return nil, err
	}
	start, err := w.StartState()
	if err != nil {
		return nil, err
	}

	if spec.Checker == "global" || spec.Checker == "bfs" {
		return s.executeGlobal(ctx, spec, w, start)
	}

	reductions, err := core.ParseReductions(spec.Reduce)
	if err != nil {
		return nil, err
	}
	opt := core.Options{
		Invariant:       w.Invariant,
		LocalInvariants: w.Locals,
		Reduce:          reductions,
		MaxPathDepth:    spec.Depth,
		StopAtFirstBug:  spec.First,
		Workers:         spec.Workers,
		Shards:          spec.Shards,
		Observer:        s.observer,
	}
	if spec.Checker == "lmc-opt" {
		opt.Reduction = w.Reduction
	}
	if spec.Budget != "" {
		opt.Budget, _ = time.ParseDuration(spec.Budget)
	}

	invalidated := status.Error // recovery stored the invalidation note here
	runID := status.RunID
	if runID == "" {
		runID = status.ID
	}
	// An invalidated bucket rejects appends; a fresh run after an
	// invalidation checkpoints into a new one.
	if meta, ok := s.st.Run(runID); ok && meta.Invalid {
		runID = s.freeRunID(status.ID)
	}
	res, resumed, err := s.runLocal(ctx, spec, w, start, opt, runID, resume)
	if err != nil {
		return nil, err
	}
	if res.StopReason == obs.StopResumeDiverged {
		// The stored rounds lied (stale or corrupt despite matching
		// hashes). Invalidate and run once more, fresh, in a new bucket.
		reason := "resume diverged from stored checkpoint"
		s.logf("job %s: %s; invalidating %s and re-running fresh", status.ID, reason, runID)
		s.st.InvalidateRun(runID, reason)
		invalidated = reason
		runID = s.freeRunID(status.ID)
		res, resumed, err = s.runLocal(ctx, spec, w, start, opt, runID, false)
		if err != nil {
			return nil, err
		}
	}
	status.RunID = runID
	s.mu.Lock()
	if j, ok := s.jobs[status.ID]; ok {
		j.status.RunID = runID
	}
	s.mu.Unlock()

	out := &JobResult{
		Complete:    res.Complete,
		StopReason:  res.StopReason.String(),
		Stats:       res.Stats,
		Resumed:     resumed,
		Invalidated: invalidated,
	}
	for _, b := range res.Bugs {
		out.Bugs = append(out.Bugs, BugSummary{
			Invariant: b.Violation.Invariant,
			Detail:    b.Violation.Detail,
			Depth:     b.Depth,
		})
	}
	// A cancelled (incomplete) run keeps its bucket open so the next
	// daemon resumes it; a finished one records its result durably.
	if res.Complete || res.StopReason != obs.StopCancelled {
		detail, _ := json.Marshal(out)
		s.st.FinishRun(runID, string(detail))
	}
	return out, nil
}

// runLocal performs one LMC run against bucket runID, creating it if
// needed and attaching sink and (when asked) resume source.
func (s *Service) runLocal(ctx context.Context, spec JobSpec, w bench.Workload,
	start model.SystemState, opt core.Options, runID string, resume bool) (*core.Result, bool, error) {

	if _, ok := s.st.Run(runID); !ok {
		specJSON, _ := json.Marshal(spec)
		if err := s.st.CreateRun(runID, string(specJSON), s.codeHash, spec.Sig()); err != nil {
			return nil, false, err
		}
	}
	opt.Checkpoint = &countSink{next: s.st.Sink(runID), s: s, id: spec.ID}

	resumed := false
	if resume {
		if src := s.st.Resume(runID); src != nil {
			opt.Resume = src
			resumed = true
		}
	}

	// Sharded execution: the coordinator's canonical walk still produces
	// every checkpoint record, so the sink composes with sharding. Resume
	// does not — the shard exchange would overwrite the primed records —
	// so a resumed run always executes in-process (results are identical
	// for every shard count, so nothing is lost but the fan-out).
	if opt.Shards > 1 && s.spawner != nil && !resumed {
		res, err := shard.Check(ctx, w.Machine, start, opt, shard.Config{
			Shards:  opt.Shards,
			Spawner: s.spawner,
			Spec:    bench.ShardSpec(w.Name),
			Batch:   spec.ShardBatch,
		})
		return res, false, err
	}
	opt.Shards = 0
	res, err := core.CheckContext(ctx, w.Machine, start, opt)
	return res, resumed, err
}

func (s *Service) executeGlobal(ctx context.Context, spec JobSpec, w bench.Workload,
	start model.SystemState) (*JobResult, error) {

	if w.Invariant == nil {
		return nil, fmt.Errorf("service: workload %s has no system invariant; the global checker needs one", w.Name)
	}
	strat := global.DFS
	if spec.Checker == "bfs" {
		strat = global.BFS
	}
	gopt := global.Options{
		Invariant:      w.Invariant,
		Strategy:       strat,
		MaxDepth:       spec.Depth,
		StopAtFirstBug: spec.First,
		Observer:       s.observer,
	}
	if spec.Budget != "" {
		gopt.Budget, _ = time.ParseDuration(spec.Budget)
	}
	res, err := global.CheckContext(ctx, w.Machine, start, gopt)
	if err != nil {
		return nil, err
	}
	out := &JobResult{
		Complete:   res.Complete,
		StopReason: res.StopReason.String(),
		Stats:      res.Stats,
	}
	for _, b := range res.Bugs {
		out.Bugs = append(out.Bugs, BugSummary{
			Invariant: b.Violation.Invariant,
			Detail:    b.Violation.Detail,
			Depth:     len(b.Schedule),
		})
	}
	return out, nil
}

// freeRunID finds an unused store bucket ID derived from id.
func (s *Service) freeRunID(id string) string {
	for n := 2; ; n++ {
		cand := fmt.Sprintf("%s.r%d", id, n)
		if _, taken := s.st.Run(cand); !taken {
			return cand
		}
	}
}
