package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lmc/internal/service"
	"lmc/internal/store"
)

func TestHTTPAPI(t *testing.T) {
	st := openStore(t)
	s := service.New(service.Config{Store: st})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if into != nil && resp.StatusCode < 300 {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}
	post := func(path, body string, into any) int {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if into != nil && resp.StatusCode < 300 {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("POST %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	// Bad submissions are 400s.
	if code := post("/jobs", "{not json", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", code)
	}
	if code := post("/jobs", `{"workload":"no-such"}`, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown workload: %d", code)
	}

	// Submit, then poll the job to completion through the API.
	var sub service.JobStatus
	if code := post("/jobs", `{"id":"web","workload":"paxos"}`, &sub); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	if sub.ID != "web" || sub.State != service.StateQueued {
		t.Fatalf("submission status: %+v", sub)
	}
	deadline := time.Now().Add(2 * time.Minute)
	var got service.JobStatus
	for {
		if code := getJSON("/jobs/web", &got); code != http.StatusOK {
			t.Fatalf("get job: %d", code)
		}
		if got.State != service.StateQueued && got.State != service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished over HTTP")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.State != service.StateDone || got.Result == nil || !got.Result.Complete {
		t.Fatalf("job over HTTP: %+v", got)
	}

	var jobs []service.JobStatus
	if code := getJSON("/jobs", &jobs); code != http.StatusOK || len(jobs) != 1 {
		t.Fatalf("list: code=%d n=%d", code, len(jobs))
	}

	// The store surface shows the finished bucket.
	var runs []store.RunMeta
	if code := getJSON("/runs", &runs); code != http.StatusOK || len(runs) != 1 || !runs[0].Done {
		t.Fatalf("runs: code=%d %+v", code, runs)
	}

	// Workload discovery names at least the bench registry's paxos entry.
	var wl []struct{ Name string }
	if code := getJSON("/workloads", &wl); code != http.StatusOK || len(wl) == 0 {
		t.Fatalf("workloads: %d", code)
	}

	// Unknown-job routes 404.
	if code := getJSON("/jobs/ghost", nil); code != http.StatusNotFound {
		t.Fatalf("ghost get: %d", code)
	}
	if code := post("/jobs/ghost/cancel", "", nil); code != http.StatusNotFound {
		t.Fatalf("ghost cancel: %d", code)
	}
	// Cancel of the finished job is also a 404 (nothing to stop).
	if code := post("/jobs/web/cancel", "", nil); code != http.StatusNotFound {
		t.Fatalf("finished cancel: %d", code)
	}
}
