package testkit_test

import (
	"testing"

	"lmc/internal/model"
	"lmc/internal/protocols/tree"
	"lmc/internal/testkit"
)

// initiated returns a harness that has fired the root's Initiate, leaving
// two messages queued (to nodes 1 and 3 of the paper tree).
func initiated(t *testing.T) *testkit.Harness {
	t.Helper()
	h := testkit.New(tree.NewPaperTree())
	if err := h.Act(tree.Initiate{Root: 0}); err != nil {
		t.Fatal(err)
	}
	if len(h.Queue) != 2 {
		t.Fatalf("queue %d, want 2", len(h.Queue))
	}
	return h
}

// TestNewAtResumesCheckpoint: a harness rebuilt from a snapshot plus its
// in-flight set behaves exactly like the original.
func TestNewAtResumesCheckpoint(t *testing.T) {
	h := initiated(t)
	snap, inflight := h.Snapshot(), h.InFlight()

	resumed := testkit.NewAt(h.M, snap, inflight)
	if err := resumed.Settle(100); err != nil {
		t.Fatal(err)
	}
	if err := h.Settle(100); err != nil {
		t.Fatal(err)
	}
	if resumed.Sys.Fingerprint() != h.Sys.Fingerprint() {
		t.Fatal("resumed run diverged from the original")
	}
	// The snapshot handed to NewAt was cloned: mutating the resumed run
	// must not have touched it.
	if snap.Fingerprint() == resumed.Sys.Fingerprint() {
		t.Fatal("settling did not change the system (test is vacuous)")
	}
}

// TestDeliverAtOutOfOrder delivers the second queued message first.
func TestDeliverAtOutOfOrder(t *testing.T) {
	h := initiated(t)
	second := h.Queue[1]
	if err := h.DeliverAt(1); err != nil {
		t.Fatal(err)
	}
	if len(h.Queue) < 1 {
		t.Fatal("queue empty after one delivery")
	}
	for _, q := range h.Queue {
		if model.MessageFingerprint(q) == model.MessageFingerprint(second) {
			t.Fatal("delivered message still queued")
		}
	}
	// The destination is an interior node of the paper tree: delivery marks
	// it Forwarded (only the target ever reaches Received).
	if !h.State(second.Dst()).(*tree.State).Forwarded {
		t.Fatal("out-of-order delivery had no effect on its destination")
	}
	if err := h.DeliverAt(5); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// TestDropAtRemovesWithoutDelivery drops a queued message silently.
func TestDropAtRemovesWithoutDelivery(t *testing.T) {
	h := initiated(t)
	dst := h.Queue[0].Dst()
	if err := h.DropAt(0); err != nil {
		t.Fatal(err)
	}
	if len(h.Queue) != 1 {
		t.Fatalf("queue %d after drop, want 1", len(h.Queue))
	}
	if h.State(dst).(*tree.State).Forwarded {
		t.Fatal("dropped message reached its destination")
	}
	if err := h.DropAt(7); err == nil {
		t.Fatal("out-of-range drop accepted")
	}
}

// TestDeliverByValue finds the queued copy of a specific message.
func TestDeliverByValue(t *testing.T) {
	h := initiated(t)
	target := h.Queue[1]
	if err := h.Deliver(target); err != nil {
		t.Fatal(err)
	}
	// A second identical delivery must fail: the copy was consumed.
	if err := h.Deliver(target); err == nil {
		t.Fatal("consumed message delivered twice")
	}
}

// TestInFlightIsACopy: mutating the returned slice must not corrupt the
// harness queue.
func TestInFlightIsACopy(t *testing.T) {
	h := initiated(t)
	in := h.InFlight()
	in[0] = in[1]
	if model.MessageFingerprint(h.Queue[0]) == model.MessageFingerprint(h.Queue[1]) {
		t.Fatal("InFlight aliases the queue")
	}
}

// TestReplayRejectsBadEvents: replay fails cleanly on a delivery of a
// message that is not in flight and on a disabled action.
func TestReplayRejectsBadEvents(t *testing.T) {
	m := tree.NewPaperTree()
	start := model.InitialSystem(m)
	h := testkit.New(m)
	if err := h.Act(tree.Initiate{Root: 0}); err != nil {
		t.Fatal(err)
	}
	ghost := h.Queue[0]

	if _, err := testkit.Replay(m, start, nil, []model.Event{model.RecvEvent(ghost)}); err == nil {
		t.Error("delivery of a message not in flight accepted")
	}
	// Initiate on a non-root node is never enabled.
	if _, err := testkit.Replay(m, start, nil, []model.Event{model.ActEvent(tree.Initiate{Root: 2})}); err == nil {
		t.Error("disabled action accepted")
	}
	// The valid version executes.
	final, err := testkit.Replay(m, start, nil, []model.Event{model.ActEvent(tree.Initiate{Root: 0})})
	if err != nil {
		t.Fatalf("valid replay failed: %v", err)
	}
	if final.Fingerprint() == start.Fingerprint() {
		t.Error("valid replay changed nothing")
	}
}
