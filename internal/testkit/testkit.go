// Package testkit provides a deterministic message pump for constructing
// protocol states: tests and the experiment harness use it to script
// concrete runs — "this node proposes, these messages get through, those
// are lost" — and take the resulting system state as a live snapshot for
// the checkers (the role the running system plays in the paper's online
// experiments, §5.5 and §5.6).
package testkit

import (
	"fmt"

	"lmc/internal/model"
)

// Harness drives one concrete run of a machine.
type Harness struct {
	M   model.Machine
	Sys model.SystemState
	// Queue holds undelivered messages in emission order.
	Queue []model.Message
	// Drop, when non-nil, discards matching messages at emission time —
	// the scripted message losses of a lossy network.
	Drop func(model.Message) bool
	// Steps counts handler executions.
	Steps int
}

// New builds a harness over the machine's initial system state.
func New(m model.Machine) *Harness {
	return &Harness{M: m, Sys: model.InitialSystem(m)}
}

// enqueue appends emitted messages, applying the drop filter.
func (h *Harness) enqueue(ms []model.Message) {
	for _, m := range ms {
		if h.Drop != nil && h.Drop(m) {
			continue
		}
		h.Queue = append(h.Queue, m)
	}
}

// Act executes an internal action on its node.
func (h *Harness) Act(a model.Action) error {
	n := a.Node()
	next, out := h.M.HandleAction(n, h.Sys[n].Clone(), a)
	h.Steps++
	if next == nil {
		return fmt.Errorf("testkit: action %s rejected", a)
	}
	h.Sys[n] = next
	h.enqueue(out)
	return nil
}

// DeliverNext delivers the oldest queued message. It reports false when the
// queue is empty.
func (h *Harness) DeliverNext() (bool, error) {
	if len(h.Queue) == 0 {
		return false, nil
	}
	m := h.Queue[0]
	h.Queue = h.Queue[1:]
	next, out := h.M.HandleMessage(m.Dst(), h.Sys[m.Dst()].Clone(), m)
	h.Steps++
	if next == nil {
		return true, fmt.Errorf("testkit: message %s rejected", m)
	}
	h.Sys[m.Dst()] = next
	h.enqueue(out)
	return true, nil
}

// Settle delivers queued messages FIFO until the queue drains or maxSteps
// handler executions have run.
func (h *Harness) Settle(maxSteps int) error {
	for i := 0; i < maxSteps; i++ {
		more, err := h.DeliverNext()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
	if len(h.Queue) > 0 {
		return fmt.Errorf("testkit: %d messages still queued after %d steps", len(h.Queue), maxSteps)
	}
	return nil
}

// State returns node n's current state.
func (h *Harness) State(n model.NodeID) model.State { return h.Sys[n] }

// Snapshot clones the current system state — the live state handed to a
// checker.
func (h *Harness) Snapshot() model.SystemState { return h.Sys.Clone() }
