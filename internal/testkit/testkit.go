// Package testkit provides a deterministic message pump for constructing
// protocol states: tests and the experiment harness use it to script
// concrete runs — "this node proposes, these messages get through, those
// are lost" — and take the resulting system state as a live snapshot for
// the checkers (the role the running system plays in the paper's online
// experiments, §5.5 and §5.6).
package testkit

import (
	"fmt"

	"lmc/internal/model"
)

// Harness drives one concrete run of a machine.
type Harness struct {
	M   model.Machine
	Sys model.SystemState
	// Queue holds undelivered messages in emission order.
	Queue []model.Message
	// Drop, when non-nil, discards matching messages at emission time —
	// the scripted message losses of a lossy network.
	Drop func(model.Message) bool
	// Steps counts handler executions.
	Steps int
}

// New builds a harness over the machine's initial system state.
func New(m model.Machine) *Harness {
	return &Harness{M: m, Sys: model.InitialSystem(m)}
}

// NewAt builds a harness over a caller-supplied system state (cloned) with
// the given messages already queued — a run resumed from a checkpoint, the
// way a checker is pointed at a live snapshot plus its captured in-flight
// set.
func NewAt(m model.Machine, sys model.SystemState, inflight []model.Message) *Harness {
	h := &Harness{M: m, Sys: sys.Clone()}
	h.Queue = append(h.Queue, inflight...)
	return h
}

// enqueue appends emitted messages, applying the drop filter.
func (h *Harness) enqueue(ms []model.Message) {
	for _, m := range ms {
		if h.Drop != nil && h.Drop(m) {
			continue
		}
		h.Queue = append(h.Queue, m)
	}
}

// Act executes an internal action on its node.
func (h *Harness) Act(a model.Action) error {
	n := a.Node()
	next, out := h.M.HandleAction(n, h.Sys[n].Clone(), a)
	h.Steps++
	if next == nil {
		return fmt.Errorf("testkit: action %s rejected", a)
	}
	h.Sys[n] = next
	h.enqueue(out)
	return nil
}

// DeliverNext delivers the oldest queued message. It reports false when the
// queue is empty.
func (h *Harness) DeliverNext() (bool, error) {
	if len(h.Queue) == 0 {
		return false, nil
	}
	m := h.Queue[0]
	h.Queue = h.Queue[1:]
	next, out := h.M.HandleMessage(m.Dst(), h.Sys[m.Dst()].Clone(), m)
	h.Steps++
	if next == nil {
		return true, fmt.Errorf("testkit: message %s rejected", m)
	}
	h.Sys[m.Dst()] = next
	h.enqueue(out)
	return true, nil
}

// DeliverAt delivers the i-th queued message, out of FIFO order — the
// scripted reordering of a network that is not FIFO.
func (h *Harness) DeliverAt(i int) error {
	if i < 0 || i >= len(h.Queue) {
		return fmt.Errorf("testkit: deliver index %d out of range (queue has %d)", i, len(h.Queue))
	}
	m := h.Queue[i]
	h.Queue = append(h.Queue[:i:i], h.Queue[i+1:]...)
	next, out := h.M.HandleMessage(m.Dst(), h.Sys[m.Dst()].Clone(), m)
	h.Steps++
	if next == nil {
		return fmt.Errorf("testkit: message %s rejected", m)
	}
	h.Sys[m.Dst()] = next
	h.enqueue(out)
	return nil
}

// DropAt silently discards the i-th queued message — a scripted loss after
// emission time (Drop filters at emission time instead).
func (h *Harness) DropAt(i int) error {
	if i < 0 || i >= len(h.Queue) {
		return fmt.Errorf("testkit: drop index %d out of range (queue has %d)", i, len(h.Queue))
	}
	h.Queue = append(h.Queue[:i:i], h.Queue[i+1:]...)
	return nil
}

// Deliver delivers one queued copy of the specific message m, wherever it
// sits in the queue. It fails when no queued message has the same canonical
// encoding.
func (h *Harness) Deliver(m model.Message) error {
	want := model.MessageFingerprint(m)
	for i, q := range h.Queue {
		if model.MessageFingerprint(q) == want {
			return h.DeliverAt(i)
		}
	}
	return fmt.Errorf("testkit: message %s not queued", m)
}

// InFlight returns a copy of the undelivered message queue — the in-flight
// set a checkpointed run hands to a checker as its initial messages.
func (h *Harness) InFlight() []model.Message {
	out := make([]model.Message, len(h.Queue))
	copy(out, h.Queue)
	return out
}

// Settle delivers queued messages FIFO until the queue drains or maxSteps
// handler executions have run.
func (h *Harness) Settle(maxSteps int) error {
	for i := 0; i < maxSteps; i++ {
		more, err := h.DeliverNext()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
	if len(h.Queue) > 0 {
		return fmt.Errorf("testkit: %d messages still queued after %d steps", len(h.Queue), maxSteps)
	}
	return nil
}

// Replay drives the harness through a totally ordered event sequence from
// the given start state and in-flight set, returning the final system
// state. It is a second, independent implementation of counterexample
// replay (trace.Replay being the first, and the one the local checker uses
// internally): each delivery must find its message queued — one copy is
// consumed — and each internal action must be among the actions the
// machine reports enabled. Differential harnesses replay through both and
// cross-check the outcomes.
func Replay(m model.Machine, start model.SystemState, inflight []model.Message, events []model.Event) (model.SystemState, error) {
	h := NewAt(m, start, inflight)
	for i, e := range events {
		if int(e.Node) < 0 || int(e.Node) >= len(h.Sys) {
			return h.Sys, fmt.Errorf("testkit: event %d (%s): node out of range", i+1, e)
		}
		switch e.Kind {
		case model.NetworkEvent:
			if err := h.Deliver(e.Msg); err != nil {
				return h.Sys, fmt.Errorf("testkit: event %d (%s): %w", i+1, e, err)
			}
		case model.InternalEvent:
			if !actionEnabled(m, e.Node, h.Sys[e.Node], e.Act) {
				return h.Sys, fmt.Errorf("testkit: event %d (%s): action not enabled", i+1, e)
			}
			if err := h.Act(e.Act); err != nil {
				return h.Sys, fmt.Errorf("testkit: event %d (%s): %w", i+1, e, err)
			}
		default:
			return h.Sys, fmt.Errorf("testkit: event %d: invalid kind", i+1)
		}
	}
	return h.Sys, nil
}

// ReplayAgree replays a schedule through every independent replay
// implementation — trace.Replay's algorithm is invoked by the callers that
// already depend on package trace; this helper covers the testkit leg and,
// when the machine wraps a real implementation (model.RawReplayer), the
// uninstrumented leg — and fails unless all legs reach the state with the
// expected fingerprint. Tests use it to assert the triple-replay discipline
// in one call instead of hand-rolling each leg.
func ReplayAgree(m model.Machine, start model.SystemState, inflight []model.Message, events []model.Event, want uint64) (model.SystemState, error) {
	final, err := Replay(m, start, inflight, events)
	if err != nil {
		return nil, fmt.Errorf("testkit replay: %w", err)
	}
	if got := uint64(final.Fingerprint()); got != want {
		return nil, fmt.Errorf("testkit replay reached %016x, want %016x", got, want)
	}
	if raw, ok := m.(model.RawReplayer); ok {
		rawFinal, err := raw.ReplayRaw(start, inflight, events)
		if err != nil {
			return nil, fmt.Errorf("uninstrumented replay: %w", err)
		}
		if got := uint64(rawFinal.Fingerprint()); got != want {
			return nil, fmt.Errorf("uninstrumented replay reached %016x, want %016x", got, want)
		}
	}
	return final, nil
}

// actionEnabled reports whether a is among the machine's enabled actions in
// node n's current state, compared by event fingerprint (Action values need
// not be comparable with ==).
func actionEnabled(m model.Machine, n model.NodeID, s model.State, a model.Action) bool {
	want := model.ActEvent(a).Fingerprint()
	for _, cand := range m.Actions(n, s) {
		if model.ActEvent(cand).Fingerprint() == want {
			return true
		}
	}
	return false
}

// State returns node n's current state.
func (h *Harness) State(n model.NodeID) model.State { return h.Sys[n] }

// Snapshot clones the current system state — the live state handed to a
// checker.
func (h *Harness) Snapshot() model.SystemState { return h.Sys.Clone() }
