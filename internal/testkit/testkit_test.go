package testkit_test

import (
	"testing"

	"lmc/internal/model"
	"lmc/internal/protocols/tree"
	"lmc/internal/testkit"
)

// TestActAndSettle pumps a full run.
func TestActAndSettle(t *testing.T) {
	m := tree.NewPaperTree()
	h := testkit.New(m)
	if err := h.Act(tree.Initiate{Root: 0}); err != nil {
		t.Fatal(err)
	}
	if len(h.Queue) != 2 {
		t.Fatalf("queue %d, want 2", len(h.Queue))
	}
	if err := h.Settle(100); err != nil {
		t.Fatal(err)
	}
	if len(h.Queue) != 0 {
		t.Fatal("queue not drained")
	}
	if h.Steps == 0 {
		t.Fatal("no steps counted")
	}
}

// TestDropFilter discards matching messages at emission.
func TestDropFilter(t *testing.T) {
	m := tree.NewPaperTree()
	h := testkit.New(m)
	h.Drop = func(msg model.Message) bool { return msg.Dst() == 2 }
	if err := h.Act(tree.Initiate{Root: 0}); err != nil {
		t.Fatal(err)
	}
	if err := h.Settle(100); err != nil {
		t.Fatal(err)
	}
	if h.State(2).(*tree.State).Forwarded {
		t.Fatal("dropped message delivered")
	}
	if h.State(4).(*tree.State).St != tree.Received {
		t.Fatal("surviving path broken")
	}
}

// TestSettleBudget errors when the queue cannot drain in time.
func TestSettleBudget(t *testing.T) {
	m := tree.NewPaperTree()
	h := testkit.New(m)
	if err := h.Act(tree.Initiate{Root: 0}); err != nil {
		t.Fatal(err)
	}
	if err := h.Settle(1); err == nil {
		t.Fatal("tiny budget drained a 4-message cascade")
	}
}

// TestRejectedActionErrors surfaces handler rejections.
func TestRejectedActionErrors(t *testing.T) {
	m := tree.NewPaperTree()
	h := testkit.New(m)
	if err := h.Act(tree.Initiate{Root: 0}); err != nil {
		t.Fatal(err)
	}
	if err := h.Act(tree.Initiate{Root: 0}); err == nil {
		t.Fatal("second initiate accepted")
	}
}

// TestSnapshotIsolated: the snapshot is a deep copy.
func TestSnapshotIsolated(t *testing.T) {
	m := tree.NewPaperTree()
	h := testkit.New(m)
	snap := h.Snapshot()
	snap[0].(*tree.State).St = tree.Sent
	if h.State(0).(*tree.State).St != tree.Idle {
		t.Fatal("snapshot aliases harness state")
	}
}
