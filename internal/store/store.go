// Package store is the persistent checkpoint store behind the resident
// checking service (internal/service, cmd/lmc serve). One store is one
// append-only file of codec-framed segments, bucketed by run ID: a run's
// metadata (spec, code hash, options signature), its per-round
// RoundCheckpoints — the delivery records, explored-fingerprint segments,
// replica digest and counter snapshot internal/core hands a CheckpointSink
// at every completed round barrier — and a terminal status. The file is the
// durability log; an Open replays it into memory and truncates at the first
// bad frame, so a process killed mid-append recovers to the last complete
// round. No fsync is issued: the threat model is process death (SIGKILL of
// the daemon), which the page cache survives, not machine crash — a run
// lost to power failure simply re-runs from scratch.
//
// Checkpoints are fingerprint-only hints, never authority (see
// internal/core/checkpoint.go): resuming replays exploration with the
// stored records primed into the canonical delivery walk, which makes a
// resumed run bit-for-bit identical to an uninterrupted one. Stale
// checkpoints — a rebuilt binary, changed options — are caught twice: by
// comparing RunMeta.CodeHash/OptionsSig up front, and by the engine's
// post-round digest check (StopResumeDiverged) as a backstop.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"lmc/internal/codec"
	"lmc/internal/core"
)

// RunMeta describes one run bucket in the store.
type RunMeta struct {
	ID   string
	Spec string
	// CodeHash fingerprints the checker binary that wrote the checkpoints
	// (CodeHash()); OptionsSig the exploration-shaping options (OptionsSig).
	// A resume under a different hash must invalidate instead of resuming.
	CodeHash   uint64
	OptionsSig uint64
	Created    time.Time
	// Rounds is the number of distinct (pass, round) checkpoints stored.
	Rounds int
	// Done marks a run whose final result was recorded; Detail carries the
	// caller's result summary (the service stores the JobResult JSON).
	Done   bool
	Detail string
	// Invalid marks a run whose checkpoints must not be resumed (code-hash
	// mismatch, digest divergence); Detail carries the reason.
	Invalid bool
}

// runState keeps a run's rounds as locations into the store file — the file
// is append-only for the life of the process, so an offset stays valid once
// written. Appends then retain nothing, and Resume reads back and decodes
// only the rounds a resumed run actually replays.
type runState struct {
	meta   RunMeta
	rounds map[[2]int]roundLoc
}

// roundLoc locates one round's encoded checkpoint body (the bytes after the
// segment kind and run-ID tag) inside the store file.
type roundLoc struct {
	off int64
	n   int
}

// Store is a single-file checkpoint store. All methods are safe for
// concurrent use; writes are serialized under one mutex (the resident
// service runs one job at a time, so the lock is uncontended in practice).
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	runs  map[string]*runState
	order []string // run IDs in creation order
	// w is the segment encode buffer and frame the assembled-frame buffer,
	// both reused under mu. Round bodies outgrow the shared codec pool's
	// retention cap, so per-store buffers are what keep steady-state
	// appends from regrowing an encoder every round.
	w     codec.Writer
	frame []byte
	// size is the current end-of-file offset; append keeps it exact so
	// AppendRound can record each body's location without a Seek.
	size int64
}

// ErrNoRun is returned for operations on a run ID the store has no bucket
// for.
var ErrNoRun = errors.New("store: no such run")

// Open opens or creates the store file at path, replaying every complete
// segment into memory. A trailing partial or corrupted frame — the mark of
// a process killed mid-append — is discarded by truncating the file back to
// the last complete segment; corruption earlier in the file truncates there
// too, dropping the later segments (resume then simply re-executes those
// rounds inline).
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, path: path, runs: make(map[string]*runState),
		w:     *codec.NewWriter(1 << 15),
		frame: make([]byte, 0, 1<<15),
	}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	if s.size, err = s.f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load replays the file. It returns an error only for conditions that make
// the file unusable (an alien header, I/O failure on the header); frame
// corruption past the header truncates instead.
func (s *Store) load() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	st, err := s.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		// Fresh store: stamp the header.
		var w codec.Writer
		w.String(storeMagic)
		w.Uint32(storeVersion)
		return codec.WriteFrame(s.f, w.Bytes())
	}
	r := io.Reader(s.f)
	hdr, err := codec.ReadFrame(r, maxSegment)
	if err != nil {
		return fmt.Errorf("store: unreadable header in %s: %w", s.path, err)
	}
	hr := codec.NewReader(hdr)
	if magic := hr.String(); magic != storeMagic {
		return fmt.Errorf("store: %s is not a checkpoint store (magic %q)", s.path, magic)
	}
	if v := hr.Uint32(); v != storeVersion {
		return fmt.Errorf("store: %s has format version %d, want %d", s.path, v, storeVersion)
	}
	good, _ := s.f.Seek(0, io.SeekCurrent)
	for {
		payload, err := codec.ReadFrame(r, maxSegment)
		if err == io.EOF {
			break
		}
		// The frame's payload starts right after the 4-byte length prefix.
		if err != nil || s.apply(payload, good+4) != nil {
			// Truncated or corrupted tail: cut back to the last good
			// segment and carry on with what survived.
			if terr := s.f.Truncate(good); terr != nil {
				return terr
			}
			break
		}
		good, _ = s.f.Seek(0, io.SeekCurrent)
	}
	_, err = s.f.Seek(good, io.SeekStart)
	return err
}

// apply folds one decoded segment into memory. off is the payload's offset
// in the store file (round segments retain body locations, not bytes).
func (s *Store) apply(payload []byte, off int64) error {
	if len(payload) == 0 {
		return errors.New("store: empty segment")
	}
	r := codec.NewReader(payload[1:])
	switch payload[0] {
	case segRun:
		meta := decodeRunMeta(r)
		if r.Err() != nil {
			return r.Err()
		}
		if _, dup := s.runs[meta.ID]; dup {
			return fmt.Errorf("store: duplicate run %q", meta.ID)
		}
		s.runs[meta.ID] = &runState{meta: meta, rounds: make(map[[2]int]roundLoc)}
		s.order = append(s.order, meta.ID)
	case segRound:
		id := r.String()
		// The encoded checkpoint body follows the run-ID tag; it is decoded
		// here only to validate the frame, and retained as a file location.
		bodyStart := 1 + (len(payload) - 1 - r.Remaining())
		cp := decodeCheckpoint(r)
		if r.Err() != nil {
			return r.Err()
		}
		rs, ok := s.runs[id]
		if !ok {
			return fmt.Errorf("store: round segment for unknown run %q", id)
		}
		key := [2]int{cp.Pass, cp.Round}
		if _, dup := rs.rounds[key]; !dup {
			rs.meta.Rounds++
		}
		rs.rounds[key] = roundLoc{off: off + int64(bodyStart), n: len(payload) - bodyStart}
	case segStatus:
		id := r.String()
		kind := r.Byte()
		detail := r.String()
		if r.Err() != nil {
			return r.Err()
		}
		rs, ok := s.runs[id]
		if !ok {
			return fmt.Errorf("store: status segment for unknown run %q", id)
		}
		switch kind {
		case statusDone:
			rs.meta.Done, rs.meta.Detail = true, detail
		case statusInvalid:
			rs.meta.Invalid, rs.meta.Detail = true, detail
			rs.meta.Done = false
			rs.rounds = make(map[[2]int]roundLoc)
			rs.meta.Rounds = 0
		default:
			return fmt.Errorf("store: unknown status byte %#x", kind)
		}
	default:
		return fmt.Errorf("store: unknown segment kind %#x", payload[0])
	}
	return nil
}

// append serializes and writes one segment frame with a single write
// syscall (the frame buffer is reused under mu).
func (s *Store) append(payload []byte) error {
	s.frame = codec.AppendFrame(s.frame[:0], payload)
	n, err := s.f.Write(s.frame)
	s.size += int64(n)
	return err
}

// CreateRun opens a new run bucket. The ID must be unused.
func (s *Store) CreateRun(id, spec string, codeHash, optionsSig uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.runs[id]; dup {
		return fmt.Errorf("store: run %q already exists", id)
	}
	meta := RunMeta{
		ID: id, Spec: spec,
		CodeHash: codeHash, OptionsSig: optionsSig,
		Created: time.Now(),
	}
	var w codec.Writer
	w.Byte(segRun)
	encodeRunMeta(&w, meta)
	if err := s.append(w.Bytes()); err != nil {
		return err
	}
	s.runs[id] = &runState{meta: meta, rounds: make(map[[2]int]roundLoc)}
	s.order = append(s.order, id)
	return nil
}

// AppendRound records one completed round. Appends are idempotent per
// (pass, round): a resumed run re-checkpoints the rounds it replays, and
// those land on already-stored keys and are dropped without a write.
func (s *Store) AppendRound(id string, cp core.RoundCheckpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.runs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoRun, id)
	}
	if rs.meta.Invalid {
		return fmt.Errorf("store: run %q is invalidated", id)
	}
	key := [2]int{cp.Pass, cp.Round}
	if _, dup := rs.rounds[key]; dup {
		return nil
	}
	w := &s.w
	w.Reset()
	w.Byte(segRound)
	w.String(id)
	mark := w.Len()
	encodeCheckpoint(w, cp)
	// The body's location is known before the write: frame payload starts 4
	// bytes past the current end of file. Retaining the location instead of
	// the bytes honors the sink contract (the engine reuses cp's slices next
	// round) with no copy at all — the file already holds the body.
	loc := roundLoc{off: s.size + 4 + int64(mark), n: w.Len() - mark}
	if err := s.append(w.Bytes()); err != nil {
		return err
	}
	rs.rounds[key] = loc
	rs.meta.Rounds++
	return nil
}

// FinishRun marks the run done, storing the caller's result summary.
func (s *Store) FinishRun(id, detail string) error {
	return s.status(id, statusDone, detail)
}

// InvalidateRun marks the run's checkpoints unusable (stale binary, digest
// divergence) and drops them from memory; a later Open drops them too.
func (s *Store) InvalidateRun(id, reason string) error {
	return s.status(id, statusInvalid, reason)
}

func (s *Store) status(id string, kind byte, detail string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.runs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoRun, id)
	}
	var w codec.Writer
	w.Byte(segStatus)
	w.String(id)
	w.Byte(kind)
	w.String(detail)
	if err := s.append(w.Bytes()); err != nil {
		return err
	}
	switch kind {
	case statusDone:
		rs.meta.Done, rs.meta.Detail = true, detail
	case statusInvalid:
		rs.meta.Invalid, rs.meta.Detail = true, detail
		rs.meta.Done = false
		rs.rounds = make(map[[2]int]roundLoc)
		rs.meta.Rounds = 0
	}
	return nil
}

// Run returns the metadata of one run.
func (s *Store) Run(id string) (RunMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.runs[id]
	if !ok {
		return RunMeta{}, false
	}
	return rs.meta, true
}

// Runs lists every run bucket in creation order.
func (s *Store) Runs() []RunMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RunMeta, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.runs[id].meta)
	}
	return out
}

// Sink returns a core.CheckpointSink appending the run's rounds.
func (s *Store) Sink(id string) core.CheckpointSink { return sink{s, id} }

type sink struct {
	s  *Store
	id string
}

func (k sink) OnRoundCheckpoint(cp core.RoundCheckpoint) error {
	return k.s.AppendRound(k.id, cp)
}

// Resume returns a core.ResumeSource over the run's stored rounds, or nil
// when the run has none worth resuming (unknown, invalidated, or empty) —
// a nil Resume in core.Options just runs fresh.
func (s *Store) Resume(id string) core.ResumeSource {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.runs[id]
	if !ok || rs.meta.Invalid || len(rs.rounds) == 0 {
		return nil
	}
	// Snapshot the map so a concurrent append (the resumed run
	// re-checkpointing) cannot race the engine's walk; the locations point
	// into the append-only file, so they stay valid.
	rounds := make(map[[2]int]roundLoc, len(rs.rounds))
	for k, loc := range rs.rounds {
		rounds[k] = loc
	}
	return resumeSource{f: s.f, rounds: rounds}
}

type resumeSource struct {
	f      *os.File
	rounds map[[2]int]roundLoc
}

func (r resumeSource) RoundHints(pass, round int) (core.RoundCheckpoint, bool) {
	loc, ok := r.rounds[[2]int{pass, round}]
	if !ok {
		return core.RoundCheckpoint{}, false
	}
	// ReadAt leaves the appenders' file cursor alone, so reading back races
	// nothing. The body was validated when stored; any failure here (store
	// closed mid-resume, corruption) just ends the frontier — the run
	// continues inline, because records are hints, never authority.
	buf := make([]byte, loc.n)
	if _, err := r.f.ReadAt(buf, loc.off); err != nil {
		return core.RoundCheckpoint{}, false
	}
	rd := codec.NewReader(buf)
	cp := decodeCheckpoint(rd)
	if rd.Err() != nil {
		return core.RoundCheckpoint{}, false
	}
	return cp, true
}

// Close closes the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }
