package store_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/protocols/paxos"
	"lmc/internal/store"
)

// nullSink accepts checkpoints without storing them: benchmarking against
// it isolates the engine-side capture cost from the store's encode+write.
type nullSink struct{}

func (nullSink) OnRoundCheckpoint(core.RoundCheckpoint) error { return nil }

// BenchmarkCheckpointOverhead decomposes the cost of per-round
// checkpointing on the sequential Paxos GEN run: plain (no sink) vs
// null-sink (capture, gather, sort — the engine's share) vs store-sink
// (plus deep copy, encode, frame write — the store's share). benchjson's
// -storegate enforces the end-to-end budget; this benchmark says which
// layer to blame when it trips.
func BenchmarkCheckpointOverhead(b *testing.B) {
	run := func(b *testing.B, sink func(i int) core.CheckpointSink) {
		for i := 0; i < b.N; i++ {
			m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
			opt := core.Options{
				Invariant:      paxos.Agreement(),
				SoundnessShare: -1,
			}
			if sink != nil {
				opt.Checkpoint = sink(i)
			}
			res := core.Check(m, model.InitialSystem(m), opt)
			if !res.Complete {
				b.Fatal("run incomplete")
			}
		}
	}
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		run(b, nil)
	})
	b.Run("null-sink", func(b *testing.B) {
		b.ReportAllocs()
		run(b, func(int) core.CheckpointSink { return nullSink{} })
	})
	b.Run("store-sink", func(b *testing.B) {
		dir := b.TempDir()
		b.ReportAllocs()
		run(b, func(i int) core.CheckpointSink {
			st, err := store.Open(filepath.Join(dir, fmt.Sprintf("b%d.lmcstore", i)))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { st.Close() })
			if err := st.CreateRun("bench", "paxos-gen", 1, 1); err != nil {
				b.Fatal(err)
			}
			return st.Sink("bench")
		})
	})
}
