package store_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"

	"lmc/internal/actordemo"
	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/obs"
	"lmc/internal/protocols/paxos"
	"lmc/internal/store"
)

// The kill-and-resume matrix is the store's load-bearing guarantee: SIGKILL
// the checking process at a round barrier — after the round's checkpoint
// write returned, the point an external kill of a busy daemon lands at —
// and a resume from the surviving file must produce a Result bit-for-bit
// identical to an uninterrupted run, across protocol families (a modeled
// protocol and a real implementation behind the actorcheck adapter) and
// kill depths. The child process is this test binary re-exec'd with env
// markers (the shard suite's idiom); it kills itself with SIGKILL from the
// observer callback that fires when round k's checkpoint event flushes, so
// the kill point is deterministic and genuinely mid-run.

const (
	envChild = "LMC_STORE_KILL_CHILD"
	envProto = "LMC_STORE_KILL_PROTO"
	envRound = "LMC_STORE_KILL_ROUND"
	envPath  = "LMC_STORE_KILL_PATH"

	// childCompleted is the child's exit code when the run finished before
	// reaching the kill round — a test-matrix bug, not a parity failure.
	childCompleted = 3
)

func TestMain(m *testing.M) {
	if os.Getenv(envChild) == "1" {
		runKillChild()
		// Unreachable on the kill path; reached only when the run finished
		// before the kill round.
		os.Exit(childCompleted)
	}
	os.Exit(m.Run())
}

// killCase rebuilds one matrix workload. Parent and child both call it, so
// baseline, victim and resumed runs explore the identical spec.
func killCase(proto string) (model.Machine, core.Options, error) {
	switch proto {
	case "paxos":
		m := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
		return m, core.Options{Invariant: paxos.Agreement(), SoundnessShare: -1}, nil
	case "actor-2pc":
		ad := actordemo.NewAdapter(4, actordemo.MajorityBug, 2)
		return ad, core.Options{Invariant: actordemo.Atomicity(ad), SoundnessShare: -1}, nil
	}
	return nil, core.Options{}, fmt.Errorf("unknown kill-case proto %q", proto)
}

func runKillChild() {
	proto := os.Getenv(envProto)
	killRound, err := strconv.Atoi(os.Getenv(envRound))
	if err != nil {
		fmt.Fprintln(os.Stderr, "kill child: bad round:", err)
		os.Exit(1)
	}
	m, opt, err := killCase(proto)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kill child:", err)
		os.Exit(1)
	}
	st, err := store.Open(os.Getenv(envPath))
	if err != nil {
		fmt.Fprintln(os.Stderr, "kill child:", err)
		os.Exit(1)
	}
	if err := st.CreateRun("victim", proto, store.CodeHash(), store.OptionsSig(proto)); err != nil {
		fmt.Fprintln(os.Stderr, "kill child:", err)
		os.Exit(1)
	}
	opt.Checkpoint = st.Sink("victim")
	// The checkpoint event for round k flushes at the round-k barrier,
	// strictly after the sink write returned — so when it arrives, rounds
	// 1..k are in the file (page cache; survives process death) and
	// SIGKILLing here is the worst honest kill point.
	opt.Observer = obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindCheckpoint && e.Detail == "" && e.Pass == 1 && e.Round == killRound {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
	})
	core.Check(m, model.InitialSystem(m), opt)
}

func TestKillAndResumeParity(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []string{"paxos", "actor-2pc"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			m, opt, err := killCase(proto)
			if err != nil {
				t.Fatal(err)
			}
			start := model.InitialSystem(m)
			base := core.Check(m, start, opt)
			for _, killRound := range []int{1, 2, 3} {
				t.Run(fmt.Sprintf("round%d", killRound), func(t *testing.T) {
					path := filepath.Join(t.TempDir(), "ckpt.lmcstore")
					cmd := exec.Command(exe, "-test.run=^$")
					cmd.Env = append(os.Environ(),
						envChild+"=1",
						envProto+"="+proto,
						envRound+"="+strconv.Itoa(killRound),
						envPath+"="+path,
					)
					out, err := cmd.CombinedOutput()
					if err == nil {
						t.Fatalf("child survived its own SIGKILL:\n%s", out)
					}
					ee, ok := err.(*exec.ExitError)
					if !ok {
						t.Fatalf("child failed to run: %v\n%s", err, out)
					}
					if ee.ExitCode() == childCompleted {
						t.Fatalf("run finished before round %d; pick a shallower kill round", killRound)
					}
					if ws, ok := ee.Sys().(syscall.WaitStatus); ok &&
						(!ws.Signaled() || ws.Signal() != syscall.SIGKILL) {
						t.Fatalf("child died of %v, not SIGKILL:\n%s", err, out)
					}

					st, err := store.Open(path)
					if err != nil {
						t.Fatalf("reopen after kill: %v", err)
					}
					defer st.Close()
					meta, ok := st.Run("victim")
					if !ok {
						t.Fatal("victim run missing from surviving store")
					}
					if meta.Rounds != killRound {
						t.Fatalf("stored rounds=%d, want %d (kill fired at the round-%d barrier)",
							meta.Rounds, killRound, killRound)
					}
					if meta.CodeHash != store.CodeHash() {
						t.Fatalf("code hash drifted between child and parent of the same binary")
					}
					src := st.Resume("victim")
					if src == nil {
						t.Fatal("no resume source for the victim run")
					}

					ropt := opt
					ropt.Resume = src
					primed := 0
					ropt.Observer = obs.FuncObserver(func(e obs.Event) {
						if e.Kind == obs.KindResume && e.Detail == "" {
							primed++
						}
					})
					resumed := core.Check(m, start, ropt)
					if primed != killRound {
						t.Fatalf("resume primed %d rounds, want %d", primed, killRound)
					}
					assertBitForBit(t, base, resumed)
				})
			}
		})
	}
}

// assertBitForBit requires full Counters equality (not a curated subset)
// modulo the wall-clock duration fields, plus identical termination and
// bug details.
func assertBitForBit(t *testing.T, base, got *core.Result) {
	t.Helper()
	b, g := base.Stats, got.Stats
	b.Elapsed, g.Elapsed = 0, 0
	b.SoundnessTime, g.SoundnessTime = 0, 0
	b.SystemStateTime, g.SystemStateTime = 0, 0
	b.ShardWaitTime, g.ShardWaitTime = 0, 0
	if b != g {
		t.Fatalf("counters diverged:\nbase: %s\n got: %s", b.String(), g.String())
	}
	if base.Complete != got.Complete || base.StopReason != got.StopReason {
		t.Fatalf("termination diverged: base=(%v,%v) got=(%v,%v)",
			base.Complete, base.StopReason, got.Complete, got.StopReason)
	}
	if len(base.Bugs) != len(got.Bugs) {
		t.Fatalf("bug count diverged: base=%d got=%d", len(base.Bugs), len(got.Bugs))
	}
	for i := range base.Bugs {
		bb, gb := base.Bugs[i], got.Bugs[i]
		if bb.Violation.Invariant != gb.Violation.Invariant ||
			bb.Violation.Detail != gb.Violation.Detail ||
			bb.Depth != gb.Depth ||
			bb.System.Fingerprint() != gb.System.Fingerprint() ||
			len(bb.Schedule) != len(gb.Schedule) {
			t.Fatalf("bug %d diverged", i)
		}
	}
}
