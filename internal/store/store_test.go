package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"lmc/internal/codec"
	"lmc/internal/core"
	"lmc/internal/stats"
)

func sampleCheckpoint(round int) core.RoundCheckpoint {
	return core.RoundCheckpoint{
		Pass: 1, Round: round, LocalBound: 3,
		Records: []core.DeliveryRecord{
			{Entry: 0, Parent: 11, Succ: 22, Emitted: []codec.Fingerprint{7, 8}},
			{Entry: 1, Parent: 11, Rejected: true},
			{Entry: 2, Parent: 33, Succ: 44},
		},
		NewStates: [][]codec.Fingerprint{{22}, nil, {44, 55}},
		Digest:    core.ShardDigest{NetLen: 4, Net: 99, States: 6, Spaces: 123},
		Counters: stats.Counters{
			Transitions: 10*round + 1, NodeStates: 6, MaxDepth: round,
			SoundnessTime: 5 * time.Millisecond,
		},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.lmcstore")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRun("job-1", "paxos/GEN", 0xabc, 0xdef); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		if err := s.AppendRound("job-1", sampleCheckpoint(round)); err != nil {
			t.Fatal(err)
		}
	}
	// Idempotent re-append of a stored round must not grow the file.
	before, _ := s.f.Seek(0, 1)
	if err := s.AppendRound("job-1", sampleCheckpoint(2)); err != nil {
		t.Fatal(err)
	}
	if after, _ := s.f.Seek(0, 1); after != before {
		t.Fatalf("duplicate round grew the file: %d -> %d", before, after)
	}
	if err := s.FinishRun("job-1", `{"ok":true}`); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	meta, ok := s2.Run("job-1")
	if !ok {
		t.Fatal("run lost on reopen")
	}
	if meta.Spec != "paxos/GEN" || meta.CodeHash != 0xabc || meta.OptionsSig != 0xdef {
		t.Fatalf("meta mangled: %+v", meta)
	}
	if !meta.Done || meta.Detail != `{"ok":true}` || meta.Rounds != 3 {
		t.Fatalf("status mangled: %+v", meta)
	}
	src := s2.Resume("job-1")
	if src == nil {
		t.Fatal("no resume source for stored run")
	}
	for round := 1; round <= 3; round++ {
		cp, ok := src.RoundHints(1, round)
		if !ok {
			t.Fatalf("round %d missing", round)
		}
		if !reflect.DeepEqual(cp, sampleCheckpoint(round)) {
			t.Fatalf("round %d mangled:\n got %+v\nwant %+v", round, cp, sampleCheckpoint(round))
		}
	}
	if _, ok := src.RoundHints(1, 4); ok {
		t.Fatal("phantom round 4")
	}
	if _, ok := src.RoundHints(2, 1); ok {
		t.Fatal("phantom pass 2")
	}
}

func TestStoreTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.lmcstore")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRun("r", "spec", 1, 2); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		if err := s.AppendRound("r", sampleCheckpoint(round)); err != nil {
			t.Fatal(err)
		}
	}
	goodLen, _ := s.f.Seek(0, 1)
	if err := s.AppendRound("r", sampleCheckpoint(3)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Chop the tail mid-frame at every offset inside the last segment: every
	// cut must recover to exactly the first two rounds.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(len(full)) - 1; cut > goodLen; cut -= 7 {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		meta, ok := s2.Run("r")
		if !ok || meta.Rounds != 2 {
			t.Fatalf("cut %d: rounds=%d, want 2", cut, meta.Rounds)
		}
		if st, _ := s2.f.Stat(); st.Size() != goodLen {
			t.Fatalf("cut %d: file not truncated to %d, got %d", cut, goodLen, st.Size())
		}
		// The recovered store must accept new appends on the clean boundary.
		if err := s2.AppendRound("r", sampleCheckpoint(3)); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		s2.Close()
		s3, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d reopen: %v", cut, err)
		}
		if meta, _ := s3.Run("r"); meta.Rounds != 3 {
			t.Fatalf("cut %d: post-recovery append lost, rounds=%d", cut, meta.Rounds)
		}
		s3.Close()
	}
}

func TestStoreCorruptMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.lmcstore")
	s, _ := Open(path)
	s.CreateRun("r", "spec", 1, 2)
	s.AppendRound("r", sampleCheckpoint(1))
	mid, _ := s.f.Seek(0, 1)
	s.AppendRound("r", sampleCheckpoint(2))
	s.Close()

	full, _ := os.ReadFile(path)
	full[mid+10] ^= 0xff // corrupt inside round 2's frame; checksum catches it
	os.WriteFile(path, full, 0o644)

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	meta, _ := s2.Run("r")
	if meta.Rounds != 1 {
		t.Fatalf("rounds=%d after mid-file corruption, want 1", meta.Rounds)
	}
	if st, _ := s2.f.Stat(); st.Size() != mid {
		t.Fatalf("file not truncated at corruption: size=%d want %d", st.Size(), mid)
	}
}

func TestStoreInvalidate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.lmcstore")
	s, _ := Open(path)
	s.CreateRun("r", "spec", 1, 2)
	s.AppendRound("r", sampleCheckpoint(1))
	if err := s.InvalidateRun("r", "code hash changed"); err != nil {
		t.Fatal(err)
	}
	if s.Resume("r") != nil {
		t.Fatal("invalidated run still resumable")
	}
	if err := s.AppendRound("r", sampleCheckpoint(2)); err == nil {
		t.Fatal("append to invalidated run succeeded")
	}
	s.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	meta, _ := s2.Run("r")
	if !meta.Invalid || meta.Detail != "code hash changed" || meta.Rounds != 0 {
		t.Fatalf("invalidation lost on reopen: %+v", meta)
	}
	if s2.Resume("r") != nil {
		t.Fatal("invalidated run resumable after reopen")
	}
}

func TestStoreRejectsAlienFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store")
	if err := os.WriteFile(path, []byte("some other file format entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("opened an alien file as a store")
	}
}

func TestOptionsSig(t *testing.T) {
	if OptionsSig("ab", "c") == OptionsSig("a", "bc") {
		t.Fatal("length prefixing missing: shifted parts collide")
	}
	if OptionsSig("x") != OptionsSig("x") {
		t.Fatal("not deterministic")
	}
	if OptionsSig("x") == OptionsSig("y") {
		t.Fatal("distinct parts collide")
	}
}

func TestCodeHash(t *testing.T) {
	h := CodeHash()
	if h == 0 {
		t.Fatal("CodeHash()=0 for a readable test binary")
	}
	if h != CodeHash() {
		t.Fatal("CodeHash not stable")
	}
}
