package store

import (
	"hash/fnv"
	"io"
	"os"
	"time"

	"lmc/internal/codec"
	"lmc/internal/core"
	"lmc/internal/stats"
)

// File format: a header frame, then segment frames, every frame written with
// codec.WriteFrame (length prefix + FNV-1a checksum — the same framing the
// shard wire protocol trusts). A segment payload is one kind byte followed
// by the kind's body in canonical codec encoding.
const (
	storeMagic   = "LMCSTORE"
	storeVersion = 1

	// maxSegment bounds a single segment frame; a round of delivery records
	// stays far below it, and a corrupted length prefix is rejected before
	// allocation.
	maxSegment = 1 << 26 // 64 MiB

	segRun    = byte(1) // run created: RunMeta
	segRound  = byte(2) // one RoundCheckpoint, tagged with its run ID
	segStatus = byte(3) // terminal status: done or invalidated

	statusDone    = byte(1)
	statusInvalid = byte(2)
)

func encodeRunMeta(w *codec.Writer, m RunMeta) {
	w.String(m.ID)
	w.String(m.Spec)
	w.Uint64(m.CodeHash)
	w.Uint64(m.OptionsSig)
	w.Int64(m.Created.Unix())
}

func decodeRunMeta(r *codec.Reader) RunMeta {
	return RunMeta{
		ID:         r.String(),
		Spec:       r.String(),
		CodeHash:   r.Uint64(),
		OptionsSig: r.Uint64(),
		Created:    time.Unix(r.Int64(), 0),
	}
}

// recordMin is the minimum encoded size of one DeliveryRecord (entry +
// parent + rejected flag); element counts are guarded against it so a
// corrupted count cannot force a giant allocation.
const recordMin = 17

func encodeRecords(w *codec.Writer, recs []core.DeliveryRecord) {
	w.Int(len(recs))
	for i := range recs {
		rec := &recs[i]
		w.Int(rec.Entry)
		w.Uint64(uint64(rec.Parent))
		w.Bool(rec.Rejected)
		if rec.Rejected {
			continue
		}
		w.Uint64(uint64(rec.Succ))
		w.Int(len(rec.Emitted))
		for _, fp := range rec.Emitted {
			w.Uint64(uint64(fp))
		}
	}
}

// drainFail consumes the rest of the encoding and overruns it by one read,
// sticking ErrShortBuffer on the reader. Decoders call it when a count
// prefix disagrees with the bytes left — the segment is corrupt, and a
// partial decode must not pass for a clean one.
func drainFail(r *codec.Reader) {
	for r.Err() == nil && r.Remaining() > 0 {
		r.Byte()
	}
	r.Int()
}

func decodeRecords(r *codec.Reader) []core.DeliveryRecord {
	n := r.Int()
	if n == 0 {
		return nil
	}
	if n < 0 || n > r.Remaining()/recordMin+1 {
		drainFail(r)
		return nil
	}
	recs := make([]core.DeliveryRecord, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		rec := core.DeliveryRecord{
			Entry:    r.Int(),
			Parent:   codec.Fingerprint(r.Uint64()),
			Rejected: r.Bool(),
		}
		if !rec.Rejected {
			rec.Succ = codec.Fingerprint(r.Uint64())
			rec.Emitted = decodeFingerprints(r)
		}
		recs = append(recs, rec)
	}
	return recs
}

func encodeFingerprints(w *codec.Writer, fps []codec.Fingerprint) {
	w.Int(len(fps))
	for _, fp := range fps {
		w.Uint64(uint64(fp))
	}
}

func decodeFingerprints(r *codec.Reader) []codec.Fingerprint {
	n := r.Int()
	if n == 0 {
		return nil
	}
	if n < 0 || n > r.Remaining()/8+1 {
		drainFail(r)
		return nil
	}
	fps := make([]codec.Fingerprint, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		fps = append(fps, codec.Fingerprint(r.Uint64()))
	}
	return fps
}

// encodeCheckpoint writes one RoundCheckpoint body (the run-ID tag is the
// caller's). decodeCheckpoint is its inverse; the pair is the fuzz target
// FuzzCheckpointRoundTrip.
func encodeCheckpoint(w *codec.Writer, cp core.RoundCheckpoint) {
	w.Int(cp.Pass)
	w.Int(cp.Round)
	w.Int(cp.LocalBound)
	encodeRecords(w, cp.Records)
	w.Int(len(cp.NewStates))
	for _, fps := range cp.NewStates {
		encodeFingerprints(w, fps)
	}
	w.Int(cp.Digest.NetLen)
	w.Uint64(uint64(cp.Digest.Net))
	w.Int(cp.Digest.States)
	w.Uint64(uint64(cp.Digest.Spaces))
	encodeCounters(w, cp.Counters)
}

func decodeCheckpoint(r *codec.Reader) core.RoundCheckpoint {
	cp := core.RoundCheckpoint{
		Pass:       r.Int(),
		Round:      r.Int(),
		LocalBound: r.Int(),
		Records:    decodeRecords(r),
	}
	n := r.Int()
	if n < 0 || n > r.Remaining()/8+1 {
		drainFail(r)
		return cp
	}
	if n > 0 {
		cp.NewStates = make([][]codec.Fingerprint, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			cp.NewStates = append(cp.NewStates, decodeFingerprints(r))
		}
	}
	cp.Digest.NetLen = r.Int()
	cp.Digest.Net = codec.Fingerprint(r.Uint64())
	cp.Digest.States = r.Int()
	cp.Digest.Spaces = codec.Fingerprint(r.Uint64())
	cp.Counters = decodeCounters(r)
	return cp
}

// Counters are encoded field by field in declaration order. The trailing
// field count written first lets decode reject a snapshot from a binary
// whose Counters struct grew or shrank (the store version would normally
// bump with it, but the guard makes drift loud rather than silent).
const countersFields = 23

func encodeCounters(w *codec.Writer, c stats.Counters) {
	w.Int(countersFields)
	w.Int(c.Transitions)
	w.Int(c.NodeStates)
	w.Int(c.GlobalStates)
	w.Int(c.SystemStates)
	w.Int(c.InvariantChecks)
	w.Int(c.PreliminaryViolations)
	w.Int(c.SoundnessCalls)
	w.Int(c.SequencesChecked)
	w.Int64(int64(c.SoundnessTime))
	w.Int64(int64(c.SystemStateTime))
	w.Int64(int64(c.ShardWaitTime))
	w.Int(c.ConfirmedBugs)
	w.Int(c.CoverIndexHits)
	w.Int(c.CoverIndexMisses)
	w.Int(c.WitnessSkips)
	w.Int(c.SymmetrySkips)
	w.Int(c.OrbitChecks)
	w.Int(c.PORPathsDeduped)
	w.Int(c.PORDetached)
	w.Int(c.Rejections)
	w.Int(c.DuplicatesDropped)
	w.Int(c.MaxDepth)
	w.Int64(int64(c.Elapsed))
}

func decodeCounters(r *codec.Reader) stats.Counters {
	if n := r.Int(); n != countersFields {
		// The snapshot came from a different Counters layout.
		drainFail(r)
		return stats.Counters{}
	}
	return stats.Counters{
		Transitions:           r.Int(),
		NodeStates:            r.Int(),
		GlobalStates:          r.Int(),
		SystemStates:          r.Int(),
		InvariantChecks:       r.Int(),
		PreliminaryViolations: r.Int(),
		SoundnessCalls:        r.Int(),
		SequencesChecked:      r.Int(),
		SoundnessTime:         time.Duration(r.Int64()),
		SystemStateTime:       time.Duration(r.Int64()),
		ShardWaitTime:         time.Duration(r.Int64()),
		ConfirmedBugs:         r.Int(),
		CoverIndexHits:        r.Int(),
		CoverIndexMisses:      r.Int(),
		WitnessSkips:          r.Int(),
		SymmetrySkips:         r.Int(),
		OrbitChecks:           r.Int(),
		PORPathsDeduped:       r.Int(),
		PORDetached:           r.Int(),
		Rejections:            r.Int(),
		DuplicatesDropped:     r.Int(),
		MaxDepth:              r.Int(),
		Elapsed:               time.Duration(r.Int64()),
	}
}

// CodeHash fingerprints the running checker binary (FNV-1a over its bytes).
// A checkpoint written by one binary must not prime a walk in another: a
// changed handler executes differently, and although the engine's digest
// check would catch most divergence after a round, the hash refuses the
// resume up front. Returns 0 when the executable cannot be read (resume is
// then refused by mismatch against any stored non-zero hash).
func CodeHash() uint64 {
	path, err := os.Executable()
	if err != nil {
		return 0
	}
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	h := fnv.New64a()
	if _, err := io.Copy(h, f); err != nil {
		return 0
	}
	return h.Sum64()
}

// OptionsSig hashes the exploration-shaping parts of a job spec (workload
// name, checker kind, bounds, reductions — whatever the caller decides
// shapes the state space). Worker count and shard count must NOT be
// included: exploration is bit-for-bit identical across them, so their
// checkpoints are interchangeable. Parts are length-prefixed, so
// ("ab","c") and ("a","bc") hash differently.
func OptionsSig(parts ...string) uint64 {
	h := fnv.New64a()
	var n [8]byte
	for _, p := range parts {
		for i, l := 0, len(p); i < 8; i++ {
			n[i] = byte(l >> (8 * (7 - i)))
		}
		h.Write(n[:])
		io.WriteString(h, p)
	}
	return h.Sum64()
}
