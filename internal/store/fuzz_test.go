package store

import (
	"reflect"
	"testing"

	"lmc/internal/codec"
	"lmc/internal/core"
)

// FuzzCheckpointRoundTrip drives the segment codec both ways: arbitrary
// bytes must decode without panicking or over-allocating, and whatever
// decodes cleanly must survive a re-encode/re-decode round trip unchanged
// (the store's durability depends on the codec being its own inverse).
func FuzzCheckpointRoundTrip(f *testing.F) {
	var w codec.Writer
	encodeCheckpoint(&w, sampleCheckpoint(2))
	f.Add(w.Clone())
	w.Reset()
	encodeCheckpoint(&w, core.RoundCheckpoint{Pass: 1, Round: 1})
	f.Add(w.Clone())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := codec.NewReader(data)
		cp := decodeCheckpoint(r)
		if r.Err() != nil {
			return
		}
		var w codec.Writer
		encodeCheckpoint(&w, cp)
		r2 := codec.NewReader(w.Bytes())
		cp2 := decodeCheckpoint(r2)
		if r2.Err() != nil {
			t.Fatalf("re-decode of re-encoded checkpoint failed: %v", r2.Err())
		}
		if !reflect.DeepEqual(cp, cp2) {
			t.Fatalf("round trip diverged:\n first %+v\nsecond %+v", cp, cp2)
		}
	})
}
