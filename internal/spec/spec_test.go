package spec_test

import (
	"strings"
	"testing"

	"lmc/internal/model"
	"lmc/internal/protocols/tree"
	"lmc/internal/spec"
)

// TestViolate: the violation references the offending system state (states
// are immutable once visited; checkers clone at report time) and renders a
// useful message.
func TestViolate(t *testing.T) {
	m := tree.NewPaperTree()
	sys := model.InitialSystem(m)
	v := spec.Violate("x", sys, "node %d broke", 3)
	if v.System.Fingerprint() != sys.Fingerprint() {
		t.Fatal("violation does not reference the offending system state")
	}
	if !strings.Contains(v.Error(), "node 3 broke") || !strings.Contains(v.Error(), "x") {
		t.Fatalf("unhelpful error: %s", v.Error())
	}
}

// TestInvariantFunc adapts plain functions.
func TestInvariantFunc(t *testing.T) {
	called := 0
	inv := spec.InvariantFunc{InvName: "probe", Fn: func(ss model.SystemState) *spec.Violation {
		called++
		return nil
	}}
	if inv.Name() != "probe" {
		t.Fatal("name lost")
	}
	m := tree.NewPaperTree()
	if inv.Check(model.InitialSystem(m)) != nil || called != 1 {
		t.Fatal("check dispatch broken")
	}
}

// TestLift turns a local invariant into a system one with node attribution.
func TestLift(t *testing.T) {
	li := spec.LocalInvariantFunc{InvName: "no-sent", Fn: func(n model.NodeID, s model.State) string {
		if s.(*tree.State).St == tree.Sent {
			return "sent"
		}
		return ""
	}}
	inv := spec.Lift(li)
	if inv.Name() != "no-sent" {
		t.Fatal("lift renamed the invariant")
	}
	m := tree.NewPaperTree()
	sys := model.InitialSystem(m)
	if inv.Check(sys) != nil {
		t.Fatal("clean system flagged")
	}
	sys[2].(*tree.State).St = tree.Sent
	v := inv.Check(sys)
	if v == nil {
		t.Fatal("violation missed")
	}
	if !strings.Contains(v.Detail, "N3") {
		t.Fatalf("violating node not attributed: %s", v.Detail)
	}
}

// TestAssertionPolicyString names both policies.
func TestAssertionPolicyString(t *testing.T) {
	if spec.DiscardState.String() != "discard-state" ||
		spec.IgnoreAssertion.String() != "ignore-assertion" {
		t.Fatal("policy names changed")
	}
}
