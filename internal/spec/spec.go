// Package spec defines what the model checkers check: system-wide
// invariants over system states, node-local invariants, and — for the
// optimized local checker (LMC-OPT) — reductions that let the checker skip
// system states on which a given invariant can inherently not be violated
// (paper §4: "we can design invariant-specific system state creation to
// bypass the system states that could not possibly violate the invariant").
package spec

import (
	"fmt"

	"lmc/internal/model"
)

// Violation describes a failed invariant on a concrete system state.
type Violation struct {
	Invariant string
	Detail    string
	System    model.SystemState
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("invariant %q violated: %s", v.Invariant, v.Detail)
}

// Invariant is a user-specified safety property over system states. Check
// returns nil when the invariant holds and a non-nil *Violation otherwise.
// Invariants are deliberately defined on the system state only — never on
// the network — which is the observation the whole local approach rests on
// (paper §1, observation (1)).
type Invariant interface {
	// Name identifies the invariant in reports.
	Name() string
	// Check evaluates the invariant on a system state.
	Check(ss model.SystemState) *Violation
}

// InvariantFunc adapts a function to the Invariant interface.
type InvariantFunc struct {
	InvName string
	Fn      func(ss model.SystemState) *Violation
}

// Name implements Invariant.
func (f InvariantFunc) Name() string { return f.InvName }

// Check implements Invariant.
func (f InvariantFunc) Check(ss model.SystemState) *Violation { return f.Fn(ss) }

// Violate is a helper for invariant implementations: it builds a *Violation
// referencing the offending system state. The state is stored as-is, not
// cloned: checkers materialize system states from node states that are
// immutable once visited, and they clone at report time — a checker can
// discard millions of preliminary violations, so building one must stay
// allocation-light.
func Violate(name string, ss model.SystemState, format string, args ...any) *Violation {
	return &Violation{
		Invariant: name,
		Detail:    fmt.Sprintf(format, args...),
		System:    ss,
	}
}

// LocalInvariant is a property of a single node state, such as RandTree's
// "the children and siblings sets are disjoint" (paper §4). A local
// invariant can be checked during exploration without materializing any
// system state at all.
type LocalInvariant interface {
	// Name identifies the invariant in reports.
	Name() string
	// CheckNode evaluates the invariant on one node's state; it returns a
	// non-empty description when violated, "" otherwise.
	CheckNode(n model.NodeID, s model.State) string
}

// LocalInvariantFunc adapts a function to the LocalInvariant interface.
type LocalInvariantFunc struct {
	InvName string
	Fn      func(n model.NodeID, s model.State) string
}

// Name implements LocalInvariant.
func (f LocalInvariantFunc) Name() string { return f.InvName }

// CheckNode implements LocalInvariant.
func (f LocalInvariantFunc) CheckNode(n model.NodeID, s model.State) string {
	return f.Fn(n, s)
}

// Lift turns a local invariant into a system invariant that checks every
// node state. Useful for the global checker; LMC instead checks local
// invariants directly on node states as they are visited, which needs no
// Cartesian combination at all.
func Lift(li LocalInvariant) Invariant {
	return InvariantFunc{
		InvName: li.Name(),
		Fn: func(ss model.SystemState) *Violation {
			for i, s := range ss {
				if msg := li.CheckNode(model.NodeID(i), s); msg != "" {
					return Violate(li.Name(), ss, "node %v: %s", model.NodeID(i), msg)
				}
			}
			return nil
		},
	}
}

// Interest is an invariant-relevant projection of a node state. Interests
// must be usable as map keys is not required; they are only compared
// through Reduction.Conflict.
type Interest any

// Reduction drives LMC-OPT's invariant-specific system-state creation. The
// checker projects each visited node state to an Interest; states whose
// projection reports ok=false can never contribute to a violation and are
// excluded from system-state creation entirely. A system state is
// materialized (and the full invariant evaluated on it) only when at least
// one pair of member interests Conflict.
//
// For the Paxos safety invariant the projection is the set of ⟨index,value⟩
// pairs the node has chosen (empty set → ok=false, "we can ignore the node
// states in which no value is chosen yet"), and two interests conflict when
// they choose different values for the same index.
type Reduction interface {
	// Interest projects a node state. ok=false excludes the state from
	// system-state creation under this reduction.
	Interest(n model.NodeID, s model.State) (Interest, bool)
	// Conflict reports whether two interests might jointly violate the
	// invariant. It must be conservative: if a pair of node states can
	// appear together in a violating system state, their interests must
	// conflict. (Completeness of LMC-OPT depends on this.)
	Conflict(a, b Interest) bool
}

// Keyer is an optional extension of Reduction: a canonical grouping key for
// interests. When available, the checker groups interesting node states by
// key and decides conflicts once per key profile instead of once per state
// combination — the precise shape of the paper's Paxos optimization, which
// "maps the node states to the values that are chosen in them" (§4.2).
// Equal keys must imply interchangeable interests under Conflict.
type Keyer interface {
	// InterestKey returns a canonical key; equal interests (with respect to
	// Conflict) must map to equal keys.
	InterestKey(i Interest) string
}

// AssertionPolicy says what LMC does when a handler rejects a message
// (returns a nil state), per the discussion of local assertions in §4.2.
type AssertionPolicy int

const (
	// DiscardState drops the rejecting successor: the assertion is taken to
	// mean the node state was invalid (the paper's choice — the shared
	// network's conservative delivery routinely provokes such rejections).
	DiscardState AssertionPolicy = iota
	// IgnoreAssertion also drops the successor but counts the rejection
	// separately, for protocols whose assertions may flag real bugs that
	// will anyway eventually surface as a system-invariant violation.
	IgnoreAssertion
)

// String names the policy.
func (p AssertionPolicy) String() string {
	switch p {
	case DiscardState:
		return "discard-state"
	case IgnoreAssertion:
		return "ignore-assertion"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}
