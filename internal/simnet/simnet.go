// Package simnet models the best-effort, lossy network underneath the live
// runs of the paper's online experiments: "the nodes communicate using UDP
// and 30% of non-loopback messages are randomly dropped to allow rare
// states to be also created" (§5.5). Loss and latency are drawn from a
// seeded generator, so every live run is reproducible.
package simnet

import (
	"math/rand"

	"lmc/internal/model"
)

// Config parameterizes the network.
type Config struct {
	// Seed seeds the loss/latency generator.
	Seed int64
	// DropProb is the probability that a non-loopback message is lost.
	// The paper's runs use 0.3.
	DropProb float64
	// MinDelay and MaxDelay bound the uniform one-way latency, in simulated
	// seconds. Zero values default to [0.01, 0.1].
	MinDelay, MaxDelay float64
}

// Net is a lossy, delaying network.
type Net struct {
	cfg Config
	rng *rand.Rand

	// Sent, Dropped and Delivered count messages through the network.
	Sent, Dropped int
}

// New builds a network from the config.
func New(cfg Config) *Net {
	if cfg.MaxDelay <= 0 {
		cfg.MinDelay, cfg.MaxDelay = 0.01, 0.1
	}
	if cfg.MinDelay > cfg.MaxDelay {
		cfg.MinDelay = cfg.MaxDelay
	}
	return &Net{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Transmit decides a message's fate: dropped, or delivered after a latency.
// Loopback messages (src == dst) are never dropped, matching the paper's
// "30% of non-loopback messages".
func (n *Net) Transmit(m model.Message) (delay float64, dropped bool) {
	n.Sent++
	if m.Src() != m.Dst() && n.rng.Float64() < n.cfg.DropProb {
		n.Dropped++
		return 0, true
	}
	return n.cfg.MinDelay + n.rng.Float64()*(n.cfg.MaxDelay-n.cfg.MinDelay), false
}
