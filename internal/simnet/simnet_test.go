package simnet

import (
	"fmt"
	"testing"
	"testing/quick"

	"lmc/internal/codec"
	"lmc/internal/model"
)

type msg struct{ from, to model.NodeID }

func (m msg) Src() model.NodeID      { return m.from }
func (m msg) Dst() model.NodeID      { return m.to }
func (m msg) Encode(w *codec.Writer) { w.Int(int(m.from)); w.Int(int(m.to)) }
func (m msg) String() string         { return fmt.Sprintf("m{%v->%v}", m.from, m.to) }

// TestLoopbackNeverDropped: the paper drops only non-loopback messages.
func TestLoopbackNeverDropped(t *testing.T) {
	f := func(seed int64) bool {
		n := New(Config{Seed: seed, DropProb: 1.0})
		_, dropped := n.Transmit(msg{from: 1, to: 1})
		return !dropped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDropRateApproximates30Percent checks the loss rate statistically.
func TestDropRateApproximates30Percent(t *testing.T) {
	n := New(Config{Seed: 42, DropProb: 0.3})
	drops := 0
	const total = 20000
	for i := 0; i < total; i++ {
		if _, dropped := n.Transmit(msg{from: 0, to: 1}); dropped {
			drops++
		}
	}
	rate := float64(drops) / total
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("drop rate %.3f, want ~0.30", rate)
	}
	if n.Sent != total || n.Dropped != drops {
		t.Fatal("counters off")
	}
}

// TestDelayBounds: latencies stay within the configured window.
func TestDelayBounds(t *testing.T) {
	n := New(Config{Seed: 1, DropProb: 0, MinDelay: 0.05, MaxDelay: 0.2})
	for i := 0; i < 1000; i++ {
		d, dropped := n.Transmit(msg{from: 0, to: 1})
		if dropped {
			t.Fatal("dropped with probability 0")
		}
		if d < 0.05 || d > 0.2 {
			t.Fatalf("delay %f outside [0.05, 0.2]", d)
		}
	}
}

// TestDeterminism: equal seeds produce equal fates.
func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		n := New(Config{Seed: 7, DropProb: 0.5})
		var out []float64
		for i := 0; i < 100; i++ {
			d, dropped := n.Transmit(msg{from: 0, to: 1})
			if dropped {
				out = append(out, -1)
			} else {
				out = append(out, d)
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %f vs %f", i, a[i], b[i])
		}
	}
}

// TestDefaultDelays: zero config gets the documented defaults.
func TestDefaultDelays(t *testing.T) {
	n := New(Config{Seed: 1})
	d, _ := n.Transmit(msg{from: 0, to: 1})
	if d < 0.01 || d > 0.1 {
		t.Fatalf("default delay %f outside [0.01, 0.1]", d)
	}
}
