package shard

import (
	"fmt"

	"lmc/internal/codec"
	"lmc/internal/core"
)

// Version is the wire-protocol version. A worker refuses a HELLO carrying a
// different version, so mixed-build coordinator/worker pairs fail fast at
// the handshake instead of diverging mid-run.
const Version = 1

// frameType is the first payload byte of every frame (the rest is the
// codec-encoded body). The protocol is strict lockstep — each side always
// knows which frame types are acceptable next — so a type outside the
// expected set is a protocol error, not a dispatch choice.
type frameType byte

const (
	// ftHello (C→W) opens the session: protocol version, workload spec, the
	// worker's shard index/count, and the exploration-shaping options.
	ftHello frameType = 1 + iota
	// ftReady (W→C) acknowledges a HELLO after the replica is built.
	ftReady
	// ftError (W→C) reports a worker-side failure with a message; the
	// worker exits after sending it.
	ftError
	// ftPass (C→W) announces a fresh exploration pass and its local bound.
	ftPass
	// ftRound (C→W) starts one round: the worker runs its replicated action
	// phase and speculative delivery sweep.
	ftRound
	// ftRecords (W→C) carries the worker's delivery records for a round.
	ftRecords
	// ftApply (C→W) ships the merged record table and the coordinator's
	// action-phase net delta; the worker runs its canonical delivery walk.
	ftApply
	// ftDigest (W→C) carries the worker's post-round replica digest.
	ftDigest
	// ftDone (C→W) ends the session cleanly; accepted at every worker
	// receive point.
	ftDone
)

// String names the frame type for protocol errors.
func (t frameType) String() string {
	switch t {
	case ftHello:
		return "HELLO"
	case ftReady:
		return "READY"
	case ftError:
		return "ERROR"
	case ftPass:
		return "PASS"
	case ftRound:
		return "ROUND"
	case ftRecords:
		return "RECORDS"
	case ftApply:
		return "APPLY"
	case ftDigest:
		return "DIGEST"
	case ftDone:
		return "DONE"
	default:
		return fmt.Sprintf("frame(%d)", byte(t))
	}
}

// hello is the handshake body. The option fields are the coordinator's RAW
// (unresolved) values: both sides resolve defaults through the same
// core.newChecker path, so shipping them unresolved keeps a single source of
// truth for the defaults.
type hello struct {
	Version int
	Spec    string
	Idx     int
	Count   int

	DupLimit         int
	LocalBound       int
	MaxPathDepth     int
	MaxPredecessors  int
	RoundDeliveryCap int
}

func (h hello) encode(w *codec.Writer) {
	w.Int(h.Version)
	w.String(h.Spec)
	w.Int(h.Idx)
	w.Int(h.Count)
	w.Int(h.DupLimit)
	w.Int(h.LocalBound)
	w.Int(h.MaxPathDepth)
	w.Int(h.MaxPredecessors)
	w.Int(h.RoundDeliveryCap)
}

func decodeHello(r *codec.Reader) hello {
	return hello{
		Version:          r.Int(),
		Spec:             r.String(),
		Idx:              r.Int(),
		Count:            r.Int(),
		DupLimit:         r.Int(),
		LocalBound:       r.Int(),
		MaxPathDepth:     r.Int(),
		MaxPredecessors:  r.Int(),
		RoundDeliveryCap: r.Int(),
	}
}

// recordWireMin is the minimum encoded size of one DeliveryRecord (entry +
// parent + rejected flag); decode guards element counts against it so a
// corrupted count cannot force a giant allocation.
const recordWireMin = 17

func encodeRecords(w *codec.Writer, recs []core.DeliveryRecord) {
	w.Int(len(recs))
	for i := range recs {
		r := &recs[i]
		w.Int(r.Entry)
		w.Uint64(uint64(r.Parent))
		w.Bool(r.Rejected)
		if r.Rejected {
			continue
		}
		w.Uint64(uint64(r.Succ))
		w.Int(len(r.Emitted))
		for _, fp := range r.Emitted {
			w.Uint64(uint64(fp))
		}
	}
}

// decodeRecords reads a record batch. Malformed input never panics or
// over-allocates: counts are clamped against the bytes actually remaining,
// and truncation sticks an error on the reader (checked by the caller).
func decodeRecords(r *codec.Reader) []core.DeliveryRecord {
	n := r.Int()
	if n <= 0 || n > r.Remaining()/recordWireMin+1 {
		if n != 0 {
			// Either corrupt or truncated; draining the reader as records
			// would error anyway, so just report none.
			r.Int() // provoke a sticky error on short input
		}
		return nil
	}
	recs := make([]core.DeliveryRecord, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		rec := core.DeliveryRecord{
			Entry:    r.Int(),
			Parent:   codec.Fingerprint(r.Uint64()),
			Rejected: r.Bool(),
		}
		if !rec.Rejected {
			rec.Succ = codec.Fingerprint(r.Uint64())
			ne := r.Int()
			if ne < 0 || ne > r.Remaining()/8+1 {
				return recs
			}
			if ne > 0 {
				rec.Emitted = make([]codec.Fingerprint, 0, ne)
				for j := 0; j < ne && r.Err() == nil; j++ {
					rec.Emitted = append(rec.Emitted, codec.Fingerprint(r.Uint64()))
				}
			}
		}
		recs = append(recs, rec)
	}
	return recs
}

func encodeDigest(w *codec.Writer, round int, d core.ShardDigest) {
	w.Int(round)
	w.Int(d.NetLen)
	w.Uint64(uint64(d.Net))
	w.Int(d.States)
	w.Uint64(uint64(d.Spaces))
}

func decodeDigest(r *codec.Reader) (int, core.ShardDigest) {
	round := r.Int()
	return round, core.ShardDigest{
		NetLen: r.Int(),
		Net:    codec.Fingerprint(r.Uint64()),
		States: r.Int(),
		Spaces: codec.Fingerprint(r.Uint64()),
	}
}
